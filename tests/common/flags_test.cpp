#include "common/flags.hpp"

#include <gtest/gtest.h>

#include <array>

namespace move::common {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<char*> argv;
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const auto f = parse({"prog", "--nodes=20", "--scheme=move"});
  EXPECT_EQ(f.get_int("nodes", 0), 20);
  EXPECT_EQ(f.get("scheme"), "move");
  EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, SpaceForm) {
  const auto f = parse({"prog", "--nodes", "42"});
  EXPECT_EQ(f.get_int("nodes", 0), 42);
}

TEST(Flags, BareFlagIsBooleanTrue) {
  const auto f = parse({"prog", "--csv"});
  EXPECT_TRUE(f.has("csv"));
  EXPECT_TRUE(f.get_bool("csv", false));
}

TEST(Flags, BareFlagBeforeAnotherFlag) {
  const auto f = parse({"prog", "--csv", "--nodes=3"});
  EXPECT_TRUE(f.get_bool("csv", false));
  EXPECT_EQ(f.get_int("nodes", 0), 3);
}

TEST(Flags, MissingFlagUsesFallback) {
  const auto f = parse({"prog"});
  EXPECT_EQ(f.get("scheme", "move"), "move");
  EXPECT_EQ(f.get_int("nodes", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("theta", 0.5), 0.5);
  EXPECT_FALSE(f.has("anything"));
}

TEST(Flags, MalformedNumberFallsBack) {
  const auto f = parse({"prog", "--nodes=abc"});
  EXPECT_EQ(f.get_int("nodes", 9), 9);
}

TEST(Flags, DoubleParsing) {
  const auto f = parse({"prog", "--fail=0.3"});
  EXPECT_DOUBLE_EQ(f.get_double("fail", 0), 0.3);
}

TEST(Flags, BoolSpellings) {
  const auto f = parse({"prog", "--a=true", "--b=0", "--c=yes", "--d=off",
                        "--e=weird"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
  EXPECT_TRUE(f.get_bool("e", true));  // unparseable -> fallback
}

TEST(Flags, PositionalsCollected) {
  const auto f = parse({"prog", "input.txt", "--n=1", "output.txt"});
  ASSERT_EQ(f.positionals().size(), 2u);
  EXPECT_EQ(f.positionals()[0], "input.txt");
  EXPECT_EQ(f.positionals()[1], "output.txt");
}

TEST(Flags, LastValueWins) {
  const auto f = parse({"prog", "--n=1", "--n=2"});
  EXPECT_EQ(f.get_int("n", 0), 2);
}

}  // namespace
}  // namespace move::common
