#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace move::common {
namespace {

TEST(ZipfSampler, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfSampler, PmfSumsToOne) {
  const ZipfSampler zipf(1000, 1.1);
  double sum = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfIsMonotoneDecreasing) {
  const ZipfSampler zipf(100, 0.9);
  for (std::uint64_t k = 1; k < 100; ++k) {
    EXPECT_GT(zipf.pmf(k - 1), zipf.pmf(k));
  }
}

TEST(ZipfSampler, PmfOutOfRangeIsZero) {
  const ZipfSampler zipf(10, 1.0);
  EXPECT_EQ(zipf.pmf(10), 0.0);
  EXPECT_EQ(zipf.pmf(999), 0.0);
}

TEST(ZipfSampler, SamplesStayInRange) {
  const ZipfSampler zipf(50, 1.2);
  SplitMix64 rng(23);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(zipf(rng), 50u);
  }
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  constexpr std::uint64_t kN = 200;
  const ZipfSampler zipf(kN, 1.0);
  SplitMix64 rng(29);
  constexpr int kDraws = 200'000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf(rng)];
  // Check the head ranks where counts are large enough for a tight bound.
  for (std::uint64_t k = 0; k < 10; ++k) {
    const double expected = zipf.pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, expected * 0.1 + 30)
        << "rank " << k;
  }
}

TEST(ZipfSampler, SkewZeroIsUniform) {
  constexpr std::uint64_t kN = 16;
  const ZipfSampler zipf(kN, 0.0);
  for (std::uint64_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(zipf.pmf(k), 1.0 / kN, 1e-12);
  }
  SplitMix64 rng(31);
  std::vector<int> counts(kN, 0);
  constexpr int kDraws = 64'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / kN, kDraws / kN * 0.15);
}

TEST(ZipfSampler, SkewNearOneIsStable) {
  // s == 1 exercises the log/exp branch of the antiderivative.
  const ZipfSampler zipf(1000, 1.0);
  SplitMix64 rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf(rng), 1000u);
}

TEST(ZipfSampler, HigherSkewConcentratesHead) {
  SplitMix64 rng_a(41), rng_b(41);
  const ZipfSampler flat(1000, 0.6), steep(1000, 1.4);
  int head_flat = 0, head_steep = 0;
  for (int i = 0; i < 20'000; ++i) {
    head_flat += flat(rng_a) < 10;
    head_steep += steep(rng_b) < 10;
  }
  EXPECT_GT(head_steep, head_flat);
}

TEST(ZipfSampler, SingleElementAlwaysZero) {
  const ZipfSampler zipf(1, 1.3);
  SplitMix64 rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(AliasSampler, RejectsBadWeights) {
  EXPECT_THROW(AliasSampler({}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({1.0, -0.5}), std::invalid_argument);
}

TEST(AliasSampler, MatchesWeights) {
  const AliasSampler alias({1.0, 2.0, 3.0, 4.0});
  SplitMix64 rng(47);
  constexpr int kDraws = 100'000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[alias(rng)];
  for (int k = 0; k < 4; ++k) {
    const double expected = (k + 1) / 10.0 * kDraws;
    EXPECT_NEAR(counts[k], expected, expected * 0.05);
  }
}

TEST(AliasSampler, ZeroWeightNeverDrawn) {
  const AliasSampler alias({0.0, 1.0, 0.0, 1.0});
  SplitMix64 rng(53);
  for (int i = 0; i < 10'000; ++i) {
    const auto k = alias(rng);
    EXPECT_TRUE(k == 1 || k == 3);
  }
}

TEST(AliasSampler, SingleBucket) {
  const AliasSampler alias({5.0});
  SplitMix64 rng(59);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias(rng), 0u);
}

}  // namespace
}  // namespace move::common
