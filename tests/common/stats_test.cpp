#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace move::common {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, Basic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stddev, FewerThanTwoIsZero) {
  const std::vector<double> one{5.0};
  EXPECT_EQ(stddev({}), 0.0);
  EXPECT_EQ(stddev(one), 0.0);
}

TEST(Stddev, KnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138, 0.001);  // sample stddev
}

TEST(Percentile, EmptyIsZero) { EXPECT_EQ(percentile({}, 50), 0.0); }

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150), 2.0);
}

TEST(ShannonEntropy, UniformIsLogN) {
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(shannon_entropy(w), 2.0, 1e-12);
}

TEST(ShannonEntropy, DegenerateIsZero) {
  const std::vector<double> w{1.0, 0.0, 0.0};
  EXPECT_EQ(shannon_entropy(w), 0.0);
  EXPECT_EQ(shannon_entropy({}), 0.0);
}

TEST(ShannonEntropy, SkewLowersEntropy) {
  const std::vector<double> uniform{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> skewed{100.0, 1.0, 1.0, 1.0};
  EXPECT_LT(shannon_entropy(skewed), shannon_entropy(uniform));
}

TEST(ShannonEntropy, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_NEAR(shannon_entropy(a), shannon_entropy(b), 1e-12);
}

TEST(Gini, PerfectlyBalancedIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0, 3.0};
  EXPECT_NEAR(gini(xs), 0.0, 1e-12);
}

TEST(Gini, ConcentrationApproachesOne) {
  std::vector<double> xs(100, 0.0);
  xs[0] = 1000.0;
  EXPECT_GT(gini(xs), 0.95);
}

TEST(Gini, MoreSkewMoreGini) {
  const std::vector<double> mild{4.0, 5.0, 6.0};
  const std::vector<double> wild{1.0, 5.0, 20.0};
  EXPECT_GT(gini(wild), gini(mild));
}

TEST(Normalize, SumsToOne) {
  const std::vector<double> xs{2.0, 3.0, 5.0};
  const auto out = normalize(xs);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0] + out[1] + out[2], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(Normalize, ZeroSumIsEmpty) {
  const std::vector<double> xs{0.0, 0.0};
  EXPECT_TRUE(normalize(xs).empty());
}

TEST(TopKIndices, ReturnsDescendingByValue) {
  const std::vector<double> xs{0.1, 0.9, 0.5, 0.7};
  const auto idx = top_k_indices(xs, 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 2u);
}

TEST(TopKIndices, KLargerThanInput) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(top_k_indices(xs, 10).size(), 2u);
}

TEST(OverlapFraction, Basic) {
  const std::vector<std::size_t> a{1, 2, 3, 4};
  const std::vector<std::size_t> b{3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(overlap_fraction(a, b), 0.5);
}

TEST(OverlapFraction, EmptyAIsZero) {
  const std::vector<std::size_t> b{1};
  EXPECT_EQ(overlap_fraction({}, b), 0.0);
}

TEST(PeakToMean, BalancedIsOne) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(peak_to_mean(xs), 1.0);
}

TEST(PeakToMean, HotspotDetected) {
  const std::vector<double> xs{1.0, 1.0, 10.0};
  EXPECT_NEAR(peak_to_mean(xs), 2.5, 1e-12);
}

}  // namespace
}  // namespace move::common
