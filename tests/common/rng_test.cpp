#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace move::common {
namespace {

TEST(SplitMix64, SameSeedSameStream) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, ForkIsIndependentOfParentDraws) {
  SplitMix64 a(7);
  SplitMix64 fork1 = a.fork();
  // Re-derive: a fresh generator with the same seed forks identically.
  SplitMix64 b(7);
  SplitMix64 fork2 = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fork1(), fork2());
}

TEST(NamedStream, SameSeedSameNameReplays) {
  SplitMix64 a = named_stream(0x5eed, "net");
  SplitMix64 b = named_stream(0x5eed, "net");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(NamedStream, DifferentSubsystemsGetDisjointStreams) {
  SplitMix64 net = named_stream(0x5eed, "net");
  SplitMix64 fault = named_stream(0x5eed, "fault");
  SplitMix64 workload = named_stream(0x5eed, "workload");
  int collisions = 0;
  for (int i = 0; i < 100; ++i) {
    const auto n = net(), f = fault(), w = workload();
    collisions += (n == f) + (n == w) + (f == w);
  }
  EXPECT_EQ(collisions, 0);
}

TEST(NamedStream, DifferentSeedsDivergeForTheSameName) {
  SplitMix64 a = named_stream(1, "net");
  SplitMix64 b = named_stream(2, "net");
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(NamedStream, DrawsFromOneStreamNeverPerturbAnother) {
  // The property the determinism goldens lean on: bolting a new randomized
  // subsystem ("net") onto a seeded pipeline must not shift any existing
  // subsystem's sequence, however many draws the new one makes.
  SplitMix64 fault_alone = named_stream(0xabc, "fault");
  SplitMix64 fault_beside = named_stream(0xabc, "fault");
  SplitMix64 net = named_stream(0xabc, "net");
  for (int i = 0; i < 1'000; ++i) (void)net();  // net burns a lot of draws
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fault_alone(), fault_beside());
}

TEST(NamedStream, TinySeedsStillDecorrelate) {
  // Adjacent small seeds are the common case (test seeds 0,1,2...); the
  // name hash mixing must keep them apart even then.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SplitMix64 a = named_stream(seed, "net");
    SplitMix64 b = named_stream(seed + 1, "net");
    EXPECT_NE(a(), b()) << "seed " << seed;
  }
}

TEST(UniformBelow, RespectsBound) {
  SplitMix64 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(uniform_below(rng, 7), 7u);
  }
}

TEST(UniformBelow, BoundOneAlwaysZero) {
  SplitMix64 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_below(rng, 1), 0u);
}

TEST(UniformBelow, CoversAllResidues) {
  SplitMix64 rng(3);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) ++seen[uniform_below(rng, 10)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(UniformBelow, ApproximatelyUniform) {
  SplitMix64 rng(5);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  std::vector<int> seen(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++seen[uniform_below(rng, kBuckets)];
  for (int count : seen) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(UniformUnit, InHalfOpenInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double u = uniform_unit(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformUnit, MeanNearHalf) {
  SplitMix64 rng(13);
  double sum = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) sum += uniform_unit(rng);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Bernoulli, DegenerateProbabilities) {
  SplitMix64 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(rng, 0.0));
    EXPECT_TRUE(bernoulli(rng, 1.0));
    EXPECT_FALSE(bernoulli(rng, -1.0));
    EXPECT_TRUE(bernoulli(rng, 2.0));
  }
}

TEST(Bernoulli, FrequencyTracksProbability) {
  SplitMix64 rng(19);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) hits += bernoulli(rng, 0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

}  // namespace
}  // namespace move::common
