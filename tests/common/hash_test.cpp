#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace move::common {
namespace {

TEST(Fnv1a64, MatchesKnownVectors) {
  // Published FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, IntegerOverloadIsDeterministic) {
  EXPECT_EQ(fnv1a64(std::uint64_t{42}), fnv1a64(std::uint64_t{42}));
  EXPECT_NE(fnv1a64(std::uint64_t{42}), fnv1a64(std::uint64_t{43}));
}

TEST(Fnv1a64, IntegerOverloadHashesAllBytes) {
  // Keys differing only in the top byte must differ.
  EXPECT_NE(fnv1a64(std::uint64_t{1}), fnv1a64(1ULL << 56));
}

TEST(Mix64, IsBijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    outputs.insert(mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10'000u);
}

TEST(Mix64, ZeroDoesNotMapToZero) { EXPECT_NE(mix64(0), 0u); }

TEST(HashCombine, OrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, SeedChangesResult) {
  EXPECT_NE(hash_combine(1, 7), hash_combine(2, 7));
}

TEST(DoubleHash, StrideIsForcedOdd) {
  // h2 even would cycle through only half the slots of a power-of-two table;
  // the implementation ors in 1.
  const std::uint64_t a = double_hash(10, 4, 1);
  EXPECT_EQ(a, 10 + (4 | 1));
}

TEST(DoubleHash, IndexZeroIsBaseHash) {
  EXPECT_EQ(double_hash(123, 456, 0), 123u);
}

}  // namespace
}  // namespace move::common
