#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <set>

namespace move::common {
namespace {

TEST(ThreadPool, ZeroThreadsPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 500;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_EQ(pool.tasks_completed(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  EXPECT_EQ(pool.tasks_completed(), 0u);
}

TEST(ThreadPool, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::condition_variable cv;
  std::set<std::thread::id> seen;
  // A rendezvous, not a sleep: each task blocks (deadline-bounded) until a
  // second distinct worker has arrived, so one worker cannot drain the
  // queue alone — distribution is forced by construction rather than by a
  // wall-clock duration a loaded host can violate.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      std::unique_lock lock(mutex);
      seen.insert(std::this_thread::get_id());
      cv.notify_all();
      cv.wait_until(lock, deadline, [&] { return seen.size() >= 2; });
    });
  }
  pool.wait_idle();
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, SubmitBulkRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 500;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.submit_bulk(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_EQ(pool.tasks_completed(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPool, SubmitBulkEmptyIsNoop) {
  ThreadPool pool(2);
  pool.submit_bulk({});
  pool.wait_idle();  // must not hang
  EXPECT_EQ(pool.tasks_completed(), 0u);
}

TEST(ThreadPool, SubmitBulkInterleavesWithSubmit) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.submit_bulk(std::move(tasks));
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 52);
}

TEST(ThreadPool, CurrentWorkerIndexOutsidePoolIsSentinel) {
  EXPECT_EQ(ThreadPool::current_worker_index(), ThreadPool::kNotAWorker);
}

TEST(ThreadPool, CurrentWorkerIndexIsStableAndInRange) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::condition_variable cv;
  std::set<std::size_t> seen;
  std::atomic<bool> out_of_range{false};
  // Same rendezvous as TasksRunOnMultipleThreads: block each task until a
  // second distinct worker index has checked in (no sleeps to outlast).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      const std::size_t w = ThreadPool::current_worker_index();
      if (w >= pool.thread_count()) out_of_range.store(true);
      std::unique_lock lock(mutex);
      seen.insert(w);
      cv.notify_all();
      cv.wait_until(lock, deadline, [&] { return seen.size() >= 2; });
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(out_of_range.load());
  EXPECT_GE(seen.size(), 2u);
  // Still a non-worker on the submitting thread.
  EXPECT_EQ(ThreadPool::current_worker_index(), ThreadPool::kNotAWorker);
}

TEST(ThreadPool, HeavyContention) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kTasks = 2'000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(static_cast<std::uint64_t>(i)); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(),
            static_cast<std::uint64_t>(kTasks) * (kTasks - 1) / 2);
}

}  // namespace
}  // namespace move::common
