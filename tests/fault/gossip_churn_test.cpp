#include <gtest/gtest.h>

#include <cmath>

#include "fault/fault_injector.hpp"
#include "fault_test_util.hpp"
#include "kv/gossip.hpp"

/// Gossip membership under cluster-driven churn: fail/recover events flow
/// from the Cluster into the attached GossipMembership (heartbeats freeze
/// and thaw), the injector's virtual-time ticks run the rounds, and the
/// routing belief (`routing_believes_alive`) lags then converges. The pure
/// membership-layer churn properties live in kv/gossip_test.cpp; these
/// tests cover the integration the failure path actually routes on.
namespace move::fault {
namespace {

/// Detection bound: suspicion window plus the push-pull epidemic diameter.
std::size_t detection_bound(std::size_t nodes, const kv::GossipConfig& cfg) {
  return cfg.suspicion_rounds +
         2 * static_cast<std::size_t>(std::ceil(std::log2(double(nodes))));
}

TEST(GossipChurn, RoutingBeliefLagsThenConvergesAfterFailure) {
  cluster::Cluster c(testutil::small_cluster(16));
  kv::GossipMembership m;
  c.attach_membership(&m);  // seeds full mutual knowledge
  ASSERT_TRUE(m.converged());

  c.fail_node(NodeId{5});
  // The failure detector has not run yet: routing still believes in node 5.
  EXPECT_TRUE(c.routing_believes_alive(NodeId{5}));
  EXPECT_FALSE(c.alive(NodeId{5}));

  const kv::GossipConfig cfg;
  m.run_rounds(detection_bound(16, cfg));
  EXPECT_FALSE(c.routing_believes_alive(NodeId{5}));
  EXPECT_TRUE(m.converged());
  EXPECT_EQ(m.false_suspicions(), 0u);

  c.revive_node(NodeId{5});
  m.run_rounds(detection_bound(16, cfg));
  EXPECT_TRUE(c.routing_believes_alive(NodeId{5}));
  EXPECT_TRUE(m.converged());
  EXPECT_EQ(m.false_suspicions(), 0u);
  c.attach_membership(nullptr);
}

TEST(GossipChurn, InjectorTicksConvergeScriptedChurnWithinBoundedRounds) {
  cluster::Cluster c(testutil::small_cluster(16));
  auto scheme = testutil::make_scheme(testutil::SchemeKind::kIl, c);
  kv::GossipMembership m;
  c.attach_membership(&m);

  // Three nodes fail early, recover late; gossip ticks every 1000 virtual
  // microseconds drive the rounds between the membership events.
  FaultPlan plan;
  plan.fail(NodeId{2}, 2'000.0).fail(NodeId{7}, 2'000.0)
      .fail(NodeId{11}, 3'000.0);
  plan.recover(NodeId{2}, 30'000.0).recover(NodeId{7}, 30'000.0)
      .recover(NodeId{11}, 31'000.0);
  FaultInjectorOptions opts;
  opts.enable_repair = false;
  opts.gossip_rounds_per_tick = 1;
  opts.gossip_tick_us = 1'000.0;
  FaultInjector injector(*scheme, plan, opts);

  const kv::GossipConfig cfg;
  const double bound_us =
      static_cast<double>(detection_bound(16, cfg)) * opts.gossip_tick_us;
  const double horizon = 31'000.0 + bound_us + 2'000.0;
  const double start = c.engine().now();
  injector.arm(horizon);

  // Mid-outage checkpoint: past the detection bound, every crash is known
  // to the routing layer (belief == ground truth again).
  c.engine().run_until(start + 3'000.0 + bound_us);
  for (std::uint32_t n : {2u, 7u, 11u}) {
    EXPECT_FALSE(c.routing_believes_alive(NodeId{n})) << "node " << n;
  }
  EXPECT_EQ(c.live_count(), 13u);

  // Drain past recovery + bound: converged, everyone believed alive again.
  c.engine().run();
  EXPECT_EQ(c.live_count(), 16u);
  for (std::uint32_t n = 0; n < 16; ++n) {
    EXPECT_TRUE(c.routing_believes_alive(NodeId{n})) << "node " << n;
  }
  EXPECT_TRUE(m.converged());
  // Quiescent-cluster guarantee: the detector suspected only real crashes.
  EXPECT_GT(m.suspicions(), 0u);
  EXPECT_EQ(m.false_suspicions(), 0u);
  c.attach_membership(nullptr);
}

TEST(GossipChurn, QuiescentTicksAddNoSuspicions) {
  cluster::Cluster c(testutil::small_cluster(12));
  auto scheme = testutil::make_scheme(testutil::SchemeKind::kIl, c);
  kv::GossipMembership m;
  c.attach_membership(&m);

  FaultInjectorOptions opts;
  opts.enable_repair = false;
  opts.gossip_tick_us = 500.0;
  FaultInjector injector(*scheme, FaultPlan{}, opts);
  injector.arm(20'000.0);
  c.engine().run();  // ~40 gossip rounds, nobody fails

  EXPECT_GT(m.rounds_elapsed(), 0u);
  EXPECT_EQ(m.suspicions(), 0u);
  EXPECT_EQ(m.false_suspicions(), 0u);
  EXPECT_TRUE(m.converged());
  c.attach_membership(nullptr);
}

}  // namespace
}  // namespace move::fault
