#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "core/il_scheme.hpp"
#include "core/move_scheme.hpp"
#include "core/rs_scheme.hpp"
#include "index/brute_force.hpp"
#include "index/filter_store.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

/// Shared workload, cluster shape, and scheme factory for the fault-path
/// tests. Smaller than the core scheme workload (chaos runs each doc through
/// plan_publish many times per churn step) but built from the same
/// generators, with brute-force ground truth computed once.
namespace move::fault::testutil {

constexpr std::size_t kVocab = 800;
constexpr std::size_t kFilters = 1'500;
constexpr std::size_t kDocs = 60;
constexpr std::size_t kNodes = 10;

class ChaosWorkload {
 public:
  ChaosWorkload() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = kFilters;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 40;
    filters_ = workload::QueryTraceGenerator(qcfg).generate();

    auto ccfg = workload::CorpusConfig::trec_wt_like(0.002, kVocab);
    ccfg.head_count = 40;
    docs_ = workload::CorpusGenerator(ccfg).generate(kDocs);

    for (std::size_t i = 0; i < filters_.size(); ++i) {
      reference_.add(filters_.row(i));
    }
    filter_stats_ = workload::compute_stats(filters_, kVocab);
    corpus_stats_ = workload::compute_stats(docs_, kVocab);
    truth_.reserve(kDocs);
    for (std::size_t d = 0; d < docs_.size(); ++d) {
      truth_.push_back(index::brute_force_match(reference_, docs_.row(d), {}));
    }
  }

  [[nodiscard]] const std::vector<FilterId>& truth(std::size_t doc) const {
    return truth_[doc];
  }

  workload::TermSetTable filters_;
  workload::TermSetTable docs_;
  index::FilterStore reference_;
  workload::TraceStats filter_stats_;
  workload::TraceStats corpus_stats_;

 private:
  std::vector<std::vector<FilterId>> truth_;
};

inline const ChaosWorkload& shared_workload() {
  static const ChaosWorkload w;
  return w;
}

inline cluster::ClusterConfig small_cluster(std::size_t nodes = kNodes) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_racks = 2;
  return cfg;
}

enum class SchemeKind { kIl, kMove, kRs };

inline const char* scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kIl: return "IL";
    case SchemeKind::kMove: return "MOVE";
    case SchemeKind::kRs: return "RS";
  }
  return "?";
}

/// Builds a fully registered (and, for MOVE, allocated) scheme over `c`.
inline std::unique_ptr<core::Scheme> make_scheme(SchemeKind kind,
                                                 cluster::Cluster& c) {
  const ChaosWorkload& w = shared_workload();
  switch (kind) {
    case SchemeKind::kIl: {
      auto s = std::make_unique<core::IlScheme>(c);
      s->register_filters(w.filters_);
      return s;
    }
    case SchemeKind::kMove: {
      core::MoveOptions opts;
      opts.capacity = 600;  // P=1500 over 10 nodes
      auto s = std::make_unique<core::MoveScheme>(c, opts);
      s->register_filters(w.filters_);
      s->allocate(w.filter_stats_, w.corpus_stats_);
      return s;
    }
    case SchemeKind::kRs: {
      auto s = std::make_unique<core::RsScheme>(c);
      s->register_filters(w.filters_);
      return s;
    }
  }
  return nullptr;
}

/// Conservative reachability gate: does the scheme *guarantee* filter `f`
/// is found for a matching document under the current liveness, without any
/// repair having run? IL/MOVE index a filter at the home of each of its
/// terms, but only the homes of terms the *document* contains are contacted
/// (matching is overlap-based, so a matching filter may share just a few
/// terms with the doc) — one live home among those suffices, the failover
/// walk only ever adds more. RS replicates the whole filter on its key's
/// owner set, so one live owner suffices (flooding visits every live node).
inline bool guaranteed_reachable(SchemeKind kind, const cluster::Cluster& c,
                                 FilterId f,
                                 std::span<const TermId> doc_terms) {
  const ChaosWorkload& w = shared_workload();
  if (kind == SchemeKind::kRs) {
    const core::RsOptions defaults;
    const std::uint64_t key =
        common::mix64(common::hash_combine(defaults.seed, f.value));
    if (c.alive(c.ring().home_of_hash(key))) return true;
    for (NodeId owner : c.ring().successors(key, defaults.replicas - 1)) {
      if (c.alive(owner)) return true;
    }
    return false;
  }
  for (TermId t : w.filters_.row(f.value)) {
    if (!std::binary_search(doc_terms.begin(), doc_terms.end(), t,
                            [](TermId a, TermId b) {
                              return a.value < b.value;
                            })) {
      continue;  // this term's home is never contacted for this document
    }
    if (c.alive(c.ring().home_of_term(t))) return true;
  }
  return false;
}

}  // namespace move::fault::testutil
