#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "kv/kv_store.hpp"
#include "sim/fault_accounting.hpp"

/// KeyValueStore hinted handoff: writes for dead owners park on the first
/// live non-owner successor and drain when the owner (or the holder)
/// recovers — the Dynamo sloppy-quorum story the chaos layer builds on.
namespace move::kv {
namespace {

constexpr std::uint32_t kNodes = 10;

class HandoffFixture : public ::testing::Test {
 protected:
  HandoffFixture() : alive_(kNodes, true) {
    for (std::uint32_t i = 0; i < kNodes; ++i) ring_.add_node(NodeId{i});
    store_ = std::make_unique<KeyValueStore>(
        ring_, 3, [this](NodeId n) { return alive_[n.value]; });
  }

  void kill(NodeId n) { alive_[n.value] = false; }
  void revive(NodeId n) { alive_[n.value] = true; }

  /// The one node currently holding parked hints (asserts exactly one).
  NodeId sole_holder() const {
    std::vector<NodeId> holders;
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      if (store_->hints_on(NodeId{i}) > 0) holders.push_back(NodeId{i});
    }
    EXPECT_EQ(holders.size(), 1u);
    return holders.empty() ? NodeId{0} : holders[0];
  }

  HashRing ring_;
  std::vector<bool> alive_;
  std::unique_ptr<KeyValueStore> store_;
};

TEST_F(HandoffFixture, DeadOwnerWriteParksOnLiveNonOwnerSuccessor) {
  const auto owners = store_->owners("k");
  kill(owners[1]);
  EXPECT_EQ(store_->put("k", "v"), 2u);  // two live owners written directly
  EXPECT_EQ(store_->handoff_queue_depth(), 1u);
  const NodeId holder = sole_holder();
  EXPECT_TRUE(alive_[holder.value]);
  EXPECT_EQ(std::find(owners.begin(), owners.end(), holder), owners.end())
      << "hint must be parked outside the owner set";
  // The holder is the *first* live non-owner on the key's successor walk.
  for (NodeId n : ring_.successors(common::fnv1a64("k"), kNodes - 1)) {
    if (std::find(owners.begin(), owners.end(), n) != owners.end()) continue;
    if (!alive_[n.value]) continue;
    EXPECT_EQ(n, holder);
    break;
  }
}

TEST_F(HandoffFixture, DrainDeliversToRecoveredOwner) {
  const auto owners = store_->owners("k");
  kill(owners[1]);
  store_->put("k", "v");
  revive(owners[1]);
  EXPECT_EQ(store_->drain_hints(owners[1]), 1u);
  EXPECT_EQ(store_->handoff_queue_depth(), 0u);
  // The recovered owner can now serve the key on its own.
  kill(owners[0]);
  kill(owners[2]);
  ASSERT_TRUE(store_->get("k").has_value());
  EXPECT_EQ(store_->get("k").value(), "v");
}

TEST_F(HandoffFixture, RepeatedWritesCollapseToOneHintLastWriteWins) {
  const auto owners = store_->owners("k");
  kill(owners[0]);
  store_->put("k", "v1");
  store_->put("k", "v2");
  store_->put("k", "v3");
  EXPECT_EQ(store_->handoff_queue_depth(), 1u);  // (target, key) deduped
  revive(owners[0]);
  EXPECT_EQ(store_->drain_hints(owners[0]), 1u);
  kill(owners[1]);
  kill(owners[2]);
  EXPECT_EQ(store_->get("k").value(), "v3");
}

TEST_F(HandoffFixture, HintsOnDeadHolderWaitForTheHolder) {
  const auto owners = store_->owners("k");
  kill(owners[1]);
  store_->put("k", "v");
  const NodeId holder = sole_holder();
  kill(holder);
  revive(owners[1]);
  // The target is back, but its hint sits on a dead holder: undeliverable.
  EXPECT_EQ(store_->drain_hints(owners[1]), 0u);
  EXPECT_EQ(store_->handoff_queue_depth(), 1u);
  // Once the holder itself recovers, its outbound hints deliver.
  revive(holder);
  EXPECT_EQ(store_->drain_hints(holder), 1u);
  EXPECT_EQ(store_->handoff_queue_depth(), 0u);
  kill(owners[0]);
  kill(owners[2]);
  EXPECT_EQ(store_->get("k").value(), "v");
}

TEST_F(HandoffFixture, AllOwnersDeadParksOneHintPerOwner) {
  const auto owners = store_->owners("k");
  for (NodeId o : owners) kill(o);
  EXPECT_EQ(store_->put("k", "v"), 0u);
  EXPECT_EQ(store_->handoff_queue_depth(), 3u);
  EXPECT_FALSE(store_->contains("k"));  // no live owner holds it yet
  for (NodeId o : owners) {
    revive(o);
    store_->drain_hints(o);
  }
  EXPECT_EQ(store_->handoff_queue_depth(), 0u);
  EXPECT_TRUE(store_->contains("k"));
  EXPECT_EQ(store_->get("k").value(), "v");
}

TEST_F(HandoffFixture, EraseScrubsParkedHints) {
  const auto owners = store_->owners("k");
  kill(owners[2]);
  store_->put("k", "v");
  ASSERT_EQ(store_->handoff_queue_depth(), 1u);
  store_->erase("k");
  EXPECT_EQ(store_->handoff_queue_depth(), 0u);
  revive(owners[2]);
  EXPECT_EQ(store_->drain_hints(owners[2]), 0u);
  EXPECT_FALSE(store_->contains("k"));
}

TEST_F(HandoffFixture, FaultAccountingTracksParkAndDrainVolumes) {
  sim::FaultAccounting acc;
  store_->attach_fault_accounting(&acc);
  const auto owners = store_->owners("k");
  kill(owners[0]);
  store_->put("k", "v");
  EXPECT_EQ(acc.hints_parked, 1u);
  EXPECT_EQ(acc.hints_drained, 0u);
  revive(owners[0]);
  store_->drain_hints(owners[0]);
  EXPECT_EQ(acc.hints_parked, 1u);
  EXPECT_EQ(acc.hints_drained, 1u);
}

TEST_F(HandoffFixture, ReparkMovesHintsOffDyingHolderToNextLiveSuccessor) {
  const auto owners = store_->owners("k");
  kill(owners[1]);
  store_->put("k", "v");
  const NodeId holder = sole_holder();
  // The holder dies while still loaded with hints. Evacuating it re-parks
  // the hint on the next live non-owner successor instead of letting it
  // wait out the holder's own recovery.
  kill(holder);
  EXPECT_EQ(store_->repark_hints(holder), 1u);
  EXPECT_EQ(store_->hints_on(holder), 0u);
  EXPECT_EQ(store_->handoff_queue_depth(), 1u);  // moved, not dropped
  const NodeId next = sole_holder();
  EXPECT_NE(next, holder);
  EXPECT_TRUE(alive_[next.value]);
  EXPECT_EQ(std::find(owners.begin(), owners.end(), next), owners.end());
  // The re-parked hint drains through the normal path once the target
  // recovers — the dead former holder never has to come back.
  revive(owners[1]);
  EXPECT_EQ(store_->drain_hints(owners[1]), 1u);
  EXPECT_EQ(store_->handoff_queue_depth(), 0u);
  kill(owners[0]);
  kill(owners[2]);
  EXPECT_EQ(store_->get("k").value(), "v");
}

TEST_F(HandoffFixture, ReparkDeliversDirectlyWhenTargetIsAlreadyBack) {
  sim::FaultAccounting acc;
  store_->attach_fault_accounting(&acc);
  const auto owners = store_->owners("k");
  kill(owners[1]);
  store_->put("k", "v");
  const NodeId holder = sole_holder();
  // Target recovers first, then the holder dies before anyone drained it.
  revive(owners[1]);
  kill(holder);
  EXPECT_EQ(store_->repark_hints(holder), 1u);
  // A live target needs no second parking spot: the hint lands directly.
  EXPECT_EQ(store_->handoff_queue_depth(), 0u);
  EXPECT_EQ(acc.hints_drained, 1u);
  kill(owners[0]);
  kill(owners[2]);
  EXPECT_EQ(store_->get("k").value(), "v");
}

TEST_F(HandoffFixture, ReparkWithNothingParkedIsANoop) {
  EXPECT_EQ(store_->repark_hints(NodeId{4}), 0u);
  EXPECT_EQ(store_->handoff_queue_depth(), 0u);
}

TEST_F(HandoffFixture, ReparkWalksPastDeadCandidates) {
  const auto owners = store_->owners("k");
  kill(owners[1]);
  store_->put("k", "v");
  const NodeId holder = sole_holder();
  // Kill the would-be next holder too: the evacuation must keep walking
  // the successor ring until it finds somewhere live to park.
  kill(holder);
  EXPECT_EQ(store_->repark_hints(holder), 1u);
  const NodeId second = sole_holder();
  kill(second);
  EXPECT_EQ(store_->repark_hints(second), 1u);
  const NodeId third = sole_holder();
  EXPECT_TRUE(alive_[third.value]);
  EXPECT_NE(third, holder);
  EXPECT_NE(third, second);
  EXPECT_EQ(store_->handoff_queue_depth(), 1u);
  revive(owners[1]);
  EXPECT_EQ(store_->drain_hints(owners[1]), 1u);
  EXPECT_EQ(store_->get("k").has_value(), true);
}

TEST_F(HandoffFixture, HealthyPutsParkNothing) {
  for (int i = 0; i < 50; ++i) {
    store_->put("key/" + std::to_string(i), "v");
  }
  EXPECT_EQ(store_->handoff_queue_depth(), 0u);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(store_->hints_on(NodeId{i}), 0u);
  }
}

}  // namespace
}  // namespace move::kv
