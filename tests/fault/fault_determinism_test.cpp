#include <gtest/gtest.h>

#include <thread>
#include <utility>

#include "fault/churn_runner.hpp"
#include "fault_test_util.hpp"

/// Determinism golden tests: the whole failure path — scripted injection,
/// failover routing, hinted handoff, incremental repair — replays
/// bit-identically from (seed, plan), on this thread or any other. Every
/// comparison below is exact (including doubles): a single stray
/// wall-clock read, unseeded draw, or address-dependent iteration order
/// anywhere in the pipeline fails this test.
namespace move::fault {
namespace {

using testutil::SchemeKind;

FaultPlan golden_plan(std::size_t cluster_size) {
  return FaultPlan::random_churn(0x601dULL, cluster_size, 30'000.0, 3,
                                 8'000.0);
}

ChurnResult run_once(SchemeKind kind) {
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(kind, c);
  const auto plan = golden_plan(c.size());
  ChurnConfig cfg;
  cfg.inject_rate_per_sec = 2'000.0;
  cfg.sample_interval_us = 5'000.0;
  cfg.collect_latencies = true;
  cfg.injector.repair_batch = 1'024;
  cfg.injector.repair_interval_us = 2'000.0;
  return run_churn(*scheme, w.docs_, plan, cfg);
}

void expect_identical(const ChurnResult& a, const ChurnResult& b) {
  // Whole-run metrics, exact.
  EXPECT_EQ(a.metrics.documents_published, b.metrics.documents_published);
  EXPECT_EQ(a.metrics.documents_completed, b.metrics.documents_completed);
  EXPECT_EQ(a.metrics.notifications, b.metrics.notifications);
  EXPECT_EQ(a.metrics.makespan_us, b.metrics.makespan_us);
  EXPECT_EQ(a.metrics.latencies_us, b.metrics.latencies_us);
  EXPECT_EQ(a.metrics.node_busy_us, b.metrics.node_busy_us);
  EXPECT_EQ(a.metrics.node_docs, b.metrics.node_docs);
  EXPECT_EQ(a.metrics.node_queue_wait_us, b.metrics.node_queue_wait_us);
  EXPECT_EQ(a.metrics.node_storage, b.metrics.node_storage);
  // Failure accounting, field by field.
  EXPECT_EQ(a.metrics.fault_acc.failed_routes, b.metrics.fault_acc.failed_routes);
  EXPECT_EQ(a.metrics.fault_acc.route_retries, b.metrics.fault_acc.route_retries);
  EXPECT_EQ(a.metrics.fault_acc.dead_contacts, b.metrics.fault_acc.dead_contacts);
  EXPECT_EQ(a.metrics.fault_acc.failovers, b.metrics.fault_acc.failovers);
  EXPECT_EQ(a.metrics.fault_acc.hints_parked, b.metrics.fault_acc.hints_parked);
  EXPECT_EQ(a.metrics.fault_acc.hints_drained, b.metrics.fault_acc.hints_drained);
  EXPECT_EQ(a.metrics.fault_acc.repair_postings_moved,
            b.metrics.fault_acc.repair_postings_moved);
  // Injector timeline.
  EXPECT_EQ(a.timeline.failures, b.timeline.failures);
  EXPECT_EQ(a.timeline.recoveries, b.timeline.recoveries);
  EXPECT_EQ(a.timeline.total_downtime_us, b.timeline.total_downtime_us);
  EXPECT_EQ(a.timeline.repair_batches, b.timeline.repair_batches);
  EXPECT_EQ(a.timeline.repair_entries_applied, b.timeline.repair_entries_applied);
  EXPECT_EQ(a.timeline.hints_drained, b.timeline.hints_drained);
  // Registry + availability aggregates.
  EXPECT_EQ(a.registry_readable, b.registry_readable);
  EXPECT_EQ(a.registry_hints_parked, b.registry_hints_parked);
  EXPECT_EQ(a.registry_hints_drained, b.registry_hints_drained);
  EXPECT_EQ(a.mean_availability, b.mean_availability);
  EXPECT_EQ(a.min_availability, b.min_availability);
  EXPECT_EQ(a.unavailable_us, b.unavailable_us);
  // Every sample of the timeline, exact.
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].t_us, b.samples[i].t_us) << "sample " << i;
    EXPECT_EQ(a.samples[i].throughput_per_sec, b.samples[i].throughput_per_sec)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].availability, b.samples[i].availability)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].live_nodes, b.samples[i].live_nodes)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].handoff_queue_depth,
              b.samples[i].handoff_queue_depth)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].repair_backlog, b.samples[i].repair_backlog)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].fault.failovers, b.samples[i].fault.failovers)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].fault.repair_postings_moved,
              b.samples[i].fault.repair_postings_moved)
        << "sample " << i;
  }
}

class FaultDeterminism : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(FaultDeterminism, SamePlanSameSeedIsBitIdentical) {
  const auto first = run_once(GetParam());
  const auto second = run_once(GetParam());
  expect_identical(first, second);
  // The run actually exercised the failure path.
  EXPECT_EQ(first.timeline.failures, 3u);
  EXPECT_GT(first.timeline.repair_entries_applied, 0u);
  if (GetParam() != SchemeKind::kRs) {
    // RS keeps availability through its untouched replicas; with only three
    // failures no filter loses its whole owner set, so repair may legally
    // move nothing. IL/MOVE lose term homes outright and must re-replicate.
    EXPECT_GT(first.metrics.fault_acc.repair_postings_moved, 0u);
  }
}

TEST_P(FaultDeterminism, IdenticalAcrossThreads) {
  const auto here = run_once(GetParam());
  ChurnResult there;
  std::thread worker(
      [&there, kind = GetParam()] { there = run_once(kind); });
  worker.join();
  expect_identical(here, there);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FaultDeterminism,
                         ::testing::Values(SchemeKind::kIl, SchemeKind::kMove,
                                           SchemeKind::kRs),
                         [](const auto& info) {
                           return testutil::scheme_name(info.param);
                         });

}  // namespace
}  // namespace move::fault
