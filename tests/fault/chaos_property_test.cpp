#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "fault/churn_runner.hpp"
#include "fault_test_util.hpp"

/// Chaos/property layer for the failure path: random churn scripts applied
/// to every scheme, checked after every step against brute-force truth.
///
/// Invariants (per step, per document):
///  * matches are sorted and unique — no document is delivered to the same
///    filter twice, whatever failover paths fired;
///  * matches ⊆ brute-force truth — failover never invents matches;
///  * every filter the conservative reachability gate guarantees (≥1 live
///    replica home, see fault_test_util.hpp) is still matched — losing
///    unreachable filters is allowed, losing reachable ones is a bug.
namespace move::fault {
namespace {

using testutil::SchemeKind;

void check_invariants(SchemeKind kind, cluster::Cluster& c,
                      core::Scheme& scheme, const char* context) {
  const auto& w = testutil::shared_workload();
  for (std::size_t d = 0; d < w.docs_.size(); d += 3) {
    const auto plan = scheme.plan_publish(w.docs_.row(d));
    const auto& truth = w.truth(d);
    // No double delivery: strictly ascending filter ids.
    for (std::size_t i = 1; i < plan.matches.size(); ++i) {
      ASSERT_LT(plan.matches[i - 1].value, plan.matches[i].value)
          << context << " doc " << d << ": duplicate/unsorted delivery";
    }
    // No invented matches.
    for (FilterId f : plan.matches) {
      ASSERT_TRUE(std::binary_search(
          truth.begin(), truth.end(), f,
          [](FilterId a, FilterId b) { return a.value < b.value; }))
          << context << " doc " << d << ": spurious match " << f.value;
    }
    // No reachable filter lost.
    for (FilterId f : truth) {
      if (!testutil::guaranteed_reachable(kind, c, f, w.docs_.row(d))) {
        continue;
      }
      ASSERT_TRUE(std::binary_search(
          plan.matches.begin(), plan.matches.end(), f,
          [](FilterId a, FilterId b) { return a.value < b.value; }))
          << context << " doc " << d << ": lost reachable filter " << f.value;
    }
  }
}

class ChaosProperty : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(ChaosProperty, ReachableFiltersSurviveScriptedChurn) {
  const SchemeKind kind = GetParam();
  for (std::uint64_t seed : {0x11u, 0x22u, 0x33u}) {
    cluster::Cluster c(testutil::small_cluster());
    auto scheme = testutil::make_scheme(kind, c);
    common::SplitMix64 rng(seed);

    check_invariants(kind, c, *scheme, "healthy");

    // Wave 1: two failures.
    std::vector<NodeId> downed;
    for (int i = 0; i < 2; ++i) {
      auto live = c.live_nodes();
      const NodeId victim = live[common::uniform_below(rng, live.size())];
      c.fail_node(victim);
      downed.push_back(victim);
    }
    check_invariants(kind, c, *scheme, "after wave 1");

    // Wave 2: two more (4/10 down — within the failover walk's budget).
    for (int i = 0; i < 2; ++i) {
      auto live = c.live_nodes();
      const NodeId victim = live[common::uniform_below(rng, live.size())];
      c.fail_node(victim);
      downed.push_back(victim);
    }
    check_invariants(kind, c, *scheme, "after wave 2");

    // Partial recovery.
    c.revive_node(downed[common::uniform_below(rng, downed.size())]);
    check_invariants(kind, c, *scheme, "after partial recovery");

    // Full recovery: with every node back (data was kept, fail is not
    // decommission) matching must be exactly brute force again.
    c.revive_all();
    for (std::size_t d = 0; d < testutil::shared_workload().docs_.size();
         d += 3) {
      const auto plan =
          scheme->plan_publish(testutil::shared_workload().docs_.row(d));
      ASSERT_EQ(plan.matches, testutil::shared_workload().truth(d))
          << testutil::scheme_name(kind) << " seed " << seed << " doc " << d;
    }
  }
}

// After the repair pipeline re-applies every entry lost with the failed
// nodes, matching is *exactly* brute force even while the nodes stay dead:
// repair places copies where the routing failover walk looks (the unified
// agreement rule), so nothing reachable-by-walk is missing any more.
TEST_P(ChaosProperty, RepairRestoresExactMatchingWhileNodesAreDown) {
  const SchemeKind kind = GetParam();
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(kind, c);

  common::SplitMix64 rng(0xbeef);
  std::vector<NodeId> victims;
  for (int i = 0; i < 3; ++i) {
    auto live = c.live_nodes();
    const NodeId v = live[common::uniform_below(rng, live.size())];
    c.fail_node(v);
    victims.push_back(v);
  }

  std::vector<core::RepairEntry> entries;
  for (NodeId v : victims) {
    const auto lost = scheme->collect_repair_entries(v);
    entries.insert(entries.end(), lost.begin(), lost.end());
  }
  ASSERT_FALSE(entries.empty());

  std::size_t moved = 0;
  for (std::size_t i = 0; i < entries.size(); i += 256) {
    const auto n = std::min<std::size_t>(256, entries.size() - i);
    moved += scheme->apply_repair_entries(
        std::span<const core::RepairEntry>(entries.data() + i, n));
  }
  EXPECT_GT(moved, 0u);

  for (std::size_t d = 0; d < w.docs_.size(); ++d) {
    ASSERT_EQ(scheme->plan_publish(w.docs_.row(d)).matches, w.truth(d))
        << testutil::scheme_name(kind) << " doc " << d;
  }
  EXPECT_EQ(scheme->filter_availability(), 1.0);

  // Repair is idempotent: a second pass over the same entries moves nothing.
  EXPECT_EQ(scheme->apply_repair_entries(
                std::span<const core::RepairEntry>(entries)),
            0u);
  c.revive_all();
}

// End-to-end chaos through the churn runner: documents injected while a
// random plan fails and recovers nodes mid-flight. Every document completes,
// every completion survives in the delivery registry (hinted handoff), and
// the backlog/queues are empty once the dust settles.
TEST_P(ChaosProperty, NoCompletedDocumentLostUnderRandomChurn) {
  const SchemeKind kind = GetParam();
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(kind, c);

  const auto plan =
      FaultPlan::random_churn(0x5eed, c.size(), 30'000.0, 3, 8'000.0);
  ChurnConfig cfg;
  cfg.inject_rate_per_sec = 2'000.0;
  cfg.sample_interval_us = 5'000.0;
  cfg.injector.repair_batch = 4'096;
  cfg.injector.repair_interval_us = 2'000.0;
  const auto result = run_churn(*scheme, w.docs_, plan, cfg);

  EXPECT_EQ(result.timeline.failures, 3u);
  EXPECT_EQ(result.timeline.recoveries, 3u);
  EXPECT_EQ(result.metrics.documents_completed, w.docs_.size());
  EXPECT_EQ(result.registry_readable, w.docs_.size())
      << "a completed document's registry entry was lost";
  ASSERT_FALSE(result.samples.empty());
  EXPECT_EQ(result.samples.back().handoff_queue_depth, 0u);
  EXPECT_EQ(result.samples.back().repair_backlog, 0u);
  EXPECT_EQ(result.samples.back().availability, 1.0);
  EXPECT_EQ(c.live_count(), c.size());  // run_churn revives before returning
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ChaosProperty,
                         ::testing::Values(SchemeKind::kIl, SchemeKind::kMove,
                                           SchemeKind::kRs),
                         [](const auto& info) {
                           return testutil::scheme_name(info.param);
                         });

}  // namespace
}  // namespace move::fault
