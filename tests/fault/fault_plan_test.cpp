#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "fault_test_util.hpp"

namespace move::fault {
namespace {

TEST(FaultPlan, EmptyPlanHasZeroHorizon) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.horizon_us(), 0.0);
  EXPECT_TRUE(plan.sorted_events().empty());
}

TEST(FaultPlan, SortedEventsOrderByTimeStableOnTies) {
  FaultPlan plan;
  plan.fail(NodeId{3}, 500.0)
      .recover(NodeId{3}, 2'000.0)
      .fail(NodeId{1}, 100.0)
      .fail(NodeId{2}, 500.0);  // same time as the first: insertion order
  const auto sorted = plan.sorted_events();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].node, NodeId{1});
  EXPECT_EQ(sorted[1].node, NodeId{3});
  EXPECT_EQ(sorted[2].node, NodeId{2});
  EXPECT_EQ(sorted[3].kind, FaultEvent::Kind::kRecover);
  EXPECT_EQ(plan.horizon_us(), 2'000.0);
  // The script itself keeps textual order.
  EXPECT_EQ(plan.events()[0].node, NodeId{3});
}

TEST(FaultPlan, FailFractionValidatesRange) {
  FaultPlan plan;
  EXPECT_THROW(plan.fail_fraction(-0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(plan.fail_fraction(1.5, 0.0), std::invalid_argument);
  plan.fail_fraction(0.25, 1'000.0);
  ASSERT_EQ(plan.events().size(), 1u);
  EXPECT_EQ(plan.events()[0].kind, FaultEvent::Kind::kFailFraction);
  EXPECT_EQ(plan.events()[0].fraction, 0.25);
}

TEST(FaultPlan, RandomChurnIsDeterministicPerSeed) {
  const auto a = FaultPlan::random_churn(77, 20, 100'000.0, 5, 10'000.0);
  const auto b = FaultPlan::random_churn(77, 20, 100'000.0, 5, 10'000.0);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at_us, b.events()[i].at_us);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }
}

TEST(FaultPlan, RandomChurnPairsFailuresWithRecoveries) {
  constexpr double kHorizon = 200'000.0;
  const auto plan = FaultPlan::random_churn(123, 16, kHorizon, 6, 20'000.0);
  std::set<std::uint32_t> victims;
  std::size_t fails = 0, recovers = 0;
  for (const auto& e : plan.events()) {
    if (e.kind == FaultEvent::Kind::kFail) {
      ++fails;
      victims.insert(e.node.value);
      EXPECT_GE(e.at_us, 0.1 * kHorizon);
      EXPECT_LE(e.at_us, 0.55 * kHorizon);
    } else {
      ASSERT_EQ(e.kind, FaultEvent::Kind::kRecover);
      ++recovers;
      EXPECT_LE(e.at_us, 0.9 * kHorizon);
    }
  }
  EXPECT_EQ(fails, 6u);
  EXPECT_EQ(recovers, 6u);
  EXPECT_EQ(victims.size(), 6u);  // distinct nodes
  // Every victim recovers strictly after it fails.
  for (std::uint32_t v : victims) {
    double failed_at = -1.0, recovered_at = -1.0;
    for (const auto& e : plan.events()) {
      if (e.node.value != v) continue;
      (e.kind == FaultEvent::Kind::kFail ? failed_at : recovered_at) = e.at_us;
    }
    EXPECT_GT(recovered_at, failed_at) << "node " << v;
  }
}

TEST(FaultPlan, RandomChurnCapsVictimsAtHalfTheCluster) {
  // Asking for more fail/recover cycles than cluster_size/2 distinct nodes
  // can supply must clamp, keeping the bounded-failover guarantee intact.
  const auto plan = FaultPlan::random_churn(9, 6, 50'000.0, 40, 5'000.0);
  std::set<std::uint32_t> victims;
  for (const auto& e : plan.events()) {
    if (e.kind == FaultEvent::Kind::kFail) victims.insert(e.node.value);
  }
  EXPECT_LE(victims.size(), 3u);
}

// Regression for the fail_fraction off-by-under-count: the kill count must
// be exact over the *currently live* set, even when some nodes are already
// down (the old draw-with-replacement loop could double-pick a victim or
// count an already-dead node toward the quota).
TEST(ClusterFailFraction, KillsExactCountOfLiveNodes) {
  cluster::Cluster c(cluster::ClusterConfig{.num_nodes = 20, .num_racks = 4});
  common::SplitMix64 rng(42);
  for (std::uint32_t i = 0; i < 6; ++i) c.fail_node(NodeId{i});
  ASSERT_EQ(c.live_count(), 14u);
  c.fail_fraction(0.5, rng);  // ceil(0.5 * 14) = 7 more
  EXPECT_EQ(c.live_count(), 7u);
  c.fail_fraction(1.0, rng);
  EXPECT_EQ(c.live_count(), 0u);
  c.revive_all();
  EXPECT_EQ(c.live_count(), 20u);
  c.fail_fraction(0.0, rng);
  EXPECT_EQ(c.live_count(), 20u);
  c.fail_fraction(0.01, rng);  // ceil rounds up: at least one victim
  EXPECT_EQ(c.live_count(), 19u);
}

// --- FaultInjector: plans executed on the virtual clock ---------------------

TEST(FaultInjector, ExecutesEventsAtTheirVirtualTimes) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(testutil::SchemeKind::kIl, c);

  FaultPlan plan;
  plan.fail(NodeId{4}, 1'000.0).recover(NodeId{4}, 3'500.0);
  FaultInjectorOptions opts;
  opts.enable_repair = false;
  FaultInjector injector(*scheme, plan, opts);
  injector.arm(5'000.0);

  const double start = c.engine().now();
  c.engine().run_until(start + 1'500.0);
  EXPECT_FALSE(c.alive(NodeId{4}));
  EXPECT_EQ(injector.timeline().failures, 1u);
  EXPECT_EQ(injector.timeline().recoveries, 0u);
  c.engine().run();
  EXPECT_TRUE(c.alive(NodeId{4}));
  EXPECT_EQ(injector.timeline().recoveries, 1u);
  EXPECT_EQ(injector.timeline().total_downtime_us, 2'500.0);
  EXPECT_GE(injector.timeline().first_failure_us, start + 1'000.0);
  EXPECT_GE(injector.timeline().last_recovery_us, start + 3'500.0);
}

TEST(FaultInjector, ArmTwiceThrows) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(testutil::SchemeKind::kIl, c);
  FaultInjector injector(*scheme, FaultPlan{});
  injector.arm(1'000.0);
  EXPECT_THROW(injector.arm(1'000.0), std::logic_error);
}

TEST(FaultInjector, FailFractionEventKillsExactCount) {
  cluster::Cluster c(testutil::small_cluster());  // 10 nodes
  auto scheme = testutil::make_scheme(testutil::SchemeKind::kIl, c);
  FaultPlan plan;
  plan.fail_fraction(0.3, 500.0);  // ceil(0.3 * 10) = 3 victims
  FaultInjectorOptions opts;
  opts.enable_repair = false;
  FaultInjector injector(*scheme, plan, opts);
  injector.arm(1'000.0);
  c.engine().run();
  EXPECT_EQ(c.live_count(), 7u);
  EXPECT_EQ(injector.timeline().failures, 3u);
  c.revive_all();
}

TEST(FaultInjector, RepairPumpDrainsBacklogInBoundedBatches) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(testutil::SchemeKind::kIl, c);
  FaultPlan plan;
  plan.fail(NodeId{2}, 100.0);
  FaultInjectorOptions opts;
  opts.repair_batch = 64;
  opts.repair_interval_us = 50.0;
  FaultInjector injector(*scheme, plan, opts);
  injector.arm(200.0);
  c.engine().run();
  EXPECT_EQ(injector.repair_backlog(), 0u);
  EXPECT_GT(injector.timeline().repair_entries_applied, 0u);
  // Bounded batches: the pump ran at least entries/batch times.
  EXPECT_GE(injector.timeline().repair_batches,
            injector.timeline().repair_entries_applied / 64);
  EXPECT_GT(c.fault_acc().repair_postings_moved, 0u);
  c.revive_all();
}

TEST(FaultPlan, FilterChurnBuilderRecordsOpsAndValidates) {
  FaultPlan plan;
  EXPECT_FALSE(plan.has_churn_events());
  EXPECT_THROW(plan.filter_churn(0, 100.0), std::invalid_argument);
  plan.filter_churn(250, 1'000.0).filter_churn(50, 2'000.0);
  EXPECT_TRUE(plan.has_churn_events());
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultEvent::Kind::kFilterChurn);
  EXPECT_EQ(plan.events()[0].count, 250u);
  EXPECT_EQ(plan.events()[0].at_us, 1'000.0);
  EXPECT_EQ(plan.events()[1].count, 50u);
  EXPECT_EQ(plan.horizon_us(), 2'000.0);
}

TEST(FaultInjector, ChurnEventsRequireASink) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(testutil::SchemeKind::kIl, c);
  FaultPlan plan;
  plan.filter_churn(100, 500.0);
  FaultInjector injector(*scheme, plan);
  EXPECT_THROW(injector.arm(1'000.0), std::logic_error);
}

TEST(FaultInjector, ChurnEventsPumpTheSinkAtTheirVirtualTimes) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(testutil::SchemeKind::kIl, c);
  FaultPlan plan;
  plan.filter_churn(120, 500.0).filter_churn(80, 1'500.0);
  FaultInjectorOptions opts;
  opts.enable_repair = false;
  FaultInjector injector(*scheme, plan, opts);
  std::uint64_t pumped = 0;
  injector.set_churn_sink([&pumped](std::uint32_t n) { pumped += n; });
  injector.arm(2'000.0);

  const double start = c.engine().now();
  c.engine().run_until(start + 1'000.0);
  EXPECT_EQ(pumped, 120u);  // only the first burst has fired
  c.engine().run();
  EXPECT_EQ(pumped, 200u);
  EXPECT_EQ(injector.timeline().churn_events, 2u);
  EXPECT_EQ(injector.timeline().churn_ops, 200u);
}

TEST(FaultInjector, AddNodeEventJoinsAndMigrates) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(testutil::SchemeKind::kIl, c);
  const std::size_t before = c.size();
  FaultPlan plan;
  plan.add_node(1'000.0);
  FaultInjector injector(*scheme, plan, FaultInjectorOptions{});
  injector.arm(2'000.0);
  c.engine().run();
  EXPECT_EQ(c.size(), before + 1);
  EXPECT_TRUE(c.alive(NodeId{static_cast<std::uint32_t>(before)}));
  EXPECT_EQ(injector.timeline().joins, 1u);
}

}  // namespace
}  // namespace move::fault
