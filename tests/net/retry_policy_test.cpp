#include "net/retry_policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "sim/cost_model.hpp"

/// Property tests for the retry/backoff policy: jittered exponential backoff
/// stays inside [base, cap], and the retry budget can never push an
/// attempt's timeout past the end-to-end deadline.
namespace move::net {
namespace {

TEST(RetryPolicy, BackoffAlwaysWithinBaseAndCap) {
  const RetryPolicy p;
  common::SplitMix64 rng(0xbac0ff);
  for (std::size_t k = 0; k < 12; ++k) {
    // Per-retry ceiling: base * 2^k, saturating at the cap.
    const double ceiling =
        std::min(p.backoff_cap_us,
                 p.backoff_base_us * std::pow(2.0, static_cast<double>(k)));
    for (int draw = 0; draw < 2'000; ++draw) {
      const double b = p.backoff_us(k, rng);
      ASSERT_GE(b, p.backoff_base_us) << "retry " << k;
      ASSERT_LE(b, ceiling) << "retry " << k;
      ASSERT_LE(b, p.backoff_cap_us) << "retry " << k;
    }
  }
}

TEST(RetryPolicy, FirstRetryIsExactlyBaseLaterOnesAreJittered) {
  const RetryPolicy p;
  common::SplitMix64 rng(0x717e5);
  // Retry 0's ceiling equals the base: no room to jitter, so the first
  // retry is deterministic even on a jittered policy.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.backoff_us(0, rng), p.backoff_base_us);
  }
  // From retry 1 on the window is open and the draws actually spread.
  double lo = 1e300, hi = 0.0;
  for (int i = 0; i < 2'000; ++i) {
    const double b = p.backoff_us(1, rng);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  const double ceiling = 2.0 * p.backoff_base_us;
  EXPECT_LT(lo, p.backoff_base_us + 0.2 * p.backoff_base_us);
  EXPECT_GT(hi, ceiling - 0.2 * p.backoff_base_us);
}

TEST(RetryPolicy, BackoffEnvelopeGrowsToTheCap) {
  const RetryPolicy p;
  common::SplitMix64 rng(0x9709);
  // For a deep retry index the ceiling saturates at the cap, and with full
  // jitter the observed maximum should approach it.
  double hi = 0.0;
  for (int i = 0; i < 5'000; ++i) hi = std::max(hi, p.backoff_us(10, rng));
  EXPECT_GT(hi, 0.95 * p.backoff_cap_us);
  EXPECT_LE(hi, p.backoff_cap_us);
}

TEST(RetryPolicy, RetryBudgetNeverExceedsDeadline) {
  // Replay the transport's retry loop shape: an attempt is only scheduled
  // when attempt_fits_deadline says its own timeout still lands inside the
  // deadline. Whatever the jitter draws, the instant of the *last* possible
  // timeout stays <= deadline_us.
  const RetryPolicy p;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    common::SplitMix64 rng(seed);
    for (int trial = 0; trial < 200; ++trial) {
      double t = 0.0;  // virtual microseconds since the first send
      std::size_t attempts = 1;
      while (true) {
        t += p.timeout_us;  // this attempt's ack timeout fires
        ASSERT_LE(t, p.deadline_us) << "an attempt timed out past the deadline";
        if (attempts >= p.max_attempts) break;
        const double backoff = p.backoff_us(attempts - 1, rng);
        if (!p.attempt_fits_deadline(t, backoff)) break;
        t += backoff;
        ++attempts;
      }
      ASSERT_LE(attempts, p.max_attempts);
    }
  }
}

TEST(RetryPolicy, TightDeadlineCutsTheAttemptBudgetShort) {
  RetryPolicy p;
  p.deadline_us = 2.0 * p.timeout_us;  // room for barely two attempts
  common::SplitMix64 rng(0x7);
  std::size_t attempts = 1;
  double t = p.timeout_us;
  while (attempts < p.max_attempts) {
    const double backoff = p.backoff_us(attempts - 1, rng);
    if (!p.attempt_fits_deadline(t, backoff)) break;
    t += backoff + p.timeout_us;
    ++attempts;
  }
  EXPECT_LT(attempts, p.max_attempts);
  EXPECT_LE(t, p.deadline_us);
}

TEST(RetryPolicy, ForTransferDerivesFromTheCostModel) {
  const sim::CostModel cost;
  const double transfer = cost.transfer_us(65) * cost.cross_rack_penalty;
  const RetryPolicy p = RetryPolicy::for_transfer(cost, transfer);

  // The ack timeout is evidence, not impatience: a full healthy round trip
  // plus the routing-timeout margin always fits inside it.
  EXPECT_GE(p.timeout_us, 2.0 * transfer + cost.route_timeout_us);
  EXPECT_GE(p.backoff_cap_us, p.backoff_base_us);

  // The deadline funds every allowed attempt at worst-case backoff: the
  // budget property above then holds with zero slack.
  EXPECT_GE(p.deadline_us,
            static_cast<double>(p.max_attempts) * p.timeout_us +
                static_cast<double>(p.max_attempts - 1) * p.backoff_cap_us);

  // And the worst-case schedule indeed uses every attempt.
  common::SplitMix64 rng(0xc057);
  double t = p.timeout_us;
  std::size_t attempts = 1;
  while (attempts < p.max_attempts &&
         p.attempt_fits_deadline(t, p.backoff_cap_us)) {
    t += p.backoff_cap_us + p.timeout_us;
    ++attempts;
  }
  EXPECT_EQ(attempts, p.max_attempts);
}

TEST(RetryPolicy, BackoffSequenceIsDeterministicPerSeed) {
  const RetryPolicy p;
  common::SplitMix64 a(42), b(42);
  for (std::size_t k = 0; k < 32; ++k) {
    EXPECT_EQ(p.backoff_us(k % 6, a), p.backoff_us(k % 6, b));
  }
}

}  // namespace
}  // namespace move::net
