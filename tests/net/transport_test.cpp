#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_engine.hpp"

/// Transport end-to-end semantics on a bare event engine: exactly-once
/// delivery under loss/duplication/reordering, breaker trip/half-open/reset,
/// admission shedding by priority, dedup-window memory bounds, and the
/// zero-cost pass-through the determinism goldens rely on.
namespace move::net {
namespace {

constexpr NodeId kSrc{0};
constexpr NodeId kDst{1};

/// A breaker that never trips, for tests about loss/retry/dedup alone.
NetOptions no_breaker(NetOptions o = {}) {
  o.breaker.trip_after = 1'000'000;
  return o;
}

TEST(Transport, PassThroughDeliversOnceWithOneEventAndNoRandomness) {
  sim::EventEngine engine;
  Transport net(engine, {});
  ASSERT_TRUE(net.pass_through());

  int delivered = 0;
  double at = -1.0;
  net.send(kSrc, kDst, 100.0, Priority::kNormal, [&](sim::Time t) {
    ++delivered;
    at = t;
  });
  engine.run();

  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(at, 100.0);  // exactly the transfer time: no latency, no jitter
  const auto& acc = net.accounting();
  EXPECT_EQ(acc.messages, 1u);
  EXPECT_EQ(acc.attempts, 1u);
  EXPECT_EQ(acc.delivered, 1u);
  EXPECT_EQ(acc.drops, 0u);
  EXPECT_EQ(acc.retries, 0u);
  EXPECT_EQ(acc.timeouts, 0u);
  EXPECT_EQ(acc.duplicates, 0u);
  EXPECT_EQ(acc.expired, 0u);
  // No timers, no dedup state: the fast path leaves nothing behind.
  EXPECT_EQ(net.dedup_entries(), 0u);
  EXPECT_EQ(net.inflight(), 0u);
  EXPECT_TRUE(engine.idle());
}

TEST(Transport, LoopbackIsImmuneToTheLink) {
  sim::EventEngine engine;
  NetOptions o = no_breaker();
  o.link.loss = 1.0;  // the wire eats everything...
  Transport net(engine, o);

  int delivered = 0;
  net.send(kDst, kDst, 50.0, Priority::kNormal,
           [&](sim::Time) { ++delivered; });
  engine.run();
  // ...but a node talking to itself never touches the wire.
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.accounting().drops, 0u);
  EXPECT_EQ(net.accounting().expired, 0u);
}

TEST(Transport, LossyLinkRetriesToExactlyOnceDelivery) {
  sim::EventEngine engine;
  NetOptions o = no_breaker();
  o.link.loss = 0.3;
  o.link.latency_base_us = 10.0;
  o.link.latency_jitter_us = 5.0;
  // A deep retry budget: at 30% loss, ten attempts make an unlucky total
  // loss (0.3^10) vanishingly rare even over hundreds of messages.
  o.retry.max_attempts = 10;
  o.retry.deadline_us = 200'000.0;
  Transport net(engine, o);

  constexpr int kMessages = 300;
  std::vector<int> delivered(kMessages, 0);
  int failed = 0;
  for (int i = 0; i < kMessages; ++i) {
    net.send(kSrc, kDst, 100.0, Priority::kNormal,
             [&delivered, i](sim::Time) { ++delivered[i]; },
             [&failed](SendOutcome) { ++failed; });
  }
  engine.run();

  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(delivered[i], 1) << "message " << i;
  }
  EXPECT_EQ(failed, 0);
  const auto& acc = net.accounting();
  EXPECT_EQ(acc.messages, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(acc.delivered, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(acc.delivery_ratio(), 1.0);
  EXPECT_GT(acc.drops, 0u);
  EXPECT_GT(acc.retries, 0u);
  EXPECT_EQ(acc.timeouts, acc.retries);  // every timeout earned its retry
  EXPECT_EQ(net.inflight(), 0u);
}

TEST(Transport, WithoutRetriesLossIsLoss) {
  sim::EventEngine engine;
  NetOptions o = no_breaker();
  o.link.loss = 0.5;
  o.retry.enabled = false;
  Transport net(engine, o);

  constexpr int kMessages = 400;
  int delivered = 0, expired = 0;
  for (int i = 0; i < kMessages; ++i) {
    net.send(kSrc, kDst, 100.0, Priority::kNormal,
             [&](sim::Time) { ++delivered; },
             [&](SendOutcome outcome) {
               EXPECT_EQ(outcome, SendOutcome::kExpired);
               ++expired;
             });
  }
  engine.run();

  EXPECT_EQ(delivered + expired, kMessages);  // exactly one outcome per send
  EXPECT_GT(expired, 0);
  EXPECT_LT(net.accounting().delivery_ratio(), 1.0);
  EXPECT_EQ(net.accounting().attempts, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(net.accounting().retries, 0u);
  EXPECT_EQ(net.accounting().expired, static_cast<std::uint64_t>(expired));
}

TEST(Transport, LinkDuplicatesAreSuppressedAtTheReceiver) {
  sim::EventEngine engine;
  NetOptions o = no_breaker();
  o.link.duplicate = 1.0;  // every attempt arrives twice
  o.link.latency_base_us = 5.0;
  Transport net(engine, o);

  constexpr int kMessages = 50;
  std::vector<int> delivered(kMessages, 0);
  for (int i = 0; i < kMessages; ++i) {
    net.send(kSrc, kDst, 20.0, Priority::kNormal,
             [&delivered, i](sim::Time) { ++delivered[i]; });
  }
  engine.run();

  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(delivered[i], 1) << "message " << i;
  }
  const auto& acc = net.accounting();
  EXPECT_EQ(acc.duplicates, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(acc.dup_suppressed, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(acc.delivered, static_cast<std::uint64_t>(kMessages));
}

TEST(Transport, ReorderedCopiesRacingRetriesStayExactlyOnce) {
  sim::EventEngine engine;
  NetOptions o = no_breaker();
  o.link.reorder = 1.0;
  o.link.reorder_delay_us = 8'000.0;  // often beyond the 2.5ms ack timeout
  o.link.latency_base_us = 10.0;
  Transport net(engine, o);

  constexpr int kMessages = 200;
  std::vector<int> delivered(kMessages, 0);
  for (int i = 0; i < kMessages; ++i) {
    net.send(kSrc, kDst, 50.0, Priority::kNormal,
             [&delivered, i](sim::Time) { ++delivered[i]; });
  }
  engine.run();

  // Held-back originals race the retries they provoked; whichever copy
  // lands first wins and every later one is suppressed.
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(delivered[i], 1) << "message " << i;
  }
  EXPECT_GT(net.accounting().retries, 0u);
  EXPECT_GT(net.accounting().dup_suppressed, 0u);
  EXPECT_EQ(net.accounting().delivered,
            static_cast<std::uint64_t>(kMessages));
}

TEST(Transport, PartitionExpiresTheSendWithinTheDeadline) {
  sim::EventEngine engine;
  NetOptions o = no_breaker();
  Transport net(engine, o);
  net.partitions().add("cut", {kSrc}, {kDst});
  ASSERT_FALSE(net.pass_through());  // an active partition defeats the fast path

  int delivered = 0, failed = 0;
  double failed_at = -1.0;
  const double sent_at = engine.now();
  net.send(kSrc, kDst, 100.0, Priority::kNormal,
           [&](sim::Time) { ++delivered; },
           [&](SendOutcome outcome) {
             EXPECT_EQ(outcome, SendOutcome::kExpired);
             ++failed;
             failed_at = engine.now();
           });
  engine.run();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(failed, 1);
  const auto& acc = net.accounting();
  EXPECT_EQ(acc.expired, 1u);
  EXPECT_EQ(acc.drops, acc.attempts);  // every attempt died on the cut
  EXPECT_LE(acc.attempts,
            static_cast<std::uint64_t>(o.retry.max_attempts));
  // The end-to-end deadline bounds how long the sender was strung along.
  EXPECT_LE(failed_at - sent_at, o.retry.deadline_us);

  // After the heal the same link delivers again.
  net.partitions().heal("cut");
  net.send(kSrc, kDst, 100.0, Priority::kNormal,
           [&](sim::Time) { ++delivered; });
  engine.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Transport, AsymmetricAckCutDeliversOnceAndSuppressesTheFailure) {
  sim::EventEngine engine;
  NetOptions o = no_breaker();
  Transport net(engine, o);
  // Data path src->dst is clean; only the ack path dst->src is cut.
  net.partitions().add("acks", {kDst}, {kSrc}, /*bidirectional=*/false);

  int delivered = 0, failed = 0;
  net.send(kSrc, kDst, 100.0, Priority::kNormal,
           [&](sim::Time) { ++delivered; },
           [&](SendOutcome) { ++failed; });
  engine.run();

  // The receiver applied the message exactly once; the sender kept
  // retrying blind until the deadline, dedup absorbing every copy. The
  // delivery wins: no failure callback, nothing counted expired.
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(failed, 0);
  const auto& acc = net.accounting();
  EXPECT_EQ(acc.delivered, 1u);
  EXPECT_EQ(acc.expired, 0u);
  EXPECT_GT(acc.timeouts, 0u);
  EXPECT_GT(acc.dup_suppressed, 0u);
  EXPECT_EQ(net.inflight(), 0u);
}

TEST(Transport, BreakerTripsFailsFastAndRecoversViaHalfOpenProbe) {
  sim::EventEngine engine;
  NetOptions o;  // default breaker: trip after 5 consecutive timeouts
  Transport net(engine, o);
  net.partitions().add("cut", {kSrc}, {kDst});

  int failed = 0;
  SendOutcome last = SendOutcome::kExpired;
  const auto on_fail = [&](SendOutcome outcome) {
    ++failed;
    last = outcome;
  };

  // One doomed message burns its full retry budget (6 timeouts) and trips
  // the destination's breaker along the way.
  net.send(kSrc, kDst, 100.0, Priority::kNormal, [](sim::Time) {}, on_fail);
  engine.run();
  EXPECT_EQ(failed, 1);
  EXPECT_TRUE(net.breaker_open(kDst));
  EXPECT_GE(net.accounting().breaker_trips, 1u);

  // While open, sends to that destination fail fast: no wire attempt, no
  // retry budget burned.
  const auto attempts_before = net.accounting().attempts;
  net.send(kSrc, kDst, 100.0, Priority::kNormal, [](sim::Time) {}, on_fail);
  engine.run();
  EXPECT_EQ(failed, 2);
  EXPECT_EQ(last, SendOutcome::kBreakerOpen);
  EXPECT_EQ(net.accounting().attempts, attempts_before);
  EXPECT_EQ(net.accounting().breaker_fast_fails, 1u);

  // Other destinations are unaffected: breakers are per-destination.
  int elsewhere = 0;
  net.send(kSrc, NodeId{2}, 100.0, Priority::kNormal,
           [&](sim::Time) { ++elsewhere; });
  engine.run();
  EXPECT_EQ(elsewhere, 1);

  // Heal the cut and wait out the cooldown: the next send is the half-open
  // probe, it succeeds, and the breaker closes fully.
  net.partitions().heal("cut");
  int delivered = 0;
  engine.schedule_after(2.0 * o.breaker.max_cooldown_us, [&] {
    EXPECT_FALSE(net.breaker_open(kDst));
    net.send(kSrc, kDst, 100.0, Priority::kNormal,
             [&](sim::Time) { ++delivered; }, on_fail);
  });
  engine.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(failed, 2);
  EXPECT_FALSE(net.breaker_open(kDst));
}

TEST(Transport, FailedHalfOpenProbeReopensWithDoubledCooldown) {
  sim::EventEngine engine;
  Transport net(engine, {});
  net.partitions().add("cut", {kSrc}, {kDst});

  net.send(kSrc, kDst, 100.0, Priority::kNormal, [](sim::Time) {});
  engine.run();
  ASSERT_TRUE(net.breaker_open(kDst));
  const auto trips_after_first = net.accounting().breaker_trips;

  // Past the cooldown the breaker admits a probe; with the cut still up the
  // probe times out and the breaker reopens (another trip, longer cooldown).
  engine.schedule_after(2.0 * net.options().breaker.max_cooldown_us, [&] {
    ASSERT_FALSE(net.breaker_open(kDst));
    net.send(kSrc, kDst, 100.0, Priority::kNormal, [](sim::Time) {});
  });
  engine.run();
  EXPECT_GT(net.accounting().breaker_trips, trips_after_first);
}

TEST(Transport, AdmissionControlShedsByPriority) {
  sim::EventEngine engine;
  NetOptions o = no_breaker();
  o.link.latency_base_us = 1.0;  // defeat the pass-through fast path
  o.shed_queue_bound = 2;        // kBulk sheds at 2, kNormal at 8
  Transport net(engine, o);

  std::size_t depth = 0;
  net.set_queue_depth_fn([&depth](NodeId) { return depth; });

  const auto outcome_of = [&](Priority priority) {
    int delivered = 0;
    bool shed = false;
    net.send(kSrc, kDst, 10.0, priority, [&](sim::Time) { ++delivered; },
             [&](SendOutcome out) { shed = (out == SendOutcome::kShed); });
    engine.run();
    EXPECT_TRUE(delivered == 1 || shed);
    return shed ? "shed" : "delivered";
  };

  depth = 1;  // under every bound
  EXPECT_STREQ(outcome_of(Priority::kBulk), "delivered");
  depth = 2;  // at the bulk bound
  EXPECT_STREQ(outcome_of(Priority::kBulk), "shed");
  EXPECT_STREQ(outcome_of(Priority::kNormal), "delivered");
  depth = 8;  // at 4x: normal sheds too, high never does
  EXPECT_STREQ(outcome_of(Priority::kNormal), "shed");
  EXPECT_STREQ(outcome_of(Priority::kHigh), "delivered");
  depth = 1'000'000;
  EXPECT_STREQ(outcome_of(Priority::kHigh), "delivered");
  EXPECT_EQ(net.accounting().shed, 2u);
}

TEST(Transport, DedupWindowExpiresAndKeepsMemoryBounded) {
  sim::EventEngine engine;
  NetOptions o = no_breaker();
  o.link.duplicate = 1.0;  // exercise dedup on every message
  o.link.latency_base_us = 2.0;
  o.dedup_window_us = 5'000.0;
  Transport net(engine, o);

  constexpr int kMessages = 64;
  for (int i = 0; i < kMessages; ++i) {
    net.send(kSrc, kDst, 10.0, Priority::kNormal, [](sim::Time) {});
  }
  engine.run();
  // All delivered keys are inside the window: remembered.
  EXPECT_EQ(net.accounting().delivered, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(net.dedup_entries(), static_cast<std::size_t>(kMessages));

  // One more delivery to the same receiver after the window has passed
  // sweeps every expired key: memory is bounded by the window, not the
  // run's total message count.
  engine.schedule_after(2.0 * o.dedup_window_us, [&] {
    net.send(kSrc, kDst, 10.0, Priority::kNormal, [](sim::Time) {});
  });
  engine.run();
  EXPECT_EQ(net.dedup_entries(), 1u);
}

TEST(Transport, LossySequenceReplaysBitIdentically) {
  const auto run_once = [] {
    sim::EventEngine engine;
    NetOptions o = no_breaker();
    o.link.loss = 0.2;
    o.link.latency_jitter_us = 30.0;
    o.link.duplicate = 0.1;
    o.seed = 0xd5eed;
    Transport net(engine, o);
    std::vector<double> delivery_times;
    for (int i = 0; i < 100; ++i) {
      net.send(kSrc, NodeId{static_cast<std::uint32_t>(1 + i % 4)}, 50.0,
               Priority::kNormal,
               [&delivery_times](sim::Time t) { delivery_times.push_back(t); });
    }
    engine.run();
    return std::make_pair(delivery_times, net.accounting());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);  // exact doubles: same draws, same schedule
  EXPECT_EQ(a.second.attempts, b.second.attempts);
  EXPECT_EQ(a.second.drops, b.second.drops);
  EXPECT_EQ(a.second.retries, b.second.retries);
  EXPECT_EQ(a.second.duplicates, b.second.duplicates);
  EXPECT_EQ(a.second.dup_suppressed, b.second.dup_suppressed);
}

}  // namespace
}  // namespace move::net
