#include "net/link_model.hpp"

#include <gtest/gtest.h>

/// LinkModel's pass-through predicate (the transport's zero-cost fast path
/// keys off it) and PartitionSet's named-cut semantics.
namespace move::net {
namespace {

TEST(LinkModel, DefaultIsExactPassThrough) {
  EXPECT_TRUE(LinkModel{}.pass_through());
}

TEST(LinkModel, AnyPerturbingKnobDefeatsPassThrough) {
  {
    LinkModel l;
    l.loss = 0.01;
    EXPECT_FALSE(l.pass_through());
  }
  {
    LinkModel l;
    l.latency_base_us = 1.0;
    EXPECT_FALSE(l.pass_through());
  }
  {
    LinkModel l;
    l.latency_jitter_us = 1.0;
    EXPECT_FALSE(l.pass_through());
  }
  {
    LinkModel l;
    l.duplicate = 0.01;
    EXPECT_FALSE(l.pass_through());
  }
  {
    LinkModel l;
    l.reorder = 0.01;
    EXPECT_FALSE(l.pass_through());
  }
}

TEST(LinkModel, ShapeOnlyKnobsDoNotDefeatPassThrough) {
  // The gap/delay parameters only matter once their probability is nonzero.
  LinkModel l;
  l.duplicate_gap_us = 9'999.0;
  l.reorder_delay_us = 9'999.0;
  EXPECT_TRUE(l.pass_through());
}

TEST(PartitionSet, EmptyBlocksNothing) {
  const PartitionSet p;
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.blocks(NodeId{0}, NodeId{1}));
}

TEST(PartitionSet, BidirectionalCutBlocksBothWays) {
  PartitionSet p;
  p.add("split", {NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{3}});
  EXPECT_TRUE(p.blocks(NodeId{0}, NodeId{2}));
  EXPECT_TRUE(p.blocks(NodeId{3}, NodeId{1}));
  // Same side stays connected.
  EXPECT_FALSE(p.blocks(NodeId{0}, NodeId{1}));
  EXPECT_FALSE(p.blocks(NodeId{2}, NodeId{3}));
}

TEST(PartitionSet, AsymmetricCutBlocksOneDirectionOnly) {
  PartitionSet p;
  p.add("acks", {NodeId{1}}, {NodeId{0}}, /*bidirectional=*/false);
  EXPECT_TRUE(p.blocks(NodeId{1}, NodeId{0}));
  EXPECT_FALSE(p.blocks(NodeId{0}, NodeId{1}));
}

TEST(PartitionSet, UninvolvedNodesAndClientAreUnaffected) {
  PartitionSet p;
  p.add("split", {NodeId{0}}, {NodeId{1}});
  EXPECT_FALSE(p.blocks(NodeId{0}, NodeId{5}));
  EXPECT_FALSE(p.blocks(NodeId{5}, NodeId{1}));
  // The external publisher id is never a cluster node, so no scripted
  // partition can isolate it.
  EXPECT_FALSE(p.blocks(kClientNode, NodeId{0}));
  EXPECT_FALSE(p.blocks(NodeId{1}, kClientNode));
}

TEST(PartitionSet, HealRemovesExactlyTheNamedCut) {
  PartitionSet p;
  p.add("a", {NodeId{0}}, {NodeId{1}});
  p.add("b", {NodeId{2}}, {NodeId{3}});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.active("a"));
  EXPECT_TRUE(p.heal("a"));
  EXPECT_FALSE(p.active("a"));
  EXPECT_FALSE(p.blocks(NodeId{0}, NodeId{1}));
  EXPECT_TRUE(p.blocks(NodeId{2}, NodeId{3}));
  // Healing an unknown or already-healed name is a no-op, not an error.
  EXPECT_FALSE(p.heal("a"));
  EXPECT_FALSE(p.heal("never-started"));
}

TEST(PartitionSet, ReAddingAnActiveNameReplacesIt) {
  PartitionSet p;
  p.add("split", {NodeId{0}}, {NodeId{1}});
  p.add("split", {NodeId{2}}, {NodeId{3}});
  EXPECT_EQ(p.size(), 1u);
  EXPECT_FALSE(p.blocks(NodeId{0}, NodeId{1}));  // the old cut is gone
  EXPECT_TRUE(p.blocks(NodeId{2}, NodeId{3}));
}

TEST(PartitionSet, OverlappingCutsComposeUntilBothHeal) {
  PartitionSet p;
  p.add("a", {NodeId{0}}, {NodeId{1}});
  p.add("b", {NodeId{0}}, {NodeId{1}, NodeId{2}});
  EXPECT_TRUE(p.blocks(NodeId{0}, NodeId{1}));
  p.heal("a");
  EXPECT_TRUE(p.blocks(NodeId{0}, NodeId{1}));  // "b" still cuts it
  p.heal("b");
  EXPECT_FALSE(p.blocks(NodeId{0}, NodeId{1}));
  EXPECT_TRUE(p.empty());
}

TEST(PartitionSet, ClearDropsEverything) {
  PartitionSet p;
  p.add("a", {NodeId{0}}, {NodeId{1}});
  p.add("b", {NodeId{2}}, {NodeId{3}});
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.blocks(NodeId{0}, NodeId{1}));
  EXPECT_FALSE(p.blocks(NodeId{2}, NodeId{3}));
}

}  // namespace
}  // namespace move::net
