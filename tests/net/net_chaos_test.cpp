#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fault/churn_runner.hpp"
#include "fault/fault_injector.hpp"

#include "../fault/fault_test_util.hpp"

/// Chaos passes for the message layer: documents disseminated through a
/// lossy / duplicating / partitioned transport while nodes churn. The core
/// invariants are the same as the fault chaos suite — sorted-unique
/// deliveries, no invented matches, heal + repair converges back to the
/// brute-force oracle — plus the net layer's own: retries hold the
/// delivery ratio at 1.0 through moderate loss, and without them documents
/// silently go incomplete.
namespace move::fault {
namespace {

using testutil::SchemeKind;

ChurnConfig lossy_config(double loss, bool retries = true) {
  ChurnConfig cfg;
  cfg.inject_rate_per_sec = 2'000.0;
  cfg.sample_interval_us = 5'000.0;
  cfg.injector.repair_batch = 4'096;
  cfg.injector.repair_interval_us = 2'000.0;
  cfg.net.link.loss = loss;
  cfg.net.link.latency_base_us = 40.0;
  cfg.net.link.latency_jitter_us = 20.0;
  cfg.net.link.duplicate = 0.01;
  cfg.net.retry.enabled = retries;
  return cfg;
}

/// Post-run oracle check on the (healed, revived) cluster: publishing every
/// document again must match brute force exactly — sorted, unique, nothing
/// invented, nothing lost.
void expect_exact_matching(core::Scheme& scheme, const char* context) {
  const auto& w = testutil::shared_workload();
  for (std::size_t d = 0; d < w.docs_.size(); ++d) {
    const auto plan = scheme.plan_publish(w.docs_.row(d));
    for (std::size_t i = 1; i < plan.matches.size(); ++i) {
      ASSERT_LT(plan.matches[i - 1].value, plan.matches[i].value)
          << context << " doc " << d << ": duplicate/unsorted delivery";
    }
    ASSERT_EQ(plan.matches, w.truth(d)) << context << " doc " << d;
  }
}

class NetChaos : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(NetChaos, ModerateLossWithRetriesDeliversEveryDocument) {
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(GetParam(), c);

  // Node churn *and* a lossy link at once.
  const auto plan =
      FaultPlan::random_churn(0x10551ULL, c.size(), 30'000.0, 3, 8'000.0);
  const auto result = run_churn(*scheme, w.docs_, plan, lossy_config(0.05));

  EXPECT_EQ(result.metrics.documents_completed, w.docs_.size());
  EXPECT_EQ(result.metrics.net_acc.delivery_ratio(), 1.0);
  EXPECT_GT(result.metrics.net_acc.drops, 0u);
  EXPECT_GT(result.metrics.net_acc.retries, 0u);
  EXPECT_EQ(result.registry_readable, w.docs_.size())
      << "a completed document's registry entry was lost";
  expect_exact_matching(*scheme, "after lossy churn");
}

TEST_P(NetChaos, WithoutRetriesHighLossLosesDocuments) {
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(GetParam(), c);

  const FaultPlan plan(0x0107eULL);  // no churn: the link is the only fault
  const auto result =
      run_churn(*scheme, w.docs_, plan, lossy_config(0.3, /*retries=*/false));

  EXPECT_LT(result.metrics.net_acc.delivery_ratio(), 1.0);
  EXPECT_GT(result.metrics.net_acc.expired, 0u);
  EXPECT_LT(result.metrics.documents_completed, w.docs_.size());
  // The registry records exactly the completions that happened — an
  // incomplete document never fakes its way in.
  EXPECT_EQ(result.registry_readable, result.metrics.documents_completed);
}

TEST_P(NetChaos, ScriptedLossAndPartitionHealConvergeToTheOracle) {
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(GetParam(), c);

  // Script the wire itself: loss turns on, a partition cuts the upper half
  // away mid-run, both heal before the end.
  std::vector<NodeId> lower, upper;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    (n < c.size() / 2 ? lower : upper).push_back(NodeId{n});
  }
  FaultPlan plan(0x5c217ULL);
  plan.set_loss(0.2, 4'000.0);
  plan.partition("split", lower, upper, 8'000.0);
  plan.heal("split", 20'000.0);
  plan.set_loss(0.0, 24'000.0);

  // Deep retry budget and no breaker: every message cut by the partition
  // is *guaranteed* attempts on the healed, loss-free wire (attempt 12 of
  // a send at the cut's start lands well past 24ms), so completion is
  // deterministic rather than a jitter gamble.
  auto cfg = lossy_config(0.0);
  cfg.net.retry.max_attempts = 12;
  cfg.net.retry.deadline_us = 160'000.0;
  cfg.net.breaker.trip_after = 1'000'000;
  const auto result = run_churn(*scheme, w.docs_, plan, cfg);

  EXPECT_EQ(result.timeline.loss_changes, 2u);
  EXPECT_EQ(result.timeline.partitions_started, 1u);
  EXPECT_EQ(result.timeline.partitions_healed, 1u);
  EXPECT_GT(result.metrics.net_acc.drops, 0u);
  // Once the wire healed, the retry deadline (80ms) is comfortably inside
  // the post-heal tail, so everything still completes.
  EXPECT_EQ(result.metrics.documents_completed, w.docs_.size());
  EXPECT_EQ(result.registry_readable, w.docs_.size());
  expect_exact_matching(*scheme, "after scripted loss+partition");
}

TEST_P(NetChaos, LossyChurnWithRepairStillRestoresExactMatching) {
  // The strongest composite: node churn, link loss, duplication, and a
  // partition, with incremental repair running throughout. After the dust
  // settles matching is exactly brute force again.
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(GetParam(), c);

  std::vector<NodeId> lower, upper;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    (n < c.size() / 2 ? lower : upper).push_back(NodeId{n});
  }
  auto plan =
      FaultPlan::random_churn(0xc0111deULL, c.size(), 30'000.0, 2, 6'000.0);
  plan.partition("mid", lower, upper, 10'000.0);
  plan.heal("mid", 18'000.0);

  const auto result = run_churn(*scheme, w.docs_, plan, lossy_config(0.02));

  EXPECT_EQ(result.timeline.failures, 2u);
  EXPECT_EQ(result.timeline.partitions_healed, 1u);
  ASSERT_FALSE(result.samples.empty());
  EXPECT_EQ(result.samples.back().repair_backlog, 0u);
  expect_exact_matching(*scheme, "after lossy churn with repair");
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, NetChaos,
                         ::testing::Values(SchemeKind::kIl, SchemeKind::kMove,
                                           SchemeKind::kRs),
                         [](const auto& info) {
                           return testutil::scheme_name(info.param);
                         });

TEST(NetChaosGuards, NetEventsWithoutTransportThrowAtArm) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(SchemeKind::kIl, c);
  FaultPlan plan(0x9a2dULL);
  plan.set_loss(0.5, 1'000.0);
  FaultInjector injector(*scheme, plan);  // no transport attached
  EXPECT_THROW(injector.arm(10'000.0), std::logic_error);
}

}  // namespace
}  // namespace move::fault
