#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>

#include "common/hash.hpp"
#include "core/experiment.hpp"
#include "fault/churn_runner.hpp"
#include "net/transport.hpp"

#include "../fault/fault_test_util.hpp"

/// Determinism of the message layer, in three tiers:
///  * a *pass-through* transport is bit-identical to no transport at all
///    (the zero-cost property every pre-net bench output relies on);
///  * a *lossy* run replays bit-identically from (seed, plan), net counters
///    included;
///  * golden hashes: the churn pipeline's PR-3-era outputs (metrics,
///    timeline, samples — everything that predates the net layer) hash to
///    the same constants as before the transport was interposed. A change
///    to any of these constants means the lossless path perturbed an
///    existing seeded pipeline — exactly the regression the per-subsystem
///    named rng streams exist to prevent.
namespace move::fault {
namespace {

using testutil::SchemeKind;

// --- tier 1: pass-through == direct scheduling ----------------------------

TEST(NetDeterminism, PassThroughTransportMatchesDirectSchedulingExactly) {
  const auto& w = testutil::shared_workload();
  for (const SchemeKind kind :
       {SchemeKind::kIl, SchemeKind::kMove, SchemeKind::kRs}) {
    cluster::Cluster c_direct(testutil::small_cluster());
    auto direct = testutil::make_scheme(kind, c_direct);
    core::RunConfig cfg;
    cfg.inject_rate_per_sec = 2'000.0;
    const auto m_direct = core::run_dissemination(*direct, w.docs_, cfg);

    cluster::Cluster c_net(testutil::small_cluster());
    auto via_net = testutil::make_scheme(kind, c_net);
    net::Transport transport(c_net.engine(), {});
    ASSERT_TRUE(transport.pass_through());
    core::RunConfig cfg_net = cfg;
    cfg_net.transport = &transport;
    const auto m_net = core::run_dissemination(*via_net, w.docs_, cfg_net);

    // Exact doubles everywhere: the fast path schedules the identical
    // single event per hop and draws no randomness.
    EXPECT_EQ(m_direct.makespan_us, m_net.makespan_us);
    EXPECT_EQ(m_direct.latencies_us, m_net.latencies_us);
    EXPECT_EQ(m_direct.documents_completed, m_net.documents_completed);
    EXPECT_EQ(m_direct.notifications, m_net.notifications);
    EXPECT_EQ(m_direct.node_busy_us, m_net.node_busy_us);
    EXPECT_EQ(m_direct.node_docs, m_net.node_docs);
    EXPECT_EQ(m_direct.node_queue_wait_us, m_net.node_queue_wait_us);
    EXPECT_EQ(m_direct.node_max_queue_depth, m_net.node_max_queue_depth);
    // The transport still accounted for every hop it carried.
    EXPECT_GT(m_net.net_acc.messages, 0u);
    EXPECT_EQ(m_net.net_acc.delivered, m_net.net_acc.messages);
    EXPECT_EQ(m_net.net_acc.drops, 0u);
    EXPECT_EQ(m_net.net_acc.retries, 0u);
    EXPECT_EQ(m_direct.net_acc.messages, 0u);  // no transport, no accounting
  }
}

// --- tier 2: lossy runs replay bit-identically ----------------------------

ChurnResult run_lossy(SchemeKind kind) {
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(kind, c);
  const auto plan =
      FaultPlan::random_churn(0x10552ULL, c.size(), 30'000.0, 3, 8'000.0);
  ChurnConfig cfg;
  cfg.inject_rate_per_sec = 2'000.0;
  cfg.sample_interval_us = 5'000.0;
  cfg.collect_latencies = true;
  cfg.injector.repair_batch = 1'024;
  cfg.injector.repair_interval_us = 2'000.0;
  cfg.net.link.loss = 0.05;
  cfg.net.link.latency_base_us = 40.0;
  cfg.net.link.latency_jitter_us = 20.0;
  cfg.net.link.duplicate = 0.01;
  cfg.net.link.reorder = 0.05;
  return run_churn(*scheme, w.docs_, plan, cfg);
}

void expect_identical_with_net(const ChurnResult& a, const ChurnResult& b) {
  EXPECT_EQ(a.metrics.documents_completed, b.metrics.documents_completed);
  EXPECT_EQ(a.metrics.makespan_us, b.metrics.makespan_us);
  EXPECT_EQ(a.metrics.latencies_us, b.metrics.latencies_us);
  EXPECT_EQ(a.metrics.node_busy_us, b.metrics.node_busy_us);
  EXPECT_EQ(a.metrics.node_docs, b.metrics.node_docs);
  EXPECT_EQ(a.metrics.fault_acc.failovers, b.metrics.fault_acc.failovers);
  EXPECT_EQ(a.metrics.fault_acc.hints_parked,
            b.metrics.fault_acc.hints_parked);
  // The net layer's own randomness is a named stream of the plan seed:
  // every wire-level count replays exactly.
  EXPECT_EQ(a.metrics.net_acc.messages, b.metrics.net_acc.messages);
  EXPECT_EQ(a.metrics.net_acc.attempts, b.metrics.net_acc.attempts);
  EXPECT_EQ(a.metrics.net_acc.delivered, b.metrics.net_acc.delivered);
  EXPECT_EQ(a.metrics.net_acc.drops, b.metrics.net_acc.drops);
  EXPECT_EQ(a.metrics.net_acc.duplicates, b.metrics.net_acc.duplicates);
  EXPECT_EQ(a.metrics.net_acc.dup_suppressed,
            b.metrics.net_acc.dup_suppressed);
  EXPECT_EQ(a.metrics.net_acc.retries, b.metrics.net_acc.retries);
  EXPECT_EQ(a.metrics.net_acc.timeouts, b.metrics.net_acc.timeouts);
  EXPECT_EQ(a.metrics.net_acc.expired, b.metrics.net_acc.expired);
  EXPECT_EQ(a.metrics.net_acc.breaker_trips,
            b.metrics.net_acc.breaker_trips);
  EXPECT_EQ(a.metrics.net_acc.shed, b.metrics.net_acc.shed);
  EXPECT_EQ(a.timeline.failures, b.timeline.failures);
  EXPECT_EQ(a.timeline.hints_reparked, b.timeline.hints_reparked);
  EXPECT_EQ(a.timeline.control_rpcs, b.timeline.control_rpcs);
  EXPECT_EQ(a.timeline.control_dropped, b.timeline.control_dropped);
  EXPECT_EQ(a.registry_readable, b.registry_readable);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].throughput_per_sec,
              b.samples[i].throughput_per_sec)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].net.attempts, b.samples[i].net.attempts)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].net.drops, b.samples[i].net.drops)
        << "sample " << i;
    EXPECT_EQ(a.samples[i].net.retries, b.samples[i].net.retries)
        << "sample " << i;
  }
}

class NetDeterminismLossy : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(NetDeterminismLossy, LossyChurnReplaysBitIdentically) {
  const auto first = run_lossy(GetParam());
  const auto second = run_lossy(GetParam());
  expect_identical_with_net(first, second);
  // The run actually exercised the wire faults.
  EXPECT_GT(first.metrics.net_acc.drops, 0u);
  EXPECT_GT(first.metrics.net_acc.retries, 0u);
  EXPECT_GT(first.metrics.net_acc.dup_suppressed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, NetDeterminismLossy,
                         ::testing::Values(SchemeKind::kIl, SchemeKind::kMove,
                                           SchemeKind::kRs),
                         [](const auto& info) {
                           return testutil::scheme_name(info.param);
                         });

// --- tier 3: golden hashes of the pre-net pipeline ------------------------

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return common::hash_combine(h, v);
}
std::uint64_t fold(std::uint64_t h, double v) {
  return common::hash_combine(h, std::bit_cast<std::uint64_t>(v));
}

template <typename Vec>
std::uint64_t fold_vec(std::uint64_t h, const Vec& v) {
  h = fold(h, static_cast<std::uint64_t>(v.size()));
  for (const auto& x : v) {
    if constexpr (std::is_floating_point_v<std::decay_t<decltype(x)>>) {
      h = fold(h, static_cast<double>(x));
    } else {
      h = fold(h, static_cast<std::uint64_t>(x));
    }
  }
  return h;
}

/// Hashes exactly the outputs that existed before the net layer: whole-run
/// metrics, fault accounting, injector timeline, registry aggregates, and
/// every timeline sample. Deliberately excludes net counters and
/// hints_reparked (both new), so the constant certifies "the lossless
/// transport changed nothing", not "nothing was added".
std::uint64_t golden_hash(const ChurnResult& r) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  const auto& m = r.metrics;
  h = fold(h, m.documents_published);
  h = fold(h, m.documents_completed);
  h = fold(h, m.notifications);
  h = fold(h, m.makespan_us);
  h = fold_vec(h, m.latencies_us);
  h = fold_vec(h, m.node_busy_us);
  h = fold_vec(h, m.node_docs);
  h = fold_vec(h, m.node_queue_wait_us);
  h = fold_vec(h, m.node_storage);
  h = fold(h, m.fault_acc.failed_routes);
  h = fold(h, m.fault_acc.route_retries);
  h = fold(h, m.fault_acc.dead_contacts);
  h = fold(h, m.fault_acc.failovers);
  h = fold(h, m.fault_acc.hints_parked);
  h = fold(h, m.fault_acc.hints_drained);
  h = fold(h, m.fault_acc.repair_postings_moved);
  h = fold(h, r.timeline.failures);
  h = fold(h, r.timeline.recoveries);
  h = fold(h, r.timeline.total_downtime_us);
  h = fold(h, r.timeline.repair_batches);
  h = fold(h, r.timeline.repair_entries_applied);
  h = fold(h, r.timeline.hints_drained);
  h = fold(h, static_cast<std::uint64_t>(r.registry_readable));
  h = fold(h, r.registry_hints_parked);
  h = fold(h, r.registry_hints_drained);
  h = fold(h, r.mean_availability);
  h = fold(h, r.min_availability);
  h = fold(h, r.unavailable_us);
  h = fold(h, static_cast<std::uint64_t>(r.samples.size()));
  for (const auto& s : r.samples) {
    h = fold(h, s.t_us);
    h = fold(h, s.throughput_per_sec);
    h = fold(h, s.availability);
    h = fold(h, static_cast<std::uint64_t>(s.live_nodes));
    h = fold(h, static_cast<std::uint64_t>(s.handoff_queue_depth));
    h = fold(h, static_cast<std::uint64_t>(s.repair_backlog));
    h = fold(h, s.fault.failovers);
    h = fold(h, s.fault.repair_postings_moved);
  }
  return h;
}

/// The exact run shape of the PR 3 determinism goldens (same plan seed,
/// same churn config, default — lossless — net).
ChurnResult run_golden(SchemeKind kind) {
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = testutil::make_scheme(kind, c);
  const auto plan =
      FaultPlan::random_churn(0x601dULL, c.size(), 30'000.0, 3, 8'000.0);
  ChurnConfig cfg;
  cfg.inject_rate_per_sec = 2'000.0;
  cfg.sample_interval_us = 5'000.0;
  cfg.collect_latencies = true;
  cfg.injector.repair_batch = 1'024;
  cfg.injector.repair_interval_us = 2'000.0;
  return run_churn(*scheme, w.docs_, plan, cfg);
}

struct Golden {
  SchemeKind kind;
  std::uint64_t hash;
};

// Captured from the pre-net pipeline (PR 3 head). If one of these moves,
// the "zero-cost pass-through" contract broke somewhere.
constexpr Golden kGoldens[] = {
    {SchemeKind::kIl, 0xc6192f4e4ea8d621ULL},
    {SchemeKind::kMove, 0x64fb37cf71c2bb51ULL},
    {SchemeKind::kRs, 0xd091f05d8a93e000ULL},
};

TEST(NetDeterminism, LosslessNetLeavesPr3GoldenHashesUnchanged) {
  for (const Golden& g : kGoldens) {
    const std::uint64_t h = golden_hash(run_golden(g.kind));
    EXPECT_EQ(h, g.hash)
        << testutil::scheme_name(g.kind) << ": pre-net pipeline hash moved to "
        << std::hex << "0x" << h
        << " — the lossless transport is no longer a zero-cost pass-through";
  }
}

}  // namespace
}  // namespace move::fault
