#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace move::cluster {
namespace {

std::vector<TermId> ids(std::initializer_list<std::uint32_t> xs) {
  std::vector<TermId> out;
  for (auto x : xs) out.push_back(TermId{x});
  return out;
}

TEST(StorageNode, RegisterIsIdempotentPerTerm) {
  StorageNode node(NodeId{0});
  const auto terms = ids({1, 2});
  const auto one = ids({1});
  node.register_copy(FilterId{9}, terms, one);
  node.register_copy(FilterId{9}, terms, one);
  EXPECT_EQ(node.stored_count(), 1u);
  EXPECT_EQ(node.index().postings(TermId{1}).size(), 1u);
}

TEST(StorageNode, SecondTermAddsIndexNotStorage) {
  StorageNode node(NodeId{0});
  const auto terms = ids({1, 2});
  node.register_copy(FilterId{9}, terms, ids({1}));
  node.register_copy(FilterId{9}, terms, ids({2}));
  EXPECT_EQ(node.stored_count(), 1u);
  EXPECT_EQ(node.index().total_postings(), 2u);
}

TEST(StorageNode, MatchTranslatesToGlobalIds) {
  StorageNode node(NodeId{0});
  node.register_copy(FilterId{42}, ids({7}), ids({7}));
  std::vector<FilterId> out;
  node.match_single(TermId{7}, ids({7, 9}), index::MatchOptions{}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], FilterId{42});
}

TEST(StorageNode, MatchFullAcrossFilters) {
  StorageNode node(NodeId{0});
  node.register_copy(FilterId{10}, ids({1, 2}), ids({1, 2}));
  node.register_copy(FilterId{20}, ids({3}), ids({3}));
  std::vector<FilterId> out;
  node.match_full(ids({2, 3}), index::MatchOptions{}, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], FilterId{10});
  EXPECT_EQ(out[1], FilterId{20});
}

TEST(StorageNode, StoredFiltersSortedGlobal) {
  StorageNode node(NodeId{0});
  node.register_copy(FilterId{5}, ids({1}), ids({1}));
  node.register_copy(FilterId{2}, ids({1}), ids({1}));
  const auto stored = node.stored_filters();
  ASSERT_EQ(stored.size(), 2u);
  EXPECT_EQ(stored[0], FilterId{2});
  EXPECT_EQ(stored[1], FilterId{5});
}

TEST(StorageNode, MetaRecordsRegistrations) {
  StorageNode node(NodeId{0});
  node.register_copy(FilterId{1}, ids({4}), ids({4}));
  node.register_copy(FilterId{2}, ids({4}), ids({4}));
  EXPECT_EQ(node.meta().filters_for(TermId{4}), 2u);
  EXPECT_EQ(node.meta().total_filters(), 2u);
}

TEST(MetaStore, DocumentCounters) {
  MetaStore meta;
  meta.record_document(TermId{1});
  meta.record_document(TermId{1});
  meta.record_document(TermId{2});
  EXPECT_EQ(meta.docs_for(TermId{1}), 2u);
  EXPECT_EQ(meta.total_docs(), 3u);
  meta.reset_document_counters();
  EXPECT_EQ(meta.docs_for(TermId{1}), 0u);
  EXPECT_EQ(meta.total_docs(), 0u);
}

TEST(MetaStore, MissingTermIsZero) {
  MetaStore meta;
  EXPECT_EQ(meta.filters_for(TermId{9}), 0u);
  EXPECT_EQ(meta.docs_for(TermId{9}), 0u);
}

TEST(Cluster, ConstructionWiresRingAndRacks) {
  Cluster c(ClusterConfig{.num_nodes = 12, .num_racks = 3});
  EXPECT_EQ(c.size(), 12u);
  EXPECT_EQ(c.ring().node_count(), 12u);
  EXPECT_EQ(c.topology().rack_count(), 3u);
  EXPECT_EQ(c.live_count(), 12u);
}

TEST(Cluster, RejectsEmpty) {
  EXPECT_THROW(Cluster(ClusterConfig{.num_nodes = 0}), std::invalid_argument);
}

TEST(Cluster, FailAndRevive) {
  Cluster c(ClusterConfig{.num_nodes = 10});
  c.fail_node(NodeId{3});
  EXPECT_FALSE(c.alive(NodeId{3}));
  EXPECT_EQ(c.live_count(), 9u);
  EXPECT_EQ(c.live_nodes().size(), 9u);
  c.revive_all();
  EXPECT_EQ(c.live_count(), 10u);
}

TEST(Cluster, FailFractionExactCount) {
  Cluster c(ClusterConfig{.num_nodes = 20});
  common::SplitMix64 rng(97);
  c.fail_fraction(0.3, rng);
  EXPECT_EQ(c.live_count(), 14u);
}

TEST(Cluster, FailFractionZeroIsNoop) {
  Cluster c(ClusterConfig{.num_nodes = 20});
  common::SplitMix64 rng(101);
  c.fail_fraction(0.0, rng);
  EXPECT_EQ(c.live_count(), 20u);
}

TEST(Cluster, ResetServersClearsAccounting) {
  Cluster c(ClusterConfig{.num_nodes = 2});
  c.engine().schedule_at(0, [&] { c.server(NodeId{0}).submit(10, nullptr); });
  c.engine().run();
  ASSERT_GT(c.server(NodeId{0}).busy_us(), 0.0);
  c.reset_servers();
  EXPECT_EQ(c.server(NodeId{0}).busy_us(), 0.0);
}

}  // namespace
}  // namespace move::cluster
