#include "text/porter.hpp"

#include <gtest/gtest.h>

namespace move::text {
namespace {

// Expected stems follow the rule walk-through in Porter's 1980 paper.
struct Case {
  const char* word;
  const char* stem;
};

class PorterVectors : public ::testing::TestWithParam<Case> {};

TEST_P(PorterVectors, StemsAsPublished) {
  const auto& [word, stem] = GetParam();
  EXPECT_EQ(porter_stem(word), stem) << "word: " << word;
}

INSTANTIATE_TEST_SUITE_P(
    Step1a, PorterVectors,
    ::testing::Values(Case{"caresses", "caress"}, Case{"ponies", "poni"},
                      Case{"caress", "caress"}, Case{"cats", "cat"}));

INSTANTIATE_TEST_SUITE_P(
    Step1b, PorterVectors,
    ::testing::Values(Case{"feed", "feed"}, Case{"agreed", "agre"},
                      Case{"plastered", "plaster"}, Case{"bled", "bled"},
                      Case{"motoring", "motor"}, Case{"sing", "sing"},
                      Case{"conflated", "conflat"}, Case{"troubled", "troubl"},
                      Case{"sized", "size"}, Case{"hopping", "hop"},
                      Case{"tanned", "tan"}, Case{"falling", "fall"},
                      Case{"hissing", "hiss"}, Case{"fizzed", "fizz"},
                      Case{"failing", "fail"}, Case{"filing", "file"}));

INSTANTIATE_TEST_SUITE_P(
    Step1c, PorterVectors,
    ::testing::Values(Case{"happy", "happi"}, Case{"sky", "sky"}));

INSTANTIATE_TEST_SUITE_P(
    Step2, PorterVectors,
    ::testing::Values(Case{"relational", "relat"},
                      Case{"conditional", "condit"}, Case{"rational", "ration"},
                      Case{"valenci", "valenc"}, Case{"hesitanci", "hesit"},
                      Case{"digitizer", "digit"}, Case{"conformabli", "conform"},
                      Case{"radicalli", "radic"}, Case{"differentli", "differ"},
                      Case{"vileli", "vile"}, Case{"analogousli", "analog"},
                      Case{"vietnamization", "vietnam"},
                      Case{"predication", "predic"}, Case{"operator", "oper"},
                      Case{"feudalism", "feudal"},
                      Case{"decisiveness", "decis"},
                      Case{"hopefulness", "hope"},
                      Case{"callousness", "callous"},
                      Case{"formaliti", "formal"},
                      Case{"sensitiviti", "sensit"},
                      Case{"sensibiliti", "sensibl"}));

INSTANTIATE_TEST_SUITE_P(
    Step3, PorterVectors,
    ::testing::Values(Case{"triplicate", "triplic"}, Case{"formative", "form"},
                      Case{"formalize", "formal"}, Case{"electriciti", "electr"},
                      Case{"electrical", "electr"}, Case{"hopeful", "hope"},
                      Case{"goodness", "good"}));

INSTANTIATE_TEST_SUITE_P(
    Step4, PorterVectors,
    ::testing::Values(Case{"revival", "reviv"}, Case{"allowance", "allow"},
                      Case{"inference", "infer"}, Case{"airliner", "airlin"},
                      Case{"gyroscopic", "gyroscop"},
                      Case{"adjustable", "adjust"},
                      Case{"defensible", "defens"}, Case{"irritant", "irrit"},
                      Case{"replacement", "replac"},
                      Case{"adjustment", "adjust"}, Case{"dependent", "depend"},
                      Case{"adoption", "adopt"}, Case{"homologou", "homolog"},
                      Case{"communism", "commun"}, Case{"activate", "activ"},
                      Case{"angulariti", "angular"},
                      Case{"homologous", "homolog"},
                      Case{"effective", "effect"}, Case{"bowdlerize", "bowdler"}));

INSTANTIATE_TEST_SUITE_P(
    Step5, PorterVectors,
    ::testing::Values(Case{"probate", "probat"}, Case{"rate", "rate"},
                      Case{"cease", "ceas"}, Case{"controll", "control"},
                      Case{"roll", "roll"}));

TEST(Porter, ShortWordsUnchanged) {
  EXPECT_EQ(porter_stem("a"), "a");
  EXPECT_EQ(porter_stem("is"), "is");
  EXPECT_EQ(porter_stem(""), "");
}

TEST(Porter, IdempotentOnCommonVocabulary) {
  // Stemming a stem should be a fixed point for these everyday words.
  for (const char* w : {"run", "network", "filter", "cluster", "match"}) {
    const auto once = porter_stem(w);
    EXPECT_EQ(porter_stem(once), once) << w;
  }
}

TEST(Porter, RelatedFormsShareStem) {
  EXPECT_EQ(porter_stem("connect"), porter_stem("connected"));
  EXPECT_EQ(porter_stem("connect"), porter_stem("connecting"));
  EXPECT_EQ(porter_stem("connect"), porter_stem("connection"));
  EXPECT_EQ(porter_stem("connect"), porter_stem("connections"));
}

}  // namespace
}  // namespace move::text
