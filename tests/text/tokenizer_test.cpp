#include "text/tokenizer.hpp"

#include <gtest/gtest.h>

namespace move::text {
namespace {

std::vector<std::string> tok(std::string_view s, TokenizerOptions o = {}) {
  return tokenize(s, o);
}

TEST(Tokenizer, LowercasesAndSplits) {
  EXPECT_EQ(tok("Hello World"), (std::vector<std::string>{"hello", "world"}));
}

TEST(Tokenizer, SplitsOnPunctuation) {
  EXPECT_EQ(tok("breaking-news,today!now"),
            (std::vector<std::string>{"breaking", "news", "today", "now"}));
}

TEST(Tokenizer, DropsShortTokens) {
  EXPECT_EQ(tok("a i be at"), (std::vector<std::string>{"be", "at"}));
}

TEST(Tokenizer, MinLengthConfigurable) {
  TokenizerOptions o;
  o.min_length = 1;
  EXPECT_EQ(tok("a b", o), (std::vector<std::string>{"a", "b"}));
}

TEST(Tokenizer, DropsPureNumbers) {
  EXPECT_EQ(tok("2024 election 42"), (std::vector<std::string>{"election"}));
}

TEST(Tokenizer, KeepsAlphanumerics) {
  EXPECT_EQ(tok("web2 ipv6"), (std::vector<std::string>{"web2", "ipv6"}));
}

TEST(Tokenizer, NumericKeepableViaOption) {
  TokenizerOptions o;
  o.drop_numeric = false;
  EXPECT_EQ(tok("route 66", o), (std::vector<std::string>{"route", "66"}));
}

TEST(Tokenizer, TrimsApostrophes) {
  EXPECT_EQ(tok("user's guide 'quoted'"),
            (std::vector<std::string>{"user's", "guide", "quoted"}));
}

TEST(Tokenizer, DropsOverlongTokens) {
  TokenizerOptions o;
  o.max_length = 5;
  EXPECT_EQ(tok("short verylongtoken ok", o),
            (std::vector<std::string>{"short", "ok"}));
}

TEST(Tokenizer, EmptyInput) { EXPECT_TRUE(tok("").empty()); }

TEST(Tokenizer, OnlySeparators) { EXPECT_TRUE(tok(" .,;!?\t\n ").empty()); }

TEST(Tokenizer, TrailingTokenFlushed) {
  EXPECT_EQ(tok("last"), (std::vector<std::string>{"last"}));
}

TEST(Tokenizer, StreamingSinkSeesSameTokens) {
  std::vector<std::string> streamed;
  tokenize_into("one two three", {},
                [&](std::string_view t) { streamed.emplace_back(t); });
  EXPECT_EQ(streamed, tok("one two three"));
}

}  // namespace
}  // namespace move::text
