#include "text/pipeline.hpp"

#include <gtest/gtest.h>

#include "text/porter.hpp"
#include "text/stopwords.hpp"

namespace move::text {
namespace {

TEST(Stopwords, CommonFunctionWordsPresent) {
  EXPECT_TRUE(is_stopword("the"));
  EXPECT_TRUE(is_stopword("and"));
  EXPECT_TRUE(is_stopword("of"));
  EXPECT_FALSE(is_stopword("keyword"));
  EXPECT_FALSE(is_stopword("cassandra"));
}

TEST(Stopwords, CountMatchesListSize) { EXPECT_GT(stopword_count(), 100u); }

TEST(Pipeline, EndToEnd) {
  Vocabulary v;
  Pipeline p(v);
  const auto ids = p.process("The connected networks are connecting!");
  // "the"/"are" dropped; "connected"/"connecting" stem together; dedupe.
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(v.lookup(porter_stem("connected")).has_value());
  EXPECT_TRUE(v.lookup(porter_stem("networks")).has_value());
}

TEST(Pipeline, OutputSortedAndDeduplicated) {
  Vocabulary v;
  Pipeline p(v);
  const auto ids = p.process("zebra apple zebra apple mango");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(Pipeline, StopwordRemovalToggle) {
  Vocabulary v;
  PipelineOptions o;
  o.remove_stopwords = false;
  o.stem = false;
  Pipeline p(v, o);
  const auto ids = p.process("the cat");
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Pipeline, StemmingToggle) {
  Vocabulary v;
  PipelineOptions o;
  o.stem = false;
  Pipeline p(v, o);
  p.process("connected connecting");
  EXPECT_TRUE(v.lookup("connected").has_value());
  EXPECT_TRUE(v.lookup("connecting").has_value());
}

TEST(Pipeline, ReadonlyDoesNotIntern) {
  Vocabulary v;
  Pipeline p(v);
  p.process("alpha beta");
  const std::size_t before = v.size();
  const auto ids = p.process_readonly("alpha gamma");
  EXPECT_EQ(v.size(), before);  // "gamma" not added
  EXPECT_EQ(ids.size(), 1u);    // only "alpha" resolves
}

TEST(Pipeline, ReadonlyFindsProcessedTerms) {
  Vocabulary v;
  Pipeline p(v);
  const auto reg = p.process("distributed systems");
  const auto ro = p.process_readonly("distributed systems");
  EXPECT_EQ(reg, ro);
}

TEST(Pipeline, FilterAndDocumentShareVocabulary) {
  Vocabulary v;
  Pipeline p(v);
  const auto filter = p.process("football");
  const auto doc = p.process("The football match was played yesterday");
  // The filter's term must appear in the processed document set.
  ASSERT_EQ(filter.size(), 1u);
  EXPECT_TRUE(std::find(doc.begin(), doc.end(), filter[0]) != doc.end());
}

}  // namespace
}  // namespace move::text
