#include "text/vocabulary.hpp"

#include <gtest/gtest.h>

namespace move::text {
namespace {

TEST(Vocabulary, InterningIsIdempotent) {
  Vocabulary v;
  const TermId a = v.intern("hello");
  const TermId b = v.intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 1u);
}

TEST(Vocabulary, IdsAreDenseInsertionOrder) {
  Vocabulary v;
  EXPECT_EQ(v.intern("zero").value, 0u);
  EXPECT_EQ(v.intern("one").value, 1u);
  EXPECT_EQ(v.intern("two").value, 2u);
}

TEST(Vocabulary, SpellingRoundTrips) {
  Vocabulary v;
  const TermId id = v.intern("keyword");
  EXPECT_EQ(v.spelling(id), "keyword");
}

TEST(Vocabulary, SpellingThrowsOnBadId) {
  Vocabulary v;
  EXPECT_THROW(v.spelling(TermId{5}), std::out_of_range);
}

TEST(Vocabulary, LookupMissReturnsNullopt) {
  Vocabulary v;
  v.intern("present");
  EXPECT_FALSE(v.lookup("absent").has_value());
  EXPECT_TRUE(v.lookup("present").has_value());
}

TEST(Vocabulary, ViewsSurviveGrowth) {
  // The map keys view into stored strings; growth must not dangle them.
  Vocabulary v;
  const TermId first = v.intern("anchor");
  for (int i = 0; i < 10'000; ++i) {
    v.intern("term" + std::to_string(i));
  }
  EXPECT_EQ(v.lookup("anchor"), first);
  EXPECT_EQ(v.spelling(first), "anchor");
  EXPECT_EQ(v.size(), 10'001u);
}

TEST(Vocabulary, GrowSyntheticMintsSequentialNames) {
  Vocabulary v;
  v.grow_synthetic(3, "w");
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.spelling(TermId{0}), "w0");
  EXPECT_EQ(v.spelling(TermId{2}), "w2");
}

TEST(Vocabulary, GrowSyntheticSkipsCollisions) {
  Vocabulary v;
  v.intern("t0");
  v.grow_synthetic(2);  // "t1" uses current size as suffix
  EXPECT_EQ(v.size(), 3u);
}

}  // namespace
}  // namespace move::text
