#include "index/sift_matcher.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "index/brute_force.hpp"

namespace move::index {
namespace {

std::vector<TermId> ids(std::initializer_list<std::uint32_t> xs) {
  std::vector<TermId> out;
  for (auto x : xs) out.push_back(TermId{x});
  return out;
}

/// Fixture with the paper's Figure 1 filter set:
/// f1={A,E} f2={A,B} f3={A,B} f4={A,C} f5={A,C,E} f6={B,E}
/// with A=0, B=1, C=2, D=3, E=4.
class Figure1 : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.add(ids({0, 4}));     // f1
    store_.add(ids({0, 1}));     // f2
    store_.add(ids({0, 1}));     // f3
    store_.add(ids({0, 2}));     // f4
    store_.add(ids({0, 2, 4}));  // f5
    store_.add(ids({1, 4}));     // f6
    // Full indexing (RS mode).
    for (std::uint32_t i = 0; i < store_.size(); ++i) {
      full_.add(FilterId{i}, store_.terms(FilterId{i}));
    }
    // Single-term indexing for home node of A (IL mode): posting list for A
    // only, holding the five filters containing A.
    for (std::uint32_t i = 0; i < store_.size(); ++i) {
      const auto t = store_.terms(FilterId{i});
      if (std::find(t.begin(), t.end(), TermId{0}) != t.end()) {
        single_.add(FilterId{i}, ids({0}));
      }
    }
  }

  FilterStore store_;
  InvertedIndex full_;
  InvertedIndex single_;
};

TEST_F(Figure1, FullMatchFindsPaperExample) {
  // Document d = {A, B, D} matches f1..f6 (every filter shares A or B).
  const SiftMatcher matcher(store_, full_);
  std::vector<FilterId> out;
  matcher.match(ids({0, 1, 3}), MatchOptions{}, out);
  ASSERT_EQ(out.size(), 6u);
}

TEST_F(Figure1, FullMatchAccountsRetrievedLists) {
  const SiftMatcher matcher(store_, full_);
  std::vector<FilterId> out;
  const auto acc = matcher.match(ids({0, 1, 3}), MatchOptions{}, out);
  // A and B have lists; D does not -> 2 seeks, 5 + 3 postings.
  EXPECT_EQ(acc.lists_retrieved, 2u);
  EXPECT_EQ(acc.postings_scanned, 8u);
}

TEST_F(Figure1, SingleListMatchesOnlyHomeTermFilters) {
  // On home node of A, only the posting list of A is retrieved (paper
  // §III-B): filters f1..f5.
  const SiftMatcher matcher(store_, single_);
  std::vector<FilterId> out;
  const auto acc =
      matcher.match_single_list(TermId{0}, ids({0, 1, 3}), MatchOptions{}, out);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(acc.lists_retrieved, 1u);
  EXPECT_EQ(acc.postings_scanned, 5u);
}

TEST_F(Figure1, SingleListMissingTermIsFree) {
  const SiftMatcher matcher(store_, single_);
  std::vector<FilterId> out;
  const auto acc =
      matcher.match_single_list(TermId{3}, ids({3}), MatchOptions{}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(acc.lists_retrieved, 0u);
}

TEST_F(Figure1, MatchesAgreeWithBruteForce) {
  const SiftMatcher matcher(store_, full_);
  std::vector<FilterId> out;
  for (auto doc : {ids({0}), ids({1, 2}), ids({3}), ids({2, 4}),
                   ids({0, 1, 2, 3, 4})}) {
    matcher.match(doc, MatchOptions{}, out);
    EXPECT_EQ(out, brute_force_match(store_, doc, MatchOptions{}));
  }
}

TEST_F(Figure1, ThresholdSemanticsVerified) {
  const SiftMatcher matcher(store_, full_);
  MatchOptions all{MatchSemantics::kAllTerms, 0.0};
  std::vector<FilterId> out;
  matcher.match(ids({0, 4}), all, out);  // contains exactly f1={A,E}
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], FilterId{0});
}

TEST_F(Figure1, ThresholdAgreesWithBruteForce) {
  const SiftMatcher matcher(store_, full_);
  for (double theta : {0.3, 0.5, 0.8, 1.0}) {
    const MatchOptions opt{MatchSemantics::kThreshold, theta};
    std::vector<FilterId> out;
    for (auto doc : {ids({0, 1}), ids({0, 2, 4}), ids({4})}) {
      matcher.match(doc, opt, out);
      EXPECT_EQ(out, brute_force_match(store_, doc, opt)) << "theta " << theta;
    }
  }
}

TEST_F(Figure1, SingleListVerifiesUnderThreshold) {
  const SiftMatcher matcher(store_, single_);
  // theta=1.0: only filters fully contained in the doc survive.
  const MatchOptions opt{MatchSemantics::kThreshold, 1.0};
  std::vector<FilterId> out;
  matcher.match_single_list(TermId{0}, ids({0, 2}), opt, out);
  ASSERT_EQ(out.size(), 1u);  // f4={A,C}
  EXPECT_EQ(out[0], FilterId{3});
}

TEST(SiftMatcherRandomized, AgreesWithBruteForceOnRandomSets) {
  common::SplitMix64 rng(71);
  FilterStore store;
  InvertedIndex index;
  constexpr std::uint32_t kVocab = 40;
  for (std::uint32_t i = 0; i < 300; ++i) {
    std::vector<TermId> f;
    const auto len = 1 + common::uniform_below(rng, 3);
    while (f.size() < len) {
      const TermId t{static_cast<std::uint32_t>(
          common::uniform_below(rng, kVocab))};
      if (std::find(f.begin(), f.end(), t) == f.end()) f.push_back(t);
    }
    std::sort(f.begin(), f.end());
    const auto id = store.add(f);
    index.add(id, store.terms(id));
  }
  const SiftMatcher matcher(store, index);
  std::vector<FilterId> out;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TermId> doc;
    const auto len = 1 + common::uniform_below(rng, 12);
    while (doc.size() < len) {
      const TermId t{static_cast<std::uint32_t>(
          common::uniform_below(rng, kVocab))};
      if (std::find(doc.begin(), doc.end(), t) == doc.end()) doc.push_back(t);
    }
    std::sort(doc.begin(), doc.end());
    matcher.match(doc, MatchOptions{}, out);
    EXPECT_EQ(out, brute_force_match(store, doc, MatchOptions{}));
  }
}

}  // namespace
}  // namespace move::index
