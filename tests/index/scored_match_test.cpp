#include "index/scored_match.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace move::index {
namespace {

std::vector<TermId> ids(std::initializer_list<std::uint32_t> xs) {
  std::vector<TermId> out;
  for (auto x : xs) out.push_back(TermId{x});
  return out;
}

TEST(CosineScore, DisjointIsZero) {
  EXPECT_EQ(cosine_score(ids({1, 2}), ids({3, 4})), 0.0);
}

TEST(CosineScore, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(cosine_score(ids({1, 2, 3}), ids({1, 2, 3})), 1.0);
}

TEST(CosineScore, PartialOverlap) {
  // |d|=4, |f|=2, common=1 -> 1/sqrt(8).
  EXPECT_NEAR(cosine_score(ids({1, 2, 3, 4}), ids({4, 9})),
              1.0 / std::sqrt(8.0), 1e-12);
}

TEST(CosineScore, EmptyIsZero) {
  EXPECT_EQ(cosine_score({}, ids({1})), 0.0);
  EXPECT_EQ(cosine_score(ids({1}), {}), 0.0);
}

class ScoredMatchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    add(ids({1, 2}));        // f0
    add(ids({1, 2, 3}));     // f1
    add(ids({9}));           // f2
    add(ids({1}));           // f3
  }
  void add(const std::vector<TermId>& terms) {
    const auto id = store_.add(terms);
    index_.add(id, store_.terms(id));
  }
  FilterStore store_;
  InvertedIndex index_;
};

TEST_F(ScoredMatchFixture, OrdersByDescendingScore) {
  const auto doc = ids({1, 2});
  const auto out = scored_match(store_, index_, doc, {});
  ASSERT_EQ(out.size(), 3u);  // f2 shares nothing
  EXPECT_EQ(out[0].filter, FilterId{0});  // cosine 1.0
  EXPECT_DOUBLE_EQ(out[0].score, 1.0);
  // f1: 2/sqrt(6) ~ 0.816; f3: 1/sqrt(2) ~ 0.707.
  EXPECT_EQ(out[1].filter, FilterId{1});
  EXPECT_EQ(out[2].filter, FilterId{3});
}

TEST_F(ScoredMatchFixture, MinScoreFilters) {
  ScoredMatchOptions opt;
  opt.min_score = 0.8;
  const auto out = scored_match(store_, index_, ids({1, 2}), opt);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_GE(out.back().score, 0.8);
}

TEST_F(ScoredMatchFixture, TopKTruncates) {
  ScoredMatchOptions opt;
  opt.top_k = 1;
  const auto out = scored_match(store_, index_, ids({1, 2}), opt);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].filter, FilterId{0});
}

TEST_F(ScoredMatchFixture, TiesBreakByFilterId) {
  // f0={1,2} and a duplicate filter get identical scores.
  add(ids({1, 2}));  // f4, same terms as f0
  const auto out = scored_match(store_, index_, ids({1, 2}), {});
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0].filter, FilterId{0});
  EXPECT_EQ(out[1].filter, FilterId{4});
}

TEST_F(ScoredMatchFixture, AccountingReported) {
  MatchAccounting acc;
  scored_match(store_, index_, ids({1, 2, 9}), {}, &acc);
  EXPECT_EQ(acc.lists_retrieved, 3u);
  EXPECT_GT(acc.postings_scanned, 0u);
  EXPECT_EQ(acc.candidates_verified, 4u);  // f0, f1, f2, f3
}

TEST_F(ScoredMatchFixture, NoOverlapNoMatches) {
  EXPECT_TRUE(scored_match(store_, index_, ids({77}), {}).empty());
}

TEST_F(ScoredMatchFixture, ScoresAgreeWithDirectCosine) {
  const auto doc = ids({1, 3, 9});
  for (const auto& m : scored_match(store_, index_, doc, {})) {
    EXPECT_DOUBLE_EQ(m.score, cosine_score(doc, store_.terms(m.filter)));
  }
}

TEST_F(ScoredMatchFixture, ScratchKernelMatchesLegacy) {
  // The epoch-counter overload must agree with the hash-map overload —
  // results, ordering, and accounting — on mutable AND frozen indexes, with
  // the scratch reused across calls.
  MatchScratch scratch;
  const ScoredMatchOptions configs[] = {
      {}, {0.5, 0}, {0.0, 2}, {0.9, 1}};
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& opt : configs) {
      for (const auto& doc :
           {ids({1, 2}), ids({1, 3, 9}), ids({77}), ids({})}) {
        MatchAccounting acc_a, acc_b;
        const auto expected = scored_match(store_, index_, doc, opt, &acc_a);
        const auto got =
            scored_match(store_, index_, doc, opt, scratch, &acc_b);
        EXPECT_EQ(got, expected);
        EXPECT_EQ(acc_a.lists_retrieved, acc_b.lists_retrieved);
        EXPECT_EQ(acc_a.postings_scanned, acc_b.postings_scanned);
        EXPECT_EQ(acc_a.candidates_verified, acc_b.candidates_verified);
      }
    }
    index_.finalize();  // second pass runs against the frozen arena
  }
}

}  // namespace
}  // namespace move::index
