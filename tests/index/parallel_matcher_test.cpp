#include "index/parallel_matcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/rng.hpp"
#include "index/brute_force.hpp"
#include "obs/metrics.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"

namespace move::index {
namespace {

constexpr std::size_t kVocab = 1'000;

struct ParallelFixture {
  ParallelFixture() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = 4'000;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 30;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    docs = workload::CorpusGenerator(ccfg).generate(40);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      reference.add(filters.row(i));
    }
  }
  workload::TermSetTable filters, docs;
  FilterStore reference;
};

const ParallelFixture& fx() {
  static const ParallelFixture f;
  return f;
}

TEST(ParallelMatcher, AgreesWithBruteForce) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 8, 4);
  for (std::size_t d = 0; d < f.docs.size(); ++d) {
    EXPECT_EQ(matcher.match(f.docs.row(d)),
              brute_force_match(f.reference, f.docs.row(d), {}))
        << "doc " << d;
  }
}

TEST(ParallelMatcher, ParallelEqualsSequential) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 8, 4);
  for (std::size_t d = 0; d < f.docs.size(); d += 3) {
    EXPECT_EQ(matcher.match(f.docs.row(d)),
              matcher.match_sequential(f.docs.row(d)));
  }
}

TEST(ParallelMatcher, ShardCountIndependent) {
  const auto& f = fx();
  ParallelMatcher one(f.filters, 1, 2);
  ParallelMatcher many(f.filters, 16, 2);
  for (std::size_t d = 0; d < f.docs.size(); d += 5) {
    EXPECT_EQ(one.match(f.docs.row(d)), many.match(f.docs.row(d)));
  }
}

TEST(ParallelMatcher, ThresholdSemantics) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 6, 3);
  const MatchOptions opt{MatchSemantics::kThreshold, 0.5};
  for (std::size_t d = 0; d < f.docs.size(); d += 4) {
    EXPECT_EQ(matcher.match(f.docs.row(d), opt),
              brute_force_match(f.reference, f.docs.row(d), opt));
  }
}

TEST(ParallelMatcher, ZeroShardsDefaultsToThreads) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 0, 3);
  EXPECT_EQ(matcher.shard_count(), 3u);
  EXPECT_EQ(matcher.thread_count(), 3u);
  EXPECT_EQ(matcher.filter_count(), f.filters.size());
}

TEST(ParallelMatcher, EmptyDocMatchesNothing) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 4, 2);
  EXPECT_TRUE(matcher.match({}).empty());
}

TEST(ParallelMatcher, RepeatedCallsAreStable) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 8, 4);
  const auto doc = f.docs.row(0);
  const auto first = matcher.match(doc);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(matcher.match(doc), first);
  }
}

// Property: for every (shards, threads, semantics) configuration, on a
// seeded random sample of documents, match == match_sequential ==
// brute-force. Covers the degenerate single-shard layout, a non-power-of-two
// shard count, and the host's actual hardware concurrency.
TEST(ParallelMatcher, PropertyEquivalenceAcrossConfigurations) {
  const auto& f = fx();
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t shard_choices[] = {1, 3, hw};
  const std::size_t thread_choices[] = {1, 2, hw};
  const MatchOptions option_choices[] = {
      {MatchSemantics::kAnyTerm, 0.0},
      {MatchSemantics::kAllTerms, 0.0},
      {MatchSemantics::kThreshold, 0.3},
      {MatchSemantics::kThreshold, 0.8},
  };
  common::SplitMix64 rng(0xBADC0DEu);
  for (std::size_t shards : shard_choices) {
    for (std::size_t threads : thread_choices) {
      ParallelMatcher matcher(f.filters, shards, threads);
      for (const MatchOptions& opt : option_choices) {
        for (int trial = 0; trial < 4; ++trial) {
          const auto d = common::uniform_below(rng, f.docs.size());
          const auto doc = f.docs.row(d);
          const auto expected = brute_force_match(f.reference, doc, opt);
          EXPECT_EQ(matcher.match(doc, opt), expected)
              << "shards=" << shards << " threads=" << threads
              << " semantics=" << static_cast<int>(opt.semantics)
              << " threshold=" << opt.threshold << " doc=" << d;
          EXPECT_EQ(matcher.match_sequential(doc, opt), expected)
              << "sequential, shards=" << shards << " doc=" << d;
        }
      }
    }
  }
}

TEST(ParallelMatcher, ShardStatsAccumulateAndReset) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 4, 2);
  for (std::size_t d = 0; d < 8; ++d) {
    (void)matcher.match(f.docs.row(d));
  }
  const auto stats = matcher.shard_stats();
  ASSERT_EQ(stats.size(), 4u);
  std::uint64_t scanned = 0, verified = 0, lists = 0;
  for (const ShardStats& s : stats) {
    scanned += s.postings_scanned;
    verified += s.candidates_verified;
    lists += s.lists_retrieved;
  }
  EXPECT_GT(scanned, 0u);
  EXPECT_GT(lists, 0u);
  EXPECT_GE(scanned, verified);  // every candidate came from a scanned posting
  EXPECT_GE(matcher.shard_imbalance(), 1.0);

  matcher.reset_stats();
  for (const ShardStats& s : matcher.shard_stats()) {
    EXPECT_EQ(s.postings_scanned, 0u);
    EXPECT_EQ(s.matches_emitted, 0u);
  }
}

TEST(ParallelMatcher, StaticImbalanceFallbackBeforeAnyMatch) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 4, 1);
  // No match has run: imbalance falls back to the static index mass, which
  // is well-defined and >= 1 for a populated index.
  EXPECT_GE(matcher.shard_imbalance(), 1.0);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < matcher.shard_count(); ++s) {
    total += matcher.shard_postings(s);
  }
  EXPECT_GT(total, 0u);
}

TEST(ParallelMatcher, ExportMetricsWritesShardGauges) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 2, 2);
  (void)matcher.match(f.docs.row(0));
  obs::Registry registry;
  matcher.export_metrics(registry);
  const auto gauges = registry.gauges();
  auto value_of = [&](const std::string& name) -> double {
    for (const auto& g : gauges) {
      if (g.name == name) return g.value;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return -1.0;
  };
  EXPECT_EQ(value_of("index.parallel.shards"), 2.0);
  EXPECT_GE(value_of("index.parallel.shard_imbalance"), 1.0);
  EXPECT_GE(value_of("index.parallel.postings_scanned{shard=0}"), 0.0);
  EXPECT_GE(value_of("index.parallel.postings_scanned{shard=1}"), 0.0);
  EXPECT_GT(value_of("index.parallel.postings_scanned"), 0.0);
}

// Back-to-back match_batch calls reuse each worker's MatchScratch. Epoch
// isolation is what keeps one batch's counters from bleeding into the next —
// a collision would trip the debug asserts in MatchScratch::bump and show up
// here as wrong match sets. Alternate semantics between batches so stale
// counters WOULD change results if they leaked.
TEST(ParallelMatcher, BackToBackBatchesReuseWorkerScratchSafely) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 4, 3);
  std::vector<std::span<const TermId>> spans;
  for (std::size_t i = 0; i < 12; ++i) spans.push_back(f.docs.row(i));

  const MatchOptions any{MatchSemantics::kAnyTerm, 0.0};
  const MatchOptions thresh{MatchSemantics::kThreshold, 0.5};
  for (int round = 0; round < 4; ++round) {
    const MatchOptions& opt = (round % 2 == 0) ? any : thresh;
    const auto batch = matcher.match_batch(spans, opt);
    ASSERT_EQ(batch.size(), spans.size());
    for (std::size_t d = 0; d < spans.size(); ++d) {
      EXPECT_EQ(batch[d], brute_force_match(f.reference, spans[d], opt))
          << "round=" << round << " doc=" << d;
    }
  }
}

// The summary gate's shard stats flow through the batch merge: probing
// documents that contain shard-foreign terms produces postings_skipped on
// the shards whose summaries screen them out, and the new counters
// accumulate across batches like the classic ones.
TEST(ParallelMatcher, BloomStatsAccumulateAcrossBatches) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 4, 2);
  std::vector<std::span<const TermId>> spans;
  for (std::size_t i = 0; i < 8; ++i) spans.push_back(f.docs.row(i));

  auto skipped_total = [&] {
    std::uint64_t total = 0;
    for (const ShardStats& s : matcher.shard_stats()) {
      total += s.postings_skipped;
    }
    return total;
  };
  (void)matcher.match_batch(spans, MatchOptions{});
  const auto after_one = skipped_total();
  (void)matcher.match_batch(spans, MatchOptions{});
  EXPECT_EQ(skipped_total(), 2 * after_one);
  matcher.reset_stats();
  EXPECT_EQ(skipped_total(), 0u);
}

}  // namespace
}  // namespace move::index
