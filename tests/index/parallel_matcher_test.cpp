#include "index/parallel_matcher.hpp"

#include <gtest/gtest.h>

#include "index/brute_force.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"

namespace move::index {
namespace {

constexpr std::size_t kVocab = 1'000;

struct ParallelFixture {
  ParallelFixture() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = 4'000;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 30;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    docs = workload::CorpusGenerator(ccfg).generate(40);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      reference.add(filters.row(i));
    }
  }
  workload::TermSetTable filters, docs;
  FilterStore reference;
};

const ParallelFixture& fx() {
  static const ParallelFixture f;
  return f;
}

TEST(ParallelMatcher, AgreesWithBruteForce) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 8, 4);
  for (std::size_t d = 0; d < f.docs.size(); ++d) {
    EXPECT_EQ(matcher.match(f.docs.row(d)),
              brute_force_match(f.reference, f.docs.row(d), {}))
        << "doc " << d;
  }
}

TEST(ParallelMatcher, ParallelEqualsSequential) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 8, 4);
  for (std::size_t d = 0; d < f.docs.size(); d += 3) {
    EXPECT_EQ(matcher.match(f.docs.row(d)),
              matcher.match_sequential(f.docs.row(d)));
  }
}

TEST(ParallelMatcher, ShardCountIndependent) {
  const auto& f = fx();
  ParallelMatcher one(f.filters, 1, 2);
  ParallelMatcher many(f.filters, 16, 2);
  for (std::size_t d = 0; d < f.docs.size(); d += 5) {
    EXPECT_EQ(one.match(f.docs.row(d)), many.match(f.docs.row(d)));
  }
}

TEST(ParallelMatcher, ThresholdSemantics) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 6, 3);
  const MatchOptions opt{MatchSemantics::kThreshold, 0.5};
  for (std::size_t d = 0; d < f.docs.size(); d += 4) {
    EXPECT_EQ(matcher.match(f.docs.row(d), opt),
              brute_force_match(f.reference, f.docs.row(d), opt));
  }
}

TEST(ParallelMatcher, ZeroShardsDefaultsToThreads) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 0, 3);
  EXPECT_EQ(matcher.shard_count(), 3u);
  EXPECT_EQ(matcher.thread_count(), 3u);
  EXPECT_EQ(matcher.filter_count(), f.filters.size());
}

TEST(ParallelMatcher, EmptyDocMatchesNothing) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 4, 2);
  EXPECT_TRUE(matcher.match({}).empty());
}

TEST(ParallelMatcher, RepeatedCallsAreStable) {
  const auto& f = fx();
  ParallelMatcher matcher(f.filters, 8, 4);
  const auto doc = f.docs.row(0);
  const auto first = matcher.match(doc);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(matcher.match(doc), first);
  }
}

}  // namespace
}  // namespace move::index
