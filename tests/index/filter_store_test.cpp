#include "index/filter_store.hpp"

#include <gtest/gtest.h>

namespace move::index {
namespace {

std::vector<TermId> ids(std::initializer_list<std::uint32_t> xs) {
  std::vector<TermId> out;
  for (auto x : xs) out.push_back(TermId{x});
  return out;
}

TEST(FilterStore, AddAssignsDenseIds) {
  FilterStore s;
  EXPECT_EQ(s.add(ids({1, 2})).value, 0u);
  EXPECT_EQ(s.add(ids({3})).value, 1u);
  EXPECT_EQ(s.size(), 2u);
}

TEST(FilterStore, RejectsEmptyFilter) {
  FilterStore s;
  EXPECT_THROW(s.add({}), std::invalid_argument);
}

TEST(FilterStore, TermsRoundTrip) {
  FilterStore s;
  const auto f = s.add(ids({5, 9, 11}));
  const auto t = s.terms(f);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].value, 5u);
  EXPECT_EQ(t[2].value, 11u);
}

TEST(FilterStore, TermsThrowsOnBadId) {
  FilterStore s;
  EXPECT_THROW(s.terms(FilterId{0}), std::out_of_range);
}

TEST(FilterStore, TermSlotsCountCopies) {
  FilterStore s;
  s.add(ids({1, 2}));
  s.add(ids({1, 2, 3}));
  EXPECT_EQ(s.term_slots(), 5u);
}

TEST(IntersectionSize, Basics) {
  EXPECT_EQ(FilterStore::intersection_size(ids({1, 2, 3}), ids({2, 3, 4})),
            2u);
  EXPECT_EQ(FilterStore::intersection_size(ids({1}), ids({2})), 0u);
  EXPECT_EQ(FilterStore::intersection_size({}, ids({1})), 0u);
  EXPECT_EQ(FilterStore::intersection_size(ids({7}), ids({7})), 1u);
}

TEST(Matches, AnyTermSemantics) {
  FilterStore s;
  const auto f = s.add(ids({10, 20}));
  MatchOptions any;  // default kAnyTerm
  EXPECT_TRUE(s.matches(f, ids({20, 99}), any));
  EXPECT_FALSE(s.matches(f, ids({30, 99}), any));
}

TEST(Matches, AllTermsSemantics) {
  FilterStore s;
  const auto f = s.add(ids({10, 20}));
  MatchOptions all{MatchSemantics::kAllTerms, 0.0};
  EXPECT_TRUE(s.matches(f, ids({5, 10, 20}), all));
  EXPECT_FALSE(s.matches(f, ids({10, 99}), all));
}

TEST(Matches, ThresholdSemantics) {
  FilterStore s;
  const auto f = s.add(ids({1, 2, 3, 4}));
  // theta = 0.5 on a 4-term filter needs >= 2 common terms.
  MatchOptions half{MatchSemantics::kThreshold, 0.5};
  EXPECT_FALSE(s.matches(f, ids({1, 99}), half));
  EXPECT_TRUE(s.matches(f, ids({1, 2}), half));
}

TEST(Matches, ThresholdAtLeastOne) {
  FilterStore s;
  const auto f = s.add(ids({1, 2, 3}));
  // A tiny theta still requires one shared term.
  MatchOptions tiny{MatchSemantics::kThreshold, 0.01};
  EXPECT_FALSE(s.matches(f, ids({9}), tiny));
  EXPECT_TRUE(s.matches(f, ids({3}), tiny));
}

TEST(Matches, ThresholdOneEqualsAllTerms) {
  FilterStore s;
  const auto f = s.add(ids({1, 2, 3}));
  MatchOptions full{MatchSemantics::kThreshold, 1.0};
  EXPECT_TRUE(s.matches(f, ids({1, 2, 3, 4}), full));
  EXPECT_FALSE(s.matches(f, ids({1, 2}), full));
}

}  // namespace
}  // namespace move::index
