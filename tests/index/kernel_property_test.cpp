// Kernel equivalence property suite (`ctest -L kernels`).
//
// Every matching-kernel variant must produce the identical match set and
// identical classic accounting, with brute force as ground truth, across:
//   * dispatch: SIMD vs forced-scalar twins (MOVE_FORCE_SCALAR / the
//     set_force_scalar knob),
//   * the blocked-Bloom term-summary gate: on vs off,
//   * verification: intersection-scan vs the full-index O(1) count compare,
//   * semantics: kAnyTerm / kAllTerms / kThreshold at several thresholds,
//   * workload seeds.
// The asan and tsan presets run this binary too, and the CMake harness runs
// it a second time with MOVE_FORCE_SCALAR=1 in the environment
// (kernels_forced_scalar) so the env-var path itself is exercised.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "common/simd.hpp"
#include "index/brute_force.hpp"
#include "index/match_scratch.hpp"
#include "index/scored_match.hpp"
#include "index/sift_matcher.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"

namespace move::index {
namespace {

constexpr std::size_t kVocab = 600;

struct ScopedForceScalar {
  explicit ScopedForceScalar(bool on) : prev(simd::force_scalar()) {
    simd::set_force_scalar(on);
  }
  ~ScopedForceScalar() { simd::set_force_scalar(prev); }
  bool prev;
};

struct Workload {
  workload::TermSetTable filters, docs;
  FilterStore store;
  InvertedIndex index;  // full index, frozen

  explicit Workload(std::uint64_t seed, std::size_t num_filters = 1'200,
                    std::size_t num_docs = 20) {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = num_filters;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 25;
    qcfg.seed = 0x6e51 + seed;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    ccfg.seed = 0x0ced + seed;
    docs = workload::CorpusGenerator(ccfg).generate(num_docs);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      const auto id = store.add(filters.row(i));
      index.add(id, store.terms(id));
    }
    index.finalize();
  }
};

const MatchOptions kSemantics[] = {
    {MatchSemantics::kAnyTerm, 0.0},
    {MatchSemantics::kAllTerms, 0.0},
    {MatchSemantics::kThreshold, 0.3},
    {MatchSemantics::kThreshold, 0.6},
    {MatchSemantics::kThreshold, 0.9},
};

// The core equivalence matrix: dispatch x gate x verification x semantics x
// seeds, against brute force. Classic accounting must match the ungated
// scalar reference exactly (bloom_rejects/postings_skipped may differ — they
// only exist with the gate on).
TEST(KernelProperty, AllVariantsMatchBruteForce) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Workload w(seed);
    const SiftMatcher scan_verify(w.store, w.index);
    const SiftMatcher count_verify(w.store, w.index, /*full_index=*/true);
    MatchScratch scratch;
    std::vector<FilterId> out;
    for (const MatchOptions& base : kSemantics) {
      for (std::size_t d = 0; d < w.docs.size(); ++d) {
        const auto doc = w.docs.row(d);
        const auto expected = brute_force_match(w.store, doc, base);

        // Reference accounting: scalar dispatch, gate off, scan verify.
        MatchAccounting ref;
        {
          ScopedForceScalar scalar(true);
          MatchOptions opt = base;
          opt.use_term_summary = false;
          ref = scan_verify.match(doc, opt, out, scratch);
          ASSERT_EQ(out, expected) << "reference kernel diverged";
        }

        for (const bool force_scalar : {false, true}) {
          ScopedForceScalar dispatch(force_scalar);
          for (const bool gate : {false, true}) {
            MatchOptions opt = base;
            opt.use_term_summary = gate;
            for (const SiftMatcher* m : {&scan_verify, &count_verify}) {
              const auto acc = m->match(doc, opt, out, scratch);
              ASSERT_EQ(out, expected)
                  << "seed=" << seed << " doc=" << d
                  << " sem=" << static_cast<int>(base.semantics)
                  << " theta=" << base.threshold << " scalar=" << force_scalar
                  << " gate=" << gate
                  << " full_index=" << (m == &count_verify);
              EXPECT_EQ(acc.lists_retrieved, ref.lists_retrieved);
              EXPECT_EQ(acc.postings_scanned, ref.postings_scanned);
              EXPECT_EQ(acc.candidates_verified, ref.candidates_verified);
              if (!gate) {
                EXPECT_EQ(acc.bloom_rejects, 0u);
                EXPECT_EQ(acc.postings_skipped, 0u);
              }
            }
          }
        }
      }
    }
  }
}

// match_lists (the sharded kernel) under the same dispatch x gate matrix:
// the home-term union must equal concatenating per-term single-list results.
TEST(KernelProperty, MatchListsInvariantUnderDispatchAndGate) {
  const Workload w(4);
  const SiftMatcher matcher(w.store, w.index);
  MatchScratch scratch;
  std::vector<FilterId> out, expected;
  for (const MatchOptions& base : kSemantics) {
    for (std::size_t d = 0; d < std::min<std::size_t>(w.docs.size(), 8); ++d) {
      const auto doc = w.docs.row(d);
      {
        ScopedForceScalar scalar(true);
        MatchOptions opt = base;
        opt.use_term_summary = false;
        (void)matcher.match_lists(doc, doc, opt, expected, scratch);
      }
      for (const bool force_scalar : {false, true}) {
        ScopedForceScalar dispatch(force_scalar);
        for (const bool gate : {false, true}) {
          MatchOptions opt = base;
          opt.use_term_summary = gate;
          (void)matcher.match_lists(doc, doc, opt, out, scratch);
          ASSERT_EQ(out, expected)
              << "scalar=" << force_scalar << " gate=" << gate << " doc=" << d;
        }
      }
    }
  }
}

// scored_match: the hash-map kernel and the (gated, vectorized) scratch
// kernel must return the same ranked list under every dispatch.
TEST(KernelProperty, ScoredMatchKernelsAgree) {
  const Workload w(5);
  MatchScratch scratch;
  const ScoredMatchOptions opts[] = {
      {0.0, 0}, {0.2, 0}, {0.5, 10}, {0.0, 3}};
  for (const auto& opt : opts) {
    for (std::size_t d = 0; d < w.docs.size(); ++d) {
      const auto doc = w.docs.row(d);
      const auto expected = scored_match(w.store, w.index, doc, opt);
      for (const bool force_scalar : {false, true}) {
        ScopedForceScalar dispatch(force_scalar);
        const auto got = scored_match(w.store, w.index, doc, opt, scratch);
        ASSERT_EQ(got, expected)
            << "min_score=" << opt.min_score << " top_k=" << opt.top_k
            << " scalar=" << force_scalar << " doc=" << d;
      }
    }
  }
}

// bump_list is the vectorized twin of a bump() loop: identical counts and
// identical first-touch order, including sorted lists with adjacent
// duplicates (the gather hazard the kernel must detect).
TEST(KernelProperty, BumpListMatchesScalarBumps) {
  std::vector<FilterId> list;
  for (std::uint32_t i = 0; i < 300; ++i) {
    const std::uint32_t v = (i * i) % 97;
    list.push_back(FilterId{v});
    if (i % 5 == 0) list.push_back(FilterId{v});  // duplicates
  }
  std::sort(list.begin(), list.end());

  for (const bool force_scalar : {false, true}) {
    ScopedForceScalar dispatch(force_scalar);
    MatchScratch vectored, reference;
    vectored.begin(97);
    reference.begin(97);
    vectored.bump_list(list);
    for (const FilterId f : list) reference.bump(f.value);

    const auto got = vectored.candidates();
    const auto want = reference.candidates();
    ASSERT_EQ(std::vector<FilterId>(got.begin(), got.end()),
              std::vector<FilterId>(want.begin(), want.end()))
        << "scalar=" << force_scalar;
    for (std::uint32_t f = 0; f < 97; ++f) {
      ASSERT_EQ(vectored.count(f), reference.count(f)) << "filter " << f;
    }
  }
}

// Epoch lifecycle: begin() advances the epoch (isolating back-to-back
// matches on a reused scratch), and the u32 wrap falls back to a hard clear
// instead of colliding with ancient stamps.
TEST(KernelProperty, EpochAdvancesAndWrapsSafely) {
  MatchScratch scratch;
  scratch.begin(8);
  const auto e1 = scratch.epoch();
  scratch.bump(3);
  scratch.bump(3);
  EXPECT_EQ(scratch.count(3), 2u);

  scratch.begin(8);
  EXPECT_GT(scratch.epoch(), e1);
  EXPECT_EQ(scratch.count(3), 0u) << "stale counter leaked across begin()";
  EXPECT_TRUE(scratch.candidates().empty());

  // Plant the wrap: the next begin() overflows the epoch, which must hard-
  // clear every stamp rather than alias epoch 1 stamps from a former life.
  scratch.bump(5);
  scratch.set_epoch_for_test(0xffffffffu);
  scratch.begin(8);
  EXPECT_EQ(scratch.epoch(), 1u);
  EXPECT_EQ(scratch.count(5), 0u) << "wrap aliased a stale stamp";
  EXPECT_EQ(scratch.bump(5), 1u);
  EXPECT_EQ(scratch.count(5), 1u);
}

// The gate's new accounting: a document whose terms are all provably absent
// is rejected without a single probe, and each screened-out term is counted.
// Terms are picked to be genuinely summary-negative (no false positive), so
// the assertions are exact.
TEST(KernelProperty, BloomRejectAccounting) {
  FilterStore store;
  InvertedIndex index;
  std::vector<TermId> terms;
  for (std::uint32_t t = 0; t < 100; ++t) {
    terms.assign(1, TermId{t});
    index.add(store.add(terms), terms);
  }
  index.finalize();
  const auto* summary = index.term_summary();
  ASSERT_NE(summary, nullptr);

  std::vector<TermId> alien;
  for (std::uint32_t t = 1'000'000; alien.size() < 5; ++t) {
    if (!summary->may_contain(TermId{t})) alien.push_back(TermId{t});
  }

  const SiftMatcher matcher(store, index);
  MatchScratch scratch;
  std::vector<FilterId> out;
  for (const MatchOptions& base : kSemantics) {
    const auto acc = matcher.match(alien, base, out, scratch);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(acc.bloom_rejects, 1u);
    EXPECT_EQ(acc.postings_skipped, alien.size());
    EXPECT_EQ(acc.lists_retrieved, 0u);
    EXPECT_EQ(acc.postings_scanned, 0u);
    EXPECT_EQ(acc.candidates_verified, 0u);

    // Gate off: same (empty) result, no gate accounting, still no probes
    // hit (absent terms have no postings).
    MatchOptions opt = base;
    opt.use_term_summary = false;
    const auto acc_off = matcher.match(alien, opt, out, scratch);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(acc_off.bloom_rejects, 0u);
    EXPECT_EQ(acc_off.postings_skipped, 0u);
  }

  // A mixed document (one real term among aliens) must NOT be rejected.
  std::vector<TermId> mixed = alien;
  mixed.push_back(TermId{7});
  std::sort(mixed.begin(), mixed.end());
  const auto acc = matcher.match(mixed, kSemantics[0], out, scratch);
  EXPECT_EQ(acc.bloom_rejects, 0u);
  EXPECT_EQ(acc.postings_skipped, alien.size());
  EXPECT_EQ(acc.lists_retrieved, 1u);
  ASSERT_EQ(out.size(), 1u);

  // match_single_list: an absent home term is one skipped probe + a reject.
  const auto single = matcher.match_single_list(alien[0], mixed,
                                                kSemantics[0], out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(single.bloom_rejects, 1u);
  EXPECT_EQ(single.postings_skipped, 1u);
  EXPECT_EQ(single.lists_retrieved, 0u);
}

// simd::find_first_ge / lower_bound_u32 against the std reference, both
// dispatches, across window sizes spanning the vector width.
TEST(KernelProperty, SimdLowerBoundMatchesStd) {
  std::vector<std::uint32_t> data;
  for (std::uint32_t i = 0; i < 1000; ++i) data.push_back(i * 3 + (i % 2));
  for (const bool force_scalar : {false, true}) {
    ScopedForceScalar dispatch(force_scalar);
    for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 31u, 32u, 33u, 1000u}) {
      for (std::uint32_t key = 0; key < 3 * static_cast<std::uint32_t>(n) + 5;
           key += 7) {
        const auto want = static_cast<std::size_t>(
            std::lower_bound(data.begin(), data.begin() + n, key) -
            data.begin());
        ASSERT_EQ(simd::find_first_ge(data.data(), n, key), want)
            << "find_first_ge n=" << n << " key=" << key;
        ASSERT_EQ(simd::lower_bound_u32(data.data(), n, key), want)
            << "lower_bound n=" << n << " key=" << key;
      }
    }
  }
}

}  // namespace
}  // namespace move::index
