#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "index/posting_codec.hpp"

// Fuzz-style robustness suite for the checked posting-block decoder
// (`ctest -L codec`, runs under the asan preset): a seeded corpus generator
// (checked in below — no external fuzzer) produces valid encoded lists,
// then deterministic corruption families — truncation, bit flips, length-
// field (count and skip-directory) corruption — drive the decoder through
// every rejection path. The decoder must never read out of bounds (asan
// enforces), never produce more than the claimed entry count, and fail with
// a clean DecodeStatus instead of trusting the stream.
namespace move::index {
namespace {

using codec::DecodeStatus;
using codec::EncodedList;

struct CorpusEntry {
  EncodedList enc;
  std::size_t count = 0;
};

/// Seeded corpus: lists across the coder's regimes (tiny, one-block,
/// multi-block, dense Rice-friendly gaps, wild varint gaps, duplicates,
/// u32-boundary ids). Deterministic — the same seed always yields the same
/// corpus, so a failure reproduces from the test log alone.
std::vector<CorpusEntry> generate_corpus(std::uint64_t seed) {
  common::SplitMix64 rng(seed);
  std::vector<CorpusEntry> corpus;
  const std::size_t sizes[] = {1, 2, 5, 127, 128, 129, 300, 1000};
  for (const std::size_t n : sizes) {
    for (int shape = 0; shape < 4; ++shape) {
      std::vector<FilterId> list;
      std::uint64_t cur = 0;
      for (std::size_t i = 0; i < n && cur <= 0xffffffffull; ++i) {
        list.push_back(FilterId{static_cast<std::uint32_t>(cur)});
        switch (shape) {
          case 0: cur += 1 + common::uniform_below(rng, 8); break;
          case 1: cur += common::uniform_below(rng, 1u << 16); break;
          case 2: cur += common::uniform_below(rng, 2); break;  // dups
          default:
            cur += common::uniform_below(rng, 8) == 0
                       ? (1ull << 30)
                       : 1 + common::uniform_below(rng, 3);
        }
      }
      corpus.push_back({codec::encode_list(list), list.size()});
    }
  }
  return corpus;
}

/// Decode helper asserting the universal safety invariants: a defined
/// status, never more output than claimed, and (on success) a
/// non-decreasing id sequence — deltas are unsigned and the cross-block
/// order check rejects regressions, so even a corrupt-but-accepted stream
/// must stay sorted.
DecodeStatus checked_decode(const EncodedList& enc, std::size_t count,
                            std::vector<FilterId>& out) {
  const DecodeStatus status =
      codec::decode_list(enc, count, codec::kBlockSize, out);
  EXPECT_LE(out.size(), count);
  if (status == DecodeStatus::kOk) {
    EXPECT_EQ(out.size(), count);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
  return status;
}

TEST(PostingCodecFuzz, TruncationIsRejected) {
  for (const auto& entry : generate_corpus(0xf022)) {
    if (entry.enc.bytes.empty()) continue;
    std::vector<FilterId> out;
    // Chop 1, 2, 4, ... bytes and a byte-by-byte sweep of the tail.
    for (std::size_t cut = 1; cut <= entry.enc.bytes.size(); cut *= 2) {
      EncodedList trunc = entry.enc;
      trunc.bytes.resize(trunc.bytes.size() - cut);
      const auto status = checked_decode(trunc, entry.count, out);
      EXPECT_NE(status, DecodeStatus::kOk)
          << "truncated by " << cut << " of " << entry.enc.bytes.size()
          << " bytes yet accepted";
    }
    // Empty stream with a nonzero count.
    EncodedList empty;
    EXPECT_NE(checked_decode(empty, entry.count, out), DecodeStatus::kOk);
  }
}

TEST(PostingCodecFuzz, BitFlipsNeverCrashOrOverproduce) {
  common::SplitMix64 rng(0xb17f11b5ull);
  for (const auto& entry : generate_corpus(0xabc)) {
    if (entry.enc.bytes.empty()) continue;
    std::vector<FilterId> out;
    // 64 random single-bit flips per entry; every byte of small streams.
    const std::size_t flips = std::max<std::size_t>(
        64, std::min<std::size_t>(entry.enc.bytes.size(), 256));
    for (std::size_t k = 0; k < flips; ++k) {
      EncodedList mut = entry.enc;
      const std::size_t byte = common::uniform_below(rng, mut.bytes.size());
      const std::size_t bit = common::uniform_below(rng, 8);
      mut.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      // A flip may still decode (e.g. a changed Rice remainder) — the
      // invariants inside checked_decode are the whole assertion.
      (void)checked_decode(mut, entry.count, out);
    }
  }
}

TEST(PostingCodecFuzz, HeaderByteCorruptionIsRejectedOrSafe) {
  for (const auto& entry : generate_corpus(0x7ead)) {
    if (entry.enc.bytes.empty()) continue;
    std::vector<FilterId> out;
    EncodedList mut = entry.enc;
    // Byte 0 is always the first block's mode header; every value in the
    // reserved range (between the run mode 0x20 and varint 0xFF) must be
    // rejected as kBadHeader.
    for (int h = 0x21; h < 0xff; h += 13) {
      mut.bytes[0] = static_cast<std::uint8_t>(h);
      EXPECT_EQ(checked_decode(mut, entry.count, out),
                DecodeStatus::kBadHeader)
          << "reserved header " << h;
    }
    // 0x20 is the run mode: flipping a header to it is a VALID mode byte,
    // so the decoder may accept (a one-entry block reads back identically)
    // or must reject cleanly on any payload/trailing mismatch — the
    // invariants inside checked_decode are the assertion either way.
    mut.bytes[0] = 0x20;
    (void)checked_decode(mut, entry.count, out);
  }
}

TEST(PostingCodecFuzz, CountCorruptionNeverOverproduces) {
  for (const auto& entry : generate_corpus(0xc047)) {
    std::vector<FilterId> out;
    const std::size_t lies[] = {0,
                                entry.count / 2,
                                entry.count + 1,
                                entry.count + codec::kBlockSize,
                                entry.count * 2 + 1};
    for (const std::size_t lie : lies) {
      if (lie == entry.count) continue;
      // Whatever the status, the decoder must respect the (lying) count as
      // an output bound and stay in bounds — checked_decode asserts it.
      (void)checked_decode(entry.enc, lie, out);
    }
    // A zero-count claim against a nonempty stream is always rejected.
    if (!entry.enc.bytes.empty()) {
      EXPECT_NE(checked_decode(entry.enc, 0, out), DecodeStatus::kOk);
    }
  }
}

TEST(PostingCodecFuzz, SkipDirectoryCorruptionIsRejected) {
  for (const auto& entry : generate_corpus(0x5717)) {
    if (entry.enc.skips.empty()) continue;
    std::vector<FilterId> out;

    {  // Offset beyond the byte stream.
      EncodedList mut = entry.enc;
      mut.skips[0].byte_offset =
          static_cast<std::uint32_t>(mut.bytes.size() + 17);
      EXPECT_EQ(checked_decode(mut, entry.count, out),
                DecodeStatus::kBadCount);
    }
    {  // Non-monotonic offsets (block ranges would go negative).
      EncodedList mut = entry.enc;
      mut.skips.back().byte_offset = 0;
      EXPECT_EQ(checked_decode(mut, entry.count, out),
                DecodeStatus::kBadCount);
    }
    {  // Wrong directory size for the claimed count.
      EncodedList mut = entry.enc;
      mut.skips.pop_back();
      EXPECT_EQ(checked_decode(mut, entry.count, out),
                DecodeStatus::kBadCount);
    }
    {  // Regressing first_id: accepted blocks must stay sorted, so the
       // cross-block order check fires.
      EncodedList mut = entry.enc;
      mut.skips[0].first_id = 0;
      const auto status = checked_decode(mut, entry.count, out);
      if (entry.enc.skips[0].first_id != 0) {
        EXPECT_NE(status, DecodeStatus::kOk) << "regressing first_id passed";
      }
    }
  }
}

TEST(PostingCodecFuzz, SingleBlockPrimitivesBoundsChecked) {
  // decode_first_block / decode_block over truncated-to-every-length
  // prefixes of a valid block: no crash, never more than count produced.
  common::SplitMix64 rng(0xdeadull);
  std::vector<FilterId> list;
  std::uint64_t cur = 5;
  for (std::size_t i = 0; i < codec::kBlockSize; ++i) {
    list.push_back(FilterId{static_cast<std::uint32_t>(cur)});
    cur += 1 + common::uniform_below(rng, 300);
  }
  const EncodedList enc = codec::encode_list(list);
  ASSERT_TRUE(enc.skips.empty());
  std::vector<FilterId> out(list.size());
  for (std::size_t len = 0; len <= enc.bytes.size(); ++len) {
    const auto r = codec::decode_first_block(
        std::span<const std::uint8_t>(enc.bytes.data(), len),
        static_cast<std::uint32_t>(list.size()), out.data());
    EXPECT_LE(r.produced, list.size());
    if (len == enc.bytes.size()) {
      EXPECT_EQ(r.status, DecodeStatus::kOk);
      EXPECT_TRUE(std::equal(list.begin(), list.end(), out.begin()));
    } else {
      EXPECT_NE(r.status, DecodeStatus::kOk) << "prefix len " << len;
    }
  }
}

}  // namespace
}  // namespace move::index
