#include "index/churn_harness.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/filter_churn.hpp"
#include "workload/query_trace.hpp"

// Churn-exactness suite (`ctest -L codec`): a seeded 10k-step
// register/unregister/edit stream drives a FilterStore + InvertedIndex pair
// through continuous thaw / re-finalize cycles — in raw AND compressed
// frozen modes — with the index-backed match checked against the
// brute-force-over-live-set oracle at every step. The codec_forced_scalar
// registration re-runs this whole binary under MOVE_FORCE_SCALAR=1, so the
// equivalence also holds on the scalar bump kernel.
namespace move::index {
namespace {

constexpr std::size_t kSteps = 10'000;

workload::TermSetTable make_pool(std::uint64_t seed, std::size_t rows) {
  auto cfg = workload::QueryTraceConfig::msn_like(0.01);
  cfg.num_filters = rows;
  cfg.seed = seed;
  return workload::QueryTraceGenerator(cfg).generate(rows);
}

/// One churn document per step, drawn from the same vocabulary as the pool.
workload::TermSetTable make_docs(std::uint64_t seed, std::size_t count) {
  auto cfg = workload::QueryTraceConfig::msn_like(0.01);
  cfg.num_filters = count;
  cfg.seed = seed ^ 0xd0c70ull;
  return workload::QueryTraceGenerator(cfg).generate(count);
}

struct ChurnCase {
  bool compress = false;
  MatchSemantics semantics = MatchSemantics::kAnyTerm;
  std::size_t refinalize_every = 0;
};

void run_churn(const ChurnCase& case_) {
  workload::FilterChurnConfig ccfg;
  ccfg.initial_live = 600;
  ccfg.seed = 0xc4a2ull + static_cast<std::uint64_t>(case_.compress);
  workload::FilterChurnStream stream(make_pool(0x900d, 2048), ccfg);

  ChurnHarness::Options opts;
  opts.match.semantics = case_.semantics;
  opts.match.threshold = 0.5;
  opts.refinalize_every = case_.refinalize_every;
  opts.finalize.compress = case_.compress;
  ChurnHarness harness(opts);

  const auto docs = make_docs(0x900d, 512);
  std::vector<FilterId> got, want;
  std::uint64_t checked = 0;
  for (std::size_t step = 0; step < kSteps; ++step) {
    harness.apply(stream, stream.next());
    // Matching mid-churn hits every storage mode: mutable right after a
    // mutation, frozen-raw/compressed right after an auto-refinalize.
    const auto doc = docs.row(step % docs.size());
    harness.match(doc, got);
    harness.match_reference(doc, want);
    ASSERT_EQ(got, want) << "step " << step << " mode "
                         << static_cast<int>(harness.index().storage_mode());
    ++checked;
  }
  EXPECT_EQ(checked, kSteps);
  EXPECT_EQ(harness.live_count(), stream.live_count());
  if (case_.refinalize_every > 0) {
    EXPECT_GE(harness.refinalize_cycles(),
              kSteps / case_.refinalize_every);
  }
}

TEST(ChurnExactness, RawModeAnyTerm10k) {
  run_churn({/*compress=*/false, MatchSemantics::kAnyTerm,
             /*refinalize_every=*/257});
}

TEST(ChurnExactness, CompressedModeAnyTerm10k) {
  run_churn({/*compress=*/true, MatchSemantics::kAnyTerm,
             /*refinalize_every=*/257});
}

TEST(ChurnExactness, CompressedModeThreshold10k) {
  run_churn({/*compress=*/true, MatchSemantics::kThreshold,
             /*refinalize_every=*/129});
}

TEST(ChurnExactness, NeverFinalizedStaysExact) {
  // refinalize_every = 0: the index stays mutable the whole stream (no
  // Bloom gate, no frozen arenas) — the oracle must still agree.
  run_churn({/*compress=*/true, MatchSemantics::kAnyTerm,
             /*refinalize_every=*/0});
}

TEST(ChurnExactness, ExplicitModeSwitchesMidStream) {
  // Alternate raw / compressed / thawed phases explicitly, matching after
  // each transition.
  workload::FilterChurnConfig ccfg;
  ccfg.initial_live = 400;
  workload::FilterChurnStream stream(make_pool(0xfade, 1024), ccfg);
  ChurnHarness::Options opts;
  opts.match.semantics = MatchSemantics::kAllTerms;
  ChurnHarness harness(opts);
  const auto docs = make_docs(0xfade, 64);

  std::vector<FilterId> got, want;
  for (std::size_t phase = 0; phase < 24; ++phase) {
    for (std::size_t i = 0; i < 100; ++i) {
      harness.apply(stream, stream.next());
    }
    InvertedIndex::FinalizeOptions fo;
    switch (phase % 3) {
      case 0:
        fo.compress = false;
        harness.refinalize(fo);
        break;
      case 1:
        fo.compress = true;
        harness.refinalize(fo);
        break;
      default:
        break;  // stay thawed (the churn ops above already thawed it)
    }
    for (std::size_t d = 0; d < docs.size(); ++d) {
      harness.match(docs.row(d), got);
      harness.match_reference(docs.row(d), want);
      ASSERT_EQ(got, want) << "phase " << phase << " doc " << d;
    }
  }
}

TEST(ChurnExactness, EditRetiresOldTermSet) {
  // Directed regression: an edit's old term set must stop matching and the
  // new one must start, across a compressed re-finalize.
  workload::TermSetTable pool;
  const std::vector<TermId> old_terms{TermId{10}, TermId{11}};
  const std::vector<TermId> new_terms{TermId{20}, TermId{21}};
  pool.add(old_terms);
  pool.add(new_terms);

  workload::FilterChurnConfig ccfg;
  ccfg.initial_live = 1;
  workload::FilterChurnStream stream(pool, ccfg);

  ChurnHarness::Options opts;
  opts.match.semantics = MatchSemantics::kAnyTerm;
  opts.finalize.compress = true;
  ChurnHarness harness(opts);
  harness.apply(stream, stream.next());  // bootstrap: register row 0
  harness.refinalize();

  std::vector<FilterId> out;
  harness.match(old_terms, out);
  ASSERT_EQ(out.size(), 1u);

  // Force the edit deterministically rather than sampling the stream.
  workload::ChurnOp edit;
  edit.kind = workload::ChurnOpKind::kEdit;
  edit.row = 0;
  edit.new_row = 1;
  harness.apply(stream, edit);
  harness.refinalize();

  harness.match(old_terms, out);
  EXPECT_TRUE(out.empty()) << "edited-away term set still matches";
  harness.match(new_terms, out);
  EXPECT_EQ(out.size(), 1u);
  harness.match_reference(new_terms, out);
  EXPECT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace move::index
