#include "index/posting_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "index/brute_force.hpp"
#include "index/filter_store.hpp"
#include "index/inverted_index.hpp"
#include "index/match_scratch.hpp"
#include "index/sift_matcher.hpp"
#include "workload/query_trace.hpp"

// Property suite for the posting-block codec and the frozen-compressed
// index mode (`ctest -L codec`): random posting lists across seeds x sizes
// x id distributions round-trip bit-identically, and compressed-mode match
// results equal the uncompressed and brute-force oracles for kAnyTerm and
// kThreshold semantics. The whole binary is re-run with MOVE_FORCE_SCALAR=1
// (codec_forced_scalar registration), so every property below also holds on
// the scalar bump kernel.
namespace move::index {
namespace {

using codec::DecodeStatus;
using codec::EncodedList;

/// Id distributions the round-trip sweep draws lists from. Each stresses a
/// different part of the coder: dense favors Rice with tiny k, clustered
/// mixes tiny in-run gaps with huge between-run jumps (block mode choice),
/// sparse drives varint multi-byte deltas, boundary exercises the u32 edge
/// including delta == u32max, duplicate produces zero deltas.
enum class Dist { kDense, kClustered, kSparse, kBoundary, kDuplicate };

std::vector<FilterId> random_list(common::SplitMix64& rng, std::size_t n,
                                  Dist dist) {
  std::vector<std::uint32_t> vals;
  vals.reserve(n);
  switch (dist) {
    case Dist::kDense: {
      // Gaps 0..15: the home-node regime, mean gap ~8.
      std::uint64_t cur = common::uniform_below(rng, 1000);
      for (std::size_t i = 0; i < n && cur <= 0xffffffffull; ++i) {
        vals.push_back(static_cast<std::uint32_t>(cur));
        cur += common::uniform_below(rng, 16);
        ++cur;
      }
      break;
    }
    case Dist::kClustered: {
      std::uint64_t cur = 0;
      for (std::size_t i = 0; i < n && cur <= 0xffffffffull; ++i) {
        vals.push_back(static_cast<std::uint32_t>(cur));
        // 1-in-16 chance of a long jump, else a tight gap.
        cur += common::uniform_below(rng, 16) == 0
                   ? common::uniform_below(rng, 1u << 20)
                   : common::uniform_below(rng, 4) + 1;
      }
      break;
    }
    case Dist::kSparse: {
      for (std::size_t i = 0; i < n; ++i) {
        vals.push_back(static_cast<std::uint32_t>(
            common::uniform_below(rng, 0x100000000ull)));
      }
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
      break;
    }
    case Dist::kBoundary: {
      const std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
      vals = {0, 1, kMax - 1, kMax};
      while (vals.size() < n) {
        vals.push_back(static_cast<std::uint32_t>(
            common::uniform_below(rng, 0x100000000ull)));
      }
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
      break;
    }
    case Dist::kDuplicate: {
      std::uint64_t cur = common::uniform_below(rng, 100);
      for (std::size_t i = 0; i < n && cur <= 0xffffffffull; ++i) {
        vals.push_back(static_cast<std::uint32_t>(cur));
        // Half the entries repeat their predecessor (delta 0).
        if (common::uniform_below(rng, 2) == 0) {
          cur += common::uniform_below(rng, 64) + 1;
        }
      }
      break;
    }
  }
  std::vector<FilterId> out;
  out.reserve(vals.size());
  for (const std::uint32_t v : vals) out.push_back(FilterId{v});
  return out;
}

TEST(PostingCodec, RoundTripAcrossSeedsSizesDistributions) {
  const std::size_t kSizes[] = {0,  1,   2,   3,   127, 128,
                                129, 200, 256, 1000, 4096};
  const Dist kDists[] = {Dist::kDense, Dist::kClustered, Dist::kSparse,
                         Dist::kBoundary, Dist::kDuplicate};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    common::SplitMix64 rng(seed * 0x9e3779b9ull);
    for (const std::size_t n : kSizes) {
      for (const Dist dist : kDists) {
        const auto list = random_list(rng, n, dist);
        const EncodedList enc = codec::encode_list(list);
        std::vector<FilterId> back;
        const auto status =
            codec::decode_list(enc, list.size(), codec::kBlockSize, back);
        ASSERT_EQ(status, DecodeStatus::kOk)
            << "seed=" << seed << " n=" << n
            << " dist=" << static_cast<int>(dist) << " -> "
            << codec::to_string(status);
        ASSERT_EQ(back.size(), list.size());
        EXPECT_TRUE(std::equal(back.begin(), back.end(), list.begin()))
            << "round-trip mismatch at seed=" << seed << " n=" << n;
      }
    }
  }
}

TEST(PostingCodec, EncodingIsDeterministic) {
  common::SplitMix64 rng(42);
  const auto list = random_list(rng, 1000, Dist::kClustered);
  const EncodedList a = codec::encode_list(list);
  const EncodedList b = codec::encode_list(list);
  EXPECT_EQ(a.bytes, b.bytes);
  ASSERT_EQ(a.skips.size(), b.skips.size());
  for (std::size_t i = 0; i < a.skips.size(); ++i) {
    EXPECT_EQ(a.skips[i].first_id, b.skips[i].first_id);
    EXPECT_EQ(a.skips[i].byte_offset, b.skips[i].byte_offset);
  }
}

TEST(PostingCodec, NonDefaultBlockSizesRoundTrip) {
  common::SplitMix64 rng(7);
  const auto list = random_list(rng, 777, Dist::kClustered);
  for (const std::size_t bs : {1ul, 2ul, 7ul, 64ul, 1024ul}) {
    const EncodedList enc = codec::encode_list(list, bs);
    std::vector<FilterId> back;
    ASSERT_EQ(codec::decode_list(enc, list.size(), bs, back),
              DecodeStatus::kOk)
        << "block_size=" << bs;
    EXPECT_TRUE(std::equal(back.begin(), back.end(), list.begin()));
  }
}

TEST(PostingCodec, DenseRunsUseTheRunModeAndRoundTrip) {
  // A home-term-grouped bulk load produces lists of consecutive local ids.
  // Those must encode as run blocks — one 0x20 header byte per block, empty
  // payload — and decode back bit-identically through the iota-fill path.
  for (const std::uint32_t base : {0u, 127u, 4096u, 0xfffffc00u}) {
    for (const std::size_t n : {2ul, 127ul, 128ul, 129ul, 1000ul}) {
      if (base > std::numeric_limits<std::uint32_t>::max() - (n - 1)) continue;
      std::vector<FilterId> list;
      for (std::size_t i = 0; i < n; ++i) {
        list.push_back(FilterId{base + static_cast<std::uint32_t>(i)});
      }
      const EncodedList enc = codec::encode_list(list);
      // Byte cost is exactly one header per block plus varint(base).
      const std::size_t blocks =
          (n + codec::kBlockSize - 1) / codec::kBlockSize;
      std::size_t vl = 1;
      for (std::uint32_t v = base; v >= 0x80; v >>= 7) ++vl;
      EXPECT_EQ(enc.bytes.size(), blocks + vl) << "base=" << base
                                               << " n=" << n;
      EXPECT_EQ(enc.bytes[0], 0x20);
      std::vector<FilterId> back;
      ASSERT_EQ(codec::decode_list(enc, n, codec::kBlockSize, back),
                DecodeStatus::kOk);
      EXPECT_TRUE(std::equal(back.begin(), back.end(), list.begin()));
    }
  }
  // A run broken by one duplicate falls back to a bit-coded mode and still
  // round-trips.
  std::vector<FilterId> broken;
  for (std::uint32_t i = 0; i < 64; ++i) broken.push_back(FilterId{i});
  broken.push_back(FilterId{63});
  for (std::uint32_t i = 64; i < 128; ++i) broken.push_back(FilterId{i});
  const EncodedList enc = codec::encode_list(broken);
  EXPECT_NE(enc.bytes[0], 0x20);
  std::vector<FilterId> back;
  ASSERT_EQ(codec::decode_list(enc, broken.size(), codec::kBlockSize, back),
            DecodeStatus::kOk);
  EXPECT_TRUE(std::equal(back.begin(), back.end(), broken.begin()));
}

TEST(PostingCodec, SkipDirectoryShapeMatchesBlockCount) {
  common::SplitMix64 rng(9);
  for (const std::size_t n : {1ul, 128ul, 129ul, 400ul}) {
    const auto list = random_list(rng, n, Dist::kDense);
    const EncodedList enc = codec::encode_list(list);
    const std::size_t blocks =
        (list.size() + codec::kBlockSize - 1) / codec::kBlockSize;
    EXPECT_EQ(enc.skips.size(), blocks == 0 ? 0 : blocks - 1);
    // Each skip's first_id must be the actual first id of its block.
    for (std::size_t s = 0; s < enc.skips.size(); ++s) {
      EXPECT_EQ(enc.skips[s].first_id,
                list[(s + 1) * codec::kBlockSize].value);
    }
  }
}

TEST(PostingCodec, EmptyListEncodesEmpty) {
  const EncodedList enc = codec::encode_list({});
  EXPECT_TRUE(enc.bytes.empty());
  EXPECT_TRUE(enc.skips.empty());
  std::vector<FilterId> back{FilterId{99}};
  EXPECT_EQ(codec::decode_list(enc, 0, codec::kBlockSize, back),
            DecodeStatus::kOk);
  EXPECT_TRUE(back.empty());
}

// ---------------------------------------------------------------------------
// Index-level equivalence: compressed mode must be invisible to matching.

struct Workbench {
  FilterStore store;
  InvertedIndex raw;         // frozen-raw
  InvertedIndex compressed;  // frozen-compressed
  workload::TermSetTable docs;
};

Workbench build_workbench(std::uint64_t seed, std::size_t filters,
                          std::size_t doc_count) {
  Workbench wb;
  auto cfg = workload::QueryTraceConfig::msn_like(0.01);
  cfg.num_filters = filters;
  cfg.seed = seed;
  const workload::QueryTraceGenerator gen(cfg);
  const auto trace = gen.generate(filters);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const FilterId f = wb.store.add(trace.row(i));
    wb.raw.add(f, trace.row(i));
    wb.compressed.add(f, trace.row(i));
  }
  wb.raw.finalize(InvertedIndex::FinalizeOptions{/*compress=*/false});
  wb.compressed.finalize(InvertedIndex::FinalizeOptions{/*compress=*/true});

  auto doc_cfg = cfg;
  doc_cfg.seed = seed ^ 0xd0c5ull;
  const workload::QueryTraceGenerator doc_gen(doc_cfg);
  wb.docs = doc_gen.generate(doc_count);
  return wb;
}

TEST(CompressedIndexMatch, EqualsRawAndBruteForceAnyTerm) {
  const auto wb = build_workbench(0x11, 3000, 300);
  ASSERT_EQ(wb.compressed.storage_mode(),
            InvertedIndex::StorageMode::kFrozenCompressed);
  MatchOptions opt;
  opt.semantics = MatchSemantics::kAnyTerm;
  const SiftMatcher raw_m(wb.store, wb.raw, /*full_index=*/true);
  const SiftMatcher comp_m(wb.store, wb.compressed, /*full_index=*/true);
  MatchScratch rs, cs;
  std::vector<FilterId> raw_out, comp_out, legacy_out;
  for (std::size_t d = 0; d < wb.docs.size(); ++d) {
    const auto doc = wb.docs.row(d);
    const auto ra = raw_m.match(doc, opt, raw_out, rs);
    const auto ca = comp_m.match(doc, opt, comp_out, cs);
    ASSERT_EQ(comp_out, raw_out) << "doc " << d;
    EXPECT_EQ(comp_out, brute_force_match(wb.store, doc, opt));
    // Legacy hash-map kernel agrees in compressed mode too.
    comp_m.match(doc, opt, legacy_out);
    EXPECT_EQ(legacy_out, comp_out);
    // Classic counters identical; only blocks_decoded may differ.
    EXPECT_EQ(ca.lists_retrieved, ra.lists_retrieved);
    EXPECT_EQ(ca.postings_scanned, ra.postings_scanned);
    EXPECT_EQ(ca.candidates_verified, ra.candidates_verified);
    EXPECT_EQ(ca.bloom_rejects, ra.bloom_rejects);
    EXPECT_EQ(ca.postings_skipped, ra.postings_skipped);
    EXPECT_EQ(ra.blocks_decoded, 0u);
  }
}

TEST(CompressedIndexMatch, EqualsRawAndBruteForceThreshold) {
  const auto wb = build_workbench(0x22, 3000, 300);
  MatchOptions opt;
  opt.semantics = MatchSemantics::kThreshold;
  opt.threshold = 0.5;
  const SiftMatcher raw_m(wb.store, wb.raw, /*full_index=*/true);
  const SiftMatcher comp_m(wb.store, wb.compressed, /*full_index=*/true);
  MatchScratch rs, cs;
  std::vector<FilterId> raw_out, comp_out;
  std::uint64_t blocks = 0;
  for (std::size_t d = 0; d < wb.docs.size(); ++d) {
    const auto doc = wb.docs.row(d);
    raw_m.match(doc, opt, raw_out, rs);
    const auto ca = comp_m.match(doc, opt, comp_out, cs);
    blocks += ca.blocks_decoded;
    ASSERT_EQ(comp_out, raw_out) << "doc " << d;
    EXPECT_EQ(comp_out, brute_force_match(wb.store, doc, opt));
  }
  EXPECT_GT(blocks, 0u) << "compressed matching never decoded a block";
}

TEST(CompressedIndexMatch, SingleListAndMatchListsAgree) {
  const auto wb = build_workbench(0x33, 2000, 0);
  MatchOptions opt;
  opt.semantics = MatchSemantics::kAllTerms;
  const SiftMatcher raw_m(wb.store, wb.raw, /*full_index=*/true);
  const SiftMatcher comp_m(wb.store, wb.compressed, /*full_index=*/true);
  MatchScratch rs, cs;
  std::vector<FilterId> raw_out, comp_out;
  // Use each filter's own term set as the document: nonempty result rows.
  for (std::size_t i = 0; i < 200; ++i) {
    const auto doc = wb.store.terms(FilterId{static_cast<std::uint32_t>(i)});
    const TermId home = doc.front();
    raw_m.match_single_list(home, doc, opt, raw_out);
    comp_m.match_single_list(home, doc, opt, comp_out);
    ASSERT_EQ(comp_out, raw_out) << "filter " << i;
    raw_m.match_lists(doc, doc, opt, raw_out, rs);
    comp_m.match_lists(doc, doc, opt, comp_out, cs);
    ASSERT_EQ(comp_out, raw_out) << "filter " << i;
  }
}

TEST(CompressedIndex, ThawRebuildsExactLists) {
  const auto cfg = workload::QueryTraceConfig::msn_like(0.01);
  workload::QueryTraceGenerator gen(cfg);
  const auto trace = gen.generate(2000);
  InvertedIndex idx;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    idx.add(FilterId{static_cast<std::uint32_t>(i)}, trace.row(i));
  }
  InvertedIndex mirror;  // stays mutable; the reference
  for (std::size_t i = 0; i < trace.size(); ++i) {
    mirror.add(FilterId{static_cast<std::uint32_t>(i)}, trace.row(i));
  }
  idx.finalize(InvertedIndex::FinalizeOptions{/*compress=*/true});
  EXPECT_TRUE(idx.compressed());
  EXPECT_THROW((void)idx.postings(TermId{0}), std::logic_error);
  // Mutation thaws, decoding every list back to per-term vectors.
  idx.add(FilterId{999999}, trace.row(0));
  mirror.add(FilterId{999999}, trace.row(0));
  EXPECT_EQ(idx.storage_mode(), InvertedIndex::StorageMode::kMutable);
  for (const TermId t : mirror.indexed_terms()) {
    const auto got = idx.postings(t);
    const auto want = mirror.postings(t);
    ASSERT_EQ(got.size(), want.size()) << "term " << t.value;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
  // Re-finalize into raw, then back to compressed: mode switches re-pack.
  idx.finalize(InvertedIndex::FinalizeOptions{/*compress=*/false});
  EXPECT_EQ(idx.storage_mode(), InvertedIndex::StorageMode::kFrozenRaw);
  idx.finalize(InvertedIndex::FinalizeOptions{/*compress=*/true});
  EXPECT_EQ(idx.storage_mode(), InvertedIndex::StorageMode::kFrozenCompressed);
  EXPECT_EQ(idx.total_postings(), mirror.total_postings());
}

TEST(CompressedIndex, PostingContainsAgreesAcrossModes) {
  const auto wb = build_workbench(0x44, 2000, 0);
  common::SplitMix64 rng(5);
  for (const TermId t : wb.raw.indexed_terms()) {
    const auto list = wb.raw.postings(t);
    // Every present id is found; a probe between ids is not.
    for (std::size_t k = 0; k < std::min<std::size_t>(list.size(), 5); ++k) {
      const FilterId present =
          list[common::uniform_below(rng, list.size())];
      EXPECT_TRUE(wb.compressed.posting_contains(t, present));
    }
    const FilterId absent{0xfffffffeu};
    EXPECT_EQ(wb.compressed.posting_contains(t, absent),
              std::binary_search(list.begin(), list.end(), absent));
  }
}

TEST(CompressedIndex, StorageBytesShrinkOnDenseIds) {
  // Dense local ids (the home-node shape): compressed storage must be
  // well under the 4-byte-per-posting raw arena.
  const auto wb = build_workbench(0x55, 20000, 0);
  const auto raw_bytes = wb.raw.posting_storage_bytes();
  const auto comp_bytes = wb.compressed.posting_storage_bytes();
  EXPECT_EQ(raw_bytes, wb.raw.total_postings() * sizeof(FilterId));
  EXPECT_LT(comp_bytes, raw_bytes) << "compression made postings bigger";
}

TEST(CompressedIndex, EnvDefaultSelectsMode) {
  // set_default_compressed_postings is the programmatic face of
  // MOVE_INDEX_COMPRESSED; finalize() with no options follows it.
  const bool before = default_compressed_postings();
  InvertedIndex idx;
  idx.add(FilterId{0}, std::vector<TermId>{TermId{1}, TermId{2}});
  set_default_compressed_postings(true);
  idx.finalize();
  EXPECT_TRUE(idx.compressed());
  idx.add(FilterId{1}, std::vector<TermId>{TermId{2}});  // thaw
  set_default_compressed_postings(false);
  idx.finalize();
  EXPECT_EQ(idx.storage_mode(), InvertedIndex::StorageMode::kFrozenRaw);
  set_default_compressed_postings(before);
}

}  // namespace
}  // namespace move::index
