// Property suite for the batched matching path: across semantics, workload
// seeds and shard layouts, every kernel must produce the identical match
// set — ParallelMatcher::match_batch, ::match, ::match_sequential, and
// SiftMatcher with both counter implementations (legacy hash-map over the
// mutable index, epoch-stamped scratch over the frozen arena) — with brute
// force as ground truth. Lives under `ctest -L concurrency` because the
// batch path exercises the pool's bulk submission and per-worker scratch.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "index/brute_force.hpp"
#include "index/match_scratch.hpp"
#include "index/parallel_matcher.hpp"
#include "index/sift_matcher.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"

namespace move::index {
namespace {

constexpr std::size_t kVocab = 600;

struct Workload {
  workload::TermSetTable filters, docs;
  FilterStore store;
  InvertedIndex mutable_index;
  InvertedIndex frozen_index;

  explicit Workload(std::uint64_t seed, std::size_t num_filters = 1'500,
                    std::size_t num_docs = 24) {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = num_filters;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 25;
    qcfg.seed = 0x5eed0001 + seed;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    ccfg.seed = 0x5eed0002 + seed;
    docs = workload::CorpusGenerator(ccfg).generate(num_docs);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      const auto id = store.add(filters.row(i));
      mutable_index.add(id, store.terms(id));
      frozen_index.add(id, store.terms(id));
    }
    frozen_index.finalize();
  }

  [[nodiscard]] std::vector<std::span<const TermId>> doc_spans() const {
    std::vector<std::span<const TermId>> spans;
    spans.reserve(docs.size());
    for (std::size_t i = 0; i < docs.size(); ++i) spans.push_back(docs.row(i));
    return spans;
  }
};

const MatchOptions kSemantics[] = {
    {MatchSemantics::kAnyTerm, 0.0},
    {MatchSemantics::kAllTerms, 0.0},
    {MatchSemantics::kThreshold, 0.6},
};

TEST(MatchBatchProperty, AllKernelsAgreeAcrossSeedsAndShards) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Workload w(seed);
    const SiftMatcher legacy(w.store, w.mutable_index);
    const SiftMatcher frozen(w.store, w.frozen_index);
    MatchScratch scratch;
    const auto spans = w.doc_spans();
    for (std::size_t shards : {1u, 4u, 7u}) {
      for (std::size_t threads : {1u, 3u}) {
        ParallelMatcher matcher(w.filters, shards, threads);
        for (const MatchOptions& opt : kSemantics) {
          const auto batch = matcher.match_batch(spans, opt);
          ASSERT_EQ(batch.size(), w.docs.size());
          for (std::size_t d = 0; d < w.docs.size(); ++d) {
            const auto doc = w.docs.row(d);
            const auto expected = brute_force_match(w.store, doc, opt);
            EXPECT_EQ(batch[d], expected)
                << "match_batch seed=" << seed << " shards=" << shards
                << " threads=" << threads
                << " sem=" << static_cast<int>(opt.semantics) << " doc=" << d;
            EXPECT_EQ(matcher.match(doc, opt), expected) << "match doc=" << d;
            EXPECT_EQ(matcher.match_sequential(doc, opt), expected)
                << "match_sequential doc=" << d;
            std::vector<FilterId> out;
            (void)legacy.match(doc, opt, out);
            EXPECT_EQ(out, expected) << "legacy hash-map kernel doc=" << d;
            (void)frozen.match(doc, opt, out, scratch);
            EXPECT_EQ(out, expected) << "frozen scratch kernel doc=" << d;
          }
        }
      }
    }
  }
}

// The legacy and scratch kernels must also agree on what they *did* — the
// accounting drives the simulator's cost model, so the arena refactor must
// not change the reported IO.
TEST(MatchBatchProperty, ScratchKernelAccountingMatchesLegacy) {
  const Workload w(7);
  const SiftMatcher legacy(w.store, w.mutable_index);
  const SiftMatcher frozen(w.store, w.frozen_index);
  MatchScratch scratch;
  std::vector<FilterId> out_a, out_b;
  for (const MatchOptions& opt : kSemantics) {
    for (std::size_t d = 0; d < w.docs.size(); ++d) {
      const auto doc = w.docs.row(d);
      const auto acc_a = legacy.match(doc, opt, out_a);
      const auto acc_b = frozen.match(doc, opt, out_b, scratch);
      EXPECT_EQ(acc_a.lists_retrieved, acc_b.lists_retrieved);
      EXPECT_EQ(acc_a.postings_scanned, acc_b.postings_scanned);
      EXPECT_EQ(acc_a.candidates_verified, acc_b.candidates_verified);
    }
  }
}

TEST(MatchBatchProperty, EmptyDocsAndEmptyBatch) {
  const Workload w(4, 600, 8);
  ParallelMatcher matcher(w.filters, 3, 2);

  const auto none = matcher.match_batch({});
  EXPECT_TRUE(none.empty());

  // A batch mixing empty and real documents: empties yield empty rows, the
  // others are unaffected by their presence.
  std::vector<std::span<const TermId>> spans;
  spans.push_back({});
  spans.push_back(w.docs.row(0));
  spans.push_back({});
  spans.push_back(w.docs.row(1));
  for (const MatchOptions& opt : kSemantics) {
    const auto batch = matcher.match_batch(spans, opt);
    ASSERT_EQ(batch.size(), 4u);
    EXPECT_TRUE(batch[0].empty());
    EXPECT_TRUE(batch[2].empty());
    EXPECT_EQ(batch[1], brute_force_match(w.store, w.docs.row(0), opt));
    EXPECT_EQ(batch[3], brute_force_match(w.store, w.docs.row(1), opt));
  }
}

TEST(MatchBatchProperty, EmptyIndexMatchesNothing) {
  const workload::TermSetTable no_filters;
  ParallelMatcher matcher(no_filters, 2, 2);
  const Workload w(5, 600, 4);
  const auto spans = w.doc_spans();
  for (const MatchOptions& opt : kSemantics) {
    for (const auto& matches : matcher.match_batch(spans, opt)) {
      EXPECT_TRUE(matches.empty());
    }
  }

  FilterStore empty_store;
  InvertedIndex empty_index;
  empty_index.finalize();  // freezing an empty index must be harmless
  const SiftMatcher sift(empty_store, empty_index);
  MatchScratch scratch;
  std::vector<FilterId> out;
  (void)sift.match(w.docs.row(0), MatchOptions{}, out, scratch);
  EXPECT_TRUE(out.empty());
}

// Repeated batches over the same pool must be stable — per-worker scratch
// and stats reuse across batches cannot leak state between documents.
TEST(MatchBatchProperty, RepeatedBatchesAreStable) {
  const Workload w(6, 1'000, 16);
  ParallelMatcher matcher(w.filters, 4, 3);
  const auto spans = w.doc_spans();
  const MatchOptions opt{MatchSemantics::kThreshold, 0.5};
  const auto first = matcher.match_batch(spans, opt);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(matcher.match_batch(spans, opt), first) << "round " << round;
  }
}

// One scratch instance serving interleaved semantics (epoch bumps, cursor
// reuse) must behave like a fresh scratch each call.
TEST(MatchBatchProperty, ScratchReuseAcrossSemantics) {
  const Workload w(8, 1'000, 12);
  const SiftMatcher frozen(w.store, w.frozen_index);
  MatchScratch reused;
  std::vector<FilterId> out;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t d = 0; d < w.docs.size(); ++d) {
      for (const MatchOptions& opt : kSemantics) {
        MatchScratch fresh;
        std::vector<FilterId> expected;
        (void)frozen.match(w.docs.row(d), opt, expected, fresh);
        (void)frozen.match(w.docs.row(d), opt, out, reused);
        EXPECT_EQ(out, expected)
            << "round=" << round << " doc=" << d
            << " sem=" << static_cast<int>(opt.semantics);
      }
    }
  }
}

// Batch stats deltas merged under the barrier must equal the sum the
// per-document path accumulates for the same work.
TEST(MatchBatchProperty, BatchStatsMatchPerDocStats) {
  const Workload w(9, 1'000, 16);
  const auto spans = w.doc_spans();
  const MatchOptions opt{MatchSemantics::kThreshold, 0.5};

  ParallelMatcher per_doc(w.filters, 4, 2);
  for (std::size_t d = 0; d < w.docs.size(); ++d) {
    (void)per_doc.match(w.docs.row(d), opt);
  }
  ParallelMatcher batched(w.filters, 4, 2);
  (void)batched.match_batch(spans, opt);

  auto totals = [](std::span<const ShardStats> stats) {
    ShardStats t;
    for (const ShardStats& s : stats) {
      t.lists_retrieved += s.lists_retrieved;
      t.postings_scanned += s.postings_scanned;
      t.candidates_verified += s.candidates_verified;
      t.matches_emitted += s.matches_emitted;
    }
    return t;
  };
  const ShardStats a = totals(per_doc.shard_stats());
  const ShardStats b = totals(batched.shard_stats());
  EXPECT_EQ(a.lists_retrieved, b.lists_retrieved);
  EXPECT_EQ(a.postings_scanned, b.postings_scanned);
  EXPECT_EQ(a.candidates_verified, b.candidates_verified);
  EXPECT_EQ(a.matches_emitted, b.matches_emitted);
}

}  // namespace
}  // namespace move::index
