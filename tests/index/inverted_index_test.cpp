#include "index/inverted_index.hpp"

#include <gtest/gtest.h>

namespace move::index {
namespace {

std::vector<TermId> ids(std::initializer_list<std::uint32_t> xs) {
  std::vector<TermId> out;
  for (auto x : xs) out.push_back(TermId{x});
  return out;
}

TEST(InvertedIndex, AddCreatesPostings) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 2}));
  EXPECT_EQ(idx.postings(TermId{1}).size(), 1u);
  EXPECT_EQ(idx.postings(TermId{2}).size(), 1u);
  EXPECT_EQ(idx.total_postings(), 2u);
  EXPECT_EQ(idx.distinct_terms(), 2u);
}

TEST(InvertedIndex, MissingTermIsEmpty) {
  InvertedIndex idx;
  EXPECT_TRUE(idx.postings(TermId{42}).empty());
  EXPECT_FALSE(idx.contains_term(TermId{42}));
}

TEST(InvertedIndex, SingleTermIndexingMode) {
  // IL/MOVE mode: a filter with many terms indexed under only one.
  InvertedIndex idx;
  idx.add(FilterId{7}, ids({3}));
  EXPECT_EQ(idx.postings(TermId{3}).size(), 1u);
  EXPECT_TRUE(idx.postings(TermId{4}).empty());
}

TEST(InvertedIndex, MultipleFiltersShareList) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({5}));
  idx.add(FilterId{1}, ids({5}));
  idx.add(FilterId{2}, ids({5}));
  EXPECT_EQ(idx.postings(TermId{5}).size(), 3u);
}

TEST(InvertedIndex, RemoveDeletesEntries) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 2}));
  idx.add(FilterId{1}, ids({1}));
  idx.remove(FilterId{0}, ids({1, 2}));
  EXPECT_EQ(idx.postings(TermId{1}).size(), 1u);
  EXPECT_EQ(idx.postings(TermId{1})[0], FilterId{1});
  EXPECT_FALSE(idx.contains_term(TermId{2}));  // emptied list pruned
  EXPECT_EQ(idx.total_postings(), 1u);
}

TEST(InvertedIndex, RemoveMissingIsNoop) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1}));
  idx.remove(FilterId{9}, ids({1, 2}));
  EXPECT_EQ(idx.total_postings(), 1u);
}

TEST(InvertedIndex, IndexedTermsEnumerates) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 5, 9}));
  auto terms = idx.indexed_terms();
  std::sort(terms.begin(), terms.end());
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0].value, 1u);
  EXPECT_EQ(terms[2].value, 9u);
}

TEST(MatchAccounting, Accumulates) {
  MatchAccounting a{1, 10, 2};
  const MatchAccounting b{2, 5, 1};
  a += b;
  EXPECT_EQ(a.lists_retrieved, 3u);
  EXPECT_EQ(a.postings_scanned, 15u);
  EXPECT_EQ(a.candidates_verified, 3u);
}

}  // namespace
}  // namespace move::index
