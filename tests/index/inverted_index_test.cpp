#include "index/inverted_index.hpp"

#include <gtest/gtest.h>

namespace move::index {
namespace {

std::vector<TermId> ids(std::initializer_list<std::uint32_t> xs) {
  std::vector<TermId> out;
  for (auto x : xs) out.push_back(TermId{x});
  return out;
}

TEST(InvertedIndex, AddCreatesPostings) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 2}));
  EXPECT_EQ(idx.postings(TermId{1}).size(), 1u);
  EXPECT_EQ(idx.postings(TermId{2}).size(), 1u);
  EXPECT_EQ(idx.total_postings(), 2u);
  EXPECT_EQ(idx.distinct_terms(), 2u);
}

TEST(InvertedIndex, MissingTermIsEmpty) {
  InvertedIndex idx;
  EXPECT_TRUE(idx.postings(TermId{42}).empty());
  EXPECT_FALSE(idx.contains_term(TermId{42}));
}

TEST(InvertedIndex, SingleTermIndexingMode) {
  // IL/MOVE mode: a filter with many terms indexed under only one.
  InvertedIndex idx;
  idx.add(FilterId{7}, ids({3}));
  EXPECT_EQ(idx.postings(TermId{3}).size(), 1u);
  EXPECT_TRUE(idx.postings(TermId{4}).empty());
}

TEST(InvertedIndex, MultipleFiltersShareList) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({5}));
  idx.add(FilterId{1}, ids({5}));
  idx.add(FilterId{2}, ids({5}));
  EXPECT_EQ(idx.postings(TermId{5}).size(), 3u);
}

TEST(InvertedIndex, RemoveDeletesEntries) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 2}));
  idx.add(FilterId{1}, ids({1}));
  idx.remove(FilterId{0}, ids({1, 2}));
  EXPECT_EQ(idx.postings(TermId{1}).size(), 1u);
  EXPECT_EQ(idx.postings(TermId{1})[0], FilterId{1});
  EXPECT_FALSE(idx.contains_term(TermId{2}));  // emptied list pruned
  EXPECT_EQ(idx.total_postings(), 1u);
}

TEST(InvertedIndex, RemoveMissingIsNoop) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1}));
  idx.remove(FilterId{9}, ids({1, 2}));
  EXPECT_EQ(idx.total_postings(), 1u);
}

TEST(InvertedIndex, IndexedTermsEnumerates) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 5, 9}));
  auto terms = idx.indexed_terms();
  std::sort(terms.begin(), terms.end());
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0].value, 1u);
  EXPECT_EQ(terms[2].value, 9u);
}

TEST(InvertedIndex, OutOfOrderAddKeepsListsSorted) {
  // MOVE grids can index an already-stored (lower-id) copy under a new term
  // after higher ids were appended — the sorted-insert fallback must keep
  // the invariant.
  InvertedIndex idx;
  idx.add(FilterId{5}, ids({1}));
  idx.add(FilterId{9}, ids({1}));
  idx.add(FilterId{3}, ids({1}));
  const auto list = idx.postings(TermId{1});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], FilterId{3});
  EXPECT_EQ(list[1], FilterId{5});
  EXPECT_EQ(list[2], FilterId{9});
}

TEST(InvertedIndex, FinalizePreservesPostings) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 2}));
  idx.add(FilterId{1}, ids({2, 9}));
  idx.add(FilterId{2}, ids({1}));
  EXPECT_FALSE(idx.frozen());
  idx.finalize();
  EXPECT_TRUE(idx.frozen());

  const auto l1 = idx.postings(TermId{1});
  ASSERT_EQ(l1.size(), 2u);
  EXPECT_EQ(l1[0], FilterId{0});
  EXPECT_EQ(l1[1], FilterId{2});
  EXPECT_EQ(idx.postings(TermId{2}).size(), 2u);
  EXPECT_EQ(idx.postings(TermId{9}).size(), 1u);
  EXPECT_TRUE(idx.postings(TermId{7}).empty());
  EXPECT_TRUE(idx.contains_term(TermId{9}));
  EXPECT_FALSE(idx.contains_term(TermId{7}));
  EXPECT_EQ(idx.distinct_terms(), 3u);
  EXPECT_EQ(idx.total_postings(), 5u);

  // Frozen enumeration is ascending by construction.
  const auto terms = idx.indexed_terms();
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0].value, 1u);
  EXPECT_EQ(terms[1].value, 2u);
  EXPECT_EQ(terms[2].value, 9u);
}

TEST(InvertedIndex, FinalizeIsIdempotent) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({4}));
  idx.finalize();
  idx.finalize();
  EXPECT_TRUE(idx.frozen());
  EXPECT_EQ(idx.postings(TermId{4}).size(), 1u);
}

TEST(InvertedIndex, FinalizeEmptyIndex) {
  InvertedIndex idx;
  idx.finalize();
  EXPECT_TRUE(idx.frozen());
  EXPECT_EQ(idx.distinct_terms(), 0u);
  EXPECT_TRUE(idx.postings(TermId{0}).empty());
}

TEST(InvertedIndex, AddAfterFinalizeThaws) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1}));
  idx.add(FilterId{2}, ids({1}));
  idx.finalize();
  idx.add(FilterId{1}, ids({1, 6}));  // out-of-order vs the frozen list
  EXPECT_FALSE(idx.frozen());
  const auto list = idx.postings(TermId{1});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], FilterId{0});
  EXPECT_EQ(list[1], FilterId{1});
  EXPECT_EQ(list[2], FilterId{2});
  EXPECT_EQ(idx.postings(TermId{6}).size(), 1u);
  EXPECT_EQ(idx.total_postings(), 4u);

  // Refreezing after the mutation burst works too.
  idx.finalize();
  EXPECT_TRUE(idx.frozen());
  EXPECT_EQ(idx.postings(TermId{1}).size(), 3u);
}

TEST(InvertedIndex, RemoveAfterFinalizeThawsAndPrunes) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 2}));
  idx.add(FilterId{1}, ids({1}));
  idx.finalize();
  idx.remove(FilterId{0}, ids({1, 2}));
  EXPECT_FALSE(idx.frozen());
  EXPECT_EQ(idx.postings(TermId{1}).size(), 1u);
  EXPECT_FALSE(idx.contains_term(TermId{2}));  // drained list erased
  EXPECT_EQ(idx.total_postings(), 1u);
}

// --- Frozen fast-path structures: term summary + dense slot table ---------

TEST(InvertedIndex, FinalizeBuildsTermSummary) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 2}));
  idx.add(FilterId{1}, ids({2, 9}));
  EXPECT_EQ(idx.term_summary(), nullptr);  // mutable: no summary
  idx.finalize();
  const auto* summary = idx.term_summary();
  ASSERT_NE(summary, nullptr);
  // No false negatives, ever.
  EXPECT_TRUE(summary->may_contain(TermId{1}));
  EXPECT_TRUE(summary->may_contain(TermId{2}));
  EXPECT_TRUE(summary->may_contain(TermId{9}));
  EXPECT_EQ(summary->insertion_count(), idx.distinct_terms());
}

// The frozen/thaw contract the class docs promise: any mutation of a frozen
// index invalidates the summary (it describes the dropped arena), and a
// re-finalize rebuilds it over the *current* term set. This is the
// regression test for screening against a stale summary.
TEST(InvertedIndex, MutateAfterFinalizeInvalidatesSummary) {
  InvertedIndex idx;
  idx.add(FilterId{0}, ids({1, 2}));
  idx.finalize();
  ASSERT_NE(idx.term_summary(), nullptr);

  idx.add(FilterId{1}, ids({6}));  // auto-thaw
  EXPECT_FALSE(idx.frozen());
  EXPECT_EQ(idx.term_summary(), nullptr) << "stale summary survived a thaw";

  idx.finalize();
  const auto* rebuilt = idx.term_summary();
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_TRUE(rebuilt->may_contain(TermId{6})) << "rebuild missed a new term";
  EXPECT_EQ(rebuilt->insertion_count(), 3u);

  // remove() must invalidate just the same.
  idx.remove(FilterId{1}, ids({6}));
  EXPECT_EQ(idx.term_summary(), nullptr);
  idx.finalize();
  ASSERT_NE(idx.term_summary(), nullptr);
  EXPECT_EQ(idx.term_summary()->insertion_count(), 2u);
}

TEST(InvertedIndex, DenseAndSparseSlotLookupAgree) {
  // Dense ids -> slot table; one astronomically sparse id -> hash fallback.
  // Both must answer postings()/contains_term() identically.
  InvertedIndex dense;
  for (std::uint32_t t = 0; t < 64; ++t) {
    dense.add(FilterId{t % 5}, ids({t}));
  }
  dense.finalize();
  EXPECT_TRUE(dense.dense_lookup());
  EXPECT_EQ(dense.postings(TermId{63}).size(), 1u);
  EXPECT_TRUE(dense.postings(TermId{64}).empty());
  EXPECT_TRUE(dense.postings(TermId{1u << 30}).empty());  // beyond the table

  InvertedIndex sparse;
  sparse.add(FilterId{0}, ids({3}));
  sparse.add(FilterId{1}, ids({0x7fffffff}));  // span >> 8 * terms + 1024
  sparse.finalize();
  EXPECT_FALSE(sparse.dense_lookup());
  EXPECT_EQ(sparse.postings(TermId{3}).size(), 1u);
  EXPECT_EQ(sparse.postings(TermId{0x7fffffff}).size(), 1u);
  EXPECT_TRUE(sparse.postings(TermId{4}).empty());
  EXPECT_TRUE(sparse.contains_term(TermId{0x7fffffff}));
  EXPECT_FALSE(sparse.contains_term(TermId{4}));
}

TEST(MatchAccounting, Accumulates) {
  MatchAccounting a{1, 10, 2};
  const MatchAccounting b{2, 5, 1};
  a += b;
  EXPECT_EQ(a.lists_retrieved, 3u);
  EXPECT_EQ(a.postings_scanned, 15u);
  EXPECT_EQ(a.candidates_verified, 3u);
  EXPECT_EQ(a.bloom_rejects, 0u);
  EXPECT_EQ(a.postings_skipped, 0u);

  MatchAccounting c{1, 1, 1, 4, 9};
  c += MatchAccounting{0, 0, 0, 1, 2};
  EXPECT_EQ(c.bloom_rejects, 5u);
  EXPECT_EQ(c.postings_skipped, 11u);
}

}  // namespace
}  // namespace move::index
