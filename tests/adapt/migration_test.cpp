#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "adapt/migration.hpp"
#include "net/transport.hpp"

#include "../fault/fault_test_util.hpp"

/// The double-registration window under the microscope: matching must be
/// EXACTLY the brute-force oracle at every engine step of a live migration
/// — before, during (old table still routes, copies transiently
/// duplicated), and after (new table installed, displaced copies retired)
/// — and under a lossy transport or node churn the planner may abort, but
/// exactness still holds because the old table never stopped being valid.
namespace move::adapt {
namespace {

namespace testutil = fault::testutil;
using testutil::SchemeKind;

std::unique_ptr<core::MoveScheme> make_move(cluster::Cluster& c) {
  auto s = testutil::make_scheme(SchemeKind::kMove, c);
  return std::unique_ptr<core::MoveScheme>(
      static_cast<core::MoveScheme*>(s.release()));
}

/// Crafted per-home workload estimates with the hotness order inverted
/// relative to node id, so the re-solved grids genuinely differ from the
/// installed ones and migrations have real work to do.
std::vector<core::AllocationInput> inverted_inputs(std::size_t nodes) {
  std::vector<core::AllocationInput> inputs(nodes);
  double psum = 0;
  double qsum = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    inputs[i].p = static_cast<double>(nodes - i);
    inputs[i].q = static_cast<double>((nodes - i) * (nodes - i));
    psum += inputs[i].p;
    qsum += inputs[i].q;
  }
  for (auto& in : inputs) {
    in.p /= psum;
    in.q /= qsum;
  }
  return inputs;
}

void expect_exact(core::MoveScheme& scheme, const char* context,
                  std::size_t stride = 1) {
  const auto& w = testutil::shared_workload();
  for (std::size_t d = 0; d < w.docs_.size(); d += stride) {
    const auto plan = scheme.plan_publish(w.docs_.row(d));
    ASSERT_EQ(plan.matches, w.truth(d)) << context << " doc " << d;
  }
}

std::uint64_t total_term_slots(const cluster::Cluster& c) {
  std::uint64_t sum = 0;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    sum += c.node(NodeId{n}).term_slots();
  }
  return sum;
}

TEST(Migration, MatchingStaysExactAtEveryStepOfALiveMigration) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = make_move(c);
  expect_exact(*scheme, "baseline");
  const std::uint64_t slots_before = total_term_slots(c);

  MigrationOptions opts;
  opts.batch_entries = 64;  // many small batches -> many observable steps
  MigrationPlanner planner(*scheme, nullptr, opts);

  const auto inputs = inverted_inputs(c.size());
  const std::size_t started = planner.start(inputs, {});
  ASSERT_GT(started, 0u) << "crafted inputs failed to change any grid";
  // A home whose planned grid is empty swaps synchronously, so in-flight
  // can be below started.
  EXPECT_LE(planner.active_homes(), started);

  // Step the virtual clock in small slices and re-check the oracle at each
  // one: this observes the scheme with batches half-applied, with copies
  // doubly registered, and right after each install/retire.
  std::size_t steps = 0;
  while (!planner.idle()) {
    ASSERT_LT(steps++, 100'000u) << "migration failed to make progress";
    c.engine().run_until(c.engine().now() + 250.0);
    expect_exact(*scheme, "mid-migration", 7);
  }
  EXPECT_GT(steps, 2u) << "batching produced no observable intermediate step";

  const auto& acc = planner.progress();
  EXPECT_EQ(acc.homes_migrated, started);
  EXPECT_EQ(acc.homes_aborted, 0u);
  EXPECT_GT(acc.postings_moved, 0u);
  EXPECT_GT(acc.migration_batches, started);  // batch_entries = 64 forced >1
  EXPECT_GT(acc.entries_retired, 0u) << "no displaced copy was retired";

  // Full sweep on the settled cluster, and storage did not balloon: copies
  // the new placement no longer needs were actually unregistered.
  expect_exact(*scheme, "after install");
  EXPECT_LT(total_term_slots(c), slots_before * 3);
}

TEST(Migration, ConvergedPlanIsANoOp) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = make_move(c);
  MigrationPlanner planner(*scheme, nullptr, {});

  const auto inputs = inverted_inputs(c.size());
  ASSERT_GT(planner.start(inputs, {}), 0u);
  c.engine().run();
  ASSERT_TRUE(planner.idle());

  // Same estimates again: every re-solved grid now matches the installed
  // one (plan_allocations replays its rounding stream), so nothing starts.
  EXPECT_EQ(planner.start(inputs, {}), 0u);
  EXPECT_TRUE(planner.idle());
  expect_exact(*scheme, "after convergence");
}

TEST(Migration, TargetedHomeListMigratesOnlyThoseHomes) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = make_move(c);
  MigrationPlanner planner(*scheme, nullptr, {});

  const auto inputs = inverted_inputs(c.size());
  const std::vector<NodeId> homes{NodeId{0}, NodeId{3}};
  const std::size_t started = planner.start(inputs, homes);
  EXPECT_LE(started, homes.size());
  c.engine().run();
  EXPECT_TRUE(planner.idle());
  EXPECT_EQ(planner.progress().homes_migrated, started);
  expect_exact(*scheme, "after targeted migration");
}

TEST(Migration, LossyTransportCompletesOrAbortsButStaysExact) {
  const auto& w = testutil::shared_workload();
  for (double loss : {0.2, 0.3}) {
    cluster::Cluster c(testutil::small_cluster());
    auto scheme = make_move(c);

    net::NetOptions nopts;
    nopts.link.loss = loss;
    nopts.link.latency_base_us = 40.0;
    nopts.link.latency_jitter_us = 20.0;
    nopts.link.duplicate = 0.02;  // dedup + idempotent apply must absorb it
    nopts.retry.enabled = false;  // planner-level resends carry the load
    net::Transport transport(c.engine(), nopts);

    MigrationOptions opts;
    opts.batch_entries = 96;
    opts.max_resends = 3;  // small budget so aborts actually happen
    opts.resend_pause_us = 1'000.0;
    MigrationPlanner planner(*scheme, &transport, opts);

    const std::size_t started = planner.start(inverted_inputs(c.size()), {});
    ASSERT_GT(started, 0u);
    c.engine().run();
    ASSERT_TRUE(planner.idle());

    const auto& acc = planner.progress();
    EXPECT_EQ(acc.homes_migrated + acc.homes_aborted, started);
    EXPECT_GT(acc.migration_rpcs_dropped, 0u)
        << "loss " << loss << " never dropped a batch";

    // Whatever mix of installed and aborted homes resulted, matching is
    // exact: installed homes have complete new grids, aborted homes kept
    // their old (still complete) ones.
    for (std::size_t d = 0; d < w.docs_.size(); ++d) {
      const auto plan = scheme->plan_publish(w.docs_.row(d));
      ASSERT_EQ(plan.matches, w.truth(d))
          << "loss " << loss << " doc " << d << " (aborted "
          << acc.homes_aborted << "/" << started << ")";
    }
  }
}

TEST(Migration, ChurnDuringMigrationIsExactAfterRevival) {
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = make_move(c);
  MigrationOptions opts;
  opts.batch_entries = 64;
  MigrationPlanner planner(*scheme, nullptr, opts);

  const std::size_t started = planner.start(inverted_inputs(c.size()), {});
  ASSERT_GT(started, 0u);

  // Fail two nodes while batches are in flight, let everything settle,
  // then revive: no copy may have been lost or double-registered.
  c.engine().run_until(c.engine().now() + 400.0);
  c.fail_node(NodeId{2});
  c.fail_node(NodeId{7});
  c.engine().run();
  ASSERT_TRUE(planner.idle());
  c.revive_all();
  expect_exact(*scheme, "after churn + revival");
}

TEST(Migration, RebuildUnderMigrationAbortsStaleMoves) {
  const auto& w = testutil::shared_workload();
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = make_move(c);
  MigrationOptions opts;
  opts.batch_entries = 32;  // long in-flight phase
  MigrationPlanner planner(*scheme, nullptr, opts);

  const std::size_t started = planner.start(inverted_inputs(c.size()), {});
  ASSERT_GT(started, 0u);
  c.engine().run_until(c.engine().now() + 300.0);

  // The world is rebuilt mid-flight (a registration burst): every pending
  // migration must notice the generation bump and abandon itself instead
  // of applying batches planned against the old placement.
  scheme->register_filters(w.filters_);
  scheme->allocate(w.filter_stats_, w.corpus_stats_);
  c.engine().run();
  ASSERT_TRUE(planner.idle());
  EXPECT_EQ(planner.progress().homes_aborted +
                planner.progress().homes_migrated,
            started);
  EXPECT_GT(planner.progress().homes_aborted, 0u)
      << "rebuild mid-flight aborted nothing";
  expect_exact(*scheme, "after rebuild under migration");
}

}  // namespace
}  // namespace move::adapt
