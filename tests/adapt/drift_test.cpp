#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "adapt/drift.hpp"

namespace move::adapt {
namespace {

using Shares = std::vector<std::pair<TermId, double>>;

Shares head(std::initializer_list<std::pair<std::uint32_t, double>> items) {
  Shares out;
  for (const auto& [t, s] : items) out.emplace_back(TermId{t}, s);
  return out;
}

TEST(DriftDetector, FirstWindowNeverDrifts) {
  DriftDetector det;
  const auto snap = head({{1, 0.5}, {2, 0.3}, {3, 0.2}});
  const DriftReport r = det.observe(snap);
  EXPECT_FALSE(r.drifted);
  EXPECT_DOUBLE_EQ(r.l1, 0.0);
  EXPECT_TRUE(r.drifted_terms.empty());
}

TEST(DriftDetector, IdenticalWindowsDoNotDrift) {
  DriftDetector det;
  const auto snap = head({{1, 0.5}, {2, 0.3}, {3, 0.2}});
  (void)det.observe(snap);
  const DriftReport r = det.observe(snap);
  EXPECT_FALSE(r.drifted);
  EXPECT_DOUBLE_EQ(r.l1, 0.0);
  EXPECT_DOUBLE_EQ(r.topk_overlap, 1.0);
  EXPECT_TRUE(r.drifted_terms.empty());
}

TEST(DriftDetector, SmallNoiseStaysBelowThreshold) {
  DriftDetector det;  // l1_threshold 0.15, min_overlap 0.5
  (void)det.observe(head({{1, 0.50}, {2, 0.30}, {3, 0.20}}));
  // Same head set, shares jittered by 2 points: L1 = 0.5 * 0.04 = 0.02.
  const DriftReport r = det.observe(head({{1, 0.48}, {2, 0.32}, {3, 0.20}}));
  EXPECT_FALSE(r.drifted);
  EXPECT_NEAR(r.l1, 0.02, 1e-12);
  EXPECT_DOUBLE_EQ(r.topk_overlap, 1.0);
}

TEST(DriftDetector, DisjointHeadsDriftWithNamedTerms) {
  DriftDetector det;
  (void)det.observe(head({{1, 0.5}, {2, 0.3}, {3, 0.2}}));
  // The head set is replaced wholesale: overlap 0, all mass moved.
  const DriftReport r = det.observe(head({{10, 0.5}, {11, 0.3}, {12, 0.2}}));
  EXPECT_TRUE(r.drifted);
  EXPECT_DOUBLE_EQ(r.topk_overlap, 0.0);
  EXPECT_NEAR(r.l1, 1.0, 1e-12);
  // Every term moved by more than term_threshold, ascending order.
  const std::vector<TermId> expected{TermId{1},  TermId{2},  TermId{3},
                                     TermId{10}, TermId{11}, TermId{12}};
  EXPECT_EQ(r.drifted_terms, expected);
}

TEST(DriftDetector, MassShiftWithinSameHeadDrifts) {
  DriftDetector det;
  (void)det.observe(head({{1, 0.70}, {2, 0.20}, {3, 0.10}}));
  // Same identity, inverted mass: overlap stays 1 but L1 = 0.6.
  const DriftReport r = det.observe(head({{1, 0.10}, {2, 0.20}, {3, 0.70}}));
  EXPECT_TRUE(r.drifted);
  EXPECT_DOUBLE_EQ(r.topk_overlap, 1.0);
  EXPECT_NEAR(r.l1, 0.6, 1e-12);
  // Term 2 did not move; 1 and 3 did.
  const std::vector<TermId> expected{TermId{1}, TermId{3}};
  EXPECT_EQ(r.drifted_terms, expected);
}

TEST(DriftDetector, HeadSwapWithLittleMassTripsOverlapGuard) {
  DriftOptions opts;
  opts.l1_threshold = 0.9;  // L1 alone would never fire here
  DriftDetector det(opts);
  (void)det.observe(head({{1, 0.26}, {2, 0.26}, {3, 0.24}, {4, 0.24}}));
  // Three of four head slots changed identity: overlap 0.25 < 0.5.
  const DriftReport r =
      det.observe(head({{1, 0.26}, {7, 0.26}, {8, 0.24}, {9, 0.24}}));
  EXPECT_TRUE(r.drifted);
  EXPECT_DOUBLE_EQ(r.topk_overlap, 0.25);
}

TEST(DriftDetector, DriftedTermsClearedWhenBelowThresholds) {
  DriftDetector det;
  (void)det.observe(head({{1, 0.5}, {2, 0.5}}));
  (void)det.observe(head({{3, 0.5}, {4, 0.5}}));  // drifts
  const DriftReport r = det.observe(head({{3, 0.5}, {4, 0.5}}));
  EXPECT_FALSE(r.drifted);
  EXPECT_TRUE(r.drifted_terms.empty());
}

TEST(DriftDetector, ResetForgetsThePreviousWindow) {
  DriftDetector det;
  (void)det.observe(head({{1, 0.5}, {2, 0.5}}));
  det.reset();
  const DriftReport r = det.observe(head({{8, 0.5}, {9, 0.5}}));
  EXPECT_FALSE(r.drifted) << "first window after reset must not drift";
}

}  // namespace
}  // namespace move::adapt
