#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adapt/online.hpp"
#include "index/brute_force.hpp"
#include "workload/corpus.hpp"

#include "../fault/fault_test_util.hpp"

/// End-to-end tests of the online adaptation loop: a drifting document
/// stream must trigger incremental re-allocation (and a stable one must
/// not), matching must end exact against brute force, the meta stores'
/// exact counters must stay cold while the estimator observes the hot
/// path, and the whole loop must be bitwise deterministic.
namespace move::adapt {
namespace {

namespace testutil = fault::testutil;
using testutil::SchemeKind;

std::unique_ptr<core::MoveScheme> make_move(cluster::Cluster& c) {
  auto s = testutil::make_scheme(SchemeKind::kMove, c);
  return std::unique_ptr<core::MoveScheme>(
      static_cast<core::MoveScheme*>(s.release()));
}

/// A->B stream over the shared chaos vocabulary: phase B re-permutes the
/// corpus ranks (different seed), so a different set of homes heats up —
/// the same construction the drift ablation bench uses.
workload::TermSetTable make_stream(std::size_t per_phase, bool drifting) {
  auto cfg_a = workload::CorpusConfig::trec_wt_like(0.002, testutil::kVocab);
  cfg_a.head_count = 40;
  auto cfg_b = cfg_a;
  if (drifting) cfg_b.seed ^= 0xd21f7;
  const auto docs_a = workload::CorpusGenerator(cfg_a).generate(per_phase);
  const auto docs_b = workload::CorpusGenerator(cfg_b).generate(per_phase);
  workload::TermSetTable out;
  for (std::size_t i = 0; i < docs_a.size(); ++i) out.add(docs_a.row(i));
  for (std::size_t i = 0; i < docs_b.size(); ++i) out.add(docs_b.row(i));
  return out;
}

OnlineOptions small_options() {
  OnlineOptions opts;
  opts.window_docs = 200;
  opts.min_observations = 50;
  opts.run.inject_rate_per_sec = 5'000.0;
  opts.run.collect_latencies = false;
  opts.estimator.filter_top_k = 256;
  opts.estimator.doc_top_k = 256;
  opts.estimator.cm_width = 512;
  opts.migration.batch_entries = 128;
  return opts;
}

void expect_exact_for(core::MoveScheme& scheme,
                      const workload::TermSetTable& docs) {
  const auto& w = testutil::shared_workload();
  for (std::size_t d = 0; d < docs.size(); d += 13) {
    const auto plan = scheme.plan_publish(docs.row(d));
    const auto truth = index::brute_force_match(w.reference_, docs.row(d), {});
    ASSERT_EQ(plan.matches, truth) << "doc " << d;
  }
}

TEST(Online, DriftingStreamTriggersIncrementalReallocation) {
  const auto stream = make_stream(600, /*drifting=*/true);
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = make_move(c);

  const auto result = run_online(*scheme, stream, small_options());

  EXPECT_EQ(result.windows.size(), 6u);
  EXPECT_EQ(result.metrics.documents_completed, stream.size());
  EXPECT_GE(result.reallocations, 1u)
      << "the A->B permutation switch was not detected";
  const auto& acc = result.metrics.adapt_acc;
  EXPECT_EQ(acc.windows, 6u);
  EXPECT_GE(acc.terms_drifted, 1u);
  EXPECT_GE(acc.homes_migrated, 1u);
  EXPECT_GT(acc.postings_moved, 0u);
  EXPECT_GT(acc.sketch_bytes, 0.0);
  EXPECT_GT(acc.sketch_error_bound, 0.0);

  // Adapted placement still matches brute force exactly for the stream.
  expect_exact_for(*scheme, stream);
}

TEST(Online, StableStreamNeverReallocates) {
  const auto stream = make_stream(600, /*drifting=*/false);
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = make_move(c);

  const auto result = run_online(*scheme, stream, small_options());

  EXPECT_EQ(result.reallocations, 0u)
      << "re-allocated on sampling noise alone";
  EXPECT_EQ(result.metrics.adapt_acc.homes_migrated, 0u);
  EXPECT_EQ(result.metrics.adapt_acc.postings_moved, 0u);
  EXPECT_EQ(result.metrics.adapt_acc.stall_us, 0.0);
  EXPECT_EQ(result.metrics.documents_completed, stream.size());
}

TEST(Online, MetaCountersStayColdWhileObserverIsAttached) {
  const auto stream = make_stream(300, /*drifting=*/true);
  cluster::Cluster c(testutil::small_cluster());
  auto scheme = make_move(c);

  std::uint64_t before = 0;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    before += c.node(NodeId{n}).meta().total_docs();
  }
  ASSERT_EQ(before, 0u);

  (void)run_online(*scheme, stream, small_options());

  // The whole point of the estimator: the exact per-term document counters
  // never ticked — the observer intercepted every plan_publish recording.
  std::uint64_t after = 0;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    after += c.node(NodeId{n}).meta().total_docs();
  }
  EXPECT_EQ(after, 0u);

  // And the hook is detached again: a publish now reaches the meta stores
  // (one record per routed document term — the Bloom summary prunes terms
  // no filter registered, so this is positive but at most the row size).
  (void)scheme->plan_publish(stream.row(0));
  std::uint64_t detached = 0;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    detached += c.node(NodeId{n}).meta().total_docs();
  }
  EXPECT_GT(detached, 0u);
  EXPECT_LE(detached, stream.row(0).size());
}

TEST(Online, RunIsBitwiseDeterministic) {
  const auto stream = make_stream(400, /*drifting=*/true);

  auto run_once = [&stream]() {
    cluster::Cluster c(testutil::small_cluster());
    auto scheme = make_move(c);
    return run_online(*scheme, stream, small_options());
  };
  const auto a = run_once();
  const auto b = run_once();

  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].throughput_per_sec, b.windows[i].throughput_per_sec)
        << "window " << i;
    EXPECT_EQ(a.windows[i].l1, b.windows[i].l1) << "window " << i;
    EXPECT_EQ(a.windows[i].drifted, b.windows[i].drifted) << "window " << i;
    EXPECT_EQ(a.windows[i].homes_started, b.windows[i].homes_started)
        << "window " << i;
    EXPECT_EQ(a.windows[i].postings_moved, b.windows[i].postings_moved)
        << "window " << i;
  }
  EXPECT_EQ(a.reallocations, b.reallocations);
  EXPECT_EQ(a.metrics.makespan_us, b.metrics.makespan_us);
  EXPECT_EQ(a.metrics.adapt_acc.postings_moved,
            b.metrics.adapt_acc.postings_moved);
  EXPECT_EQ(a.metrics.adapt_acc.stall_us, b.metrics.adapt_acc.stall_us);
}

TEST(Online, FullReallocationModeMovesMoreThanIncremental) {
  const auto stream = make_stream(400, /*drifting=*/true);

  auto run_mode = [&stream](bool full) {
    cluster::Cluster c(testutil::small_cluster());
    auto scheme = make_move(c);
    auto opts = small_options();
    opts.full_reallocation = full;
    return run_online(*scheme, stream, opts);
  };
  const auto incremental = run_mode(false);
  const auto full = run_mode(true);

  if (incremental.reallocations == 0 || full.reallocations == 0) {
    GTEST_SKIP() << "stream did not drift under either mode";
  }
  // Full re-allocation touches every home with entries; incremental only
  // the drifted ones — strictly less unless literally everything drifted.
  EXPECT_GE(full.metrics.adapt_acc.homes_migrated +
                full.metrics.adapt_acc.homes_aborted,
            incremental.metrics.adapt_acc.homes_migrated +
                incremental.metrics.adapt_acc.homes_aborted);
  EXPECT_GE(full.metrics.adapt_acc.postings_moved,
            incremental.metrics.adapt_acc.postings_moved);
}

}  // namespace
}  // namespace move::adapt
