#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "adapt/count_min.hpp"
#include "adapt/space_saving.hpp"
#include "common/rng.hpp"

/// Property suite for the streaming estimators: the classic Space-Saving
/// and Count-Min guarantees, checked against exact counts across several
/// seeded heavy-tailed streams. These bounds are what licenses replacing
/// the meta stores' exact counters with sketches on the hot path.
namespace move::adapt {
namespace {

constexpr std::size_t kUniverse = 4'000;
constexpr std::size_t kStream = 50'000;

/// Heavy-tailed stream: cubing a uniform [0,1) draw concentrates mass on
/// low ranks (roughly the shape of the paper's term popularity traces).
std::vector<TermId> make_stream(std::uint64_t seed, std::size_t n = kStream) {
  common::SplitMix64 rng(seed);
  std::vector<TermId> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = common::uniform_unit(rng);
    const auto rank = static_cast<std::uint32_t>(
        static_cast<double>(kUniverse) * u * u * u);
    stream.push_back(TermId{std::min<std::uint32_t>(rank, kUniverse - 1)});
  }
  return stream;
}

std::unordered_map<TermId, std::uint64_t> exact_counts(
    const std::vector<TermId>& stream) {
  std::unordered_map<TermId, std::uint64_t> counts;
  for (TermId t : stream) ++counts[t];
  return counts;
}

TEST(SpaceSaving, EstimateBracketsTrueCount) {
  for (std::uint64_t seed : {1u, 7u, 42u, 1337u, 90125u}) {
    SpaceSaving ss(128);
    const auto stream = make_stream(seed);
    for (TermId t : stream) ss.offer(t);
    const auto exact = exact_counts(stream);

    ASSERT_LE(ss.size(), 128u);
    EXPECT_EQ(ss.total(), stream.size());
    for (const SketchEntry& e : ss.entries_by_count()) {
      auto it = exact.find(e.term);
      const std::uint64_t truth = it == exact.end() ? 0 : it->second;
      // Never underestimates...
      EXPECT_GE(e.count, truth) << "term " << e.term.value;
      // ...and the recorded error brackets the overestimate.
      EXPECT_LE(e.count - e.error, truth) << "term " << e.term.value;
    }
  }
}

TEST(SpaceSaving, GuaranteedTopKContainment) {
  for (std::uint64_t seed : {3u, 11u, 2026u}) {
    SpaceSaving ss(128);
    const auto stream = make_stream(seed);
    for (TermId t : stream) ss.offer(t);
    const auto exact = exact_counts(stream);

    // min_count bounds: no tracked minimum can exceed total/capacity.
    EXPECT_LE(ss.min_count(), ss.total() / 128);
    // Containment: any term truly more frequent than the sketch minimum
    // MUST be tracked — the guarantee the popularity estimate leans on.
    for (const auto& [term, count] : exact) {
      if (count > ss.min_count()) {
        EXPECT_TRUE(ss.tracked(term))
            << "term " << term.value << " count " << count << " min "
            << ss.min_count();
      }
    }
  }
}

TEST(SpaceSaving, MemoryBoundedByCapacityNotStream) {
  SpaceSaving ss(64);
  const auto stream = make_stream(5);
  for (std::size_t i = 0; i < 1'000; ++i) ss.offer(stream[i]);
  const std::size_t warm = ss.memory_bytes();
  for (std::size_t i = 1'000; i < stream.size(); ++i) ss.offer(stream[i]);
  EXPECT_EQ(ss.memory_bytes(), warm);  // constant once warm
}

TEST(SpaceSaving, WeightedOffersAccumulate) {
  SpaceSaving ss(8);
  ss.offer(TermId{1}, 10);
  ss.offer(TermId{1}, 5);
  ss.offer(TermId{2}, 3);
  EXPECT_EQ(ss.estimate(TermId{1}), 15u);
  EXPECT_EQ(ss.estimate(TermId{2}), 3u);
  EXPECT_EQ(ss.error(TermId{1}), 0u);  // never evicted-in
  EXPECT_EQ(ss.total(), 18u);
}

TEST(CountMin, NeverUnderestimates) {
  for (std::uint64_t seed : {2u, 19u, 777u, 31415u}) {
    CountMin cm(512, 4, seed);
    const auto stream = make_stream(seed ^ 0xabcdef);
    for (TermId t : stream) cm.add(t);
    const auto exact = exact_counts(stream);
    for (const auto& [term, count] : exact) {
      EXPECT_GE(cm.estimate(term), count) << "term " << term.value;
    }
    // Terms never seen still never report negative (one-sided by
    // construction) and stay within the additive bound most of the time.
    EXPECT_GE(cm.estimate(TermId{kUniverse + 5}), 0u);
  }
}

TEST(CountMin, AdditiveErrorBoundHoldsForMostTerms) {
  for (std::uint64_t seed : {5u, 23u, 4242u}) {
    CountMin cm(512, 4, seed);
    const auto stream = make_stream(seed);
    for (TermId t : stream) cm.add(t);
    const auto exact = exact_counts(stream);

    const double bound = cm.epsilon() * static_cast<double>(cm.total());
    std::size_t violations = 0;
    for (const auto& [term, count] : exact) {
      if (static_cast<double>(cm.estimate(term) - count) > bound) {
        ++violations;
      }
    }
    // The bound fails per query with probability <= exp(-depth) ~ 1.8%;
    // allow generous slack for the fixed seeds.
    EXPECT_LE(violations, exact.size() / 10)
        << violations << " of " << exact.size() << " over bound " << bound;
  }
}

TEST(WindowedCountMin, RotationAgesOutOldTraffic) {
  WindowedCountMin wcm(256, 4, 3, 99);
  const TermId hot{17};
  for (int i = 0; i < 1'000; ++i) wcm.add(hot);
  EXPECT_GE(wcm.estimate(hot), 1'000u);
  EXPECT_EQ(wcm.window_total(), 1'000u);

  // After `windows` rotations with no further traffic the term is gone —
  // every bucket that saw it has been cleared.
  wcm.rotate();
  wcm.rotate();
  EXPECT_GE(wcm.estimate(hot), 1'000u);  // still inside the window span
  wcm.rotate();
  EXPECT_EQ(wcm.estimate(hot), 0u);
  EXPECT_EQ(wcm.window_total(), 0u);
}

TEST(WindowedCountMin, EstimateSumsLiveBucketsOneSided) {
  WindowedCountMin wcm(512, 4, 4, 7);
  const auto stream = make_stream(13, 20'000);
  // Track truth for the live windows only: the last 3 full buckets plus
  // the current one (3 rotations survive out of 4 with `windows == 4`).
  std::unordered_map<TermId, std::uint64_t> live;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    wcm.add(stream[i]);
    if (i >= 5'000) ++live[stream[i]];  // first bucket will have aged out
    if (i % 5'000 == 4'999) wcm.rotate();
  }
  // 4 rotations over 20k adds with 4 windows => the [0,5k) bucket aged
  // out; [5k,10k), [10k,15k), [15k,20k) are live. Estimates must never
  // undercount the live-window truth.
  EXPECT_EQ(wcm.window_total(), 15'000u);
  for (const auto& [term, count] : live) {
    EXPECT_GE(wcm.estimate(term), count) << "term " << term.value;
  }
}

TEST(WindowedCountMin, MemoryBoundedByGeometry) {
  WindowedCountMin wcm(128, 4, 4, 3);
  const std::size_t fresh = wcm.memory_bytes();
  const auto stream = make_stream(21);
  for (TermId t : stream) wcm.add(t);
  EXPECT_EQ(wcm.memory_bytes(), fresh);
}

}  // namespace
}  // namespace move::adapt
