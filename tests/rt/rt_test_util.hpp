#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/experiment.hpp"
#include "net/transport.hpp"
#include "rt/executor.hpp"
#include "sim/delivery_log.hpp"

#include "../fault/fault_test_util.hpp"

/// Shared harness for the DES-equivalence differential suite: the same
/// seeded workload replayed through the discrete-event executor and the
/// real-clock executor over identically-constructed clusters, compared
/// document by document as delivered-match *sets* (order-independent)
/// against each other and against the brute-force oracle.
namespace move::rt::testutil {

using fault::testutil::SchemeKind;
using fault::testutil::shared_workload;

/// A DES/rt twin: two clusters built from the same config (same internal
/// seeds => identical rings, racks, placement) each carrying its own fully
/// registered scheme instance. Membership events must be applied to both.
struct TwinSchemes {
  explicit TwinSchemes(SchemeKind kind,
                       std::size_t nodes = fault::testutil::kNodes)
      : des_cluster(fault::testutil::small_cluster(nodes)),
        rt_cluster(fault::testutil::small_cluster(nodes)),
        des(fault::testutil::make_scheme(kind, des_cluster)),
        rt(fault::testutil::make_scheme(kind, rt_cluster)) {}

  void fail_node(NodeId id) {
    des_cluster.fail_node(id);
    rt_cluster.fail_node(id);
  }
  void revive_node(NodeId id) {
    des_cluster.revive_node(id);
    rt_cluster.revive_node(id);
  }

  /// Incremental repair after a membership event at `node`, applied to both
  /// twins (the bounded-batch pipeline's effect, without the pump).
  void repair(NodeId node) {
    const auto des_entries = des->collect_repair_entries(node);
    des->apply_repair_entries(des_entries);
    const auto rt_entries = rt->collect_repair_entries(node);
    rt->apply_repair_entries(rt_entries);
  }

  cluster::Cluster des_cluster;
  cluster::Cluster rt_cluster;
  std::unique_ptr<core::Scheme> des;
  std::unique_ptr<core::Scheme> rt;
};

/// Rows [begin, end) of the shared chaos corpus as their own table.
inline workload::TermSetTable doc_slice(std::size_t begin, std::size_t end) {
  const auto& w = shared_workload();
  workload::TermSetTable out;
  for (std::size_t d = begin; d < end; ++d) out.add(w.docs_.row(d));
  return out;
}

/// One DES dissemination pass filling a delivery log. `transport` may be
/// nullptr (clean wire).
inline sim::DeliveryLog run_des(core::Scheme& scheme,
                                const workload::TermSetTable& docs,
                                net::Transport* transport = nullptr) {
  sim::DeliveryLog log;
  core::RunConfig rc;
  rc.inject_rate_per_sec = 2'000.0;
  rc.collect_latencies = false;
  rc.transport = transport;
  rc.delivery_log = &log;
  (void)core::run_dissemination(scheme, docs, rc);
  return log;
}

/// One rt dissemination pass filling a delivery log. service_scale is 0 —
/// the differential suite checks semantics, not timing.
inline sim::DeliveryLog run_rt(core::Scheme& scheme,
                               const workload::TermSetTable& docs,
                               const RtOptions& net = {},
                               RtRunMetrics* metrics_out = nullptr) {
  sim::DeliveryLog log;
  RtRunConfig rc;
  rc.net = net;
  rc.service_scale = 0.0;
  const auto m = rt::run_dissemination(scheme, docs, rc, &log);
  if (metrics_out != nullptr) *metrics_out = m;
  return log;
}

/// Asserts both logs delivered, per document, exactly the brute-force
/// oracle's match set for the corresponding global document index.
inline void expect_des_rt_oracle_equal(const sim::DeliveryLog& des,
                                       const sim::DeliveryLog& rt,
                                       std::size_t doc_offset,
                                       const char* context) {
  const auto& w = shared_workload();
  ASSERT_EQ(des.size(), rt.size()) << context;
  for (std::size_t d = 0; d < des.size(); ++d) {
    const auto& truth = w.truth(doc_offset + d);
    const auto des_set = des.delivered(d);
    const auto rt_set = rt.delivered(d);
    ASSERT_EQ(des_set.size(), truth.size())
        << context << ": DES delivered set diverges from oracle, doc "
        << doc_offset + d;
    ASSERT_EQ(rt_set.size(), truth.size())
        << context << ": rt delivered set diverges from oracle, doc "
        << doc_offset + d;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      ASSERT_EQ(des_set[i], truth[i]) << context << " doc " << doc_offset + d;
      ASSERT_EQ(rt_set[i], truth[i]) << context << " doc " << doc_offset + d;
    }
  }
}

}  // namespace move::rt::testutil
