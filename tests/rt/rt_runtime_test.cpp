#include "rt/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

/// Transport-semantics coverage for the rt runtime: the reliability
/// contracts carried over from net::Transport (retries, dedup, breakers,
/// shedding) must hold on real threads, observed through the same
/// sim::NetAccounting shape the DES reports.
namespace move::rt {
namespace {

constexpr std::uint32_t kMessages = 2'000;

/// Every message duplicated by the link: the receiver's idempotency-key
/// window must suppress the extra copy, so application deliveries stay
/// exactly-once while the wire sees twice the envelopes.
TEST(RtTransport, DuplicatedLinkDeliversExactlyOnce) {
  RtOptions opts;
  opts.link.duplicate = 1.0;
  Runtime runtime(4, opts);
  std::atomic<std::uint64_t> delivered{0};
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(runtime.transport().send(
        net::kClientNode, NodeId{i % 4}, net::Priority::kNormal,
        [&delivered] { delivered.fetch_add(1, std::memory_order_relaxed); }));
  }
  runtime.quiesce();
  EXPECT_EQ(delivered.load(), kMessages);
  const auto acc = runtime.transport().accounting();
  EXPECT_EQ(acc.duplicates, kMessages);
  EXPECT_EQ(acc.dup_suppressed, kMessages);
  EXPECT_EQ(acc.delivered, kMessages);
  EXPECT_EQ(runtime.envelopes_processed(), std::uint64_t{kMessages} * 2);
}

/// 30% loss with a deep retry budget: every message must still land
/// (P[16 straight drops] ~ 4e-9), and the accounting must show the work.
TEST(RtTransport, RetriesRecoverHeavyLoss) {
  RtOptions opts;
  opts.link.loss = 0.3;
  opts.retry.max_attempts = 16;
  // At 30% loss a 5-streak of drops to one destination is routine; keep the
  // breaker out so this test isolates the retry layer.
  opts.breaker.trip_after = kMessages;
  Runtime runtime(4, opts);
  std::atomic<std::uint64_t> delivered{0};
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(runtime.transport().send(
        net::kClientNode, NodeId{i % 4}, net::Priority::kNormal,
        [&delivered] { delivered.fetch_add(1, std::memory_order_relaxed); }));
  }
  runtime.quiesce();
  EXPECT_EQ(delivered.load(), kMessages);
  const auto acc = runtime.transport().accounting();
  EXPECT_GT(acc.drops, 0u);
  EXPECT_GT(acc.retries, 0u);
  EXPECT_EQ(acc.expired, 0u);
  EXPECT_EQ(acc.delivered, kMessages);
}

/// Same loss with retries disabled (the fig10 ablation): dropped messages
/// stay dropped, and every message is either delivered or expired.
TEST(RtTransport, WithoutRetriesLossIsLoss) {
  RtOptions opts;
  opts.link.loss = 0.3;
  opts.retry.enabled = false;
  // One drop trips nothing: keep the breaker out of this ablation.
  opts.breaker.trip_after = kMessages;
  Runtime runtime(4, opts);
  std::atomic<std::uint64_t> delivered{0};
  std::uint64_t accepted = 0;
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    if (runtime.transport().send(
            net::kClientNode, NodeId{i % 4}, net::Priority::kNormal,
            [&delivered] {
              delivered.fetch_add(1, std::memory_order_relaxed);
            })) {
      ++accepted;
    }
  }
  runtime.quiesce();
  const auto acc = runtime.transport().accounting();
  EXPECT_EQ(delivered.load(), accepted);
  EXPECT_EQ(acc.delivered + acc.expired, kMessages);
  EXPECT_GT(acc.expired, 0u);       // ~30% should be lost
  EXPECT_LT(acc.expired, kMessages);  // ...but nowhere near all
  EXPECT_EQ(acc.retries, 0u);
}

/// A black-holed destination (loss = 1.0) trips its breaker after the
/// configured streak; later sends to it fast-fail without burning attempts,
/// while other destinations stay unaffected.
TEST(RtTransport, BreakerTripsOnBlackholedDestinationOnly) {
  RtOptions opts;
  opts.link.loss = 1.0;  // every attempt to every dst drops...
  opts.retry.max_attempts = 3;
  opts.breaker.trip_after = 5;
  opts.breaker.cooldown_us = 60'000'000.0;  // stays open for the whole test
  Runtime runtime(2, opts);

  const NodeId dead{0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(runtime.transport().send(net::kClientNode, dead,
                                          net::Priority::kNormal, [] {}));
  }
  EXPECT_TRUE(runtime.transport().breaker_open(dead));
  EXPECT_FALSE(runtime.transport().breaker_open(NodeId{1}));
  const auto acc = runtime.transport().accounting();
  EXPECT_GE(acc.breaker_trips, 1u);
  EXPECT_GT(acc.breaker_fast_fails, 0u);
  EXPECT_GT(acc.expired, 0u);
  EXPECT_EQ(acc.delivered, 0u);
  // Fast-fails cost no wire attempts: attempts < 10 messages * 3.
  EXPECT_LT(acc.attempts, 30u);
}

/// Priority shedding against a wedged receiver: with the worker blocked and
/// the queue deep, kBulk sheds at the bound, kNormal at 4x, and kHigh is
/// never shed.
TEST(RtTransport, ShedsByPriorityUnderQueuePressure) {
  RtOptions opts;
  opts.shed_queue_bound = 1;
  Runtime runtime(1, opts);
  std::atomic<bool> release{false};
  std::atomic<std::uint64_t> delivered{0};

  // Wedge the single worker, then stack envelopes behind it.
  ASSERT_TRUE(runtime.transport().send(net::kClientNode, NodeId{0},
                                       net::Priority::kHigh, [&release] {
                                         while (!release.load(
                                             std::memory_order_acquire)) {
                                           std::this_thread::yield();
                                         }
                                       }));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(runtime.transport().send(
        net::kClientNode, NodeId{0}, net::Priority::kHigh, [&delivered] {
          delivered.fetch_add(1, std::memory_order_relaxed);
        }));
  }
  // Depth is now >= 4x the bound: both lower priorities shed, kHigh never.
  EXPECT_FALSE(runtime.transport().send(net::kClientNode, NodeId{0},
                                        net::Priority::kBulk, [] {}));
  EXPECT_FALSE(runtime.transport().send(net::kClientNode, NodeId{0},
                                        net::Priority::kNormal, [] {}));
  EXPECT_TRUE(runtime.transport().send(
      net::kClientNode, NodeId{0}, net::Priority::kHigh, [&delivered] {
        delivered.fetch_add(1, std::memory_order_relaxed);
      }));
  release.store(true, std::memory_order_release);
  runtime.quiesce();
  EXPECT_EQ(delivered.load(), 9u);
  const auto acc = runtime.transport().accounting();
  EXPECT_EQ(acc.shed, 2u);
}

/// Node-serial execution: every delivery for a node runs on that node's one
/// worker thread, and distinct nodes run on distinct threads — the property
/// that lets schemes keep per-node state lock-free.
TEST(RtRuntime, EachNodeRunsOnExactlyOneDistinctThread) {
  constexpr std::size_t kNodes = 3;
  Runtime runtime(kNodes, {});
  std::mutex mu;
  std::vector<std::set<std::thread::id>> seen(kNodes);
  for (std::uint32_t i = 0; i < 300; ++i) {
    const NodeId dst{static_cast<std::uint32_t>(i % kNodes)};
    runtime.transport().send(net::kClientNode, dst, net::Priority::kNormal,
                             [&mu, &seen, dst] {
                               std::lock_guard lock(mu);
                               seen[dst.value].insert(
                                   std::this_thread::get_id());
                             });
  }
  runtime.quiesce();
  std::set<std::thread::id> all;
  for (std::size_t n = 0; n < kNodes; ++n) {
    ASSERT_EQ(seen[n].size(), 1u) << "node " << n;
    all.insert(*seen[n].begin());
  }
  EXPECT_EQ(all.size(), kNodes);  // no thread serves two nodes
}

/// The dedup window is count-bounded: once a key is evicted, a late copy of
/// it would be delivered again — verify eviction really happens by watching
/// the window not grow past its bound (indirectly: long runs stay bounded
/// and exactly-once for fresh keys throughout).
TEST(RtRuntime, DedupWindowStaysBoundedOverLongRuns) {
  RtOptions opts;
  opts.dedup_window_keys = 64;
  opts.link.duplicate = 1.0;
  Runtime runtime(1, opts);
  std::atomic<std::uint64_t> delivered{0};
  constexpr std::uint32_t kN = 5'000;  // many windows' worth of keys
  for (std::uint32_t i = 0; i < kN; ++i) {
    runtime.transport().send(net::kClientNode, NodeId{0},
                             net::Priority::kNormal, [&delivered] {
                               delivered.fetch_add(1,
                                                   std::memory_order_relaxed);
                             });
  }
  runtime.quiesce();
  // Duplicates arrive back-to-back (well inside any window), so delivery
  // stays exactly-once even though thousands of keys were evicted.
  EXPECT_EQ(delivered.load(), kN);
  EXPECT_EQ(runtime.transport().accounting().dup_suppressed, kN);
}

}  // namespace
}  // namespace move::rt
