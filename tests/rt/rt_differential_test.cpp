#include <gtest/gtest.h>

#include <cstdint>

#include "rt_test_util.hpp"

/// The DES-equivalence differential suite: the same seeded workloads pushed
/// through the discrete-event executor and the real-clock executor over
/// twin clusters must produce identical delivered-match *sets* per document
/// (order-independent), and both must equal the brute-force oracle — on a
/// clean wire, through link loss, and across a quiesced churn sequence.
namespace move::rt {
namespace {

using fault::testutil::kNodes;
using testutil::doc_slice;
using testutil::expect_des_rt_oracle_equal;
using testutil::run_des;
using testutil::run_rt;
using testutil::SchemeKind;
using testutil::shared_workload;
using testutil::TwinSchemes;

constexpr std::uint64_t kSeeds[] = {0xA1, 0xB2, 0xC3};

class RtDifferential : public ::testing::TestWithParam<SchemeKind> {};

/// Clean wire: the rt executor's thread interleavings must not change which
/// filters any document reaches.
TEST_P(RtDifferential, CleanWireMatchesDesAndOracle) {
  const SchemeKind kind = GetParam();
  const auto& docs = shared_workload().docs_;
  for (std::uint64_t seed : kSeeds) {
    TwinSchemes twins(kind);
    const auto des_log = run_des(*twins.des, docs);
    RtOptions opts;
    opts.seed = seed;
    const auto rt_log = run_rt(*twins.rt, docs, opts);
    expect_des_rt_oracle_equal(des_log, rt_log, 0, "clean");
    EXPECT_EQ(des_log.completed_count(), docs.size());
    EXPECT_EQ(rt_log.completed_count(), docs.size());
  }
}

/// 5% loss + 1% duplication on both executors' wires. The reliability layer
/// (retries + dedup) must hold delivery at exactly-once on both sides, so
/// the delivered sets still equal the oracle — and the rt accounting must
/// prove faults actually fired rather than the test passing vacuously.
TEST_P(RtDifferential, LossyLinkStaysExactlyOnce) {
  const SchemeKind kind = GetParam();
  const auto& docs = shared_workload().docs_;
  for (std::uint64_t seed : kSeeds) {
    TwinSchemes twins(kind);

    net::NetOptions nopts;
    nopts.link.loss = 0.05;
    nopts.link.latency_base_us = 40.0;
    nopts.link.latency_jitter_us = 20.0;
    nopts.link.duplicate = 0.01;
    nopts.seed = seed;
    net::Transport transport(twins.des_cluster.engine(), nopts);
    const auto des_log = run_des(*twins.des, docs, &transport);

    RtOptions ropts;
    ropts.link.loss = 0.05;
    ropts.link.duplicate = 0.01;
    ropts.seed = seed;
    RtRunMetrics m;
    const auto rt_log = run_rt(*twins.rt, docs, ropts, &m);

    expect_des_rt_oracle_equal(des_log, rt_log, 0, "lossy");
    EXPECT_EQ(rt_log.completed_count(), docs.size());
    EXPECT_GT(m.net_acc.drops, 0u) << "loss shim never fired";
    EXPECT_GT(m.net_acc.retries, 0u);
    EXPECT_EQ(m.net_acc.expired, 0u)
        << "a message exhausted its retry budget at 5% loss";
  }
}

/// One-node churn as a phased, quiesced sequence (membership changes land
/// at doc-index barriers so the twin clusters plan identically): publish,
/// fail + repair, publish through the failure, revive, publish again. With
/// repair applied, delivered sets must equal the oracle in *every* phase —
/// including while the node is down.
TEST_P(RtDifferential, QuiescedChurnPhasesStayExact) {
  const SchemeKind kind = GetParam();
  for (std::uint64_t seed : kSeeds) {
    TwinSchemes twins(kind);
    const NodeId victim{static_cast<std::uint32_t>(seed % kNodes)};
    RtOptions opts;
    opts.seed = seed;

    const auto healthy_docs = doc_slice(0, 20);
    expect_des_rt_oracle_equal(run_des(*twins.des, healthy_docs),
                               run_rt(*twins.rt, healthy_docs, opts), 0,
                               "churn/healthy");

    twins.fail_node(victim);
    twins.repair(victim);
    const auto degraded_docs = doc_slice(20, 40);
    expect_des_rt_oracle_equal(run_des(*twins.des, degraded_docs),
                               run_rt(*twins.rt, degraded_docs, opts), 20,
                               "churn/degraded");

    twins.revive_node(victim);
    const auto recovered_docs = doc_slice(40, 60);
    expect_des_rt_oracle_equal(run_des(*twins.des, recovered_docs),
                               run_rt(*twins.rt, recovered_docs, opts), 40,
                               "churn/recovered");
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RtDifferential,
                         ::testing::Values(SchemeKind::kIl, SchemeKind::kMove,
                                           SchemeKind::kRs),
                         [](const auto& info) {
                           return fault::testutil::scheme_name(info.param);
                         });

}  // namespace
}  // namespace move::rt
