#include "rt/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "rt/runtime.hpp"

/// Unit and tsan-stress coverage for the bounded lock-free MPSC mailbox and
/// the runtime's shutdown path. The stress shapes are the ones the tsan
/// preset exists for: producer flood against a concurrent drain, and
/// stop/join racing the last deliveries.
namespace move::rt {
namespace {

TEST(MpscQueue, FifoSingleThread) {
  MpscQueue<int> q(16);
  for (int i = 0; i < 10; ++i) {
    int v = i;
    ASSERT_TRUE(q.try_push(v));
  }
  int out = -1;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(MpscQueue, CapacityRoundsUpToPowerOfTwo) {
  MpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  MpscQueue<int> q2(64);
  EXPECT_EQ(q2.capacity(), 64u);
}

TEST(MpscQueue, FullPushFailsUntilPopFreesASlot) {
  MpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(q.try_push(v));
  }
  int v = 99;
  EXPECT_FALSE(q.try_push(v));
  EXPECT_EQ(v, 99);  // a failed push leaves the value intact
  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(q.try_push(v));
  EXPECT_EQ(q.size_approx(), 4u);
}

TEST(MpscQueue, MoveOnlyPayloadsMoveThrough) {
  MpscQueue<std::unique_ptr<int>> q(8);
  auto p = std::make_unique<int>(42);
  ASSERT_TRUE(q.try_push(p));
  EXPECT_EQ(p, nullptr);  // moved out on success
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

/// Producer flood through a deliberately small ring: producers spin-retry
/// on full while one consumer drains concurrently. Per-producer FIFO order
/// must survive (MPSC guarantees it), and nothing may be lost or invented.
TEST(MpscQueueStress, ManyProducersOneConsumerKeepsEveryItemInOrder) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 20'000;
  MpscQueue<std::uint64_t> q(128);  // small on purpose: exercise full/retry

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t item = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!q.try_push(item)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint32_t> next_expected(kProducers, 0);
  std::uint64_t received = 0;
  bool order_violated = false;
  while (received < static_cast<std::uint64_t>(kProducers) * kPerProducer) {
    std::uint64_t item = 0;
    if (!q.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = static_cast<std::uint32_t>(item >> 32);
    const auto i = static_cast<std::uint32_t>(item);
    if (p >= kProducers || i != next_expected[p]) order_violated = true;
    if (p < kProducers) ++next_expected[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(order_violated);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
  std::uint64_t leftover = 0;
  EXPECT_FALSE(q.try_pop(leftover));
}

/// The runtime shutdown path under load: four producer threads flood the
/// transport, join, then stop() must drain every accepted envelope before
/// the workers exit — accepted-but-undelivered is the bug tsan watches for.
TEST(RuntimeStress, StopDrainsEveryAcceptedEnvelope) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 5'000;
  RtOptions opts;
  opts.mailbox_capacity = 64;  // force backpressure on the push path
  Runtime runtime(3, opts);

  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        const NodeId dst{(p + i) % 3};
        if (runtime.transport().send(net::kClientNode, dst,
                                     net::Priority::kNormal,
                                     [&delivered] {
                                       delivered.fetch_add(
                                           1, std::memory_order_relaxed);
                                     })) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  runtime.stop();  // no quiesce first: stop itself must drain

  EXPECT_EQ(accepted.load(), std::uint64_t{kProducers} * kPerProducer)
      << "clean wire, no shedding: every send must be accepted";
  EXPECT_EQ(delivered.load(), accepted.load());
  EXPECT_EQ(runtime.envelopes_processed(), accepted.load());
  runtime.stop();  // idempotent
}

/// Workers forwarding to each other mid-drain (the multi-producer shape the
/// executor's child hops create) while the main thread waits on quiesce.
TEST(RuntimeStress, WorkerToWorkerForwardingQuiesces) {
  RtOptions opts;
  opts.mailbox_capacity = 32;
  Runtime runtime(4, opts);
  std::atomic<std::uint64_t> leaf_deliveries{0};

  constexpr std::uint32_t kRoots = 2'000;
  for (std::uint32_t i = 0; i < kRoots; ++i) {
    const NodeId first{i % 4};
    const NodeId second{(i + 1) % 4};
    runtime.transport().send(
        net::kClientNode, first, net::Priority::kNormal,
        [&runtime, &leaf_deliveries, first, second] {
          runtime.transport().send(first, second, net::Priority::kNormal,
                                   [&leaf_deliveries] {
                                     leaf_deliveries.fetch_add(
                                         1, std::memory_order_relaxed);
                                   });
        });
  }
  runtime.quiesce();
  EXPECT_EQ(leaf_deliveries.load(), kRoots);
  EXPECT_EQ(runtime.envelopes_processed(), std::uint64_t{kRoots} * 2);
}

}  // namespace
}  // namespace move::rt
