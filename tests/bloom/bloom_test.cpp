#include "bloom/bloom_filter.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace move::bloom {
namespace {

TEST(BloomFilter, RejectsDegenerateGeometry) {
  EXPECT_THROW(BloomFilter(0, 3u), std::invalid_argument);
  EXPECT_THROW(BloomFilter(64, 0u), std::invalid_argument);
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1000, 0.01);
  for (std::uint32_t i = 0; i < 1000; ++i) bf.insert(TermId{i * 7});
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bf.may_contain(TermId{i * 7})) << i;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  constexpr std::size_t kItems = 10'000;
  constexpr double kTarget = 0.01;
  BloomFilter bf(kItems, kTarget);
  for (std::uint32_t i = 0; i < kItems; ++i) bf.insert(TermId{i});
  std::size_t fps = 0;
  constexpr std::size_t kProbes = 50'000;
  for (std::uint32_t i = 0; i < kProbes; ++i) {
    fps += bf.may_contain(TermId{static_cast<std::uint32_t>(kItems) + i});
  }
  const double fpr = static_cast<double>(fps) / kProbes;
  EXPECT_LT(fpr, kTarget * 3);   // generous upper bound
  EXPECT_GT(fpr, kTarget / 50);  // and it is not trivially zero-sized
}

TEST(BloomFilter, ExpectedFprTracksLoad) {
  BloomFilter bf(1000, 0.01);
  EXPECT_EQ(bf.expected_fpr(), 0.0);
  for (std::uint32_t i = 0; i < 1000; ++i) bf.insert(TermId{i});
  EXPECT_NEAR(bf.expected_fpr(), 0.01, 0.01);
  for (std::uint32_t i = 1000; i < 5000; ++i) bf.insert(TermId{i});
  EXPECT_GT(bf.expected_fpr(), 0.05);  // overloaded filter degrades
}

TEST(BloomFilter, FillRatioNearHalfAtDesignLoad) {
  BloomFilter bf(5000, 0.01);
  for (std::uint32_t i = 0; i < 5000; ++i) bf.insert(TermId{i});
  EXPECT_NEAR(bf.fill_ratio(), 0.5, 0.05);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter bf(100, 0.01);
  bf.insert(TermId{1});
  ASSERT_TRUE(bf.may_contain(TermId{1}));
  bf.clear();
  EXPECT_FALSE(bf.may_contain(TermId{1}));
  EXPECT_EQ(bf.insertion_count(), 0u);
  EXPECT_EQ(bf.fill_ratio(), 0.0);
}

TEST(BloomFilter, EmptyFilterContainsNothing) {
  BloomFilter bf(1000, 0.01);
  common::SplitMix64 rng(61);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(bf.may_contain(
        TermId{static_cast<std::uint32_t>(common::uniform_below(rng, 1u << 30))}));
  }
}

TEST(BloomFilter, GeometryScalesWithTargets) {
  const BloomFilter loose(1000, 0.1);
  const BloomFilter tight(1000, 0.001);
  EXPECT_GT(tight.bit_count(), loose.bit_count());
  EXPECT_GT(tight.hash_count(), loose.hash_count());
}

TEST(BloomFilter, TinyExpectedItemsStillValid) {
  BloomFilter bf(std::size_t{0}, 0.01);  // clamped internally
  bf.insert(TermId{3});
  EXPECT_TRUE(bf.may_contain(TermId{3}));
}

}  // namespace
}  // namespace move::bloom
