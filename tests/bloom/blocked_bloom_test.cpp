// Split-block (register-blocked) Bloom filter: the InvertedIndex term
// summary. The properties that matter downstream: zero false negatives (the
// matcher gate must never drop a real term), a sane false-positive rate at
// the default sizing, and bit-identical behavior between the scalar and SIMD
// probe/insert twins (the determinism contract of the matching kernels).

#include "bloom/blocked_bloom.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/simd.hpp"

namespace move::bloom {
namespace {

/// Restores the dispatch override on scope exit so one test cannot poison
/// the rest of the binary.
struct ScopedForceScalar {
  explicit ScopedForceScalar(bool on) : prev(simd::force_scalar()) {
    simd::set_force_scalar(on);
  }
  ~ScopedForceScalar() { simd::set_force_scalar(prev); }
  bool prev;
};

TEST(BlockedBloom, EmptyContainsNothing) {
  const BlockedBloomFilter bf(100);
  for (std::uint32_t t = 0; t < 1000; ++t) {
    EXPECT_FALSE(bf.may_contain(TermId{t}));
  }
  EXPECT_EQ(bf.insertion_count(), 0u);
}

TEST(BlockedBloom, NoFalseNegatives) {
  BlockedBloomFilter bf(5000);
  for (std::uint32_t t = 0; t < 5000; ++t) bf.insert(TermId{t * 7 + 3});
  for (std::uint32_t t = 0; t < 5000; ++t) {
    ASSERT_TRUE(bf.may_contain(TermId{t * 7 + 3})) << "term " << t * 7 + 3;
  }
  EXPECT_EQ(bf.insertion_count(), 5000u);
}

TEST(BlockedBloom, FalsePositiveRateIsSane) {
  BlockedBloomFilter bf(2000);  // default 16 bits/key
  for (std::uint32_t t = 0; t < 2000; ++t) bf.insert(TermId{t});
  std::size_t fp = 0;
  constexpr std::uint32_t kProbes = 20000;
  for (std::uint32_t t = 2000; t < 2000 + kProbes; ++t) {
    if (bf.may_contain(TermId{t})) ++fp;
  }
  // Split-block at 16 bits/key lands well under 1%; allow generous slack.
  EXPECT_LT(static_cast<double>(fp) / kProbes, 0.02)
      << fp << " false positives";
  EXPECT_GT(bf.fill_ratio(), 0.0);
  EXPECT_LT(bf.fill_ratio(), 0.6);
}

TEST(BlockedBloom, DeterministicAcrossInstances) {
  BlockedBloomFilter a(300), b(300);
  for (std::uint32_t t = 0; t < 300; ++t) {
    a.insert(TermId{t * 13});
    b.insert(TermId{t * 13});
  }
  EXPECT_EQ(a.fill_ratio(), b.fill_ratio());
  for (std::uint32_t t = 0; t < 5000; ++t) {
    ASSERT_EQ(a.may_contain(TermId{t}), b.may_contain(TermId{t}));
  }
}

// The scalar twins must set and probe exactly the same bits as the SIMD
// paths: a filter built under one dispatch is probed under the other, both
// ways, and every answer must agree. (On a scalar-only build both sides run
// the same code and the test is trivially green.)
TEST(BlockedBloom, ScalarAndSimdAreBitIdentical) {
  BlockedBloomFilter built_simd(500), built_scalar(500);
  {
    ScopedForceScalar scalar_off(false);
    for (std::uint32_t t = 0; t < 500; ++t) built_simd.insert(TermId{t * 3});
  }
  {
    ScopedForceScalar scalar_on(true);
    for (std::uint32_t t = 0; t < 500; ++t) built_scalar.insert(TermId{t * 3});
  }
  EXPECT_EQ(built_simd.fill_ratio(), built_scalar.fill_ratio());
  for (std::uint32_t t = 0; t < 4000; ++t) {
    bool probe_simd, probe_scalar;
    {
      ScopedForceScalar scalar_off(false);
      probe_simd = built_simd.may_contain(TermId{t});
    }
    {
      ScopedForceScalar scalar_on(true);
      probe_scalar = built_scalar.may_contain(TermId{t});
    }
    ASSERT_EQ(probe_simd, probe_scalar) << "term " << t;
    // Cross-probing the other builder's filter must agree too.
    {
      ScopedForceScalar scalar_on(true);
      ASSERT_EQ(built_simd.may_contain(TermId{t}), probe_simd) << "term " << t;
    }
  }
}

TEST(BlockedBloom, ClearResets) {
  BlockedBloomFilter bf(100);
  for (std::uint32_t t = 0; t < 100; ++t) bf.insert(TermId{t});
  bf.clear();
  EXPECT_EQ(bf.insertion_count(), 0u);
  EXPECT_EQ(bf.fill_ratio(), 0.0);
  for (std::uint32_t t = 0; t < 100; ++t) {
    EXPECT_FALSE(bf.may_contain(TermId{t}));
  }
}

TEST(BlockedBloom, TinyAndZeroSizing) {
  // Degenerate sizings must still allocate at least one block and keep the
  // no-false-negative guarantee.
  BlockedBloomFilter bf(0, 0);
  EXPECT_GE(bf.block_count(), 1u);
  bf.insert(TermId{42});
  EXPECT_TRUE(bf.may_contain(TermId{42}));
}

}  // namespace
}  // namespace move::bloom
