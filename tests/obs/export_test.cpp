#include "obs/export.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace move::obs {
namespace {

TEST(Export, EmptyRegistryIsValidJsonWithEmptySections) {
  Registry r;
  const std::string text = export_json(r);
  const Json j = Json::parse(text);  // must not throw
  EXPECT_TRUE(j.at("counters").is_object());
  EXPECT_TRUE(j.at("gauges").is_object());
  EXPECT_TRUE(j.at("histograms").is_object());
  EXPECT_EQ(j.at("counters").size(), 0u);
  EXPECT_EQ(j.at("gauges").size(), 0u);
  EXPECT_EQ(j.at("histograms").size(), 0u);
}

TEST(Export, CountersAndGaugesSerializeByName) {
  Registry r;
  r.counter("kv.store.puts").add(128);
  r.gauge(labeled("cluster.node.busy_us", "node", std::uint64_t{3}))
      .set(4031.5);
  const Json j = registry_to_json(r);
  EXPECT_EQ(j.at("counters").at("kv.store.puts").as_double(), 128.0);
  EXPECT_EQ(j.at("gauges").at("cluster.node.busy_us{node=3}").as_double(),
            4031.5);
}

TEST(Export, HistogramCarriesBoundsCountsCountSum) {
  Registry r;
  Histogram& h = r.histogram("sim.latency_us", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);
  const Json j = registry_to_json(r);
  const Json& hj = j.at("histograms").at("sim.latency_us");
  ASSERT_EQ(hj.at("bounds").size(), 2u);
  ASSERT_EQ(hj.at("counts").size(), 3u);  // overflow bucket last
  EXPECT_EQ(hj.at("counts").as_array()[0].as_double(), 1.0);
  EXPECT_EQ(hj.at("counts").as_array()[2].as_double(), 1.0);
  EXPECT_EQ(hj.at("count").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(hj.at("sum").as_double(), 5055.0);
}

TEST(Export, RoundTripThroughSnapshot) {
  Registry r;
  r.counter("a.events").add(7);
  r.counter("b.events").add(11);
  r.gauge("load").set(0.75);
  Histogram& h = r.histogram("sizes", Histogram::linear_bounds(1.0, 1.0, 4));
  for (int i = 0; i < 9; ++i) h.observe(static_cast<double>(i));

  // dump -> parse -> snapshot must reproduce the registry's samples exactly.
  const Json parsed = Json::parse(export_json(r, 2));
  const RegistrySnapshot snap = snapshot_from_json(parsed);

  const auto counters = r.counters();
  ASSERT_EQ(snap.counters.size(), counters.size());
  for (std::size_t i = 0; i < counters.size(); ++i) {
    EXPECT_EQ(snap.counters[i].name, counters[i].name);
    EXPECT_EQ(snap.counters[i].value, counters[i].value);
  }
  const auto gauges = r.gauges();
  ASSERT_EQ(snap.gauges.size(), gauges.size());
  EXPECT_EQ(snap.gauges[0].name, gauges[0].name);
  EXPECT_EQ(snap.gauges[0].value, gauges[0].value);
  const auto histograms = r.histograms();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].bounds, histograms[0].bounds);
  EXPECT_EQ(snap.histograms[0].counts, histograms[0].counts);
  EXPECT_EQ(snap.histograms[0].count, histograms[0].count);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, histograms[0].sum);
}

TEST(Export, SnapshotRejectsSchemaMismatch) {
  EXPECT_THROW((void)snapshot_from_json(Json::parse("{}")),
               std::runtime_error);
  EXPECT_THROW((void)snapshot_from_json(Json::parse(
                   R"({"counters": [], "gauges": {}, "histograms": {}})")),
               std::runtime_error);
}

TEST(Export, DumpIsDeterministicAcrossRegistrationOrder) {
  Registry r1, r2;
  r1.counter("x").add(1);
  r1.counter("a").add(2);
  r2.counter("a").add(2);
  r2.counter("x").add(1);
  EXPECT_EQ(export_json(r1), export_json(r2));
}

}  // namespace
}  // namespace move::obs
