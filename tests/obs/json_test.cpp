#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace move::obs {
namespace {

// --- construction & typed access ---------------------------------------------

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_THROW((void)j.as_double(), std::runtime_error);
}

TEST(Json, ScalarKinds) {
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(1.5).is_number());
  EXPECT_TRUE(Json(42).is_number());
  EXPECT_TRUE(Json("s").is_string());
  EXPECT_EQ(Json(false).as_bool(), false);
  EXPECT_EQ(Json(3).as_double(), 3.0);
  EXPECT_EQ(Json("abc").as_string(), "abc");
}

TEST(Json, SubscriptBuildsObjectsAndArrays) {
  Json j;
  j["a"]["b"] = 1;
  j["list"].push_back(10);
  j["list"].push_back("x");
  EXPECT_TRUE(j.is_object());
  EXPECT_EQ(j.at("a").at("b").as_double(), 1.0);
  ASSERT_EQ(j.at("list").size(), 2u);
  EXPECT_EQ(j.at("list").as_array()[1].as_string(), "x");
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("zzz"));
  EXPECT_THROW((void)j.at("zzz"), std::runtime_error);
}

// --- serialization -----------------------------------------------------------

TEST(Json, DumpIsDeterministicAndSorted) {
  Json j;
  j["zebra"] = 1;
  j["alpha"] = 2;
  EXPECT_EQ(j.dump(), R"({"alpha":2,"zebra":1})");
}

TEST(Json, DumpIntegersWithoutDecimalPoint) {
  EXPECT_EQ(Json(5).dump(), "5");
  EXPECT_EQ(Json(-3.0).dump(), "-3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

TEST(Json, DumpEscapesStrings) {
  EXPECT_EQ(Json("a\"b\\c\n").dump(), R"("a\"b\\c\n")");
  const std::string ctrl = Json(std::string("\x01")).dump();
  EXPECT_EQ(ctrl, "\"\\u0001\"");
}

TEST(Json, PrettyDumpUsesIndent) {
  Json j;
  j["k"] = 1;
  EXPECT_EQ(j.dump(2), "{\n  \"k\": 1\n}");
}

// --- parsing -----------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-12.5e1").as_double(), -125.0);
  EXPECT_EQ(Json::parse(R"("hi")").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const auto j = Json::parse(R"({"a": [1, 2, {"b": null}], "c": false})");
  EXPECT_EQ(j.at("a").size(), 3u);
  EXPECT_TRUE(j.at("a").as_array()[2].at("b").is_null());
  EXPECT_EQ(j.at("c").as_bool(), false);
}

TEST(Json, ParseUnescapesUnicode) {
  EXPECT_EQ(Json::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("\n\t")").as_string(), "\n\t");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("1 garbage"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("'single'"), std::runtime_error);
}

// --- round trips -------------------------------------------------------------

TEST(Json, RoundTripPreservesValue) {
  Json j;
  j["pi"] = 3.141592653589793;
  j["tiny"] = 1e-300;
  j["big"] = 1.7976931348623157e308;
  j["neg"] = -0.0625;
  j["arr"].push_back(1);
  j["arr"].push_back(true);
  j["arr"].push_back(nullptr);
  j["nested"]["s"] = "q\"uote";
  for (int indent : {-1, 0, 2, 4}) {
    EXPECT_EQ(Json::parse(j.dump(indent)), j) << "indent " << indent;
  }
}

TEST(Json, EqualityIsStructural) {
  Json a, b;
  a["x"] = 1;
  b["x"] = 1.0;
  EXPECT_EQ(a, b);
  b["x"] = 2;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace move::obs
