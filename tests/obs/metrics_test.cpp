#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace move::obs {
namespace {

// --- Counter -----------------------------------------------------------------

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --- Gauge -------------------------------------------------------------------

TEST(Gauge, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketBoundariesAreInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 bounds + overflow
  h.observe(1.0);    // lands in bucket 0 (v <= 1.0)
  h.observe(1.0001); // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(100.5);  // overflow
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.0001 + 10.0 + 100.0 + 100.5);
}

TEST(Histogram, MeanAndReset) {
  Histogram h({10.0, 20.0});
  EXPECT_EQ(h.mean(), 0.0);  // empty
  h.observe(10.0);
  h.observe(20.0);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);   // all mass in [0, 10]
  EXPECT_GT(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(0.5), 10.0);
  EXPECT_LE(h.quantile(1.0), 10.0);
  EXPECT_EQ(Histogram({1.0}).quantile(0.5), 0.0);  // empty -> 0
}

TEST(Histogram, OverflowQuantileClampsToLastBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(99.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(Histogram, ExponentialBoundsShape) {
  const auto b = Histogram::exponential_bounds(1.0, 2.0, 5);
  const std::vector<double> expect{1.0, 2.0, 4.0, 8.0, 16.0};
  EXPECT_EQ(b, expect);
  EXPECT_THROW(Histogram::exponential_bounds(0.0, 2.0, 3),
               std::invalid_argument);
}

TEST(Histogram, LinearBoundsShape) {
  const auto b = Histogram::linear_bounds(10.0, 5.0, 4);
  const std::vector<double> expect{10.0, 15.0, 20.0, 25.0};
  EXPECT_EQ(b, expect);
}

TEST(Histogram, ConcurrentObservationsAreLossless) {
  Histogram h(Histogram::exponential_bounds(1.0, 2.0, 10));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>((t * 31 + i) % 2048));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) bucket_total += h.bucket(i);
  EXPECT_EQ(bucket_total, h.count());
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, CreateOnFirstUseReturnsSameInstance) {
  Registry r;
  EXPECT_TRUE(r.empty());
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.empty());
}

TEST(Registry, KindsAreIndependentNamespaces) {
  Registry r;
  r.counter("same.name").add(7);
  r.gauge("same.name").set(1.25);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.counter("same.name").value(), 7u);
  EXPECT_EQ(r.gauge("same.name").value(), 1.25);
}

TEST(Registry, HistogramBoundsFixedAtFirstRegistration) {
  Registry r;
  Histogram& h1 = r.histogram("lat", {1.0, 2.0});
  Histogram& h2 = r.histogram("lat", {5.0, 6.0, 7.0});  // ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Registry, SnapshotsAreSortedByName) {
  Registry r;
  r.counter("b.second").add(2);
  r.counter("a.first").add(1);
  r.gauge("z").set(3.0);
  r.gauge("a").set(4.0);
  const auto cs = r.counters();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].name, "a.first");
  EXPECT_EQ(cs[0].value, 1u);
  EXPECT_EQ(cs[1].name, "b.second");
  const auto gs = r.gauges();
  ASSERT_EQ(gs.size(), 2u);
  EXPECT_EQ(gs[0].name, "a");
  EXPECT_EQ(gs[1].name, "z");
}

TEST(Registry, HistogramSampleCarriesBucketsAndOverflow) {
  Registry r;
  Histogram& h = r.histogram("d", {1.0, 2.0});
  h.observe(0.5);
  h.observe(9.0);
  const auto hs = r.histograms();
  ASSERT_EQ(hs.size(), 1u);
  EXPECT_EQ(hs[0].name, "d");
  ASSERT_EQ(hs[0].bounds.size(), 2u);
  ASSERT_EQ(hs[0].counts.size(), 3u);
  EXPECT_EQ(hs[0].counts[0], 1u);
  EXPECT_EQ(hs[0].counts[2], 1u);  // overflow last
  EXPECT_EQ(hs[0].count, 2u);
}

TEST(Registry, ResetZeroesValuesButKeepsNames) {
  Registry r;
  r.counter("c").add(5);
  r.gauge("g").set(5.0);
  r.histogram("h", {1.0}).observe(0.5);
  r.reset();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.counter("c").value(), 0u);
  EXPECT_EQ(r.gauge("g").value(), 0.0);
  EXPECT_EQ(r.histogram("h", {}).count(), 0u);
}

TEST(Registry, ReferencesSurviveLaterRegistrations) {
  Registry r;
  Counter& first = r.counter("aaa");
  // Force many more registrations; the map must not invalidate `first`.
  for (int i = 0; i < 500; ++i) {
    r.counter(labeled("filler", "i", static_cast<std::uint64_t>(i))).inc();
  }
  first.add(9);
  EXPECT_EQ(r.counter("aaa").value(), 9u);
}

// --- labeled() ---------------------------------------------------------------

TEST(Labeled, FormatsIntegerAndStringValues) {
  EXPECT_EQ(labeled("cluster.node.busy_us", "node", std::uint64_t{3}),
            "cluster.node.busy_us{node=3}");
  EXPECT_EQ(labeled("index.scanned", "shard", std::string_view{"7"}),
            "index.scanned{shard=7}");
}

}  // namespace
}  // namespace move::obs
