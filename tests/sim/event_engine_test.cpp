#include "sim/event_engine.hpp"

#include <gtest/gtest.h>

#include "sim/metrics.hpp"

#include <vector>

namespace move::sim {
namespace {

TEST(EventEngine, RunsEventsInTimeOrder) {
  EventEngine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30.0);
  EXPECT_EQ(eng.events_processed(), 3u);
}

TEST(EventEngine, EqualTimesFireInScheduleOrder) {
  EventEngine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(5, [&, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventEngine, CallbacksMayScheduleMore) {
  EventEngine eng;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) eng.schedule_after(10, chain);
  };
  eng.schedule_at(0, chain);
  eng.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(eng.now(), 40.0);
}

TEST(EventEngine, PastTimesClampToNow) {
  EventEngine eng;
  double fired_at = -1;
  eng.schedule_at(100, [&] {
    eng.schedule_at(5, [&] { fired_at = eng.now(); });  // in the past
  });
  eng.run();
  EXPECT_EQ(fired_at, 100.0);
}

TEST(EventEngine, RunUntilStopsAtHorizon) {
  EventEngine eng;
  int fired = 0;
  eng.schedule_at(10, [&] { ++fired; });
  eng.schedule_at(50, [&] { ++fired; });
  eng.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 20.0);
  EXPECT_FALSE(eng.idle());
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(FifoServer, IdleServerServesImmediately) {
  EventEngine eng;
  FifoServer server(eng);
  double done_at = -1;
  eng.schedule_at(100, [&] {
    server.submit(25, [&](Time t) { done_at = t; });
  });
  eng.run();
  EXPECT_EQ(done_at, 125.0);
  EXPECT_EQ(server.busy_us(), 25.0);
  EXPECT_EQ(server.queue_wait_us(), 0.0);
  EXPECT_EQ(server.jobs_served(), 1u);
}

TEST(FifoServer, JobsQueueSerially) {
  EventEngine eng;
  FifoServer server(eng);
  std::vector<double> completions;
  eng.schedule_at(0, [&] {
    server.submit(10, [&](Time t) { completions.push_back(t); });
    server.submit(10, [&](Time t) { completions.push_back(t); });
    server.submit(10, [&](Time t) { completions.push_back(t); });
  });
  eng.run();
  EXPECT_EQ(completions, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_EQ(server.queue_wait_us(), 10.0 + 20.0);
}

TEST(FifoServer, InterleavedArrivals) {
  EventEngine eng;
  FifoServer server(eng);
  std::vector<double> completions;
  eng.schedule_at(0, [&] {
    server.submit(100, [&](Time t) { completions.push_back(t); });
  });
  // Arrives while busy -> queues behind.
  eng.schedule_at(50, [&] {
    server.submit(10, [&](Time t) { completions.push_back(t); });
  });
  // Arrives after idle gap -> served at its arrival.
  eng.schedule_at(500, [&] {
    server.submit(10, [&](Time t) { completions.push_back(t); });
  });
  eng.run();
  EXPECT_EQ(completions, (std::vector<double>{100.0, 110.0, 510.0}));
}

TEST(FifoServer, ResetClearsAccounting) {
  EventEngine eng;
  FifoServer server(eng);
  eng.schedule_at(0, [&] { server.submit(10, nullptr); });
  eng.run();
  server.reset();
  EXPECT_EQ(server.busy_us(), 0.0);
  EXPECT_EQ(server.jobs_served(), 0u);
  EXPECT_EQ(server.free_at(), 0.0);
}

TEST(FifoServer, NullCallbackAccepted) {
  EventEngine eng;
  FifoServer server(eng);
  eng.schedule_at(0, [&] { server.submit(5, nullptr); });
  eng.run();
  EXPECT_EQ(server.jobs_served(), 1u);
}

TEST(RunMetricsSmoke, ThroughputFormula) {
  RunMetrics m;
  m.documents_completed = 500;
  m.makespan_us = 2'000'000;  // 2 virtual seconds
  EXPECT_DOUBLE_EQ(m.throughput_per_sec(), 250.0);
}

TEST(RunMetricsSmoke, ZeroMakespanIsZeroThroughput) {
  RunMetrics m;
  m.documents_completed = 10;
  EXPECT_EQ(m.throughput_per_sec(), 0.0);
}

}  // namespace
}  // namespace move::sim
