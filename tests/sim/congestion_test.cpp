// Congestion-model tests: the load-dependent service inflation that drives
// Fig. 8(b)'s falling throughput curve (see DESIGN.md "Calibration").

#include <gtest/gtest.h>

#include "sim/event_engine.hpp"

namespace move::sim {
namespace {

TEST(Congestion, DisabledByDefault) {
  EventEngine eng;
  FifoServer server(eng);
  EXPECT_EQ(server.congestion_coeff(), 0.0);
  // Two queued jobs: the second waits 100us but is NOT inflated.
  eng.schedule_at(0, [&] {
    server.submit(100, nullptr);
    server.submit(100, nullptr);
  });
  eng.run();
  EXPECT_DOUBLE_EQ(server.busy_us(), 200.0);
}

TEST(Congestion, InflatesWithQueueWait) {
  EventEngine eng;
  FifoServer server(eng);
  server.set_congestion(1.0, 100.0);  // +100% per queued second
  double second_done = 0;
  eng.schedule_at(0, [&] {
    server.submit(500'000, nullptr);  // 0.5 s of work
    server.submit(100, [&](Time t) { second_done = t; });
  });
  eng.run();
  // Second job waited 0.5 s -> service 100 * (1 + 0.5) = 150 us.
  EXPECT_DOUBLE_EQ(second_done, 500'000 + 150);
  EXPECT_DOUBLE_EQ(server.busy_us(), 500'000 + 150);
}

TEST(Congestion, InflationIsCapped) {
  EventEngine eng;
  FifoServer server(eng);
  server.set_congestion(1.0, 3.0);  // cap at 3x
  double second_done = 0;
  eng.schedule_at(0, [&] {
    server.submit(10'000'000, nullptr);  // 10 s backlog
    server.submit(100, [&](Time t) { second_done = t; });
  });
  eng.run();
  // Uncapped would be 100 * 11 = 1100; the cap holds it at 300.
  EXPECT_DOUBLE_EQ(second_done, 10'000'000 + 300);
}

TEST(Congestion, NoWaitNoInflation) {
  EventEngine eng;
  FifoServer server(eng);
  server.set_congestion(5.0, 100.0);
  double done = 0;
  eng.schedule_at(0, [&] { server.submit(100, [&](Time t) { done = t; }); });
  eng.run();
  EXPECT_DOUBLE_EQ(done, 100.0);
}

TEST(Congestion, LargeBurstsLosePerDocThroughput) {
  // The Fig. 8(b) property in miniature: with congestion on, doubling the
  // burst more than doubles the makespan.
  auto makespan = [](int jobs) {
    EventEngine eng;
    FifoServer server(eng);
    server.set_congestion(2.0, 12.0);
    eng.schedule_at(0, [&, jobs] {
      for (int i = 0; i < jobs; ++i) server.submit(1'000, nullptr);
    });
    eng.run();
    return server.free_at();  // completion of the last queued job
  };
  const double small = makespan(100);
  const double large = makespan(200);
  EXPECT_GT(large, 2.0 * small);
}

}  // namespace
}  // namespace move::sim
