#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "sim/cost_model.hpp"

namespace move::sim {
namespace {

TEST(RunMetrics, LatencyStats) {
  RunMetrics m;
  m.latencies_us = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(m.mean_latency_us(), 25.0);
  EXPECT_GE(m.p99_latency_us(), 39.0);
}

TEST(RunMetrics, EmptyLatencies) {
  RunMetrics m;
  EXPECT_EQ(m.mean_latency_us(), 0.0);
  EXPECT_EQ(m.p99_latency_us(), 0.0);
}

TEST(RunMetrics, StorageCostConverts) {
  RunMetrics m;
  m.node_storage = {3, 7};
  const auto cost = m.storage_cost();
  ASSERT_EQ(cost.size(), 2u);
  EXPECT_DOUBLE_EQ(cost[0], 3.0);
  EXPECT_DOUBLE_EQ(cost[1], 7.0);
}

TEST(CostModel, TransferGrowsWithDocSize) {
  const CostModel cost;
  EXPECT_GT(cost.transfer_us(6000), cost.transfer_us(60));
  // TREC-AP-sized articles cost visibly more to ship than TREC-WT pages.
  EXPECT_GT(cost.transfer_us(6055) / cost.transfer_us(65), 5.0);
}

TEST(CostModel, CrossRackPenaltyApplied) {
  const CostModel cost;
  EXPECT_DOUBLE_EQ(cost.transfer_us(100, true), cost.transfer_us(100));
  EXPECT_GT(cost.transfer_us(100, false), cost.transfer_us(100));
}

TEST(CostModel, MatchCostTracksAccounting) {
  const CostModel cost;
  index::MatchAccounting small{1, 10, 0};
  index::MatchAccounting large{50, 10'000, 100};
  EXPECT_GT(cost.match_us(large), cost.match_us(small));
  EXPECT_DOUBLE_EQ(cost.match_us(index::MatchAccounting{}), 0.0);
}

TEST(CostModel, SeekDominatesSmallLists) {
  // One seek must outweigh scanning a handful of postings: disk-bound model.
  const CostModel cost;
  index::MatchAccounting one_list{1, 5, 0};
  EXPECT_GT(cost.seek_per_list_us,
            cost.match_us(one_list) - cost.seek_per_list_us);
}

TEST(CostModel, BetaGrowsWithFilterCount) {
  const CostModel cost;
  EXPECT_GT(cost.beta(1e7, 100), cost.beta(1e5, 100));
  EXPECT_GT(cost.beta(1e6, 100), 1.0);  // paper: beta >> 1 at large P
}

}  // namespace
}  // namespace move::sim
