#include "core/forwarding_table.hpp"

#include <gtest/gtest.h>

#include <set>

namespace move::core {
namespace {

std::vector<NodeId> nodes(std::initializer_list<std::uint32_t> xs) {
  std::vector<NodeId> out;
  for (auto x : xs) out.push_back(NodeId{x});
  return out;
}

/// The paper's Figure 2 example: n = 12, r = 1/3 -> 3 partitions x 4 columns.
ForwardingTable figure2() {
  return ForwardingTable(
      3, 4, nodes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
}

TEST(ForwardingTable, RejectsBadShapes) {
  EXPECT_THROW(ForwardingTable(0, 2, nodes({})), std::invalid_argument);
  EXPECT_THROW(ForwardingTable(2, 0, nodes({})), std::invalid_argument);
  EXPECT_THROW(ForwardingTable(2, 2, nodes({1, 2, 3})),
               std::invalid_argument);
}

TEST(ForwardingTable, Figure2Shape) {
  const auto t = figure2();
  EXPECT_EQ(t.partitions(), 3u);
  EXPECT_EQ(t.columns(), 4u);
  EXPECT_EQ(t.node_count(), 12u);
}

TEST(ForwardingTable, RowMajorAccess) {
  const auto t = figure2();
  EXPECT_EQ(t.at(0, 0), NodeId{1});
  EXPECT_EQ(t.at(0, 3), NodeId{4});
  EXPECT_EQ(t.at(2, 0), NodeId{9});
  EXPECT_THROW(t.at(3, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 4), std::out_of_range);
}

TEST(ForwardingTable, RowSpans) {
  const auto t = figure2();
  const auto r1 = t.row(1);
  ASSERT_EQ(r1.size(), 4u);
  EXPECT_EQ(r1[0], NodeId{5});
  EXPECT_EQ(r1[3], NodeId{8});
  EXPECT_THROW(t.row(3), std::out_of_range);
}

TEST(ForwardingTable, ColumnNodesWalkRows) {
  const auto t = figure2();
  // Figure 2: filters f1,f2 in subset 1 are replicated to nodes n1, n5, n9.
  const auto col0 = t.column_nodes(0);
  ASSERT_EQ(col0.size(), 3u);
  EXPECT_EQ(col0[0], NodeId{1});
  EXPECT_EQ(col0[1], NodeId{5});
  EXPECT_EQ(col0[2], NodeId{9});
}

TEST(ForwardingTable, ColumnOfIsStableAndInRange) {
  const auto t = figure2();
  for (std::uint32_t f = 0; f < 100; ++f) {
    const auto c = t.column_of(FilterId{f});
    EXPECT_LT(c, 4u);
    EXPECT_EQ(c, t.column_of(FilterId{f}));
  }
}

TEST(ForwardingTable, ColumnOfSpreadsFilters) {
  const auto t = figure2();
  std::set<std::uint32_t> used;
  for (std::uint32_t f = 0; f < 64; ++f) used.insert(t.column_of(FilterId{f}));
  EXPECT_EQ(used.size(), 4u);
}

TEST(ForwardingTable, RandomRowCoversAllPartitions) {
  const auto t = figure2();
  common::SplitMix64 rng(157);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(t.random_row(rng));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ForwardingTable, PickLiveRowPrefersFullyLive) {
  const auto t = figure2();
  // Kill node 2 (row 0); rows 1 and 2 remain fully live.
  std::vector<bool> alive(13, true);
  alive[2] = false;
  common::SplitMix64 rng(163);
  for (int i = 0; i < 50; ++i) {
    const auto row = t.pick_live_row(alive, rng);
    ASSERT_TRUE(row.has_value());
    EXPECT_NE(*row, 0u);
  }
}

TEST(ForwardingTable, PickLiveRowFallsBackToBestPartial) {
  const auto t = figure2();
  std::vector<bool> alive(13, false);
  // Row 1 has 2 live nodes, rows 0/2 have 1.
  alive[1] = true;
  alive[5] = true;
  alive[6] = true;
  alive[9] = true;
  common::SplitMix64 rng(167);
  const auto row = t.pick_live_row(alive, rng);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, 1u);
}

TEST(ForwardingTable, PickLiveRowNulloptWhenAllDead) {
  const auto t = figure2();
  std::vector<bool> alive(13, false);
  common::SplitMix64 rng(173);
  EXPECT_FALSE(t.pick_live_row(alive, rng).has_value());
}

TEST(ForwardingTable, AllNodesDistinctSorted) {
  const auto t = figure2();
  const auto all = t.all_nodes();
  ASSERT_EQ(all.size(), 12u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(ForwardingTable, SingleCellGrid) {
  ForwardingTable t(1, 1, nodes({7}));
  EXPECT_EQ(t.column_of(FilterId{99}), 0u);
  common::SplitMix64 rng(179);
  EXPECT_EQ(t.random_row(rng), 0u);
}

}  // namespace
}  // namespace move::core
