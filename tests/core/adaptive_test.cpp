// Tests for the §V periodic re-allocation controller and the observation
// windows behind it.

#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include "index/brute_force.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

namespace move::core {
namespace {

constexpr std::size_t kVocab = 1'500;

struct AdaptiveFixture {
  AdaptiveFixture() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = 3'000;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 40;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto cfg_a = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    auto cfg_b = cfg_a;
    cfg_b.seed ^= 0xd21f7;
    docs_a = workload::CorpusGenerator(cfg_a).generate(120);
    docs_b = workload::CorpusGenerator(cfg_b).generate(120);
    stats_a = workload::compute_stats(docs_a, kVocab);
    p_stats = workload::compute_stats(filters, kVocab);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      reference.add(filters.row(i));
    }
  }
  workload::TermSetTable filters, docs_a, docs_b;
  workload::TraceStats p_stats, stats_a;
  index::FilterStore reference;
};

const AdaptiveFixture& fx() {
  static const AdaptiveFixture f;
  return f;
}

cluster::ClusterConfig cfg() {
  cluster::ClusterConfig c;
  c.num_nodes = 10;
  c.num_racks = 2;
  return c;
}

MoveOptions opts() {
  MoveOptions o;
  o.capacity = 1'200;
  return o;
}

workload::TermSetTable concat(const workload::TermSetTable& a,
                              const workload::TermSetTable& b) {
  workload::TermSetTable out;
  for (std::size_t i = 0; i < a.size(); ++i) out.add(a.row(i));
  for (std::size_t i = 0; i < b.size(); ++i) out.add(b.row(i));
  return out;
}

TEST(Adaptive, ProcessesWholeStream) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.stats_a);
  AdaptiveConfig acfg;
  acfg.window_docs = 50;
  acfg.min_observations = 10;
  const auto stream = concat(f.docs_a, f.docs_b);
  const auto r = run_adaptive(scheme, stream, acfg);
  EXPECT_EQ(r.metrics.documents_published, stream.size());
  EXPECT_EQ(r.metrics.documents_completed, stream.size());
  // 240 docs in windows of 50 -> re-allocations after all but the last
  // window: floor((240-1)/50) = 4.
  EXPECT_EQ(r.reallocations, 4u);
}

TEST(Adaptive, MatchingStaysCorrectAcrossReallocations) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.stats_a);
  AdaptiveConfig acfg;
  acfg.window_docs = 40;
  acfg.min_observations = 10;
  (void)run_adaptive(scheme, concat(f.docs_a, f.docs_b), acfg);
  // After several live re-allocations, results must still be exact.
  for (std::size_t d = 0; d < f.docs_b.size(); d += 11) {
    EXPECT_EQ(scheme.plan_publish(f.docs_b.row(d)).matches,
              index::brute_force_match(f.reference, f.docs_b.row(d), {}));
  }
}

TEST(Adaptive, SmallWindowsSkipNoisyReallocation) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  AdaptiveConfig acfg;
  acfg.window_docs = 5;
  acfg.min_observations = 50;  // never reached
  const auto r = run_adaptive(scheme, f.docs_a, acfg);
  EXPECT_EQ(r.reallocations, 0u);
  EXPECT_EQ(r.metrics.documents_completed, f.docs_a.size());
}

TEST(Adaptive, EmptyStreamIsHarmless) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  workload::TermSetTable empty;
  const auto r = run_adaptive(scheme, empty, AdaptiveConfig{});
  EXPECT_EQ(r.metrics.documents_published, 0u);
  EXPECT_EQ(r.reallocations, 0u);
}

TEST(ObservationWindow, ResetClearsCountersAndBase) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  for (std::size_t d = 0; d < 30; ++d) scheme.plan_publish(f.docs_a.row(d));
  scheme.reset_observation_window();
  for (std::uint32_t m = 0; m < c.size(); ++m) {
    EXPECT_EQ(c.node(NodeId{m}).meta().total_docs(), 0u);
  }
  // A window with traffic after the reset still allocates correctly.
  for (std::size_t d = 30; d < 90; ++d) scheme.plan_publish(f.docs_a.row(d));
  scheme.allocate_from_observed();
  bool any = false;
  for (const auto& t : scheme.tables()) any |= t.has_value();
  EXPECT_TRUE(any);
}

}  // namespace
}  // namespace move::core
