// Failure-injection and availability tests for the MOVE scheme: routing
// around dead homes, partial grids, the routable-availability metric, and
// the §IV-A ratio-policy corners.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/move_scheme.hpp"
#include "index/brute_force.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

namespace move::core {
namespace {

constexpr std::size_t kVocab = 1'500;

struct FailureFixture {
  FailureFixture() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = 3'000;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 40;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    docs = workload::CorpusGenerator(ccfg).generate(80);
    p_stats = workload::compute_stats(filters, kVocab);
    q_stats = workload::compute_stats(docs, kVocab);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      reference.add(filters.row(i));
    }
  }
  workload::TermSetTable filters, docs;
  workload::TraceStats p_stats, q_stats;
  index::FilterStore reference;
};

const FailureFixture& fx() {
  static const FailureFixture f;
  return f;
}

cluster::ClusterConfig cfg() {
  cluster::ClusterConfig c;
  c.num_nodes = 12;
  c.num_racks = 3;
  return c;
}

MoveOptions opts() {
  MoveOptions o;
  o.capacity = 1'200;
  return o;
}

TEST(MoveFailure, MatchesAreSubsetOfTruthUnderFailure) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.q_stats);
  common::SplitMix64 rng(211);
  c.fail_fraction(0.25, rng);
  for (std::size_t d = 0; d < f.docs.size(); ++d) {
    const auto got = scheme.plan_publish(f.docs.row(d)).matches;
    const auto truth =
        index::brute_force_match(f.reference, f.docs.row(d), {});
    // No false positives: every reported match is a true match.
    EXPECT_TRUE(std::includes(truth.begin(), truth.end(), got.begin(),
                              got.end()));
  }
}

TEST(MoveFailure, NoFailureMeansNoLoss) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.q_stats);
  EXPECT_DOUBLE_EQ(scheme.routable_availability(), 1.0);
  EXPECT_DOUBLE_EQ(scheme.filter_availability(), 1.0);
}

TEST(MoveFailure, RoutableAvailabilityDegradesGracefully) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.q_stats);
  common::SplitMix64 rng(223);
  c.fail_fraction(0.5, rng);
  const double routable = scheme.routable_availability();
  const double copies = scheme.filter_availability();
  EXPECT_GT(routable, 0.4);
  EXPECT_LE(routable, 1.0);
  // Routable reachability can never exceed surviving copies.
  EXPECT_LE(routable, copies + 1e-12);
}

TEST(MoveFailure, AllNodesDeadMeansNothingRoutable) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.q_stats);
  for (std::uint32_t i = 0; i < c.size(); ++i) c.fail_node(NodeId{i});
  EXPECT_DOUBLE_EQ(scheme.routable_availability(), 0.0);
  EXPECT_DOUBLE_EQ(scheme.filter_availability(), 0.0);
  for (std::size_t d = 0; d < 5; ++d) {
    EXPECT_TRUE(scheme.plan_publish(f.docs.row(d)).matches.empty());
    EXPECT_TRUE(scheme.plan_publish(f.docs.row(d)).hops.empty());
  }
}

TEST(MoveFailure, DeadHomeRoutesDirectlyToPartition) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveScheme scheme(c, opts());
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.q_stats);
  // Kill a node that owns a forwarding table; docs for its terms must still
  // find matches via the publisher-side table.
  std::optional<NodeId> victim;
  for (std::uint32_t m = 0; m < c.size(); ++m) {
    if (scheme.tables()[m].has_value()) {
      victim = NodeId{m};
      break;
    }
  }
  ASSERT_TRUE(victim.has_value());
  c.fail_node(*victim);
  std::size_t found = 0;
  for (std::size_t d = 0; d < f.docs.size(); ++d) {
    found += scheme.plan_publish(f.docs.row(d)).matches.size();
  }
  EXPECT_GT(found, 0u);
}

TEST(RatioPolicy, PureReplicationShapesGrids) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  auto o = opts();
  o.ratio = RatioPolicy::kPureReplication;
  MoveScheme scheme(c, o);
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.q_stats);
  for (const auto& t : scheme.tables()) {
    if (!t.has_value()) continue;
    EXPECT_EQ(t->columns(), 1u);  // no separation
    EXPECT_GE(t->partitions(), 2u);
  }
}

TEST(RatioPolicy, PureSeparationShapesGrids) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  auto o = opts();
  o.ratio = RatioPolicy::kPureSeparation;
  MoveScheme scheme(c, o);
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.q_stats);
  bool any = false;
  for (const auto& t : scheme.tables()) {
    if (!t.has_value()) continue;
    any = true;
    EXPECT_EQ(t->partitions(), 1u);  // no replication
    EXPECT_GE(t->columns(), 2u);
  }
  EXPECT_TRUE(any);
}

TEST(RatioPolicy, AllPoliciesStayCorrect) {
  const auto& f = fx();
  for (auto ratio : {RatioPolicy::kAdaptive, RatioPolicy::kPureReplication,
                     RatioPolicy::kPureSeparation}) {
    cluster::Cluster c(cfg());
    auto o = opts();
    o.ratio = ratio;
    MoveScheme scheme(c, o);
    scheme.register_filters(f.filters);
    scheme.allocate(f.p_stats, f.q_stats);
    for (std::size_t d = 0; d < f.docs.size(); d += 9) {
      EXPECT_EQ(scheme.plan_publish(f.docs.row(d)).matches,
                index::brute_force_match(f.reference, f.docs.row(d), {}));
    }
  }
}

TEST(RatioPolicy, SeparationStoresFewerCopiesThanReplication) {
  const auto& f = fx();
  std::uint64_t copies_sep = 0, copies_rep = 0;
  for (auto [ratio, out] :
       {std::pair{RatioPolicy::kPureSeparation, &copies_sep},
        std::pair{RatioPolicy::kPureReplication, &copies_rep}}) {
    cluster::Cluster c(cfg());
    auto o = opts();
    o.ratio = ratio;
    MoveScheme scheme(c, o);
    scheme.register_filters(f.filters);
    scheme.allocate(f.p_stats, f.q_stats);
    for (auto v : scheme.storage_per_node()) *out += v;
  }
  EXPECT_LT(copies_sep, copies_rep);
}

}  // namespace
}  // namespace move::core
