#include "core/allocation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace move::core {
namespace {

AllocationParams params(std::size_t n, double P, double C,
                        FactorRule rule = FactorRule::kGeneralSqrtPQ) {
  AllocationParams p;
  p.cluster_size = n;
  p.total_filters = P;
  p.capacity = C;
  p.rule = rule;
  return p;
}

TEST(ShapeAllocation, PureReplicationWhenCapacityAmple) {
  // Tiny filter share + huge capacity -> r = 1/n: n partitions of 1 column.
  const auto a = shape_allocation(8, 0.001, params(20, 1e5, 1e9));
  EXPECT_EQ(a.n, 8u);
  EXPECT_NEAR(a.r, 1.0 / 8.0, 1e-12);
  EXPECT_EQ(a.partitions, 8u);
  EXPECT_EQ(a.columns, 1u);
}

TEST(ShapeAllocation, PureSeparationWhenCapacityTight) {
  // p*P == n*C forces r = 1: one partition of n columns.
  const auto a = shape_allocation(4, 0.4, params(20, 1e6, 1e5));
  EXPECT_NEAR(a.r, 1.0, 1e-12);
  EXPECT_EQ(a.partitions, 1u);
  EXPECT_EQ(a.columns, 4u);
}

TEST(ShapeAllocation, MixedGridBetweenExtremes) {
  // Require r = 0.5: 2 partitions x 2 columns on n=4.
  const auto a = shape_allocation(4, 0.2, params(20, 1e6, 1e5));
  EXPECT_NEAR(a.r, 0.5, 1e-12);
  EXPECT_EQ(a.partitions, 2u);
  EXPECT_EQ(a.columns, 2u);
}

TEST(ShapeAllocation, GridFitsCapacity) {
  for (double p : {0.01, 0.1, 0.3, 0.7}) {
    for (std::uint32_t n : {1u, 2u, 5u, 13u}) {
      const auto prm = params(20, 2e6, 3e5);
      const auto a = shape_allocation(n, p, prm);
      // Per-node copies p*P/(n*r) must fit capacity whenever it is feasible
      // at all (p*P/n <= C means some r in range works).
      if (p * prm.total_filters / a.n <= prm.capacity) {
        EXPECT_LE(a.copies_per_node(p, prm.total_filters),
                  prm.capacity * 1.0001)
            << "p=" << p << " n=" << n;
      }
      EXPECT_GE(a.r, 1.0 / a.n - 1e-12);
      EXPECT_LE(a.r, 1.0 + 1e-12);
      EXPECT_LE(a.partitions * a.columns, a.n);
      EXPECT_GE(a.partitions * a.columns, 1u);
    }
  }
}

TEST(ShapeAllocation, ZeroNodesClampedToOne) {
  const auto a = shape_allocation(0, 0.1, params(10, 1e5, 1e5));
  EXPECT_EQ(a.n, 1u);
}

TEST(ComputeAllocations, EmptyInputs) {
  common::SplitMix64 rng(103);
  EXPECT_TRUE(
      compute_allocations({}, params(10, 1e5, 1e5), rng).empty());
}

TEST(ComputeAllocations, ThrowsOnEmptyCluster) {
  common::SplitMix64 rng(107);
  std::vector<AllocationInput> in{{0.5, 0.5}};
  EXPECT_THROW(compute_allocations(in, params(0, 1e5, 1e5), rng),
               std::invalid_argument);
}

TEST(ComputeAllocations, ZeroPopularityGetsUnitAllocation) {
  common::SplitMix64 rng(109);
  std::vector<AllocationInput> in{{0.0, 0.9}, {0.5, 0.5}};
  const auto out = compute_allocations(in, params(10, 1e6, 1e6), rng);
  EXPECT_EQ(out[0].n, 1u);
}

TEST(ComputeAllocations, RespectsStorageBudgetInExpectation) {
  common::SplitMix64 rng(113);
  // Several homes with varied loads.
  std::vector<AllocationInput> in;
  for (int i = 0; i < 16; ++i) {
    in.push_back({0.05 + 0.01 * i, 0.02 * (16 - i)});
  }
  const auto prm = params(20, 1e6, 2e5);
  double used = 0.0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    const auto out = compute_allocations(in, prm, rng);
    for (std::size_t i = 0; i < in.size(); ++i) {
      used += static_cast<double>(out[i].n) * in[i].p * prm.total_filters;
    }
  }
  used /= kTrials;
  const double budget =
      static_cast<double>(prm.cluster_size) * prm.capacity;
  // Expected usage tracks the budget (clamping to [1, N] distorts slightly).
  EXPECT_NEAR(used / budget, 1.0, 0.35);
}

TEST(ComputeAllocations, HigherFrequencyGetsMoreNodes) {
  common::SplitMix64 rng(127);
  std::vector<AllocationInput> in{{0.2, 0.01}, {0.2, 0.81}};
  // sqrt(p*q) ratio is 9; with a roomy budget the hot home gets more nodes.
  const auto out =
      compute_allocations(in, params(64, 1e6, 1e6), rng);
  EXPECT_GT(out[1].n, out[0].n);
}

TEST(ComputeAllocations, Theorem1IgnoresPopularity) {
  common::SplitMix64 rng(131);
  std::vector<AllocationInput> in{{0.1, 0.4}, {0.6, 0.4}};
  const auto out = compute_allocations(
      in, params(64, 1e6, 1e6, FactorRule::kTheorem1SqrtQ), rng);
  // Same q -> same continuous n (rounding may differ by 1).
  EXPECT_NEAR(static_cast<double>(out[0].n),
              static_cast<double>(out[1].n), 1.0);
}

TEST(ComputeAllocations, Theorem2ApproachesTheorem1AtLargeBeta) {
  // beta >> 1 makes sqrt(1 + beta*q) proportional to sqrt(q).
  std::vector<AllocationInput> in{{0.3, 0.1}, {0.3, 0.4}};
  auto p2 = params(64, 1e6, 1e6, FactorRule::kTheorem2SqrtBetaQ);
  p2.beta = 1e6;
  common::SplitMix64 rng_a(137), rng_b(137);
  const auto thm2 = compute_allocations(in, p2, rng_a);
  const auto thm1 = compute_allocations(
      in, params(64, 1e6, 1e6, FactorRule::kTheorem1SqrtQ), rng_b);
  EXPECT_NEAR(static_cast<double>(thm2[1].n) / thm2[0].n,
              static_cast<double>(thm1[1].n) / thm1[0].n, 0.5);
}

TEST(ComputeAllocations, NodesClampedToClusterSize) {
  common::SplitMix64 rng(139);
  std::vector<AllocationInput> in{{0.9, 0.9}};
  const auto out = compute_allocations(in, params(4, 1e6, 1e9), rng);
  EXPECT_LE(out[0].n, 4u);
  EXPECT_GE(out[0].n, 1u);
}

TEST(ObjectiveLatency, OptimalFactorBeatsUniform) {
  // Property from Theorem 1's proof: among allocations with the same total
  // budget, n_i proportional to the optimal factor minimizes the objective.
  std::vector<AllocationInput> in;
  common::SplitMix64 seed_rng(149);
  for (int i = 0; i < 12; ++i) {
    in.push_back({0.02 + 0.03 * (i % 5), 0.01 + 0.05 * (i % 7)});
  }
  const auto prm = params(1000, 1e6, 5e4);
  common::SplitMix64 rng(151);
  const auto opt = compute_allocations(in, prm, rng);

  // Uniform allocation with the same total node budget.
  double total_nodes = 0;
  for (const auto& a : opt) total_nodes += a.n;
  std::vector<Allocation> uniform(in.size());
  for (auto& a : uniform) {
    a.n = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(total_nodes / in.size()));
  }
  EXPECT_LE(objective_latency(in, opt, prm.total_filters, 1e3),
            objective_latency(in, uniform, prm.total_filters, 1e3) * 1.10);
}

TEST(ObjectiveLatency, SizeMismatchThrows) {
  std::vector<AllocationInput> in{{0.1, 0.1}};
  std::vector<Allocation> allocs;
  EXPECT_THROW(objective_latency(in, allocs, 1e5, 1e3),
               std::invalid_argument);
}

}  // namespace
}  // namespace move::core
