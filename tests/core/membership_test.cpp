// Elasticity tests: nodes joining and leaving the ring, followed by scheme
// rebuild (the simulator's stand-in for Cassandra range streaming). The
// invariant throughout: matching results never change.

#include <gtest/gtest.h>

#include "core/il_scheme.hpp"
#include "core/move_scheme.hpp"
#include "core/rs_scheme.hpp"
#include "index/brute_force.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

namespace move::core {
namespace {

constexpr std::size_t kVocab = 1'200;

struct MembershipFixture {
  MembershipFixture() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = 2'500;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 40;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    docs = workload::CorpusGenerator(ccfg).generate(60);
    p_stats = workload::compute_stats(filters, kVocab);
    q_stats = workload::compute_stats(docs, kVocab);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      reference.add(filters.row(i));
    }
  }
  workload::TermSetTable filters, docs;
  workload::TraceStats p_stats, q_stats;
  index::FilterStore reference;
};

const MembershipFixture& fx() {
  static const MembershipFixture f;
  return f;
}

cluster::ClusterConfig cfg() {
  cluster::ClusterConfig c;
  c.num_nodes = 8;
  c.num_racks = 2;
  return c;
}

void expect_all_match(Scheme& scheme, const MembershipFixture& f) {
  for (std::size_t d = 0; d < f.docs.size(); d += 4) {
    EXPECT_EQ(scheme.plan_publish(f.docs.row(d)).matches,
              index::brute_force_match(f.reference, f.docs.row(d), {}))
        << "doc " << d;
  }
}

TEST(Membership, ClusterAddNodeGrowsEverything) {
  cluster::Cluster c(cfg());
  const NodeId id = c.add_node();
  EXPECT_EQ(id, NodeId{8});
  EXPECT_EQ(c.size(), 9u);
  EXPECT_TRUE(c.alive(id));
  EXPECT_TRUE(c.ring().contains(id));
  EXPECT_EQ(c.topology().rack_of(id), 0u);  // 8 % 2 racks, round-robin
}

TEST(Membership, ClusterRemoveNodeLeavesRing) {
  cluster::Cluster c(cfg());
  c.remove_node(NodeId{3});
  EXPECT_FALSE(c.ring().contains(NodeId{3}));
  EXPECT_FALSE(c.alive(NodeId{3}));
  EXPECT_EQ(c.node(NodeId{3}).stored_count(), 0u);
  EXPECT_THROW(c.remove_node(NodeId{99}), std::out_of_range);
}

TEST(Membership, RebuildBeforeRegisterThrows) {
  cluster::Cluster c(cfg());
  IlScheme il(c);
  RsScheme rs(c);
  MoveScheme mv(c, MoveOptions{});
  EXPECT_THROW(il.rebuild(), std::logic_error);
  EXPECT_THROW(rs.rebuild(), std::logic_error);
  EXPECT_THROW(mv.rebuild(), std::logic_error);
}

TEST(Membership, IlCorrectAfterJoin) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  IlScheme scheme(c);
  scheme.register_filters(f.filters);
  c.add_node();
  c.add_node();
  scheme.rebuild();
  // The new nodes actually took ownership of some filters.
  EXPECT_GT(c.node(NodeId{8}).stored_count() +
                c.node(NodeId{9}).stored_count(),
            0u);
  expect_all_match(scheme, f);
}

TEST(Membership, IlCorrectAfterLeave) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  IlScheme scheme(c);
  scheme.register_filters(f.filters);
  c.remove_node(NodeId{2});
  scheme.rebuild();
  EXPECT_EQ(c.node(NodeId{2}).stored_count(), 0u);
  expect_all_match(scheme, f);
}

TEST(Membership, RsCorrectAfterJoinAndLeave) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  RsScheme scheme(c);
  scheme.register_filters(f.filters);
  c.add_node();
  c.remove_node(NodeId{0});
  scheme.rebuild();
  expect_all_match(scheme, f);
}

TEST(Membership, MoveCorrectAfterJoinWithReallocation) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveOptions o;
  o.capacity = 1'200;
  MoveScheme scheme(c, o);
  scheme.register_filters(f.filters);
  scheme.allocate(f.p_stats, f.q_stats);
  c.add_node();
  c.add_node();
  c.add_node();
  scheme.rebuild();
  // Re-allocation happened (tables exist over the grown cluster).
  bool any_table = false;
  for (const auto& t : scheme.tables()) any_table |= t.has_value();
  EXPECT_TRUE(any_table);
  EXPECT_EQ(scheme.tables().size(), 11u);
  expect_all_match(scheme, f);
}

TEST(Membership, MoveCorrectAfterLeaveWithoutAllocation) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  MoveOptions o;
  o.capacity = 1'200;
  MoveScheme scheme(c, o);
  scheme.register_filters(f.filters);
  c.remove_node(NodeId{5});
  scheme.rebuild();
  expect_all_match(scheme, f);
}

TEST(Membership, StorageMovesOnlyPartially) {
  // Consistent hashing: after one join, most filters stay where they were.
  const auto& f = fx();
  cluster::Cluster c(cfg());
  IlScheme scheme(c);
  scheme.register_filters(f.filters);
  const auto before = scheme.storage_per_node();
  c.add_node();
  scheme.rebuild();
  const auto after = scheme.storage_per_node();
  std::uint64_t unchanged_mass = 0, total = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    unchanged_mass += std::min(before[i], after[i]);
    total += before[i];
  }
  // At least ~2/3 of placements survive a single join of 1-of-9 nodes.
  EXPECT_GT(static_cast<double>(unchanged_mass) / static_cast<double>(total),
            0.66);
}

}  // namespace
}  // namespace move::core
