#include "core/stairs_scheme.hpp"

#include <gtest/gtest.h>

#include "core/il_scheme.hpp"
#include "index/brute_force.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"

namespace move::core {
namespace {

constexpr std::size_t kVocab = 1'500;

struct StairsFixture {
  StairsFixture() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = 3'000;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 40;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    docs = workload::CorpusGenerator(ccfg).generate(80);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      reference.add(filters.row(i));
    }
  }
  workload::TermSetTable filters, docs;
  index::FilterStore reference;
};

const StairsFixture& fx() {
  static const StairsFixture f;
  return f;
}

cluster::ClusterConfig cfg() {
  cluster::ClusterConfig c;
  c.num_nodes = 10;
  c.num_racks = 2;
  return c;
}

TEST(Stairs, DesignatedCountAllTermsIsOne) {
  cluster::Cluster c(cfg());
  IlOptions o;
  o.match.semantics = index::MatchSemantics::kAllTerms;
  StairsScheme scheme(c, o);
  EXPECT_EQ(scheme.designated_count(1), 1u);
  EXPECT_EQ(scheme.designated_count(5), 1u);
}

TEST(Stairs, DesignatedCountThresholdPigeonhole) {
  cluster::Cluster c(cfg());
  IlOptions o;
  o.match.semantics = index::MatchSemantics::kThreshold;
  o.match.threshold = 0.5;
  StairsScheme scheme(c, o);
  // |f|=4, needed=2 -> k=3; |f|=3, needed=2 -> k=2; |f|=1, needed=1 -> k=1.
  EXPECT_EQ(scheme.designated_count(4), 3u);
  EXPECT_EQ(scheme.designated_count(3), 2u);
  EXPECT_EQ(scheme.designated_count(1), 1u);
}

TEST(Stairs, DesignatedCountAnyTermDegeneratesToIl) {
  cluster::Cluster c(cfg());
  StairsScheme scheme(c);  // default kAnyTerm
  EXPECT_EQ(scheme.designated_count(3), 3u);
}

TEST(Stairs, CorrectUnderConjunctiveSemantics) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  IlOptions o;
  o.match.semantics = index::MatchSemantics::kAllTerms;
  StairsScheme scheme(c, o);
  scheme.register_filters(f.filters);
  for (std::size_t d = 0; d < f.docs.size(); ++d) {
    EXPECT_EQ(scheme.plan_publish(f.docs.row(d)).matches,
              index::brute_force_match(f.reference, f.docs.row(d), o.match))
        << "doc " << d;
  }
}

TEST(Stairs, CorrectUnderThresholdSemantics) {
  const auto& f = fx();
  for (double theta : {0.4, 0.6, 1.0}) {
    cluster::Cluster c(cfg());
    IlOptions o;
    o.match.semantics = index::MatchSemantics::kThreshold;
    o.match.threshold = theta;
    StairsScheme scheme(c, o);
    scheme.register_filters(f.filters);
    for (std::size_t d = 0; d < f.docs.size(); d += 5) {
      EXPECT_EQ(scheme.plan_publish(f.docs.row(d)).matches,
                index::brute_force_match(f.reference, f.docs.row(d), o.match))
          << "theta " << theta << " doc " << d;
    }
  }
}

TEST(Stairs, CorrectUnderAnyTermByDegeneration) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  StairsScheme scheme(c);
  scheme.register_filters(f.filters);
  for (std::size_t d = 0; d < f.docs.size(); d += 7) {
    EXPECT_EQ(scheme.plan_publish(f.docs.row(d)).matches,
              index::brute_force_match(f.reference, f.docs.row(d), {}));
  }
}

TEST(Stairs, StoresFewerCopiesThanIl) {
  const auto& f = fx();
  IlOptions o;
  o.match.semantics = index::MatchSemantics::kAllTerms;

  cluster::Cluster c_stairs(cfg()), c_il(cfg());
  StairsScheme stairs(c_stairs, o);
  IlScheme il(c_il, o);
  stairs.register_filters(f.filters);
  il.register_filters(f.filters);

  std::uint64_t stairs_copies = 0, il_copies = 0;
  for (auto v : stairs.storage_per_node()) stairs_copies += v;
  for (auto v : il.storage_per_node()) il_copies += v;
  // Conjunctive STAIRS registers one designated term per filter.
  EXPECT_EQ(stairs.registrations(), f.filters.size());
  EXPECT_LT(stairs_copies, il_copies);
}

TEST(Stairs, RegistrationsShrinkWithTheta) {
  const auto& f = fx();
  std::uint64_t regs_low = 0, regs_high = 0;
  for (auto [theta, out] :
       {std::pair{0.3, &regs_low}, std::pair{1.0, &regs_high}}) {
    cluster::Cluster c(cfg());
    IlOptions o;
    o.match.semantics = index::MatchSemantics::kThreshold;
    o.match.threshold = theta;
    StairsScheme scheme(c, o);
    scheme.register_filters(f.filters);
    *out = scheme.registrations();
  }
  // Higher theta -> fewer designated terms -> fewer registrations.
  EXPECT_LT(regs_high, regs_low);
}

TEST(Stairs, RebuildKeepsSelectiveRegistration) {
  const auto& f = fx();
  cluster::Cluster c(cfg());
  IlOptions o;
  o.match.semantics = index::MatchSemantics::kAllTerms;
  StairsScheme scheme(c, o);
  scheme.register_filters(f.filters);
  c.add_node();
  scheme.rebuild();
  EXPECT_EQ(scheme.registrations(), f.filters.size());
  for (std::size_t d = 0; d < f.docs.size(); d += 9) {
    EXPECT_EQ(scheme.plan_publish(f.docs.row(d)).matches,
              index::brute_force_match(f.reference, f.docs.row(d), o.match));
  }
}

}  // namespace
}  // namespace move::core
