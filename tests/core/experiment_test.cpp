#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "core/il_scheme.hpp"
#include "core/move_scheme.hpp"
#include "core/rs_scheme.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "common/stats.hpp"
#include "workload/trace_stats.hpp"

namespace move::core {
namespace {

constexpr std::size_t kVocab = 2'000;

struct Fixture {
  Fixture() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = 3'000;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 50;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    docs = workload::CorpusGenerator(ccfg).generate(150);
    filter_stats = workload::compute_stats(filters, kVocab);
    corpus_stats = workload::compute_stats(docs, kVocab);
  }
  workload::TermSetTable filters, docs;
  workload::TraceStats filter_stats, corpus_stats;
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

cluster::ClusterConfig cfg(std::size_t n = 10) {
  cluster::ClusterConfig c;
  c.num_nodes = n;
  c.num_racks = 2;
  return c;
}

TEST(RunDissemination, CompletesEveryDocument) {
  const auto& f = fixture();
  cluster::Cluster c(cfg());
  IlScheme scheme(c);
  scheme.register_filters(f.filters);
  const auto metrics = run_dissemination(scheme, f.docs);
  EXPECT_EQ(metrics.documents_published, f.docs.size());
  EXPECT_EQ(metrics.documents_completed, f.docs.size());
  EXPECT_GT(metrics.makespan_us, 0.0);
  EXPECT_GT(metrics.throughput_per_sec(), 0.0);
  EXPECT_EQ(metrics.latencies_us.size(), f.docs.size());
}

TEST(RunDissemination, NotificationsMatchBruteForceTotal) {
  const auto& f = fixture();
  cluster::Cluster c_il(cfg()), c_rs(cfg());
  IlScheme il(c_il);
  RsScheme rs(c_rs);
  il.register_filters(f.filters);
  rs.register_filters(f.filters);
  const auto m_il = run_dissemination(il, f.docs);
  const auto m_rs = run_dissemination(rs, f.docs);
  // Same workload, same semantics -> identical notification totals.
  EXPECT_EQ(m_il.notifications, m_rs.notifications);
  EXPECT_GT(m_il.notifications, 0u);
}

TEST(RunDissemination, PerNodeVectorsSized) {
  const auto& f = fixture();
  cluster::Cluster c(cfg(7));
  IlScheme scheme(c);
  scheme.register_filters(f.filters);
  const auto m = run_dissemination(scheme, f.docs);
  EXPECT_EQ(m.node_busy_us.size(), 7u);
  EXPECT_EQ(m.node_docs.size(), 7u);
  EXPECT_EQ(m.node_storage.size(), 7u);
  double busy = 0;
  for (double b : m.node_busy_us) busy += b;
  EXPECT_GT(busy, 0.0);
}

TEST(RunDissemination, LatencyCollectionToggle) {
  const auto& f = fixture();
  cluster::Cluster c(cfg());
  IlScheme scheme(c);
  scheme.register_filters(f.filters);
  RunConfig rc;
  rc.collect_latencies = false;
  const auto m = run_dissemination(scheme, f.docs, rc);
  EXPECT_TRUE(m.latencies_us.empty());
  EXPECT_EQ(m.documents_completed, f.docs.size());
}

TEST(RunDissemination, SlowerInjectionLowersThroughputPressure) {
  const auto& f = fixture();
  cluster::Cluster c1(cfg()), c2(cfg());
  IlScheme s1(c1), s2(c2);
  s1.register_filters(f.filters);
  s2.register_filters(f.filters);
  RunConfig fast, slow;
  fast.inject_rate_per_sec = 100'000.0;
  slow.inject_rate_per_sec = 50.0;
  const auto mf = run_dissemination(s1, f.docs, fast);
  const auto ms = run_dissemination(s2, f.docs, slow);
  // At 50 docs/s the makespan is dominated by injection (3 s for 150 docs);
  // mean latency must be far lower than in the saturated fast run.
  EXPECT_GT(ms.makespan_us, mf.makespan_us);
  EXPECT_LE(ms.mean_latency_us(), mf.mean_latency_us());
}

/// Saturation workload for the comparative tests: the paper measures
/// *capacity* (clients are added until the cluster saturates), so the
/// offered rate must exceed what the bottleneck node can absorb, and P must
/// be large enough that posting-list scans (not fixed seeks) dominate the
/// hot nodes' service time.
struct SaturationFixture {
  SaturationFixture() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = 12'000;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 50;
    filters = workload::QueryTraceGenerator(qcfg).generate();
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    docs = workload::CorpusGenerator(ccfg).generate(400);
    filter_stats = workload::compute_stats(filters, kVocab);
    corpus_stats = workload::compute_stats(docs, kVocab);
  }
  workload::TermSetTable filters, docs;
  workload::TraceStats filter_stats, corpus_stats;

  // Paper ratio: budget N*C = 15 * P (N=20, C=3e6, P=4e6).
  static MoveOptions move_options(std::size_t nodes, std::size_t filters) {
    MoveOptions mo;
    mo.capacity = 15.0 * static_cast<double>(filters) /
                  static_cast<double>(nodes);
    return mo;
  }
  static RunConfig saturating() {
    RunConfig rc;
    rc.inject_rate_per_sec = 100'000.0;
    return rc;
  }
};

const SaturationFixture& saturation_fixture() {
  static const SaturationFixture f;
  return f;
}

TEST(RunDissemination, MoveBeatsIlOnSkewedLoad) {
  // The paper's core claim, in miniature: with skewed p and q, allocation
  // raises saturated throughput over the plain distributed inverted list.
  const auto& f = saturation_fixture();
  cluster::Cluster c_il(cfg(16)), c_mv(cfg(16));
  IlScheme il(c_il);
  MoveScheme mv(c_mv, SaturationFixture::move_options(16, f.filters.size()));
  il.register_filters(f.filters);
  mv.register_filters(f.filters);
  mv.allocate(f.filter_stats, f.corpus_stats);
  const auto m_il =
      run_dissemination(il, f.docs, SaturationFixture::saturating());
  const auto m_mv =
      run_dissemination(mv, f.docs, SaturationFixture::saturating());
  EXPECT_GT(m_mv.throughput_per_sec(), m_il.throughput_per_sec());
}

TEST(RunDissemination, MoveBalancesMatchingLoad) {
  const auto& f = saturation_fixture();
  cluster::Cluster c_il(cfg(16)), c_mv(cfg(16));
  IlScheme il(c_il);
  MoveScheme mv(c_mv, SaturationFixture::move_options(16, f.filters.size()));
  il.register_filters(f.filters);
  mv.register_filters(f.filters);
  mv.allocate(f.filter_stats, f.corpus_stats);
  const auto m_il =
      run_dissemination(il, f.docs, SaturationFixture::saturating());
  const auto m_mv =
      run_dissemination(mv, f.docs, SaturationFixture::saturating());
  EXPECT_LT(common::gini(m_mv.matching_cost()),
            common::gini(m_il.matching_cost()));
}

TEST(RunDissemination, SurvivesNodeFailures) {
  const auto& f = fixture();
  cluster::Cluster c(cfg(10));
  MoveOptions mo;
  mo.capacity = 2'000;
  MoveScheme scheme(c, mo);
  scheme.register_filters(f.filters);
  scheme.allocate(f.filter_stats, f.corpus_stats);
  common::SplitMix64 rng(191);
  c.fail_fraction(0.3, rng);
  const auto m = run_dissemination(scheme, f.docs);
  // Every document still completes (possibly with fewer matches).
  EXPECT_EQ(m.documents_completed, f.docs.size());
  EXPECT_LE(scheme.filter_availability(), 1.0);
  EXPECT_GT(scheme.filter_availability(), 0.5);
}

TEST(RunDissemination, EmptyDocSetIsHarmless) {
  const auto& f = fixture();
  cluster::Cluster c(cfg());
  IlScheme scheme(c);
  scheme.register_filters(f.filters);
  workload::TermSetTable empty;
  const auto m = run_dissemination(scheme, empty);
  EXPECT_EQ(m.documents_published, 0u);
  EXPECT_EQ(m.documents_completed, 0u);
  EXPECT_EQ(m.throughput_per_sec(), 0.0);
}

TEST(RunDissemination, DocWithUnknownTermsCompletesInstantly) {
  const auto& f = fixture();
  cluster::Cluster c(cfg());
  IlScheme scheme(c);
  scheme.register_filters(f.filters);
  workload::TermSetTable docs;
  std::vector<TermId> alien{TermId{kVocab + 100}, TermId{kVocab + 101}};
  docs.add(alien);
  const auto m = run_dissemination(scheme, docs);
  EXPECT_EQ(m.documents_completed, 1u);
  EXPECT_EQ(m.notifications, 0u);
}

}  // namespace
}  // namespace move::core
