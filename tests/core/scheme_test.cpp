#include <gtest/gtest.h>

#include <memory>

#include "core/il_scheme.hpp"
#include "core/move_scheme.hpp"
#include "core/rs_scheme.hpp"
#include "index/brute_force.hpp"
#include "index/filter_store.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "common/stats.hpp"
#include "workload/trace_stats.hpp"

namespace move::core {
namespace {

constexpr std::size_t kVocab = 2'000;
constexpr std::size_t kFilters = 4'000;
constexpr std::size_t kDocs = 120;

/// Shared workload + ground truth for all scheme correctness tests.
class SchemeWorkload {
 public:
  SchemeWorkload() {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = kFilters;
    qcfg.vocabulary_size = kVocab;
    qcfg.head_count = 50;
    filters_ = workload::QueryTraceGenerator(qcfg).generate();

    auto ccfg = workload::CorpusConfig::trec_wt_like(0.001, kVocab);
    ccfg.head_count = 50;
    docs_ = workload::CorpusGenerator(ccfg).generate(kDocs);

    for (std::size_t i = 0; i < filters_.size(); ++i) {
      reference_.add(filters_.row(i));
    }
    filter_stats_ = workload::compute_stats(filters_, kVocab);
    corpus_stats_ = workload::compute_stats(docs_, kVocab);
  }

  std::vector<FilterId> truth(std::size_t doc,
                              const index::MatchOptions& opt = {}) const {
    return index::brute_force_match(reference_, docs_.row(doc), opt);
  }

  workload::TermSetTable filters_;
  workload::TermSetTable docs_;
  index::FilterStore reference_;
  workload::TraceStats filter_stats_;
  workload::TraceStats corpus_stats_;
};

const SchemeWorkload& shared_workload() {
  static const SchemeWorkload w;
  return w;
}

cluster::ClusterConfig small_cluster() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 12;
  cfg.num_racks = 3;
  return cfg;
}

MoveOptions small_move_options() {
  MoveOptions o;
  // Capacity scaled to the test trace: P=4000 over 12 nodes.
  o.capacity = 1'500;
  return o;
}

TEST(IlScheme, MatchesBruteForceOnEveryDocument) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  IlScheme scheme(c);
  scheme.register_filters(w.filters_);
  for (std::size_t d = 0; d < w.docs_.size(); ++d) {
    const auto plan = scheme.plan_publish(w.docs_.row(d));
    EXPECT_EQ(plan.matches, w.truth(d)) << "doc " << d;
  }
}

TEST(RsScheme, MatchesBruteForceOnEveryDocument) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  RsScheme scheme(c);
  scheme.register_filters(w.filters_);
  for (std::size_t d = 0; d < w.docs_.size(); ++d) {
    const auto plan = scheme.plan_publish(w.docs_.row(d));
    EXPECT_EQ(plan.matches, w.truth(d)) << "doc " << d;
  }
}

TEST(MoveScheme, MatchesBruteForceWithoutAllocation) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  MoveScheme scheme(c, small_move_options());
  scheme.register_filters(w.filters_);
  for (std::size_t d = 0; d < w.docs_.size(); ++d) {
    const auto plan = scheme.plan_publish(w.docs_.row(d));
    EXPECT_EQ(plan.matches, w.truth(d)) << "doc " << d;
  }
}

TEST(MoveScheme, MatchesBruteForceAfterAllocation) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  MoveScheme scheme(c, small_move_options());
  scheme.register_filters(w.filters_);
  scheme.allocate(w.filter_stats_, w.corpus_stats_);
  for (std::size_t d = 0; d < w.docs_.size(); ++d) {
    const auto plan = scheme.plan_publish(w.docs_.row(d));
    EXPECT_EQ(plan.matches, w.truth(d)) << "doc " << d;
  }
}

TEST(MoveScheme, MatchesBruteForceWithPerTermTables) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  auto opts = small_move_options();
  opts.per_node_aggregation = false;
  MoveScheme scheme(c, opts);
  scheme.register_filters(w.filters_);
  scheme.allocate(w.filter_stats_, w.corpus_stats_);
  EXPECT_FALSE(scheme.term_tables().empty());
  for (std::size_t d = 0; d < w.docs_.size(); ++d) {
    const auto plan = scheme.plan_publish(w.docs_.row(d));
    EXPECT_EQ(plan.matches, w.truth(d)) << "doc " << d;
  }
}

TEST(MoveScheme, MatchesBruteForceUnderEveryPlacement) {
  const auto& w = shared_workload();
  for (auto placement :
       {kv::PlacementPolicy::kRingSuccessors, kv::PlacementPolicy::kRackAware,
        kv::PlacementPolicy::kHybrid}) {
    cluster::Cluster c(small_cluster());
    auto opts = small_move_options();
    opts.placement = placement;
    MoveScheme scheme(c, opts);
    scheme.register_filters(w.filters_);
    scheme.allocate(w.filter_stats_, w.corpus_stats_);
    for (std::size_t d = 0; d < w.docs_.size(); d += 7) {
      EXPECT_EQ(scheme.plan_publish(w.docs_.row(d)).matches, w.truth(d));
    }
  }
}

TEST(MoveScheme, MatchesBruteForceUnderEveryFactorRule) {
  const auto& w = shared_workload();
  for (auto rule : {FactorRule::kTheorem1SqrtQ, FactorRule::kTheorem2SqrtBetaQ,
                    FactorRule::kGeneralSqrtPQ}) {
    cluster::Cluster c(small_cluster());
    auto opts = small_move_options();
    opts.rule = rule;
    MoveScheme scheme(c, opts);
    scheme.register_filters(w.filters_);
    scheme.allocate(w.filter_stats_, w.corpus_stats_);
    for (std::size_t d = 0; d < w.docs_.size(); d += 7) {
      EXPECT_EQ(scheme.plan_publish(w.docs_.row(d)).matches, w.truth(d));
    }
  }
}

class SemanticsParam
    : public ::testing::TestWithParam<index::MatchOptions> {};

TEST_P(SemanticsParam, AllSchemesAgreeWithBruteForce) {
  const auto& w = shared_workload();
  const auto opt = GetParam();

  cluster::Cluster c_il(small_cluster()), c_rs(small_cluster()),
      c_mv(small_cluster());
  IlScheme il(c_il, IlOptions{opt, true, 0.01, 1});
  RsScheme rs(c_rs, RsOptions{opt, 3, 2});
  auto mopts = small_move_options();
  mopts.match = opt;
  MoveScheme mv(c_mv, mopts);
  il.register_filters(w.filters_);
  rs.register_filters(w.filters_);
  mv.register_filters(w.filters_);
  mv.allocate(w.filter_stats_, w.corpus_stats_);

  for (std::size_t d = 0; d < w.docs_.size(); d += 5) {
    const auto expected = w.truth(d, opt);
    EXPECT_EQ(il.plan_publish(w.docs_.row(d)).matches, expected);
    EXPECT_EQ(rs.plan_publish(w.docs_.row(d)).matches, expected);
    EXPECT_EQ(mv.plan_publish(w.docs_.row(d)).matches, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AcrossSemantics, SemanticsParam,
    ::testing::Values(
        index::MatchOptions{index::MatchSemantics::kAnyTerm, 0.0},
        index::MatchOptions{index::MatchSemantics::kAllTerms, 0.0},
        index::MatchOptions{index::MatchSemantics::kThreshold, 0.5},
        index::MatchOptions{index::MatchSemantics::kThreshold, 1.0}));

TEST(IlScheme, BloomOffStillCorrect) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  IlOptions o;
  o.use_bloom = false;
  IlScheme scheme(c, o);
  scheme.register_filters(w.filters_);
  EXPECT_EQ(scheme.bloom(), nullptr);
  for (std::size_t d = 0; d < w.docs_.size(); d += 11) {
    EXPECT_EQ(scheme.plan_publish(w.docs_.row(d)).matches, w.truth(d));
  }
}

TEST(RsScheme, StorageIsEvenAcrossNodes) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  RsScheme scheme(c);
  scheme.register_filters(w.filters_);
  const auto storage = scheme.storage_per_node();
  std::vector<double> s(storage.begin(), storage.end());
  EXPECT_LT(common::peak_to_mean(s), 1.6);
  // 3 replicas of every filter.
  std::uint64_t total = 0;
  for (auto v : storage) total += v;
  EXPECT_EQ(total, w.filters_.size() * 3);
}

TEST(IlScheme, StorageIsSkewedByPopularity) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  IlScheme scheme(c);
  scheme.register_filters(w.filters_);
  std::vector<double> s;
  for (auto v : scheme.storage_per_node()) s.push_back(static_cast<double>(v));
  // Skewed term popularity concentrates filters on a few home nodes.
  EXPECT_GT(common::peak_to_mean(s), 1.5);
}

TEST(MoveScheme, AllocationAddsBoundedCopies) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  MoveScheme scheme(c, small_move_options());
  scheme.register_filters(w.filters_);
  std::uint64_t before = 0;
  for (auto v : scheme.storage_per_node()) before += v;
  scheme.allocate(w.filter_stats_, w.corpus_stats_);
  std::uint64_t after = 0;
  for (auto v : scheme.storage_per_node()) after += v;
  EXPECT_GT(after, before);  // replication happened
  // Total stays within the cluster budget N*C plus the IL originals.
  EXPECT_LE(after, before + static_cast<std::uint64_t>(
                                12 * small_move_options().capacity * 1.3));
}

TEST(MoveScheme, FullAvailabilityWithoutFailures) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  MoveScheme scheme(c, small_move_options());
  scheme.register_filters(w.filters_);
  EXPECT_DOUBLE_EQ(scheme.filter_availability(), 1.0);
}

TEST(MoveScheme, AllocateBeforeRegisterThrows) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  MoveScheme scheme(c, small_move_options());
  EXPECT_THROW(scheme.allocate(w.filter_stats_, w.corpus_stats_),
               std::logic_error);
  EXPECT_THROW(scheme.allocate_from_observed(), std::logic_error);
}

TEST(MoveScheme, PassiveAllocationFromObservedTraffic) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  MoveScheme scheme(c, small_move_options());
  scheme.register_filters(w.filters_);
  // Let some documents flow to populate the meta stores, then allocate.
  for (std::size_t d = 0; d < 40; ++d) scheme.plan_publish(w.docs_.row(d));
  scheme.allocate_from_observed();
  bool any_table = false;
  for (const auto& t : scheme.tables()) any_table |= t.has_value();
  EXPECT_TRUE(any_table);
  for (std::size_t d = 40; d < w.docs_.size(); d += 5) {
    EXPECT_EQ(scheme.plan_publish(w.docs_.row(d)).matches, w.truth(d));
  }
}

TEST(MoveScheme, TwoHopPlansForAllocatedHomes) {
  const auto& w = shared_workload();
  cluster::Cluster c(small_cluster());
  MoveScheme scheme(c, small_move_options());
  scheme.register_filters(w.filters_);
  scheme.allocate(w.filter_stats_, w.corpus_stats_);
  bool saw_two_hop = false;
  for (std::size_t d = 0; d < w.docs_.size(); ++d) {
    for (const auto& hop : scheme.plan_publish(w.docs_.row(d)).hops) {
      saw_two_hop |= !hop.then.empty();
    }
  }
  EXPECT_TRUE(saw_two_hop);
}

}  // namespace
}  // namespace move::core
