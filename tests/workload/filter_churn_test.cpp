#include "workload/filter_churn.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "workload/query_trace.hpp"

namespace move::workload {
namespace {

TermSetTable small_pool(std::size_t rows, std::uint64_t seed = 0x5eed) {
  auto cfg = QueryTraceConfig::msn_like(0.01);
  cfg.num_filters = rows;
  cfg.seed = seed;
  return QueryTraceGenerator(cfg).generate(rows);
}

TEST(FilterChurnStream, BootstrapRegistersInitialLiveInOrder) {
  FilterChurnConfig cfg;
  cfg.initial_live = 16;
  FilterChurnStream stream(small_pool(64), cfg);
  for (std::uint32_t i = 0; i < 16; ++i) {
    const ChurnOp op = stream.next();
    EXPECT_EQ(op.kind, ChurnOpKind::kRegister);
    EXPECT_EQ(op.row, i);
    EXPECT_TRUE(stream.is_live(i));
  }
  EXPECT_EQ(stream.live_count(), 16u);
}

TEST(FilterChurnStream, OpsAreAlwaysValidAgainstLiveness) {
  // Replay the stream against an independent shadow of the live set: every
  // op must be consistent (register a dead row, unregister/edit a live one,
  // edit's replacement dead and distinct) — consumers never skip ops.
  FilterChurnConfig cfg;
  cfg.initial_live = 32;
  FilterChurnStream stream(small_pool(128), cfg);
  std::unordered_set<std::uint32_t> live;
  for (int i = 0; i < 5000; ++i) {
    const ChurnOp op = stream.next();
    switch (op.kind) {
      case ChurnOpKind::kRegister:
        ASSERT_EQ(live.count(op.row), 0u) << "re-registered live row";
        live.insert(op.row);
        break;
      case ChurnOpKind::kUnregister:
        ASSERT_EQ(live.count(op.row), 1u) << "unregistered dead row";
        live.erase(op.row);
        break;
      case ChurnOpKind::kEdit:
        ASSERT_EQ(live.count(op.row), 1u) << "edited dead row";
        ASSERT_EQ(live.count(op.new_row), 0u) << "edit claimed live row";
        ASSERT_NE(op.row, op.new_row);
        live.erase(op.row);
        live.insert(op.new_row);
        break;
    }
    // The stream's own bookkeeping must agree with the shadow.
    ASSERT_EQ(stream.live_count(), live.size());
    ASSERT_TRUE(stream.is_live(op.kind == ChurnOpKind::kEdit ? op.new_row
                                                             : op.row) ==
                (op.kind != ChurnOpKind::kUnregister));
  }
  EXPECT_EQ(stream.ops_emitted(), 5000u);
}

TEST(FilterChurnStream, SameSeedSameOps) {
  FilterChurnConfig cfg;
  cfg.initial_live = 8;
  cfg.seed = 0xabcdef;
  FilterChurnStream a(small_pool(64), cfg);
  FilterChurnStream b(small_pool(64), cfg);
  for (int i = 0; i < 2000; ++i) {
    const ChurnOp oa = a.next();
    const ChurnOp ob = b.next();
    ASSERT_EQ(oa.kind, ob.kind) << "op " << i;
    ASSERT_EQ(oa.row, ob.row) << "op " << i;
    ASSERT_EQ(oa.new_row, ob.new_row) << "op " << i;
  }
  // A different seed must diverge (a and b consumed their streams above, so
  // rebuild the reference stream from scratch).
  FilterChurnConfig other = cfg;
  other.seed = 0xabcdee;
  FilterChurnStream c(small_pool(64), other);
  FilterChurnStream a2(small_pool(64), cfg);
  bool diverged = false;
  for (int i = 0; i < 2000 && !diverged; ++i) {
    const ChurnOp oc = c.next();
    const ChurnOp oa = a2.next();
    diverged = oc.kind != oa.kind || oc.row != oa.row;
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical streams";
}

TEST(FilterChurnStream, RegisterOnlyMixDrainsThePoolThenFallsBack) {
  // All weight on register: once the pool is exhausted the deterministic
  // fallback converts the draw to an unregister instead of failing.
  FilterChurnConfig cfg;
  cfg.initial_live = 4;
  cfg.register_weight = 1.0;
  cfg.unregister_weight = 0.0;
  cfg.edit_weight = 0.0;
  FilterChurnStream stream(small_pool(12), cfg);
  std::size_t registers = 0, unregisters = 0;
  for (int i = 0; i < 40; ++i) {
    const ChurnOp op = stream.next();
    if (op.kind == ChurnOpKind::kRegister) ++registers;
    if (op.kind == ChurnOpKind::kUnregister) ++unregisters;
  }
  EXPECT_GT(unregisters, 0u) << "no fallback when the pool drained";
  EXPECT_GT(registers, 12u - 4u);
  EXPECT_LE(stream.live_count(), 12u);
}

TEST(FilterChurnStream, UnregisterOnlyMixEmptiesThenFallsBack) {
  FilterChurnConfig cfg;
  cfg.initial_live = 4;
  cfg.register_weight = 0.0;
  cfg.unregister_weight = 1.0;
  cfg.edit_weight = 0.0;
  FilterChurnStream stream(small_pool(12), cfg);
  std::size_t registers = 0;
  for (int i = 0; i < 40; ++i) {
    if (stream.next().kind == ChurnOpKind::kRegister) ++registers;
  }
  EXPECT_GT(registers, 0u) << "no fallback when nothing was live";
}

TEST(FilterChurnStream, RejectsBadConfig) {
  {  // pool too small for initial_live + 1
    FilterChurnConfig cfg;
    cfg.initial_live = 12;
    EXPECT_THROW(FilterChurnStream(small_pool(12), cfg),
                 std::invalid_argument);
  }
  {  // all-zero weights
    FilterChurnConfig cfg;
    cfg.initial_live = 2;
    cfg.register_weight = 0.0;
    cfg.unregister_weight = 0.0;
    cfg.edit_weight = 0.0;
    EXPECT_THROW(FilterChurnStream(small_pool(12), cfg),
                 std::invalid_argument);
  }
}

TEST(FilterChurnStream, RowAccessorServesLiveAndDeadRows) {
  auto pool = small_pool(32);
  FilterChurnConfig cfg;
  cfg.initial_live = 8;
  FilterChurnStream stream(pool, cfg);
  for (int i = 0; i < 200; ++i) (void)stream.next();
  for (std::uint32_t r = 0; r < 32; ++r) {
    EXPECT_EQ(stream.row(r).size(), pool.row(r).size());
  }
}

}  // namespace
}  // namespace move::workload
