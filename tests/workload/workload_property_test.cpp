// Cross-cutting workload properties: prefix stability (a shorter generation
// is a prefix of a longer one — the guarantee benches rely on when they
// subset traces), vocabulary bounds, and text-pipeline fuzzing.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "text/pipeline.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"

namespace move::workload {
namespace {

TEST(PrefixStability, QueryTrace) {
  QueryTraceConfig cfg;
  cfg.num_filters = 400;
  cfg.vocabulary_size = 900;
  const QueryTraceGenerator gen(cfg);
  const auto shorter = gen.generate(150);
  const auto longer = gen.generate(400);
  ASSERT_EQ(shorter.size(), 150u);
  for (std::size_t i = 0; i < shorter.size(); ++i) {
    const auto a = shorter.row(i), b = longer.row(i);
    ASSERT_EQ(a.size(), b.size()) << "row " << i;
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  }
}

TEST(PrefixStability, Corpus) {
  auto cfg = CorpusConfig::trec_wt_like(0.001, 2'000);
  const CorpusGenerator gen(cfg);
  const auto shorter = gen.generate(50);
  const auto longer = gen.generate(200);
  for (std::size_t i = 0; i < shorter.size(); ++i) {
    const auto a = shorter.row(i), b = longer.row(i);
    ASSERT_EQ(a.size(), b.size()) << "row " << i;
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  }
}

TEST(VocabularyBounds, AllTermIdsWithinUniverse) {
  QueryTraceConfig qcfg;
  qcfg.num_filters = 2'000;
  qcfg.vocabulary_size = 777;
  const auto filters = QueryTraceGenerator(qcfg).generate();
  for (std::size_t i = 0; i < filters.size(); ++i) {
    for (TermId t : filters.row(i)) EXPECT_LT(t.value, 777u);
  }
  auto ccfg = CorpusConfig::trec_wt_like(0.001, 777);
  const auto docs = CorpusGenerator(ccfg).generate(300);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    for (TermId t : docs.row(i)) EXPECT_LT(t.value, 777u);
  }
}

TEST(PipelineFuzz, RandomBytesNeverCrashAndAlwaysNormalize) {
  text::Vocabulary vocab;
  text::Pipeline pipeline(vocab);
  common::SplitMix64 rng(0xf022);
  std::string input;
  for (int trial = 0; trial < 300; ++trial) {
    const auto len = common::uniform_below(rng, 200);
    input.clear();
    for (std::uint64_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(common::uniform_below(rng, 256)));
    }
    const auto ids = pipeline.process(input);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
    for (TermId t : ids) EXPECT_LT(t.value, vocab.size());
  }
}

TEST(PipelineFuzz, ProcessReadonlyIsSubsetOfProcess) {
  text::Vocabulary vocab;
  text::Pipeline pipeline(vocab);
  pipeline.process("seed words shared by every later document");
  common::SplitMix64 rng(0xf023);
  const char* words[] = {"seed", "words", "shared", "brand", "new", "zq1x"};
  for (int trial = 0; trial < 100; ++trial) {
    std::string input;
    const auto n = 1 + common::uniform_below(rng, 6);
    for (std::uint64_t i = 0; i < n; ++i) {
      input += words[common::uniform_below(rng, 6)];
      input += ' ';
    }
    const auto ro = pipeline.process_readonly(input);
    for (TermId t : ro) {
      EXPECT_LT(t.value, vocab.size());
    }
  }
}

TEST(ZipfVocabularyScaling, MeanRowSizeStableAcrossVocab) {
  // The length model is independent of vocabulary size.
  for (std::size_t vocab : {500u, 5'000u, 50'000u}) {
    QueryTraceConfig cfg;
    cfg.num_filters = 5'000;
    cfg.vocabulary_size = vocab;
    cfg.head_count = std::min<std::size_t>(100, vocab / 10);
    const auto trace = QueryTraceGenerator(cfg).generate();
    EXPECT_NEAR(trace.mean_row_size(), 2.843, 0.15) << "vocab " << vocab;
  }
}

}  // namespace
}  // namespace move::workload
