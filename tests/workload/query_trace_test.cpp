#include "workload/query_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/trace_stats.hpp"

namespace move::workload {
namespace {

QueryTraceConfig small_config() {
  QueryTraceConfig cfg;
  cfg.num_filters = 20'000;
  cfg.vocabulary_size = 5'000;
  cfg.head_count = 100;
  cfg.head_mass = 0.437;
  return cfg;
}

TEST(FitZipfHeadMass, HitsTarget) {
  const double s = fit_zipf_head_mass(10'000, 100, 0.437);
  // Verify by direct summation.
  double head = 0, total = 0;
  for (std::size_t k = 1; k <= 10'000; ++k) {
    const double w = std::pow(static_cast<double>(k), -s);
    total += w;
    if (k <= 100) head += w;
  }
  EXPECT_NEAR(head / total, 0.437, 0.005);
}

TEST(FitZipfHeadMass, MoreMassNeedsMoreSkew) {
  EXPECT_GT(fit_zipf_head_mass(10'000, 100, 0.6),
            fit_zipf_head_mass(10'000, 100, 0.3));
}

TEST(QueryTraceGenerator, RejectsEmptyConfig) {
  QueryTraceConfig cfg;
  cfg.num_filters = 0;
  EXPECT_THROW(QueryTraceGenerator{cfg}, std::invalid_argument);
}

TEST(QueryTraceGenerator, GeneratesRequestedCount) {
  const QueryTraceGenerator gen(small_config());
  const auto trace = gen.generate(1'000);
  EXPECT_EQ(trace.size(), 1'000u);
}

TEST(QueryTraceGenerator, RowsAreSortedDedupedNonEmpty) {
  const QueryTraceGenerator gen(small_config());
  const auto trace = gen.generate(2'000);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto row = trace.row(i);
    ASSERT_FALSE(row.empty());
    for (std::size_t j = 1; j < row.size(); ++j) {
      EXPECT_LT(row[j - 1], row[j]);
    }
  }
}

TEST(QueryTraceGenerator, DeterministicForSameSeed) {
  const QueryTraceGenerator gen(small_config());
  const auto a = gen.generate(500);
  const auto b = gen.generate(500);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t j = 0; j < ra.size(); ++j) EXPECT_EQ(ra[j], rb[j]);
  }
}

TEST(QueryTraceGenerator, SeedChangesTrace) {
  auto cfg = small_config();
  const auto a = QueryTraceGenerator(cfg).generate(100);
  cfg.seed ^= 1;
  const auto b = QueryTraceGenerator(cfg).generate(100);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    differing += ra.size() != rb.size() ||
                 !std::equal(ra.begin(), ra.end(), rb.begin());
  }
  EXPECT_GT(differing, 50u);
}

TEST(QueryTraceGenerator, MeanTermsMatchesPublished) {
  // Published MSN statistic: 2.843 terms per query.
  const QueryTraceGenerator gen(small_config());
  const auto trace = gen.generate(30'000);
  EXPECT_NEAR(trace.mean_row_size(), 2.843, 0.08);
}

TEST(QueryTraceGenerator, LengthCdfMatchesPublished) {
  // Published: <=1 31.33%, <=2 67.75%, <=3 85.31%.
  const QueryTraceGenerator gen(small_config());
  const auto trace = gen.generate(30'000);
  const auto hist = row_size_histogram(trace);
  const double n = static_cast<double>(trace.size());
  auto cdf = [&](std::size_t len) {
    double c = 0;
    for (std::size_t l = 0; l <= len && l < hist.size(); ++l) c += hist[l];
    return c / n;
  };
  EXPECT_NEAR(cdf(1), 0.3133, 0.02);
  EXPECT_NEAR(cdf(2), 0.6775, 0.02);
  EXPECT_NEAR(cdf(3), 0.8531, 0.02);
}

TEST(QueryTraceGenerator, HeadMassMatchesFigure4) {
  const auto cfg = small_config();
  const QueryTraceGenerator gen(cfg);
  const auto trace = gen.generate(40'000);
  const auto stats = compute_stats(trace, cfg.vocabulary_size);
  // Popularity concentrated as in Fig. 4: top-100 of 5000 terms carries
  // roughly the fitted 0.437 of occurrence mass.
  EXPECT_NEAR(stats.head_mass(cfg.head_count), 0.437, 0.05);
}

TEST(QueryTraceGenerator, PopularityIsSkewed) {
  const auto cfg = small_config();
  const QueryTraceGenerator gen(cfg);
  const auto stats = compute_stats(gen.generate(20'000), cfg.vocabulary_size);
  const auto ranked = stats.ranked();
  ASSERT_GT(ranked.size(), 100u);
  EXPECT_GT(ranked[0] / ranked[99], 10.0);  // head >> rank-100
}

TEST(QueryTraceConfigMsnLike, ScalesJointly) {
  const auto full = QueryTraceConfig::msn_like(1.0);
  const auto tenth = QueryTraceConfig::msn_like(0.1);
  EXPECT_EQ(full.num_filters, 4'000'000u);
  EXPECT_EQ(full.vocabulary_size, 757'996u);
  EXPECT_NEAR(static_cast<double>(tenth.num_filters) / full.num_filters, 0.1,
              0.01);
  EXPECT_THROW(QueryTraceConfig::msn_like(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace move::workload
