#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/query_trace.hpp"

namespace move::workload {
namespace {

TermSetTable sample_table() {
  QueryTraceConfig cfg;
  cfg.num_filters = 500;
  cfg.vocabulary_size = 800;
  return QueryTraceGenerator(cfg).generate();
}

void expect_equal(const TermSetTable& a, const TermSetTable& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.total_terms(), b.total_terms());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    ASSERT_EQ(ra.size(), rb.size()) << "row " << i;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j], rb[j]);
    }
  }
}

TEST(TraceIo, RoundTripsThroughStream) {
  const auto table = sample_table();
  std::stringstream buf;
  save_table(table, buf);
  expect_equal(table, load_table(buf));
}

TEST(TraceIo, RoundTripsEmptyTable) {
  TermSetTable empty;
  std::stringstream buf;
  save_table(empty, buf);
  const auto back = load_table(buf);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.total_terms(), 0u);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOPE-this-is-not-a-trace";
  EXPECT_THROW((void)load_table(buf), std::runtime_error);
}

TEST(TraceIo, RejectsTruncation) {
  const auto table = sample_table();
  std::stringstream buf;
  save_table(table, buf);
  const std::string whole = buf.str();
  for (std::size_t cut : {whole.size() / 4, whole.size() / 2,
                          whole.size() - 3}) {
    std::stringstream cut_buf(whole.substr(0, cut));
    EXPECT_THROW((void)load_table(cut_buf), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(TraceIo, RejectsWrongVersion) {
  const auto table = sample_table();
  std::stringstream buf;
  save_table(table, buf);
  std::string bytes = buf.str();
  bytes[4] = 99;  // version field follows the 4-byte magic
  std::stringstream bad(bytes);
  EXPECT_THROW((void)load_table(bad), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const auto table = sample_table();
  const std::string path = ::testing::TempDir() + "/move_trace_io_test.bin";
  save_table_file(table, path);
  expect_equal(table, load_table_file(path));
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_table_file("/nonexistent/move/trace.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace move::workload
