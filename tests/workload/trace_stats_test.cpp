#include "workload/trace_stats.hpp"

#include <gtest/gtest.h>

namespace move::workload {
namespace {

TermSetTable make_table() {
  // Rows over universe {0..4}: term 0 appears in 3 rows, term 1 in 2,
  // terms 2 and 3 in 1, term 4 in 0.
  TermSetTable t;
  std::vector<TermId> r1{TermId{0}, TermId{1}};
  std::vector<TermId> r2{TermId{0}, TermId{2}};
  std::vector<TermId> r3{TermId{0}, TermId{1}, TermId{3}};
  t.add(r1);
  t.add(r2);
  t.add(r3);
  return t;
}

TEST(ComputeStats, SharesArePerRowFractions) {
  const auto stats = compute_stats(make_table(), 5);
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_DOUBLE_EQ(stats.share[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.share[1], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.share[2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.share[4], 0.0);
  EXPECT_EQ(stats.count[0], 3u);
}

TEST(ComputeStats, OutOfUniverseTermsIgnored) {
  TermSetTable t;
  std::vector<TermId> row{TermId{1}, TermId{99}};
  t.add(row);
  const auto stats = compute_stats(t, 5);
  EXPECT_EQ(stats.count[1], 1u);  // 99 silently skipped
}

TEST(TraceStats, RankedDescending) {
  const auto ranked = compute_stats(make_table(), 5).ranked();
  ASSERT_EQ(ranked.size(), 4u);  // zero-share terms excluded
  EXPECT_TRUE(std::is_sorted(ranked.rbegin(), ranked.rend()));
  EXPECT_DOUBLE_EQ(ranked[0], 1.0);
}

TEST(TraceStats, HeadMass) {
  const auto stats = compute_stats(make_table(), 5);
  // total share = 1 + 2/3 + 1/3 + 1/3 = 7/3; head-1 = 1.
  EXPECT_NEAR(stats.head_mass(1), 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.head_mass(100), 1.0, 1e-12);
}

TEST(TraceStats, TopTermsStopAtZeroShares) {
  const auto stats = compute_stats(make_table(), 5);
  const auto top = stats.top_terms(10);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0], TermId{0});
  EXPECT_EQ(top[1], TermId{1});
}

TEST(TraceStats, EntropyLimitTruncates) {
  const auto stats = compute_stats(make_table(), 5);
  EXPECT_GT(stats.entropy(0), stats.entropy(2));
  EXPECT_EQ(stats.entropy(1), 0.0);  // single bucket
}

TEST(TraceStats, DistinctTerms) {
  EXPECT_EQ(compute_stats(make_table(), 5).distinct_terms(), 4u);
}

TEST(TopKOverlap, SelfOverlapIsOne) {
  const auto stats = compute_stats(make_table(), 5);
  EXPECT_DOUBLE_EQ(top_k_overlap(stats, stats, 3), 1.0);
}

TEST(TopKOverlap, DisjointIsZero) {
  TermSetTable a, b;
  std::vector<TermId> ra{TermId{0}};
  std::vector<TermId> rb{TermId{1}};
  a.add(ra);
  b.add(rb);
  const auto sa = compute_stats(a, 4);
  const auto sb = compute_stats(b, 4);
  EXPECT_DOUBLE_EQ(top_k_overlap(sa, sb, 2), 0.0);
}

TEST(RowSizeHistogram, CountsLengths) {
  const auto hist = row_size_histogram(make_table());
  ASSERT_GE(hist.size(), 4u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(RowSizeHistogram, EmptyTable) {
  TermSetTable t;
  const auto hist = row_size_histogram(t);
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0], 0u);
}

}  // namespace
}  // namespace move::workload
