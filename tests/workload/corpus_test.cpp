#include "workload/corpus.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

namespace move::workload {
namespace {

constexpr std::size_t kVocab = 8'000;

CorpusConfig wt_small() {
  auto cfg = CorpusConfig::trec_wt_like(0.002, kVocab);  // ~3380 docs
  cfg.head_count = 200;
  return cfg;
}

CorpusConfig ap_small() {
  auto cfg = CorpusConfig::trec_ap_like(1.0, kVocab);
  cfg.num_docs = 300;
  cfg.mean_terms_per_doc = 2'000;  // keep the test fast but "large article"
  cfg.head_count = 200;
  return cfg;
}

TEST(CorpusConfig, FactoriesMatchPaperShapes) {
  const auto wt = CorpusConfig::trec_wt_like(1.0, kVocab);
  const auto ap = CorpusConfig::trec_ap_like(1.0, kVocab);
  EXPECT_NEAR(wt.mean_terms_per_doc, 64.8, 1e-9);
  EXPECT_NEAR(ap.mean_terms_per_doc, 6054.9, 1e-9);
  EXPECT_EQ(wt.num_docs, 1'690'000u);
  EXPECT_EQ(ap.num_docs, 1'050u);
  EXPECT_GT(wt.zipf_skew, ap.zipf_skew);  // WT is skewer (Fig. 5 entropies)
  EXPECT_NEAR(ap.head_overlap, 0.269, 1e-9);
  EXPECT_NEAR(wt.head_overlap, 0.313, 1e-9);
  EXPECT_THROW(CorpusConfig::trec_wt_like(0.0, kVocab),
               std::invalid_argument);
}

TEST(CorpusGenerator, RowsSortedDeduped) {
  const CorpusGenerator gen(wt_small());
  const auto docs = gen.generate(500);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const auto row = docs.row(i);
    ASSERT_GE(row.size(), 2u);
    for (std::size_t j = 1; j < row.size(); ++j) {
      EXPECT_LT(row[j - 1], row[j]);
    }
  }
}

TEST(CorpusGenerator, Deterministic) {
  const CorpusGenerator gen(wt_small());
  const auto a = gen.generate(200);
  const auto b = gen.generate(200);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t j = 0; j < ra.size(); ++j) EXPECT_EQ(ra[j], rb[j]);
  }
}

TEST(CorpusGenerator, MeanDocSizeNearTarget) {
  const auto cfg = wt_small();
  const CorpusGenerator gen(cfg);
  const auto docs = gen.generate(3'000);
  EXPECT_NEAR(docs.mean_row_size(), cfg.mean_terms_per_doc,
              cfg.mean_terms_per_doc * 0.12);
}

TEST(CorpusGenerator, ApDocsAreMuchLargerThanWt) {
  const auto ap_docs = CorpusGenerator(ap_small()).generate(50);
  const auto wt_docs = CorpusGenerator(wt_small()).generate(50);
  EXPECT_GT(ap_docs.mean_row_size() / wt_docs.mean_row_size(), 10.0);
}

TEST(CorpusGenerator, PermutationIsBijective) {
  const CorpusGenerator gen(wt_small());
  const auto& perm = gen.rank_to_term();
  ASSERT_EQ(perm.size(), kVocab);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), kVocab);
  EXPECT_EQ(*seen.rbegin(), kVocab - 1);
}

TEST(CorpusGenerator, FrequencyIsSkewed) {
  const auto cfg = wt_small();
  const CorpusGenerator gen(cfg);
  const auto stats = compute_stats(gen.generate(2'000), kVocab);
  const auto ranked = stats.ranked();
  ASSERT_GT(ranked.size(), 500u);
  EXPECT_GT(ranked[0] / ranked[499], 5.0);
}

TEST(CorpusGenerator, WtSkewerThanAp) {
  // Paper Fig. 5: entropy(AP) = 9.4473 > entropy(WT) = 6.7593.
  const auto wt_stats =
      compute_stats(CorpusGenerator(wt_small()).generate(1'000), kVocab);
  auto ap_cfg = ap_small();
  const auto ap_stats =
      compute_stats(CorpusGenerator(ap_cfg).generate(200), kVocab);
  EXPECT_GT(ap_stats.entropy(), wt_stats.entropy());
}

TEST(CorpusGenerator, HeadOverlapNearConfigured) {
  // Query terms are popularity-ranked ids, so the query head is [0, k).
  auto cfg = wt_small();
  cfg.head_overlap = 0.313;
  const CorpusGenerator gen(cfg);
  const auto stats = compute_stats(gen.generate(3'000), kVocab);
  const auto top = stats.top_terms(cfg.head_count);
  std::size_t in_query_head = 0;
  for (TermId t : top) in_query_head += t.value < cfg.head_count;
  const double overlap =
      static_cast<double>(in_query_head) / static_cast<double>(top.size());
  EXPECT_NEAR(overlap, 0.313, 0.12);
}

TEST(CorpusGenerator, RespectsMinAndMaxTerms) {
  auto cfg = wt_small();
  cfg.min_terms = 5;
  cfg.max_terms = 30;
  const CorpusGenerator gen(cfg);
  const auto docs = gen.generate(500);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_GE(docs.row(i).size(), 2u);  // dedup cap may trim slightly
    EXPECT_LE(docs.row(i).size(), 30u);
  }
}

TEST(TermSetTable, BasicAccessors) {
  TermSetTable t;
  EXPECT_TRUE(t.empty());
  std::vector<TermId> row{TermId{2}, TermId{5}};
  t.add(row);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.total_terms(), 2u);
  EXPECT_EQ(t.row(0)[1], TermId{5});
  EXPECT_THROW(t.row(1), std::out_of_range);
  EXPECT_DOUBLE_EQ(t.mean_row_size(), 2.0);
}

}  // namespace
}  // namespace move::workload
