#include "kv/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "kv/topology.hpp"

namespace move::kv {
namespace {

class PlacementFixture : public ::testing::Test {
 protected:
  PlacementFixture() : topology_(20, 4) {
    for (std::uint32_t i = 0; i < 20; ++i) ring_.add_node(NodeId{i});
  }

  std::vector<NodeId> select(PlacementPolicy policy, NodeId home,
                             std::size_t count) {
    common::SplitMix64 rng(79);
    return select_replica_nodes(policy, home, common::mix64(home.value),
                                count, ring_, topology_, rng);
  }

  HashRing ring_;
  RackTopology topology_;
};

TEST(RackTopology, RejectsZeroRacks) {
  EXPECT_THROW(RackTopology(10, 0), std::invalid_argument);
}

TEST(RackTopology, RoundRobinAssignment) {
  RackTopology topo(10, 3);
  EXPECT_EQ(topo.rack_of(NodeId{0}), 0u);
  EXPECT_EQ(topo.rack_of(NodeId{1}), 1u);
  EXPECT_EQ(topo.rack_of(NodeId{3}), 0u);
  EXPECT_THROW((void)topo.rack_of(NodeId{10}), std::out_of_range);
}

TEST(RackTopology, NodesInRack) {
  RackTopology topo(9, 3);
  const auto rack0 = topo.nodes_in_rack(0);
  ASSERT_EQ(rack0.size(), 3u);
  EXPECT_EQ(rack0[0], NodeId{0});
  EXPECT_EQ(rack0[1], NodeId{3});
  EXPECT_EQ(rack0[2], NodeId{6});
}

TEST(RackTopology, PeersExcludeSelf) {
  RackTopology topo(9, 3);
  const auto peers = topo.rack_peers(NodeId{3});
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0], NodeId{0});
  EXPECT_EQ(peers[1], NodeId{6});
}

TEST_F(PlacementFixture, NeverIncludesHome) {
  for (auto policy : {PlacementPolicy::kRingSuccessors,
                      PlacementPolicy::kRackAware, PlacementPolicy::kHybrid}) {
    const NodeId home{7};
    for (NodeId n : select(policy, home, 10)) {
      EXPECT_NE(n, home);
    }
  }
}

TEST_F(PlacementFixture, ReturnsDistinctNodes) {
  for (auto policy : {PlacementPolicy::kRingSuccessors,
                      PlacementPolicy::kRackAware, PlacementPolicy::kHybrid}) {
    const auto nodes = select(policy, NodeId{3}, 12);
    std::set<NodeId> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), nodes.size());
  }
}

TEST_F(PlacementFixture, RackAwarePrefersSameRack) {
  const NodeId home{2};
  const auto nodes = select(PlacementPolicy::kRackAware, home, 4);
  ASSERT_EQ(nodes.size(), 4u);
  // 20 nodes over 4 racks -> 4 same-rack peers; all four fit in-rack.
  for (NodeId n : nodes) {
    EXPECT_EQ(topology_.rack_of(n), topology_.rack_of(home));
  }
}

TEST_F(PlacementFixture, RackAwareTopsUpWhenRackExhausted) {
  const auto nodes = select(PlacementPolicy::kRackAware, NodeId{2}, 8);
  EXPECT_EQ(nodes.size(), 8u);  // only 4 peers in rack, topped up elsewhere
}

TEST_F(PlacementFixture, HybridMixesRackAndRing) {
  const NodeId home{2};
  const auto nodes = select(PlacementPolicy::kHybrid, home, 8);
  ASSERT_EQ(nodes.size(), 8u);
  std::size_t same_rack = 0;
  for (NodeId n : nodes) {
    same_rack += topology_.rack_of(n) == topology_.rack_of(home);
  }
  // Half from the rack (4 peers available), half from elsewhere.
  EXPECT_GE(same_rack, 3u);
  EXPECT_LT(same_rack, 8u);
}

TEST_F(PlacementFixture, CountCappedAtClusterSizeMinusOne) {
  const auto nodes = select(PlacementPolicy::kHybrid, NodeId{0}, 100);
  EXPECT_EQ(nodes.size(), 19u);
}

TEST_F(PlacementFixture, ZeroCountIsEmpty) {
  EXPECT_TRUE(select(PlacementPolicy::kHybrid, NodeId{0}, 0).empty());
}

TEST(Placement, SingleNodeClusterHasNoReplicas) {
  HashRing ring;
  ring.add_node(NodeId{0});
  RackTopology topo(1, 1);
  common::SplitMix64 rng(83);
  EXPECT_TRUE(select_replica_nodes(PlacementPolicy::kHybrid, NodeId{0}, 1, 5,
                                   ring, topo, rng)
                  .empty());
}

TEST_F(PlacementFixture, RingPolicyFollowsSuccessors) {
  const NodeId home{5};
  const std::uint64_t key = common::mix64(5);
  const auto expected = ring_.successors(key, 6);
  common::SplitMix64 rng(89);
  const auto nodes = select_replica_nodes(PlacementPolicy::kRingSuccessors,
                                          home, key, 6, ring_, topology_, rng);
  EXPECT_EQ(nodes, expected);
}

// --- replica_set invariants under churn --------------------------------------

/// Checks every replica_set guarantee for one key on the current membership.
void check_replica_invariants(const HashRing& ring, const RackTopology& topo,
                              std::uint64_t key, std::size_t replicas) {
  const auto set = replica_set(ring, topo, key, replicas);

  // Size: min(replicas, membership).
  EXPECT_EQ(set.size(), std::min(replicas, ring.node_count()));

  // Distinct nodes, home first.
  std::set<NodeId> unique(set.begin(), set.end());
  EXPECT_EQ(unique.size(), set.size());
  if (!set.empty()) {
    EXPECT_EQ(set.front(), ring.home_of_hash(key));
  }

  // Rack diversity: the set must span min(replicas, racks-present-among-
  // members) distinct racks — fully rack-diverse whenever racks >= replicas.
  std::set<std::size_t> member_racks;
  for (NodeId n : ring.members()) member_racks.insert(topo.rack_of(n));
  std::set<std::size_t> replica_racks;
  for (NodeId n : set) replica_racks.insert(topo.rack_of(n));
  EXPECT_GE(replica_racks.size(),
            std::min(set.size(), member_racks.size()))
      << "replicas=" << replicas << " members=" << ring.node_count();

  // History independence: a fresh ring with the same members places the key
  // identically.
  HashRing fresh(ring.vnodes_per_node());
  for (NodeId n : ring.members()) fresh.add_node(n);
  EXPECT_EQ(replica_set(fresh, topo, key, replicas), set);
}

TEST(ReplicaSet, InvariantsHoldUnderArbitraryJoinLeaveSequences) {
  constexpr std::uint32_t kMaxNodes = 40;
  RackTopology topo(kMaxNodes, 4);
  HashRing ring(32);
  std::vector<std::uint32_t> members;
  for (std::uint32_t i = 0; i < 6; ++i) {
    ring.add_node(NodeId{i});
    members.push_back(i);
  }

  common::SplitMix64 rng(0xD1CEu);
  for (int step = 0; step < 50; ++step) {
    // Random churn: join an absent node or decommission a member (always
    // keeping at least one member so the ring stays routable).
    const bool join = members.size() <= 1 ||
                      (members.size() < kMaxNodes &&
                       common::uniform_below(rng, 2) == 0);
    if (join) {
      std::uint32_t id;
      do {
        id = static_cast<std::uint32_t>(common::uniform_below(rng, kMaxNodes));
      } while (std::find(members.begin(), members.end(), id) != members.end());
      ring.add_node(NodeId{id});
      members.push_back(id);
    } else {
      const auto pick = common::uniform_below(rng, members.size());
      ring.remove_node(NodeId{members[pick]});
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    for (std::size_t replicas : {1u, 2u, 3u, 5u}) {
      for (int k = 0; k < 4; ++k) {
        check_replica_invariants(ring, topo, rng(), replicas);
      }
    }
  }
}

TEST(ReplicaSet, FullyRackDiverseWhenRacksCoverReplicas) {
  // 12 nodes round-robin over 4 racks; 3 replicas must land on 3 racks for
  // every key.
  RackTopology topo(12, 4);
  HashRing ring(32);
  for (std::uint32_t i = 0; i < 12; ++i) ring.add_node(NodeId{i});
  common::SplitMix64 rng(0xACE5u);
  for (int k = 0; k < 64; ++k) {
    const auto set = replica_set(ring, topo, rng(), 3);
    ASSERT_EQ(set.size(), 3u);
    std::set<std::size_t> racks;
    for (NodeId n : set) racks.insert(topo.rack_of(n));
    EXPECT_EQ(racks.size(), 3u);
  }
}

TEST(ReplicaSet, PlainSuccessorWalkIsNotRackDiverse) {
  // Sanity check on the motivation: the raw clockwise walk does repeat
  // racks, which is exactly why replica_set exists.
  RackTopology topo(12, 4);
  HashRing ring(32);
  for (std::uint32_t i = 0; i < 12; ++i) ring.add_node(NodeId{i});
  common::SplitMix64 rng(0xACE5u);
  bool found_repeat = false;
  for (int k = 0; k < 256 && !found_repeat; ++k) {
    const std::uint64_t key = rng();
    std::vector<NodeId> walk{ring.home_of_hash(key)};
    for (NodeId n : ring.successors(key, 2)) walk.push_back(n);
    std::set<std::size_t> racks;
    for (NodeId n : walk) racks.insert(topo.rack_of(n));
    found_repeat = racks.size() < walk.size();
  }
  EXPECT_TRUE(found_repeat);
}

}  // namespace
}  // namespace move::kv
