#include "kv/placement.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/hash.hpp"
#include "kv/topology.hpp"

namespace move::kv {
namespace {

class PlacementFixture : public ::testing::Test {
 protected:
  PlacementFixture() : topology_(20, 4) {
    for (std::uint32_t i = 0; i < 20; ++i) ring_.add_node(NodeId{i});
  }

  std::vector<NodeId> select(PlacementPolicy policy, NodeId home,
                             std::size_t count) {
    common::SplitMix64 rng(79);
    return select_replica_nodes(policy, home, common::mix64(home.value),
                                count, ring_, topology_, rng);
  }

  HashRing ring_;
  RackTopology topology_;
};

TEST(RackTopology, RejectsZeroRacks) {
  EXPECT_THROW(RackTopology(10, 0), std::invalid_argument);
}

TEST(RackTopology, RoundRobinAssignment) {
  RackTopology topo(10, 3);
  EXPECT_EQ(topo.rack_of(NodeId{0}), 0u);
  EXPECT_EQ(topo.rack_of(NodeId{1}), 1u);
  EXPECT_EQ(topo.rack_of(NodeId{3}), 0u);
  EXPECT_THROW(topo.rack_of(NodeId{10}), std::out_of_range);
}

TEST(RackTopology, NodesInRack) {
  RackTopology topo(9, 3);
  const auto rack0 = topo.nodes_in_rack(0);
  ASSERT_EQ(rack0.size(), 3u);
  EXPECT_EQ(rack0[0], NodeId{0});
  EXPECT_EQ(rack0[1], NodeId{3});
  EXPECT_EQ(rack0[2], NodeId{6});
}

TEST(RackTopology, PeersExcludeSelf) {
  RackTopology topo(9, 3);
  const auto peers = topo.rack_peers(NodeId{3});
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0], NodeId{0});
  EXPECT_EQ(peers[1], NodeId{6});
}

TEST_F(PlacementFixture, NeverIncludesHome) {
  for (auto policy : {PlacementPolicy::kRingSuccessors,
                      PlacementPolicy::kRackAware, PlacementPolicy::kHybrid}) {
    const NodeId home{7};
    for (NodeId n : select(policy, home, 10)) {
      EXPECT_NE(n, home);
    }
  }
}

TEST_F(PlacementFixture, ReturnsDistinctNodes) {
  for (auto policy : {PlacementPolicy::kRingSuccessors,
                      PlacementPolicy::kRackAware, PlacementPolicy::kHybrid}) {
    const auto nodes = select(policy, NodeId{3}, 12);
    std::set<NodeId> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), nodes.size());
  }
}

TEST_F(PlacementFixture, RackAwarePrefersSameRack) {
  const NodeId home{2};
  const auto nodes = select(PlacementPolicy::kRackAware, home, 4);
  ASSERT_EQ(nodes.size(), 4u);
  // 20 nodes over 4 racks -> 4 same-rack peers; all four fit in-rack.
  for (NodeId n : nodes) {
    EXPECT_EQ(topology_.rack_of(n), topology_.rack_of(home));
  }
}

TEST_F(PlacementFixture, RackAwareTopsUpWhenRackExhausted) {
  const auto nodes = select(PlacementPolicy::kRackAware, NodeId{2}, 8);
  EXPECT_EQ(nodes.size(), 8u);  // only 4 peers in rack, topped up elsewhere
}

TEST_F(PlacementFixture, HybridMixesRackAndRing) {
  const NodeId home{2};
  const auto nodes = select(PlacementPolicy::kHybrid, home, 8);
  ASSERT_EQ(nodes.size(), 8u);
  std::size_t same_rack = 0;
  for (NodeId n : nodes) {
    same_rack += topology_.rack_of(n) == topology_.rack_of(home);
  }
  // Half from the rack (4 peers available), half from elsewhere.
  EXPECT_GE(same_rack, 3u);
  EXPECT_LT(same_rack, 8u);
}

TEST_F(PlacementFixture, CountCappedAtClusterSizeMinusOne) {
  const auto nodes = select(PlacementPolicy::kHybrid, NodeId{0}, 100);
  EXPECT_EQ(nodes.size(), 19u);
}

TEST_F(PlacementFixture, ZeroCountIsEmpty) {
  EXPECT_TRUE(select(PlacementPolicy::kHybrid, NodeId{0}, 0).empty());
}

TEST(Placement, SingleNodeClusterHasNoReplicas) {
  HashRing ring;
  ring.add_node(NodeId{0});
  RackTopology topo(1, 1);
  common::SplitMix64 rng(83);
  EXPECT_TRUE(select_replica_nodes(PlacementPolicy::kHybrid, NodeId{0}, 1, 5,
                                   ring, topo, rng)
                  .empty());
}

TEST_F(PlacementFixture, RingPolicyFollowsSuccessors) {
  const NodeId home{5};
  const std::uint64_t key = common::mix64(5);
  const auto expected = ring_.successors(key, 6);
  common::SplitMix64 rng(89);
  const auto nodes = select_replica_nodes(PlacementPolicy::kRingSuccessors,
                                          home, key, 6, ring_, topology_, rng);
  EXPECT_EQ(nodes, expected);
}

}  // namespace
}  // namespace move::kv
