#include "kv/gossip.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace move::kv {
namespace {

/// Builds an n-node membership where every node initially knows only node 0
/// (the seed) — the worst-case join pattern.
GossipMembership star_bootstrap(std::uint32_t n, GossipConfig cfg = {}) {
  GossipMembership g(cfg);
  for (std::uint32_t i = 0; i < n; ++i) g.add_node(NodeId{i});
  for (std::uint32_t i = 1; i < n; ++i) g.introduce(NodeId{i}, NodeId{0});
  for (std::uint32_t i = 1; i < n; ++i) g.introduce(NodeId{0}, NodeId{i});
  return g;
}

TEST(Gossip, RejectsZeroFanout) {
  GossipConfig cfg;
  cfg.fanout = 0;
  EXPECT_THROW(GossipMembership{cfg}, std::invalid_argument);
}

TEST(Gossip, FreshNodeKnowsItself) {
  GossipMembership g;
  g.add_node(NodeId{3});
  EXPECT_EQ(g.live_view_size(NodeId{3}), 1u);
  EXPECT_TRUE(g.believes_alive(NodeId{3}, NodeId{3}));
}

TEST(Gossip, UnknownNodeThrows) {
  GossipMembership g;
  EXPECT_THROW((void)g.live_view_size(NodeId{9}), std::out_of_range);
  EXPECT_THROW(g.crash(NodeId{9}), std::out_of_range);
  EXPECT_THROW(g.introduce(NodeId{9}, NodeId{9}), std::out_of_range);
}

TEST(Gossip, StarBootstrapConvergesQuickly) {
  auto g = star_bootstrap(32);
  const auto rounds = g.rounds_to_convergence(64);
  EXPECT_LT(rounds, 16u);  // epidemic spread is O(log N) rounds
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(g.live_view_size(NodeId{i}), 32u) << "node " << i;
  }
}

TEST(Gossip, ConvergenceScalesLogarithmically) {
  auto small = star_bootstrap(8);
  auto large = star_bootstrap(128);
  const auto r_small = small.rounds_to_convergence(128);
  const auto r_large = large.rounds_to_convergence(128);
  // 16x more nodes must NOT cost anywhere near 16x more rounds.
  EXPECT_LT(r_large, r_small * 6 + 8);
}

TEST(Gossip, HigherFanoutConvergesNoSlower) {
  GossipConfig slow, fast;
  slow.fanout = 1;
  fast.fanout = 4;
  auto g_slow = star_bootstrap(64, slow);
  auto g_fast = star_bootstrap(64, fast);
  EXPECT_LE(g_fast.rounds_to_convergence(256),
            g_slow.rounds_to_convergence(256));
}

TEST(Gossip, CrashIsDetectedEverywhere) {
  auto g = star_bootstrap(16);
  g.rounds_to_convergence(64);
  g.crash(NodeId{5});
  GossipConfig cfg;  // default suspicion window
  g.run_rounds(cfg.suspicion_rounds + 8);
  for (std::uint32_t i = 0; i < 16; ++i) {
    if (i == 5) continue;
    EXPECT_FALSE(g.believes_alive(NodeId{i}, NodeId{5})) << "node " << i;
  }
  EXPECT_TRUE(g.converged());
  EXPECT_EQ(g.true_live_count(), 15u);
}

TEST(Gossip, LiveNodesNeverFalselySuspected) {
  auto g = star_bootstrap(24);
  g.rounds_to_convergence(64);
  g.run_rounds(40);  // long quiet period, everyone healthy
  for (std::uint32_t i = 0; i < 24; ++i) {
    for (std::uint32_t j = 0; j < 24; ++j) {
      EXPECT_TRUE(g.believes_alive(NodeId{i}, NodeId{j}))
          << i << " suspects " << j;
    }
  }
}

TEST(Gossip, RestartIsRediscovered) {
  auto g = star_bootstrap(12);
  g.rounds_to_convergence(64);
  g.crash(NodeId{7});
  g.run_rounds(20);
  ASSERT_FALSE(g.believes_alive(NodeId{0}, NodeId{7}));
  g.restart(NodeId{7});
  // The restarted node only remembers its old view; gossip re-spreads it.
  g.run_rounds(20);
  EXPECT_TRUE(g.believes_alive(NodeId{0}, NodeId{7}));
  EXPECT_TRUE(g.converged());
}

TEST(Gossip, CrashedNodeStopsLearning) {
  auto g = star_bootstrap(8);
  g.crash(NodeId{3});
  const auto before = g.rounds_elapsed();
  g.run_rounds(10);
  EXPECT_EQ(g.rounds_elapsed(), before + 10);
  // Node 3's view froze at crash time: it never learned the others.
  EXPECT_LE(g.live_view_size(NodeId{3}), 2u);
}

// Deterministic churn script: repeated crash/restart waves under a fixed
// seed. Each disturbance must re-converge within suspicion_rounds +
// diameter rounds (diameter = epidemic spread bound, O(log N) for
// push-pull), and the failure detector must never transition a live,
// still-gossiping node to suspected (false_suspicions stays 0 — genuine
// crashes are counted in suspicions, not false_suspicions).
TEST(Gossip, DeterministicChurnConvergesWithoutFalseSuspicions) {
  constexpr std::uint32_t kNodes = 24;
  GossipConfig cfg;
  cfg.seed = 0xC4A871u;
  auto g = star_bootstrap(kNodes, cfg);
  ASSERT_LT(g.rounds_to_convergence(64), 64u);
  EXPECT_EQ(g.false_suspicions(), 0u);

  const auto diameter = 2 * static_cast<std::size_t>(
                                std::ceil(std::log2(double{kNodes})));
  const std::size_t bound = cfg.suspicion_rounds + diameter;

  common::SplitMix64 pick(0x5EEDu);
  for (int wave = 0; wave < 5; ++wave) {
    std::set<std::uint32_t> crashed;
    while (crashed.size() < 3) {
      crashed.insert(
          static_cast<std::uint32_t>(common::uniform_below(pick, kNodes)));
    }
    for (std::uint32_t id : crashed) g.crash(NodeId{id});
    EXPECT_LE(g.rounds_to_convergence(bound + 1), bound)
        << "wave " << wave << ": crash detection exceeded the bound";
    for (std::uint32_t id : crashed) g.restart(NodeId{id});
    EXPECT_LE(g.rounds_to_convergence(bound + 1), bound)
        << "wave " << wave << ": restart rediscovery exceeded the bound";
  }

  EXPECT_EQ(g.true_live_count(), kNodes);
  EXPECT_GT(g.suspicions(), 0u);       // the crashes were detected...
  EXPECT_EQ(g.false_suspicions(), 0u); // ...and no live node ever was
}

TEST(Gossip, QuietPeriodAddsNoSuspicions) {
  auto g = star_bootstrap(16);
  g.rounds_to_convergence(64);
  const auto suspicions_before = g.suspicions();
  const auto exchanges_before = g.exchanges();
  g.run_rounds(30);
  EXPECT_EQ(g.suspicions(), suspicions_before);
  EXPECT_EQ(g.false_suspicions(), 0u);
  // 16 live nodes x fanout 2 x 30 rounds, minus dropped picks.
  EXPECT_GT(g.exchanges(), exchanges_before);
}

TEST(Gossip, ExportMetricsSnapshotsState) {
  auto g = star_bootstrap(8);
  g.rounds_to_convergence(32);
  obs::Registry registry;
  g.export_metrics(registry);
  const auto gauges = registry.gauges();
  auto value_of = [&](const std::string& name) -> double {
    for (const auto& s : gauges) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return -1.0;
  };
  EXPECT_EQ(value_of("kv.gossip.rounds"),
            static_cast<double>(g.rounds_elapsed()));
  EXPECT_EQ(value_of("kv.gossip.exchanges"),
            static_cast<double>(g.exchanges()));
  EXPECT_EQ(value_of("kv.gossip.live_nodes"), 8.0);
  EXPECT_EQ(value_of("kv.gossip.false_suspicions"), 0.0);
}

TEST(Gossip, DeterministicForSameSeed) {
  GossipConfig cfg;
  cfg.seed = 77;
  auto a = star_bootstrap(20, cfg);
  auto b = star_bootstrap(20, cfg);
  a.run_rounds(12);
  b.run_rounds(12);
  for (std::uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.live_view_size(NodeId{i}), b.live_view_size(NodeId{i}));
  }
}

}  // namespace
}  // namespace move::kv
