#include "kv/kv_store.hpp"

#include <gtest/gtest.h>

#include <set>

namespace move::kv {
namespace {

class KvStoreFixture : public ::testing::Test {
 protected:
  KvStoreFixture() {
    for (std::uint32_t i = 0; i < 10; ++i) ring_.add_node(NodeId{i});
  }
  HashRing ring_;
};

TEST_F(KvStoreFixture, PutGetRoundTrip) {
  KeyValueStore store(ring_);
  EXPECT_EQ(store.put("filter:42", "football,league"), 3u);
  const auto v = store.get("filter:42");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "football,league");
}

TEST_F(KvStoreFixture, GetMissingIsNullopt) {
  KeyValueStore store(ring_);
  EXPECT_FALSE(store.get("nope").has_value());
  EXPECT_FALSE(store.contains("nope"));
}

TEST_F(KvStoreFixture, PutOverwrites) {
  KeyValueStore store(ring_);
  store.put("k", "v1");
  store.put("k", "v2");
  EXPECT_EQ(store.get("k").value(), "v2");
  EXPECT_EQ(store.total_entries(), 3u);  // still one key x 3 replicas
}

TEST_F(KvStoreFixture, OwnersAreDistinctAndLedByHome) {
  KeyValueStore store(ring_);
  const auto owners = store.owners("some-key");
  ASSERT_EQ(owners.size(), 3u);
  std::set<NodeId> unique(owners.begin(), owners.end());
  EXPECT_EQ(unique.size(), 3u);
  EXPECT_EQ(owners[0], ring_.home_of_key("some-key"));
}

TEST_F(KvStoreFixture, ReplicasClampedToOneMinimum) {
  KeyValueStore store(ring_, 0);
  EXPECT_EQ(store.replicas(), 1u);
  EXPECT_EQ(store.put("k", "v"), 1u);
}

TEST_F(KvStoreFixture, EraseRemovesAllReplicas) {
  KeyValueStore store(ring_);
  store.put("k", "v");
  EXPECT_EQ(store.erase("k"), 3u);
  EXPECT_FALSE(store.contains("k"));
  EXPECT_EQ(store.erase("k"), 0u);
}

TEST_F(KvStoreFixture, SurvivesMinorityOwnerFailure) {
  std::set<std::uint32_t> dead;
  KeyValueStore store(ring_, 3,
                      [&](NodeId n) { return !dead.contains(n.value); });
  store.put("k", "v");
  const auto owners = store.owners("k");
  // Kill the home and one replica; the third still serves reads.
  dead.insert(owners[0].value);
  dead.insert(owners[1].value);
  EXPECT_EQ(store.get("k").value(), "v");
  dead.insert(owners[2].value);
  EXPECT_FALSE(store.get("k").has_value());
}

TEST_F(KvStoreFixture, PutSkipsDeadOwners) {
  std::set<std::uint32_t> dead;
  KeyValueStore store(ring_, 3,
                      [&](NodeId n) { return !dead.contains(n.value); });
  const auto owners = store.owners("k");
  dead.insert(owners[0].value);
  EXPECT_EQ(store.put("k", "v"), 2u);
}

TEST_F(KvStoreFixture, RebalanceMovesKeysToNewOwners) {
  KeyValueStore store(ring_);
  for (int i = 0; i < 500; ++i) {
    store.put("key" + std::to_string(i), "v");
  }
  // Join a new node; ownership of some keys shifts to it.
  ring_.add_node(NodeId{10});
  store.rebalance();
  EXPECT_GT(store.keys_on(NodeId{10}), 0u);
  // Every key is still fully replicated on its current owners and readable.
  for (int i = 0; i < 500; ++i) {
    const std::string k = "key" + std::to_string(i);
    EXPECT_TRUE(store.contains(k)) << k;
    for (NodeId owner : store.owners(k)) {
      (void)owner;  // ownership checked implicitly by the read above
    }
  }
  EXPECT_EQ(store.total_entries(), 500u * 3u);
}

TEST_F(KvStoreFixture, RebalanceAfterLeaveRestoresReplication) {
  KeyValueStore store(ring_);
  for (int i = 0; i < 300; ++i) store.put("k" + std::to_string(i), "v");
  ring_.remove_node(NodeId{4});
  store.rebalance();
  EXPECT_EQ(store.keys_on(NodeId{4}), 0u);
  EXPECT_EQ(store.total_entries(), 300u * 3u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(store.contains("k" + std::to_string(i)));
  }
}

TEST(KvStoreEmptyRing, OwnersEmptyAndPutWritesNothing) {
  HashRing ring;
  KeyValueStore store(ring);
  EXPECT_TRUE(store.owners("k").empty());
  EXPECT_EQ(store.put("k", "v"), 0u);
  EXPECT_FALSE(store.get("k").has_value());
}

TEST(KvStoreSingleNode, AllReplicasCollapseToOne) {
  HashRing ring;
  ring.add_node(NodeId{0});
  KeyValueStore store(ring, 3);
  EXPECT_EQ(store.put("k", "v"), 1u);  // no successors exist
  EXPECT_EQ(store.get("k").value(), "v");
}

}  // namespace
}  // namespace move::kv
