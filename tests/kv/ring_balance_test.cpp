// Virtual-node balance properties of the consistent-hash ring: more vnodes
// means smoother key ownership — the knob that makes random token
// assignment usable in practice (Dynamo §6.2's lesson).

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "kv/ring.hpp"

namespace move::kv {
namespace {

double key_peak_to_mean(const HashRing& ring, std::uint32_t nodes,
                        std::uint32_t keys) {
  std::vector<double> counts(nodes, 0.0);
  for (std::uint32_t t = 0; t < keys; ++t) {
    counts[ring.home_of_term(TermId{t}).value] += 1.0;
  }
  return common::peak_to_mean(counts);
}

TEST(RingBalance, MoreVnodesSmootherOwnership) {
  constexpr std::uint32_t kNodes = 16;
  double skew_few = 0, skew_many = 0;
  for (auto [vnodes, out] :
       {std::pair{4u, &skew_few}, std::pair{256u, &skew_many}}) {
    HashRing ring(vnodes);
    for (std::uint32_t i = 0; i < kNodes; ++i) ring.add_node(NodeId{i});
    *out = key_peak_to_mean(ring, kNodes, 40'000);
  }
  EXPECT_LT(skew_many, skew_few);
  EXPECT_LT(skew_many, 1.25);
}

TEST(RingBalance, OwnershipMatchesKeyShares) {
  HashRing ring(128);
  constexpr std::uint32_t kNodes = 12;
  for (std::uint32_t i = 0; i < kNodes; ++i) ring.add_node(NodeId{i});
  const auto shares = ring.ownership();
  std::vector<double> counts(kNodes, 0.0);
  constexpr std::uint32_t kKeys = 60'000;
  for (std::uint32_t t = 0; t < kKeys; ++t) {
    counts[ring.home_of_term(TermId{t}).value] += 1.0;
  }
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    EXPECT_NEAR(counts[i] / kKeys, shares[i], 0.02) << "node " << i;
  }
}

TEST(RingBalance, RemovedNodesLoadSpreadsOverSurvivors) {
  HashRing ring(64);
  constexpr std::uint32_t kNodes = 10;
  for (std::uint32_t i = 0; i < kNodes; ++i) ring.add_node(NodeId{i});
  ring.remove_node(NodeId{0});
  std::vector<double> counts(kNodes, 0.0);
  for (std::uint32_t t = 0; t < 30'000; ++t) {
    counts[ring.home_of_term(TermId{t}).value] += 1.0;
  }
  EXPECT_EQ(counts[0], 0.0);
  // The orphaned ~10% must not all land on one survivor.
  std::vector<double> survivors(counts.begin() + 1, counts.end());
  EXPECT_LT(common::peak_to_mean(survivors), 1.5);
}

TEST(RingBalance, GrowingClusterKeepsPerNodeShareFalling) {
  HashRing ring(64);
  double previous_share = 1.0;
  for (std::uint32_t n = 2; n <= 32; n *= 2) {
    while (ring.node_count() < n) {
      ring.add_node(NodeId{static_cast<std::uint32_t>(ring.node_count())});
    }
    std::vector<double> counts(n, 0.0);
    for (std::uint32_t t = 0; t < 20'000; ++t) {
      counts[ring.home_of_term(TermId{t}).value] += 1.0;
    }
    const double max_share =
        *std::max_element(counts.begin(), counts.end()) / 20'000.0;
    EXPECT_LT(max_share, previous_share);
    previous_share = max_share;
  }
}

}  // namespace
}  // namespace move::kv
