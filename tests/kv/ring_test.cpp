#include "kv/ring.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hash.hpp"
#include "common/stats.hpp"

namespace move::kv {
namespace {

TEST(HashRing, RejectsZeroVnodes) {
  EXPECT_THROW(HashRing(0), std::invalid_argument);
}

TEST(HashRing, LookupOnEmptyRingThrows) {
  HashRing ring;
  EXPECT_THROW((void)ring.home_of_hash(1), std::logic_error);
}

TEST(HashRing, AddIsIdempotent) {
  HashRing ring;
  ring.add_node(NodeId{1});
  ring.add_node(NodeId{1});
  EXPECT_EQ(ring.node_count(), 1u);
}

TEST(HashRing, SingleNodeOwnsEverything) {
  HashRing ring;
  ring.add_node(NodeId{3});
  for (std::uint64_t h : {0ULL, 12345ULL, ~0ULL}) {
    EXPECT_EQ(ring.home_of_hash(h), NodeId{3});
  }
}

TEST(HashRing, DeterministicAcrossInstances) {
  HashRing a, b;
  for (std::uint32_t i = 0; i < 10; ++i) {
    a.add_node(NodeId{i});
    b.add_node(NodeId{i});
  }
  for (std::uint32_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(a.home_of_term(TermId{t}), b.home_of_term(TermId{t}));
  }
}

TEST(HashRing, InsertionOrderIrrelevant) {
  HashRing a, b;
  for (std::uint32_t i = 0; i < 8; ++i) a.add_node(NodeId{i});
  for (std::uint32_t i = 8; i-- > 0;) b.add_node(NodeId{i});
  for (std::uint32_t t = 0; t < 500; ++t) {
    EXPECT_EQ(a.home_of_term(TermId{t}), b.home_of_term(TermId{t}));
  }
}

TEST(HashRing, ConsistentHashingMovesOnlyAffectedKeys) {
  HashRing ring;
  for (std::uint32_t i = 0; i < 10; ++i) ring.add_node(NodeId{i});
  std::map<std::uint32_t, NodeId> before;
  for (std::uint32_t t = 0; t < 5000; ++t) {
    before[t] = ring.home_of_term(TermId{t});
  }
  ring.remove_node(NodeId{4});
  std::size_t moved = 0;
  for (std::uint32_t t = 0; t < 5000; ++t) {
    const NodeId now = ring.home_of_term(TermId{t});
    if (before[t] == NodeId{4}) {
      EXPECT_NE(now, NodeId{4});  // must have moved away
    } else {
      // Keys not owned by the removed node must not move at all.
      EXPECT_EQ(now, before[t]) << "term " << t;
    }
    moved += (now != before[t]);
  }
  // Roughly 1/10 of keys move.
  EXPECT_NEAR(static_cast<double>(moved) / 5000.0, 0.1, 0.06);
}

TEST(HashRing, OwnershipRoughlyBalanced) {
  HashRing ring(128);
  constexpr std::uint32_t kNodes = 16;
  for (std::uint32_t i = 0; i < kNodes; ++i) ring.add_node(NodeId{i});
  const auto shares = ring.ownership();
  double total = 0;
  for (double s : shares) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    EXPECT_NEAR(shares[i], 1.0 / kNodes, 0.035) << "node " << i;
  }
}

TEST(HashRing, KeyDistributionRoughlyBalanced) {
  HashRing ring(128);
  constexpr std::uint32_t kNodes = 10;
  for (std::uint32_t i = 0; i < kNodes; ++i) ring.add_node(NodeId{i});
  std::vector<double> counts(kNodes, 0.0);
  constexpr std::uint32_t kKeys = 50'000;
  for (std::uint32_t t = 0; t < kKeys; ++t) {
    counts[ring.home_of_term(TermId{t}).value] += 1.0;
  }
  EXPECT_LT(common::peak_to_mean(counts), 1.35);
}

TEST(HashRing, SuccessorsAreDistinctAndExcludeHome) {
  HashRing ring;
  for (std::uint32_t i = 0; i < 10; ++i) ring.add_node(NodeId{i});
  const std::uint64_t key = common::mix64(99);
  const NodeId home = ring.home_of_hash(key);
  const auto succ = ring.successors(key, 4);
  ASSERT_EQ(succ.size(), 4u);
  std::set<NodeId> unique(succ.begin(), succ.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_FALSE(unique.contains(home));
}

TEST(HashRing, SuccessorsCappedByClusterSize) {
  HashRing ring;
  for (std::uint32_t i = 0; i < 4; ++i) ring.add_node(NodeId{i});
  EXPECT_EQ(ring.successors(123, 100).size(), 3u);  // N-1 distinct others
}

TEST(HashRing, SuccessorsOfSingleNodeEmpty) {
  HashRing ring;
  ring.add_node(NodeId{0});
  EXPECT_TRUE(ring.successors(1, 3).empty());
}

TEST(HashRing, MembersSortedAscending) {
  HashRing ring;
  ring.add_node(NodeId{5});
  ring.add_node(NodeId{1});
  ring.add_node(NodeId{3});
  const auto m = ring.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], NodeId{1});
  EXPECT_EQ(m[2], NodeId{5});
}

TEST(HashRing, RemoveUnknownIsNoop) {
  HashRing ring;
  ring.add_node(NodeId{1});
  ring.remove_node(NodeId{9});
  EXPECT_EQ(ring.node_count(), 1u);
}

}  // namespace
}  // namespace move::kv
