// Figure 11 (extension): online workload adaptation. The paper's renewal
// scheme (§V) re-allocates offline between runs; move::adapt keeps the
// estimate fresh with bounded-memory sketches and migrates filter sets
// LIVE, so adaptation overlaps dissemination. This bench streams an
// A->B(->A->B) drifting corpus through the online control loop and sweeps
//   drift profile   x   {full, incremental} re-allocation   x   sketch budget
// recording per-window throughput. The figure of merit is the worst-window
// dip: full re-allocation moves every home in one unpaced burst (the
// offline scheme's cost profile, its service charged on the receiving
// nodes), incremental moves only the drifted homes in paced bounded
// batches — at equal sketch budget its dip must be strictly shallower.
// Machine-readable output in BENCH_fig11_adapt.json.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "adapt/online.hpp"
#include "bench_report.hpp"
#include "bench_util.hpp"
#include "net/transport.hpp"

using namespace move;

namespace {

/// `switches` distribution changes over a fixed-length stream: phases
/// alternate between two rank permutations of the same corpus shape.
workload::TermSetTable make_stream(std::size_t vocabulary,
                                   std::size_t total_docs,
                                   std::size_t switches) {
  const std::size_t phases = switches + 1;
  const std::size_t per_phase = total_docs / phases;
  workload::TermSetTable out;
  for (std::size_t ph = 0; ph < phases; ++ph) {
    auto cfg = workload::CorpusConfig::trec_wt_like(bench::scale(),
                                                    vocabulary);
    if (ph % 2 == 1) cfg.seed ^= 0xd21f7;  // the drift ablation's B phase
    const auto docs = workload::CorpusGenerator(cfg).generate(per_phase);
    for (std::size_t i = 0; i < docs.size(); ++i) out.add(docs.row(i));
  }
  return out;
}

struct Budget {
  const char* name;
  std::size_t top_k;
  std::size_t cm_width;
};

struct Outcome {
  double dip_depth = 0.0;
  double worst_tp = 0.0;
  double median_tp = 0.0;
  std::size_t dip_windows = 0;
  adapt::OnlineResult result;
};

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace

int main() {
  bench::print_banner("Figure 11 (online adaptation)",
                      "worst-window throughput dip: full vs incremental "
                      "live re-allocation");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto corpus_stats = [&] {
    // Allocate from phase-A statistics only — phase B is what the online
    // loop has to discover on its own.
    auto cfg = workload::CorpusConfig::trec_wt_like(bench::scale(),
                                                    filters.vocabulary);
    const auto warm = workload::CorpusGenerator(cfg).generate(d.batch_docs);
    return workload::compute_stats(warm, filters.vocabulary);
  }();

  const std::size_t total_docs = 2 * d.batch_docs;
  const std::size_t window_docs = total_docs / 10;  // 10 observation windows

  bench::BenchReporter report("fig11_adapt");
  report.meta()["nodes"] = d.nodes;
  report.meta()["filters"] = filters.table.size();
  report.meta()["docs"] = total_docs;
  report.meta()["window_docs"] = window_docs;
  report.meta()["migration_batch"] = fault::kDefaultMigrationBatch;

  const Budget budgets[] = {{"lo", 256, 512}, {"hi", 1024, 2048}};
  const std::size_t drift_switches[] = {1, 3};

  std::printf("P=%zu, N=%zu, %zu docs in windows of %zu\n\n",
              filters.table.size(), d.nodes, total_docs, window_docs);
  std::printf("%-34s %-10s %-10s %-9s %-8s %-10s %-8s\n", "config",
              "median/s", "worst/s", "dip", "dipwin", "moved", "stall_ms");

  // dip ordering verdict per (drift, budget): incremental < full required.
  std::map<std::string, double> dips;

  for (const std::size_t switches : drift_switches) {
    const auto stream =
        make_stream(filters.vocabulary, total_docs, switches);
    for (const Budget& b : budgets) {
      for (const bool full : {true, false}) {
        cluster::Cluster c(bench::cluster_config(d, d.nodes));
        core::MoveScheme scheme(c, bench::move_options(d));
        scheme.register_filters(filters.table);
        scheme.allocate(filters.stats, corpus_stats);
        // Pass-through transport: migration batches and publish hops share
        // the message layer (and its accounting) at zero perturbation.
        net::Transport transport(c.engine(), {});

        adapt::OnlineOptions opts;
        opts.window_docs = window_docs;
        opts.min_observations = 50;
        opts.run.inject_rate_per_sec = 5'000.0;
        opts.run.collect_latencies = false;
        opts.run.transport = &transport;
        opts.estimator.filter_top_k = b.top_k;
        opts.estimator.doc_top_k = b.top_k;
        opts.estimator.cm_width = b.cm_width;
        opts.full_reallocation = full;

        Outcome o;
        o.result = adapt::run_online(scheme, stream, opts);

        std::vector<double> tps;
        for (const auto& w : o.result.windows) {
          tps.push_back(w.throughput_per_sec);
        }
        o.median_tp = median(tps);
        o.worst_tp = tps.empty()
                         ? 0.0
                         : *std::min_element(tps.begin(), tps.end());
        o.dip_depth =
            o.median_tp > 0.0 ? 1.0 - o.worst_tp / o.median_tp : 0.0;
        for (const double tp : tps) {
          if (tp < 0.9 * o.median_tp) ++o.dip_windows;
        }

        const std::string config = std::string(full ? "full" : "incremental") +
                                   "_" + b.name + "_drift" +
                                   std::to_string(switches);
        const auto& m = o.result.metrics;
        const auto& acc = m.adapt_acc;

        for (std::size_t w = 0; w < o.result.windows.size(); ++w) {
          const auto& win = o.result.windows[w];
          auto& row = report.add_row(config + "_windows");
          row["knobs"]["window"] = w;
          row["metrics"]["throughput_per_sec"] = win.throughput_per_sec;
          row["metrics"]["l1"] = win.l1;
          row["metrics"]["drifted"] = win.drifted;
          row["metrics"]["homes_started"] = win.homes_started;
          row["metrics"]["postings_moved"] = win.postings_moved;
        }

        auto& row = report.add_row(config);
        row["knobs"]["mode"] = full ? "full" : "incremental";
        row["knobs"]["sketch_budget"] = b.name;
        row["knobs"]["drift_switches"] = switches;
        bench::BenchReporter::fill_run_metrics(row, m);
        row["metrics"]["dip_depth"] = o.dip_depth;
        row["metrics"]["worst_window_tput"] = o.worst_tp;
        row["metrics"]["median_window_tput"] = o.median_tp;
        row["metrics"]["dip_windows"] = o.dip_windows;
        row["metrics"]["reallocations"] = o.result.reallocations;
        row["metrics"]["homes_migrated"] = acc.homes_migrated;
        row["metrics"]["homes_aborted"] = acc.homes_aborted;
        row["metrics"]["postings_moved"] = acc.postings_moved;
        row["metrics"]["entries_retired"] = acc.entries_retired;
        row["metrics"]["migration_batches"] = acc.migration_batches;
        row["metrics"]["sketch_bytes"] = acc.sketch_bytes;
        row["metrics"]["sketch_error_bound"] = acc.sketch_error_bound;
        row["metrics"]["stall_us"] = acc.stall_us;
        row["metrics"]["terms_drifted"] = acc.terms_drifted;

        dips[config] = o.dip_depth;

        std::printf("%-34s %-10.4g %-10.4g %-9.4f %-8zu %-10llu %-8.2f\n",
                    config.c_str(), o.median_tp, o.worst_tp, o.dip_depth,
                    o.dip_windows,
                    static_cast<unsigned long long>(acc.postings_moved),
                    acc.stall_us / 1e3);
      }
    }
  }

  // The acceptance gate: at equal sketch budget and drift profile, the
  // incremental dip must be strictly shallower than the full one.
  bool ordered = true;
  std::printf("\ndip ordering (incremental < full at equal budget):\n");
  for (const std::size_t switches : drift_switches) {
    for (const Budget& b : budgets) {
      const std::string suffix =
          std::string("_") + b.name + "_drift" + std::to_string(switches);
      const double inc = dips["incremental" + suffix];
      const double ful = dips["full" + suffix];
      const bool ok = inc < ful;
      ordered = ordered && ok;
      std::printf("  %-22s incremental %.4f  vs  full %.4f   %s\n",
                  suffix.c_str() + 1, inc, ful, ok ? "ok" : "VIOLATED");
    }
  }
  // Below scale 0.02 the windows are too small for the dip to resolve
  // (a handful of allocated homes, phase switches landing mid-window), so
  // the verdicts are printed but not enforced — the determinism gate runs
  // at 0.02 and EXPERIMENTS.md reports 0.1, both enforced.
  const bool enforce = bench::scale() >= 0.02;
  if (!ordered) {
    std::printf("\n%s: full re-allocation did not cost more than "
                "incremental migration%s\n", enforce ? "FAIL" : "note",
                enforce ? "" : " (scale too small to enforce)");
  }

  return report.write() && (ordered || !enforce) ? 0 : 1;
}
