// Fig. 9(c/d) extended into a dynamic churn timeline: instead of measuring
// static before/after failure points, a scripted FaultPlan fails 20% of the
// cluster at T/3 and recovers it at 2T/3 *while documents are in flight*.
// The timeline shows the throughput dip, the availability dent, the hinted
// handoff queue filling and draining, and incremental repair pulling
// availability back up before the nodes themselves return. One curve per
// scheme (Move / IL / RS); machine-readable output in BENCH_fig9_churn.json.

#include <cmath>
#include <memory>

#include "bench_report.hpp"
#include "bench_util.hpp"
#include "fault/churn_runner.hpp"

using namespace move;

namespace {

fault::FaultPlan make_plan(std::size_t nodes, double fail_fraction,
                           sim::Time t_fail, sim::Time t_recover,
                           std::uint64_t seed) {
  // Explicit victims (not kFailFraction) so every scheme sees the exact
  // same node set and the recover events name the same nodes.
  fault::FaultPlan plan(seed);
  common::SplitMix64 rng(seed);
  std::vector<std::uint32_t> ids(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    ids[i] = static_cast<std::uint32_t>(i);
  }
  const auto victims = static_cast<std::size_t>(
      std::ceil(fail_fraction * static_cast<double>(nodes)));
  for (std::size_t k = 0; k < victims && k < nodes; ++k) {
    const auto pick = k + common::uniform_below(rng, ids.size() - k);
    std::swap(ids[k], ids[pick]);
    plan.fail(NodeId{ids[k]}, t_fail);
    plan.recover(NodeId{ids[k]}, t_recover);
  }
  return plan;
}

}  // namespace

int main() {
  bench::print_banner("Figure 9 (churn)",
                      "throughput & availability vs time under scripted churn");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary)
                        .generate(d.batch_docs);
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  // Injection spans T; failures land at T/3, recovery at 2T/3.
  const double inject_rate = 2'000.0;
  const sim::Time span_us =
      1'000'000.0 * static_cast<double>(d.batch_docs) / inject_rate;
  const double fail_fraction = 0.2;
  const sim::Time t_fail = span_us / 3.0;
  const sim::Time t_recover = 2.0 * span_us / 3.0;

  bench::BenchReporter report("fig9_churn");
  report.meta()["nodes"] = d.nodes;
  report.meta()["filters"] = filters.table.size();
  report.meta()["docs"] = d.batch_docs;
  report.meta()["inject_rate_per_sec"] = inject_rate;
  report.meta()["fail_fraction"] = fail_fraction;
  report.meta()["t_fail_us"] = t_fail;
  report.meta()["t_recover_us"] = t_recover;

  std::printf("P=%zu, N=%zu, Q=%zu docs at %.0f/s; fail %.0f%% at T/3, "
              "recover at 2T/3\n\n",
              filters.table.size(), d.nodes, d.batch_docs, inject_rate,
              fail_fraction * 100.0);
  std::printf("%-6s %-12s %-10s %-10s %-12s %-12s %-10s\n", "scheme",
              "tput/s", "avail_min", "avail_avg", "unavail_ms",
              "hints(p/d)", "repaired");

  const char* names[] = {"move", "il", "rs"};
  for (const char* name : names) {
    cluster::Cluster c(bench::cluster_config(d, d.nodes));
    std::unique_ptr<core::Scheme> scheme;
    if (name[0] == 'm') {
      auto s = std::make_unique<core::MoveScheme>(c, bench::move_options(d));
      s->register_filters(filters.table);
      s->allocate(filters.stats, corpus_stats);
      scheme = std::move(s);
    } else if (name[0] == 'i') {
      scheme = std::make_unique<core::IlScheme>(c);
      scheme->register_filters(filters.table);
    } else {
      scheme = std::make_unique<core::RsScheme>(c);
      scheme->register_filters(filters.table);
    }

    const auto plan =
        make_plan(d.nodes, fail_fraction, t_fail, t_recover, 0xc4u);
    fault::ChurnConfig cfg;
    cfg.inject_rate_per_sec = inject_rate;
    cfg.sample_interval_us = span_us / 20.0;
    // Repair pump sized so re-replication of a 20% loss completes within
    // the failure window (the availability curve recovers before 2T/3).
    cfg.injector.repair_batch = 16'384;
    cfg.injector.repair_interval_us = 5'000.0;
    const auto result = fault::run_churn(*scheme, docs, plan, cfg);

    for (const auto& s : result.samples) {
      auto& row = report.add_row(name);
      row["knobs"]["t_us"] = s.t_us;
      row["metrics"]["throughput_per_sec"] = s.throughput_per_sec;
      row["metrics"]["availability"] = s.availability;
      row["metrics"]["live_nodes"] = s.live_nodes;
      row["metrics"]["handoff_queue_depth"] = s.handoff_queue_depth;
      row["metrics"]["repair_backlog"] = s.repair_backlog;
      row["metrics"]["failed_routes"] = s.fault.failed_routes;
      row["metrics"]["failovers"] = s.fault.failovers;
      row["metrics"]["repair_postings_moved"] = s.fault.repair_postings_moved;
    }
    auto& summary = report.add_row(std::string(name) + "_summary");
    bench::BenchReporter::fill_run_metrics(summary, result.metrics);
    summary["metrics"]["mean_availability"] = result.mean_availability;
    summary["metrics"]["min_availability"] = result.min_availability;
    summary["metrics"]["unavailable_us"] = result.unavailable_us;
    summary["metrics"]["hints_parked"] = result.registry_hints_parked;
    summary["metrics"]["hints_drained"] = result.registry_hints_drained;
    summary["metrics"]["registry_readable"] = result.registry_readable;
    summary["metrics"]["failed_routes"] =
        result.metrics.fault_acc.failed_routes;
    summary["metrics"]["route_retries"] =
        result.metrics.fault_acc.route_retries;
    summary["metrics"]["repair_postings_moved"] =
        result.metrics.fault_acc.repair_postings_moved;

    std::printf("%-6s %-12.4g %-10.4f %-10.4f %-12.1f %4llu/%-7llu %-10llu\n",
                name, result.metrics.throughput_per_sec(),
                result.min_availability, result.mean_availability,
                result.unavailable_us / 1'000.0,
                static_cast<unsigned long long>(result.registry_hints_parked),
                static_cast<unsigned long long>(result.registry_hints_drained),
                static_cast<unsigned long long>(
                    result.metrics.fault_acc.repair_postings_moved));
  }

  std::printf("\n(expected: availability dips at T/3, recovers via repair "
              "before 2T/3; hints drain at 2T/3)\n");
  return report.write() ? 0 : 1;
}
