#pragma once

// Shared driver for Fig. 6 (TREC-AP-like docs) and Fig. 7 (TREC-WT-like
// docs): single-node throughput of matching Q documents against P filters
// with a fixed product R = P x Q, for R in {1e5, 1e6, 1e7} (scaled).
//
// Metric. The paper fixes the work product R and asks how fast one node
// completes it; its reported fold-changes (8.92x from Q=200 -> Q=10 at
// R=1e6; R=1e7 ~6.714x slower than 1e5 at Q=1000; WT ~81.84x AP at R=1e6,
// Q=100) are only mutually consistent with a *batch completion rate* — work
// done per unit time, R/T — not documents per second (which, at fixed R,
// can only fall as P grows). We therefore report R/T (scaled by 1e-3; the
// paper's y-axis units are arbitrary).
//
// Shapes to reproduce:
//  * for fixed R, larger P (fewer documents) completes the batch faster,
//    because each document costs |d| posting-list seeks and AP articles
//    average ~6055 terms — fewer documents means fewer seeks;
//  * at very large P the posting lists outgrow memory and per-posting cost
//    rises (disk-bound), so the curve dips at the largest P (paper: R=1e7,
//    Q=2 below Q=10) — modeled by a spill multiplier beyond `mem_filters`;
//  * larger R is outright slower; WT vastly outperforms AP per unit work.

#include <array>

#include "bench_report.hpp"
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/stats.hpp"
#include "index/match_scratch.hpp"
#include "index/sift_matcher.hpp"

namespace move::bench {

/// Hash-shard count used to profile how evenly the matching traffic would
/// split under the ParallelMatcher's term partitioning (§III-B collapsed
/// onto one machine). Fixed so the imbalance figure is comparable across
/// scales.
inline constexpr std::size_t kProfileShards = 8;

struct SingleNodeCost {
  sim::CostModel cost;
  /// Filters that fit in memory; beyond this, posting scans slow down
  /// (paper: the disk becomes the bottleneck around P = 5e6 at full scale).
  double mem_filters = 1e6 * scale();
  /// How steeply per-posting cost grows past the memory capacity (tuned so
  /// the dip at the largest P is "slight", as in the paper).
  double spill_factor = 2.6;

  [[nodiscard]] double scan_multiplier(double filters) const {
    if (filters <= mem_filters) return 1.0;
    return 1.0 + spill_factor * (filters / mem_filters - 1.0);
  }
};

/// One (P, Q) batch measurement, with the side observations the JSON
/// report carries.
struct SingleNodeBatch {
  double total_us = 0.0;             ///< virtual service time of the batch
  index::MatchAccounting acc;        ///< summed over all documents
  /// Peak-to-mean of per-shard postings scanned under a kProfileShards-way
  /// term hash partition (1.0 = the parallel matcher would balance
  /// perfectly on this workload).
  double shard_imbalance = 1.0;
};

/// Virtual-time latency of matching `num_docs` docs against `num_filters`
/// filters with full SIFT on one node.
inline SingleNodeBatch single_node_batch(const workload::TermSetTable& filters,
                                         std::size_t num_filters,
                                         const workload::TermSetTable& docs,
                                         std::size_t num_docs,
                                         const SingleNodeCost& model) {
  index::FilterStore store;
  index::InvertedIndex index;
  for (std::size_t i = 0; i < num_filters && i < filters.size(); ++i) {
    const auto id = store.add(filters.row(i));
    index.add(id, store.terms(id));
  }
  index.finalize();  // registration done: pack lists into the flat arena
  const index::SiftMatcher matcher(store, index);
  const double mult =
      model.scan_multiplier(static_cast<double>(num_filters));
  std::vector<FilterId> out;
  index::MatchScratch scratch;
  SingleNodeBatch result;
  std::array<double, kProfileShards> shard_scanned{};
  for (std::size_t i = 0; i < num_docs; ++i) {
    const auto doc = docs.row(i % docs.size());
    const auto acc = matcher.match(doc, index::MatchOptions{}, out, scratch);
    result.acc += acc;
    result.total_us += model.cost.handle_base_us +
                       model.cost.seek_per_list_us *
                           static_cast<double>(acc.lists_retrieved) +
                       mult * model.cost.scan_per_posting_us *
                           static_cast<double>(acc.postings_scanned);
    // Attribute each retrieved list's mass to its hash shard — the slice a
    // ParallelMatcher worker would scan for this document.
    for (TermId t : doc) {
      shard_scanned[common::mix64(t.value) % kProfileShards] +=
          static_cast<double>(index.posting_count(t));
    }
  }
  if (common::mean(shard_scanned) > 0) {
    result.shard_imbalance = common::peak_to_mean(shard_scanned);
  }
  return result;
}

inline int run_single_node_sweep(bool wt_mode, const char* bench_name) {
  print_banner(wt_mode ? "Figure 7" : "Figure 6",
               wt_mode ? "single-node throughput, TREC-WT-like docs"
                       : "single-node throughput, TREC-AP-like docs");
  const PaperDefaults d;
  const double s = scale();
  const auto filters = make_filters(
      std::max<std::size_t>(d.filters, static_cast<std::size_t>(1e7 * s / 2)));

  auto gen = wt_mode ? wt_generator(filters.vocabulary)
                     : ap_generator(filters.vocabulary);
  // Cap the distinct docs generated; the sweep reuses them round-robin.
  const auto docs = gen.generate(std::min<std::size_t>(
      wt_mode ? 2'000 : 300, gen.config().num_docs));
  std::printf("docs pool: %zu (%.1f terms/doc)\n\n", docs.size(),
              docs.mean_row_size());

  BenchReporter report(bench_name);
  report.meta()["corpus"] = wt_mode ? "trec-wt-like" : "trec-ap-like";
  report.meta()["docs_pool"] = docs.size();
  report.meta()["mean_terms_per_doc"] = docs.mean_row_size();
  report.meta()["profile_shards"] = kProfileShards;
  obs::Registry registry;
  obs::Counter& rows_counter = registry.counter("bench.rows");

  const SingleNodeCost model;
  std::printf("%-14s %-10s %-12s %-18s\n", "R = P x Q", "Q (docs)",
              "P (filters)", "throughput (R/T/1e3)");
  double tput_q1000_r1e5 = 0, tput_q1000_r1e7 = 0;
  for (double r_paper : {1e5, 1e6, 1e7}) {
    const double R = r_paper * s;
    char series[32];
    std::snprintf(series, sizeof series, "R=%g", r_paper);
    for (std::size_t q : {2ul, 10ul, 50ul, 100ul, 200ul, 500ul, 1000ul}) {
      const auto p = static_cast<std::size_t>(R / static_cast<double>(q));
      if (p == 0 || p > filters.table.size()) continue;
      const auto batch = single_node_batch(filters.table, p, docs, q, model);
      const double tput =
          batch.total_us > 0 ? R / (batch.total_us / 1e6) / 1e3 : 0.0;
      std::printf("%-14.3g %-10zu %-12zu %-18.4g\n", R, q, p, tput);

      obs::Json& row = report.add_row(series);
      row["knobs"]["R"] = R;
      row["knobs"]["Q"] = q;
      row["knobs"]["P"] = p;
      obs::Json& m = row["metrics"];
      m["throughput"] = tput;
      m["batch_us"] = batch.total_us;
      // A single serial SIFT node: it is the (only) bottleneck by
      // construction, so its busy fraction over the batch makespan is 1.
      m["node_busy_fraction"] = 1.0;
      m["shard_imbalance"] = batch.shard_imbalance;
      m["lists_retrieved"] = batch.acc.lists_retrieved;
      m["postings_scanned"] = batch.acc.postings_scanned;
      m["candidates_verified"] = batch.acc.candidates_verified;
      rows_counter.inc();
      registry.gauge("bench.last.shard_imbalance").set(batch.shard_imbalance);
      registry.gauge("bench.last.node_busy_fraction").set(1.0);

      if (q == 1000 && r_paper == 1e5) tput_q1000_r1e5 = tput;
      if (q == 1000 && r_paper == 1e7) tput_q1000_r1e7 = tput;
    }
    std::printf("\n");
  }
  if (tput_q1000_r1e5 > 0 && tput_q1000_r1e7 > 0) {
    // Same Q, different R: batch time T = R / throughput, so
    // T(1e7)/T(1e5) = 100 * tput(1e5)/tput(1e7). Paper reports ~6.714x more
    // processing time for R=1e7 than for R=1e5 at Q=1000.
    const double ratio = 100.0 * tput_q1000_r1e5 / tput_q1000_r1e7;
    std::printf("processing-time ratio R=1e7 vs 1e5 at Q=1000: %.3f "
                "(paper: 6.714)\n",
                ratio);
    report.meta()["time_ratio_r1e7_vs_r1e5_q1000"] = ratio;
  }
  report.attach_registry(registry);
  return report.write() ? 0 : 1;
}

}  // namespace move::bench
