// Fig. 8(b) — cluster throughput vs document batch size Q
// (paper sweep 10..1e4 docs at N=20, P=4e6; expected: all schemes' Q/makespan
// falls as the batch grows — small bursts complete at pipeline latency,
// large bursts converge to bottleneck capacity — and Move degrades the
// least: 3.62x vs 6.09x (RS) and 14.11x (IL) from Q=10 to Q=1000).

#include "cluster_sweep.hpp"

using namespace move;

int main() {
  bench::print_banner("Figure 8(b)", "cluster throughput vs document batch");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  // 2000 distinct docs, cycled for the larger batches.
  const auto docs =
      bench::wt_generator(filters.vocabulary).generate(2'000);
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  std::printf("N=%zu nodes, P=%zu filters, C=%.3g copies/node\n\n", d.nodes,
              filters.table.size(), d.capacity);
  bench::BenchReporter report("fig8b_throughput_vs_docs");
  report.meta()["nodes"] = d.nodes;
  report.meta()["filters"] = filters.table.size();
  report.meta()["capacity"] = d.capacity;
  bench::SchemeSet set(d, filters, corpus_stats, filters.table.size(),
                       d.nodes);
  bench::print_sweep_header("Q (docs)");
  bench::SweepResult at10, at1000;
  for (std::size_t q : {10ul, 100ul, 500ul, 1000ul, 5000ul, 10000ul}) {
    const auto m = set.run_batch_metrics(docs, q);
    const auto r = m.throughput();
    bench::print_sweep_row(static_cast<double>(q), r);
    bench::report_sweep_rows(report, "Q", static_cast<double>(q), m);
    obs::Registry registry;
    m.move_m.export_metrics(registry);
    set.move_cluster().export_metrics(registry);
    report.attach_registry(registry);  // final sweep point wins
    if (q == 10) at10 = r;
    if (q == 1000) at1000 = r;
  }
  std::printf("\ndegradation Q=10 -> Q=1000:  Move %.2fx  RS %.2fx  IL %.2fx"
              "   (paper: 3.62 / 6.09 / 14.11)\n",
              at10.move_tput / at1000.move_tput,
              at10.rs_tput / at1000.rs_tput, at10.il_tput / at1000.il_tput);
  return report.write() ? 0 : 1;
}
