#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

#include "bench_util.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/metrics.hpp"

/// Machine-readable bench output (see DESIGN.md "Bench JSON schema").
///
/// Each figure bench keeps printing its human-readable table to stdout and
/// additionally writes `BENCH_<name>.json` so plots/regressions never have
/// to scrape stdout. Layout:
///
/// ```json
/// {
///   "bench": "fig8b_throughput_vs_docs",
///   "schema_version": 1,
///   "scale": 0.1,
///   "meta": { "nodes": 20, ... },            // bench-wide knobs
///   "rows": [
///     { "series": "move",                     // scheme / curve name
///       "knobs": { "Q": 1000 },               // the swept x-value(s)
///       "metrics": { "throughput_per_sec": 93.1,
///                    "node_busy_fraction": 0.98,
///                    "shard_imbalance": 1.4, ... } },
///     ...
///   ],
///   "registry": { "counters": ..., "gauges": ..., "histograms": ... }
/// }
/// ```
///
/// The file lands in $MOVE_BENCH_OUT if set (must be an existing
/// directory), else the current working directory.
namespace move::bench {

class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {
    root_["bench"] = name_;
    root_["schema_version"] = 1;
    root_["scale"] = scale();
    root_["meta"] = obs::Json::object();
    root_["rows"] = obs::Json::array();
  }

  /// Bench-wide parameters (`meta` object).
  obs::Json& meta() { return root_["meta"]; }

  /// Appends a row for one (series, x) point; fill `row["knobs"]` and
  /// `row["metrics"]` on the returned reference before the next add_row.
  obs::Json& add_row(std::string_view series) {
    obs::Json row = obs::Json::object();
    row["series"] = series;
    row["knobs"] = obs::Json::object();
    row["metrics"] = obs::Json::object();
    auto& rows = root_["rows"].as_array();
    rows.push_back(std::move(row));
    return rows.back();
  }

  /// Embeds a registry snapshot (typically exported from the final
  /// configuration's run) under the top-level `registry` key.
  void attach_registry(const obs::Registry& registry) {
    root_["registry"] = obs::registry_to_json(registry);
  }

  /// Copies the RunMetrics summary scalars into a row's `metrics` object.
  /// `shard_imbalance` is the per-node busy-time peak-to-mean: on the
  /// cluster, nodes are the shards of the IL-style term partitioning.
  static void fill_run_metrics(obs::Json& row, const sim::RunMetrics& m) {
    obs::Json& metrics = row["metrics"];
    metrics["throughput_per_sec"] = m.throughput_per_sec();
    metrics["makespan_us"] = m.makespan_us;
    metrics["documents_completed"] = m.documents_completed;
    metrics["notifications"] = m.notifications;
    metrics["node_busy_fraction"] = m.max_busy_fraction();
    metrics["mean_busy_fraction"] = m.mean_busy_fraction();
    metrics["shard_imbalance"] = m.busy_imbalance();
    metrics["storage_imbalance"] = m.storage_imbalance();
    metrics["postings_scanned"] = m.match_acc.postings_scanned;
    metrics["lists_retrieved"] = m.match_acc.lists_retrieved;
    metrics["candidates_verified"] = m.match_acc.candidates_verified;
    metrics["postings_per_sec"] = m.postings_per_sec();
  }

  /// Writes `BENCH_<name>.json` (pretty-printed). Returns true on success;
  /// on failure prints a warning and leaves the bench's exit status alone —
  /// the stdout table remains authoritative for interactive runs.
  bool write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("MOVE_BENCH_OUT")) {
      if (*env != '\0') dir = env;
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    const std::string text = root_.dump(2) + "\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (ok) std::printf("\nwrote %s\n", path.c_str());
    return ok;
  }

  [[nodiscard]] const obs::Json& json() const { return root_; }

 private:
  std::string name_;
  obs::Json root_;
};

}  // namespace move::bench
