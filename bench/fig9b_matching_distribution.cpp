// Fig. 9(b) — ranked per-node matching cost of the three schemes, normalized
// to RS's average, measured over a default dissemination run. Expected
// shape: IL most skewed (hot terms hammer their home nodes), Move the most
// even (random partition selection spreads documents), RS in between.

#include <algorithm>

#include "bench_util.hpp"
#include "common/stats.hpp"

using namespace move;

int main() {
  bench::print_banner("Figure 9(b)", "ranked per-node matching cost");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary)
                        .generate(static_cast<std::size_t>(
                            d.batch_docs));
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  auto run = [&](core::Scheme& scheme) {
    return bench::run_burst(scheme, docs, d.batch_docs);
  };

  cluster::Cluster c_mv(bench::cluster_config(d, d.nodes));
  core::MoveScheme mv(c_mv, bench::move_options(d));
  mv.register_filters(filters.table);
  mv.allocate(filters.stats, corpus_stats);
  const auto m_mv = run(mv);

  cluster::Cluster c_rs(bench::cluster_config(d, d.nodes));
  core::RsScheme rs(c_rs);
  rs.register_filters(filters.table);
  const auto m_rs = run(rs);

  cluster::Cluster c_il(bench::cluster_config(d, d.nodes));
  core::IlScheme il(c_il);
  il.register_filters(filters.table);
  const auto m_il = run(il);

  const double rs_avg = common::mean(m_rs.node_busy_us);
  auto ranked_norm = [&](std::vector<double> busy) {
    for (double& v : busy) v /= rs_avg;
    std::sort(busy.begin(), busy.end(), std::greater<>());
    return busy;
  };
  const auto move_r = ranked_norm(m_mv.node_busy_us);
  const auto rs_r = ranked_norm(m_rs.node_busy_us);
  const auto il_r = ranked_norm(m_il.node_busy_us);

  std::printf("P=%zu, N=%zu, normalized to RS average busy time\n\n",
              filters.table.size(), d.nodes);
  std::printf("%-10s %-10s %-10s %-10s\n", "rank", "Move", "IL", "RS");
  for (std::size_t i = 0; i < d.nodes; ++i) {
    std::printf("%-10zu %-10.3f %-10.3f %-10.3f\n", i + 1, move_r[i], il_r[i],
                rs_r[i]);
  }
  std::printf("\ngini  Move=%.3f  IL=%.3f  RS=%.3f   (paper: Move most even, "
              "IL most skewed)\n",
              common::gini(m_mv.node_busy_us), common::gini(m_il.node_busy_us),
              common::gini(m_rs.node_busy_us));
  return 0;
}
