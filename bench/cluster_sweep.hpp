#pragma once

// Shared driver for the Fig. 8 cluster benches: builds the three schemes
// (Move / RS / IL) once per cluster configuration and measures burst
// throughput for one or more document batch sizes.
//
// Measurement semantics. §VI-A3/§VI-C: Q is the *number of documents*
// (default 1e3); clients inject them as fast as they can ("each client
// injects 1000 documents per second; by using more clients, we can
// increase the rate"), and throughput is the number of completed documents
// per second over the whole run — i.e. Q / makespan, including the queue
// drain behind the bottleneck node. That is why Fig. 8(b)'s curves fall as
// Q grows (small bursts finish at pipeline latency; large bursts converge
// to the bottleneck capacity) and why the scheme orderings reflect each
// scheme's bottleneck service time.
//
// Paper setup: defaults P = 4e6 filters, Q = 1e3 docs, N = 20 nodes,
// C = 3e6 filter copies per node, TREC WT documents. Expected shapes:
//  * Fig. 8(a) P sweep: throughput falls with P; Move > RS > IL
//    (93 / 70 / 42 at P = 1e7);
//  * Fig. 8(b) Q sweep: all fall as the batch grows; Move degrades least
//    (3.62x vs 6.09x RS and 14.11x IL from Q=10 to Q=1000);
//  * Fig. 8(c) N sweep: all rise with more nodes; Move stays highest.

#include <memory>

#include "bench_report.hpp"
#include "bench_util.hpp"

namespace move::bench {

/// Aggregate injection rate of the client pool (fast enough that injection
/// is never the bottleneck for the sweeps we run).
inline constexpr double kBurstRate = 50'000.0;

struct SweepResult {
  double move_tput = 0;
  double rs_tput = 0;
  double il_tput = 0;
};

/// Full per-scheme run metrics for one batch (the JSON report needs more
/// than the throughput scalar: busy fractions, imbalance, storage skew).
struct SweepMetrics {
  sim::RunMetrics move_m, rs_m, il_m;

  [[nodiscard]] SweepResult throughput() const {
    return {move_m.throughput_per_sec(), rs_m.throughput_per_sec(),
            il_m.throughput_per_sec()};
  }
};

/// The three schemes registered over the same filter subset on three
/// identical clusters; reusable across batch sizes so the expensive
/// registration happens once per configuration.
class SchemeSet {
 public:
  SchemeSet(const PaperDefaults& d, const FilterWorkload& filters,
            const workload::TraceStats& corpus_stats, std::size_t num_filters,
            std::size_t nodes)
      : defaults_(d) {
    const workload::TermSetTable* use = &filters.table;
    const workload::TraceStats* use_stats = &filters.stats;
    if (num_filters < filters.table.size()) {
      for (std::size_t i = 0; i < num_filters; ++i) {
        subset_.add(filters.table.row(i));
      }
      subset_stats_ = workload::compute_stats(subset_, filters.vocabulary);
      use = &subset_;
      use_stats = &subset_stats_;
    }

    c_mv_ = std::make_unique<cluster::Cluster>(cluster_config(d, nodes));
    mv_ = std::make_unique<core::MoveScheme>(*c_mv_, move_options(d));
    mv_->register_filters(*use);
    mv_->allocate(*use_stats, corpus_stats);

    c_rs_ = std::make_unique<cluster::Cluster>(cluster_config(d, nodes));
    rs_ = std::make_unique<core::RsScheme>(*c_rs_);
    rs_->register_filters(*use);

    c_il_ = std::make_unique<cluster::Cluster>(cluster_config(d, nodes));
    il_ = std::make_unique<core::IlScheme>(*c_il_);
    il_->register_filters(*use);
  }

  /// Injects the first `batch` documents as a burst into each scheme and
  /// returns Q/makespan per scheme.
  [[nodiscard]] SweepResult run_batch(const workload::TermSetTable& docs,
                                      std::size_t batch) const {
    return run_batch_metrics(docs, batch).throughput();
  }

  /// Same burst, but keeps each scheme's full RunMetrics.
  [[nodiscard]] SweepMetrics run_batch_metrics(
      const workload::TermSetTable& docs, std::size_t batch) const {
    SweepMetrics out;
    out.move_m = run_metrics(*mv_, docs, batch);
    out.rs_m = run_metrics(*rs_, docs, batch);
    out.il_m = run_metrics(*il_, docs, batch);
    return out;
  }

  [[nodiscard]] const cluster::Cluster& move_cluster() const { return *c_mv_; }

  [[nodiscard]] core::MoveScheme& move_scheme() { return *mv_; }
  [[nodiscard]] core::RsScheme& rs_scheme() { return *rs_; }
  [[nodiscard]] core::IlScheme& il_scheme() { return *il_; }

  /// Runs one scheme on a burst of `batch` docs; exposed for the fig9
  /// benches that need per-node metrics rather than just throughput.
  static sim::RunMetrics run_metrics(core::Scheme& scheme,
                                     const workload::TermSetTable& docs,
                                     std::size_t batch) {
    core::RunConfig rc;
    rc.inject_rate_per_sec = kBurstRate;
    rc.collect_latencies = false;
    if (batch == docs.size()) return core::run_dissemination(scheme, docs, rc);
    // Cycle the pool when the batch exceeds it (distributionally identical,
    // far cheaper than generating hundreds of thousands of distinct docs).
    workload::TermSetTable subset;
    for (std::size_t i = 0; i < batch; ++i) {
      subset.add(docs.row(i % docs.size()));
    }
    return core::run_dissemination(scheme, subset, rc);
  }

 private:
  static double one(core::Scheme& scheme, const workload::TermSetTable& docs,
                    std::size_t batch) {
    return run_metrics(scheme, docs, batch).throughput_per_sec();
  }

  PaperDefaults defaults_;
  workload::TermSetTable subset_;
  workload::TraceStats subset_stats_;
  std::unique_ptr<cluster::Cluster> c_mv_, c_rs_, c_il_;
  std::unique_ptr<core::MoveScheme> mv_;
  std::unique_ptr<core::RsScheme> rs_;
  std::unique_ptr<core::IlScheme> il_;
};

inline void print_sweep_header(const char* xlabel) {
  std::printf("%-14s %-12s %-12s %-12s\n", xlabel, "Move", "RS", "IL");
}

inline void print_sweep_row(double x, const SweepResult& r) {
  std::printf("%-14.4g %-12.4g %-12.4g %-12.4g\n", x, r.move_tput, r.rs_tput,
              r.il_tput);
}

/// Appends one JSON row per scheme for the swept knob value `x`.
inline void report_sweep_rows(BenchReporter& report, const char* knob,
                              double x, const SweepMetrics& m) {
  const std::pair<const char*, const sim::RunMetrics*> series[] = {
      {"move", &m.move_m}, {"rs", &m.rs_m}, {"il", &m.il_m}};
  for (const auto& [name, metrics] : series) {
    obs::Json& row = report.add_row(name);
    row["knobs"][knob] = x;
    BenchReporter::fill_run_metrics(row, *metrics);
  }
}

}  // namespace move::bench
