// Figure 10 (extension): dissemination over a *lossy* network. The paper's
// experiments assume a reliable datacenter fabric; this bench drops that
// assumption and sweeps per-attempt message loss over the schemes, with the
// net layer's end-to-end reliability (timeouts, jittered retries under one
// deadline, receiver-side dedup) switched on and off:
//   * with retries, delivery ratio holds at 1.0 through 5% loss — the
//     reliability layer earns its retry traffic;
//   * without retries, delivery ratio tracks ~ (1 - loss)^hops and documents
//     silently go incomplete.
// A second experiment scripts a partition at T/3 healed at 2T/3 (via
// FaultPlan net events) and samples the timeline: breakers trip on the
// unreachable side, routing fails over, and the heal restores delivery.
// Machine-readable output in BENCH_fig10_lossy.json.

#include <cstdio>
#include <memory>

#include "bench_report.hpp"
#include "bench_util.hpp"
#include "fault/churn_runner.hpp"

using namespace move;

namespace {

std::unique_ptr<core::Scheme> make_scheme(const char* name,
                                          cluster::Cluster& c,
                                          const bench::PaperDefaults& d,
                                          const bench::FilterWorkload& filters,
                                          const workload::TraceStats& corpus) {
  std::unique_ptr<core::Scheme> scheme;
  if (name[0] == 'm') {
    auto s = std::make_unique<core::MoveScheme>(c, bench::move_options(d));
    s->register_filters(filters.table);
    s->allocate(filters.stats, corpus);
    scheme = std::move(s);
  } else if (name[0] == 'i') {
    scheme = std::make_unique<core::IlScheme>(c);
    scheme->register_filters(filters.table);
  } else {
    scheme = std::make_unique<core::RsScheme>(c);
    scheme->register_filters(filters.table);
  }
  return scheme;
}

}  // namespace

int main() {
  bench::print_banner("Figure 10 (lossy network)",
                      "delivery ratio & throughput vs link loss; partitions");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary)
                        .generate(d.batch_docs);
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  const double inject_rate = 2'000.0;
  const sim::Time span_us =
      1'000'000.0 * static_cast<double>(d.batch_docs) / inject_rate;

  // One link shape across the sweep: WAN-ish latency with jitter and a
  // small duplication rate, so dedup is always exercised; only `loss`
  // varies. Retry policy derived from the cost model for an average
  // document transfer.
  const sim::CostModel cost;
  const double avg_transfer =
      cost.transfer_us(65) * cost.cross_rack_penalty;  // WT-like documents
  const net::RetryPolicy retry_on = net::RetryPolicy::for_transfer(
      cost, avg_transfer);

  const auto base_config = [&](double loss, bool retries) {
    fault::ChurnConfig cfg;
    cfg.inject_rate_per_sec = inject_rate;
    cfg.sample_interval_us = span_us / 20.0;
    cfg.net.link.loss = loss;
    cfg.net.link.latency_base_us = 40.0;
    cfg.net.link.latency_jitter_us = 20.0;
    cfg.net.link.duplicate = 0.005;
    cfg.net.retry = retry_on;
    cfg.net.retry.enabled = retries;
    return cfg;
  };

  bench::BenchReporter report("fig10_lossy");
  report.meta()["nodes"] = d.nodes;
  report.meta()["filters"] = filters.table.size();
  report.meta()["docs"] = d.batch_docs;
  report.meta()["inject_rate_per_sec"] = inject_rate;
  report.meta()["retry_timeout_us"] = retry_on.timeout_us;
  report.meta()["retry_max_attempts"] = retry_on.max_attempts;
  report.meta()["retry_deadline_us"] = retry_on.deadline_us;

  const auto fill_net = [](obs::Json& row, const sim::RunMetrics& m) {
    row["metrics"]["delivery_ratio"] = m.net_acc.delivery_ratio();
    row["metrics"]["doc_completion_ratio"] =
        m.documents_published > 0
            ? static_cast<double>(m.documents_completed) /
                  static_cast<double>(m.documents_published)
            : 1.0;
    row["metrics"]["messages"] = m.net_acc.messages;
    row["metrics"]["retries"] = m.net_acc.retries;
    row["metrics"]["timeouts"] = m.net_acc.timeouts;
    row["metrics"]["drops"] = m.net_acc.drops;
    row["metrics"]["duplicates"] = m.net_acc.duplicates;
    row["metrics"]["dup_suppressed"] = m.net_acc.dup_suppressed;
    row["metrics"]["expired"] = m.net_acc.expired;
    row["metrics"]["breaker_trips"] = m.net_acc.breaker_trips;
    row["metrics"]["shed"] = m.net_acc.shed;
  };

  // --- sweep: loss x scheme x {retries on, off} ----------------------------
  const double losses[] = {0.0, 0.01, 0.05, 0.1};
  const char* names[] = {"move", "il", "rs"};

  std::printf("P=%zu, N=%zu, Q=%zu docs at %.0f/s\n\n", filters.table.size(),
              d.nodes, d.batch_docs, inject_rate);
  std::printf("%-6s %-6s %-8s %-12s %-10s %-10s %-10s %-8s\n", "scheme",
              "loss", "retries", "tput/s", "dlv_ratio", "doc_ratio",
              "retries#", "expired");

  for (const char* name : names) {
    for (const double loss : losses) {
      for (const bool retries : {true, false}) {
        if (!retries && loss == 0.0) continue;  // nothing to ablate at 0
        cluster::Cluster c(bench::cluster_config(d, d.nodes));
        auto scheme = make_scheme(name, c, d, filters, corpus_stats);
        const fault::FaultPlan plan(0xf1610ULL);  // no node churn: loss only
        const auto cfg = base_config(loss, retries);
        const auto result = fault::run_churn(*scheme, docs, plan, cfg);
        const auto& m = result.metrics;

        auto& row = report.add_row(std::string(name) +
                                   (retries ? "" : "_noretry"));
        row["knobs"]["loss"] = loss;
        row["knobs"]["retries"] = retries;
        bench::BenchReporter::fill_run_metrics(row, m);
        fill_net(row, m);

        std::printf("%-6s %-6.2f %-8s %-12.4g %-10.6f %-10.6f %-10llu "
                    "%-8llu\n",
                    name, loss, retries ? "on" : "off",
                    m.throughput_per_sec(), m.net_acc.delivery_ratio(),
                    m.documents_published > 0
                        ? static_cast<double>(m.documents_completed) /
                              static_cast<double>(m.documents_published)
                        : 1.0,
                    static_cast<unsigned long long>(m.net_acc.retries),
                    static_cast<unsigned long long>(m.net_acc.expired));
      }
    }
  }

  // --- partition / heal timeline -------------------------------------------
  // Cut the upper half of the cluster away from the lower half (publisher
  // side) at T/3; heal at 2T/3. Link keeps 1% loss so retries stay busy.
  std::printf("\npartition timeline: cut upper half at T/3, heal at 2T/3\n");
  std::printf("%-6s %-12s %-10s %-12s %-10s %-10s\n", "scheme", "tput/s",
              "dlv_ratio", "brk_trips", "expired", "healed");
  for (const char* name : names) {
    cluster::Cluster c(bench::cluster_config(d, d.nodes));
    auto scheme = make_scheme(name, c, d, filters, corpus_stats);

    std::vector<NodeId> lower, upper;
    for (std::size_t n = 0; n < d.nodes; ++n) {
      (n < d.nodes / 2 ? lower : upper)
          .push_back(NodeId{static_cast<std::uint32_t>(n)});
    }
    fault::FaultPlan plan(0xf1611ULL);
    plan.partition("split", lower, upper, span_us / 3.0);
    plan.heal("split", 2.0 * span_us / 3.0);

    const auto cfg = base_config(0.01, true);
    const auto result = fault::run_churn(*scheme, docs, plan, cfg);
    const auto& m = result.metrics;

    for (const auto& s : result.samples) {
      auto& row = report.add_row(std::string(name) + "_partition");
      row["knobs"]["t_us"] = s.t_us;
      row["metrics"]["throughput_per_sec"] = s.throughput_per_sec;
      row["metrics"]["delivery_ratio"] = s.net.delivery_ratio();
      row["metrics"]["messages"] = s.net.messages;
      row["metrics"]["drops"] = s.net.drops;
      row["metrics"]["retries"] = s.net.retries;
      row["metrics"]["expired"] = s.net.expired;
      row["metrics"]["breaker_trips"] = s.net.breaker_trips;
      row["metrics"]["breaker_fast_fails"] = s.net.breaker_fast_fails;
    }
    auto& summary = report.add_row(std::string(name) + "_partition_summary");
    bench::BenchReporter::fill_run_metrics(summary, m);
    fill_net(summary, m);
    summary["metrics"]["partitions_started"] =
        result.timeline.partitions_started;
    summary["metrics"]["partitions_healed"] =
        result.timeline.partitions_healed;

    std::printf("%-6s %-12.4g %-10.6f %-12llu %-10llu %-10llu\n", name,
                m.throughput_per_sec(), m.net_acc.delivery_ratio(),
                static_cast<unsigned long long>(m.net_acc.breaker_trips),
                static_cast<unsigned long long>(m.net_acc.expired),
                static_cast<unsigned long long>(
                    result.timeline.partitions_healed));
  }

  std::printf("\n(expected: delivery ratio 1.0 through 5%% loss with "
              "retries, < 1 without; partition dents delivery until the "
              "heal)\n");
  return report.write() ? 0 : 1;
}
