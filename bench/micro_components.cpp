// Micro-benchmarks (google-benchmark) for the performance-critical
// components: SIFT matching, posting-list operations, Bloom filter probes,
// ring lookups, Zipf sampling, the Porter stemmer, and the event engine.
// These measure REAL wall-clock cost (unlike the figure benches, which run
// on the virtual clock) and guard against accidental slow-downs.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "obs/metrics.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "index/parallel_matcher.hpp"
#include "index/sift_matcher.hpp"
#include "kv/gossip.hpp"
#include "kv/kv_store.hpp"
#include "kv/ring.hpp"
#include "sim/event_engine.hpp"
#include "text/porter.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"

namespace {

using namespace move;

// --- fixtures ---------------------------------------------------------------

struct MatcherFixture {
  index::FilterStore store;
  index::InvertedIndex index;
  workload::TermSetTable docs;

  explicit MatcherFixture(std::size_t filters) {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = filters;
    qcfg.vocabulary_size = 20'000;
    qcfg.head_count = 200;
    const auto trace = workload::QueryTraceGenerator(qcfg).generate();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto id = store.add(trace.row(i));
      index.add(id, store.terms(id));
    }
    auto ccfg = workload::CorpusConfig::trec_wt_like(0.0006, 20'000);
    docs = workload::CorpusGenerator(ccfg).generate(256);
  }
};

MatcherFixture& matcher_fixture(std::size_t filters) {
  static std::map<std::size_t, std::unique_ptr<MatcherFixture>> cache;
  auto& slot = cache[filters];
  if (!slot) slot = std::make_unique<MatcherFixture>(filters);
  return *slot;
}

// --- matching ---------------------------------------------------------------

void BM_SiftMatchWtDoc(benchmark::State& state) {
  auto& f = matcher_fixture(static_cast<std::size_t>(state.range(0)));
  const index::SiftMatcher matcher(f.store, f.index);
  std::vector<FilterId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto acc = matcher.match(f.docs.row(i++ % f.docs.size()),
                                   index::MatchOptions{}, out);
    benchmark::DoNotOptimize(acc.postings_scanned);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SiftMatchWtDoc)->Arg(10'000)->Arg(100'000);

void BM_SiftSingleList(benchmark::State& state) {
  auto& f = matcher_fixture(100'000);
  const index::SiftMatcher matcher(f.store, f.index);
  std::vector<FilterId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto doc = f.docs.row(i++ % f.docs.size());
    const auto acc = matcher.match_single_list(doc[0], doc,
                                               index::MatchOptions{}, out);
    benchmark::DoNotOptimize(acc.postings_scanned);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SiftSingleList);

// --- bloom filter -----------------------------------------------------------

void BM_BloomProbe(benchmark::State& state) {
  bloom::BloomFilter bf(1'000'000, 0.01);
  for (std::uint32_t i = 0; i < 1'000'000; i += 2) bf.insert(TermId{i});
  std::uint32_t i = 0;
  std::size_t hits = 0;
  for (auto _ : state) {
    hits += bf.may_contain(TermId{i++});
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomProbe);

// --- ring lookups -----------------------------------------------------------

void BM_RingHomeOfTerm(benchmark::State& state) {
  kv::HashRing ring(static_cast<std::uint32_t>(state.range(0)));
  for (std::uint32_t n = 0; n < 100; ++n) ring.add_node(NodeId{n});
  std::uint32_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.home_of_term(TermId{t++}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RingHomeOfTerm)->Arg(16)->Arg(64)->Arg(256);

// --- sampling ---------------------------------------------------------------

void BM_ZipfSample(benchmark::State& state) {
  const common::ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)),
                                 1.0);
  common::SplitMix64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample)->Arg(1'000)->Arg(1'000'000);

// --- stemming ---------------------------------------------------------------

void BM_PorterStem(benchmark::State& state) {
  static const char* words[] = {"connections", "relational", "generalization",
                                "troubled",    "happiness",  "disseminating"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::porter_stem(words[i++ % 6]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PorterStem);

// --- parallel matcher ---------------------------------------------------------

void BM_ParallelMatchApDoc(benchmark::State& state) {
  // Article-sized documents (the AP regime) where per-shard work dwarfs the
  // pool's wakeup overhead — the intended use of the parallel matcher.
  // NOTE: on a single-core host (std::thread::hardware_concurrency() == 1)
  // the multi-thread variants cannot beat /1; correctness is covered by
  // tests, and the scaling claim needs a multicore machine.
  static const auto filters = [] {
    workload::QueryTraceConfig qcfg;
    qcfg.num_filters = 50'000;
    qcfg.vocabulary_size = 40'000;
    qcfg.head_count = 400;
    return workload::QueryTraceGenerator(qcfg).generate();
  }();
  static const auto docs = [] {
    auto ccfg = workload::CorpusConfig::trec_ap_like(1.0, 40'000);
    ccfg.mean_terms_per_doc = 800;
    return workload::CorpusGenerator(ccfg).generate(32);
  }();
  index::ParallelMatcher matcher(filters, 0,
                                 static_cast<std::size_t>(state.range(0)));
  // Selective semantics: under kAnyTerm a 2000-term article matches nearly
  // every filter and the run is output-bound; the threshold model is both
  // the realistic alerting semantics and the regime where matching (not
  // result merging) dominates.
  const index::MatchOptions opt{index::MatchSemantics::kThreshold, 0.7};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(docs.row(i++ % docs.size()), opt));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ParallelMatchApDoc)->Arg(1)->Arg(2)->UseRealTime();

// --- kv store ----------------------------------------------------------------

std::vector<std::string> make_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Built via append: gcc 12's -Wrestrict false-fires on the
    // char* + std::string&& concatenation when fully inlined.
    std::string key = "k";
    key += std::to_string(i);
    keys.push_back(std::move(key));
  }
  return keys;
}

// range(0) == 1 attaches live obs counters to ring and store; the /0 vs /1
// delta is the registry's hot-path overhead (budget: <= 5%).
void BM_KvStorePutGet(benchmark::State& state) {
  kv::HashRing ring;
  for (std::uint32_t n = 0; n < 20; ++n) ring.add_node(NodeId{n});
  kv::KeyValueStore store(ring);
  obs::Registry registry;
  if (state.range(0) != 0) {
    ring.attach_metrics(registry);
    store.attach_metrics(registry);
  }
  // Keys built outside the timed loop: the loop measures put/get, not
  // std::to_string, and the in-loop concatenation trips gcc's -Wrestrict.
  static const auto keys = make_keys(10'000);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string& key = keys[i++ % keys.size()];
    store.put(key, "value");
    benchmark::DoNotOptimize(store.get(key));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KvStorePutGet)->Arg(0)->Arg(1);

// --- obs primitives ----------------------------------------------------------

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram(
      "bench.histogram", obs::Histogram::exponential_bounds(1.0, 2.0, 16));
  double v = 0.5;
  for (auto _ : state) {
    h.observe(v);
    v = v < 60'000.0 ? v * 1.7 : 0.5;
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsHistogramObserve);

// --- gossip ------------------------------------------------------------------

void BM_GossipRound(benchmark::State& state) {
  kv::GossipMembership gossip;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < n; ++i) gossip.add_node(NodeId{i});
  for (std::uint32_t i = 1; i < n; ++i) {
    gossip.introduce(NodeId{i}, NodeId{0});
    gossip.introduce(NodeId{0}, NodeId{i});
  }
  gossip.run_rounds(16);  // reach steady state
  for (auto _ : state) {
    gossip.run_round();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GossipRound)->Arg(20)->Arg(100);

// --- event engine -----------------------------------------------------------

void BM_EventEngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventEngine eng;
    int sink = 0;
    for (int i = 0; i < 1'000; ++i) {
      eng.schedule_at(static_cast<double>(i % 100), [&sink] { ++sink; });
    }
    eng.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_EventEngineScheduleRun);

}  // namespace

BENCHMARK_MAIN();
