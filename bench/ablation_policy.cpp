// Ablation — allocation *policy* (§V "Allocation Policy"): proactive
// allocation from offline statistics vs passive allocation learned from the
// first K observed documents vs never allocating. The paper argues for the
// proactive policy because the passive one re-shuffles filters exactly when
// the home nodes are already hot.

#include "bench_util.hpp"

using namespace move;

int main() {
  bench::print_banner("Ablation", "proactive vs passive allocation policy");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto total_docs =
      d.batch_docs;
  const auto docs =
      bench::wt_generator(filters.vocabulary).generate(total_docs);
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  std::printf("P=%zu, N=%zu, Q=%.0f docs/s\n\n", filters.table.size(), d.nodes,
              (double)d.batch_docs);
  std::printf("%-44s %-14s\n", "policy", "throughput/s");

  // Proactive: allocate from the offline corpus before any document flows.
  {
    cluster::Cluster c(bench::cluster_config(d, d.nodes));
    core::MoveScheme scheme(c, bench::move_options(d));
    scheme.register_filters(filters.table);
    scheme.allocate(filters.stats, corpus_stats);
    const auto m = bench::run_burst(scheme, docs, d.batch_docs);
    std::printf("%-44s %-14.4g\n", "proactive (offline corpus stats)",
                m.throughput_per_sec());
  }

  // Passive: serve the first 10% unallocated, learn statistics from the
  // meta stores, then allocate and serve the rest. Throughput over the
  // whole stream includes the slow learning phase.
  {
    cluster::Cluster c(bench::cluster_config(d, d.nodes));
    core::MoveScheme scheme(c, bench::move_options(d));
    scheme.register_filters(filters.table);
    const std::size_t learn = docs.size() / 10;
    workload::TermSetTable phase1, phase2;
    for (std::size_t i = 0; i < docs.size(); ++i) {
      (i < learn ? phase1 : phase2).add(docs.row(i));
    }
    core::RunConfig rc;
    rc.inject_rate_per_sec = 50'000.0;
    rc.collect_latencies = false;
    const auto m1 = core::run_dissemination(scheme, phase1, rc);
    scheme.allocate_from_observed();
    const auto m2 = core::run_dissemination(scheme, phase2, rc);
    const double total_sec =
        (m1.makespan_us + m2.makespan_us) / 1e6;
    const double tput =
        total_sec > 0
            ? static_cast<double>(m1.documents_completed +
                                  m2.documents_completed) /
                  total_sec
            : 0.0;
    std::printf("%-44s %-14.4g\n", "passive (learned from first 10% of docs)",
                tput);
  }

  // Never allocate.
  {
    cluster::Cluster c(bench::cluster_config(d, d.nodes));
    core::MoveScheme scheme(c, bench::move_options(d));
    scheme.register_filters(filters.table);
    const auto m = bench::run_burst(scheme, docs, d.batch_docs);
    std::printf("%-44s %-14.4g\n", "never (IL degenerate)",
                m.throughput_per_sec());
  }
  return 0;
}
