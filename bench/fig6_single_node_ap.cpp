// Fig. 6 — single-node throughput on TREC-AP-like documents.
// See single_node_sweep.hpp for the shared driver and the paper
// observations reproduced.

#include "single_node_sweep.hpp"

int main() {
  return move::bench::run_single_node_sweep(/*wt_mode=*/false,
                                            "fig6_single_node_ap");
}
