// Fig. 9(a) — ranked per-node storage cost of the three schemes on the
// default 20-node cluster, normalized to the RS scheme's average (exactly
// how the paper plots it). Expected shape: RS most even (consistent hashing
// of whole filters), Move close behind (allocation rebalances), IL most
// skewed (term popularity decides placement).

#include <algorithm>

#include "bench_util.hpp"
#include "common/stats.hpp"

using namespace move;

int main() {
  bench::print_banner("Figure 9(a)", "ranked per-node storage cost");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary)
                        .generate(static_cast<std::size_t>(
                            d.batch_docs));
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  auto ranked_norm = [](std::vector<std::uint64_t> storage, double norm) {
    std::vector<double> out(storage.begin(), storage.end());
    for (double& v : out) v /= norm;
    std::sort(out.begin(), out.end(), std::greater<>());
    return out;
  };

  cluster::Cluster c_mv(bench::cluster_config(d, d.nodes));
  core::MoveScheme mv(c_mv, bench::move_options(d));
  mv.register_filters(filters.table);
  mv.allocate(filters.stats, corpus_stats);

  cluster::Cluster c_rs(bench::cluster_config(d, d.nodes));
  core::RsScheme rs(c_rs);
  rs.register_filters(filters.table);

  cluster::Cluster c_il(bench::cluster_config(d, d.nodes));
  core::IlScheme il(c_il);
  il.register_filters(filters.table);

  // Normalize every scheme by the RS average, as the paper does.
  const auto rs_storage = rs.storage_per_node();
  double rs_avg = 0;
  for (auto v : rs_storage) rs_avg += static_cast<double>(v);
  rs_avg /= static_cast<double>(rs_storage.size());

  const auto move_r = ranked_norm(mv.storage_per_node(), rs_avg);
  const auto rs_r = ranked_norm(rs_storage, rs_avg);
  const auto il_r = ranked_norm(il.storage_per_node(), rs_avg);

  std::printf("P=%zu, N=%zu, normalized to RS average storage (%.4g)\n\n",
              filters.table.size(), d.nodes, rs_avg);
  std::printf("%-10s %-10s %-10s %-10s\n", "rank", "Move", "IL", "RS");
  for (std::size_t i = 0; i < d.nodes; ++i) {
    std::printf("%-10zu %-10.3f %-10.3f %-10.3f\n", i + 1, move_r[i], il_r[i],
                rs_r[i]);
  }
  std::printf("\npeak/mean  Move=%.2f  IL=%.2f  RS=%.2f   (paper: IL most "
              "skewed, RS most even)\n",
              common::peak_to_mean(move_r), common::peak_to_mean(il_r),
              common::peak_to_mean(rs_r));
  return 0;
}
