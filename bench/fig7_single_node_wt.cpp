// Fig. 7 — single-node throughput on TREC-WT-like documents.
// See single_node_sweep.hpp for the shared driver and the paper
// observations reproduced.

#include "single_node_sweep.hpp"

int main() {
  return move::bench::run_single_node_sweep(/*wt_mode=*/true,
                                            "fig7_single_node_wt");
}
