// Fig. 9(c) — effect of node failure on throughput for the three replica
// placement policies of §V: ring successors, rack-aware, and the MOVE hybrid
// (half ring / half rack). Measured at failure rates 0 and 0.3. Expected
// shape: rack-aware highest throughput (cheap intra-rack forwarding), ring
// lowest, hybrid between — in both the no-failure and 0.3-failure cases.

#include "bench_util.hpp"

using namespace move;

int main() {
  bench::print_banner("Figure 9(c)", "node failure vs throughput by placement");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary)
                        .generate(static_cast<std::size_t>(
                            d.batch_docs));
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  struct Policy {
    const char* name;
    kv::PlacementPolicy policy;
  };
  const Policy policies[] = {
      {"move", kv::PlacementPolicy::kHybrid},
      {"ring", kv::PlacementPolicy::kRingSuccessors},
      {"rack", kv::PlacementPolicy::kRackAware},
  };

  std::printf("P=%zu, N=%zu, Q=%.0f docs/s\n\n", filters.table.size(), d.nodes,
              (double)d.batch_docs);
  std::printf("%-10s %-18s %-18s\n", "placement", "tput @ fail=0",
              "tput @ fail=0.3");
  for (const auto& p : policies) {
    double tput[2] = {0, 0};
    int idx = 0;
    for (double fail : {0.0, 0.3}) {
      cluster::Cluster c(bench::cluster_config(d, d.nodes));
      auto opts = bench::move_options(d);
      opts.placement = p.policy;
      core::MoveScheme scheme(c, opts);
      scheme.register_filters(filters.table);
      scheme.allocate(filters.stats, corpus_stats);
      common::SplitMix64 rng(0xfa11 + idx);
      c.fail_fraction(fail, rng);
      tput[idx++] = bench::run_burst(scheme, docs, d.batch_docs)
                        .throughput_per_sec();
    }
    std::printf("%-10s %-18.4g %-18.4g\n", p.name, tput[0], tput[1]);
  }
  std::printf("\n(paper: rack highest, ring lowest, move between)\n");
  return 0;
}
