// Wall-clock micro-benchmark of the matching kernels (PR: arena posting
// lists + epoch-stamped counters + batched dispatch). Unlike the figure
// benches (virtual clock), this measures REAL time, pitting:
//
//   * legacy_per_doc   — hash-map SIFT counters over the mutable (per-term
//                        heap vector) index: the pre-arena kernel;
//   * scratch_per_doc  — epoch-stamped counter arrays over the frozen flat
//                        posting arena, one document at a time;
//   * parallel_per_doc — ParallelMatcher::match (one pool barrier per doc);
//   * parallel_batched — ParallelMatcher::match_batch (bulk enqueue, one
//                        barrier for the whole batch).
//
// against the default Zipf workload (MSN-like filters, TREC-WT-like docs)
// under both kAnyTerm and kThreshold semantics.
//
// A second section sweeps the single-thread scratch kernel over a
// filter-count axis (up to 10^6 filters) in six variants crossing the
// fast-path levers with the index's two frozen storage modes:
//
//   * scalar      — forced-scalar dispatch, Bloom gate off, intersection-scan
//                   verification: the faithful pre-SIMD baseline;
//   * simd        — vector kernels (gathered epoch stamps, SIMD lower_bound)
//                   plus the full-index O(1) count verification;
//   * bloom       — scalar dispatch with the blocked-Bloom term-summary gate;
//   * bloom_simd  — everything on: the production raw-postings configuration;
//   * comp_scalar — scalar twin of `scalar` over delta-compressed posting
//                   blocks (block-at-a-time decode feeding the bump kernel);
//   * comp_simd   — `simd` over compressed blocks: decode streams into the
//                   scratch buffer, the SIMD bump kernel consumes it.
//
// Sweep documents are drawn from a vocabulary twice the filters' so a
// realistic slice of document terms is unindexed — the traffic the summary
// screens out. Emits BENCH_matching_kernels.json with docs/sec and
// postings/sec per variant, per-row bloom_reject_rate, posting_bytes and
// blocks_decoded, and the headline speedups in `meta` (including bloom_simd
// vs scalar at the 10^5-filter threshold point and compressed vs raw at the
// 10^6 point). All variants of a sweep point — every dispatch x gate x
// storage-mode combination — must agree on the total number of
// (doc, filter) matches; the runtime check fails the bench otherwise.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>

#include "bench_report.hpp"
#include "bench_util.hpp"
#include "common/simd.hpp"
#include "index/match_scratch.hpp"
#include "index/parallel_matcher.hpp"
#include "index/sift_matcher.hpp"

namespace move::bench {
namespace {

struct VariantResult {
  double wall_ms = 0.0;
  double docs_per_sec = 0.0;
  double postings_per_sec = 0.0;
  std::uint64_t postings_scanned = 0;
  std::uint64_t matches_total = 0;
  std::uint64_t bloom_rejects = 0;
  std::uint64_t postings_skipped = 0;
  std::uint64_t blocks_decoded = 0;
  std::size_t docs_matched = 0;
};

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void finish(VariantResult& r, double wall_ms, std::size_t docs_matched) {
  r.wall_ms = wall_ms;
  r.docs_matched = docs_matched;
  const double secs = wall_ms / 1e3;
  if (secs > 0) {
    r.docs_per_sec = static_cast<double>(docs_matched) / secs;
    r.postings_per_sec = static_cast<double>(r.postings_scanned) / secs;
  }
}

/// One timed pass shape shared by the SiftMatcher variants.
template <typename MatchFn>
VariantResult time_sift(const workload::TermSetTable& docs, std::size_t reps,
                        MatchFn&& match_one) {
  VariantResult r;
  std::vector<FilterId> out;
  match_one(docs.row(0), out);  // warm-up (allocations, page-in)
  index::MatchAccounting acc;
  const auto t0 = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < docs.size(); ++i) {
      acc += match_one(docs.row(i), out);
      r.matches_total += out.size();
    }
  }
  const double wall = ms_since(t0);
  r.postings_scanned = acc.postings_scanned;
  r.bloom_rejects = acc.bloom_rejects;
  r.postings_skipped = acc.postings_skipped;
  r.blocks_decoded = acc.blocks_decoded;
  finish(r, wall, reps * docs.size());
  return r;
}

// --- Variant sweep: dispatch x Bloom gate x verification ------------------

struct SweepVariant {
  const char* name;
  bool force_scalar;  // route every kernel through its scalar twin
  bool bloom_gate;    // MatchOptions::use_term_summary
  bool count_verify;  // SiftMatcher full-index O(1) verification
  bool compressed;    // match over the delta-compressed posting blocks
};

// "scalar" is the faithful pre-SIMD baseline (what PR 2 shipped); the next
// three switch on the fast-path levers one at a time, ending at the default
// raw config; the comp_* pair reruns the two dispatch extremes over the
// compressed storage mode, closing the scalar/simd x raw/compressed square.
constexpr SweepVariant kSweepVariants[] = {
    {"scalar", true, false, false, false},
    {"simd", false, false, true, false},
    {"bloom", true, true, false, false},
    {"bloom_simd", false, true, true, false},
    {"comp_scalar", true, false, false, true},
    {"comp_simd", false, false, true, true},
};

/// Restores the ambient dispatch (e.g. an inherited MOVE_FORCE_SCALAR=1) no
/// matter how the sweep exits.
struct ScopedForceScalar {
  explicit ScopedForceScalar(bool on) : prev(simd::force_scalar()) {
    simd::set_force_scalar(on);
  }
  ~ScopedForceScalar() { simd::set_force_scalar(prev); }
  bool prev;
};

VariantResult time_sweep_variant(const SweepVariant& v,
                                 const index::FilterStore& store,
                                 const index::InvertedIndex& raw,
                                 const index::InvertedIndex& compressed,
                                 const workload::TermSetTable& docs,
                                 std::size_t reps,
                                 index::MatchOptions opt) {
  const ScopedForceScalar dispatch(v.force_scalar);
  opt.use_term_summary = v.bloom_gate;
  const index::SiftMatcher matcher(store, v.compressed ? compressed : raw,
                                   v.count_verify);
  index::MatchScratch scratch;
  return time_sift(docs, reps,
                   [&](std::span<const TermId> d, std::vector<FilterId>& o) {
                     return matcher.match(d, opt, o, scratch);
                   });
}

std::uint64_t scanned_total(const index::ParallelMatcher& m) {
  std::uint64_t total = 0;
  for (const auto& s : m.shard_stats()) total += s.postings_scanned;
  return total;
}

VariantResult time_parallel_per_doc(index::ParallelMatcher& matcher,
                                    const workload::TermSetTable& docs,
                                    std::size_t reps,
                                    const index::MatchOptions& opt) {
  VariantResult r;
  (void)matcher.match(docs.row(0), opt);  // warm-up
  matcher.reset_stats();
  const auto t0 = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < docs.size(); ++i) {
      r.matches_total += matcher.match(docs.row(i), opt).size();
    }
  }
  const double wall = ms_since(t0);
  r.postings_scanned = scanned_total(matcher);
  finish(r, wall, reps * docs.size());
  return r;
}

VariantResult time_parallel_batched(index::ParallelMatcher& matcher,
                                    const workload::TermSetTable& docs,
                                    std::size_t reps,
                                    const index::MatchOptions& opt) {
  std::vector<std::span<const TermId>> spans;
  spans.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) spans.push_back(docs.row(i));

  VariantResult r;
  (void)matcher.match_batch({spans.data(), 1}, opt);  // warm-up
  matcher.reset_stats();
  const auto t0 = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto results = matcher.match_batch(spans, opt);
    for (const auto& matches : results) r.matches_total += matches.size();
  }
  const double wall = ms_since(t0);
  r.postings_scanned = scanned_total(matcher);
  finish(r, wall, reps * docs.size());
  return r;
}

void report_variant(BenchReporter& report, const char* series,
                    const char* semantics, const VariantResult& r,
                    std::size_t docs, std::size_t filters, std::size_t reps,
                    std::size_t threads, std::size_t shards) {
  obs::Json& row = report.add_row(series);
  row["knobs"]["semantics"] = semantics;
  row["knobs"]["docs"] = docs;
  row["knobs"]["filters"] = filters;
  row["knobs"]["reps"] = reps;
  row["knobs"]["threads"] = threads;
  row["knobs"]["shards"] = shards;
  obs::Json& m = row["metrics"];
  m["wall_ms"] = r.wall_ms;
  m["docs_per_sec"] = r.docs_per_sec;
  m["postings_per_sec"] = r.postings_per_sec;
  m["postings_scanned"] = r.postings_scanned;
  m["matches_total"] = r.matches_total;
  std::printf("%-18s %-10s %10.1f ms %12.0f docs/s %14.3g postings/s\n",
              series, semantics, r.wall_ms, r.docs_per_sec,
              r.postings_per_sec);
}

void report_sweep_row(BenchReporter& report, const SweepVariant& v,
                      const char* semantics, std::size_t filters,
                      std::size_t docs, std::size_t reps,
                      std::uint64_t posting_bytes, const VariantResult& r) {
  obs::Json& row = report.add_row("kernel_sweep");
  row["knobs"]["variant"] = v.name;
  row["knobs"]["force_scalar"] = v.force_scalar;
  row["knobs"]["bloom_gate"] = v.bloom_gate;
  row["knobs"]["count_verify"] = v.count_verify;
  row["knobs"]["compressed"] = v.compressed;
  row["knobs"]["semantics"] = semantics;
  row["knobs"]["filters"] = filters;
  row["knobs"]["docs"] = docs;
  row["knobs"]["reps"] = reps;
  obs::Json& m = row["metrics"];
  m["wall_ms"] = r.wall_ms;
  m["docs_per_sec"] = r.docs_per_sec;
  m["postings_per_sec"] = r.postings_per_sec;
  m["postings_scanned"] = r.postings_scanned;
  m["matches_total"] = r.matches_total;
  m["bloom_rejects"] = r.bloom_rejects;
  m["postings_skipped"] = r.postings_skipped;
  m["blocks_decoded"] = r.blocks_decoded;
  m["posting_bytes"] = posting_bytes;
  m["bloom_reject_rate"] =
      r.docs_matched > 0
          ? static_cast<double>(r.bloom_rejects) /
                static_cast<double>(r.docs_matched)
          : 0.0;
  std::printf("  %-11s %-10s %7zu filters %9.1f ms %11.0f docs/s "
              "reject_rate %.3f\n",
              v.name, semantics, filters, r.wall_ms, r.docs_per_sec,
              r.docs_matched > 0 ? static_cast<double>(r.bloom_rejects) /
                                       static_cast<double>(r.docs_matched)
                                 : 0.0);
}

int run() {
  print_banner("micro", "matching kernels: hash-map vs counter-array, "
                        "per-doc vs batched (real time)");
  const std::size_t num_filters = std::max<std::size_t>(
      20'000, static_cast<std::size_t>(400'000 * scale()));
  const auto filters = make_filters(num_filters);
  auto gen = wt_generator(filters.vocabulary);
  const auto docs = gen.generate(std::min<std::size_t>(
      400, std::max<std::size_t>(64, gen.config().num_docs)));
  const std::size_t reps = 4;
  std::printf("filters: %zu   docs: %zu (%.1f terms/doc)   reps: %zu\n\n",
              filters.table.size(), docs.size(), docs.mean_row_size(), reps);

  // One shared store; a mutable index for the legacy kernel and a frozen
  // one for the arena kernels, built identically.
  index::FilterStore store;
  index::InvertedIndex index_mutable;
  index::InvertedIndex index_frozen;
  for (std::size_t i = 0; i < filters.table.size(); ++i) {
    const auto id = store.add(filters.table.row(i));
    index_mutable.add(id, store.terms(id));
    index_frozen.add(id, store.terms(id));
  }
  index_frozen.finalize();
  const index::SiftMatcher legacy(store, index_mutable);
  const index::SiftMatcher frozen(store, index_frozen);
  index::ParallelMatcher parallel(filters.table, 0, 0);

  BenchReporter report("matching_kernels");
  report.meta()["filters"] = filters.table.size();
  report.meta()["docs_pool"] = docs.size();
  report.meta()["mean_terms_per_doc"] = docs.mean_row_size();
  report.meta()["reps"] = reps;
  report.meta()["threads"] = parallel.thread_count();
  report.meta()["shards"] = parallel.shard_count();

  bool totals_agree = true;
  for (const auto& [sem_name, opt] :
       {std::pair{"any_term", index::MatchOptions{}},
        std::pair{"threshold",
                  index::MatchOptions{index::MatchSemantics::kThreshold,
                                      0.7}}}) {
    index::MatchScratch scratch;
    const auto legacy_r = time_sift(
        docs, reps, [&](std::span<const TermId> d, std::vector<FilterId>& o) {
          return legacy.match(d, opt, o);
        });
    const auto scratch_r = time_sift(
        docs, reps, [&](std::span<const TermId> d, std::vector<FilterId>& o) {
          return frozen.match(d, opt, o, scratch);
        });
    const auto par_doc_r = time_parallel_per_doc(parallel, docs, reps, opt);
    const auto par_batch_r = time_parallel_batched(parallel, docs, reps, opt);

    const std::size_t d = docs.size(), f = filters.table.size();
    const std::size_t th = parallel.thread_count();
    const std::size_t sh = parallel.shard_count();
    report_variant(report, "legacy_per_doc", sem_name, legacy_r, d, f, reps,
                   1, 1);
    report_variant(report, "scratch_per_doc", sem_name, scratch_r, d, f, reps,
                   1, 1);
    report_variant(report, "parallel_per_doc", sem_name, par_doc_r, d, f,
                   reps, th, sh);
    report_variant(report, "parallel_batched", sem_name, par_batch_r, d, f,
                   reps, th, sh);

    // All four kernels must find the same (doc, filter) pairs.
    if (legacy_r.matches_total != scratch_r.matches_total ||
        legacy_r.matches_total != par_doc_r.matches_total ||
        legacy_r.matches_total != par_batch_r.matches_total) {
      std::fprintf(stderr,
                   "MISMATCH (%s): legacy=%llu scratch=%llu par=%llu "
                   "batch=%llu\n",
                   sem_name,
                   static_cast<unsigned long long>(legacy_r.matches_total),
                   static_cast<unsigned long long>(scratch_r.matches_total),
                   static_cast<unsigned long long>(par_doc_r.matches_total),
                   static_cast<unsigned long long>(par_batch_r.matches_total));
      totals_agree = false;
    }

    char key[64];
    std::snprintf(key, sizeof key, "speedup_scratch_vs_legacy_%s", sem_name);
    report.meta()[key] = legacy_r.docs_per_sec > 0
                             ? scratch_r.docs_per_sec / legacy_r.docs_per_sec
                             : 0.0;
    std::snprintf(key, sizeof key, "speedup_batched_vs_legacy_%s", sem_name);
    report.meta()[key] = legacy_r.docs_per_sec > 0
                             ? par_batch_r.docs_per_sec / legacy_r.docs_per_sec
                             : 0.0;
    std::printf("  speedup vs legacy_per_doc: scratch %.2fx, batched %.2fx\n\n",
                scratch_r.docs_per_sec / legacy_r.docs_per_sec,
                par_batch_r.docs_per_sec / legacy_r.docs_per_sec);
  }
  // --- Variant x filter-count sweep (single-thread scratch kernel) --------
  std::printf("kernel sweep: dispatch x Bloom gate x storage mode "
              "(compiled kernel: %s)\n",
              simd::compiled_kernel());
  const std::size_t sweep_counts[] = {10'000, 31'623, 100'000, 1'000'000};
  double scalar_100k = 0.0, bloom_simd_100k = 0.0;
  double simd_1m = 0.0, comp_simd_1m = 0.0;
  std::uint64_t raw_bytes_1m = 0, comp_bytes_1m = 0;
  for (const std::size_t count : sweep_counts) {
    const auto sweep_filters = make_filters(count);
    // Documents over TWICE the filters' vocabulary: a realistic slice of the
    // term mass is unindexed — the traffic the term summary screens out.
    auto sweep_gen = wt_generator(sweep_filters.vocabulary * 2);
    const auto sweep_docs = sweep_gen.generate(128);
    const std::size_t sweep_reps =
        count >= 1'000'000 ? 1 : (count >= 100'000 ? 2 : 4);

    index::FilterStore sweep_store;
    index::InvertedIndex sweep_index;
    index::InvertedIndex sweep_comp;
    for (std::size_t i = 0; i < sweep_filters.table.size(); ++i) {
      const auto id = sweep_store.add(sweep_filters.table.row(i));
      sweep_index.add(id, sweep_store.terms(id));
      sweep_comp.add(id, sweep_store.terms(id));
    }
    index::InvertedIndex::FinalizeOptions raw_fo;
    raw_fo.compress = false;
    index::InvertedIndex::FinalizeOptions comp_fo;
    comp_fo.compress = true;
    sweep_index.finalize(raw_fo);
    sweep_comp.finalize(comp_fo);

    for (const auto& [sem_name, opt] :
         {std::pair{"any_term", index::MatchOptions{}},
          std::pair{"threshold",
                    index::MatchOptions{index::MatchSemantics::kThreshold,
                                        0.7}}}) {
      constexpr std::size_t kNumVariants = std::size(kSweepVariants);
      VariantResult results[kNumVariants];
      for (std::size_t v = 0; v < kNumVariants; ++v) {
        const auto& variant = kSweepVariants[v];
        results[v] =
            time_sweep_variant(variant, sweep_store, sweep_index, sweep_comp,
                               sweep_docs, sweep_reps, opt);
        report_sweep_row(report, variant, sem_name,
                         sweep_filters.table.size(), sweep_docs.size(),
                         sweep_reps,
                         (variant.compressed ? sweep_comp : sweep_index)
                             .posting_storage_bytes(),
                         results[v]);
        // Every variant of a sweep point — every dispatch x gate x storage
        // combination — must find the same match pairs.
        if (results[v].matches_total != results[0].matches_total) {
          std::fprintf(
              stderr, "SWEEP MISMATCH (%zu filters, %s): %s=%llu scalar=%llu\n",
              count, sem_name, variant.name,
              static_cast<unsigned long long>(results[v].matches_total),
              static_cast<unsigned long long>(results[0].matches_total));
          totals_agree = false;
        }
      }
      const double base = results[0].docs_per_sec;
      if (base > 0) {
        std::printf("    -> vs scalar: simd %.2fx, bloom %.2fx, "
                    "bloom_simd %.2fx, comp_scalar %.2fx, comp_simd %.2fx\n",
                    results[1].docs_per_sec / base,
                    results[2].docs_per_sec / base,
                    results[3].docs_per_sec / base,
                    results[4].docs_per_sec / base,
                    results[5].docs_per_sec / base);
      }
      if (opt.semantics == index::MatchSemantics::kThreshold &&
          count == 100'000) {
        scalar_100k = results[0].docs_per_sec;
        bloom_simd_100k = results[3].docs_per_sec;
      }
      if (opt.semantics == index::MatchSemantics::kAnyTerm &&
          count == 1'000'000) {
        simd_1m = results[1].docs_per_sec;
        comp_simd_1m = results[5].docs_per_sec;
        raw_bytes_1m = sweep_index.posting_storage_bytes();
        comp_bytes_1m = sweep_comp.posting_storage_bytes();
      }
    }
  }
  report.meta()["kernel"] = simd::compiled_kernel();
  report.meta()["speedup_bloom_simd_vs_scalar_threshold_100000"] =
      scalar_100k > 0 ? bloom_simd_100k / scalar_100k : 0.0;
  std::printf("\nheadline: bloom_simd vs scalar @ 100k filters (threshold): "
              "%.2fx\n",
              scalar_100k > 0 ? bloom_simd_100k / scalar_100k : 0.0);
  report.meta()["comp_vs_raw_simd_throughput_1000000"] =
      simd_1m > 0 ? comp_simd_1m / simd_1m : 0.0;
  report.meta()["comp_vs_raw_bytes_ratio_1000000"] =
      comp_bytes_1m > 0 ? static_cast<double>(raw_bytes_1m) /
                              static_cast<double>(comp_bytes_1m)
                        : 0.0;
  std::printf("headline: compressed vs raw @ 1M filters (any_term, simd): "
              "%.2fx throughput, %.2fx smaller postings\n",
              simd_1m > 0 ? comp_simd_1m / simd_1m : 0.0,
              comp_bytes_1m > 0 ? static_cast<double>(raw_bytes_1m) /
                                      static_cast<double>(comp_bytes_1m)
                                : 0.0);

  report.meta()["variants_agree"] = totals_agree;
  if (!totals_agree) return 1;
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace move::bench

int main() { return move::bench::run(); }
