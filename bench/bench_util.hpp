#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/cluster.hpp"
#include "core/experiment.hpp"
#include "core/il_scheme.hpp"
#include "core/move_scheme.hpp"
#include "core/rs_scheme.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

/// Shared plumbing for the figure benches.
///
/// Every bench reads MOVE_BENCH_SCALE (default 0.1) and multiplies the
/// paper-scale workload parameters by it: filters P, per-node capacity C,
/// vocabulary, and corpus size shrink together so distributions and the
/// P/C ratio stay fixed. Results are therefore comparable in *shape* to the
/// paper at any scale; EXPERIMENTS.md records the scale used per number.
namespace move::bench {

inline double scale() {
  static const double s = [] {
    if (const char* env = std::getenv("MOVE_BENCH_SCALE")) {
      const double v = std::atof(env);
      if (v > 0.0) return v;
    }
    return 0.1;
  }();
  return s;
}

/// Paper §VI-C defaults, scaled.
struct PaperDefaults {
  double s = scale();
  std::size_t filters = static_cast<std::size_t>(4e6 * s);   // P
  double capacity = 3e6 * s;                                 // C
  std::size_t nodes = 20;                                    // N
  std::size_t racks = 4;
  std::size_t batch_docs = 1000;  ///< Q, the default document batch (§VI-C)
};

/// The scaled MSN-like filter trace and its statistics.
struct FilterWorkload {
  workload::TermSetTable table;
  workload::TraceStats stats;
  std::size_t vocabulary;
  double fitted_skew;
};

inline FilterWorkload make_filters(std::size_t count) {
  auto cfg = workload::QueryTraceConfig::msn_like(scale());
  cfg.num_filters = count;
  const workload::QueryTraceGenerator gen(cfg);
  FilterWorkload w;
  w.table = gen.generate();
  w.vocabulary = cfg.vocabulary_size;
  w.fitted_skew = gen.fitted_skew();
  w.stats = workload::compute_stats(w.table, cfg.vocabulary_size);
  return w;
}

/// Scaled TREC-like corpora sharing the filter vocabulary.
inline workload::CorpusGenerator wt_generator(std::size_t vocabulary) {
  return workload::CorpusGenerator(
      workload::CorpusConfig::trec_wt_like(scale(), vocabulary));
}

inline workload::CorpusGenerator ap_generator(std::size_t vocabulary) {
  return workload::CorpusGenerator(
      workload::CorpusConfig::trec_ap_like(scale(), vocabulary));
}

inline cluster::ClusterConfig cluster_config(const PaperDefaults& d,
                                             std::size_t nodes) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_racks = d.racks;
  return cfg;
}

inline core::MoveOptions move_options(const PaperDefaults& d) {
  core::MoveOptions o;
  o.capacity = d.capacity;
  return o;
}

/// Injects the first `batch` documents as a fast burst (50k docs/s client
/// pool, §VI-A3) and returns metrics; throughput = batch / makespan.
inline sim::RunMetrics run_burst(core::Scheme& scheme,
                                 const workload::TermSetTable& docs,
                                 std::size_t batch) {
  core::RunConfig rc;
  rc.inject_rate_per_sec = 50'000.0;
  rc.collect_latencies = false;
  if (docs.size() <= batch) return core::run_dissemination(scheme, docs, rc);
  workload::TermSetTable subset;
  for (std::size_t i = 0; i < batch; ++i) subset.add(docs.row(i));
  return core::run_dissemination(scheme, subset, rc);
}

inline void print_banner(const char* figure, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("MOVE_BENCH_SCALE=%.3g (paper scale = 1.0)\n", scale());
  std::printf("==============================================================\n");
}

}  // namespace move::bench
