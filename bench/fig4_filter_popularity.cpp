// Fig. 4 — "Filter Term Popularity": ranked popularity p_i of the MSN-like
// filter trace on a log-log scale, plus the summary statistics the paper
// quotes in §VI-A1 (757,996 distinct terms at full scale; top-1000
// accumulated popularity 0.437; 2.843 terms/query; length CDF
// 31.33/67.75/85.31 %).

#include "bench_util.hpp"

using namespace move;

int main() {
  bench::print_banner("Figure 4", "ranked filter term popularity (MSN-like)");
  const bench::PaperDefaults d;
  const auto w = bench::make_filters(d.filters);

  std::printf("filters (P)            : %zu\n", w.table.size());
  std::printf("vocabulary             : %zu\n", w.vocabulary);
  std::printf("distinct query terms   : %zu\n", w.stats.distinct_terms());
  std::printf("fitted zipf skew       : %.4f\n", w.fitted_skew);
  std::printf("mean terms per query   : %.3f   (paper: 2.843)\n",
              w.table.mean_row_size());

  const auto hist = workload::row_size_histogram(w.table);
  double cum = 0;
  const double n = static_cast<double>(w.table.size());
  std::printf("query-length CDF       : ");
  for (std::size_t len = 1; len <= 3 && len < hist.size(); ++len) {
    cum += static_cast<double>(hist[len]);
    std::printf("<=%zu: %.2f%%  ", len, 100.0 * cum / n);
  }
  std::printf("(paper: 31.33 / 67.75 / 85.31)\n");

  const std::size_t head =
      std::max<std::size_t>(10, static_cast<std::size_t>(1000 * bench::scale() * 10));
  std::printf("top-%zu popularity mass : %.3f   (paper: 0.437 for top-1000)\n",
              head, w.stats.head_mass(head));

  // The ranked log-log series the paper plots: sample log-spaced ranks.
  std::printf("\n%-12s %-14s\n", "rank", "popularity p_i");
  const auto ranked = w.stats.ranked();
  for (std::size_t r = 1; r <= ranked.size(); r *= 4) {
    std::printf("%-12zu %-14.6g\n", r, ranked[r - 1]);
  }
  std::printf("%-12zu %-14.6g\n", ranked.size(), ranked.back());
  return 0;
}
