// Ablation — workload drift and the §V periodic re-allocation policy.
//
// The document distribution shifts mid-stream (the corpus permutation
// changes, so a different set of homes becomes hot). Three strategies serve
// the same A->B stream:
//   * static    — allocated once from phase-A statistics, never again;
//   * oracle    — re-allocated with exact phase-B statistics at the switch
//                 (the upper bound);
//   * adaptive  — §V's policy: q_i renewed from observed traffic every
//                 window, re-allocating periodically.
// Expected shape: static degrades in phase B; adaptive tracks the drift and
// lands near the oracle.

#include "bench_util.hpp"
#include "core/adaptive.hpp"

using namespace move;

namespace {

workload::TermSetTable concat(const workload::TermSetTable& a,
                              const workload::TermSetTable& b) {
  workload::TermSetTable out;
  for (std::size_t i = 0; i < a.size(); ++i) out.add(a.row(i));
  for (std::size_t i = 0; i < b.size(); ++i) out.add(b.row(i));
  return out;
}

}  // namespace

int main() {
  bench::print_banner("Ablation", "workload drift vs periodic re-allocation");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);

  // Phase A and phase B corpora: same shape statistics, different
  // rank-to-term permutations (different seeds), so different homes heat up.
  auto cfg_a = workload::CorpusConfig::trec_wt_like(bench::scale(),
                                                    filters.vocabulary);
  auto cfg_b = cfg_a;
  cfg_b.seed ^= 0xd21f7;
  const auto phase = static_cast<std::size_t>(d.batch_docs);
  const auto docs_a = workload::CorpusGenerator(cfg_a).generate(phase);
  const auto docs_b = workload::CorpusGenerator(cfg_b).generate(phase);
  const auto stream = concat(docs_a, docs_b);
  const auto stats_a = workload::compute_stats(docs_a, filters.vocabulary);
  const auto stats_b = workload::compute_stats(docs_b, filters.vocabulary);

  core::RunConfig rc;
  rc.inject_rate_per_sec = 50'000.0;
  rc.collect_latencies = false;

  std::printf("P=%zu, N=%zu, stream = %zu docs phase A + %zu docs phase B\n\n",
              filters.table.size(), d.nodes, docs_a.size(), docs_b.size());
  std::printf("%-44s %-14s %-14s\n", "strategy", "throughput/s",
              "reallocations");

  // Static: allocate from A, serve everything.
  {
    cluster::Cluster c(bench::cluster_config(d, d.nodes));
    core::MoveScheme scheme(c, bench::move_options(d));
    scheme.register_filters(filters.table);
    scheme.allocate(filters.stats, stats_a);
    const auto m = core::run_dissemination(scheme, stream, rc);
    std::printf("%-44s %-14.4g %-14d\n", "static (phase-A stats only)",
                m.throughput_per_sec(), 0);
  }

  // Oracle: switch to exact phase-B stats at the boundary.
  {
    cluster::Cluster c(bench::cluster_config(d, d.nodes));
    core::MoveScheme scheme(c, bench::move_options(d));
    scheme.register_filters(filters.table);
    scheme.allocate(filters.stats, stats_a);
    const auto m1 = core::run_dissemination(scheme, docs_a, rc);
    scheme.allocate(filters.stats, stats_b);
    const auto m2 = core::run_dissemination(scheme, docs_b, rc);
    const double total_sec = (m1.makespan_us + m2.makespan_us) / 1e6;
    std::printf("%-44s %-14.4g %-14d\n", "oracle (exact phase-B stats)",
                total_sec > 0
                    ? static_cast<double>(m1.documents_completed +
                                          m2.documents_completed) /
                          total_sec
                    : 0.0,
                1);
  }

  // Adaptive: §V periodic renewal from observed traffic.
  {
    cluster::Cluster c(bench::cluster_config(d, d.nodes));
    core::MoveScheme scheme(c, bench::move_options(d));
    scheme.register_filters(filters.table);
    scheme.allocate(filters.stats, stats_a);
    core::AdaptiveConfig acfg;
    acfg.window_docs = phase / 4;
    acfg.run = rc;
    const auto r = core::run_adaptive(scheme, stream, acfg);
    std::printf("%-44s %-14.4g %-14zu\n",
                "adaptive (periodic renewal, sec V)",
                r.metrics.throughput_per_sec(), r.reallocations);
  }

  std::printf("\n(expected: static < adaptive <= oracle in phase-B-heavy "
              "streams)\n");
  return 0;
}
