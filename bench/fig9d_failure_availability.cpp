// Fig. 9(d) — effect of node failure on filter availability for the three
// placement policies (rate of filters still reachable at failure rate 0.3
// vs the no-failure case). Expected shape: rack-aware suffers the lowest
// availability under correlated in-rack loss, ring stays high, and the MOVE
// hybrid stays close to ring — which is why §V combines the two.

#include "bench_util.hpp"

using namespace move;

int main() {
  bench::print_banner("Figure 9(d)",
                      "node failure vs filter availability by placement");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary).generate(500);
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  struct Policy {
    const char* name;
    kv::PlacementPolicy policy;
  };
  const Policy policies[] = {
      {"move", kv::PlacementPolicy::kHybrid},
      {"ring", kv::PlacementPolicy::kRingSuccessors},
      {"rack", kv::PlacementPolicy::kRackAware},
  };

  // Fig. 9(d)'s worst case for rack placement is losing whole racks; fail
  // rack-correlated: pick racks until 30% of nodes are down.
  auto fail_racks = [&](cluster::Cluster& c, double fraction,
                        common::SplitMix64& rng) {
    const auto target =
        static_cast<std::size_t>(fraction * static_cast<double>(c.size()));
    std::size_t failed = 0, guard = 0;
    while (failed < target && guard++ < 64) {
      const auto rack = common::uniform_below(rng, c.topology().rack_count());
      for (NodeId n : c.topology().nodes_in_rack(rack)) {
        if (failed >= target) break;
        if (c.alive(n)) {
          c.fail_node(n);
          ++failed;
        }
      }
    }
  };

  std::printf("P=%zu, N=%zu; copies = surviving-copy availability, "
              "routable = reachable-through-routing availability\n\n",
              filters.table.size(), d.nodes);
  std::printf("%-10s %-12s %-22s %-22s %-22s\n", "placement", "@ 0",
              "copies @ 0.3 (racks)", "routable @ 0.3 (rand)",
              "routable @ 0.3 (racks)");
  for (const auto& p : policies) {
    double copies_racks = 0, routable_rand = 0, routable_racks = 0, base = 0;
    for (int mode = 0; mode < 3; ++mode) {
      cluster::Cluster c(bench::cluster_config(d, d.nodes));
      auto opts = bench::move_options(d);
      opts.placement = p.policy;
      core::MoveScheme scheme(c, opts);
      scheme.register_filters(filters.table);
      scheme.allocate(filters.stats, corpus_stats);
      common::SplitMix64 rng(0xdead + mode);
      if (mode == 0) {
        base = scheme.routable_availability();
      } else if (mode == 1) {
        c.fail_fraction(0.3, rng);
        routable_rand = scheme.routable_availability();
      } else {
        fail_racks(c, 0.3, rng);
        copies_racks = scheme.filter_availability();
        routable_racks = scheme.routable_availability();
      }
    }
    std::printf("%-10s %-12.4f %-22.4f %-22.4f %-22.4f\n", p.name, base,
                copies_racks, routable_rand, routable_racks);
  }
  std::printf("\n(paper: rack placement suffers lowest availability at 0.3; "
              "move and ring stay high)\n");
  return 0;
}
