// Fig. 5 — "Document Term Frequency": ranked frequency q_i for the TREC-AP-
// like and TREC-WT-like corpora, their Shannon entropies (paper: 9.4473 AP,
// 6.7593 WT over the plotted top-1e5 ranks), and the §VI-A2 cross statistic:
// the share of the top-1000 popular query terms that are also top-1000
// frequent document terms (paper: 26.9 % AP, 31.3 % WT).

#include <algorithm>

#include "bench_util.hpp"

using namespace move;

namespace {

void report(const char* name, const workload::TraceStats& doc_stats,
            const workload::TraceStats& filter_stats, std::size_t head,
            double paper_entropy, double paper_overlap) {
  // The paper plots (and computes entropy over) the top-1e5 ranks; scale it.
  const auto entropy_limit = static_cast<std::size_t>(1e5 * bench::scale());
  std::printf("\n[%s]\n", name);
  std::printf("  distinct terms        : %zu\n", doc_stats.distinct_terms());
  std::printf("  entropy (top-%zu)   : %.4f   (paper: %.4f)\n", entropy_limit,
              doc_stats.entropy(entropy_limit), paper_entropy);
  std::printf("  top-%zu p/q overlap  : %.3f    (paper: %.3f)\n", head,
              workload::top_k_overlap(filter_stats, doc_stats, head),
              paper_overlap);
  std::printf("  %-12s %-14s\n", "rank", "frequency q_i");
  const auto ranked = doc_stats.ranked();
  for (std::size_t r = 1; r <= ranked.size(); r *= 4) {
    std::printf("  %-12zu %-14.6g\n", r, ranked[r - 1]);
  }
}

}  // namespace

int main() {
  bench::print_banner("Figure 5", "ranked document term frequency (TREC-like)");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);

  // Sample enough documents for stable shares without hour-long runs.
  const auto wt_sample = std::min<std::size_t>(
      static_cast<std::size_t>(1.69e6 * bench::scale()), 40'000);
  const auto wt_docs = bench::wt_generator(filters.vocabulary).generate(wt_sample);
  const auto ap_gen = bench::ap_generator(filters.vocabulary);
  const auto ap_docs = ap_gen.generate(
      std::min<std::size_t>(ap_gen.config().num_docs, 1'500));

  const auto wt_stats = workload::compute_stats(wt_docs, filters.vocabulary);
  const auto ap_stats = workload::compute_stats(ap_docs, filters.vocabulary);

  std::printf("WT docs sampled: %zu (%.1f terms/doc; paper 64.8)\n",
              wt_docs.size(), wt_docs.mean_row_size());
  std::printf("AP docs sampled: %zu (%.1f terms/doc; paper 6054.9)\n",
              ap_docs.size(), ap_docs.mean_row_size());

  const std::size_t head = std::max<std::size_t>(
      10, static_cast<std::size_t>(1000 * bench::scale() * 10));
  report("TREC AP", ap_stats, filters.stats, head, 9.4473, 0.269);
  report("TREC WT", wt_stats, filters.stats, head, 6.7593, 0.313);

  std::printf("\nshape check: entropy(AP) > entropy(WT)  ->  %s\n",
              ap_stats.entropy(static_cast<std::size_t>(1e5 * bench::scale())) >
                      wt_stats.entropy(static_cast<std::size_t>(
                          1e5 * bench::scale()))
                  ? "OK"
                  : "VIOLATED");
  return 0;
}
