// Fig. 13 (repro extension) — filter scale on one storage node: raw vs
// delta-compressed posting blocks at deployment sizes of 10^6..10^7 filters.
//
// The paper's regime is millions of registered filters spread over ~100
// nodes. Materializing a whole such cluster is pointless for a storage
// question, so this bench builds ONE home node's shard exactly as the
// cluster would: every filter homes at its rarest term (term ids are
// popularity-ranked, so `row.back()` is the rarest), terms map to nodes by
// hash, and only node 0's filters are kept with dense local ids.
//
// Two indexing policies bracket the storage question:
//
//  * `home` — the production MOVE layout (§III-B, what StorageNode builds
//    from MoveScheme's HomeEntry stream): each filter posted under its home
//    term ONLY, filters laid out home-term-grouped the way a bulk
//    registration drains, matched with conjunctive (kAllTerms) semantics
//    and candidate verification. Home lists are dense id runs, so the
//    codec's Rice mode lands in its sub-bit-per-gap regime. The ROADMAP
//    gate is evaluated HERE — this is the config the paper deploys.
//  * `full` — every term of every filter posted (the kernel-bench layout,
//    kAnyTerm). Kept as context: its posting ids are near-uniform draws
//    from the local id space, so the per-posting entropy is
//    ~log2(space/list_len) + 1.5 bits and the measured ~2.3x ratio is close
//    to the information-theoretic ceiling — no codec can reach 4x on it.
//
// Each policy is frozen twice, raw and compressed, and the same document
// stream is matched through both (scratch kernel, Bloom term summary on).
//
// Emits BENCH_fig13_filter_scale.json. Per sweep point, policy and storage
// mode: posting_bytes, bytes_per_filter, docs_per_sec, blocks_decoded,
// postings_skipped, bloom_rejects. `meta` records the ROADMAP gate at the
// 10^6-filter point on the `home` policy: memory_ratio_1e6 (raw/compressed
// bytes per filter, gate >= 4) and throughput_ratio_1e6 (compressed/raw
// docs per sec, gate > 0.9 — under 10% loss). Raw and compressed must
// produce identical match totals at every point or the bench exits nonzero.
//
// A second section drives the registration-churn workload at bench scale:
// a seeded register/unregister/edit stream applied through ChurnHarness
// with periodic compressed re-finalize cycles, every registered term fed to
// the adapt layer's WorkloadEstimator (the sketch that replaces exact
// counters at this scale), and brute-force exactness spot-checks along the
// way.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "adapt/estimator.hpp"
#include "bench_report.hpp"
#include "bench_util.hpp"
#include "common/hash.hpp"
#include "index/churn_harness.hpp"
#include "index/match_scratch.hpp"
#include "index/sift_matcher.hpp"
#include "workload/filter_churn.hpp"

namespace move::bench {
namespace {

constexpr std::size_t kClusterNodes = 100;

using Clock = std::chrono::steady_clock;

struct ModeResult {
  double wall_ms = 0.0;
  double docs_per_sec = 0.0;
  std::uint64_t posting_bytes = 0;
  double bytes_per_filter = 0.0;
  std::uint64_t postings_scanned = 0;
  std::uint64_t blocks_decoded = 0;
  std::uint64_t postings_skipped = 0;
  std::uint64_t bloom_rejects = 0;
  std::uint64_t matches_total = 0;
};

/// One storage mode under measurement: matcher plus its reusable state.
struct ModeRunner {
  ModeRunner(const index::FilterStore& store, const index::InvertedIndex& idx,
             bool full_index, index::MatchSemantics semantics)
      : matcher(store, idx, full_index) {
    opt.semantics = semantics;
    opt.use_term_summary = true;
    r.posting_bytes = idx.posting_storage_bytes();
    r.bytes_per_filter = store.size() > 0
                             ? static_cast<double>(r.posting_bytes) /
                                   static_cast<double>(store.size())
                             : 0.0;
  }

  /// Times one reps*docs sweep; accounting and match totals are
  /// deterministic per sweep, so only the first call records them.
  double sweep(const workload::TermSetTable& docs, std::size_t reps) {
    const bool record = !recorded;
    recorded = true;
    const auto t0 = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < docs.size(); ++i) {
        const auto a = matcher.match(docs.row(i), opt, out, scratch);
        if (record) {
          acc += a;
          r.matches_total += out.size();
        }
      }
    }
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  }

  ModeResult finish(const workload::TermSetTable& docs, std::size_t reps,
                    double best_ms) {
    r.wall_ms = best_ms;
    r.postings_scanned = acc.postings_scanned;
    r.blocks_decoded = acc.blocks_decoded;
    r.postings_skipped = acc.postings_skipped;
    r.bloom_rejects = acc.bloom_rejects;
    if (best_ms > 0) {
      r.docs_per_sec =
          static_cast<double>(reps * docs.size()) / (best_ms / 1e3);
    }
    return r;
  }

  index::SiftMatcher matcher;
  index::MatchOptions opt;
  index::MatchScratch scratch;
  std::vector<FilterId> out;
  index::MatchAccounting acc;
  ModeResult r;
  bool recorded = false;
};

void report_mode(BenchReporter& report, const char* policy, const char* mode,
                 double p_total, std::size_t local_filters, std::size_t docs,
                 std::size_t reps, const ModeResult& r) {
  obs::Json& row = report.add_row("filter_scale");
  row["knobs"]["policy"] = policy;
  row["knobs"]["mode"] = mode;
  row["knobs"]["P"] = p_total;
  row["knobs"]["local_filters"] = local_filters;
  row["knobs"]["nodes"] = kClusterNodes;
  row["knobs"]["docs"] = docs;
  row["knobs"]["reps"] = reps;
  obs::Json& m = row["metrics"];
  m["wall_ms"] = r.wall_ms;
  m["docs_per_sec"] = r.docs_per_sec;
  m["posting_bytes"] = r.posting_bytes;
  m["bytes_per_filter"] = r.bytes_per_filter;
  m["postings_scanned"] = r.postings_scanned;
  m["blocks_decoded"] = r.blocks_decoded;
  m["postings_skipped"] = r.postings_skipped;
  m["bloom_rejects"] = r.bloom_rejects;
  m["matches_total"] = r.matches_total;
  std::printf("  %-5s %-10s %9.3g filters %8zu local %8.3f B/filter "
              "%11.0f docs/s %9llu blocks\n",
              policy, mode, p_total, local_filters, r.bytes_per_filter,
              r.docs_per_sec,
              static_cast<unsigned long long>(r.blocks_decoded));
}

/// One policy at one sweep point: freeze raw and compressed, match the same
/// stream through both, report both rows, require identical match totals.
/// Returns {raw, compressed}.
struct PolicyResult {
  ModeResult raw;
  ModeResult comp;
  /// Median over trials of (raw wall / compressed wall) for the SAME trial —
  /// the paired comparison a noisy machine cannot bias: whatever hit one
  /// mode's sweep hit its partner too. This, not the ratio of the two
  /// headline docs_per_sec numbers, is what the throughput gate reads.
  double paired_throughput_ratio = 0.0;
  bool agree = true;
};

PolicyResult run_policy(BenchReporter& report, const char* policy,
                        const index::FilterStore& store,
                        index::InvertedIndex& raw_index,
                        index::InvertedIndex& comp_index, bool full_index,
                        index::MatchSemantics semantics, double p_paper,
                        const workload::TermSetTable& docs,
                        std::size_t reps) {
  index::InvertedIndex::FinalizeOptions raw_fo;
  raw_fo.compress = false;
  index::InvertedIndex::FinalizeOptions comp_fo;
  comp_fo.compress = true;
  raw_index.finalize(raw_fo);
  comp_index.finalize(comp_fo);

  // Interleaved paired trials: each trial times one raw sweep and one
  // compressed sweep back to back (order alternating per trial), so machine
  // noise — a load spike, a frequency step — hits both modes of a trial
  // alike instead of biasing whichever mode happened to run second. Each
  // mode's headline docs_per_sec comes from its fastest trial; the gate
  // ratio is the median of the per-trial raw/compressed wall ratios.
  ModeRunner raw_run(store, raw_index, full_index, semantics);
  ModeRunner comp_run(store, comp_index, full_index, semantics);
  (void)raw_run.sweep(docs, 1);   // warm-up
  (void)comp_run.sweep(docs, 1);  // warm-up
  raw_run.acc = {};
  raw_run.r.matches_total = 0;
  raw_run.recorded = false;
  comp_run.acc = {};
  comp_run.r.matches_total = 0;
  comp_run.recorded = false;
  constexpr std::size_t kTrials = 7;
  double raw_ms = 0.0, comp_ms = 0.0;
  std::vector<double> ratios;
  ratios.reserve(kTrials);
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    double rm, cm;
    if (trial % 2 == 0) {
      rm = raw_run.sweep(docs, reps);
      cm = comp_run.sweep(docs, reps);
    } else {
      cm = comp_run.sweep(docs, reps);
      rm = raw_run.sweep(docs, reps);
    }
    if (trial == 0 || rm < raw_ms) raw_ms = rm;
    if (trial == 0 || cm < comp_ms) comp_ms = cm;
    if (cm > 0) ratios.push_back(rm / cm);
  }
  PolicyResult pr;
  pr.raw = raw_run.finish(docs, reps, raw_ms);
  pr.comp = comp_run.finish(docs, reps, comp_ms);
  if (!ratios.empty()) {
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    pr.paired_throughput_ratio = ratios[ratios.size() / 2];
  }
  report_mode(report, policy, "raw", p_paper, store.size(), docs.size(),
              reps, pr.raw);
  report_mode(report, policy, "compressed", p_paper, store.size(),
              docs.size(), reps, pr.comp);
  if (pr.raw.matches_total != pr.comp.matches_total) {
    std::fprintf(stderr, "MISMATCH %s at P=%.3g: raw=%llu compressed=%llu\n",
                 policy, p_paper,
                 static_cast<unsigned long long>(pr.raw.matches_total),
                 static_cast<unsigned long long>(pr.comp.matches_total));
    pr.agree = false;
  }
  return pr;
}

/// Churn section: stream -> harness -> estimator, exactness spot-checked.
bool run_churn_section(BenchReporter& report) {
  const std::size_t pool_rows = std::max<std::size_t>(
      4'096, static_cast<std::size_t>(200'000 * scale()));
  const std::size_t churn_ops = pool_rows * 2;
  auto cfg = workload::QueryTraceConfig::msn_like(scale());
  cfg.num_filters = pool_rows;
  cfg.seed = 0xf13c47ULL;
  workload::FilterChurnConfig ccfg;
  ccfg.initial_live = pool_rows / 4;
  workload::FilterChurnStream stream(
      workload::QueryTraceGenerator(cfg).generate(pool_rows), ccfg);

  index::ChurnHarness::Options hopts;
  hopts.refinalize_every = 512;
  hopts.finalize.compress = true;
  index::ChurnHarness harness(hopts);
  adapt::WorkloadEstimator estimator;
  harness.set_on_register_term(
      [&estimator](TermId t) { estimator.on_filter_term(t); });

  auto dcfg = workload::QueryTraceConfig::msn_like(scale());
  dcfg.num_filters = 64;
  dcfg.seed = 0xd0cf13ULL;
  const auto docs = workload::QueryTraceGenerator(dcfg).generate(64);

  std::vector<FilterId> got, want;
  std::size_t checks = 0, mismatches = 0;
  const auto t0 = Clock::now();
  for (std::size_t op = 0; op < churn_ops; ++op) {
    harness.apply(stream, stream.next());
    if (op % 500 == 0) {
      const auto doc = docs.row(op / 500 % docs.size());
      harness.match(doc, got);
      harness.match_reference(doc, want);
      ++checks;
      if (got != want) ++mismatches;
    }
  }
  const double wall =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  obs::Json& row = report.add_row("filter_churn");
  row["knobs"]["pool_rows"] = pool_rows;
  row["knobs"]["churn_ops"] = churn_ops;
  row["knobs"]["refinalize_every"] = hopts.refinalize_every;
  obs::Json& m = row["metrics"];
  m["wall_ms"] = wall;
  m["ops_per_sec"] = wall > 0 ? static_cast<double>(churn_ops) / (wall / 1e3)
                              : 0.0;
  m["live_filters"] = harness.live_count();
  m["refinalize_cycles"] = harness.refinalize_cycles();
  m["exactness_checks"] = checks;
  m["exactness_mismatches"] = mismatches;
  m["estimator_bytes"] = estimator.memory_bytes();
  m["estimator_top_terms"] = estimator.filter_sketch().size();
  std::printf("\nchurn: %zu ops (%zu live, %llu re-finalize cycles), "
              "%zu exactness checks, %zu mismatches, estimator %zu B\n",
              churn_ops, harness.live_count(),
              static_cast<unsigned long long>(harness.refinalize_cycles()),
              checks, mismatches, estimator.memory_bytes());
  return mismatches == 0;
}

int run() {
  print_banner("Figure 13",
               "filter scale: raw vs compressed posting storage");
  const double s = scale();
  BenchReporter report("fig13_filter_scale");
  report.meta()["nodes"] = kClusterNodes;

  bool ok = true;
  double memory_ratio_1e6 = 0.0, throughput_ratio_1e6 = 0.0;
  std::printf("home node 0 of %zu; policies: home (single-term, kAllTerms, "
              "gated) and full (kAnyTerm, context); Bloom gate on\n\n",
              kClusterNodes);
  for (const double p_paper : {1e6, 3.162e6, 1e7}) {
    // Deployment sizes are fixed figure points; MOVE_BENCH_SCALE shrinks
    // them together with the vocabulary (0.1, the default, IS the figure).
    const auto p = static_cast<std::size_t>(p_paper * (s / 0.1));
    if (p == 0) continue;
    const auto filters = make_filters(p);

    // Node 0's shard: filters homed (by rarest term) on node 0.
    std::vector<std::size_t> kept;
    for (std::size_t i = 0; i < filters.table.size(); ++i) {
      const auto row = filters.table.row(i);
      if (row.empty()) continue;
      if (common::mix64(row.back().value) % kClusterNodes != 0) continue;
      kept.push_back(i);
    }

    const auto docs = wt_generator(filters.vocabulary).generate(256);
    const std::size_t reps = p_paper >= 1e7 ? 2 : 4;

    // `home` policy: registrations drain home-term-grouped (the order
    // MoveScheme's per-home entry lists arrive in), so local ids are dense
    // runs per home list; each filter is posted under its home term only.
    {
      std::vector<std::size_t> grouped = kept;
      std::stable_sort(grouped.begin(), grouped.end(),
                       [&](std::size_t a, std::size_t b) {
                         return filters.table.row(a).back().value <
                                filters.table.row(b).back().value;
                       });
      index::FilterStore store;
      index::InvertedIndex raw_index;
      index::InvertedIndex comp_index;
      for (const std::size_t i : grouped) {
        const auto row = filters.table.row(i);
        const auto id = store.add(row);
        const TermId home[] = {row.back()};
        raw_index.add(id, home);
        comp_index.add(id, home);
      }
      // Home-list matching is light; extra reps keep the timer honest.
      const auto pr = run_policy(report, "home", store, raw_index, comp_index,
                                 /*full_index=*/false,
                                 index::MatchSemantics::kAllTerms, p_paper,
                                 docs, reps * 8);
      ok = ok && pr.agree;
      if (p_paper == 1e6) {
        memory_ratio_1e6 =
            pr.comp.bytes_per_filter > 0
                ? pr.raw.bytes_per_filter / pr.comp.bytes_per_filter
                : 0.0;
        throughput_ratio_1e6 = pr.paired_throughput_ratio;
      }
    }

    // `full` policy context rows: every term posted, arrival-order ids.
    {
      index::FilterStore store;
      index::InvertedIndex raw_index;
      index::InvertedIndex comp_index;
      for (const std::size_t i : kept) {
        const auto row = filters.table.row(i);
        const auto id = store.add(row);
        raw_index.add(id, store.terms(id));
        comp_index.add(id, store.terms(id));
      }
      const auto pr = run_policy(report, "full", store, raw_index, comp_index,
                                 /*full_index=*/true,
                                 index::MatchSemantics::kAnyTerm, p_paper,
                                 docs, reps);
      ok = ok && pr.agree;
    }
  }

  // ROADMAP gate at the 10^6-filter point, `home` policy (the production
  // layout): >= 4x memory per filter, < 10% matching-throughput loss.
  report.meta()["memory_ratio_1e6"] = memory_ratio_1e6;
  report.meta()["throughput_ratio_1e6"] = throughput_ratio_1e6;
  report.meta()["gate_memory_4x"] = memory_ratio_1e6 >= 4.0;
  report.meta()["gate_throughput_90pct"] = throughput_ratio_1e6 > 0.9;
  std::printf("\ngate @ 1e6 filters (home policy): %.2fx bytes/filter (>=4), "
              "%.3fx throughput (>0.9)\n",
              memory_ratio_1e6, throughput_ratio_1e6);

  if (!run_churn_section(report)) ok = false;
  report.meta()["modes_agree"] = ok;
  if (!ok) return 1;
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace move::bench

int main() { return move::bench::run(); }
