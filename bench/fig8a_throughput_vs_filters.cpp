// Fig. 8(a) — cluster throughput vs total number of filters P
// (paper sweep 1e5..1e7 at N=20, Q=1e3 docs, TREC-WT docs; expected ordering
// Move > RS > IL, e.g. 93 / 70 / 42 at P=1e7).

#include "cluster_sweep.hpp"

using namespace move;

int main() {
  bench::print_banner("Figure 8(a)", "cluster throughput vs number of filters");
  const bench::PaperDefaults d;
  const double s = bench::scale();
  const auto batch = static_cast<std::size_t>(d.batch_docs);
  const auto max_filters = static_cast<std::size_t>(1e7 * s);
  const auto filters = bench::make_filters(max_filters);
  const auto docs = bench::wt_generator(filters.vocabulary).generate(batch);
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  std::printf("N=%zu nodes, Q=%zu docs, C=%.3g copies/node\n\n", d.nodes,
              batch, d.capacity);
  bench::BenchReporter report("fig8a_throughput_vs_filters");
  report.meta()["nodes"] = d.nodes;
  report.meta()["batch_docs"] = batch;
  report.meta()["capacity"] = d.capacity;
  bench::print_sweep_header("P (filters)");
  for (double p_paper : {1e5, 5e5, 2e6, 4e6, 7e6, 1e7}) {
    const auto p = static_cast<std::size_t>(p_paper * s);
    if (p == 0 || p > filters.table.size()) continue;
    bench::SchemeSet set(d, filters, corpus_stats, p, d.nodes);
    const auto m = set.run_batch_metrics(docs, batch);
    bench::print_sweep_row(static_cast<double>(p), m.throughput());
    bench::report_sweep_rows(report, "P", static_cast<double>(p), m);
    obs::Registry registry;
    m.move_m.export_metrics(registry);
    set.move_cluster().export_metrics(registry);
    report.attach_registry(registry);  // final sweep point wins
  }
  return report.write() ? 0 : 1;
}
