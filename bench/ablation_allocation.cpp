// Ablation — the allocation design choices §IV/§V call out, measured on the
// default cluster workload:
//   (i)   factor rule: Theorem 1 (sqrt q), Theorem 2 (sqrt(1+beta q)),
//         general (sqrt(p q));
//   (ii)  granularity: per-home-node aggregated tables (§V) vs per-term
//         tables (§IV) — throughput AND maintenance cost (tables/slots);
//   (iii) pure replication vs pure separation vs the adaptive grid (§IV-A);
//   (iv)  Bloom pre-screen on/off;
//   (v)   no allocation at all (the IL degenerate case).

#include "bench_util.hpp"

using namespace move;

namespace {

struct VariantResult {
  double tput = 0;
  std::size_t tables = 0;      ///< forwarding tables maintained (§V cost)
  std::size_t grid_slots = 0;  ///< total grid entries across tables
  std::uint64_t copies = 0;    ///< filter copies stored cluster-wide
};

VariantResult run_variant(const bench::PaperDefaults& d,
                          const bench::FilterWorkload& filters,
                          const workload::TraceStats& corpus_stats,
                          const workload::TermSetTable& docs,
                          core::MoveOptions opts, bool allocate = true) {
  cluster::Cluster c(bench::cluster_config(d, d.nodes));
  core::MoveScheme scheme(c, opts);
  scheme.register_filters(filters.table);
  if (allocate) scheme.allocate(filters.stats, corpus_stats);

  VariantResult r;
  for (const auto& t : scheme.tables()) {
    if (t.has_value()) {
      ++r.tables;
      r.grid_slots += t->node_count();
    }
  }
  for (const auto& [term, t] : scheme.term_tables()) {
    ++r.tables;
    r.grid_slots += t.node_count();
  }
  for (auto copies : scheme.storage_per_node()) r.copies += copies;
  r.tput = bench::run_burst(scheme, docs, d.batch_docs).throughput_per_sec();
  return r;
}

}  // namespace

int main() {
  bench::print_banner("Ablation", "allocation design choices");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary)
                        .generate(static_cast<std::size_t>(d.batch_docs));
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  std::printf("P=%zu, N=%zu, Q=%zu docs, C=%.3g\n\n", filters.table.size(),
              d.nodes, d.batch_docs, d.capacity);
  std::printf("%-40s %-12s %-9s %-11s %-12s\n", "variant", "throughput/s",
              "tables", "grid slots", "copies");
  auto report = [](const char* name, const VariantResult& r) {
    std::printf("%-40s %-12.4g %-9zu %-11zu %-12llu\n", name, r.tput,
                r.tables, r.grid_slots,
                static_cast<unsigned long long>(r.copies));
  };

  const auto base = bench::move_options(d);

  // (v) baseline without allocation.
  report("no allocation (IL behaviour)",
         run_variant(d, filters, corpus_stats, docs, base, false));

  // (i) factor rules.
  for (auto [name, rule] :
       {std::pair{"factor: theorem-1 sqrt(q)",
                  core::FactorRule::kTheorem1SqrtQ},
        std::pair{"factor: theorem-2 sqrt(1+bq)",
                  core::FactorRule::kTheorem2SqrtBetaQ},
        std::pair{"factor: general sqrt(pq)",
                  core::FactorRule::kGeneralSqrtPQ}}) {
    auto o = base;
    o.rule = rule;
    report(name, run_variant(d, filters, corpus_stats, docs, o));
  }

  // (ii) granularity: throughput vs the §V maintenance argument.
  {
    auto o = base;
    o.per_node_aggregation = false;
    report("granularity: per-term tables (sec IV)",
           run_variant(d, filters, corpus_stats, docs, o));
    report("granularity: per-node tables (sec V)",
           run_variant(d, filters, corpus_stats, docs, base));
  }

  // (iii) the §IV-A design space: both pure corners vs the adaptive ratio.
  for (auto [name, ratio] :
       {std::pair{"ratio: pure replication (r = 1/n)",
                  core::RatioPolicy::kPureReplication},
        std::pair{"ratio: pure separation (r = 1)",
                  core::RatioPolicy::kPureSeparation},
        std::pair{"ratio: adaptive (paper)",
                  core::RatioPolicy::kAdaptive}}) {
    auto o = base;
    o.ratio = ratio;
    report(name, run_variant(d, filters, corpus_stats, docs, o));
  }

  // (iv) Bloom pre-screen.
  {
    auto o = base;
    o.use_bloom = false;
    report("bloom pre-screen: off",
           run_variant(d, filters, corpus_stats, docs, o));
    report("bloom pre-screen: on",
           run_variant(d, filters, corpus_stats, docs, base));
  }
  return 0;
}
