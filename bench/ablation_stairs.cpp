// Ablation — term-selection (STAIRS [17],[21]) vs IL vs MOVE, the §V design
// decision: "the previous work can help select a smaller number of terms,
// but leading to high latency. Thus, for high throughput, we discard the
// selection algorithm." Run under conjunctive and threshold semantics
// (where selection is sound); expected shape: STAIRS stores far fewer
// copies, MOVE wins throughput.

#include "bench_util.hpp"
#include "core/stairs_scheme.hpp"

using namespace move;

namespace {

struct Row {
  const char* name;
  double tput = 0;
  std::uint64_t copies = 0;
  double latency_us = 0;
};

void print_row(const Row& r) {
  std::printf("%-10s %-14.4g %-14llu %-14.4g\n", r.name, r.tput,
              static_cast<unsigned long long>(r.copies), r.latency_us);
}

std::uint64_t total_copies(core::Scheme& s) {
  std::uint64_t n = 0;
  for (auto v : s.storage_per_node()) n += v;
  return n;
}

}  // namespace

int main() {
  bench::print_banner("Ablation", "STAIRS term selection vs IL vs MOVE");
  const bench::PaperDefaults d;
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary)
                        .generate(static_cast<std::size_t>(d.batch_docs));
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  for (auto [sem_name, match] :
       {std::pair{"conjunctive (all terms)",
                  index::MatchOptions{index::MatchSemantics::kAllTerms, 0.0}},
        std::pair{"threshold theta=0.5",
                  index::MatchOptions{index::MatchSemantics::kThreshold,
                                      0.5}}}) {
    std::printf("\n[%s]  P=%zu, N=%zu, Q=%zu docs\n", sem_name,
                filters.table.size(), d.nodes, d.batch_docs);
    std::printf("%-10s %-14s %-14s %-14s\n", "scheme", "throughput/s",
                "copies", "mean lat us");

    {
      cluster::Cluster c(bench::cluster_config(d, d.nodes));
      core::IlOptions o;
      o.match = match;
      core::StairsScheme scheme(c, o);
      scheme.register_filters(filters.table);
      core::RunConfig rc;
      rc.inject_rate_per_sec = 50'000.0;
      const auto m = core::run_dissemination(scheme, docs, rc);
      print_row(Row{"STAIRS", m.throughput_per_sec(), total_copies(scheme),
                    m.mean_latency_us()});
    }
    {
      cluster::Cluster c(bench::cluster_config(d, d.nodes));
      core::IlOptions o;
      o.match = match;
      core::IlScheme scheme(c, o);
      scheme.register_filters(filters.table);
      core::RunConfig rc;
      rc.inject_rate_per_sec = 50'000.0;
      const auto m = core::run_dissemination(scheme, docs, rc);
      print_row(Row{"IL", m.throughput_per_sec(), total_copies(scheme),
                    m.mean_latency_us()});
    }
    {
      cluster::Cluster c(bench::cluster_config(d, d.nodes));
      auto o = bench::move_options(d);
      o.match = match;
      core::MoveScheme scheme(c, o);
      scheme.register_filters(filters.table);
      scheme.allocate(filters.stats, corpus_stats);
      core::RunConfig rc;
      rc.inject_rate_per_sec = 50'000.0;
      const auto m = core::run_dissemination(scheme, docs, rc);
      print_row(Row{"Move", m.throughput_per_sec(), total_copies(scheme),
                    m.mean_latency_us()});
    }
  }
  std::printf("\n(paper: selection saves storage but MOVE discards it for "
              "throughput)\n");
  return 0;
}
