// Table 1 (§VI-A prose statistics) — every dataset number the paper quotes,
// computed from our synthetic traces so EXPERIMENTS.md can record
// paper-vs-measured side by side:
//   * MSN: 4e6 queries, 757,996 distinct terms, 2.843 terms/query, length
//     CDF 31.33/67.75/85.31 %, top-1000 popularity mass 0.437;
//   * TREC WT: 1.69e6 docs, 64.8 terms/doc, entropy 6.7593;
//   * TREC AP: 1,050 docs, 6,054.9 terms/doc, entropy 9.4473;
//   * top-1000 query/document term overlap 26.9 % (AP) / 31.3 % (WT).

#include <algorithm>

#include "bench_util.hpp"

using namespace move;

int main() {
  bench::print_banner("Table 1", "trace statistics (paper vs measured)");
  const bench::PaperDefaults d;
  const double s = bench::scale();
  const auto filters = bench::make_filters(d.filters);

  const auto wt_sample = std::min<std::size_t>(
      static_cast<std::size_t>(1.69e6 * s), 40'000);
  const auto wt = bench::wt_generator(filters.vocabulary).generate(wt_sample);
  const auto ap_gen = bench::ap_generator(filters.vocabulary);
  const auto ap =
      ap_gen.generate(std::min<std::size_t>(ap_gen.config().num_docs, 1'500));

  const auto wt_stats = workload::compute_stats(wt, filters.vocabulary);
  const auto ap_stats = workload::compute_stats(ap, filters.vocabulary);

  const auto hist = workload::row_size_histogram(filters.table);
  const double n = static_cast<double>(filters.table.size());
  double cdf[4] = {0, 0, 0, 0};
  for (std::size_t len = 1; len <= 3; ++len) {
    cdf[len] = cdf[len - 1] +
               (len < hist.size() ? static_cast<double>(hist[len]) : 0.0) / n;
  }
  const std::size_t head = std::max<std::size_t>(
      10, static_cast<std::size_t>(1000 * s * 10));
  const auto entropy_limit = static_cast<std::size_t>(1e5 * s);

  std::printf("%-34s %-14s %-14s\n", "statistic", "paper", "measured");
  auto row = [](const char* name, double paper, double measured) {
    std::printf("%-34s %-14.4g %-14.4g\n", name, paper, measured);
  };
  row("MSN queries (P)", 4e6 * s, static_cast<double>(filters.table.size()));
  row("MSN distinct terms", 757'996 * s,
      static_cast<double>(filters.stats.distinct_terms()));
  row("terms per query", 2.843, filters.table.mean_row_size());
  row("query-length CDF <=1 (%)", 31.33, 100 * cdf[1]);
  row("query-length CDF <=2 (%)", 67.75, 100 * cdf[2]);
  row("query-length CDF <=3 (%)", 85.31, 100 * cdf[3]);
  row("top-head popularity mass", 0.437, filters.stats.head_mass(head));
  row("WT docs sampled", 1.69e6 * s, static_cast<double>(wt.size()));
  row("WT terms per doc", 64.8, wt.mean_row_size());
  row("WT entropy (top ranks)", 6.7593, wt_stats.entropy(entropy_limit));
  row("AP docs", 1'050, static_cast<double>(ap.size()));
  row("AP terms per doc", 6054.9, ap.mean_row_size());
  row("AP entropy (top ranks)", 9.4473, ap_stats.entropy(entropy_limit));
  row("AP p/q head overlap", 0.269,
      workload::top_k_overlap(filters.stats, ap_stats, head));
  row("WT p/q head overlap", 0.313,
      workload::top_k_overlap(filters.stats, wt_stats, head));
  return 0;
}
