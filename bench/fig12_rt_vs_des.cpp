// Fig. 12 (repo extension) — real-clock executor vs DES prediction.
//
// The fig8-style sweep (filters P × docs Q × nodes N, all three schemes)
// run through BOTH executors: the discrete-event simulator predicts each
// scheme's throughput on the virtual clock, then move::rt replays the same
// plans on real std::threads with each hop's modeled service time burned as
// CPU, and we report measured wall-clock throughput against the prediction.
// A ratio near 1 means the DES cost model survives contact with a real
// scheduler at this node count; deviations localize where the model is
// optimistic (e.g. N workers > physical cores serializes what the DES runs
// in parallel).
//
// Env:
//   MOVE_BENCH_DES_ONLY=1    skip the rt half (used by the determinism
//                            gate: the DES rows are byte-reproducible, the
//                            measured wall-clock rows by design are not)
//   MOVE_RT_SERVICE_SCALE=x  fraction of modeled service burned per hop
//                            (default 1.0; lower trades fidelity for speed)

#include <cstdlib>

#include "cluster_sweep.hpp"
#include "rt/executor.hpp"

using namespace move;

namespace {

bool des_only() {
  const char* env = std::getenv("MOVE_BENCH_DES_ONLY");
  return env != nullptr && std::atoi(env) != 0;
}

double rt_service_scale() {
  if (const char* env = std::getenv("MOVE_RT_SERVICE_SCALE")) {
    const double v = std::atof(env);
    if (v >= 0.0) return v;
  }
  return 1.0;
}

/// The rt twin of SchemeSet::run_metrics: same burst injection rate, same
/// batch-cycling rule, measured on the wall clock.
rt::RtRunMetrics run_rt_burst(core::Scheme& scheme,
                              const workload::TermSetTable& docs,
                              std::size_t batch) {
  rt::RtRunConfig rc;
  rc.inject_rate_per_sec = bench::kBurstRate;
  rc.service_scale = rt_service_scale();
  if (batch == docs.size()) return rt::run_dissemination(scheme, docs, rc);
  workload::TermSetTable subset;
  for (std::size_t i = 0; i < batch; ++i) {
    subset.add(docs.row(i % docs.size()));
  }
  return rt::run_dissemination(scheme, subset, rc);
}

struct SweepPoint {
  double p_paper;     // filters at paper scale (scaled by MOVE_BENCH_SCALE)
  std::size_t docs;   // Q
  std::size_t nodes;  // N
};

}  // namespace

int main() {
  bench::print_banner("Figure 12",
                      "real-clock executor throughput vs DES prediction");
  const bench::PaperDefaults d;
  const double s = bench::scale();
  const bool skip_rt = des_only();
  const double svc = rt_service_scale();

  // One mini-sweep per axis around the paper's defaults — enough points to
  // see each knob's trend without a full cross product.
  const SweepPoint points[] = {
      {1e5, 200, 10}, {1e6, 200, 10}, {4e6, 200, 10},  // P sweep
      {1e6, 50, 10},  {1e6, 400, 10},                  // Q sweep
      {1e6, 200, 20},                                  // N sweep
  };

  const auto max_filters = static_cast<std::size_t>(4e6 * s);
  const auto filters = bench::make_filters(max_filters);
  std::size_t max_docs = 0;
  for (const auto& pt : points) max_docs = std::max(max_docs, pt.docs);
  const auto docs = bench::wt_generator(filters.vocabulary).generate(max_docs);
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  bench::BenchReporter report("fig12_rt");
  report.meta()["des_only"] = skip_rt;
  report.meta()["rt_service_scale"] = svc;
  if (skip_rt) {
    std::printf("MOVE_BENCH_DES_ONLY=1: skipping the measured rt half\n");
  }
  std::printf("%-10s %-6s %-4s %-6s %-12s %-12s %-8s\n", "P", "Q", "N",
              "scheme", "des_tput", "rt_tput", "ratio");

  for (const auto& pt : points) {
    const auto p = static_cast<std::size_t>(pt.p_paper * s);
    if (p == 0 || p > filters.table.size()) continue;
    bench::SchemeSet set(d, filters, corpus_stats, p, pt.nodes);

    const std::pair<const char*, core::Scheme*> schemes[] = {
        {"move", &set.move_scheme()},
        {"rs", &set.rs_scheme()},
        {"il", &set.il_scheme()},
    };
    for (const auto& [name, scheme] : schemes) {
      const auto des_m = bench::SchemeSet::run_metrics(*scheme, docs, pt.docs);
      obs::Json& row = report.add_row(name);
      row["knobs"]["P"] = static_cast<double>(p);
      row["knobs"]["Q"] = static_cast<double>(pt.docs);
      row["knobs"]["N"] = static_cast<double>(pt.nodes);
      obs::Json& metrics = row["metrics"];
      metrics["des_throughput_per_sec"] = des_m.throughput_per_sec();
      metrics["des_makespan_us"] = des_m.makespan_us;
      metrics["documents_completed"] = des_m.documents_completed;
      metrics["notifications"] = des_m.notifications;

      double rt_tput = 0.0;
      double ratio = 0.0;
      if (!skip_rt) {
        const auto rt_m = run_rt_burst(*scheme, docs, pt.docs);
        rt_tput = rt_m.throughput_per_sec();
        const double des_tput = des_m.throughput_per_sec();
        ratio = des_tput > 0.0 ? rt_tput / des_tput : 0.0;
        metrics["rt_throughput_per_sec"] = rt_tput;
        metrics["rt_wall_makespan_us"] = rt_m.wall_makespan_us;
        metrics["rt_publish_wall_us"] = rt_m.publish_wall_us;
        metrics["rt_documents_completed"] = rt_m.documents_completed;
        metrics["rt_envelopes_processed"] = rt_m.envelopes_processed;
        metrics["rt_over_des_ratio"] = ratio;
        if (rt_m.documents_completed != rt_m.documents_published) {
          std::printf("WARN %s: rt completed %llu of %llu documents\n", name,
                      static_cast<unsigned long long>(rt_m.documents_completed),
                      static_cast<unsigned long long>(rt_m.documents_published));
        }
      }
      std::printf("%-10zu %-6zu %-4zu %-6s %-12.4g %-12.4g %-8.3g\n", p,
                  pt.docs, pt.nodes, name, des_m.throughput_per_sec(), rt_tput,
                  ratio);
    }
  }
  return report.write() ? 0 : 1;
}
