// Fig. 8(c) — cluster throughput vs cluster size N
// (paper sweep up to ~100 nodes at P=4e6, Q=1e3 docs; expected: every scheme
// gains with more nodes; Move stays highest).

#include "cluster_sweep.hpp"

using namespace move;

int main() {
  bench::print_banner("Figure 8(c)", "cluster throughput vs number of nodes");
  const bench::PaperDefaults d;
  const auto batch = static_cast<std::size_t>(d.batch_docs);
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary).generate(batch);
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  std::printf("P=%zu filters, Q=%zu docs, C=%.3g copies/node\n\n",
              filters.table.size(), batch, d.capacity);
  bench::print_sweep_header("N (nodes)");
  for (std::size_t n : {5ul, 10ul, 20ul, 40ul, 60ul, 80ul, 100ul}) {
    bench::SchemeSet set(d, filters, corpus_stats, filters.table.size(), n);
    bench::print_sweep_row(static_cast<double>(n), set.run_batch(docs, batch));
  }
  return 0;
}
