// Fig. 8(c) — cluster throughput vs cluster size N
// (paper sweep up to ~100 nodes at P=4e6, Q=1e3 docs; expected: every scheme
// gains with more nodes; Move stays highest).

#include "cluster_sweep.hpp"

using namespace move;

int main() {
  bench::print_banner("Figure 8(c)", "cluster throughput vs number of nodes");
  const bench::PaperDefaults d;
  const auto batch = static_cast<std::size_t>(d.batch_docs);
  const auto filters = bench::make_filters(d.filters);
  const auto docs = bench::wt_generator(filters.vocabulary).generate(batch);
  const auto corpus_stats = workload::compute_stats(docs, filters.vocabulary);

  std::printf("P=%zu filters, Q=%zu docs, C=%.3g copies/node\n\n",
              filters.table.size(), batch, d.capacity);
  bench::BenchReporter report("fig8c_throughput_vs_nodes");
  report.meta()["filters"] = filters.table.size();
  report.meta()["batch_docs"] = batch;
  report.meta()["capacity"] = d.capacity;
  bench::print_sweep_header("N (nodes)");
  for (std::size_t n : {5ul, 10ul, 20ul, 40ul, 60ul, 80ul, 100ul}) {
    bench::SchemeSet set(d, filters, corpus_stats, filters.table.size(), n);
    const auto m = set.run_batch_metrics(docs, batch);
    bench::print_sweep_row(static_cast<double>(n), m.throughput());
    bench::report_sweep_rows(report, "N", static_cast<double>(n), m);
    obs::Registry registry;
    m.move_m.export_metrics(registry);
    set.move_cluster().export_metrics(registry);
    report.attach_registry(registry);  // final sweep point wins
  }
  return report.write() ? 0 : 1;
}
