// RSS dashboard — the My Yahoo!/iGoogle scenario from §I: instead of
// subscribing to whole feeds, users register fine-grained keyword filters
// and the system shows them only the matching items of every feed.
//
// Demonstrates operational aspects: raw text ingestion through the Porter
// pipeline, the passive allocation policy (learn statistics from live
// traffic, then re-allocate), and maintenance reporting (per-node storage
// and matching load before/after allocation).
//
//   $ ./rss_dashboard

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/move_scheme.hpp"
#include "text/pipeline.hpp"
#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

using namespace move;

namespace {

/// Feed items: a few hand-written headlines plus synthetic bulk so the load
/// statistics are meaningful.
std::vector<std::string> make_feed() {
  return {
      "Champions league football semifinal ends in dramatic penalty shootout",
      "New distributed database release promises faster storage compaction",
      "Energy markets react to climate policy announcement in Brussels",
      "Football transfer window rumors intensify as deadline approaches",
      "Cloud provider outage traced to cascading scheduler failure",
      "Electric vehicle sales surge as battery storage costs fall",
      "Champions league final tickets sell out within minutes",
      "Open source storage engine adopts log structured merge trees",
      "Heat wave strains energy grid, regulators urge demand response",
      "Football club unveils new stadium financed by green energy bonds",
  };
}

}  // namespace

int main() {
  text::Vocabulary vocabulary;
  text::Pipeline pipeline(vocabulary);

  // Named dashboard users with their filters.
  const std::vector<std::pair<std::string, std::string>> dashboards = {
      {"sports-fan", "football champions league"},
      {"dba", "database storage engine"},
      {"green-investor", "energy climate battery"},
      {"sre", "outage failure scheduler"},
  };

  workload::TermSetTable filters;
  for (const auto& [user, keywords] : dashboards) {
    filters.add(pipeline.process(keywords));
  }
  // Bulk synthetic subscribers sharing the same vocabulary skew, so the
  // cluster has realistic load (the named users ride along).
  vocabulary.grow_synthetic(5'000);
  workload::QueryTraceConfig qcfg;
  qcfg.num_filters = 50'000;
  qcfg.vocabulary_size = vocabulary.size();
  const auto bulk = workload::QueryTraceGenerator(qcfg).generate();
  for (std::size_t i = 0; i < bulk.size(); ++i) filters.add(bulk.row(i));

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 12;
  ccfg.num_racks = 3;
  cluster::Cluster cluster(ccfg);

  core::MoveOptions mo;
  mo.capacity = 10.0 * static_cast<double>(filters.size()) /
                static_cast<double>(ccfg.num_nodes);
  core::MoveScheme scheme(cluster, mo);
  scheme.register_filters(filters);

  // Phase 1 — unallocated: serve the live feed, let meta stores learn.
  const auto feed = make_feed();
  std::printf("feed items and dashboard hits (pre-allocation):\n");
  workload::TermSetTable feed_docs;
  for (const auto& item : feed) {
    const auto terms = pipeline.process_readonly(item);
    feed_docs.add(terms);
    const auto plan = scheme.plan_publish(terms);
    std::printf("  \"%.48s...\" ->", item.c_str());
    bool any = false;
    for (FilterId f : plan.matches) {
      if (f.value < dashboards.size()) {
        std::printf(" %s", dashboards[f.value].first.c_str());
        any = true;
      }
    }
    std::printf(any ? "\n" : " (bulk only)\n");
  }

  const auto before = scheme.storage_per_node();

  // Phase 2 — passive allocation from observed traffic (§V), then report
  // the maintenance picture.
  scheme.allocate_from_observed();
  const auto after = scheme.storage_per_node();

  std::printf("\nper-node filter copies before -> after allocation:\n ");
  for (std::size_t i = 0; i < before.size(); ++i) {
    std::printf(" %llu->%llu", static_cast<unsigned long long>(before[i]),
                static_cast<unsigned long long>(after[i]));
  }
  std::vector<double> b(before.begin(), before.end());
  std::vector<double> a(after.begin(), after.end());
  std::printf("\nstorage peak/mean: %.2f -> %.2f\n", common::peak_to_mean(b),
              common::peak_to_mean(a));

  // Same feed again, now through the allocated cluster.
  core::RunConfig rc;
  rc.inject_rate_per_sec = 1'000.0;
  const auto m = core::run_dissemination(scheme, feed_docs, rc);
  std::printf("allocated run: %llu/%llu items delivered, %llu total "
              "notifications\n",
              static_cast<unsigned long long>(m.documents_completed),
              static_cast<unsigned long long>(m.documents_published),
              static_cast<unsigned long long>(m.notifications));
  return 0;
}
