// News alerts — a Google-Alerts-style deployment, the paper's motivating
// application (§I): many users register short keyword alerts; a firehose of
// long articles is matched and disseminated in real time.
//
// Demonstrates the throughput story end to end: the same workload is run
// through the plain distributed inverted list (IL) and through MOVE with
// adaptive allocation, and the per-node load and throughput are compared.
//
//   $ ./news_alerts [num_alerts] [num_articles]

#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/il_scheme.hpp"
#include "core/move_scheme.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

using namespace move;

int main(int argc, char** argv) {
  const std::size_t num_alerts =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100'000;
  const std::size_t num_articles =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1'000;

  // Alert keywords follow the MSN-like query distribution (short, skewed);
  // articles follow the TREC-AP-like distribution (long, flatter).
  workload::QueryTraceConfig qcfg;
  qcfg.num_filters = num_alerts;
  qcfg.vocabulary_size = std::max<std::size_t>(20'000, num_alerts / 5);
  const auto alerts = workload::QueryTraceGenerator(qcfg).generate();

  auto acfg = workload::CorpusConfig::trec_ap_like(1.0, qcfg.vocabulary_size);
  acfg.mean_terms_per_doc = 800;  // long articles, demo-sized
  acfg.num_docs = num_articles;
  const auto articles = workload::CorpusGenerator(acfg).generate();

  const auto p_stats = workload::compute_stats(alerts, qcfg.vocabulary_size);
  const auto q_stats = workload::compute_stats(articles, qcfg.vocabulary_size);

  std::printf("news-alerts demo: %zu alerts (%.2f terms avg), %zu articles "
              "(%.0f terms avg)\n\n",
              alerts.size(), alerts.mean_row_size(), articles.size(),
              articles.mean_row_size());

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 16;
  ccfg.num_racks = 4;

  core::RunConfig rc;
  rc.inject_rate_per_sec = 20'000.0;  // saturating burst
  rc.collect_latencies = true;

  auto run = [&](core::Scheme& scheme, const char* name) {
    const auto m = core::run_dissemination(scheme, articles, rc);
    std::printf("%-6s throughput %8.1f articles/s | mean latency %8.0f us | "
                "alerts fired %llu | busiest node %.1fx mean load\n",
                name, m.throughput_per_sec(), m.mean_latency_us(),
                static_cast<unsigned long long>(m.notifications),
                common::peak_to_mean(m.node_busy_us));
  };

  {
    cluster::Cluster c(ccfg);
    core::IlScheme il(c);
    il.register_filters(alerts);
    run(il, "IL");
  }
  {
    cluster::Cluster c(ccfg);
    core::MoveOptions mo;
    mo.capacity = 12.0 * static_cast<double>(num_alerts) /
                  static_cast<double>(ccfg.num_nodes);
    core::MoveScheme mv(c, mo);
    mv.register_filters(alerts);
    mv.allocate(p_stats, q_stats);
    run(mv, "Move");
  }
  return 0;
}
