// Quickstart — the smallest end-to-end MOVE program.
//
// Builds a 8-node simulated cluster, registers a handful of keyword filters
// (raw text through the same tokenize/stop-word/Porter pipeline the paper
// applies to TREC), allocates them with the MOVE optimizer, publishes a few
// documents, and prints who gets notified.
//
//   $ ./quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/experiment.hpp"
#include "core/move_scheme.hpp"
#include "text/pipeline.hpp"
#include "workload/term_set_table.hpp"
#include "workload/trace_stats.hpp"

using namespace move;

int main() {
  // --- 1. a cluster of commodity machines (simulated) ----------------------
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 8;
  ccfg.num_racks = 2;
  cluster::Cluster cluster(ccfg);

  // --- 2. user profiles: keywords through the text pipeline ----------------
  text::Vocabulary vocabulary;
  text::Pipeline pipeline(vocabulary);

  const std::vector<std::pair<std::string, std::string>> users = {
      {"alice", "distributed systems"},
      {"bob", "football world cup"},
      {"carol", "climate energy policy"},
      {"dave", "football transfers"},
      {"erin", "cassandra storage"},
  };

  workload::TermSetTable filters;
  for (const auto& [user, keywords] : users) {
    filters.add(pipeline.process(keywords));
  }

  // --- 3. register + allocate with the MOVE scheme -------------------------
  core::MoveOptions mopts;
  mopts.capacity = 16;  // tiny demo capacity: forces visible allocation
  core::MoveScheme scheme(cluster, mopts);
  scheme.register_filters(filters);

  // Proactive allocation needs p (from the filters) and a q estimate; with
  // no corpus yet, bootstrap q from the filters themselves.
  const auto stats = workload::compute_stats(filters, vocabulary.size());
  scheme.allocate(stats, stats);

  // --- 4. publish documents ------------------------------------------------
  const std::vector<std::pair<std::string, std::string>> articles = {
      {"sports-desk", "The football world cup final drew record crowds"},
      {"tech-wire", "Apache Cassandra ships a new storage engine for "
                    "distributed key value systems"},
      {"newsroom", "New climate policy trades energy subsidies for carbon "
                   "pricing"},
  };

  std::printf("published documents and notified users:\n");
  for (const auto& [source, body] : articles) {
    const auto doc_terms = pipeline.process_readonly(body);
    const auto plan = scheme.plan_publish(doc_terms);
    std::printf("  [%s] ->", source.c_str());
    for (FilterId f : plan.matches) {
      std::printf(" %s", users[f.value].first.c_str());
    }
    std::printf("\n");
  }

  // --- 5. where did the filters land? ---------------------------------------
  std::printf("\nper-node filter copies:");
  for (auto copies : scheme.storage_per_node()) {
    std::printf(" %llu", static_cast<unsigned long long>(copies));
  }
  std::printf("\nfilter availability: %.0f%%\n",
              100.0 * scheme.filter_availability());
  return 0;
}
