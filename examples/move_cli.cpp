// move_cli — configurable experiment driver, the operational front door of
// the library. Builds any of the three schemes on a synthetic paper-like
// workload and reports throughput, latency, load distribution, and
// availability; optionally as a CSV row for scripting sweeps.
//
//   $ ./move_cli --scheme=move --nodes=20 --filters=400000 --docs=1000
//   $ ./move_cli --scheme=il --semantics=threshold --theta=0.5 --csv
//   $ ./move_cli --scheme=move --placement=rack --fail=0.3 --seed=7
//
// Flags (all optional):
//   --scheme      move | il | rs                 (default move)
//   --nodes       cluster size                   (default 20)
//   --racks       rack count                     (default 4)
//   --filters     registered filters P           (default 400000)
//   --docs        documents in the burst Q       (default 1000)
//   --corpus      wt | ap                        (default wt)
//   --capacity    per-node copy capacity C       (default 300000)
//   --semantics   any | all | threshold          (default any)
//   --theta       threshold value                (default 0.5)
//   --placement   hybrid | ring | rack           (default hybrid)
//   --granularity node | term                    (default node)
//   --ratio       adaptive | replicate | separate (default adaptive)
//   --fail        fraction of nodes failed       (default 0)
//   --rate        injection rate docs/s          (default 50000)
//   --seed        workload seed                  (default 1)
//   --csv         print one CSV row instead of the report
//   --csv-header  print the CSV header line and exit

#include <cstdio>
#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/il_scheme.hpp"
#include "core/move_scheme.hpp"
#include "core/rs_scheme.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

using namespace move;

namespace {

index::MatchOptions parse_semantics(const common::Flags& flags) {
  const auto s = flags.get("semantics", "any");
  index::MatchOptions opt;
  if (s == "all") {
    opt.semantics = index::MatchSemantics::kAllTerms;
  } else if (s == "threshold") {
    opt.semantics = index::MatchSemantics::kThreshold;
    opt.threshold = flags.get_double("theta", 0.5);
  }
  return opt;
}

kv::PlacementPolicy parse_placement(const common::Flags& flags) {
  const auto p = flags.get("placement", "hybrid");
  if (p == "ring") return kv::PlacementPolicy::kRingSuccessors;
  if (p == "rack") return kv::PlacementPolicy::kRackAware;
  return kv::PlacementPolicy::kHybrid;
}

core::RatioPolicy parse_ratio(const common::Flags& flags) {
  const auto r = flags.get("ratio", "adaptive");
  if (r == "replicate") return core::RatioPolicy::kPureReplication;
  if (r == "separate") return core::RatioPolicy::kPureSeparation;
  return core::RatioPolicy::kAdaptive;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  if (flags.has("csv-header")) {
    std::printf("scheme,nodes,filters,docs,corpus,fail,throughput_per_s,"
                "mean_latency_us,p99_latency_us,notifications,"
                "busy_peak_to_mean,storage_peak_to_mean,availability\n");
    return 0;
  }

  const auto scheme_name = flags.get("scheme", "move");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 20));
  const auto num_filters =
      static_cast<std::size_t>(flags.get_int("filters", 400'000));
  const auto num_docs = static_cast<std::size_t>(flags.get_int("docs", 1'000));
  const auto corpus_kind = flags.get("corpus", "wt");
  const double capacity = flags.get_double("capacity", 300'000);
  const double fail = flags.get_double("fail", 0.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  // --- workload -------------------------------------------------------------
  workload::QueryTraceConfig qcfg = workload::QueryTraceConfig::msn_like(0.1);
  qcfg.num_filters = num_filters;
  qcfg.seed ^= seed;
  const auto filters = workload::QueryTraceGenerator(qcfg).generate();

  auto ccfg = corpus_kind == "ap"
                  ? workload::CorpusConfig::trec_ap_like(0.1,
                                                         qcfg.vocabulary_size)
                  : workload::CorpusConfig::trec_wt_like(0.1,
                                                         qcfg.vocabulary_size);
  ccfg.seed ^= seed;
  const auto docs = workload::CorpusGenerator(ccfg).generate(num_docs);

  const auto p_stats = workload::compute_stats(filters, qcfg.vocabulary_size);
  const auto q_stats = workload::compute_stats(docs, qcfg.vocabulary_size);

  // --- cluster + scheme -----------------------------------------------------
  cluster::ClusterConfig clcfg;
  clcfg.num_nodes = nodes;
  clcfg.num_racks = static_cast<std::size_t>(flags.get_int("racks", 4));
  cluster::Cluster cluster(clcfg);

  std::unique_ptr<core::Scheme> scheme;
  core::MoveScheme* move_scheme = nullptr;
  if (scheme_name == "il") {
    core::IlOptions o;
    o.match = parse_semantics(flags);
    scheme = std::make_unique<core::IlScheme>(cluster, o);
  } else if (scheme_name == "rs") {
    core::RsOptions o;
    o.match = parse_semantics(flags);
    scheme = std::make_unique<core::RsScheme>(cluster, o);
  } else {
    core::MoveOptions o;
    o.match = parse_semantics(flags);
    o.capacity = capacity;
    o.placement = parse_placement(flags);
    o.ratio = parse_ratio(flags);
    o.per_node_aggregation = flags.get("granularity", "node") != "term";
    auto owned = std::make_unique<core::MoveScheme>(cluster, o);
    move_scheme = owned.get();
    scheme = std::move(owned);
  }

  scheme->register_filters(filters);
  if (move_scheme != nullptr) move_scheme->allocate(p_stats, q_stats);

  if (fail > 0.0) {
    common::SplitMix64 rng(seed ^ 0xfa11);
    cluster.fail_fraction(fail, rng);
  }

  // --- run ------------------------------------------------------------------
  core::RunConfig rc;
  rc.inject_rate_per_sec = flags.get_double("rate", 50'000.0);
  const auto m = core::run_dissemination(*scheme, docs, rc);

  std::vector<double> storage;
  for (auto v : scheme->storage_per_node()) {
    storage.push_back(static_cast<double>(v));
  }
  const double avail = scheme->filter_availability();

  if (flags.has("csv")) {
    std::printf("%s,%zu,%zu,%zu,%s,%.2f,%.4g,%.4g,%.4g,%llu,%.4f,%.4f,%.4f\n",
                scheme_name.c_str(), nodes, filters.size(), docs.size(),
                corpus_kind.c_str(), fail, m.throughput_per_sec(),
                m.mean_latency_us(), m.p99_latency_us(),
                static_cast<unsigned long long>(m.notifications),
                common::peak_to_mean(m.node_busy_us),
                common::peak_to_mean(storage), avail);
    return 0;
  }

  std::printf("scheme      : %s\n", scheme_name.c_str());
  std::printf("cluster     : %zu nodes / %zu racks (%.0f%% failed)\n", nodes,
              clcfg.num_racks, 100 * fail);
  std::printf("workload    : %zu filters (%.2f terms avg), %zu %s docs "
              "(%.1f terms avg)\n",
              filters.size(), filters.mean_row_size(), docs.size(),
              corpus_kind.c_str(), docs.mean_row_size());
  std::printf("throughput  : %.4g docs/s\n", m.throughput_per_sec());
  std::printf("latency     : mean %.4g us, p99 %.4g us\n", m.mean_latency_us(),
              m.p99_latency_us());
  std::printf("delivered   : %llu/%llu docs, %llu notifications\n",
              static_cast<unsigned long long>(m.documents_completed),
              static_cast<unsigned long long>(m.documents_published),
              static_cast<unsigned long long>(m.notifications));
  std::printf("balance     : busy peak/mean %.2f, storage peak/mean %.2f\n",
              common::peak_to_mean(m.node_busy_us),
              common::peak_to_mean(storage));
  std::printf("availability: %.2f%%\n", 100.0 * avail);
  return 0;
}
