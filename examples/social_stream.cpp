// Social stream — the Facebook/Twitter-style scenario from the paper's
// introduction: a very high volume of short posts, fine-grained filtering so
// users see only relevant postings from the accounts they follow, and the
// cluster must ride through node failures.
//
// Demonstrates: threshold matching semantics (a post must cover at least
// half of a subscription's keywords), burst dissemination, and failure
// injection with availability reporting.
//
//   $ ./social_stream [num_subscriptions] [num_posts]

#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.hpp"
#include "core/experiment.hpp"
#include "core/move_scheme.hpp"
#include "workload/corpus.hpp"
#include "workload/query_trace.hpp"
#include "workload/trace_stats.hpp"

using namespace move;

int main(int argc, char** argv) {
  const std::size_t num_subs =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200'000;
  const std::size_t num_posts =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3'000;

  workload::QueryTraceConfig qcfg;
  qcfg.num_filters = num_subs;
  qcfg.vocabulary_size = std::max<std::size_t>(30'000, num_subs / 4);
  const auto subs = workload::QueryTraceGenerator(qcfg).generate();

  // Short posts: WT-like skew but only ~12 distinct terms per post.
  auto pcfg = workload::CorpusConfig::trec_wt_like(1.0, qcfg.vocabulary_size);
  pcfg.mean_terms_per_doc = 12;
  pcfg.num_docs = num_posts;
  const auto posts = workload::CorpusGenerator(pcfg).generate();

  const auto p_stats = workload::compute_stats(subs, qcfg.vocabulary_size);
  const auto q_stats = workload::compute_stats(posts, qcfg.vocabulary_size);

  std::printf("social-stream demo: %zu subscriptions, %zu posts "
              "(%.1f terms avg)\n",
              subs.size(), posts.size(), posts.mean_row_size());

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 24;
  ccfg.num_racks = 4;
  cluster::Cluster cluster(ccfg);

  core::MoveOptions mo;
  // A post matches a subscription when it covers at least half of the
  // subscription's keywords (the similarity-threshold extension of §III-A).
  mo.match = index::MatchOptions{index::MatchSemantics::kThreshold, 0.5};
  mo.capacity = 10.0 * static_cast<double>(num_subs) /
                static_cast<double>(ccfg.num_nodes);
  core::MoveScheme scheme(cluster, mo);
  scheme.register_filters(subs);
  scheme.allocate(p_stats, q_stats);

  core::RunConfig rc;
  rc.inject_rate_per_sec = 30'000.0;

  const auto healthy = core::run_dissemination(scheme, posts, rc);
  std::printf("\nhealthy cluster : %8.1f posts/s, %llu notifications, "
              "availability %.1f%%\n",
              healthy.throughput_per_sec(),
              static_cast<unsigned long long>(healthy.notifications),
              100.0 * scheme.filter_availability());

  // Lose 25% of the nodes and keep going.
  common::SplitMix64 rng(42);
  cluster.fail_fraction(0.25, rng);
  const auto degraded = core::run_dissemination(scheme, posts, rc);
  std::printf("after 25%% loss  : %8.1f posts/s, %llu notifications, "
              "availability %.1f%%\n",
              degraded.throughput_per_sec(),
              static_cast<unsigned long long>(degraded.notifications),
              100.0 * scheme.filter_availability());

  const double kept = healthy.notifications > 0
                          ? 100.0 * static_cast<double>(degraded.notifications) /
                                static_cast<double>(healthy.notifications)
                          : 0.0;
  std::printf("notification retention under failure: %.1f%%\n", kept);
  return 0;
}
