#!/usr/bin/env bash
# Documentation gate (ctest -L docs).
#
#   1. Markdown link check: every relative link in the repo's *.md files
#      must resolve to an existing file (python3 stdlib only).
#   2. Doxygen build with warnings-as-errors — skipped with a notice when
#      doxygen is not installed, so the gate stays green on minimal images.
#
# Usage: scripts/check_docs.sh [repo-root]
set -euo pipefail

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root"

echo "== markdown link check =="
python3 - <<'PY'
import os, re, sys

LINK = re.compile(r'\[[^\]]*\]\(([^)\s]+)\)')
SKIP_DIRS = {'build', 'build-asan', 'build-tsan', '.git', 'docs/api'}

md_files = []
for dirpath, dirnames, filenames in os.walk('.'):
    rel = os.path.relpath(dirpath, '.')
    dirnames[:] = [d for d in dirnames
                   if os.path.normpath(os.path.join(rel, d)) not in SKIP_DIRS
                   and d != '.git']
    md_files += [os.path.join(dirpath, f) for f in filenames
                 if f.endswith('.md')]

broken = []
for path in sorted(md_files):
    base = os.path.dirname(path)
    with open(path, encoding='utf-8') as f:
        for lineno, line in enumerate(f, 1):
            for target in LINK.findall(line):
                if target.startswith(('http://', 'https://', 'mailto:', '#')):
                    continue  # external links and in-page anchors
                target = target.split('#', 1)[0]
                if not target:
                    continue
                if not os.path.exists(os.path.join(base, target)):
                    broken.append(f'{path}:{lineno}: broken link -> {target}')

for b in broken:
    print(b)
print(f'checked {len(md_files)} markdown files')
sys.exit(1 if broken else 0)
PY

echo "== doxygen =="
if command -v doxygen >/dev/null 2>&1; then
  doxygen docs/Doxyfile
  echo "doxygen ok (docs/api/html)"
else
  echo "doxygen not installed - skipping API reference build"
fi

echo "docs check passed"
