#!/usr/bin/env bash
# Runs each given bench binary twice (same seeds, same scale) and requires
# the machine-readable BENCH_*.json outputs to be byte-identical. The bench
# JSON is pure virtual-clock/seeded data — no wall-clock fields — so a plain
# diff is the whole check; any divergence means an unseeded draw, a
# wall-clock read, or address-dependent iteration order crept into the
# pipeline. Normalization below is defensive: should a volatile field ever
# be added to the schema, extend STRIP_KEYS rather than weakening the diff.
#
# Benches with a real-clock (measured wall-time) half honor
# MOVE_BENCH_DES_ONLY=1, exported below: only their deterministic DES rows
# are emitted and diffed; the measured rt half is exempt from this gate by
# design (wall-clock numbers are not byte-reproducible, and pretending
# otherwise would force us to strip exactly the fields the bench exists to
# report).
#
# Usage: check_determinism.sh <bench-binary> [<bench-binary>...]
# Env:   MOVE_BENCH_SCALE  workload scale for the runs (default 0.02 — the
#        check cares about byte-identity, not statistical fidelity, so the
#        smallest workload that still exercises every code path wins)
set -euo pipefail

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <bench-binary> [<bench-binary>...]" >&2
  exit 2
fi

scale="${MOVE_BENCH_SCALE:-0.02}"
export MOVE_BENCH_DES_ONLY=1
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Keys whose values are allowed to differ between runs (none today).
STRIP_KEYS='^$'

normalize() {
  # Drop lines whose key matches STRIP_KEYS (e.g. future timestamps).
  grep -Ev "\"(${STRIP_KEYS})\":" "$1" || true
}

status=0
for bin in "$@"; do
  name="$(basename "$bin")"
  if [ ! -x "$bin" ]; then
    echo "FAIL $name: not an executable: $bin" >&2
    status=1
    continue
  fi
  for run in 1 2; do
    out="$tmp/$name/$run"
    mkdir -p "$out"
    if ! MOVE_BENCH_SCALE="$scale" MOVE_BENCH_OUT="$out" "$bin" \
        >"$out/stdout.log" 2>&1; then
      echo "FAIL $name: run $run exited nonzero (log: $out/stdout.log)" >&2
      sed 's/^/    /' "$out/stdout.log" | tail -20 >&2
      exit 1
    fi
  done

  jsons=("$tmp/$name/1"/BENCH_*.json)
  if [ ! -e "${jsons[0]}" ]; then
    echo "FAIL $name: produced no BENCH_*.json" >&2
    status=1
    continue
  fi
  for f1 in "${jsons[@]}"; do
    f2="$tmp/$name/2/$(basename "$f1")"
    if [ ! -e "$f2" ]; then
      echo "FAIL $name: second run did not produce $(basename "$f1")" >&2
      status=1
      continue
    fi
    if diff -u <(normalize "$f1") <(normalize "$f2") >"$tmp/diff.out"; then
      echo "OK   $name: $(basename "$f1") identical across runs"
    else
      echo "FAIL $name: $(basename "$f1") differs between identical runs" >&2
      head -40 "$tmp/diff.out" >&2
      status=1
    fi
  done
done

exit "$status"
