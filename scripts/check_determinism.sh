#!/usr/bin/env bash
# Runs each given bench binary twice (same seeds, same scale) and requires
# the machine-readable BENCH_*.json outputs to be byte-identical. The bench
# JSON is pure virtual-clock/seeded data — no wall-clock fields — so a plain
# diff is the whole check; any divergence means an unseeded draw, a
# wall-clock read, or address-dependent iteration order crept into the
# pipeline. Normalization below is defensive: should a volatile field ever
# be added to the schema, extend STRIP_KEYS rather than weakening the diff.
#
# Benches with a real-clock (measured wall-time) half honor
# MOVE_BENCH_DES_ONLY=1, exported below: only their deterministic DES rows
# are emitted and diffed; the measured rt half is exempt from this gate by
# design (wall-clock numbers are not byte-reproducible, and pretending
# otherwise would force us to strip exactly the fields the bench exists to
# report).
#
# Binaries listed after `--simd-diff` get a different pairing: one run with
# MOVE_FORCE_SCALAR=0 (whatever kernels the build compiled in) and one with
# MOVE_FORCE_SCALAR=1 (every kernel routed through its scalar twin), and the
# BENCH json must STILL be byte-identical. That is the dispatch contract of
# src/common/simd.hpp — vectorization is an implementation detail that may
# never leak into results or accounting — enforced end to end through a real
# figure bench rather than just the unit matrix.
#
# Binaries listed after `--codec-diff` get the storage-mode pairing: one run
# with MOVE_INDEX_COMPRESSED=0 (frozen-raw postings) and one with
# MOVE_INDEX_COMPRESSED=1 (delta-compressed posting blocks), and the BENCH
# json must be byte-identical after stripping ONLY the codec's own gauges
# (run.match.blocks_decoded, run.index.posting_bytes,
# run.index.bytes_per_filter — the fields that *define* the storage mode).
# That is the storage contract of src/index/inverted_index.hpp: compression
# may never change matches, classic accounting, or timing on the virtual
# clock.
#
# Usage: check_determinism.sh <bench-binary>... [--simd-diff <bench-binary>...]
#                             [--codec-diff <bench-binary>...]
# Env:   MOVE_BENCH_SCALE  workload scale for the runs (default 0.02 — the
#        check cares about byte-identity, not statistical fidelity, so the
#        smallest workload that still exercises every code path wins)
set -euo pipefail

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <bench-binary>... [--simd-diff <bench-binary>...]" \
       "[--codec-diff <bench-binary>...]" >&2
  exit 2
fi

scale="${MOVE_BENCH_SCALE:-0.02}"
export MOVE_BENCH_DES_ONLY=1
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Keys whose values are allowed to differ between runs (none today).
STRIP_KEYS='^$'
# Gauges only the compressed storage mode emits — stripped ONLY for the
# --codec-diff pairing, where they differ between modes by definition.
CODEC_KEYS='run\.match\.blocks_decoded|run\.index\.posting_bytes|run\.index\.bytes_per_filter'

# normalize <file> <extra-strip-regex>
normalize() {
  # Drop lines whose key matches STRIP_KEYS (e.g. future timestamps) plus
  # any pairing-specific keys.
  grep -Ev "\"(${STRIP_KEYS}|${2:-^$})\":" "$1" || true
}

# Split the argument list: binaries before --simd-diff/--codec-diff are
# diffed across two identical runs; binaries after --simd-diff across a SIMD
# vs forced-scalar pair; binaries after --codec-diff across a raw vs
# compressed-postings pair.
repeat_bins=()
simd_bins=()
codec_bins=()
mode=repeat
for arg in "$@"; do
  if [ "$arg" = "--simd-diff" ]; then
    mode=simd
    continue
  fi
  if [ "$arg" = "--codec-diff" ]; then
    mode=codec
    continue
  fi
  case "$mode" in
    repeat) repeat_bins+=("$arg") ;;
    simd)   simd_bins+=("$arg") ;;
    codec)  codec_bins+=("$arg") ;;
  esac
done

status=0

# run_once <bin> <outdir> <force_scalar ("" = leave unset)>
#          [compressed ("" = leave unset)]
run_once() {
  local bin="$1" out="$2" force="$3" compressed="${4:-}"
  mkdir -p "$out"
  if ! env ${force:+MOVE_FORCE_SCALAR="$force"} \
      ${compressed:+MOVE_INDEX_COMPRESSED="$compressed"} \
      MOVE_BENCH_SCALE="$scale" MOVE_BENCH_OUT="$out" "$bin" \
      >"$out/stdout.log" 2>&1; then
    echo "FAIL $(basename "$bin"): run exited nonzero (log: $out/stdout.log)" >&2
    sed 's/^/    /' "$out/stdout.log" | tail -20 >&2
    exit 1
  fi
}

# diff_pair <name> <dir1> <dir2> <what> [extra-strip-regex] — byte-diffs
# every BENCH_*.json that dir1 produced against its twin in dir2.
diff_pair() {
  local name="$1" d1="$2" d2="$3" what="$4" extra="${5:-}"
  local jsons=("$d1"/BENCH_*.json)
  if [ ! -e "${jsons[0]}" ]; then
    echo "FAIL $name: produced no BENCH_*.json" >&2
    status=1
    return
  fi
  local f1 f2
  for f1 in "${jsons[@]}"; do
    f2="$d2/$(basename "$f1")"
    if [ ! -e "$f2" ]; then
      echo "FAIL $name: second run did not produce $(basename "$f1")" >&2
      status=1
      continue
    fi
    if diff -u <(normalize "$f1" "$extra") <(normalize "$f2" "$extra") \
        >"$tmp/diff.out"; then
      echo "OK   $name: $(basename "$f1") identical across $what"
    else
      echo "FAIL $name: $(basename "$f1") differs between $what" >&2
      head -40 "$tmp/diff.out" >&2
      status=1
    fi
  done
}

for bin in "${repeat_bins[@]+"${repeat_bins[@]}"}"; do
  name="$(basename "$bin")"
  if [ ! -x "$bin" ]; then
    echo "FAIL $name: not an executable: $bin" >&2
    status=1
    continue
  fi
  run_once "$bin" "$tmp/$name/1" ""
  run_once "$bin" "$tmp/$name/2" ""
  diff_pair "$name" "$tmp/$name/1" "$tmp/$name/2" "identical runs"
done

for bin in "${simd_bins[@]+"${simd_bins[@]}"}"; do
  name="$(basename "$bin")"
  if [ ! -x "$bin" ]; then
    echo "FAIL $name: not an executable: $bin" >&2
    status=1
    continue
  fi
  run_once "$bin" "$tmp/$name/simd" "0"
  run_once "$bin" "$tmp/$name/scalar" "1"
  diff_pair "$name" "$tmp/$name/simd" "$tmp/$name/scalar" \
    "SIMD and forced-scalar runs"
done

for bin in "${codec_bins[@]+"${codec_bins[@]}"}"; do
  name="$(basename "$bin")"
  if [ ! -x "$bin" ]; then
    echo "FAIL $name: not an executable: $bin" >&2
    status=1
    continue
  fi
  run_once "$bin" "$tmp/$name/raw" "" "0"
  run_once "$bin" "$tmp/$name/compressed" "" "1"
  diff_pair "$name" "$tmp/$name/raw" "$tmp/$name/compressed" \
    "raw and compressed-postings runs" "$CODEC_KEYS"
done

exit "$status"
