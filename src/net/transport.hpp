#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/link_model.hpp"
#include "net/retry_policy.hpp"
#include "sim/event_engine.hpp"
#include "sim/net_accounting.hpp"

/// The message layer interposed between the schemes/KvStore control plane
/// and the event engine. Every routed RPC (publish hop, hint drain, repair
/// batch) becomes a `send`: the LinkModel and PartitionSet decide what the
/// wire does to each attempt, and an end-to-end reliability layer on top —
/// per-attempt timeouts, bounded jittered-exponential retries under one
/// deadline, receiver-side idempotency-key dedup, per-destination circuit
/// breakers, and receiver admission control — decides what the application
/// observes: delivered exactly once, shed, or expired.
///
/// Zero-cost pass-through: while the link is lossless and no partition is
/// active, `send` draws no randomness and schedules exactly one engine
/// event (the delivery), so a run with the transport interposed is
/// bit-identical to one without it.
namespace move::net {

/// Admission-control priority. Under queue pressure the receiver sheds the
/// lowest class first; kHigh is never shed.
enum class Priority : std::uint8_t { kBulk = 0, kNormal = 1, kHigh = 2 };

/// Terminal outcome of one logical send, reported to `on_fail` (delivery
/// reports through `on_deliver` instead).
enum class SendOutcome : std::uint8_t {
  kExpired,      ///< retry budget / end-to-end deadline exhausted
  kShed,         ///< receiver admission control rejected the message
  kBreakerOpen,  ///< destination breaker open: failed fast, no attempt
};

struct BreakerOptions {
  /// Consecutive attempt timeouts to one destination that trip its breaker.
  std::size_t trip_after = 5;
  /// How long a tripped breaker stays open before a half-open probe is
  /// allowed through; doubles on every reopen up to the cap.
  double cooldown_us = 20'000.0;
  double max_cooldown_us = 160'000.0;
};

struct NetOptions {
  LinkModel link;
  RetryPolicy retry;
  BreakerOptions breaker;
  /// How long a delivered idempotency key is remembered at the receiver.
  /// Must exceed the retry deadline so no late retry slips past dedup; the
  /// expiry sweep is what keeps dedup memory bounded.
  double dedup_window_us = 250'000.0;
  /// Receiver queue depth at which admission control starts shedding kBulk
  /// messages (kNormal sheds at 4x this). 0 disables admission control.
  std::size_t shed_queue_bound = 0;
  /// Seed for the transport's own named "net" randomness stream.
  std::uint64_t seed = 0x4e70001ULL;
};

class Transport {
 public:
  using DeliverFn = std::function<void(sim::Time)>;
  using FailFn = std::function<void(SendOutcome)>;
  using QueueDepthFn = std::function<std::size_t(NodeId)>;

  Transport(sim::EventEngine& engine, NetOptions options);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Receiver queue-depth oracle for admission control (e.g. the cluster's
  /// FifoServer depth). Without one, nothing is ever shed.
  void set_queue_depth_fn(QueueDepthFn fn) { queue_depth_ = std::move(fn); }

  /// Swaps the global link model (FaultPlan's `set_loss` lands here).
  void set_link(const LinkModel& link) { options_.link = link; }
  [[nodiscard]] const LinkModel& link() const noexcept {
    return options_.link;
  }

  [[nodiscard]] PartitionSet& partitions() noexcept { return partitions_; }
  [[nodiscard]] const PartitionSet& partitions() const noexcept {
    return partitions_;
  }

  [[nodiscard]] const NetOptions& options() const noexcept {
    return options_;
  }

  /// True while the transport is configured as an exact pass-through:
  /// lossless link, no active partition.
  [[nodiscard]] bool pass_through() const noexcept {
    return options_.link.pass_through() && partitions_.empty();
  }

  /// Sends one logical message from `src` to `dst` whose healthy one-way
  /// transfer costs `transfer_us`. `on_deliver` fires exactly once at the
  /// receiver (never twice, whatever the link duplicates or retries race);
  /// `on_fail` (optional) fires instead if the message is shed, expired,
  /// or breaker-rejected. Exactly one of the two fires per send, except
  /// that an asymmetric partition can deliver *and* later expire the
  /// sender's retry loop (delivered wins: on_fail is suppressed).
  void send(NodeId src, NodeId dst, double transfer_us, Priority priority,
            DeliverFn on_deliver, FailFn on_fail = nullptr);

  /// Is the destination's circuit breaker currently open? Routing wires
  /// this into `Cluster::routing_believes_alive` so tripped destinations
  /// fail over exactly like dead ones.
  [[nodiscard]] bool breaker_open(NodeId dst) const noexcept;

  [[nodiscard]] const sim::NetAccounting& accounting() const noexcept {
    return acc_;
  }

  /// Idempotency keys currently remembered across all receivers (the
  /// dedup-window memory-bound tests watch this).
  [[nodiscard]] std::size_t dedup_entries() const noexcept;

  /// Logical sends whose outcome is still undecided.
  [[nodiscard]] std::size_t inflight() const noexcept { return inflight_; }

 private:
  struct Pending;

  struct Breaker {
    std::size_t consecutive_timeouts = 0;
    bool tripped = false;
    double open_until = 0.0;
    double cooldown_us = 0.0;
  };

  struct DedupWindow {
    std::unordered_set<std::uint64_t> seen;
    std::deque<std::pair<double, std::uint64_t>> expiry;  // (expire_at, key)
  };

  void start_attempt(const std::shared_ptr<Pending>& p);
  void deliver(const std::shared_ptr<Pending>& p);
  void on_timeout(const std::shared_ptr<Pending>& p);
  void fail(const std::shared_ptr<Pending>& p, SendOutcome outcome);
  void record_timeout(NodeId dst);
  void record_success(NodeId dst);
  void purge_dedup(DedupWindow& w, double now);

  sim::EventEngine* engine_;
  NetOptions options_;
  PartitionSet partitions_;
  common::SplitMix64 rng_;
  QueueDepthFn queue_depth_;
  sim::NetAccounting acc_;
  std::uint64_t next_key_ = 1;
  std::size_t inflight_ = 0;
  std::unordered_map<std::uint32_t, Breaker> breakers_;
  std::unordered_map<std::uint32_t, DedupWindow> dedup_;
};

}  // namespace move::net
