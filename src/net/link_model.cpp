#include "net/link_model.hpp"

#include <algorithm>

namespace move::net {

namespace {

std::vector<std::uint32_t> sorted_ids(const std::vector<NodeId>& nodes) {
  std::vector<std::uint32_t> out;
  out.reserve(nodes.size());
  for (NodeId n : nodes) out.push_back(n.value);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool contains(const std::vector<std::uint32_t>& side, NodeId n) noexcept {
  return std::binary_search(side.begin(), side.end(), n.value);
}

}  // namespace

void PartitionSet::add(std::string name, std::vector<NodeId> side_a,
                       std::vector<NodeId> side_b, bool bidirectional) {
  heal(name);
  partitions_.push_back(Partition{std::move(name), sorted_ids(side_a),
                                  sorted_ids(side_b), bidirectional});
}

bool PartitionSet::heal(std::string_view name) {
  const auto it = std::find_if(
      partitions_.begin(), partitions_.end(),
      [name](const Partition& p) { return p.name == name; });
  if (it == partitions_.end()) return false;
  partitions_.erase(it);
  return true;
}

bool PartitionSet::blocks(NodeId src, NodeId dst) const noexcept {
  for (const Partition& p : partitions_) {
    if (contains(p.side_a, src) && contains(p.side_b, dst)) return true;
    if (p.bidirectional && contains(p.side_b, src) &&
        contains(p.side_a, dst)) {
      return true;
    }
  }
  return false;
}

bool PartitionSet::active(std::string_view name) const noexcept {
  return std::any_of(partitions_.begin(), partitions_.end(),
                     [name](const Partition& p) { return p.name == name; });
}

}  // namespace move::net
