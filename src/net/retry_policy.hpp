#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/cost_model.hpp"

/// End-to-end retry/backoff policy for one RPC class. The per-attempt
/// timeout is derived from the cost model (a round trip plus the routing
/// timeout margin), retries back off exponentially with jitter, and the
/// whole message lives under one end-to-end deadline — the retry budget —
/// so a dead destination costs bounded publisher time, never a livelock.
namespace move::net {

struct RetryPolicy {
  /// Master switch: with retries disabled a lost attempt is simply a lost
  /// message (the ablation fig10 uses to show the reliability layer earns
  /// its cost).
  bool enabled = true;
  /// Total wire attempts allowed per message (first try included).
  std::size_t max_attempts = 6;
  /// Sender-side ack timeout per attempt.
  double timeout_us = 2'500.0;
  /// Exponential backoff: retry k (0-based) waits a uniform jittered delay
  /// in [base, min(cap, base * 2^k)].
  double backoff_base_us = 250.0;
  double backoff_cap_us = 8'000.0;
  /// End-to-end deadline relative to the first send. A retry is only
  /// scheduled if its own timeout would still expire within the deadline,
  /// so the total budget (all waits + all timeouts) never exceeds it.
  double deadline_us = 80'000.0;

  /// Jittered exponential backoff before retry `retry_index` (0-based).
  /// Always in [backoff_base_us, backoff_cap_us].
  [[nodiscard]] double backoff_us(std::size_t retry_index,
                                  common::SplitMix64& rng) const noexcept;

  /// Would scheduling another attempt at `now` (microseconds since the
  /// first send) still respect the deadline? `backoff` is the wait chosen
  /// for it.
  [[nodiscard]] bool attempt_fits_deadline(double now_since_send_us,
                                           double backoff) const noexcept {
    return now_since_send_us + backoff + timeout_us <= deadline_us;
  }

  /// Policy derived from the cost model for a message whose healthy
  /// transfer costs `transfer_us`: timeout covers a full round trip plus
  /// the model's routing-timeout margin, and the deadline funds every
  /// allowed attempt at worst-case backoff.
  [[nodiscard]] static RetryPolicy for_transfer(const sim::CostModel& cost,
                                                double transfer_us) noexcept;
};

}  // namespace move::net
