#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

/// Link-level fault model for the simulated network: what the wire between
/// two nodes can do to a message attempt. All faults are drawn from an
/// explicit SplitMix64 stream (the "net" named stream), so a lossy run
/// replays bit-identically; a default-constructed LinkModel is an exact
/// pass-through that draws nothing.
namespace move::net {

/// The id the transport uses for the external publisher client — it is not
/// a cluster node, so it can never be inside a partition, but its links
/// still lose and duplicate messages like any other.
inline constexpr NodeId kClientNode{0xffffffffu};

struct LinkModel {
  /// Per-attempt probability the message vanishes on the wire.
  double loss = 0.0;
  /// Extra one-way latency added to every delivery, plus a uniform jitter
  /// in [0, latency_jitter_us).
  double latency_base_us = 0.0;
  double latency_jitter_us = 0.0;
  /// Probability an attempt is delivered twice (the second copy trails by
  /// a uniform delay in (0, duplicate_gap_us]); receiver-side dedup is what
  /// keeps this from double-counting.
  double duplicate = 0.0;
  double duplicate_gap_us = 400.0;
  /// Probability a delivery is held back by an extra uniform delay in
  /// (0, reorder_delay_us] — enough to leapfrog later sends (and, when it
  /// exceeds the sender's timeout, to race its own retry into the dedup
  /// window).
  double reorder = 0.0;
  double reorder_delay_us = 3'000.0;

  /// True when the link perturbs nothing: no draw, no added latency, no
  /// extra copies. The transport's zero-cost fast path keys off this.
  [[nodiscard]] bool pass_through() const noexcept {
    return loss <= 0.0 && latency_base_us <= 0.0 &&
           latency_jitter_us <= 0.0 && duplicate <= 0.0 && reorder <= 0.0;
  }
};

/// Named partitions over the node id space. A partition cuts traffic from
/// side A to side B (and, when bidirectional, B to A); multiple partitions
/// can be live at once and heal independently on the virtual clock —
/// exactly the shape FaultPlan's `partition` / `heal` actions script.
class PartitionSet {
 public:
  /// Starts a named partition. Re-adding an active name replaces it (the
  /// script's latest word wins). Nodes absent from both sides (including
  /// kClientNode) are unaffected.
  void add(std::string name, std::vector<NodeId> side_a,
           std::vector<NodeId> side_b, bool bidirectional = true);

  /// Heals (removes) the named partition. Unknown names are a no-op so
  /// heal events commute with plans that never started the cut.
  /// @returns true if a partition was actually removed.
  bool heal(std::string_view name);

  /// Drops every active partition.
  void clear() noexcept { partitions_.clear(); }

  /// True if any active partition blocks a message from `src` to `dst`.
  [[nodiscard]] bool blocks(NodeId src, NodeId dst) const noexcept;

  [[nodiscard]] bool active(std::string_view name) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return partitions_.empty(); }

 private:
  struct Partition {
    std::string name;
    std::vector<std::uint32_t> side_a;  // sorted for binary_search
    std::vector<std::uint32_t> side_b;
    bool bidirectional = true;
  };

  std::vector<Partition> partitions_;
};

}  // namespace move::net
