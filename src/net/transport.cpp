#include "net/transport.hpp"

#include <algorithm>

namespace move::net {

/// Sender-side state of one logical message, shared by the attempt,
/// delivery, and timeout events through a shared_ptr.
struct Transport::Pending {
  NodeId src{0};
  NodeId dst{0};
  double transfer_us = 0.0;
  Priority priority = Priority::kNormal;
  std::uint64_t key = 0;
  double sent_at = 0.0;       ///< first attempt time (deadline anchor)
  std::size_t attempts = 0;   ///< wire attempts made so far
  bool done = false;          ///< a terminal outcome was decided
  bool delivered = false;     ///< on_deliver already fired (dedup gate)
  DeliverFn on_deliver;
  FailFn on_fail;
};

Transport::Transport(sim::EventEngine& engine, NetOptions options)
    : engine_(&engine), options_(options),
      rng_(common::named_stream(options.seed, "net")) {}

void Transport::send(NodeId src, NodeId dst, double transfer_us,
                     Priority priority, DeliverFn on_deliver,
                     FailFn on_fail) {
  ++acc_.messages;

  // Zero-cost pass-through: lossless link, no partitions. One engine event,
  // no randomness, no timers — bit-identical to scheduling the delivery
  // directly, which is what keeps fault-free runs byte-for-byte unchanged.
  // Loopback (src == dst) never traverses the wire, so it takes the same
  // reliable path whatever the link model says.
  if (pass_through() || src == dst) {
    ++acc_.attempts;
    ++acc_.delivered;
    engine_->schedule_after(
        transfer_us, [this, cb = std::move(on_deliver)] { cb(engine_->now()); });
    return;
  }

  auto p = std::make_shared<Pending>();
  p->src = src;
  p->dst = dst;
  p->transfer_us = transfer_us;
  p->priority = priority;
  p->key = next_key_++;
  p->sent_at = engine_->now();
  p->on_deliver = std::move(on_deliver);
  p->on_fail = std::move(on_fail);
  ++inflight_;

  // Fail fast against an open breaker: routing should have failed over
  // already (the veto), so anything landing here is charged immediately
  // instead of burning the full retry budget on a known-bad destination.
  if (breaker_open(dst)) {
    ++acc_.breaker_fast_fails;
    fail(p, SendOutcome::kBreakerOpen);
    return;
  }
  start_attempt(p);
}

void Transport::start_attempt(const std::shared_ptr<Pending>& p) {
  if (p->done) return;
  ++acc_.attempts;
  ++p->attempts;
  const double now = engine_->now();
  const LinkModel& link = options_.link;

  const bool cut = partitions_.blocks(p->src, p->dst);
  const bool lost = cut || common::bernoulli(rng_, link.loss);
  if (lost) {
    ++acc_.drops;
  } else {
    double delay = p->transfer_us + link.latency_base_us;
    if (link.latency_jitter_us > 0.0) {
      delay += link.latency_jitter_us * common::uniform_unit(rng_);
    }
    if (link.reorder > 0.0 && common::bernoulli(rng_, link.reorder)) {
      delay += link.reorder_delay_us * common::uniform_unit(rng_);
    }
    engine_->schedule_after(delay, [this, p] { deliver(p); });
    if (link.duplicate > 0.0 && common::bernoulli(rng_, link.duplicate)) {
      ++acc_.duplicates;
      const double gap =
          link.duplicate_gap_us * common::uniform_unit(rng_);
      engine_->schedule_after(delay + gap, [this, p] { deliver(p); });
    }
  }

  // The sender cannot know the attempt was dropped — it waits for the ack
  // timeout either way. now is re-read inside the callback via engine_.
  (void)now;
  engine_->schedule_after(options_.retry.timeout_us,
                          [this, p] { on_timeout(p); });
}

void Transport::deliver(const std::shared_ptr<Pending>& p) {
  if (p->done) {
    // A late or duplicated copy of a message already decided (delivered,
    // shed, or expired): suppressed at the receiver.
    ++acc_.dup_suppressed;
    return;
  }
  const double now = engine_->now();

  // Receiver-side idempotency: a key inside the dedup window was already
  // applied — this copy is a retry racing its delayed original (or a link
  // duplicate). Suppress; do not re-run the application callback.
  auto& window = dedup_[p->dst.value];
  purge_dedup(window, now);
  if (p->delivered || window.seen.contains(p->key)) {
    ++acc_.dup_suppressed;
    return;
  }

  // Admission control: shed low classes once the serial service queue at
  // the destination exceeds the bound — explicit outcome, not silent queue
  // growth. kHigh is never shed.
  if (options_.shed_queue_bound > 0 && queue_depth_ &&
      p->priority != Priority::kHigh) {
    const std::size_t depth = queue_depth_(p->dst);
    const std::size_t bound = p->priority == Priority::kBulk
                                  ? options_.shed_queue_bound
                                  : 4 * options_.shed_queue_bound;
    if (depth >= bound) {
      ++acc_.shed;
      fail(p, SendOutcome::kShed);
      return;
    }
  }

  window.seen.insert(p->key);
  window.expiry.emplace_back(now + options_.dedup_window_us, p->key);
  ++acc_.delivered;
  p->delivered = true;
  record_success(p->dst);

  // The ack travels dst -> src; an asymmetric partition that blocks that
  // direction leaves the sender timing out and retrying a message that
  // already landed — dedup absorbs the retries until the deadline expires.
  if (!partitions_.blocks(p->dst, p->src)) {
    p->done = true;
    --inflight_;
  }
  p->on_deliver(now);
}

void Transport::on_timeout(const std::shared_ptr<Pending>& p) {
  if (p->done) return;
  ++acc_.timeouts;
  record_timeout(p->dst);

  const RetryPolicy& retry = options_.retry;
  if (!retry.enabled || p->attempts >= retry.max_attempts) {
    fail(p, SendOutcome::kExpired);
    return;
  }
  const double backoff = retry.backoff_us(p->attempts - 1, rng_);
  const double since_send = engine_->now() - p->sent_at;
  if (!retry.attempt_fits_deadline(since_send, backoff)) {
    fail(p, SendOutcome::kExpired);
    return;
  }
  ++acc_.retries;
  engine_->schedule_after(backoff, [this, p] { start_attempt(p); });
}

void Transport::fail(const std::shared_ptr<Pending>& p, SendOutcome outcome) {
  if (p->done) return;
  p->done = true;
  --inflight_;
  if (outcome == SendOutcome::kExpired && !p->delivered) ++acc_.expired;
  if (!p->delivered && p->on_fail) p->on_fail(outcome);
}

bool Transport::breaker_open(NodeId dst) const noexcept {
  const auto it = breakers_.find(dst.value);
  if (it == breakers_.end()) return false;
  const Breaker& b = it->second;
  return b.tripped && engine_->now() < b.open_until;
}

void Transport::record_timeout(NodeId dst) {
  auto& b = breakers_[dst.value];
  if (b.cooldown_us <= 0.0) b.cooldown_us = options_.breaker.cooldown_us;
  const double now = engine_->now();
  if (b.tripped) {
    if (now >= b.open_until) {
      // Half-open probe failed: reopen with doubled cooldown.
      b.open_until = now + b.cooldown_us;
      b.cooldown_us = std::min(2.0 * b.cooldown_us,
                               options_.breaker.max_cooldown_us);
      ++acc_.breaker_trips;
    }
    return;
  }
  if (++b.consecutive_timeouts >= options_.breaker.trip_after) {
    b.tripped = true;
    b.open_until = now + b.cooldown_us;
    b.cooldown_us = std::min(2.0 * b.cooldown_us,
                             options_.breaker.max_cooldown_us);
    b.consecutive_timeouts = 0;
    ++acc_.breaker_trips;
  }
}

void Transport::record_success(NodeId dst) {
  const auto it = breakers_.find(dst.value);
  if (it == breakers_.end()) return;
  Breaker& b = it->second;
  b.consecutive_timeouts = 0;
  b.tripped = false;
  b.open_until = 0.0;
  b.cooldown_us = options_.breaker.cooldown_us;
}

void Transport::purge_dedup(DedupWindow& w, double now) {
  while (!w.expiry.empty() && w.expiry.front().first <= now) {
    w.seen.erase(w.expiry.front().second);
    w.expiry.pop_front();
  }
}

std::size_t Transport::dedup_entries() const noexcept {
  std::size_t n = 0;
  for (const auto& [node, w] : dedup_) n += w.seen.size();
  return n;
}

}  // namespace move::net
