#include "net/retry_policy.hpp"

#include <algorithm>

namespace move::net {

double RetryPolicy::backoff_us(std::size_t retry_index,
                               common::SplitMix64& rng) const noexcept {
  const double base = std::max(0.0, backoff_base_us);
  double cap = std::max(base, backoff_cap_us);
  // Exponential ceiling for this retry, saturating at the cap (shift-safe).
  double ceiling = base;
  for (std::size_t k = 0; k < retry_index && ceiling < cap; ++k) {
    ceiling *= 2.0;
  }
  ceiling = std::min(ceiling, cap);
  // Full jitter over [base, ceiling]: decorrelates retry storms without
  // ever retrying faster than the base.
  return base + (ceiling - base) * common::uniform_unit(rng);
}

RetryPolicy RetryPolicy::for_transfer(const sim::CostModel& cost,
                                      double transfer_us) noexcept {
  RetryPolicy p;
  // Ack timeout: a full round trip of the healthy transfer plus the cost
  // model's routing-timeout margin (the same constant the failover path
  // charges per dead contact), so a timeout is evidence, not impatience.
  p.timeout_us = 2.0 * transfer_us + cost.route_timeout_us;
  p.backoff_base_us = std::max(50.0, 0.5 * transfer_us);
  p.backoff_cap_us = std::max(p.backoff_base_us, 16.0 * p.backoff_base_us);
  // Deadline funds every allowed attempt at worst-case backoff, no more:
  // max_attempts timeouts plus (max_attempts - 1) capped waits.
  p.deadline_us =
      static_cast<double>(p.max_attempts) * p.timeout_us +
      static_cast<double>(p.max_attempts - 1) * p.backoff_cap_us;
  return p;
}

}  // namespace move::net
