#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault_injector.hpp"
#include "kv/gossip.hpp"
#include "net/transport.hpp"

/// Dynamic churn timelines: one dissemination run with a FaultPlan armed on
/// the same virtual clock, sampled at a fixed cadence. This is what extends
/// the paper's static Fig. 9c/9d points into throughput/availability *vs
/// time* curves — failures dent the curve, hinted handoff and incremental
/// repair pull it back up before (or after) the nodes themselves return.
namespace move::fault {

struct ChurnConfig {
  /// Document injection rate (as core::RunConfig::inject_rate_per_sec).
  double inject_rate_per_sec = 1000.0;
  bool collect_latencies = false;  ///< latency vectors are rarely needed here
  /// Virtual-time sampling cadence for the timeline.
  sim::Time sample_interval_us = 50'000.0;
  FaultInjectorOptions injector;
  /// Attach a gossip membership so routing runs on the (lagging) failure
  /// detector instead of ground truth.
  bool attach_membership = false;
  kv::GossipConfig gossip;
  /// Completed documents are recorded in a replicated KV store (the
  /// delivery registry), which exercises hinted handoff under the same
  /// churn; 0 replicas disables the registry.
  std::size_t registry_replicas = 3;
  /// Message-layer configuration. Every publish hop rides the transport;
  /// the default LinkModel is an exact pass-through, so a churn run without
  /// net faults stays bit-identical to the pre-net layer. A seed of 0
  /// derives the net stream from the plan's seed.
  net::NetOptions net;
};

/// One point of the churn timeline (times relative to the run start).
struct ChurnSample {
  sim::Time t_us = 0;
  double throughput_per_sec = 0;  ///< docs completed in this bucket / dt
  double availability = 1.0;      ///< scheme->filter_availability()
  std::size_t live_nodes = 0;
  std::size_t handoff_queue_depth = 0;  ///< registry hints parked
  std::size_t repair_backlog = 0;       ///< entries awaiting re-application
  sim::FaultAccounting fault;           ///< cumulative run totals so far
  sim::NetAccounting net;               ///< cumulative transport totals so far
};

struct ChurnResult {
  std::vector<ChurnSample> samples;
  sim::RunMetrics metrics;   ///< whole-run totals (incl. fault_acc delta)
  FaultTimeline timeline;    ///< what the injector executed
  /// Time-weighted mean / min of the sampled availability.
  double mean_availability = 1.0;
  double min_availability = 1.0;
  /// Sampled virtual time during which availability < 1 (the
  /// unavailability window; repair shrinks it below the node downtime).
  sim::Time unavailable_us = 0;
  /// Delivery-registry keys readable at the end (vs documents completed).
  std::size_t registry_readable = 0;
  std::uint64_t registry_hints_parked = 0;
  std::uint64_t registry_hints_drained = 0;
};

/// Runs `docs` through `scheme` while executing `plan` on the same virtual
/// clock. Resets the cluster's servers; liveness is restored (revive_all)
/// before returning so the cluster is reusable. Deterministic for a fixed
/// (scheme state, docs, plan, config).
[[nodiscard]] ChurnResult run_churn(core::Scheme& scheme,
                                    const workload::TermSetTable& docs,
                                    const FaultPlan& plan,
                                    const ChurnConfig& config = {});

}  // namespace move::fault
