#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace move::fault {

FaultInjector::FaultInjector(core::Scheme& scheme, FaultPlan plan,
                             FaultInjectorOptions options,
                             kv::KeyValueStore* store,
                             net::Transport* transport)
    : scheme_(&scheme), cluster_(&scheme.cluster()), plan_(std::move(plan)),
      options_(options), store_(store), transport_(transport),
      rng_(plan_.seed()) {}

void FaultInjector::arm(sim::Time horizon_us) {
  if (armed_) throw std::logic_error("FaultInjector::arm called twice");
  if (transport_ == nullptr && plan_.has_net_events()) {
    throw std::logic_error(
        "FaultInjector::arm: plan has net events but no transport attached");
  }
  if (!churn_sink_ && plan_.has_churn_events()) {
    throw std::logic_error(
        "FaultInjector::arm: plan has filter-churn events but no churn sink "
        "attached (set_churn_sink)");
  }
  armed_ = true;
  auto& engine = cluster_->engine();
  const sim::Time start = engine.now();

  for (const FaultEvent& event : plan_.sorted_events()) {
    engine.schedule_at(start + event.at_us,
                       [this, event] { execute(event); });
  }

  // Membership anti-entropy: a finite train of gossip ticks, so the failure
  // detector's view lags reality by the suspicion window instead of being
  // oracle-fresh — and the event queue still drains at the horizon.
  if (cluster_->membership() != nullptr &&
      options_.gossip_rounds_per_tick > 0 && options_.gossip_tick_us > 0) {
    for (sim::Time t = options_.gossip_tick_us; t <= horizon_us;
         t += options_.gossip_tick_us) {
      engine.schedule_at(start + t, [this] {
        if (auto* m = cluster_->membership()) {
          m->run_rounds(options_.gossip_rounds_per_tick);
        }
      });
    }
  }
}

void FaultInjector::execute(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEvent::Kind::kFail:
      on_fail(event.node);
      break;
    case FaultEvent::Kind::kRecover:
      on_recover(event.node);
      break;
    case FaultEvent::Kind::kFailFraction: {
      // Same exact-count selection rule as Cluster::fail_fraction, but
      // routed through on_fail so each victim feeds the repair queue.
      auto live = cluster_->live_nodes();
      const auto target = std::min<std::size_t>(
          live.size(),
          static_cast<std::size_t>(std::ceil(
              event.fraction * static_cast<double>(live.size()))));
      for (std::size_t k = 0; k < target; ++k) {
        const auto pick = k + common::uniform_below(rng_, live.size() - k);
        std::swap(live[k], live[pick]);
        on_fail(live[k]);
      }
      break;
    }
    case FaultEvent::Kind::kAddNode:
      on_add_node();
      break;
    case FaultEvent::Kind::kSetLoss:
    case FaultEvent::Kind::kPartition:
    case FaultEvent::Kind::kHeal:
      on_net_event(event);
      break;
    case FaultEvent::Kind::kFilterChurn:
      churn_sink_(event.count);
      ++timeline_.churn_events;
      timeline_.churn_ops += event.count;
      break;
  }
}

void FaultInjector::on_net_event(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEvent::Kind::kSetLoss: {
      net::LinkModel link = transport_->link();
      link.loss = event.fraction;
      transport_->set_link(link);
      ++timeline_.loss_changes;
      break;
    }
    case FaultEvent::Kind::kPartition:
      transport_->partitions().add(event.label, event.side_a, event.side_b,
                                   event.bidirectional);
      ++timeline_.partitions_started;
      break;
    case FaultEvent::Kind::kHeal:
      if (transport_->partitions().heal(event.label)) {
        ++timeline_.partitions_healed;
      }
      break;
    default:
      break;
  }
}

void FaultInjector::on_fail(NodeId node) {
  if (node.value >= cluster_->size() || !cluster_->alive(node)) return;
  cluster_->fail_node(node);
  const sim::Time now = cluster_->engine().now();
  if (timeline_.failures == 0) timeline_.first_failure_us = now;
  ++timeline_.failures;
  down_since_[node.value] = now;
  if (store_ != nullptr) {
    // The failure detector saw this holder die: evacuate any hints it was
    // parking to the next live stand-in so they survive the holder's death
    // instead of being stranded until it recovers.
    timeline_.hints_reparked += store_->repark_hints(node);
  }
  enqueue_repair(node);
}

void FaultInjector::on_recover(NodeId node) {
  if (node.value >= cluster_->size() || cluster_->alive(node)) return;
  cluster_->revive_node(node);
  const sim::Time now = cluster_->engine().now();
  ++timeline_.recoveries;
  timeline_.last_recovery_us = now;
  if (auto it = down_since_.find(node.value); it != down_since_.end()) {
    timeline_.total_downtime_us += now - it->second;
    down_since_.erase(it);
  }
  if (store_ != nullptr) {
    // The drain is an RPC to the recovered node; on a lossy transport it
    // can arrive late (or, after all resends, not at all).
    send_control(node,
                 [this, node] {
                   timeline_.hints_drained += store_->drain_hints(node);
                 },
                 options_.control_resends);
  }
}

void FaultInjector::send_control(NodeId dst, std::function<void()> apply,
                                 std::size_t resends_left) {
  if (transport_ == nullptr || transport_->pass_through()) {
    apply();
    return;
  }
  ++timeline_.control_rpcs;
  transport_->send(
      net::kClientNode, dst, options_.control_transfer_us,
      net::Priority::kHigh, [apply](sim::Time) { apply(); },
      [this, dst, apply, resends_left](net::SendOutcome) {
        if (resends_left == 0) {
          ++timeline_.control_dropped;
          return;
        }
        // Re-send after a pause (never inline: a breaker fast-fail would
        // otherwise loop at the same virtual instant).
        cluster_->engine().schedule_after(
            options_.control_retry_us, [this, dst, apply, resends_left] {
              send_control(dst, apply, resends_left - 1);
            });
      });
}

void FaultInjector::on_add_node() {
  const NodeId joined = cluster_->add_node();
  ++timeline_.joins;
  // The joiner homes a slice of the term space now: migrate those entries
  // through the repair pipeline instead of a full rebuild, and re-spread the
  // store's keys under the grown ring.
  enqueue_repair(joined);
  if (store_ != nullptr) store_->rebalance();
}

void FaultInjector::enqueue_repair(NodeId node) {
  if (!options_.enable_repair) return;
  for (core::RepairEntry e : scheme_->collect_repair_entries(node)) {
    repair_queue_.push_back(e);
  }
  if (!repair_queue_.empty()) schedule_repair_pump();
}

void FaultInjector::schedule_repair_pump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  cluster_->engine().schedule_after(options_.repair_interval_us,
                                    [this] { pump_repair(); });
}

void FaultInjector::pump_repair() {
  pump_scheduled_ = false;
  if (repair_queue_.empty()) return;
  const std::size_t batch_limit = options_.repair_batch != 0
                                      ? options_.repair_batch
                                      : plan_.migration_batch();
  const std::size_t n = std::min(batch_limit, repair_queue_.size());
  std::vector<core::RepairEntry> batch(repair_queue_.begin(),
                                       repair_queue_.begin() +
                                           static_cast<std::ptrdiff_t>(n));
  repair_queue_.erase(repair_queue_.begin(),
                      repair_queue_.begin() + static_cast<std::ptrdiff_t>(n));
  // The batch apply is an RPC to the repair coordinator (the lowest-id live
  // node, matching the routing convention); on a lossy transport it rides
  // the reliability layer like everything else.
  NodeId coordinator{0};
  bool found = false;
  for (std::uint32_t i = 0; i < cluster_->size(); ++i) {
    if (cluster_->alive(NodeId{i})) {
      coordinator = NodeId{i};
      found = true;
      break;
    }
  }
  auto apply = [this, batch = std::move(batch), n] {
    scheme_->apply_repair_entries(batch);
    ++timeline_.repair_batches;
    timeline_.repair_entries_applied += n;
  };
  if (found) {
    send_control(coordinator, std::move(apply), options_.control_resends);
  } else {
    apply();  // whole cluster down: degenerate, apply in place
  }
  if (!repair_queue_.empty()) schedule_repair_pump();
}

}  // namespace move::fault
