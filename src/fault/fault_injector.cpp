#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace move::fault {

FaultInjector::FaultInjector(core::Scheme& scheme, FaultPlan plan,
                             FaultInjectorOptions options,
                             kv::KeyValueStore* store)
    : scheme_(&scheme), cluster_(&scheme.cluster()), plan_(std::move(plan)),
      options_(options), store_(store), rng_(plan_.seed()) {}

void FaultInjector::arm(sim::Time horizon_us) {
  if (armed_) throw std::logic_error("FaultInjector::arm called twice");
  armed_ = true;
  auto& engine = cluster_->engine();
  const sim::Time start = engine.now();

  for (const FaultEvent& event : plan_.sorted_events()) {
    engine.schedule_at(start + event.at_us,
                       [this, event] { execute(event); });
  }

  // Membership anti-entropy: a finite train of gossip ticks, so the failure
  // detector's view lags reality by the suspicion window instead of being
  // oracle-fresh — and the event queue still drains at the horizon.
  if (cluster_->membership() != nullptr &&
      options_.gossip_rounds_per_tick > 0 && options_.gossip_tick_us > 0) {
    for (sim::Time t = options_.gossip_tick_us; t <= horizon_us;
         t += options_.gossip_tick_us) {
      engine.schedule_at(start + t, [this] {
        if (auto* m = cluster_->membership()) {
          m->run_rounds(options_.gossip_rounds_per_tick);
        }
      });
    }
  }
}

void FaultInjector::execute(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEvent::Kind::kFail:
      on_fail(event.node);
      break;
    case FaultEvent::Kind::kRecover:
      on_recover(event.node);
      break;
    case FaultEvent::Kind::kFailFraction: {
      // Same exact-count selection rule as Cluster::fail_fraction, but
      // routed through on_fail so each victim feeds the repair queue.
      auto live = cluster_->live_nodes();
      const auto target = std::min<std::size_t>(
          live.size(),
          static_cast<std::size_t>(std::ceil(
              event.fraction * static_cast<double>(live.size()))));
      for (std::size_t k = 0; k < target; ++k) {
        const auto pick = k + common::uniform_below(rng_, live.size() - k);
        std::swap(live[k], live[pick]);
        on_fail(live[k]);
      }
      break;
    }
    case FaultEvent::Kind::kAddNode:
      on_add_node();
      break;
  }
}

void FaultInjector::on_fail(NodeId node) {
  if (node.value >= cluster_->size() || !cluster_->alive(node)) return;
  cluster_->fail_node(node);
  const sim::Time now = cluster_->engine().now();
  if (timeline_.failures == 0) timeline_.first_failure_us = now;
  ++timeline_.failures;
  down_since_[node.value] = now;
  enqueue_repair(node);
}

void FaultInjector::on_recover(NodeId node) {
  if (node.value >= cluster_->size() || cluster_->alive(node)) return;
  cluster_->revive_node(node);
  const sim::Time now = cluster_->engine().now();
  ++timeline_.recoveries;
  timeline_.last_recovery_us = now;
  if (auto it = down_since_.find(node.value); it != down_since_.end()) {
    timeline_.total_downtime_us += now - it->second;
    down_since_.erase(it);
  }
  if (store_ != nullptr) {
    timeline_.hints_drained += store_->drain_hints(node);
  }
}

void FaultInjector::on_add_node() {
  const NodeId joined = cluster_->add_node();
  ++timeline_.joins;
  // The joiner homes a slice of the term space now: migrate those entries
  // through the repair pipeline instead of a full rebuild, and re-spread the
  // store's keys under the grown ring.
  enqueue_repair(joined);
  if (store_ != nullptr) store_->rebalance();
}

void FaultInjector::enqueue_repair(NodeId node) {
  if (!options_.enable_repair) return;
  for (core::RepairEntry e : scheme_->collect_repair_entries(node)) {
    repair_queue_.push_back(e);
  }
  if (!repair_queue_.empty()) schedule_repair_pump();
}

void FaultInjector::schedule_repair_pump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  cluster_->engine().schedule_after(options_.repair_interval_us,
                                    [this] { pump_repair(); });
}

void FaultInjector::pump_repair() {
  pump_scheduled_ = false;
  if (repair_queue_.empty()) return;
  const std::size_t n =
      std::min(options_.repair_batch, repair_queue_.size());
  std::vector<core::RepairEntry> batch(repair_queue_.begin(),
                                       repair_queue_.begin() +
                                           static_cast<std::ptrdiff_t>(n));
  repair_queue_.erase(repair_queue_.begin(),
                      repair_queue_.begin() + static_cast<std::ptrdiff_t>(n));
  scheme_->apply_repair_entries(batch);
  ++timeline_.repair_batches;
  timeline_.repair_entries_applied += n;
  if (!repair_queue_.empty()) schedule_repair_pump();
}

}  // namespace move::fault
