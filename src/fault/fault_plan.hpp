#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/event_engine.hpp"

/// Scripted fault timelines — the deterministic input to the fault-injection
/// subsystem. A FaultPlan is a seeded list of membership events placed on
/// the virtual clock; the FaultInjector schedules them onto the cluster's
/// event engine so failures land *during* a dissemination run, not between
/// runs. Same seed + same plan => bit-identical execution.
namespace move::fault {

/// The one batch-sizing knob every bulk registration move shares: the
/// kAddNode join migration pumped by the FaultInjector and the adapt
/// layer's live re-allocation planner both move entries in batches of this
/// many by default, so the two paths cannot silently drift apart (see
/// DESIGN.md "Online adaptation"). Override per plan via
/// FaultPlan::migration_batch(), per injector via
/// FaultInjectorOptions::repair_batch, or per planner via
/// adapt::MigrationOptions::batch_entries.
inline constexpr std::size_t kDefaultMigrationBatch = 512;

struct FaultEvent {
  enum class Kind {
    kFail,          ///< crash one node (data kept)
    kRecover,       ///< revive one crashed node
    kFailFraction,  ///< crash ceil(fraction * live) distinct live nodes
    kAddNode,       ///< join a fresh node (triggers incremental migration)
    kSetLoss,       ///< change the transport's link loss probability
    kPartition,     ///< start a named partition between two node sets
    kHeal,          ///< end a previously started named partition
    kFilterChurn,   ///< apply `count` filter register/unregister/edit ops
  };

  sim::Time at_us = 0;      ///< relative to the run's start
  Kind kind = Kind::kFail;
  NodeId node{0};           ///< kFail / kRecover target
  double fraction = 0.0;    ///< kFailFraction fraction / kSetLoss probability
  std::uint32_t count = 0;  ///< kFilterChurn: churn ops to apply

  // --- net events only (kPartition / kHeal) --------------------------------
  std::string label;            ///< partition name (heal targets it)
  std::vector<NodeId> side_a;   ///< kPartition: one side of the cut
  std::vector<NodeId> side_b;   ///< kPartition: the other side
  bool bidirectional = true;    ///< false: only a->b traffic is cut
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0xfa177e57ULL) : seed_(seed) {}

  FaultPlan& fail(NodeId node, sim::Time at_us);
  FaultPlan& recover(NodeId node, sim::Time at_us);
  FaultPlan& fail_fraction(double fraction, sim::Time at_us);
  FaultPlan& add_node(sim::Time at_us);

  // --- net events (require a transport attached to the injector) -----------

  /// Sets the transport's uniform link-loss probability at `at_us`.
  FaultPlan& set_loss(double loss, sim::Time at_us);
  /// Starts a named partition cutting traffic between the two sides
  /// (both directions unless `bidirectional` is false, in which case only
  /// side_a -> side_b messages are cut — asymmetric, e.g. acks still pass).
  FaultPlan& partition(std::string name, std::vector<NodeId> side_a,
                       std::vector<NodeId> side_b, sim::Time at_us,
                       bool bidirectional = true);
  /// Heals the named partition (no-op if it never started or already healed).
  FaultPlan& heal(std::string name, sim::Time at_us);

  /// Applies `ops` filter-churn operations at `at_us`, pumped through the
  /// injector's churn sink (see FaultInjector::set_churn_sink) — typically
  /// a workload::FilterChurnStream feeding an index::ChurnHarness, driving
  /// register/unregister/edit cycles (and their thaw/re-finalize churn)
  /// mid-run. Plans with churn events require a sink at arm() time.
  FaultPlan& filter_churn(std::uint32_t ops, sim::Time at_us);

  /// Overrides the shared migration/repair batch size for everything
  /// executing this plan (defaults to kDefaultMigrationBatch).
  FaultPlan& migration_batch(std::size_t entries);
  [[nodiscard]] std::size_t migration_batch() const noexcept {
    return migration_batch_;
  }

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  /// True when the plan contains transport-level events (loss / partition /
  /// heal) — runners use this to decide whether control-plane traffic must
  /// be routed through the transport.
  [[nodiscard]] bool has_net_events() const noexcept;
  /// True when the plan contains kFilterChurn events — runners use this to
  /// decide whether a churn sink must be attached before arm().
  [[nodiscard]] bool has_churn_events() const noexcept;
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Events ordered by time; ties keep insertion order (stable), so the
  /// script's textual order is the tiebreak rule.
  [[nodiscard]] std::vector<FaultEvent> sorted_events() const;

  /// Latest event time (0 for an empty plan).
  [[nodiscard]] sim::Time horizon_us() const noexcept;

  /// Deterministic random churn: `faults` fail/recover cycles on distinct
  /// nodes (at most half the cluster, so the bounded failover walk always
  /// finds a live successor). Failures land in [0.1, 0.55] * horizon; each
  /// node recovers after roughly `mean_downtime_us` (x0.5..x1.5), capped at
  /// 0.9 * horizon. Fully reproducible from `seed`.
  static FaultPlan random_churn(std::uint64_t seed, std::size_t cluster_size,
                                sim::Time horizon_us, std::size_t faults,
                                double mean_downtime_us);

 private:
  std::uint64_t seed_;
  std::vector<FaultEvent> events_;
  std::size_t migration_batch_ = kDefaultMigrationBatch;
};

}  // namespace move::fault
