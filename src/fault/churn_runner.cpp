#include "fault/churn_runner.hpp"

#include <algorithm>
#include <memory>
#include <string>

namespace move::fault {

namespace {

/// Per-run completion bookkeeping (mirrors the driver in core/experiment).
struct ChurnState {
  std::vector<std::uint32_t> outstanding;
  std::vector<double> publish_time_us;
  sim::RunMetrics metrics;
  sim::Time start_us = 0;
  sim::Time last_completion_us = 0;
  bool collect_latencies = false;
  kv::KeyValueStore* registry = nullptr;

  void complete_doc(std::size_t doc, sim::Time at) {
    ++metrics.documents_completed;
    last_completion_us = std::max(last_completion_us, at);
    if (collect_latencies) {
      metrics.latencies_us.push_back(at - publish_time_us[doc]);
    }
    if (registry != nullptr) {
      // The delivery registry is the kv substrate under churn: writes for
      // dead owners park as hints and drain when the owner recovers.
      registry->put("doc/" + std::to_string(doc), "1");
    }
  }

  void complete_hop(std::size_t doc, sim::Time at) {
    if (--outstanding[doc] == 0) complete_doc(doc, at);
  }
};

std::uint32_t count_hops(const std::vector<core::Hop>& hops) {
  std::uint32_t n = 0;
  for (const core::Hop& h : hops) n += 1 + count_hops(h.then);
  return n;
}

void schedule_hop(cluster::Cluster& c, net::Transport& net, ChurnState& state,
                  std::size_t doc, NodeId src, const core::Hop& hop) {
  // The hop's transfer is a transport send: on a pass-through link this is
  // exactly one engine event (bit-identical to scheduling directly); on a
  // lossy link the reliability layer retries it, and an expired/shed hop
  // simply never serves — its document stays incomplete.
  net.send(src, hop.node, hop.transfer_us, net::Priority::kNormal,
           [&c, &net, &state, doc, hop](sim::Time) {
    c.server(hop.node).submit(hop.service_us,
                              [&c, &net, &state, doc, hop](sim::Time done) {
      for (const core::Hop& child : hop.then) {
        schedule_hop(c, net, state, doc, hop.node, child);
      }
      state.complete_hop(doc, done);
    });
  });
}

}  // namespace

ChurnResult run_churn(core::Scheme& scheme,
                      const workload::TermSetTable& docs,
                      const FaultPlan& plan, const ChurnConfig& config) {
  auto& c = scheme.cluster();
  c.reset_servers();

  ChurnResult result;

  // Optional gossip-backed routing view (detached again before returning).
  kv::GossipMembership membership(config.gossip);
  if (config.attach_membership) c.attach_membership(&membership);

  // Delivery registry over the cluster's own ring/liveness.
  std::unique_ptr<kv::KeyValueStore> registry;
  if (config.registry_replicas > 0) {
    registry = std::make_unique<kv::KeyValueStore>(
        c.ring(), config.registry_replicas,
        [&c](NodeId n) { return n.value < c.size() && c.alive(n); });
    registry->attach_fault_accounting(&c.fault_acc());
  }

  // The message layer every publish hop (and, when lossy, every control
  // RPC) rides. Seed 0 derives the net stream from the plan seed so one
  // seed reproduces the whole run.
  net::NetOptions net_options = config.net;
  if (net_options.seed == 0) net_options.seed = plan.seed();
  net::Transport transport(c.engine(), net_options);
  transport.set_queue_depth_fn([&c](NodeId n) -> std::size_t {
    if (n.value >= c.size()) return 0;
    return c.server(n).queue_depth(c.engine().now());
  });
  // Tripped breakers look dead to routing, so publishes fail over away from
  // unresponsive destinations just as they do from crashed ones.
  c.set_routing_veto(
      [&transport](NodeId n) { return transport.breaker_open(n); });

  FaultInjector injector(scheme, plan, config.injector, registry.get(),
                         &transport);

  index::MatchAccounting acc_before;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    acc_before += c.node(NodeId{n}).accounting_totals();
  }
  const sim::FaultAccounting fault_before = c.fault_acc();

  auto state = std::make_unique<ChurnState>();
  state->collect_latencies = config.collect_latencies;
  state->registry = registry.get();
  state->outstanding.assign(docs.size(), 0);
  state->publish_time_us.assign(docs.size(), 0.0);
  state->start_us = c.engine().now();
  state->last_completion_us = state->start_us;
  state->metrics.documents_published = docs.size();

  const double gap_us = config.inject_rate_per_sec > 0.0
                            ? 1'000'000.0 / config.inject_rate_per_sec
                            : 0.0;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const sim::Time inject_at =
        state->start_us + gap_us * static_cast<double>(i);
    c.engine().schedule_at(inject_at, [&scheme, &c, &transport,
                                       &state_ref = *state, i, &docs] {
      auto publish_plan = scheme.plan_publish(docs.row(i));
      state_ref.publish_time_us[i] = c.engine().now();
      state_ref.metrics.notifications += publish_plan.matches.size();
      const std::uint32_t hops = count_hops(publish_plan.hops);
      if (hops == 0) {
        // Nothing to serve (no subscribed terms or all routes failed): the
        // document still completes, instantly.
        state_ref.complete_doc(i, c.engine().now());
        return;
      }
      state_ref.outstanding[i] = hops;
      // First-level hops depart from the coordinator the publisher proxies
      // through — the lowest-id live node, the same convention routing's
      // membership view uses. (Irrelevant on a pass-through link; under a
      // partition it puts the publisher on one side of the cut.)
      NodeId publisher = net::kClientNode;
      for (std::uint32_t n = 0; n < c.size(); ++n) {
        if (c.alive(NodeId{n})) {
          publisher = NodeId{n};
          break;
        }
      }
      for (const core::Hop& hop : publish_plan.hops) {
        schedule_hop(c, transport, state_ref, i, publisher, hop);
      }
    });
  }

  const sim::Time inject_span =
      gap_us * static_cast<double>(docs.empty() ? 0 : docs.size() - 1);
  const sim::Time horizon =
      std::max(plan.horizon_us(), inject_span) + config.sample_interval_us;
  injector.arm(horizon);

  // Sampled execution: advance the clock one bucket at a time, snapshot the
  // timeline between buckets, then drain whatever is left.
  std::uint64_t completed_at_last_sample = 0;
  const double dt_sec = config.sample_interval_us / 1'000'000.0;
  double availability_weighted = 0.0;
  sim::Time sampled_span = 0.0;
  for (sim::Time t = config.sample_interval_us; t <= horizon;
       t += config.sample_interval_us) {
    c.engine().run_until(state->start_us + t);
    ChurnSample s;
    s.t_us = t;
    const std::uint64_t completed = state->metrics.documents_completed;
    s.throughput_per_sec =
        static_cast<double>(completed - completed_at_last_sample) / dt_sec;
    completed_at_last_sample = completed;
    s.availability = scheme.filter_availability();
    s.live_nodes = c.live_count();
    s.handoff_queue_depth =
        registry != nullptr ? registry->handoff_queue_depth() : 0;
    s.repair_backlog = injector.repair_backlog();
    s.fault = c.fault_acc().delta_since(fault_before);
    s.net = transport.accounting();
    result.min_availability = std::min(result.min_availability,
                                       s.availability);
    availability_weighted += s.availability * config.sample_interval_us;
    sampled_span += config.sample_interval_us;
    if (s.availability < 1.0) {
      result.unavailable_us += config.sample_interval_us;
    }
    result.samples.push_back(s);
  }
  c.engine().run();  // drain stragglers past the horizon
  if (sampled_span > 0) {
    result.mean_availability = availability_weighted / sampled_span;
  }

  auto& m = state->metrics;
  m.makespan_us = state->last_completion_us - state->start_us;
  m.node_busy_us.resize(c.size());
  m.node_docs.resize(c.size());
  m.node_queue_wait_us.resize(c.size());
  m.node_max_queue_depth.resize(c.size());
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    const auto& server = c.server(NodeId{n});
    m.node_busy_us[n] = server.busy_us();
    m.node_docs[n] = server.jobs_served();
    m.node_queue_wait_us[n] = server.queue_wait_us();
    m.node_max_queue_depth[n] = server.max_queue_depth();
  }
  m.node_storage = scheme.storage_per_node();
  index::MatchAccounting acc_after;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    acc_after += c.node(NodeId{n}).accounting_totals();
  }
  m.match_acc.lists_retrieved =
      acc_after.lists_retrieved - acc_before.lists_retrieved;
  m.match_acc.postings_scanned =
      acc_after.postings_scanned - acc_before.postings_scanned;
  m.match_acc.candidates_verified =
      acc_after.candidates_verified - acc_before.candidates_verified;
  m.match_acc.bloom_rejects = acc_after.bloom_rejects - acc_before.bloom_rejects;
  m.match_acc.postings_skipped =
      acc_after.postings_skipped - acc_before.postings_skipped;
  m.fault_acc = c.fault_acc().delta_since(fault_before);
  m.net_acc = transport.accounting();  // fresh transport: totals == delta

  result.timeline = injector.timeline();
  if (registry != nullptr) {
    result.registry_hints_parked = m.fault_acc.hints_parked;
    result.registry_hints_drained = m.fault_acc.hints_drained;
    std::size_t readable = 0;
    for (std::size_t i = 0; i < docs.size(); ++i) {
      readable += registry->contains("doc/" + std::to_string(i));
    }
    result.registry_readable = readable;
  }

  if (config.attach_membership) c.attach_membership(nullptr);
  c.set_routing_veto(nullptr);  // the transport dies with this frame
  c.revive_all();
  result.metrics = std::move(m);
  return result;
}

}  // namespace move::fault
