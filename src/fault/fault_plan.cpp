#include "fault/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace move::fault {

FaultPlan& FaultPlan::fail(NodeId node, sim::Time at_us) {
  events_.push_back(
      FaultEvent{at_us, FaultEvent::Kind::kFail, node, 0.0});
  return *this;
}

FaultPlan& FaultPlan::recover(NodeId node, sim::Time at_us) {
  events_.push_back(
      FaultEvent{at_us, FaultEvent::Kind::kRecover, node, 0.0});
  return *this;
}

FaultPlan& FaultPlan::fail_fraction(double fraction, sim::Time at_us) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("FaultPlan::fail_fraction: bad fraction");
  }
  events_.push_back(
      FaultEvent{at_us, FaultEvent::Kind::kFailFraction, NodeId{0}, fraction});
  return *this;
}

FaultPlan& FaultPlan::add_node(sim::Time at_us) {
  events_.push_back(
      FaultEvent{at_us, FaultEvent::Kind::kAddNode, NodeId{0}, 0.0});
  return *this;
}

FaultPlan& FaultPlan::set_loss(double loss, sim::Time at_us) {
  if (loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument("FaultPlan::set_loss: bad probability");
  }
  events_.push_back(
      FaultEvent{at_us, FaultEvent::Kind::kSetLoss, NodeId{0}, loss});
  return *this;
}

FaultPlan& FaultPlan::partition(std::string name, std::vector<NodeId> side_a,
                                std::vector<NodeId> side_b, sim::Time at_us,
                                bool bidirectional) {
  FaultEvent e{at_us, FaultEvent::Kind::kPartition, NodeId{0}, 0.0};
  e.label = std::move(name);
  e.side_a = std::move(side_a);
  e.side_b = std::move(side_b);
  e.bidirectional = bidirectional;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::heal(std::string name, sim::Time at_us) {
  FaultEvent e{at_us, FaultEvent::Kind::kHeal, NodeId{0}, 0.0};
  e.label = std::move(name);
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::filter_churn(std::uint32_t ops, sim::Time at_us) {
  if (ops == 0) {
    throw std::invalid_argument("FaultPlan::filter_churn: zero ops");
  }
  FaultEvent e{at_us, FaultEvent::Kind::kFilterChurn, NodeId{0}, 0.0};
  e.count = ops;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::migration_batch(std::size_t entries) {
  migration_batch_ = entries == 0 ? kDefaultMigrationBatch : entries;
  return *this;
}

bool FaultPlan::has_net_events() const noexcept {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultEvent::Kind::kSetLoss ||
        e.kind == FaultEvent::Kind::kPartition ||
        e.kind == FaultEvent::Kind::kHeal) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::has_churn_events() const noexcept {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultEvent::Kind::kFilterChurn) return true;
  }
  return false;
}

std::vector<FaultEvent> FaultPlan::sorted_events() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_us < b.at_us;
                   });
  return out;
}

sim::Time FaultPlan::horizon_us() const noexcept {
  sim::Time h = 0;
  for (const FaultEvent& e : events_) h = std::max(h, e.at_us);
  return h;
}

FaultPlan FaultPlan::random_churn(std::uint64_t seed,
                                  std::size_t cluster_size,
                                  sim::Time horizon_us, std::size_t faults,
                                  double mean_downtime_us) {
  FaultPlan plan(seed);
  if (cluster_size < 2 || horizon_us <= 0.0) return plan;
  common::SplitMix64 rng(seed);

  // Distinct victims, at most half the cluster: the routing failover's
  // bounded successor walk then always finds a live node.
  const std::size_t max_faults = std::max<std::size_t>(1, cluster_size / 2);
  const std::size_t count = std::min(faults, max_faults);
  std::vector<std::uint32_t> ids(cluster_size);
  for (std::size_t i = 0; i < cluster_size; ++i) {
    ids[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t k = 0; k < count; ++k) {
    const auto pick = k + common::uniform_below(rng, ids.size() - k);
    std::swap(ids[k], ids[pick]);
  }

  for (std::size_t k = 0; k < count; ++k) {
    const double t_fail =
        horizon_us * (0.1 + 0.45 * common::uniform_unit(rng));
    const double downtime =
        mean_downtime_us * (0.5 + common::uniform_unit(rng));
    const double t_recover = std::min(t_fail + downtime, horizon_us * 0.9);
    plan.fail(NodeId{ids[k]}, t_fail);
    plan.recover(NodeId{ids[k]}, t_recover);
  }
  return plan;
}

}  // namespace move::fault
