#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/scheme.hpp"
#include "fault/fault_plan.hpp"
#include "kv/kv_store.hpp"
#include "net/transport.hpp"

/// Executes a FaultPlan through the cluster's event engine, wiring the
/// recovery machinery end-to-end:
///  * fail events crash nodes (liveness + gossip heartbeat) and, when repair
///    is enabled, enqueue the lost registration entries;
///  * a repair pump re-applies queued entries in bounded batches on a fixed
///    virtual-time cadence — incremental re-replication, never a full
///    rebuild();
///  * recover events revive nodes and drain the KeyValueStore's hinted
///    handoff queues toward them;
///  * add events join a fresh node and enqueue the entries it now homes
///    (incremental migration through the same repair pipeline).
/// Everything runs on the virtual clock from explicit seeds, so a plan
/// replays bit-identically.
namespace move::fault {

struct FaultInjectorOptions {
  bool enable_repair = true;
  /// Entries re-applied per repair pump invocation. 0 (the default) defers
  /// to the plan's shared migration_batch knob — kDefaultMigrationBatch
  /// unless the plan overrides it — so join migration and the adapt
  /// layer's live re-allocation stay sized by one constant.
  std::size_t repair_batch = 0;
  /// Virtual-time cadence of the repair pump.
  sim::Time repair_interval_us = 10'000.0;
  /// Gossip rounds run per membership tick; 0 disables the ticks even when
  /// the cluster has a membership attached.
  std::size_t gossip_rounds_per_tick = 1;
  sim::Time gossip_tick_us = 5'000.0;

  /// Control-plane RPC shape when a *lossy* transport is attached: repair
  /// batches and recovery hint-drains then ride the transport as kHigh
  /// messages (client -> coordinator/target) instead of executing
  /// synchronously. Each RPC that terminally fails is re-sent after
  /// `control_retry_us`, up to `control_resends` times, then dropped.
  /// With a pass-through (or absent) transport these are unused and the
  /// control plane stays synchronous — bit-identical to the pre-net layer.
  double control_transfer_us = 120.0;
  sim::Time control_retry_us = 10'000.0;
  std::size_t control_resends = 6;
};

/// What the injector observed while executing the plan.
struct FaultTimeline {
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t joins = 0;
  double total_downtime_us = 0.0;  ///< summed over nodes (recovered only)
  sim::Time first_failure_us = 0;
  sim::Time last_recovery_us = 0;
  std::uint64_t repair_batches = 0;
  std::uint64_t repair_entries_applied = 0;  ///< entries offered to repair
  std::uint64_t hints_drained = 0;           ///< via the attached store
  std::uint64_t hints_reparked = 0;   ///< hints moved off a dying holder
  std::uint64_t loss_changes = 0;     ///< kSetLoss events executed
  std::uint64_t partitions_started = 0;
  std::uint64_t partitions_healed = 0;
  std::uint64_t control_rpcs = 0;     ///< control ops sent via the transport
  std::uint64_t control_dropped = 0;  ///< control ops lost after all resends
  std::uint64_t churn_events = 0;     ///< kFilterChurn events executed
  std::uint64_t churn_ops = 0;        ///< churn ops pumped through the sink
};

class FaultInjector {
 public:
  /// `store` (optional) is the hinted-handoff KV store to drain on node
  /// recovery; it must outlive the injector. The scheme's cluster supplies
  /// the engine, liveness, and (optionally) the gossip membership.
  /// `transport` (optional) is the message layer the plan's net events
  /// (kSetLoss / kPartition / kHeal) act on; net events in a plan without a
  /// transport attached throw at arm() time.
  FaultInjector(core::Scheme& scheme, FaultPlan plan,
                FaultInjectorOptions options = {},
                kv::KeyValueStore* store = nullptr,
                net::Transport* transport = nullptr);

  /// Schedules every plan event (relative to engine now) plus — when the
  /// cluster has a membership and gossip ticks are enabled — a finite train
  /// of gossip ticks up to `horizon_us`, so the event queue still drains.
  /// Call once, before running the engine.
  void arm(sim::Time horizon_us);

  /// Attaches the consumer of kFilterChurn events: `sink(n)` must apply n
  /// churn ops (typically by pulling a FilterChurnStream and applying each
  /// op to a ChurnHarness or live scheme). Plans containing churn events
  /// throw at arm() time if no sink is attached — same contract as net
  /// events without a transport.
  void set_churn_sink(std::function<void(std::uint32_t)> sink) {
    churn_sink_ = std::move(sink);
  }

  [[nodiscard]] const FaultTimeline& timeline() const noexcept {
    return timeline_;
  }
  /// Repair entries collected but not yet re-applied.
  [[nodiscard]] std::size_t repair_backlog() const noexcept {
    return repair_queue_.size();
  }

 private:
  void execute(const FaultEvent& event);
  void on_fail(NodeId node);
  void on_recover(NodeId node);
  void on_add_node();
  void on_net_event(const FaultEvent& event);
  /// Runs `apply` at `dst` — synchronously without a lossy transport, as a
  /// kHigh transport RPC (with bounded resends) otherwise.
  void send_control(NodeId dst, std::function<void()> apply,
                    std::size_t resends_left);
  void enqueue_repair(NodeId node);
  void schedule_repair_pump();
  void pump_repair();

  core::Scheme* scheme_;
  cluster::Cluster* cluster_;
  FaultPlan plan_;
  FaultInjectorOptions options_;
  kv::KeyValueStore* store_;
  net::Transport* transport_;
  std::function<void(std::uint32_t)> churn_sink_;
  common::SplitMix64 rng_;
  FaultTimeline timeline_;
  std::deque<core::RepairEntry> repair_queue_;
  bool pump_scheduled_ = false;
  bool armed_ = false;
  std::unordered_map<std::uint32_t, sim::Time> down_since_;
};

}  // namespace move::fault
