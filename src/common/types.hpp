#pragma once

#include <cstdint>
#include <functional>

/// Strongly-typed identifiers shared by every MOVE module.
///
/// All identifiers are dense 32-bit indices minted by the owning component
/// (Vocabulary mints TermId, a Scheme mints FilterId/DocId, the Cluster mints
/// NodeId). Using distinct wrapper types prevents the classic bug of passing a
/// filter id where a term id is expected; the wrappers are trivially copyable
/// and hash/compare like their underlying integer.
namespace move {

namespace detail {

/// CRTP-free tagged integer. `Tag` only differentiates the type.
template <typename Tag>
struct Id {
  std::uint32_t value = 0;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;
};

}  // namespace detail

struct TermTag {};
struct FilterTag {};
struct DocTag {};
struct NodeTag {};

/// A term (word) after preprocessing, interned by move::text::Vocabulary.
using TermId = detail::Id<TermTag>;
/// A registered keyword filter (a user profile / subscription).
using FilterId = detail::Id<FilterTag>;
/// A published content document.
using DocId = detail::Id<DocTag>;
/// A logical storage/matching node in the cluster.
using NodeId = detail::Id<NodeTag>;

}  // namespace move

namespace std {

template <typename Tag>
struct hash<move::detail::Id<Tag>> {
  size_t operator()(move::detail::Id<Tag> id) const noexcept {
    // SplitMix64 step: cheap and well-distributed for dense ids.
    std::uint64_t x = id.value;
    x += 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace std
