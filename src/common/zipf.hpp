#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

/// Zipf-distributed sampling.
///
/// Both published traces the paper relies on are heavily skewed: MSN query
/// term popularity (Fig. 4) and TREC document term frequency (Fig. 5) follow
/// power laws. The workload generators draw term ranks from this sampler.
namespace move::common {

/// Samples ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^s.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger (1996), which
/// is O(1) per draw regardless of n — essential for synthesizing corpora with
/// hundreds of thousands of distinct terms.
class ZipfSampler {
 public:
  /// @param n number of distinct ranks (must be >= 1)
  /// @param s skew exponent (s >= 0; s = 0 degenerates to uniform)
  ZipfSampler(std::uint64_t n, double s);

  /// Draws one rank in [0, n).
  [[nodiscard]] std::uint64_t operator()(SplitMix64& rng) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] double skew() const noexcept { return s_; }

  /// Exact probability mass of a rank (for tests and analytical expectations).
  [[nodiscard]] double pmf(std::uint64_t rank) const;

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_div_;  // shortcut used by the sampler
  double harmonic_;  // generalized harmonic number H_{n,s} for pmf()
};

/// Samples from an arbitrary discrete distribution in O(1) via Walker's alias
/// method. Used when a workload must match an *empirical* distribution (e.g.
/// the published 1/2/3-terms-per-query CDF) rather than a closed-form Zipf.
class AliasSampler {
 public:
  /// @param weights non-negative, not all zero.
  explicit AliasSampler(const std::vector<double>& weights);

  [[nodiscard]] std::uint64_t operator()(SplitMix64& rng) const;
  [[nodiscard]] std::uint64_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace move::common
