#pragma once

#include <cstdint>
#include <string_view>

/// Hashing primitives used for DHT key placement and Bloom filters.
///
/// Everything here is deterministic across platforms and process runs: the
/// ring position of a term and the bit pattern of a Bloom filter must not
/// depend on libstdc++'s seed-randomized std::hash.
namespace move::common {

/// 64-bit FNV-1a over an arbitrary byte string.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// 64-bit FNV-1a over an integer key (hashes its little-endian bytes).
[[nodiscard]] std::uint64_t fnv1a64(std::uint64_t key) noexcept;

/// SplitMix64 step — a fast bijective mixer. Good enough to decorrelate
/// dense ids before placing them on the ring. The pre-increment keeps small
/// keys (notably 0) away from their own fixed points.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Boost-style combination of two 64-bit hashes.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Derives the i-th hash of a double-hashing family h_i = h1 + i*h2
/// (Kirsch–Mitzenmacher); used by the Bloom filter.
[[nodiscard]] constexpr std::uint64_t double_hash(std::uint64_t h1,
                                                  std::uint64_t h2,
                                                  std::uint32_t i) noexcept {
  return h1 + static_cast<std::uint64_t>(i) * (h2 | 1ULL);
}

}  // namespace move::common
