#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// Fixed-size worker pool for real-parallel matching.
///
/// Deliberately minimal: submit() enqueues a task; wait_idle() blocks until
/// every submitted task finished. Exceptions escaping a task terminate (by
/// design — tasks here are noexcept-by-contract matching shards; a throwing
/// task is a bug, not a recoverable condition). Destruction drains the
/// queue first.
namespace move::common {

class ThreadPool {
 public:
  /// @param threads worker count; 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Enqueues a whole batch of tasks under ONE queue-lock acquisition and
  /// wakes every worker once — the batched-dispatch primitive: submitting N
  /// documents costs one lock round-trip instead of N. Thread-safe; `tasks`
  /// is consumed.
  void submit_bulk(std::vector<std::function<void()>> tasks);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::uint64_t tasks_completed() const;

  /// Index of the calling pool worker in [0, thread_count()), or
  /// `kNotAWorker` when called from a thread that is not a pool worker.
  /// Lets tasks address per-worker state (e.g. a per-thread MatchScratch)
  /// without locking. A thread owned by one pool keeps its index even while
  /// running tasks submitted to another pool, so per-worker state must be
  /// keyed by the pool whose workers execute the tasks.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);
  [[nodiscard]] static std::size_t current_worker_index() noexcept;

 private:
  void worker_loop(std::size_t index);

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace move::common
