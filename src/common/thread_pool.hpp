#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// Fixed-size worker pool for real-parallel matching.
///
/// Deliberately minimal: submit() enqueues a task; wait_idle() blocks until
/// every submitted task finished. Exceptions escaping a task terminate (by
/// design — tasks here are noexcept-by-contract matching shards; a throwing
/// task is a bug, not a recoverable condition). Destruction drains the
/// queue first.
namespace move::common {

class ThreadPool {
 public:
  /// @param threads worker count; 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::uint64_t tasks_completed() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace move::common
