#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

/// Portable SIMD kernel layer for the matching hot path.
///
/// One compile-time kernel set is selected from the target ISA — AVX2 on
/// x86-64, NEON on AArch64, plain C++ otherwise — and every vector routine
/// here ships a scalar twin that computes the *bit-identical* result. Which
/// twin runs is decided per call by `dispatch_scalar()`:
///
///  * compile time: a build without AVX2/NEON only contains the scalar
///    twins (zero dispatch overhead);
///  * run time: setting `MOVE_FORCE_SCALAR=1` in the environment (or calling
///    `set_force_scalar(true)` — the bench sweep's per-variant knob) routes
///    every call to the scalar twin even in a SIMD build.
///
/// The contract that makes the determinism gate (`check_determinism.sh
/// --simd-diff`) possible: **dispatch choice never changes results or
/// accounting** — all routines are pure integer math over sorted u32 data,
/// so scalar and vector paths agree bit-for-bit, and explicit prefetch
/// (issued only on the SIMD path) has no architectural effect at all.
///
/// All routines operate on raw `std::uint32_t` arrays. The tagged id types
/// (`TermId`, `FilterId`) are standard-layout wrappers around one u32, so
/// callers pass `&ids[0].value` (see `as_u32` in the call sites) — the
/// pointer addresses the member objects themselves, keeping the accesses
/// within the aliasing rules.
#if defined(__AVX2__)
#define MOVE_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON)
#define MOVE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace move::simd {

/// Kernel set baked into this binary (what the ISA allows, before the
/// runtime override): "avx2", "neon", or "scalar".
[[nodiscard]] constexpr const char* compiled_kernel() noexcept {
#if defined(MOVE_SIMD_AVX2)
  return "avx2";
#elif defined(MOVE_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

namespace detail {
inline std::atomic<bool>& force_scalar_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("MOVE_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }()};
  return flag;
}
}  // namespace detail

/// True when the scalar twins are forced (env MOVE_FORCE_SCALAR=1 at first
/// use, or the last set_force_scalar call).
[[nodiscard]] inline bool force_scalar() noexcept {
  return detail::force_scalar_flag().load(std::memory_order_relaxed);
}

/// Runtime dispatch override — the bench sweep flips this per variant and
/// tests use it to exercise both twins in one process.
inline void set_force_scalar(bool force) noexcept {
  detail::force_scalar_flag().store(force, std::memory_order_relaxed);
}

/// Kernel set in effect for the next dispatched call.
[[nodiscard]] inline const char* active_kernel() noexcept {
  return force_scalar() ? "scalar" : compiled_kernel();
}

/// True when a call should take the scalar twin.
[[nodiscard]] inline bool dispatch_scalar() noexcept {
#if defined(MOVE_SIMD_AVX2) || defined(MOVE_SIMD_NEON)
  return force_scalar();
#else
  return true;
#endif
}

/// Read-prefetch into all cache levels. Part of the SIMD kernel set: the
/// scalar dispatch issues nothing, so MOVE_FORCE_SCALAR=1 really is the
/// plain-C++ baseline.
inline void prefetch(const void* p) noexcept {
  if (dispatch_scalar()) return;
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

namespace detail {

inline std::size_t find_first_ge_scalar(const std::uint32_t* p, std::size_t n,
                                        std::uint32_t key) noexcept {
  std::size_t i = 0;
  while (i < n && p[i] < key) ++i;
  return i;
}

#if defined(MOVE_SIMD_AVX2)
inline std::size_t find_first_ge_avx2(const std::uint32_t* p, std::size_t n,
                                      std::uint32_t key) noexcept {
  const __m256i k = _mm256_set1_epi32(static_cast<int>(key));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    // Unsigned v >= key  <=>  max_epu32(v, key) == v.
    const __m256i ge = _mm256_cmpeq_epi32(_mm256_max_epu32(v, k), v);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(ge)));
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  return i + find_first_ge_scalar(p + i, n - i, key);
}
#elif defined(MOVE_SIMD_NEON)
inline std::size_t find_first_ge_neon(const std::uint32_t* p, std::size_t n,
                                      std::uint32_t key) noexcept {
  const uint32x4_t k = vdupq_n_u32(key);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t v = vld1q_u32(p + i);
    const uint32x4_t ge = vcgeq_u32(v, k);
    // Narrow each 32-bit lane to 16 bits and read out as one u64: every hit
    // lane contributes 16 set bits, so ctz/16 is the first hit index.
    const std::uint64_t mask =
        vget_lane_u64(vreinterpret_u64_u16(vshrn_n_u32(ge, 16)), 0);
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctzll(mask)) / 16;
    }
  }
  return i + find_first_ge_scalar(p + i, n - i, key);
}
#endif

}  // namespace detail

/// Index of the first element >= key in the sorted range [p, p+n); n if
/// none. Linear vectorized scan — intended for the short windows the
/// galloping intersection brackets, not whole posting lists.
[[nodiscard]] inline std::size_t find_first_ge(const std::uint32_t* p,
                                               std::size_t n,
                                               std::uint32_t key) noexcept {
#if defined(MOVE_SIMD_AVX2)
  if (!dispatch_scalar()) return detail::find_first_ge_avx2(p, n, key);
#elif defined(MOVE_SIMD_NEON)
  if (!dispatch_scalar()) return detail::find_first_ge_neon(p, n, key);
#endif
  return detail::find_first_ge_scalar(p, n, key);
}

/// Lower bound over a sorted u32 range: classic halving until the window is
/// one vector-sweep wide, then find_first_ge finishes it. Same result as
/// std::lower_bound (index form).
[[nodiscard]] inline std::size_t lower_bound_u32(const std::uint32_t* p,
                                                 std::size_t n,
                                                 std::uint32_t key) noexcept {
  constexpr std::size_t kSweep = 32;
  std::size_t lo = 0;
  while (n - lo > kSweep) {
    const std::size_t mid = lo + (n - lo) / 2;
    if (p[mid] < key) {
      lo = mid + 1;
    } else {
      n = mid;
    }
  }
  return lo + find_first_ge(p + lo, n - lo, key);
}

}  // namespace move::simd
