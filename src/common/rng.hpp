#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

/// Deterministic random number generation.
///
/// Every stochastic decision in MOVE (workload synthesis, randomized
/// rounding, partition selection, failure injection) draws from a SplitMix64
/// stream seeded explicitly, so experiments replay bit-identically.
namespace move::common {

/// SplitMix64 — tiny, fast, passes BigCrush; satisfies
/// std::uniform_random_bit_generator so it plugs into <random> distributions.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Forks an independent stream; used to give each generator component its
  /// own stream so adding draws to one does not perturb another.
  [[nodiscard]] constexpr SplitMix64 fork() noexcept {
    return SplitMix64((*this)() ^ 0x6a09e667f3bcc909ULL);
  }

 private:
  std::uint64_t state_;
};

/// Named per-subsystem stream of a master seed. Each subsystem that draws
/// randomness ("net", "fault", "workload", ...) derives its own stream from
/// the experiment's one seed, so adding draws to one subsystem never
/// perturbs another's sequence — the property the determinism goldens rely
/// on when a new randomized layer (e.g. the lossy network) is bolted onto
/// an existing seeded pipeline. Same (seed, name) => same stream, always.
[[nodiscard]] SplitMix64 named_stream(std::uint64_t seed,
                                      std::string_view subsystem) noexcept;

/// Uniform integer in [0, bound) without modulo bias (Lemire's method).
[[nodiscard]] std::uint64_t uniform_below(SplitMix64& rng,
                                          std::uint64_t bound) noexcept;

/// Uniform double in [0, 1).
[[nodiscard]] double uniform_unit(SplitMix64& rng) noexcept;

/// Bernoulli draw with success probability p (clamped to [0,1]).
[[nodiscard]] bool bernoulli(SplitMix64& rng, double p) noexcept;

}  // namespace move::common
