#include "common/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace move::common {

namespace {

/// Antiderivative of h(x) = x^-s on x > 0 (constant of integration chosen so
/// the s -> 1 limit is continuous): H(x) = (x^(1-s) - 1) / (1 - s), log(x) at
/// s == 1.
double h_antiderivative(double x, double s) {
  const double one_minus_s = 1.0 - s;
  if (std::abs(one_minus_s) < 1e-12) return std::log(x);
  return std::expm1(one_minus_s * std::log(x)) / one_minus_s;
}

/// Inverse of h_antiderivative.
double h_antiderivative_inverse(double y, double s) {
  const double one_minus_s = 1.0 - s;
  if (std::abs(one_minus_s) < 1e-12) return std::exp(y);
  return std::exp(std::log1p(y * one_minus_s) / one_minus_s);
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: s must be >= 0");
  h_integral_x1_ = h_antiderivative(1.5, s_) - 1.0;
  h_integral_n_ = h_antiderivative(static_cast<double>(n_) + 0.5, s_);
  s_div_ = 2.0 - h_antiderivative_inverse(
                     h_antiderivative(2.5, s_) - h(2.0), s_);
  harmonic_ = 0.0;
  // Exact generalized harmonic sum; O(n) once per sampler, used only by
  // pmf() in tests and analytical expectations.
  for (std::uint64_t k = 1; k <= n_; ++k) {
    harmonic_ += std::pow(static_cast<double>(k), -s_);
  }
}

double ZipfSampler::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfSampler::h_integral(double x) const {
  return h_antiderivative(x, s_);
}

double ZipfSampler::h_integral_inverse(double x) const {
  return h_antiderivative_inverse(x, s_);
}

double ZipfSampler::pmf(std::uint64_t rank) const {
  if (rank >= n_) return 0.0;
  return std::pow(static_cast<double>(rank + 1), -s_) / harmonic_;
}

std::uint64_t ZipfSampler::operator()(SplitMix64& rng) const {
  // Rejection-inversion sampling (Hörmann & Derflinger 1996) over the
  // continuous envelope h(x) on [0.5, n + 0.5]; O(1) expected per draw.
  while (true) {
    const double u = h_integral_n_ +
                     uniform_unit(rng) * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_div_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;  // external ranks are 0-based
    }
  }
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("AliasSampler: weights must be non-empty");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("AliasSampler: all weights are zero");
  }

  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Walker/Vose alias construction: split scaled weights into under- and
  // over-full buckets and pair them.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::uint64_t AliasSampler::operator()(SplitMix64& rng) const {
  const std::uint64_t bucket = uniform_below(rng, prob_.size());
  return uniform_unit(rng) < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace move::common
