#include "common/hash.hpp"

namespace move::common {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::uint64_t key) noexcept {
  std::uint64_t h = kFnvOffset;
  for (int i = 0; i < 8; ++i) {
    h ^= key & 0xffU;
    h *= kFnvPrime;
    key >>= 8;
  }
  return h;
}

}  // namespace move::common
