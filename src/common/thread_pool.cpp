#include "common/thread_pool.hpp"

#include <algorithm>

namespace move::common {

namespace {
thread_local std::size_t tls_worker_index = ThreadPool::kNotAWorker;
}  // namespace

std::size_t ThreadPool::current_worker_index() noexcept {
  return tls_worker_index;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    // Let queued work finish: a destructor racing live submissions is a
    // caller bug, but draining what is already queued is always safe.
    all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::submit_bulk(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard lock(mutex_);
    for (auto& task : tasks) queue_.push_back(std::move(task));
  }
  work_available_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::uint64_t ThreadPool::tasks_completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      ++completed_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace move::common
