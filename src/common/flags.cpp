#include "common/flags.hpp"

#include <cstdlib>

namespace move::common {

Flags Flags::parse(int argc, char** argv) {
  Flags flags;
  if (argc > 0) flags.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      flags.positionals_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      flags.values_.insert_or_assign(std::string(arg.substr(0, eq)),
                                     std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) !=
                                   "--") {
      flags.values_.insert_or_assign(std::string(arg), argv[i + 1]);
      ++i;
    } else {
      flags.values_.insert_or_assign(std::string(arg), "true");
    }
  }
  return flags;
}

bool Flags::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::get(std::string_view name, std::string_view fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? std::string(fallback) : it->second;
}

std::int64_t Flags::get_int(std::string_view name,
                            std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const auto v = std::strtoll(it->second.c_str(), &end, 10);
  return end != it->second.c_str() ? v : fallback;
}

double Flags::get_double(std::string_view name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() ? v : fallback;
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace move::common
