#include "common/rng.hpp"

#include "common/hash.hpp"

namespace move::common {

SplitMix64 named_stream(std::uint64_t seed,
                        std::string_view subsystem) noexcept {
  // Mix the subsystem name's hash into the seed through one SplitMix64 step
  // so streams for different names are decorrelated even for tiny seeds.
  SplitMix64 mixer(seed ^ fnv1a64(subsystem));
  return SplitMix64(mixer());
}

std::uint64_t uniform_below(SplitMix64& rng, std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method, 64x64 -> 128 bit.
  while (true) {
    const std::uint64_t x = rng();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double uniform_unit(SplitMix64& rng) noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

bool bernoulli(SplitMix64& rng, double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_unit(rng) < p;
}

}  // namespace move::common
