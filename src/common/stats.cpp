#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace move::common {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double shannon_entropy(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

double gini(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double cum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += (static_cast<double>(i) + 1.0) * sorted[i];
    cum += sorted[i];
  }
  if (cum <= 0.0) return 0.0;
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

std::vector<double> normalize(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return {};
  std::vector<double> out(weights.begin(), weights.end());
  for (double& w : out) w /= total;
  return out;
}

std::vector<std::size_t> top_k_indices(std::span<const double> values,
                                       std::size_t k) {
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return values[a] > values[b];
                    });
  idx.resize(k);
  return idx;
}

double overlap_fraction(std::span<const std::size_t> a,
                        std::span<const std::size_t> b) {
  if (a.empty()) return 0.0;
  std::unordered_set<std::size_t> in_b(b.begin(), b.end());
  std::size_t hits = 0;
  for (std::size_t x : a) hits += in_b.count(x);
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

double peak_to_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  if (m <= 0.0) return 0.0;
  return *std::max_element(xs.begin(), xs.end()) / m;
}

}  // namespace move::common
