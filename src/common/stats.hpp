#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// Descriptive statistics used by the evaluation harness.
///
/// The paper characterizes its traces through ranked distributions, Shannon
/// entropy (Fig. 5: 9.4473 for TREC AP vs 6.7593 for TREC WT) and top-k
/// overlap between query-term popularity and document-term frequency
/// (26.9 % / 31.3 %). These helpers compute those quantities.
namespace move::common {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation; 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// p-th percentile (p in [0,100]) with linear interpolation; input is copied
/// and sorted internally. Returns 0 for an empty span.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Shannon entropy (base 2) of a discrete distribution given as
/// non-negative weights; weights are normalized internally. Zero weights
/// contribute nothing. Returns 0 for an empty or all-zero input.
[[nodiscard]] double shannon_entropy(std::span<const double> weights);

/// Gini coefficient of non-negative values — 0 is perfectly balanced load,
/// 1 is maximally concentrated. Used to summarize Fig. 9(a,b) load skew.
[[nodiscard]] double gini(std::span<const double> xs);

/// Normalizes weights to sum to 1 (returns empty if the sum is zero).
[[nodiscard]] std::vector<double> normalize(std::span<const double> weights);

/// Returns the indices of the k largest values, in descending value order.
[[nodiscard]] std::vector<std::size_t> top_k_indices(
    std::span<const double> values, std::size_t k);

/// Fraction of `a`'s elements that also appear in `b` (as sets).
/// With a = top-1000 query terms and b = top-1000 document terms this is the
/// paper's popular/frequent overlap statistic.
[[nodiscard]] double overlap_fraction(std::span<const std::size_t> a,
                                      std::span<const std::size_t> b);

/// Max over mean of a load vector (1.0 = perfectly balanced). Used to report
/// hot-spot severity in the cluster benches.
[[nodiscard]] double peak_to_mean(std::span<const double> xs) noexcept;

}  // namespace move::common
