#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// Minimal command-line flag parsing for the examples and the CLI driver.
///
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean true).
/// Unknown positional arguments are collected in order. No dependencies, no
/// global state.
namespace move::common {

class Flags {
 public:
  /// Parses argv; never throws — malformed input just becomes positionals.
  static Flags parse(int argc, char** argv);

  [[nodiscard]] bool has(std::string_view name) const;

  /// String value of a flag, or `fallback` when absent.
  [[nodiscard]] std::string get(std::string_view name,
                                std::string_view fallback = "") const;

  /// Numeric accessors; malformed numbers fall back too.
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }
  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positionals_;
};

}  // namespace move::common
