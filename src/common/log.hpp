#pragma once

#include <sstream>
#include <string>
#include <string_view>

/// Minimal leveled logging.
///
/// Kept deliberately tiny: benches and examples print their own tables; the
/// library itself only logs configuration summaries and rare anomalies.
/// Thread-safe at line granularity.
namespace move::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; lines below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one formatted line ("LEVEL component: message") to stderr.
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

/// Stream-style convenience: LOG(kInfo, "cluster") << "N=" << n;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, component_, out_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream out_;
};

}  // namespace move::common

#define MOVE_LOG(level, component) \
  ::move::common::LogStream(::move::common::LogLevel::level, component)
