#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

/// Storage for registered filters.
///
/// A filter is a user profile: a small set of terms (the MSN trace averages
/// 2.843 terms per query). The store keeps all term ids in one flat array
/// with per-filter offsets — compact, cache-friendly, and cheap to snapshot;
/// this is the in-memory stand-in for the paper's Cassandra "filter store"
/// column family (Fig. 3).
namespace move::index {

/// Matching semantics between a document and a filter (§III-A).
enum class MatchSemantics {
  /// Paper default: match if the document and filter share >= 1 term.
  kAnyTerm,
  /// Conjunctive: every filter term must appear in the document.
  kAllTerms,
  /// Similarity-threshold extension ([25],[17]): match if
  /// |d ∩ f| >= ceil(theta * |f|).
  kThreshold,
};

struct MatchOptions {
  MatchSemantics semantics = MatchSemantics::kAnyTerm;
  double threshold = 0.5;  ///< only used by kThreshold
  /// Screen document terms against the index's blocked-Bloom term summary
  /// before probing posting lists (no-op while the index is mutable — the
  /// summary only exists frozen). Never changes results or the classic
  /// accounting fields; off mainly for the bench's ungated baseline.
  bool use_term_summary = true;
};

class FilterStore {
 public:
  FilterStore() = default;

  /// Registers a filter. `terms` must be sorted and deduplicated (the text
  /// pipeline and workload generators guarantee this).
  /// @returns the dense id assigned to the filter.
  FilterId add(std::span<const TermId> terms);

  /// Term set of a filter. Valid for the store's lifetime.
  [[nodiscard]] std::span<const TermId> terms(FilterId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Total stored term slots — the paper's "storage cost" unit for a node
  /// (replicated filters count once per copy).
  [[nodiscard]] std::size_t term_slots() const noexcept {
    return flat_terms_.size();
  }

  /// Term count of a filter without materializing its span. O(1), noexcept;
  /// the count-verification fast path (SiftMatcher full-index mode) calls
  /// this per candidate instead of terms().size().
  [[nodiscard]] std::size_t term_count(FilterId id) const noexcept {
    return static_cast<std::size_t>(offsets_[id.value + 1] -
                                    offsets_[id.value]);
  }

  /// True if document terms (sorted) match the filter under `options`.
  [[nodiscard]] bool matches(FilterId id, std::span<const TermId> doc_terms,
                             const MatchOptions& options) const;

  /// Smallest |d ∩ f| that satisfies `options` for a filter of
  /// `filter_term_count` terms: 1 / |f| / max(1, ceil(theta*|f|)) for
  /// any/all/threshold. `matches()` is exactly
  /// `intersection_size(d, f) >= required_overlap(|f|, options)`; matchers
  /// with an exact counter (full indexing) compare against this directly and
  /// skip the intersection scan entirely.
  [[nodiscard]] static std::size_t required_overlap(
      std::size_t filter_term_count, const MatchOptions& options);

  /// |d ∩ f| for sorted inputs. Adaptive: linear merge for comparable
  /// sizes, galloping (exponential probe + SIMD-assisted binary search of
  /// the smaller side into the larger — see simd::lower_bound_u32) when the
  /// sizes are skewed by >= 16x — the common shape when a ~3-term filter is
  /// verified against a ~6000-term TREC-AP document.
  [[nodiscard]] static std::size_t intersection_size(
      std::span<const TermId> doc_terms, std::span<const TermId> filter_terms);

 private:
  std::vector<std::uint64_t> offsets_{0};  // size == filter count + 1
  std::vector<TermId> flat_terms_;
};

}  // namespace move::index
