#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "index/filter_store.hpp"

/// Reference matcher: checks every filter in a store against a document.
/// O(P) and index-free — used only by tests as ground truth for the property
/// "every scheme notifies exactly the matching filter set".
namespace move::index {

[[nodiscard]] std::vector<FilterId> brute_force_match(
    const FilterStore& store, std::span<const TermId> doc_terms,
    const MatchOptions& options);

}  // namespace move::index
