#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "index/filter_store.hpp"
#include "index/inverted_index.hpp"
#include "index/match_scratch.hpp"
#include "index/sift_matcher.hpp"
#include "workload/filter_churn.hpp"

/// Applies a FilterChurnStream to a live FilterStore + InvertedIndex pair,
/// driving the frozen/thaw contract the way a long-running deployment
/// would: registrations thaw a sealed index, periodic re-finalize cycles
/// freeze it back (into whichever storage mode the options pick — the
/// churn-exactness suite and the fig13 churn section both run raw and
/// compressed), and matching is available at every step, in every mode.
///
/// The harness keeps a key -> FilterId map of LIVE filters (pool rows are
/// the keys; FilterStore rows are append-only, so an unregistered filter's
/// arena row survives but becomes unreachable — no posting list references
/// it). match_reference() brute-forces over exactly the live set, giving
/// the oracle that the index-backed match() is compared against at every
/// churn step.
///
/// `set_on_register_term` exposes each newly indexed term to an external
/// observer (e.g. adapt::WorkloadEstimator::on_filter_term) without the
/// index layer depending on the adapt layer.
namespace move::index {

class ChurnHarness {
 public:
  struct Options {
    MatchOptions match;
    /// Re-finalize after every N applied ops (0 = only on explicit
    /// refinalize() calls). Each cycle freezes into `finalize`'s mode; the
    /// next mutation thaws again — exactly the churn the issue targets.
    std::size_t refinalize_every = 0;
    InvertedIndex::FinalizeOptions finalize{};
  };

  ChurnHarness() : ChurnHarness(Options{}) {}
  explicit ChurnHarness(Options options) : options_(options) {}

  /// Applies one stream op (register / unregister / edit). `stream` supplies
  /// the term sets; the op must come from that stream's sequence.
  void apply(const workload::FilterChurnStream& stream,
             const workload::ChurnOp& op);

  /// Freezes the index under options_.finalize and counts the cycle.
  void refinalize() { refinalize(options_.finalize); }

  /// Freezes into an explicit mode (the mode-switch tests alternate raw and
  /// compressed finalizes mid-stream without rebuilding the harness).
  void refinalize(const InvertedIndex::FinalizeOptions& finalize) {
    index_.finalize(finalize);
    ++refinalize_cycles_;
  }

  /// Index-backed match over the live set (scratch kernel, so the Bloom
  /// gate and SIMD bump path run whenever the index is frozen).
  MatchAccounting match(std::span<const TermId> doc_terms,
                        std::vector<FilterId>& out) const {
    const SiftMatcher matcher(store_, index_, /*full_index=*/true);
    return matcher.match(doc_terms, options_.match, out, scratch_);
  }

  /// Brute-force oracle: checks every LIVE filter against the document
  /// directly, never touching the index. Ascending, deduplicated — the
  /// exactness tests require match() == match_reference() after every op.
  void match_reference(std::span<const TermId> doc_terms,
                       std::vector<FilterId>& out) const;

  [[nodiscard]] const FilterStore& store() const noexcept { return store_; }
  [[nodiscard]] const InvertedIndex& index() const noexcept { return index_; }
  [[nodiscard]] std::size_t live_count() const noexcept {
    return live_.size();
  }
  [[nodiscard]] std::uint64_t ops_applied() const noexcept { return ops_; }
  [[nodiscard]] std::uint64_t refinalize_cycles() const noexcept {
    return refinalize_cycles_;
  }

  void set_on_register_term(std::function<void(TermId)> hook) {
    on_register_term_ = std::move(hook);
  }

 private:
  void register_key(std::uint32_t key, std::span<const TermId> terms);
  void unregister_key(std::uint32_t key);

  Options options_;
  FilterStore store_;
  InvertedIndex index_;
  std::unordered_map<std::uint32_t, FilterId> live_;
  std::function<void(TermId)> on_register_term_;
  std::uint64_t ops_ = 0;
  std::uint64_t refinalize_cycles_ = 0;
  mutable MatchScratch scratch_;
};

}  // namespace move::index
