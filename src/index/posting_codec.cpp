#include "index/posting_codec.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace move::index::codec {

namespace {

constexpr std::uint8_t kVarintMode = 0xFF;
constexpr std::uint8_t kMaxRiceK = 0x1F;  // headers 0x00..0x1F are Rice(k)
constexpr std::uint8_t kRunMode = 0x20;   // every delta == 1, empty payload

constexpr bool valid_header(std::uint8_t h) noexcept {
  return h == kVarintMode || h == kRunMode || h <= kMaxRiceK;
}

std::size_t varint_len(std::uint32_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// MSB-first bit appender for the Rice payload.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void put_unary(std::uint32_t q) {
    for (std::uint32_t i = 0; i < q; ++i) put_bit(1);
    put_bit(0);
  }
  void put_low_bits(std::uint32_t v, std::uint32_t k) {
    for (std::uint32_t i = k; i-- > 0;) put_bit((v >> i) & 1u);
  }
  /// Pads the final partial byte with zero bits.
  void flush() {
    if (nbits_ > 0) {
      out_->push_back(static_cast<std::uint8_t>(cur_ << (8 - nbits_)));
      cur_ = 0;
      nbits_ = 0;
    }
  }

 private:
  void put_bit(std::uint32_t b) {
    cur_ = static_cast<std::uint8_t>((cur_ << 1) | (b & 1u));
    if (++nbits_ == 8) {
      out_->push_back(cur_);
      cur_ = 0;
      nbits_ = 0;
    }
  }
  std::vector<std::uint8_t>* out_;
  std::uint8_t cur_ = 0;
  std::uint32_t nbits_ = 0;
};

/// MSB-first bit cursor over a byte range; reads report failure instead of
/// running past the end. Keeps up to 64 pending bits top-aligned in `acc_`
/// so a unary run is one leading-ones count and a k-bit field is one shift —
/// the decode hot path never touches memory bit-by-bit.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  /// Unary run: counts one-bits up to the terminating zero. False if the
  /// payload ends first or the run exceeds `cap` (an absurd quotient that
  /// could only come from corruption — bounding it keeps corrupt blocks
  /// O(payload) instead of O(2^32) without rejecting any legal encoding,
  /// since the encoder would have picked varint long before).
  [[nodiscard]] bool read_unary(std::uint32_t cap, std::uint32_t& q) noexcept {
    q = 0;
    for (;;) {
      refill();
      if (bits_ == 0) return false;  // input exhausted mid-run
      const auto ones =
          static_cast<std::uint32_t>(std::countl_one(acc_));
      if (ones < bits_) {
        q += ones;
        if (q > cap) return false;
        drop(ones + 1);  // the run plus its terminating zero
        return true;
      }
      q += bits_;  // the whole buffer is ones; keep scanning
      if (q > cap) return false;
      acc_ = 0;
      bits_ = 0;
    }
  }
  [[nodiscard]] bool read_low_bits(std::uint32_t k,
                                   std::uint32_t& v) noexcept {
    if (k == 0) {
      v = 0;
      return true;
    }
    refill();  // k <= 32 < 57, so one refill covers any field
    if (bits_ < k) return false;
    v = static_cast<std::uint32_t>(acc_ >> (64 - k));
    drop(k);
    return true;
  }
  /// Bytes consumed so far: loaded bytes minus the still-unread whole bytes
  /// buffered in `acc_` — a partially read byte (its padding bits pending)
  /// already counts.
  [[nodiscard]] std::size_t bytes_consumed() const noexcept {
    return pos_ - bits_ / 8;
  }

 private:
  void refill() noexcept {
    if (bits_ > 56) return;
    if (pos_ + 8 <= size_) {
      // Bulk path: one big-endian 64-bit load (compilers fuse the byte
      // composition into a single bswap'd load), of which the whole bytes
      // that fit above the pending bits are kept.
      const std::uint8_t* p = data_ + pos_;
      const std::uint64_t w = static_cast<std::uint64_t>(p[0]) << 56 |
                              static_cast<std::uint64_t>(p[1]) << 48 |
                              static_cast<std::uint64_t>(p[2]) << 40 |
                              static_cast<std::uint64_t>(p[3]) << 32 |
                              static_cast<std::uint64_t>(p[4]) << 24 |
                              static_cast<std::uint64_t>(p[5]) << 16 |
                              static_cast<std::uint64_t>(p[6]) << 8 |
                              static_cast<std::uint64_t>(p[7]);
      const std::uint32_t n = (64 - bits_) >> 3;  // whole bytes with room
      acc_ |= (w & (~std::uint64_t{0} << (64 - 8 * n))) >> bits_;
      pos_ += n;
      bits_ += 8 * n;
      return;
    }
    while (bits_ <= 56 && pos_ < size_) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << (56 - bits_);
      bits_ += 8;
    }
  }
  void drop(std::uint32_t n) noexcept {
    acc_ = n >= 64 ? 0 : acc_ << n;  // n == 64 when a full buffer of ones ends
    bits_ -= n;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  std::uint32_t bits_ = 0;
};

/// Reads one LEB128 u32. kTruncated if the range ends mid-codeword,
/// kOverflow if the value needs more than 32 bits.
DecodeStatus get_varint(const std::uint8_t* data, std::size_t size,
                        std::size_t& pos, std::uint32_t& v) noexcept {
  if (pos < size && data[pos] < 0x80) {  // 1-byte codeword, the common gap
    v = data[pos++];
    return DecodeStatus::kOk;
  }
  v = 0;
  std::uint32_t shift = 0;
  for (;;) {
    if (pos >= size) return DecodeStatus::kTruncated;
    const std::uint8_t byte = data[pos++];
    if (shift >= 32 ||
        (shift == 28 && (byte & 0x7F) > 0x0F)) {
      return DecodeStatus::kOverflow;
    }
    v |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return DecodeStatus::kOk;
    shift += 7;
  }
}

/// Best Rice parameter and its payload bit cost for the given deltas, or
/// k > kMaxRiceK when every parameter loses to varint.
struct RiceChoice {
  std::uint32_t k = kMaxRiceK + 1;
  std::uint64_t bits = std::numeric_limits<std::uint64_t>::max();
};

RiceChoice pick_rice(std::span<const std::uint32_t> deltas) noexcept {
  RiceChoice best;
  for (std::uint32_t k = 0; k <= kMaxRiceK; ++k) {
    std::uint64_t bits = 0;
    for (const std::uint32_t d : deltas) {
      bits += (static_cast<std::uint64_t>(d) >> k) + 1 + k;
      if (bits >= best.bits) break;  // already worse; next k
    }
    if (bits < best.bits) best = RiceChoice{k, bits};
  }
  return best;
}

/// Appends one encoded block. `first_block` blocks lead with varint(first).
void encode_block(std::span<const FilterId> block, bool first_block,
                  std::vector<std::uint8_t>& out) {
  assert(!block.empty());
  // Deltas between consecutive ids (>= 0; duplicates are legal postings).
  std::vector<std::uint32_t> deltas;
  deltas.reserve(block.size() - 1);
  for (std::size_t i = 1; i < block.size(); ++i) {
    assert(block[i].value >= block[i - 1].value && "postings must be sorted");
    deltas.push_back(block[i].value - block[i - 1].value);
  }

  // Dense run (every gap exactly 1 — the home-term-grouped bulk-load
  // layout): the header alone carries the whole block. Zero payload always
  // wins the byte-cost contest, and decode is an iota fill.
  if (!deltas.empty() &&
      std::all_of(deltas.begin(), deltas.end(),
                  [](std::uint32_t d) { return d == 1; })) {
    out.push_back(kRunMode);
    if (first_block) put_varint(out, block.front().value);
    return;
  }

  std::uint64_t varint_bytes = 0;
  for (const std::uint32_t d : deltas) varint_bytes += varint_len(d);
  const RiceChoice rice = pick_rice(deltas);
  const std::uint64_t rice_bytes = (rice.bits + 7) / 8;

  // Exact byte cost decides; ties go to varint (the named format).
  if (rice.k <= kMaxRiceK && rice_bytes < varint_bytes) {
    out.push_back(static_cast<std::uint8_t>(rice.k));
    if (first_block) put_varint(out, block.front().value);
    BitWriter bw(out);
    for (const std::uint32_t d : deltas) {
      bw.put_unary(d >> rice.k);
      bw.put_low_bits(d, rice.k);
    }
    bw.flush();
  } else {
    out.push_back(kVarintMode);
    if (first_block) put_varint(out, block.front().value);
    for (const std::uint32_t d : deltas) put_varint(out, d);
  }
}

/// Shared payload decode once the header and the first id are known.
BlockDecode decode_payload(std::span<const std::uint8_t> bytes,
                           std::uint8_t header, std::size_t payload_pos,
                           std::uint32_t first, std::uint32_t count,
                           FilterId* out) noexcept {
  BlockDecode r;
  out[r.produced++] = FilterId{first};
  std::uint64_t cur = first;

  if (header == kRunMode) {
    if (payload_pos != bytes.size()) {
      r.status = DecodeStatus::kTrailingBytes;
      return r;
    }
    const std::uint64_t last = cur + count - 1;
    if (last > std::numeric_limits<std::uint32_t>::max()) {
      r.status = DecodeStatus::kOverflow;
      return r;
    }
    for (std::uint32_t i = 1; i < count; ++i) {
      out[r.produced++] = FilterId{first + i};
    }
    return r;
  }

  if (header == kVarintMode) {
    std::size_t pos = payload_pos;
    for (std::uint32_t i = 1; i < count; ++i) {
      std::uint32_t d;
      const DecodeStatus s = get_varint(bytes.data(), bytes.size(), pos, d);
      if (s != DecodeStatus::kOk) {
        r.status = s;
        return r;
      }
      cur += d;
      if (cur > std::numeric_limits<std::uint32_t>::max()) {
        r.status = DecodeStatus::kOverflow;
        return r;
      }
      out[r.produced++] = FilterId{static_cast<std::uint32_t>(cur)};
    }
    if (pos != bytes.size()) {
      r.status = DecodeStatus::kTrailingBytes;
      return r;
    }
    return r;
  }

  if (header > kMaxRiceK) {
    r.status = DecodeStatus::kBadHeader;
    return r;
  }
  const std::uint32_t k = header;
  // A quotient beyond 32 - k bits cannot come from a 32-bit delta.
  const std::uint32_t cap =
      k >= 32 ? 0 : (std::numeric_limits<std::uint32_t>::max() >> k);
  BitReader br(bytes.data() + payload_pos, bytes.size() - payload_pos);
  for (std::uint32_t i = 1; i < count; ++i) {
    std::uint32_t q, low;
    if (!br.read_unary(cap, q)) {
      r.status = DecodeStatus::kTruncated;
      return r;
    }
    if (!br.read_low_bits(k, low)) {
      r.status = DecodeStatus::kTruncated;
      return r;
    }
    const std::uint64_t d = (static_cast<std::uint64_t>(q) << k) | low;
    cur += d;
    if (cur > std::numeric_limits<std::uint32_t>::max()) {
      r.status = DecodeStatus::kOverflow;
      return r;
    }
    out[r.produced++] = FilterId{static_cast<std::uint32_t>(cur)};
  }
  if (payload_pos + br.bytes_consumed() != bytes.size()) {
    r.status = DecodeStatus::kTrailingBytes;
    return r;
  }
  return r;
}

}  // namespace

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kBadHeader: return "bad block header";
    case DecodeStatus::kTruncated: return "truncated block payload";
    case DecodeStatus::kOverflow: return "posting id overflows 32 bits";
    case DecodeStatus::kTrailingBytes: return "trailing bytes after block";
    case DecodeStatus::kBadCount: return "inconsistent count/skip table";
    case DecodeStatus::kOutOfOrder: return "block first id out of order";
  }
  return "unknown";
}

EncodedList encode_list(std::span<const FilterId> postings,
                        std::size_t block_size) {
  assert(block_size > 0);
  EncodedList enc;
  if (postings.empty()) return enc;
  const std::size_t blocks = (postings.size() + block_size - 1) / block_size;
  enc.skips.reserve(blocks > 0 ? blocks - 1 : 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * block_size;
    const std::size_t count = std::min(block_size, postings.size() - begin);
    if (b > 0) {
      enc.skips.push_back(
          SkipEntry{postings[begin].value,
                    static_cast<std::uint32_t>(enc.bytes.size())});
    }
    encode_block(postings.subspan(begin, count), b == 0, enc.bytes);
  }
  return enc;
}

BlockDecode decode_first_block(std::span<const std::uint8_t> bytes,
                               std::uint32_t count, FilterId* out) noexcept {
  BlockDecode r;
  if (count == 0) {
    r.status = DecodeStatus::kBadCount;
    return r;
  }
  if (bytes.empty()) {
    r.status = DecodeStatus::kTruncated;
    return r;
  }
  const std::uint8_t header = bytes[0];
  if (!valid_header(header)) {
    r.status = DecodeStatus::kBadHeader;
    return r;
  }
  std::size_t pos = 1;
  std::uint32_t first;
  const DecodeStatus s = get_varint(bytes.data(), bytes.size(), pos, first);
  if (s != DecodeStatus::kOk) {
    r.status = s;
    return r;
  }
  return decode_payload(bytes, header, pos, first, count, out);
}

BlockDecode decode_block(std::span<const std::uint8_t> bytes,
                         std::uint32_t first, std::uint32_t count,
                         FilterId* out) noexcept {
  BlockDecode r;
  if (count == 0) {
    r.status = DecodeStatus::kBadCount;
    return r;
  }
  if (bytes.empty()) {
    r.status = DecodeStatus::kTruncated;
    return r;
  }
  const std::uint8_t header = bytes[0];
  if (!valid_header(header)) {
    r.status = DecodeStatus::kBadHeader;
    return r;
  }
  return decode_payload(bytes, header, 1, first, count, out);
}

DecodeStatus decode_list(const EncodedList& enc, std::size_t posting_count,
                         std::size_t block_size, std::vector<FilterId>& out) {
  out.clear();
  if (block_size == 0) return DecodeStatus::kBadCount;
  if (posting_count == 0) {
    if (!enc.bytes.empty() || !enc.skips.empty()) {
      return DecodeStatus::kTrailingBytes;
    }
    return DecodeStatus::kOk;
  }
  const std::size_t blocks = (posting_count + block_size - 1) / block_size;
  if (enc.skips.size() != blocks - 1) return DecodeStatus::kBadCount;

  // Validate the skip directory before touching any payload: offsets must be
  // strictly increasing (every block is at least one header byte) and inside
  // the byte range — this is what rejects corrupted length fields cleanly.
  std::size_t prev_off = 0;
  for (const SkipEntry& s : enc.skips) {
    if (s.byte_offset <= prev_off || s.byte_offset >= enc.bytes.size()) {
      return DecodeStatus::kBadCount;
    }
    prev_off = s.byte_offset;
  }

  out.resize(posting_count);
  const std::span<const std::uint8_t> bytes(enc.bytes);
  std::size_t produced_total = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b == 0 ? 0 : enc.skips[b - 1].byte_offset;
    const std::size_t end =
        b + 1 < blocks ? enc.skips[b].byte_offset : enc.bytes.size();
    const std::uint32_t count = static_cast<std::uint32_t>(
        std::min(block_size, posting_count - b * block_size));
    const auto block_bytes = bytes.subspan(begin, end - begin);
    const BlockDecode r =
        b == 0 ? decode_first_block(block_bytes, count,
                                    out.data() + produced_total)
               : decode_block(block_bytes, enc.skips[b - 1].first_id, count,
                              out.data() + produced_total);
    if (b > 0 && r.produced > 0 && produced_total > 0 &&
        out[produced_total].value < out[produced_total - 1].value) {
      out.resize(produced_total + r.produced);
      return DecodeStatus::kOutOfOrder;
    }
    produced_total += r.produced;
    if (r.status != DecodeStatus::kOk) {
      out.resize(produced_total);
      return r.status;
    }
  }
  return DecodeStatus::kOk;
}

}  // namespace move::index::codec
