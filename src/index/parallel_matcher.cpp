#include "index/parallel_matcher.hpp"

#include <algorithm>
#include <string>

#include "common/hash.hpp"
#include "common/stats.hpp"
#include "index/sift_matcher.hpp"
#include "obs/metrics.hpp"

namespace move::index {

ParallelMatcher::ParallelMatcher(const workload::TermSetTable& filters,
                                 std::size_t shards, std::size_t threads)
    : pool_(threads) {
  if (shards == 0) shards = pool_.thread_count();
  shards_.resize(std::max<std::size_t>(1, shards));
  stats_.resize(shards_.size());
  filter_count_ = filters.size();

  for (std::size_t i = 0; i < filters.size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    const auto terms = filters.row(i);
    for (TermId t : terms) {
      Shard& shard = shards_[shard_of(t)];
      FilterId local;
      if (auto it = shard.local_of.find(global.value);
          it != shard.local_of.end()) {
        local = it->second;
      } else {
        local = shard.store.add(terms);
        shard.local_of.emplace(global.value, local);
        shard.global_ids.push_back(global);
      }
      const TermId one[] = {t};
      shard.index.add(local, one);
    }
  }
}

std::size_t ParallelMatcher::shard_of(TermId t) const noexcept {
  return static_cast<std::size_t>(common::mix64(t.value) % shards_.size());
}

void ParallelMatcher::match_shard(const Shard& shard,
                                  std::span<const TermId> shard_terms,
                                  std::span<const TermId> doc_terms,
                                  const MatchOptions& options,
                                  std::vector<FilterId>& out,
                                  ShardStats& stats) const {
  out.clear();
  const SiftMatcher matcher(shard.store, shard.index);
  std::vector<FilterId> partial;
  for (TermId t : shard_terms) {
    const auto acc =
        matcher.match_single_list(t, doc_terms, options, partial);
    stats.lists_retrieved += acc.lists_retrieved;
    stats.postings_scanned += acc.postings_scanned;
    stats.candidates_verified += acc.candidates_verified;
    out.insert(out.end(), partial.begin(), partial.end());
  }
  for (FilterId& id : out) id = shard.global_ids[id.value];
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  stats.matches_emitted += out.size();
}

std::vector<FilterId> ParallelMatcher::match(std::span<const TermId> doc_terms,
                                             const MatchOptions& options) {
  // Slice the document's terms by owning shard once, up front.
  std::vector<std::vector<TermId>> slices(shards_.size());
  for (TermId t : doc_terms) slices[shard_of(t)].push_back(t);

  std::vector<std::vector<FilterId>> partials(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (slices[s].empty()) continue;
    pool_.submit([this, s, doc_terms, &options, &slices, &partials] {
      match_shard(shards_[s], slices[s], doc_terms, options, partials[s],
                  stats_[s]);
    });
  }
  pool_.wait_idle();

  std::vector<FilterId> out;
  std::size_t total = 0;
  for (const auto& p : partials) total += p.size();
  out.reserve(total);
  for (const auto& p : partials) out.insert(out.end(), p.begin(), p.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<FilterId> ParallelMatcher::match_sequential(
    std::span<const TermId> doc_terms, const MatchOptions& options) {
  std::vector<std::vector<TermId>> slices(shards_.size());
  for (TermId t : doc_terms) slices[shard_of(t)].push_back(t);

  std::vector<FilterId> out, partial;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (slices[s].empty()) continue;
    match_shard(shards_[s], slices[s], doc_terms, options, partial,
                stats_[s]);
    out.insert(out.end(), partial.begin(), partial.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double ParallelMatcher::shard_imbalance() const {
  std::vector<double> load(shards_.size());
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    load[s] = static_cast<double>(stats_[s].postings_scanned);
    total += stats_[s].postings_scanned;
  }
  if (total == 0) {
    total = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      load[s] = static_cast<double>(shards_[s].index.total_postings());
      total += shards_[s].index.total_postings();
    }
    if (total == 0) return 1.0;
  }
  return common::peak_to_mean(load);
}

void ParallelMatcher::export_metrics(obs::Registry& registry,
                                     std::string_view prefix) const {
  const std::string base(prefix);
  registry.gauge(base + ".shards").set(static_cast<double>(shards_.size()));
  registry.gauge(base + ".threads")
      .set(static_cast<double>(pool_.thread_count()));
  registry.gauge(base + ".shard_imbalance").set(shard_imbalance());
  ShardStats totals;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats& st = stats_[s];
    totals.lists_retrieved += st.lists_retrieved;
    totals.postings_scanned += st.postings_scanned;
    totals.candidates_verified += st.candidates_verified;
    totals.matches_emitted += st.matches_emitted;
    const std::string shard = std::to_string(s);
    registry.gauge(obs::labeled(base + ".postings_scanned", "shard", shard))
        .set(static_cast<double>(st.postings_scanned));
    registry.gauge(obs::labeled(base + ".candidates_verified", "shard", shard))
        .set(static_cast<double>(st.candidates_verified));
    registry.gauge(obs::labeled(base + ".index_postings", "shard", shard))
        .set(static_cast<double>(shards_[s].index.total_postings()));
  }
  registry.gauge(base + ".lists_retrieved")
      .set(static_cast<double>(totals.lists_retrieved));
  registry.gauge(base + ".postings_scanned")
      .set(static_cast<double>(totals.postings_scanned));
  registry.gauge(base + ".candidates_verified")
      .set(static_cast<double>(totals.candidates_verified));
  registry.gauge(base + ".matches_emitted")
      .set(static_cast<double>(totals.matches_emitted));
}

}  // namespace move::index
