#include "index/parallel_matcher.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <string>

#include "common/hash.hpp"
#include "common/stats.hpp"
#include "index/sift_matcher.hpp"
#include "obs/metrics.hpp"

namespace move::index {

namespace {

void accumulate(ShardStats& into, const ShardStats& delta) noexcept {
  into.lists_retrieved += delta.lists_retrieved;
  into.postings_scanned += delta.postings_scanned;
  into.candidates_verified += delta.candidates_verified;
  into.matches_emitted += delta.matches_emitted;
  into.bloom_rejects += delta.bloom_rejects;
  into.postings_skipped += delta.postings_skipped;
  into.blocks_decoded += delta.blocks_decoded;
}

}  // namespace

ParallelMatcher::ParallelMatcher(const workload::TermSetTable& filters,
                                 std::size_t shards, std::size_t threads)
    : pool_(threads) {
  if (shards == 0) shards = pool_.thread_count();
  shards_.resize(std::max<std::size_t>(1, shards));
  stats_.resize(shards_.size());
  filter_count_ = filters.size();

  for (std::size_t i = 0; i < filters.size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    const auto terms = filters.row(i);
    for (TermId t : terms) {
      Shard& shard = shards_[shard_of(t)];
      FilterId local;
      if (auto it = shard.local_of.find(global.value);
          it != shard.local_of.end()) {
        local = it->second;
      } else {
        local = shard.store.add(terms);
        shard.local_of.emplace(global.value, local);
        // Locals are minted in ascending global order, so global_ids is
        // ascending — translating a sorted local result keeps it sorted.
        shard.global_ids.push_back(global);
      }
      const TermId one[] = {t};
      shard.index.add(local, one);
    }
  }
  // Registration is done: pack every shard's posting lists into its flat
  // arena so the match kernels scan contiguous memory.
  for (Shard& shard : shards_) shard.index.finalize();

  auto init_state = [this](WorkerState& ws) {
    ws.slices.resize(shards_.size());
    ws.stats.resize(shards_.size());
  };
  workers_.resize(pool_.thread_count());
  for (WorkerState& ws : workers_) init_state(ws);
  init_state(sequential_);
}

std::size_t ParallelMatcher::shard_of(TermId t) const noexcept {
  return static_cast<std::size_t>(common::mix64(t.value) % shards_.size());
}

void ParallelMatcher::match_shard(const Shard& shard,
                                  std::span<const TermId> shard_terms,
                                  std::span<const TermId> doc_terms,
                                  const MatchOptions& options,
                                  std::vector<FilterId>& out,
                                  ShardStats& stats,
                                  MatchScratch& scratch) const {
  const SiftMatcher matcher(shard.store, shard.index);
  const auto acc =
      matcher.match_lists(shard_terms, doc_terms, options, out, scratch);
  stats.lists_retrieved += acc.lists_retrieved;
  stats.postings_scanned += acc.postings_scanned;
  stats.candidates_verified += acc.candidates_verified;
  stats.bloom_rejects += acc.bloom_rejects;
  stats.postings_skipped += acc.postings_skipped;
  stats.blocks_decoded += acc.blocks_decoded;
  // match_lists returns ascending, deduplicated local ids; global_ids is
  // monotonic, so the translated result stays ascending and deduplicated.
  for (FilterId& id : out) id = shard.global_ids[id.value];
  assert(std::is_sorted(out.begin(), out.end()));
  stats.matches_emitted += out.size();
}

void ParallelMatcher::match_document(std::span<const TermId> doc_terms,
                                     const MatchOptions& options,
                                     std::vector<FilterId>& out,
                                     WorkerState& state) const {
  out.clear();
  for (auto& slice : state.slices) slice.clear();
  for (TermId t : doc_terms) state.slices[shard_of(t)].push_back(t);

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (state.slices[s].empty()) continue;
    match_shard(shards_[s], state.slices[s], doc_terms, options,
                state.partial, state.stats[s], state.scratch);
    out.insert(out.end(), state.partial.begin(), state.partial.end());
  }
  // A filter with terms in several shards is reported by each of them.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<FilterId> ParallelMatcher::match(std::span<const TermId> doc_terms,
                                             const MatchOptions& options) {
  // Slice the document's terms by owning shard once, up front.
  std::vector<std::vector<TermId>> slices(shards_.size());
  for (TermId t : doc_terms) slices[shard_of(t)].push_back(t);

  std::vector<std::vector<FilterId>> partials(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (slices[s].empty()) continue;
    pool_.submit([this, s, doc_terms, &options, &slices, &partials] {
      // Each worker owns a scratch; two shard tasks landing on the same
      // worker run back-to-back, and the epoch bump isolates them.
      const std::size_t w = common::ThreadPool::current_worker_index();
      match_shard(shards_[s], slices[s], doc_terms, options, partials[s],
                  stats_[s], workers_[w].scratch);
    });
  }
  pool_.wait_idle();

  std::vector<FilterId> out;
  std::size_t total = 0;
  for (const auto& p : partials) total += p.size();
  out.reserve(total);
  for (const auto& p : partials) out.insert(out.end(), p.begin(), p.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::vector<FilterId>> ParallelMatcher::match_batch(
    std::span<const std::span<const TermId>> docs,
    const MatchOptions& options) {
  std::vector<std::vector<FilterId>> results(docs.size());
  if (docs.empty()) return results;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    tasks.push_back([this, doc = docs[i], &options, &result = results[i]] {
      const std::size_t w = common::ThreadPool::current_worker_index();
      match_document(doc, options, result, workers_[w]);
    });
  }
  pool_.submit_bulk(std::move(tasks));
  pool_.wait_idle();

  // Fold the per-worker stat deltas into the shared counters under the
  // barrier (single-threaded here).
  for (WorkerState& ws : workers_) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      accumulate(stats_[s], ws.stats[s]);
      ws.stats[s] = ShardStats{};
    }
  }
  return results;
}

std::vector<FilterId> ParallelMatcher::match_sequential(
    std::span<const TermId> doc_terms, const MatchOptions& options) {
  std::vector<FilterId> out;
  match_document(doc_terms, options, out, sequential_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    accumulate(stats_[s], sequential_.stats[s]);
    sequential_.stats[s] = ShardStats{};
  }
  return out;
}

double ParallelMatcher::shard_imbalance() const {
  std::vector<double> load(shards_.size());
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    load[s] = static_cast<double>(stats_[s].postings_scanned);
    total += stats_[s].postings_scanned;
  }
  if (total == 0) {
    total = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      load[s] = static_cast<double>(shards_[s].index.total_postings());
      total += shards_[s].index.total_postings();
    }
    if (total == 0) return 1.0;
  }
  return common::peak_to_mean(load);
}

void ParallelMatcher::export_metrics(obs::Registry& registry,
                                     std::string_view prefix) const {
  const std::string base(prefix);
  registry.gauge(base + ".shards").set(static_cast<double>(shards_.size()));
  registry.gauge(base + ".threads")
      .set(static_cast<double>(pool_.thread_count()));
  registry.gauge(base + ".shard_imbalance").set(shard_imbalance());
  ShardStats totals;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats& st = stats_[s];
    accumulate(totals, st);
    const std::string shard = std::to_string(s);
    registry.gauge(obs::labeled(base + ".postings_scanned", "shard", shard))
        .set(static_cast<double>(st.postings_scanned));
    registry.gauge(obs::labeled(base + ".candidates_verified", "shard", shard))
        .set(static_cast<double>(st.candidates_verified));
    registry.gauge(obs::labeled(base + ".index_postings", "shard", shard))
        .set(static_cast<double>(shards_[s].index.total_postings()));
  }
  registry.gauge(base + ".lists_retrieved")
      .set(static_cast<double>(totals.lists_retrieved));
  registry.gauge(base + ".postings_scanned")
      .set(static_cast<double>(totals.postings_scanned));
  registry.gauge(base + ".candidates_verified")
      .set(static_cast<double>(totals.candidates_verified));
  registry.gauge(base + ".matches_emitted")
      .set(static_cast<double>(totals.matches_emitted));
  // Bloom-gate counters: exported only when the gate actually fired, so
  // runs without a summary (or with the gate off) keep their metric layout.
  if (totals.bloom_rejects > 0) {
    registry.gauge(base + ".bloom_rejects")
        .set(static_cast<double>(totals.bloom_rejects));
  }
  if (totals.postings_skipped > 0) {
    registry.gauge(base + ".postings_skipped")
        .set(static_cast<double>(totals.postings_skipped));
  }
  // Codec counter: only frozen-compressed shards decode blocks, so raw-mode
  // runs keep their metric layout byte-identical.
  if (totals.blocks_decoded > 0) {
    registry.gauge(base + ".blocks_decoded")
        .set(static_cast<double>(totals.blocks_decoded));
  }
}

}  // namespace move::index
