#include "index/filter_store.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/simd.hpp"

namespace move::index {

FilterId FilterStore::add(std::span<const TermId> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("FilterStore::add: empty filter");
  }
  if (size() >= 0xffffffffULL) {
    throw std::length_error("FilterStore: filter id space exhausted");
  }
  const FilterId id{static_cast<std::uint32_t>(size())};
  flat_terms_.insert(flat_terms_.end(), terms.begin(), terms.end());
  offsets_.push_back(flat_terms_.size());
  return id;
}

std::span<const TermId> FilterStore::terms(FilterId id) const {
  if (id.value >= size()) {
    throw std::out_of_range("FilterStore::terms: invalid FilterId");
  }
  const auto begin = offsets_[id.value];
  const auto end = offsets_[id.value + 1];
  return {flat_terms_.data() + begin, end - begin};
}

namespace {

/// Size ratio beyond which per-element galloping beats the linear merge.
constexpr std::size_t kGallopRatio = 16;

/// |small ∩ large| by exponential + binary search of each small element in
/// the (sorted) large side. O(|small| * log |large|) — the win when a 3-term
/// filter is verified against a 6000-term TREC-AP article. The binary search
/// tail runs through simd::lower_bound_u32, which finishes small windows
/// with one vector compare instead of the last ~5 branchy halvings; the
/// returned position is the lower bound by definition, so scalar and SIMD
/// dispatches are interchangeable.
std::size_t gallop_intersection(std::span<const TermId> small,
                                std::span<const TermId> large) {
  static_assert(sizeof(TermId) == sizeof(std::uint32_t));
  const std::uint32_t* base = &large.data()->value;
  const std::size_t n = large.size();
  std::size_t count = 0;
  std::size_t lo = 0;
  for (const TermId t : small) {
    // Exponential probe from the previous position keeps runs of nearby
    // values cheap; the binary search finishes within the bracketed window.
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < n && base[hi] < t.value) {
      lo = hi;
      hi += std::min(step, n - hi);
      step *= 2;
    }
    lo += simd::lower_bound_u32(base + lo, hi - lo, t.value);
    if (lo == n) break;
    if (base[lo] == t.value) {
      ++count;
      ++lo;
    }
  }
  return count;
}

}  // namespace

std::size_t FilterStore::intersection_size(
    std::span<const TermId> doc_terms, std::span<const TermId> filter_terms) {
  std::span<const TermId> small = doc_terms, large = filter_terms;
  if (small.size() > large.size()) std::swap(small, large);
  if (small.empty()) return 0;
  if (large.size() / small.size() >= kGallopRatio) {
    return gallop_intersection(small, large);
  }
  std::size_t count = 0;
  auto d = small.begin();
  auto f = large.begin();
  while (d != small.end() && f != large.end()) {
    if (*d < *f) {
      ++d;
    } else if (*f < *d) {
      ++f;
    } else {
      ++count;
      ++d;
      ++f;
    }
  }
  return count;
}

std::size_t FilterStore::required_overlap(std::size_t filter_term_count,
                                          const MatchOptions& options) {
  switch (options.semantics) {
    case MatchSemantics::kAnyTerm:
      return 1;
    case MatchSemantics::kAllTerms:
      return filter_term_count;
    case MatchSemantics::kThreshold: {
      const auto needed = static_cast<std::size_t>(std::ceil(
          options.threshold * static_cast<double>(filter_term_count)));
      return std::max<std::size_t>(1, needed);
    }
  }
  return 1;
}

bool FilterStore::matches(FilterId id, std::span<const TermId> doc_terms,
                          const MatchOptions& options) const {
  const auto filter_terms = terms(id);
  return intersection_size(doc_terms, filter_terms) >=
         required_overlap(filter_terms.size(), options);
}

}  // namespace move::index
