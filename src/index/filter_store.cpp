#include "index/filter_store.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace move::index {

FilterId FilterStore::add(std::span<const TermId> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("FilterStore::add: empty filter");
  }
  if (size() >= 0xffffffffULL) {
    throw std::length_error("FilterStore: filter id space exhausted");
  }
  const FilterId id{static_cast<std::uint32_t>(size())};
  flat_terms_.insert(flat_terms_.end(), terms.begin(), terms.end());
  offsets_.push_back(flat_terms_.size());
  return id;
}

std::span<const TermId> FilterStore::terms(FilterId id) const {
  if (id.value >= size()) {
    throw std::out_of_range("FilterStore::terms: invalid FilterId");
  }
  const auto begin = offsets_[id.value];
  const auto end = offsets_[id.value + 1];
  return {flat_terms_.data() + begin, end - begin};
}

std::size_t FilterStore::intersection_size(
    std::span<const TermId> doc_terms, std::span<const TermId> filter_terms) {
  std::size_t count = 0;
  auto d = doc_terms.begin();
  auto f = filter_terms.begin();
  while (d != doc_terms.end() && f != filter_terms.end()) {
    if (*d < *f) {
      ++d;
    } else if (*f < *d) {
      ++f;
    } else {
      ++count;
      ++d;
      ++f;
    }
  }
  return count;
}

bool FilterStore::matches(FilterId id, std::span<const TermId> doc_terms,
                          const MatchOptions& options) const {
  const auto filter_terms = terms(id);
  const std::size_t common = intersection_size(doc_terms, filter_terms);
  switch (options.semantics) {
    case MatchSemantics::kAnyTerm:
      return common >= 1;
    case MatchSemantics::kAllTerms:
      return common == filter_terms.size();
    case MatchSemantics::kThreshold: {
      const auto needed = static_cast<std::size_t>(std::ceil(
          options.threshold * static_cast<double>(filter_terms.size())));
      return common >= std::max<std::size_t>(1, needed);
    }
  }
  return false;
}

}  // namespace move::index
