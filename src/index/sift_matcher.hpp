#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "index/filter_store.hpp"
#include "index/inverted_index.hpp"

/// SIFT-style centralized matcher (Yan & Garcia-Molina, TODS 1999).
///
/// The classic counter algorithm the paper uses on every node: retrieve the
/// posting lists of the document's terms from the local inverted list,
/// accumulate per-filter hit counts, and emit the filters whose counts
/// satisfy the match semantics. Both the RS baseline (full |d|-list
/// retrieval) and MOVE/IL (single-list retrieval + verification against the
/// stored term set) are expressed through this class.
namespace move::index {

class SiftMatcher {
 public:
  /// @param store   full filter term sets (for candidate verification)
  /// @param index   local inverted list (full or single-term mode)
  SiftMatcher(const FilterStore& store, const InvertedIndex& index)
      : store_(&store), index_(&index) {}

  /// Full SIFT match: retrieves the posting list of every document term that
  /// is locally indexed. With kAnyTerm semantics the counter pass alone
  /// decides; with kAllTerms/kThreshold candidates are verified against the
  /// stored filter term sets.
  ///
  /// @param doc_terms  sorted, deduplicated document term set
  /// @param out        matching FilterIds, ascending, deduplicated
  /// @returns accounting of the IO this match performed
  MatchAccounting match(std::span<const TermId> doc_terms,
                        const MatchOptions& options,
                        std::vector<FilterId>& out) const;

  /// Single-list match (the MOVE/IL home-node fast path, §III-B): retrieves
  /// only the posting list of `home_term`, then verifies candidates under
  /// `options`. Correct for any semantics because every filter registered
  /// here contains `home_term`, and across the document's home nodes the
  /// union covers every filter sharing a term with the document.
  MatchAccounting match_single_list(TermId home_term,
                                    std::span<const TermId> doc_terms,
                                    const MatchOptions& options,
                                    std::vector<FilterId>& out) const;

 private:
  const FilterStore* store_;
  const InvertedIndex* index_;
};

}  // namespace move::index
