#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "index/filter_store.hpp"
#include "index/inverted_index.hpp"
#include "index/match_scratch.hpp"

/// SIFT-style centralized matcher (Yan & Garcia-Molina, TODS 1999).
///
/// The classic counter algorithm the paper uses on every node: retrieve the
/// posting lists of the document's terms from the local inverted list,
/// accumulate per-filter hit counts, and emit the filters whose counts
/// satisfy the match semantics. Both the RS baseline (full |d|-list
/// retrieval) and MOVE/IL (single-list retrieval + verification against the
/// stored term set) are expressed through this class.
///
/// Two counter kernels coexist:
///  * the legacy hash-map kernel (`match` without a scratch) — kept as the
///    reference/baseline the micro bench compares against;
///  * the epoch-stamped kernel (`match`/`match_lists` with a MatchScratch) —
///    allocation-free once warm: dense counter arrays with O(1) logical
///    clear, and kAnyTerm unions as k-way merges of the (sorted-by-
///    construction) posting lists instead of concat + sort + unique.
/// Both return identical results and identical MatchAccounting.
///
/// **Term-summary gate** (scratch kernels, on by default via
/// MatchOptions::use_term_summary): when the index is frozen, document terms
/// are screened against its blocked-Bloom summary first; negatives skip the
/// postings() probe (`postings_skipped`), and a document whose every term is
/// screened out short-circuits to an empty result (`bloom_rejects`). The
/// summary has no false negatives and absent terms have no postings, so the
/// gate never changes results and never changes lists_retrieved /
/// postings_scanned / candidates_verified.
///
/// **Storage modes**: every kernel runs unmodified on all three InvertedIndex
/// storage modes. On a frozen-compressed index the counter pass streams
/// block-at-a-time decodes through MatchScratch::bump_list (the SIMD kernel
/// sees the same spans it would on raw storage) and the kAnyTerm union
/// decodes the retrieved lists into the scratch arena before merging.
/// Results and the classic accounting counters are identical across modes;
/// only MatchAccounting::blocks_decoded distinguishes them.
namespace move::index {

class SiftMatcher {
 public:
  /// @param store   full filter term sets (for candidate verification)
  /// @param index   local inverted list (full or single-term mode)
  /// @param full_index  caller guarantee that `index` is a FULL index over
  ///     `store` (every term of every filter posted, no duplicate postings).
  ///     Under that guarantee the scratch kernel's counter already equals
  ///     |d ∩ f|, so kAllTerms/kThreshold verification becomes an O(1)
  ///     compare against FilterStore::required_overlap instead of an
  ///     intersection scan. Results and accounting are identical either way;
  ///     leave false (the default) for single-term / IL indexes.
  explicit SiftMatcher(const FilterStore& store, const InvertedIndex& index,
                       bool full_index = false)
      : store_(&store), index_(&index), full_index_(full_index) {}

  /// Full SIFT match: retrieves the posting list of every document term that
  /// is locally indexed. With kAnyTerm semantics the counter pass alone
  /// decides; with kAllTerms/kThreshold candidates are verified against the
  /// stored filter term sets. Legacy hash-map kernel.
  ///
  /// @param doc_terms  sorted, deduplicated document term set
  /// @param out        matching FilterIds, ascending, deduplicated
  /// @returns accounting of the IO this match performed
  MatchAccounting match(std::span<const TermId> doc_terms,
                        const MatchOptions& options,
                        std::vector<FilterId>& out) const;

  /// Same contract as match(), on the epoch-stamped counter kernel:
  /// per-filter counts live in `scratch`'s dense arrays (O(1) clear between
  /// documents) and the kAnyTerm union is a k-way merge. Allocation-free
  /// once `scratch` and `out` are warm.
  MatchAccounting match(std::span<const TermId> doc_terms,
                        const MatchOptions& options,
                        std::vector<FilterId>& out,
                        MatchScratch& scratch) const;

  /// Single-list match (the MOVE/IL home-node fast path, §III-B): retrieves
  /// only the posting list of `home_term`, then verifies candidates under
  /// `options`. Correct for any semantics because every filter registered
  /// here contains `home_term`, and across the document's home nodes the
  /// union covers every filter sharing a term with the document.
  /// Allocation-free beyond `out`'s capacity: the posting list is sorted by
  /// construction, so the result needs no sort.
  MatchAccounting match_single_list(TermId home_term,
                                    std::span<const TermId> doc_terms,
                                    const MatchOptions& options,
                                    std::vector<FilterId>& out) const;

  /// match_single_list with a caller-provided scratch: on a
  /// frozen-compressed index the block decodes reuse scratch's buffer
  /// instead of a per-call allocation. Results and accounting identical.
  MatchAccounting match_single_list(TermId home_term,
                                    std::span<const TermId> doc_terms,
                                    const MatchOptions& options,
                                    std::vector<FilterId>& out,
                                    MatchScratch& scratch) const;

  /// Union of match_single_list over several home terms, deduplicated via
  /// `scratch`'s epoch stamps (each candidate is verified at most once even
  /// when it appears on many lists). `out` is ascending, deduplicated —
  /// identical to concatenating per-term results and sort+unique'ing. This
  /// is the per-shard kernel of ParallelMatcher's batch path.
  MatchAccounting match_lists(std::span<const TermId> home_terms,
                              std::span<const TermId> doc_terms,
                              const MatchOptions& options,
                              std::vector<FilterId>& out,
                              MatchScratch& scratch) const;

 private:
  MatchAccounting match_single_list_impl(TermId home_term,
                                         std::span<const TermId> doc_terms,
                                         const MatchOptions& options,
                                         std::vector<FilterId>& out,
                                         std::vector<FilterId>& decode_buf)
      const;

  /// True when `filter`'s counter (== |d ∩ f| under the full_index
  /// guarantee) satisfies `options`. The O(1) replacement for
  /// store_->matches on the scratch kernel's verification pass.
  [[nodiscard]] bool count_satisfies(FilterId filter, std::uint32_t count,
                                     const MatchOptions& options) const {
    return count >=
           FilterStore::required_overlap(store_->term_count(filter), options);
  }

  const FilterStore* store_;
  const InvertedIndex* index_;
  bool full_index_ = false;
};

}  // namespace move::index
