#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "index/filter_store.hpp"
#include "index/inverted_index.hpp"
#include "index/match_scratch.hpp"
#include "workload/term_set_table.hpp"

/// Real-parallel single-node matcher.
///
/// Terms are hash-partitioned into shards (the same IL-style partitioning
/// the cluster uses across nodes, §III-B, collapsed onto one machine's
/// cores): shard s owns every posting list of terms with hash(t) % S == s
/// and stores the full term set of each filter it indexes, so it can verify
/// threshold/conjunctive candidates locally. Shard indexes are frozen into
/// their flat posting arenas at construction, and every kernel runs on the
/// epoch-stamped counter scratch — the hot loop is allocation-free.
///
/// Two dispatch shapes:
///  * match() fans ONE document's term slices out to the owning shards and
///    barriers on the pool — the right shape for a latency-sensitive single
///    document, but it pays a full wait_idle per document;
///  * match_batch() enqueues one task per DOCUMENT (each task walks all
///    shards for its document with a per-worker scratch), submitted with a
///    single bulk lock acquisition and ONE wait_idle for the whole batch —
///    the throughput shape the paper's batch experiments (Fig. 6-8) measure.
///
/// Term sharding (rather than filter sharding) is what makes large articles
/// parallelize: each shard touches only its own slice of the document's
/// terms instead of re-scanning all |d| of them.
namespace move::obs {
class Registry;
}

namespace move::index {

/// Cumulative per-shard matching-cost counters. During match()/
/// match_sequential() each shard slot has exactly one writer (the task
/// matching that shard); match_batch() accumulates into per-worker stats and
/// merges them under the batch barrier. Readers synchronize via wait_idle,
/// so plain integers suffice.
struct ShardStats {
  std::uint64_t lists_retrieved = 0;
  std::uint64_t postings_scanned = 0;
  std::uint64_t candidates_verified = 0;
  std::uint64_t matches_emitted = 0;  ///< pre-dedup matches from this shard
  std::uint64_t bloom_rejects = 0;    ///< doc slices short-circuited by summary
  std::uint64_t postings_skipped = 0;  ///< index probes avoided by summary
  std::uint64_t blocks_decoded = 0;  ///< compressed blocks decoded (0 on raw)
};

class ParallelMatcher {
 public:
  /// Builds shards from the filter trace. FilterId i == row i, as for the
  /// schemes.
  /// @param shards   number of partitions (0 = one per pool thread)
  /// @param threads  worker threads (0 = hardware concurrency)
  ParallelMatcher(const workload::TermSetTable& filters, std::size_t shards,
                  std::size_t threads = 0);

  /// Matches one document across all shards in parallel; global FilterIds,
  /// ascending. Safe to call from one thread at a time (each call uses the
  /// whole pool).
  [[nodiscard]] std::vector<FilterId> match(std::span<const TermId> doc_terms,
                                            const MatchOptions& options = {});

  /// Matches a whole batch of documents: one pool task per document, one
  /// bulk enqueue, one barrier. Result i corresponds to docs[i] and equals
  /// match(docs[i]) exactly. Safe to call from one thread at a time.
  [[nodiscard]] std::vector<std::vector<FilterId>> match_batch(
      std::span<const std::span<const TermId>> docs,
      const MatchOptions& options = {});

  /// Sequential reference (same shards, no pool) for verification/benching.
  [[nodiscard]] std::vector<FilterId> match_sequential(
      std::span<const TermId> doc_terms, const MatchOptions& options = {});

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return pool_.thread_count();
  }
  [[nodiscard]] std::size_t filter_count() const noexcept {
    return filter_count_;
  }

  /// Static posting-list mass owned by shard `s` (index size, not traffic).
  [[nodiscard]] std::uint64_t shard_postings(std::size_t s) const {
    return shards_.at(s).index.total_postings();
  }

  /// Cumulative per-shard counters since construction or reset_stats().
  [[nodiscard]] std::span<const ShardStats> shard_stats() const noexcept {
    return stats_;
  }

  /// Peak-to-mean of per-shard postings scanned (1.0 = perfectly balanced).
  /// Before any match ran, falls back to the static index mass per shard so
  /// benches can report structural skew too; 1.0 for an empty index.
  [[nodiscard]] double shard_imbalance() const;

  void reset_stats() noexcept {
    stats_.assign(shards_.size(), ShardStats{});
  }

  /// Snapshots totals + per-shard counters into `registry` as gauges:
  /// `<prefix>.shards`, `<prefix>.shard_imbalance`,
  /// `<prefix>.postings_scanned{shard=s}` etc.
  void export_metrics(obs::Registry& registry,
                      std::string_view prefix = "index.parallel") const;

 private:
  struct Shard {
    FilterStore store;                 // filters owning >= 1 term here
    InvertedIndex index;               // posting lists of owned terms only
    std::vector<FilterId> global_ids;  // local id -> global id
    std::unordered_map<std::uint32_t, FilterId> local_of;  // global -> local
  };

  /// Everything one worker (or the sequential caller) needs to match
  /// documents without touching shared state: the counter scratch, reusable
  /// per-shard term slices, a partial-result buffer, and stats deltas that
  /// the batch barrier merges into stats_.
  struct WorkerState {
    MatchScratch scratch;
    std::vector<std::vector<TermId>> slices;  // one per shard
    std::vector<FilterId> partial;
    std::vector<ShardStats> stats;            // one per shard
  };

  [[nodiscard]] std::size_t shard_of(TermId t) const noexcept;

  /// Matches the shard's slice of the document (verifying candidates
  /// against the full document under non-boolean semantics).
  void match_shard(const Shard& shard,
                   std::span<const TermId> shard_terms,
                   std::span<const TermId> doc_terms,
                   const MatchOptions& options,
                   std::vector<FilterId>& out, ShardStats& stats,
                   MatchScratch& scratch) const;

  /// Matches one whole document on the calling thread using `state`'s
  /// buffers; stats deltas go to state.stats.
  void match_document(std::span<const TermId> doc_terms,
                      const MatchOptions& options, std::vector<FilterId>& out,
                      WorkerState& state) const;

  std::vector<Shard> shards_;
  std::vector<ShardStats> stats_;  // parallel to shards_
  std::size_t filter_count_ = 0;
  common::ThreadPool pool_;
  std::vector<WorkerState> workers_;  // one per pool thread (batch path)
  WorkerState sequential_;            // for the calling thread
};

}  // namespace move::index
