#pragma once

#include <memory>
#include <unordered_map>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "index/filter_store.hpp"
#include "index/inverted_index.hpp"
#include "workload/term_set_table.hpp"

/// Real-parallel single-node matcher.
///
/// Terms are hash-partitioned into shards (the same IL-style partitioning
/// the cluster uses across nodes, §III-B, collapsed onto one machine's
/// cores): shard s owns every posting list of terms with hash(t) % S == s
/// and stores the full term set of each filter it indexes, so it can verify
/// threshold/conjunctive candidates locally. Matching a document fans its
/// terms out to the owning shards on a thread pool; the union of shard
/// results is exactly the sequential result.
///
/// Term sharding (rather than filter sharding) is what makes large articles
/// parallelize: each shard touches only its own slice of the document's
/// terms instead of re-scanning all |d| of them.
namespace move::index {

class ParallelMatcher {
 public:
  /// Builds shards from the filter trace. FilterId i == row i, as for the
  /// schemes.
  /// @param shards   number of partitions (0 = one per pool thread)
  /// @param threads  worker threads (0 = hardware concurrency)
  ParallelMatcher(const workload::TermSetTable& filters, std::size_t shards,
                  std::size_t threads = 0);

  /// Matches one document across all shards in parallel; global FilterIds,
  /// ascending. Safe to call from one thread at a time (each call uses the
  /// whole pool).
  [[nodiscard]] std::vector<FilterId> match(std::span<const TermId> doc_terms,
                                            const MatchOptions& options = {});

  /// Sequential reference (same shards, no pool) for verification/benching.
  [[nodiscard]] std::vector<FilterId> match_sequential(
      std::span<const TermId> doc_terms, const MatchOptions& options = {});

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return pool_.thread_count();
  }
  [[nodiscard]] std::size_t filter_count() const noexcept {
    return filter_count_;
  }

 private:
  struct Shard {
    FilterStore store;                 // filters owning >= 1 term here
    InvertedIndex index;               // posting lists of owned terms only
    std::vector<FilterId> global_ids;  // local id -> global id
    std::unordered_map<std::uint32_t, FilterId> local_of;  // global -> local
  };

  [[nodiscard]] std::size_t shard_of(TermId t) const noexcept;

  /// Matches the shard's slice of the document (verifying candidates
  /// against the full document under non-boolean semantics).
  void match_shard(const Shard& shard,
                   std::span<const TermId> shard_terms,
                   std::span<const TermId> doc_terms,
                   const MatchOptions& options,
                   std::vector<FilterId>& out) const;

  std::vector<Shard> shards_;
  std::size_t filter_count_ = 0;
  common::ThreadPool pool_;
};

}  // namespace move::index
