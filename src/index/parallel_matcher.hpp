#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "index/filter_store.hpp"
#include "index/inverted_index.hpp"
#include "workload/term_set_table.hpp"

/// Real-parallel single-node matcher.
///
/// Terms are hash-partitioned into shards (the same IL-style partitioning
/// the cluster uses across nodes, §III-B, collapsed onto one machine's
/// cores): shard s owns every posting list of terms with hash(t) % S == s
/// and stores the full term set of each filter it indexes, so it can verify
/// threshold/conjunctive candidates locally. Matching a document fans its
/// terms out to the owning shards on a thread pool; the union of shard
/// results is exactly the sequential result.
///
/// Term sharding (rather than filter sharding) is what makes large articles
/// parallelize: each shard touches only its own slice of the document's
/// terms instead of re-scanning all |d| of them.
namespace move::obs {
class Registry;
}

namespace move::index {

/// Cumulative per-shard matching-cost counters. Each shard slot has exactly
/// one writer (the pool task matching that shard); readers synchronize via
/// the pool's wait_idle barrier, so plain integers suffice.
struct ShardStats {
  std::uint64_t lists_retrieved = 0;
  std::uint64_t postings_scanned = 0;
  std::uint64_t candidates_verified = 0;
  std::uint64_t matches_emitted = 0;  ///< pre-dedup matches from this shard
};

class ParallelMatcher {
 public:
  /// Builds shards from the filter trace. FilterId i == row i, as for the
  /// schemes.
  /// @param shards   number of partitions (0 = one per pool thread)
  /// @param threads  worker threads (0 = hardware concurrency)
  ParallelMatcher(const workload::TermSetTable& filters, std::size_t shards,
                  std::size_t threads = 0);

  /// Matches one document across all shards in parallel; global FilterIds,
  /// ascending. Safe to call from one thread at a time (each call uses the
  /// whole pool).
  [[nodiscard]] std::vector<FilterId> match(std::span<const TermId> doc_terms,
                                            const MatchOptions& options = {});

  /// Sequential reference (same shards, no pool) for verification/benching.
  [[nodiscard]] std::vector<FilterId> match_sequential(
      std::span<const TermId> doc_terms, const MatchOptions& options = {});

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return pool_.thread_count();
  }
  [[nodiscard]] std::size_t filter_count() const noexcept {
    return filter_count_;
  }

  /// Static posting-list mass owned by shard `s` (index size, not traffic).
  [[nodiscard]] std::uint64_t shard_postings(std::size_t s) const {
    return shards_.at(s).index.total_postings();
  }

  /// Cumulative per-shard counters since construction or reset_stats().
  [[nodiscard]] std::span<const ShardStats> shard_stats() const noexcept {
    return stats_;
  }

  /// Peak-to-mean of per-shard postings scanned (1.0 = perfectly balanced).
  /// Before any match ran, falls back to the static index mass per shard so
  /// benches can report structural skew too; 1.0 for an empty index.
  [[nodiscard]] double shard_imbalance() const;

  void reset_stats() noexcept {
    stats_.assign(shards_.size(), ShardStats{});
  }

  /// Snapshots totals + per-shard counters into `registry` as gauges:
  /// `<prefix>.shards`, `<prefix>.shard_imbalance`,
  /// `<prefix>.postings_scanned{shard=s}` etc.
  void export_metrics(obs::Registry& registry,
                      std::string_view prefix = "index.parallel") const;

 private:
  struct Shard {
    FilterStore store;                 // filters owning >= 1 term here
    InvertedIndex index;               // posting lists of owned terms only
    std::vector<FilterId> global_ids;  // local id -> global id
    std::unordered_map<std::uint32_t, FilterId> local_of;  // global -> local
  };

  [[nodiscard]] std::size_t shard_of(TermId t) const noexcept;

  /// Matches the shard's slice of the document (verifying candidates
  /// against the full document under non-boolean semantics).
  void match_shard(const Shard& shard,
                   std::span<const TermId> shard_terms,
                   std::span<const TermId> doc_terms,
                   const MatchOptions& options,
                   std::vector<FilterId>& out, ShardStats& stats) const;

  std::vector<Shard> shards_;
  std::vector<ShardStats> stats_;  // parallel to shards_, one writer each
  std::size_t filter_count_ = 0;
  common::ThreadPool pool_;
};

}  // namespace move::index
