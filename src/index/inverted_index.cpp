#include "index/inverted_index.hpp"

#include <algorithm>

namespace move::index {

void InvertedIndex::add(FilterId filter, std::span<const TermId> index_terms) {
  for (TermId term : index_terms) {
    lists_[term].push_back(filter);
    ++total_postings_;
  }
}

void InvertedIndex::remove(FilterId filter,
                           std::span<const TermId> index_terms) {
  for (TermId term : index_terms) {
    auto it = lists_.find(term);
    if (it == lists_.end()) continue;
    auto& list = it->second;
    const auto removed = std::erase(list, filter);
    total_postings_ -= removed;
    if (list.empty()) lists_.erase(it);
  }
}

std::span<const FilterId> InvertedIndex::postings(TermId term) const {
  auto it = lists_.find(term);
  if (it == lists_.end()) return {};
  return it->second;
}

std::vector<TermId> InvertedIndex::indexed_terms() const {
  std::vector<TermId> terms;
  terms.reserve(lists_.size());
  for (const auto& [term, list] : lists_) terms.push_back(term);
  return terms;
}

}  // namespace move::index
