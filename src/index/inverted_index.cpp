#include "index/inverted_index.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace move::index {

namespace {

std::atomic<bool>& compressed_default_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("MOVE_INDEX_COMPRESSED");
    return env != nullptr && env[0] == '1';
  }()};
  return flag;
}

[[noreturn]] void throw_corrupt(codec::DecodeStatus status) {
  throw std::runtime_error(
      std::string("InvertedIndex: corrupt compressed arena: ") +
      codec::to_string(status));
}

}  // namespace

bool default_compressed_postings() noexcept {
  return compressed_default_flag().load(std::memory_order_relaxed);
}

void set_default_compressed_postings(bool on) noexcept {
  compressed_default_flag().store(on, std::memory_order_relaxed);
}

void InvertedIndex::add(FilterId filter, std::span<const TermId> index_terms) {
  if (frozen()) thaw();
  for (TermId term : index_terms) {
    auto& list = lists_[term];
    if (list.empty() || list.back() < filter) {
      // Registration streams filters in ascending id order, so appending
      // preserves the sorted invariant without any comparison beyond back().
      list.push_back(filter);
    } else {
      // Out-of-order re-registration (e.g. a MOVE grid indexing an already
      // stored copy under a later term): keep the list sorted.
      list.insert(std::lower_bound(list.begin(), list.end(), filter), filter);
    }
    assert(std::is_sorted(list.begin(), list.end()) &&
           "posting list must stay sorted by FilterId");
    ++total_postings_;
  }
}

void InvertedIndex::remove(FilterId filter,
                           std::span<const TermId> index_terms) {
  if (frozen()) thaw();
  for (TermId term : index_terms) {
    auto it = lists_.find(term);
    if (it == lists_.end()) continue;
    auto& list = it->second;
    const auto removed = std::erase(list, filter);
    total_postings_ -= removed;
    if (list.empty()) lists_.erase(it);
  }
}

std::uint32_t InvertedIndex::find_slot(TermId term) const {
  if (!slot_table_.empty()) {
    // Dense fast path: one predictable array load instead of a hash probe.
    if (term.value >= slot_table_.size()) return kNoSlot;
    return slot_table_[term.value];
  }
  const auto it = slot_of_.find(term);
  return it == slot_of_.end() ? kNoSlot : it->second;
}

std::span<const FilterId> InvertedIndex::postings(TermId term) const {
  if (mode_ == StorageMode::kFrozenCompressed) {
    throw std::logic_error(
        "InvertedIndex::postings: frozen-compressed lists have no span; use "
        "postings_into()/for_each_posting_block()");
  }
  if (mode_ == StorageMode::kFrozenRaw) {
    const std::uint32_t slot = find_slot(term);
    if (slot == kNoSlot) return {};
    const auto begin = offsets_[slot];
    const auto end = offsets_[slot + 1];
    return {flat_postings_.data() + begin, end - begin};
  }
  const auto it = lists_.find(term);
  if (it == lists_.end()) return {};
  return it->second;
}

std::size_t InvertedIndex::posting_count(TermId term) const {
  if (frozen()) {
    const std::uint32_t slot = find_slot(term);
    if (slot == kNoSlot) return 0;
    return offsets_[slot + 1] - offsets_[slot];
  }
  const auto it = lists_.find(term);
  return it == lists_.end() ? 0 : it->second.size();
}

std::span<const FilterId> InvertedIndex::postings_into(
    TermId term, std::vector<FilterId>& buf, MatchAccounting* acc) const {
  if (mode_ != StorageMode::kFrozenCompressed) return postings(term);
  const std::size_t n = posting_count(term);
  buf.resize(n);
  if (n > 0) decode_postings(term, buf, acc);
  return buf;
}

std::size_t InvertedIndex::decode_block_at(std::uint32_t slot, std::size_t b,
                                           std::size_t n,
                                           FilterId* out) const {
  const std::size_t count = std::min(block_size_, n - b * block_size_);
  const std::uint64_t base = comp_byte_offsets_[slot];
  const std::uint32_t skip_base = comp_skip_offsets_[slot];
  const std::uint64_t begin =
      b == 0 ? base : base + comp_skips_[skip_base + b - 1].byte_offset;
  const std::size_t blocks = (n + block_size_ - 1) / block_size_;
  const std::uint64_t end =
      b + 1 < blocks ? base + comp_skips_[skip_base + b].byte_offset
                     : comp_byte_offsets_[slot + 1];
  const std::span<const std::uint8_t> bytes(comp_bytes_.data() + begin,
                                            end - begin);
  const codec::BlockDecode r =
      b == 0 ? codec::decode_first_block(bytes,
                                         static_cast<std::uint32_t>(count), out)
             : codec::decode_block(bytes, comp_skips_[skip_base + b - 1].first_id,
                                   static_cast<std::uint32_t>(count), out);
  if (r.status != codec::DecodeStatus::kOk) throw_corrupt(r.status);
  return count;
}

void InvertedIndex::decode_postings(TermId term, std::span<FilterId> out,
                                    MatchAccounting* acc) const {
  assert(mode_ == StorageMode::kFrozenCompressed);
  const std::uint32_t slot = find_slot(term);
  if (slot == kNoSlot) {
    assert(out.empty());
    return;
  }
  const std::size_t n = offsets_[slot + 1] - offsets_[slot];
  assert(out.size() == n && "decode_postings needs posting_count(term) room");
  const std::size_t blocks = (n + block_size_ - 1) / block_size_;
  for (std::size_t b = 0; b < blocks; ++b) {
    decode_block_at(slot, b, n, out.data() + b * block_size_);
    if (acc != nullptr) ++acc->blocks_decoded;
  }
}

bool InvertedIndex::posting_contains(TermId term, FilterId filter) const {
  if (mode_ == StorageMode::kMutable) {
    const auto it = lists_.find(term);
    if (it == lists_.end()) return false;
    return std::binary_search(it->second.begin(), it->second.end(), filter);
  }
  if (mode_ == StorageMode::kFrozenRaw) {
    const auto list = postings(term);
    return std::binary_search(list.begin(), list.end(), filter);
  }
  const std::uint32_t slot = find_slot(term);
  if (slot == kNoSlot) return false;
  const std::size_t n = offsets_[slot + 1] - offsets_[slot];
  // Seek the one block that could hold `filter` via the skip directory:
  // block b >= 1 starts at skips[b-1].first_id, block 0 at the list head.
  const std::uint32_t skip_base = comp_skip_offsets_[slot];
  const std::uint32_t skip_count = comp_skip_offsets_[slot + 1] - skip_base;
  std::size_t b = 0;
  {
    // First skip entry with first_id > filter ends the candidate range.
    std::size_t lo = 0, hi = skip_count;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (comp_skips_[skip_base + mid].first_id <= filter.value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    b = lo;  // candidate block index (0 = head block)
  }
  std::vector<FilterId> buf(std::min(block_size_, n - b * block_size_));
  decode_block_at(slot, b, n, buf.data());
  return std::binary_search(buf.begin(), buf.end(), filter);
}

bool InvertedIndex::contains_term(TermId term) const {
  if (frozen()) return find_slot(term) != kNoSlot;
  return lists_.contains(term);
}

void InvertedIndex::finalize(const FinalizeOptions& options) {
  const StorageMode want = options.compress ? StorageMode::kFrozenCompressed
                                            : StorageMode::kFrozenRaw;
  if (frozen()) {
    if (mode_ == want &&
        (want != StorageMode::kFrozenCompressed ||
         block_size_ == options.block_size)) {
      return;  // idempotent re-finalize into the same layout
    }
    thaw();  // switching frozen layouts re-packs through the mutable form
  }
  assert(options.block_size > 0);
  arena_terms_.clear();
  arena_terms_.reserve(lists_.size());
  for (const auto& [term, list] : lists_) arena_terms_.push_back(term);
  std::sort(arena_terms_.begin(), arena_terms_.end());

  // offsets_ holds logical posting-count prefix sums in BOTH frozen modes;
  // for frozen-raw they double as flat_postings_ element offsets.
  offsets_.assign(1, 0);
  offsets_.reserve(arena_terms_.size() + 1);
  slot_of_.clear();
  slot_of_.reserve(arena_terms_.size());
  flat_postings_.clear();
  comp_bytes_.clear();
  comp_skips_.clear();
  comp_byte_offsets_.clear();
  comp_skip_offsets_.clear();
  block_size_ = options.block_size;
  if (!options.compress) {
    flat_postings_.reserve(total_postings_);
  } else {
    comp_byte_offsets_.assign(1, 0);
    comp_skip_offsets_.assign(1, 0);
  }

  std::uint64_t count_prefix = 0;
  for (std::uint32_t slot = 0; slot < arena_terms_.size(); ++slot) {
    const auto& list = lists_.at(arena_terms_[slot]);
    assert(std::is_sorted(list.begin(), list.end()) &&
           "posting list must be sorted before freezing");
    count_prefix += list.size();
    offsets_.push_back(count_prefix);
    slot_of_.emplace(arena_terms_[slot], slot);
    if (!options.compress) {
      flat_postings_.insert(flat_postings_.end(), list.begin(), list.end());
    } else {
      codec::EncodedList enc = codec::encode_list(list, block_size_);
      comp_bytes_.insert(comp_bytes_.end(), enc.bytes.begin(),
                         enc.bytes.end());
      comp_skips_.insert(comp_skips_.end(), enc.skips.begin(),
                         enc.skips.end());
      comp_byte_offsets_.push_back(comp_bytes_.size());
      comp_skip_offsets_.push_back(
          static_cast<std::uint32_t>(comp_skips_.size()));
    }
  }
  lists_.clear();
  mode_ = options.compress ? StorageMode::kFrozenCompressed
                           : StorageMode::kFrozenRaw;

  // Dense slot table: worth 4 bytes per id up to the max indexed term when
  // the id space is reasonably filled (an IL home node indexing a thin slice
  // of a huge vocabulary keeps the hash map instead). The bound is a
  // deterministic function of the index contents, so identical registrations
  // always pick the same lookup path.
  slot_table_.clear();
  if (!arena_terms_.empty()) {
    const std::size_t span =
        static_cast<std::size_t>(arena_terms_.back().value) + 1;
    if (span <= 8 * arena_terms_.size() + 1024) {
      slot_table_.assign(span, kNoSlot);
      for (std::uint32_t slot = 0; slot < arena_terms_.size(); ++slot) {
        slot_table_[arena_terms_[slot].value] = slot;
      }
    }
  }

  // Term summary: lets matchers reject zero-overlap documents (and skip
  // absent terms) without probing the index at all.
  summary_.emplace(arena_terms_.size());
  for (const TermId term : arena_terms_) summary_->insert(term);
}

void InvertedIndex::thaw() {
  lists_.reserve(arena_terms_.size());
  std::vector<FilterId> decoded;
  for (std::uint32_t slot = 0; slot < arena_terms_.size(); ++slot) {
    const std::size_t n = offsets_[slot + 1] - offsets_[slot];
    if (mode_ == StorageMode::kFrozenCompressed) {
      decoded.resize(n);
      const std::size_t blocks = (n + block_size_ - 1) / block_size_;
      for (std::size_t b = 0; b < blocks; ++b) {
        decode_block_at(slot, b, n, decoded.data() + b * block_size_);
      }
      lists_.emplace(arena_terms_[slot], decoded);
    } else {
      const auto begin = offsets_[slot];
      lists_.emplace(arena_terms_[slot],
                     std::vector<FilterId>(flat_postings_.begin() + begin,
                                           flat_postings_.begin() + begin + n));
    }
  }
  slot_of_.clear();
  arena_terms_.clear();
  offsets_.clear();
  flat_postings_.clear();
  comp_bytes_.clear();
  comp_skips_.clear();
  comp_byte_offsets_.clear();
  comp_skip_offsets_.clear();
  // The summary and slot table describe the arena being dropped; a mutated
  // index must not screen against a stale term set.
  slot_table_.clear();
  summary_.reset();
  mode_ = StorageMode::kMutable;
}

std::uint64_t InvertedIndex::posting_storage_bytes() const noexcept {
  if (mode_ == StorageMode::kFrozenCompressed) {
    return comp_bytes_.size() +
           comp_skips_.size() * sizeof(codec::SkipEntry);
  }
  return total_postings_ * sizeof(FilterId);
}

std::vector<TermId> InvertedIndex::indexed_terms() const {
  if (frozen()) return arena_terms_;
  std::vector<TermId> terms;
  terms.reserve(lists_.size());
  for (const auto& [term, list] : lists_) terms.push_back(term);
  return terms;
}

}  // namespace move::index
