#include "index/inverted_index.hpp"

#include <algorithm>
#include <cassert>

namespace move::index {

void InvertedIndex::add(FilterId filter, std::span<const TermId> index_terms) {
  if (frozen_) thaw();
  for (TermId term : index_terms) {
    auto& list = lists_[term];
    if (list.empty() || list.back() < filter) {
      // Registration streams filters in ascending id order, so appending
      // preserves the sorted invariant without any comparison beyond back().
      list.push_back(filter);
    } else {
      // Out-of-order re-registration (e.g. a MOVE grid indexing an already
      // stored copy under a later term): keep the list sorted.
      list.insert(std::lower_bound(list.begin(), list.end(), filter), filter);
    }
    assert(std::is_sorted(list.begin(), list.end()) &&
           "posting list must stay sorted by FilterId");
    ++total_postings_;
  }
}

void InvertedIndex::remove(FilterId filter,
                           std::span<const TermId> index_terms) {
  if (frozen_) thaw();
  for (TermId term : index_terms) {
    auto it = lists_.find(term);
    if (it == lists_.end()) continue;
    auto& list = it->second;
    const auto removed = std::erase(list, filter);
    total_postings_ -= removed;
    if (list.empty()) lists_.erase(it);
  }
}

std::span<const FilterId> InvertedIndex::postings(TermId term) const {
  if (frozen_) {
    std::uint32_t slot;
    if (!slot_table_.empty()) {
      // Dense fast path: one predictable array load instead of a hash probe.
      if (term.value >= slot_table_.size()) return {};
      slot = slot_table_[term.value];
      if (slot == kNoSlot) return {};
    } else {
      const auto it = slot_of_.find(term);
      if (it == slot_of_.end()) return {};
      slot = it->second;
    }
    const auto begin = offsets_[slot];
    const auto end = offsets_[slot + 1];
    return {flat_postings_.data() + begin, end - begin};
  }
  const auto it = lists_.find(term);
  if (it == lists_.end()) return {};
  return it->second;
}

bool InvertedIndex::contains_term(TermId term) const {
  if (frozen_) {
    if (!slot_table_.empty()) {
      return term.value < slot_table_.size() &&
             slot_table_[term.value] != kNoSlot;
    }
    return slot_of_.contains(term);
  }
  return lists_.contains(term);
}

void InvertedIndex::finalize() {
  if (frozen_) return;
  arena_terms_.clear();
  arena_terms_.reserve(lists_.size());
  for (const auto& [term, list] : lists_) arena_terms_.push_back(term);
  std::sort(arena_terms_.begin(), arena_terms_.end());

  offsets_.assign(1, 0);
  offsets_.reserve(arena_terms_.size() + 1);
  flat_postings_.clear();
  flat_postings_.reserve(total_postings_);
  slot_of_.clear();
  slot_of_.reserve(arena_terms_.size());
  for (std::uint32_t slot = 0; slot < arena_terms_.size(); ++slot) {
    const auto& list = lists_.at(arena_terms_[slot]);
    assert(std::is_sorted(list.begin(), list.end()) &&
           "posting list must be sorted before freezing");
    flat_postings_.insert(flat_postings_.end(), list.begin(), list.end());
    offsets_.push_back(flat_postings_.size());
    slot_of_.emplace(arena_terms_[slot], slot);
  }
  lists_.clear();
  frozen_ = true;

  // Dense slot table: worth 4 bytes per id up to the max indexed term when
  // the id space is reasonably filled (an IL home node indexing a thin slice
  // of a huge vocabulary keeps the hash map instead). The bound is a
  // deterministic function of the index contents, so identical registrations
  // always pick the same lookup path.
  slot_table_.clear();
  if (!arena_terms_.empty()) {
    const std::size_t span =
        static_cast<std::size_t>(arena_terms_.back().value) + 1;
    if (span <= 8 * arena_terms_.size() + 1024) {
      slot_table_.assign(span, kNoSlot);
      for (std::uint32_t slot = 0; slot < arena_terms_.size(); ++slot) {
        slot_table_[arena_terms_[slot].value] = slot;
      }
    }
  }

  // Term summary: lets matchers reject zero-overlap documents (and skip
  // absent terms) without probing the index at all.
  summary_.emplace(arena_terms_.size());
  for (const TermId term : arena_terms_) summary_->insert(term);
}

void InvertedIndex::thaw() {
  lists_.reserve(arena_terms_.size());
  for (std::uint32_t slot = 0; slot < arena_terms_.size(); ++slot) {
    const auto begin = offsets_[slot];
    const auto end = offsets_[slot + 1];
    lists_.emplace(arena_terms_[slot],
                   std::vector<FilterId>(flat_postings_.begin() + begin,
                                         flat_postings_.begin() + end));
  }
  slot_of_.clear();
  arena_terms_.clear();
  offsets_.clear();
  flat_postings_.clear();
  // The summary and slot table describe the arena being dropped; a mutated
  // index must not screen against a stale term set.
  slot_table_.clear();
  summary_.reset();
  frozen_ = false;
}

std::vector<TermId> InvertedIndex::indexed_terms() const {
  if (frozen_) return arena_terms_;
  std::vector<TermId> terms;
  terms.reserve(lists_.size());
  for (const auto& [term, list] : lists_) terms.push_back(term);
  return terms;
}

}  // namespace move::index
