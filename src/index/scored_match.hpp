#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "index/filter_store.hpp"
#include "index/inverted_index.hpp"
#include "index/match_scratch.hpp"

/// Vector-space-model scoring (§I: "a boolean model or vector space model
/// (VSM) can check whether a content item matches a filter").
///
/// Filters and documents are term sets, so the natural VSM instance is the
/// cosine of their binary incidence vectors:
///   score(d, f) = |d ∩ f| / sqrt(|d| * |f|)   in [0, 1].
/// A scored match returns every filter whose score reaches `min_score`,
/// optionally truncated to the `top_k` best — the ranked-alerts use case
/// (show a user only their strongest hits).
namespace move::index {

struct ScoredMatch {
  FilterId filter;
  double score = 0.0;

  friend bool operator==(const ScoredMatch&, const ScoredMatch&) = default;
};

struct ScoredMatchOptions {
  double min_score = 0.0;   ///< inclusive lower bound; 0 keeps any overlap
  std::size_t top_k = 0;    ///< 0 = unbounded
};

/// Binary-incidence cosine between sorted term sets.
[[nodiscard]] double cosine_score(std::span<const TermId> doc_terms,
                                  std::span<const TermId> filter_terms);

/// SIFT-style scored match over an inverted index: accumulates per-filter
/// hit counts from the document's posting lists, converts counts to cosine
/// scores, filters by `min_score`, and returns matches ordered by
/// descending score (ties by ascending FilterId).
[[nodiscard]] std::vector<ScoredMatch> scored_match(
    const FilterStore& store, const InvertedIndex& index,
    std::span<const TermId> doc_terms, const ScoredMatchOptions& options,
    MatchAccounting* accounting = nullptr);

/// Same contract, on the epoch-stamped counter kernel: candidate
/// accumulation uses `scratch`'s dense arrays instead of a per-call hash
/// map, so a reused scratch makes repeated scoring allocation-free apart
/// from the returned vector.
[[nodiscard]] std::vector<ScoredMatch> scored_match(
    const FilterStore& store, const InvertedIndex& index,
    std::span<const TermId> doc_terms, const ScoredMatchOptions& options,
    MatchScratch& scratch, MatchAccounting* accounting = nullptr);

}  // namespace move::index
