#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bloom/blocked_bloom.hpp"
#include "common/types.hpp"
#include "index/filter_store.hpp"
#include "index/posting_codec.hpp"

/// Local inverted list over registered filters (Fig. 3, "local inverted
/// list" store).
///
/// Maps TermId -> posting list of FilterIds. Two indexing modes mirror the
/// paper:
///  * full indexing (RS baseline): every term of every local filter gets a
///    posting entry — SIFT then retrieves |d| lists per document;
///  * single-term indexing (IL / MOVE): the home node of term t builds ONLY
///    the posting list for t, even though it stores the filters' full term
///    sets (§III-B) — matching retrieves exactly one list.
///
/// THREE storage modes trade mutability against scan speed and footprint
/// (storage_mode() reports the current one):
///
///  * **mutable** (the default): one heap `std::vector` per term, cheap to
///    grow during registration;
///  * **frozen-raw** (finalize() with compress=false): every posting list
///    packed into one flat u32 arena mirroring FilterStore's layout, so a
///    match scans contiguous memory instead of pointer-chasing per-term
///    heap blocks;
///  * **frozen-compressed** (finalize() with compress=true, or any
///    finalize() while `MOVE_INDEX_COMPRESSED=1` /
///    set_default_compressed_postings(true) is in effect): posting lists
///    stored as delta varint/Rice/run blocks with per-block skip entries
///    (see posting_codec.hpp) — >10x smaller than the raw arena on
///    home-term-grouped node workloads, whose delta=1 runs collapse to one
///    header byte per block. `postings()` cannot return a span in this mode
///    and throws; readers go through `posting_count()` / `postings_into()` /
///    `for_each_posting_block()` / `posting_contains()`, which work in every
///    mode (and are zero-copy outside the compressed one).
///
/// Freezing (either frozen mode) additionally builds the two matching
/// fast-path structures, identical across both frozen modes:
///  - a **term summary** — a blocked Bloom filter over every indexed term,
///    which lets SiftMatcher reject documents with zero local overlap (and
///    skip absent terms) without probing the index;
///  - a **dense slot table** — a flat term -> slot array replacing the hash
///    probe whenever term ids are dense enough to afford it.
///
/// Thaw rules (the frozen/thaw contract, unchanged by compression): any
/// mutation (add/remove) transparently thaws back to mutable mode,
/// rebuilding the per-term vectors — decoding them first when the arena was
/// compressed — and *invalidating* summary and slot table (they describe
/// only the frozen arena); a later finalize() rebuilds both, in whichever
/// storage mode it is asked for. Calling finalize() on an index frozen in
/// the OTHER frozen mode re-packs it through the same thaw path. Freezing
/// is purely an optimization — callers that interleave registration and
/// matching stay correct, they just lose the fast path until they
/// re-finalize.
///
/// Invariant (all modes): every posting list is sorted ascending by
/// FilterId. Registration appends ids in ascending order, so the common case
/// is a pure push_back; the rare out-of-order re-registration (a MOVE grid
/// indexing an existing copy under a new term) falls back to a sorted
/// insert. Matchers rely on this to skip per-match sorting (kAnyTerm unions
/// become k-way merges), and the compressed codec relies on it for
/// non-negative deltas.
namespace move::index {

/// Process-wide default for finalize()'s compress choice, mirroring
/// simd::force_scalar(): initialized from the MOVE_INDEX_COMPRESSED
/// environment variable ("1" = compressed), overridable at runtime. Lets
/// whole pipelines (cluster seal, ParallelMatcher construction, the figure
/// benches) switch storage modes with zero call-site changes — the
/// `check_determinism.sh --codec-diff` gate runs fig8a under both settings
/// and requires byte-identical results.
[[nodiscard]] bool default_compressed_postings() noexcept;
void set_default_compressed_postings(bool on) noexcept;

/// Disk/compute accounting for one match operation; the simulator turns
/// these counters into latency via the CostModel.
struct MatchAccounting {
  std::uint64_t lists_retrieved = 0;   ///< posting lists fetched (seeks)
  std::uint64_t postings_scanned = 0;  ///< posting entries read
  std::uint64_t candidates_verified = 0;  ///< filters checked against doc
  /// Documents short-circuited by the term summary: no document term passed
  /// the Bloom screen, so the match returned empty without touching a single
  /// posting list. Exact — the summary has no false negatives.
  std::uint64_t bloom_rejects = 0;
  /// Index probes (posting-list retrievals) avoided by the term summary:
  /// each counted term was screened out before its postings() lookup. Every
  /// skipped probe is for a term with no local postings, so
  /// lists_retrieved/postings_scanned are identical with the gate on or off
  /// — the gate only removes wasted probes, never real IO.
  std::uint64_t postings_skipped = 0;
  /// Compressed posting blocks decoded. 0 outside frozen-compressed mode;
  /// orthogonal to the classic counters (postings_scanned counts the same
  /// entries whether they were decoded or read raw), so raw and compressed
  /// runs differ ONLY in this counter.
  std::uint64_t blocks_decoded = 0;

  MatchAccounting& operator+=(const MatchAccounting& other) noexcept {
    lists_retrieved += other.lists_retrieved;
    postings_scanned += other.postings_scanned;
    candidates_verified += other.candidates_verified;
    bloom_rejects += other.bloom_rejects;
    postings_skipped += other.postings_skipped;
    blocks_decoded += other.blocks_decoded;
    return *this;
  }
};

class InvertedIndex {
 public:
  enum class StorageMode : std::uint8_t {
    kMutable,
    kFrozenRaw,
    kFrozenCompressed,
  };

  /// How finalize() should freeze the index. Defaults pick up the
  /// process-wide compression toggle at the moment of the call.
  struct FinalizeOptions {
    bool compress = default_compressed_postings();
    std::size_t block_size = codec::kBlockSize;
  };

  InvertedIndex() = default;

  /// Adds posting entries for `filter`: one per term in `index_terms`.
  /// For full indexing pass the filter's whole term set; for single-term
  /// indexing pass just the home term. Thaws a frozen index.
  void add(FilterId filter, std::span<const TermId> index_terms);

  /// Removes the filter's entries from the given lists (linear per list).
  /// A list that drains is erased entirely so distinct_terms() and
  /// indexed_terms() never report ghost terms. Thaws a frozen index.
  void remove(FilterId filter, std::span<const TermId> index_terms);

  /// Posting list for a term (empty span if absent), sorted ascending.
  /// Valid in mutable and frozen-raw modes; throws std::logic_error in
  /// frozen-compressed mode (there is no materialized span to return) —
  /// use postings_into() / for_each_posting_block() instead.
  [[nodiscard]] std::span<const FilterId> postings(TermId term) const;

  /// Posting count of a term in any mode; O(1) when frozen.
  [[nodiscard]] std::size_t posting_count(TermId term) const;

  /// Mode-independent list access: returns the term's postings as a span.
  /// Mutable / frozen-raw: the internal storage, zero-copy (`buf` and `acc`
  /// untouched). Frozen-compressed: decodes the whole list into `buf` and
  /// returns a span of it, bumping acc->blocks_decoded when provided.
  std::span<const FilterId> postings_into(TermId term,
                                          std::vector<FilterId>& buf,
                                          MatchAccounting* acc = nullptr) const;

  /// Streams a term's postings block-at-a-time through `fn(span)` — the
  /// matcher hot path. Mutable / frozen-raw: one call with the whole list,
  /// zero-copy. Frozen-compressed: one call per decoded block (`buf` is the
  /// reused decode buffer, resized to the block size), bumping
  /// acc->blocks_decoded per block. Spans passed to `fn` are invalidated by
  /// the next block.
  template <typename Fn>
  void for_each_posting_block(TermId term, std::vector<FilterId>& buf,
                              Fn&& fn, MatchAccounting* acc = nullptr) const {
    if (mode_ != StorageMode::kFrozenCompressed) {
      const auto list = postings(term);
      if (!list.empty()) fn(list);
      return;
    }
    const std::uint32_t slot = find_slot(term);
    if (slot == kNoSlot) return;
    if (buf.size() < block_size_) buf.resize(block_size_);
    const std::size_t n = offsets_[slot + 1] - offsets_[slot];
    const std::size_t blocks = (n + block_size_ - 1) / block_size_;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t count = decode_block_at(slot, b, n, buf.data());
      if (acc != nullptr) ++acc->blocks_decoded;
      fn(std::span<const FilterId>(buf.data(), count));
    }
  }

  /// Decodes a term's whole list into caller storage (`out.size()` must be
  /// posting_count(term)). Frozen-compressed mode only — the primitive
  /// under postings_into() and the kAnyTerm union's arena materialization.
  void decode_postings(TermId term, std::span<FilterId> out,
                       MatchAccounting* acc = nullptr) const;

  /// Membership probe (is `filter` on `term`'s list?) in any mode. Binary
  /// search on materialized lists; in frozen-compressed mode seeks the
  /// candidate block via the skip directory and decodes just that block.
  [[nodiscard]] bool posting_contains(TermId term, FilterId filter) const;

  /// Packs all posting lists into the frozen arena (terms ordered by
  /// TermId, lists kept sorted as built) and builds the frozen fast-path
  /// structures: the blocked-Bloom term summary and, when term ids are
  /// dense, the flat term->slot table. `options.compress` selects
  /// frozen-raw vs frozen-compressed (defaulting to the process-wide
  /// toggle). Re-freezing into a different mode goes through thaw;
  /// re-freezing into the same mode is a no-op. O(total postings).
  void finalize(const FinalizeOptions& options);
  void finalize() { finalize(FinalizeOptions{}); }

  [[nodiscard]] bool frozen() const noexcept {
    return mode_ != StorageMode::kMutable;
  }
  [[nodiscard]] StorageMode storage_mode() const noexcept { return mode_; }
  [[nodiscard]] bool compressed() const noexcept {
    return mode_ == StorageMode::kFrozenCompressed;
  }
  /// Block size of the compressed arena (meaningful only when compressed).
  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }

  /// Bytes of posting storage in the current mode: 4 per posting for
  /// mutable (logical; heap slack not counted) and frozen-raw, encoded
  /// bytes + 8-byte skip entries for frozen-compressed. The numerator of
  /// the bytes-per-filter figures (fig13).
  [[nodiscard]] std::uint64_t posting_storage_bytes() const noexcept;

  [[nodiscard]] bool contains_term(TermId term) const;
  [[nodiscard]] std::size_t distinct_terms() const noexcept {
    return frozen() ? arena_terms_.size() : lists_.size();
  }
  [[nodiscard]] std::uint64_t total_postings() const noexcept {
    return total_postings_;
  }

  /// All indexed terms (ascending when frozen, unordered otherwise).
  [[nodiscard]] std::vector<TermId> indexed_terms() const;

  /// Blocked-Bloom summary of every indexed term, or nullptr while the
  /// index is mutable. Part of the frozen/thaw contract: finalize() builds
  /// it (in both frozen modes), any mutation (auto-thaw) invalidates it,
  /// re-finalize rebuilds it — so a non-null summary is always in sync with
  /// the arena it summarizes.
  [[nodiscard]] const bloom::BlockedBloomFilter* term_summary()
      const noexcept {
    return frozen() && summary_ ? &*summary_ : nullptr;
  }

  /// True when lookups resolve terms through the dense slot table instead
  /// of the hash map (frozen + dense term ids). Observability only.
  [[nodiscard]] bool dense_lookup() const noexcept {
    return !slot_table_.empty();
  }

 private:
  /// Rebuilds the per-term vectors from the arena (decoding first when
  /// compressed) and drops the arena along with the summary and slot table
  /// (which describe only the arena).
  void thaw();

  /// Slot of `term` in the frozen arena, kNoSlot if absent.
  [[nodiscard]] std::uint32_t find_slot(TermId term) const;

  /// Decodes block `b` of `slot` (list length `n`) into `out`; returns the
  /// block's entry count. Throws std::runtime_error on a corrupt arena —
  /// unreachable for arenas built by finalize().
  std::size_t decode_block_at(std::uint32_t slot, std::size_t b,
                              std::size_t n, FilterId* out) const;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  // Mutable mode: one vector per term. Empty (and unused) while frozen.
  std::unordered_map<TermId, std::vector<FilterId>> lists_;
  std::uint64_t total_postings_ = 0;

  // Frozen modes: slot_of_ maps a term to its slot s; offsets_ holds the
  // logical posting-count prefix sums (so posting_count is O(1) in both
  // frozen modes). Frozen-raw postings live at
  // flat_postings_[offsets_[s]..offsets_[s+1]); frozen-compressed bytes at
  // comp_bytes_[comp_byte_offsets_[s]..comp_byte_offsets_[s+1]) with skip
  // entries at comp_skips_[comp_skip_offsets_[s]..comp_skip_offsets_[s+1]).
  // When term ids are dense, slot_table_[term] holds the slot directly
  // (kNoSlot if absent) and slot_of_ is bypassed on the lookup path.
  StorageMode mode_ = StorageMode::kMutable;
  std::unordered_map<TermId, std::uint32_t> slot_of_;
  std::vector<TermId> arena_terms_;        // slot -> term, ascending
  std::vector<std::uint64_t> offsets_;     // arena_terms_.size() + 1
  std::vector<FilterId> flat_postings_;    // frozen-raw only
  std::vector<std::uint8_t> comp_bytes_;   // frozen-compressed only...
  std::vector<codec::SkipEntry> comp_skips_;
  std::vector<std::uint64_t> comp_byte_offsets_;
  std::vector<std::uint32_t> comp_skip_offsets_;
  std::size_t block_size_ = codec::kBlockSize;
  std::vector<std::uint32_t> slot_table_;  // term -> slot, kNoSlot gaps
  std::optional<bloom::BlockedBloomFilter> summary_;
};

}  // namespace move::index
