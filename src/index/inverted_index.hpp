#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bloom/blocked_bloom.hpp"
#include "common/types.hpp"
#include "index/filter_store.hpp"

/// Local inverted list over registered filters (Fig. 3, "local inverted
/// list" store).
///
/// Maps TermId -> posting list of FilterIds. Two indexing modes mirror the
/// paper:
///  * full indexing (RS baseline): every term of every local filter gets a
///    posting entry — SIFT then retrieves |d| lists per document;
///  * single-term indexing (IL / MOVE): the home node of term t builds ONLY
///    the posting list for t, even though it stores the filters' full term
///    sets (§III-B) — matching retrieves exactly one list.
///
/// Two storage modes trade mutability for scan speed:
///  * **mutable** (the default): one heap `std::vector` per term, cheap to
///    grow during registration;
///  * **frozen** (after finalize()): every posting list packed into one flat
///    `offsets_ + flat_postings_` arena mirroring FilterStore's layout, so a
///    match scans contiguous memory instead of pointer-chasing per-term heap
///    blocks. Freezing additionally builds the two matching fast-path
///    structures:
///      - a **term summary** — a blocked Bloom filter over every indexed
///        term, which lets SiftMatcher reject documents with zero local
///        overlap (and skip absent terms) without probing the index;
///      - a **dense slot table** — a flat term -> slot array replacing the
///        hash probe on postings() whenever term ids are dense enough to
///        afford it.
///    Mutations transparently thaw back to mutable mode (rebuilding the
///    per-term vectors and *invalidating* summary and slot table — they
///    describe only the frozen arena); a later finalize() rebuilds both.
///    Freezing is purely an optimization — callers that interleave
///    registration and matching stay correct, they just lose the fast path
///    until they re-finalize.
///
/// Invariant (both modes): every posting list is sorted ascending by
/// FilterId. Registration appends ids in ascending order, so the common case
/// is a pure push_back; the rare out-of-order re-registration (a MOVE grid
/// indexing an existing copy under a new term) falls back to a sorted
/// insert. Matchers rely on this to skip per-match sorting (kAnyTerm unions
/// become k-way merges).
namespace move::index {

/// Disk/compute accounting for one match operation; the simulator turns
/// these counters into latency via the CostModel.
struct MatchAccounting {
  std::uint64_t lists_retrieved = 0;   ///< posting lists fetched (seeks)
  std::uint64_t postings_scanned = 0;  ///< posting entries read
  std::uint64_t candidates_verified = 0;  ///< filters checked against doc
  /// Documents short-circuited by the term summary: no document term passed
  /// the Bloom screen, so the match returned empty without touching a single
  /// posting list. Exact — the summary has no false negatives.
  std::uint64_t bloom_rejects = 0;
  /// Index probes (posting-list retrievals) avoided by the term summary:
  /// each counted term was screened out before its postings() lookup. Every
  /// skipped probe is for a term with no local postings, so
  /// lists_retrieved/postings_scanned are identical with the gate on or off
  /// — the gate only removes wasted probes, never real IO.
  std::uint64_t postings_skipped = 0;

  MatchAccounting& operator+=(const MatchAccounting& other) noexcept {
    lists_retrieved += other.lists_retrieved;
    postings_scanned += other.postings_scanned;
    candidates_verified += other.candidates_verified;
    bloom_rejects += other.bloom_rejects;
    postings_skipped += other.postings_skipped;
    return *this;
  }
};

class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds posting entries for `filter`: one per term in `index_terms`.
  /// For full indexing pass the filter's whole term set; for single-term
  /// indexing pass just the home term. Thaws a frozen index.
  void add(FilterId filter, std::span<const TermId> index_terms);

  /// Removes the filter's entries from the given lists (linear per list).
  /// A list that drains is erased entirely so distinct_terms() and
  /// indexed_terms() never report ghost terms. Thaws a frozen index.
  void remove(FilterId filter, std::span<const TermId> index_terms);

  /// Posting list for a term (empty span if absent), sorted ascending.
  [[nodiscard]] std::span<const FilterId> postings(TermId term) const;

  /// Packs all posting lists into the flat arena (terms ordered by TermId,
  /// lists kept sorted as built) and builds the frozen fast-path structures:
  /// the blocked-Bloom term summary and, when term ids are dense, the flat
  /// term->slot table. Idempotent; O(total postings).
  void finalize();

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  [[nodiscard]] bool contains_term(TermId term) const;
  [[nodiscard]] std::size_t distinct_terms() const noexcept {
    return frozen_ ? arena_terms_.size() : lists_.size();
  }
  [[nodiscard]] std::uint64_t total_postings() const noexcept {
    return total_postings_;
  }

  /// All indexed terms (ascending when frozen, unordered otherwise).
  [[nodiscard]] std::vector<TermId> indexed_terms() const;

  /// Blocked-Bloom summary of every indexed term, or nullptr while the
  /// index is mutable. Part of the frozen/thaw contract: finalize() builds
  /// it, any mutation (auto-thaw) invalidates it, re-finalize rebuilds it —
  /// so a non-null summary is always in sync with the arena it summarizes.
  [[nodiscard]] const bloom::BlockedBloomFilter* term_summary()
      const noexcept {
    return frozen_ && summary_ ? &*summary_ : nullptr;
  }

  /// True when postings() resolves terms through the dense slot table
  /// instead of the hash map (frozen + dense term ids). Observability only.
  [[nodiscard]] bool dense_lookup() const noexcept {
    return !slot_table_.empty();
  }

 private:
  /// Rebuilds the per-term vectors from the arena and drops the arena along
  /// with the summary and slot table (which describe only the arena).
  void thaw();

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  // Mutable mode: one vector per term. Empty (and unused) while frozen.
  std::unordered_map<TermId, std::vector<FilterId>> lists_;
  std::uint64_t total_postings_ = 0;

  // Frozen mode: all lists packed into one arena. slot_of_ maps a term to
  // its slot s; its postings live at flat_postings_[offsets_[s]..offsets_[s+1]).
  // When term ids are dense, slot_table_[term] holds the slot directly
  // (kNoSlot if absent) and slot_of_ is bypassed on the lookup path.
  bool frozen_ = false;
  std::unordered_map<TermId, std::uint32_t> slot_of_;
  std::vector<TermId> arena_terms_;        // slot -> term, ascending
  std::vector<std::uint64_t> offsets_;     // arena_terms_.size() + 1
  std::vector<FilterId> flat_postings_;
  std::vector<std::uint32_t> slot_table_;  // term -> slot, kNoSlot gaps
  std::optional<bloom::BlockedBloomFilter> summary_;
};

}  // namespace move::index
