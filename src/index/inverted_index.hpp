#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "index/filter_store.hpp"

/// Local inverted list over registered filters (Fig. 3, "local inverted
/// list" store).
///
/// Maps TermId -> posting list of FilterIds. Two indexing modes mirror the
/// paper:
///  * full indexing (RS baseline): every term of every local filter gets a
///    posting entry — SIFT then retrieves |d| lists per document;
///  * single-term indexing (IL / MOVE): the home node of term t builds ONLY
///    the posting list for t, even though it stores the filters' full term
///    sets (§III-B) — matching retrieves exactly one list.
namespace move::index {

/// Disk/compute accounting for one match operation; the simulator turns
/// these counters into latency via the CostModel.
struct MatchAccounting {
  std::uint64_t lists_retrieved = 0;   ///< posting lists fetched (seeks)
  std::uint64_t postings_scanned = 0;  ///< posting entries read
  std::uint64_t candidates_verified = 0;  ///< filters checked against doc

  MatchAccounting& operator+=(const MatchAccounting& other) noexcept {
    lists_retrieved += other.lists_retrieved;
    postings_scanned += other.postings_scanned;
    candidates_verified += other.candidates_verified;
    return *this;
  }
};

class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds posting entries for `filter`: one per term in `index_terms`.
  /// For full indexing pass the filter's whole term set; for single-term
  /// indexing pass just the home term.
  void add(FilterId filter, std::span<const TermId> index_terms);

  /// Removes the filter's entries from the given lists (linear per list).
  void remove(FilterId filter, std::span<const TermId> index_terms);

  /// Posting list for a term (empty span if absent).
  [[nodiscard]] std::span<const FilterId> postings(TermId term) const;

  [[nodiscard]] bool contains_term(TermId term) const {
    return lists_.contains(term);
  }
  [[nodiscard]] std::size_t distinct_terms() const noexcept {
    return lists_.size();
  }
  [[nodiscard]] std::uint64_t total_postings() const noexcept {
    return total_postings_;
  }

  /// All indexed terms (unordered). Used to build Bloom summaries.
  [[nodiscard]] std::vector<TermId> indexed_terms() const;

 private:
  std::unordered_map<TermId, std::vector<FilterId>> lists_;
  std::uint64_t total_postings_ = 0;
};

}  // namespace move::index
