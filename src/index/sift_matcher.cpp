#include "index/sift_matcher.hpp"

#include <algorithm>
#include <unordered_map>

namespace move::index {

MatchAccounting SiftMatcher::match(std::span<const TermId> doc_terms,
                                   const MatchOptions& options,
                                   std::vector<FilterId>& out) const {
  out.clear();
  MatchAccounting acc;

  if (options.semantics == MatchSemantics::kAnyTerm) {
    // Counter pass alone decides: any posting hit is a match.
    for (TermId term : doc_terms) {
      const auto list = index_->postings(term);
      if (list.empty() && !index_->contains_term(term)) continue;
      ++acc.lists_retrieved;
      acc.postings_scanned += list.size();
      out.insert(out.end(), list.begin(), list.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return acc;
  }

  // Threshold / conjunctive: accumulate hit counts, then test.
  std::unordered_map<FilterId, std::uint32_t> counts;
  for (TermId term : doc_terms) {
    const auto list = index_->postings(term);
    if (list.empty() && !index_->contains_term(term)) continue;
    ++acc.lists_retrieved;
    acc.postings_scanned += list.size();
    for (FilterId f : list) ++counts[f];
  }
  for (const auto& [filter, count] : counts) {
    ++acc.candidates_verified;
    // The counter already equals |d ∩ f| when the index is full, but the
    // index may be single-term (IL mode), so verify against the stored set.
    if (store_->matches(filter, doc_terms, options)) out.push_back(filter);
  }
  std::sort(out.begin(), out.end());
  return acc;
}

MatchAccounting SiftMatcher::match_single_list(
    TermId home_term, std::span<const TermId> doc_terms,
    const MatchOptions& options, std::vector<FilterId>& out) const {
  out.clear();
  MatchAccounting acc;
  const auto list = index_->postings(home_term);
  if (list.empty()) return acc;
  acc.lists_retrieved = 1;
  acc.postings_scanned = list.size();

  if (options.semantics == MatchSemantics::kAnyTerm) {
    // Every filter on this list contains home_term, which the document also
    // contains — all are matches, no verification needed.
    out.assign(list.begin(), list.end());
  } else {
    for (FilterId f : list) {
      ++acc.candidates_verified;
      if (store_->matches(f, doc_terms, options)) out.push_back(f);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return acc;
}

}  // namespace move::index
