#include "index/sift_matcher.hpp"

#include <algorithm>
#include <unordered_map>

namespace move::index {

namespace {

using Cursor = MatchScratch::Cursor;

/// Heap order: smallest head value on top (std::*_heap build max-heaps, so
/// the comparator is reversed).
struct CursorGreater {
  bool operator()(const Cursor& a, const Cursor& b) const noexcept {
    return b.cur->value < a.cur->value;
  }
};

/// Sorted-unique union of k sorted posting lists into `out` (appended).
/// O(total * log k) with zero allocation beyond the reused cursor heap.
void merge_union(std::vector<Cursor>& cursors, std::vector<FilterId>& out) {
  if (cursors.empty()) return;
  if (cursors.size() == 1) {
    for (const FilterId* p = cursors[0].cur; p != cursors[0].end; ++p) {
      if (out.empty() || out.back() != *p) out.push_back(*p);
    }
    return;
  }
  std::make_heap(cursors.begin(), cursors.end(), CursorGreater{});
  while (!cursors.empty()) {
    std::pop_heap(cursors.begin(), cursors.end(), CursorGreater{});
    Cursor& c = cursors.back();
    const FilterId v = *c.cur;
    if (out.empty() || out.back() != v) out.push_back(v);
    if (++c.cur == c.end) {
      cursors.pop_back();
    } else {
      std::push_heap(cursors.begin(), cursors.end(), CursorGreater{});
    }
  }
}

/// Above this many lists the heap's log-k comparisons per posting cost more
/// than stamping every posting into the counter array and sorting the
/// distinct survivors — under Zipf traffic the head lists overlap heavily,
/// so distinct candidates D are far fewer than total postings N and
/// O(N + D log D) beats O(N log k).
constexpr std::size_t kMergeMaxLists = 8;

/// Sorted-unique union of the gathered lists into `out`, choosing between
/// the k-way merge and the epoch-stamp path by list count.
void union_lists(std::vector<Cursor>& cursors, MatchScratch& scratch,
                 std::size_t filter_count, std::vector<FilterId>& out) {
  if (cursors.size() <= kMergeMaxLists) {
    merge_union(cursors, out);
    return;
  }
  scratch.begin(filter_count);
  for (const Cursor& c : cursors) {
    scratch.bump_list({c.cur, static_cast<std::size_t>(c.end - c.cur)});
  }
  const auto candidates = scratch.candidates();
  out.insert(out.end(), candidates.begin(), candidates.end());
  std::sort(out.begin(), out.end());
}

/// Gathers the non-empty posting lists of `terms` as merge cursors for the
/// kAnyTerm union. Mutable / frozen-raw: cursors point straight into index
/// storage, zero-copy. Frozen-compressed: the lists are decoded
/// back-to-back into the scratch arena first (sized up front so the spans
/// stay stable while later lists decode).
void gather_cursors(const InvertedIndex& index, std::span<const TermId> terms,
                    MatchScratch& scratch, MatchAccounting& acc) {
  auto& cursors = scratch.cursors();
  cursors.clear();
  if (!index.compressed()) {
    for (TermId term : terms) {
      const auto list = index.postings(term);
      if (list.empty()) continue;
      ++acc.lists_retrieved;
      acc.postings_scanned += list.size();
      cursors.push_back(Cursor{list.data(), list.data() + list.size()});
    }
    return;
  }
  auto& arena = scratch.decode_arena();
  std::size_t total = 0;
  for (TermId term : terms) total += index.posting_count(term);
  if (arena.size() < total) arena.resize(total);
  std::size_t off = 0;
  for (TermId term : terms) {
    const std::size_t n = index.posting_count(term);
    if (n == 0) continue;
    ++acc.lists_retrieved;
    acc.postings_scanned += n;
    index.decode_postings(term, {arena.data() + off, n}, &acc);
    cursors.push_back(Cursor{arena.data() + off, arena.data() + off + n});
    off += n;
  }
}

/// Counter pass over one term's whole list, block-at-a-time on a
/// frozen-compressed index (each decoded block goes straight through
/// bump_list, so the SIMD kernel runs unchanged on compressed storage) and
/// as a single zero-copy call otherwise. Accounting is identical across
/// modes except blocks_decoded.
void bump_term(const InvertedIndex& index, TermId term, MatchScratch& scratch,
               MatchAccounting& acc) {
  bool retrieved = false;
  index.for_each_posting_block(
      term, scratch.decode_buffer(),
      [&](std::span<const FilterId> block) {
        if (!retrieved) {
          retrieved = true;
          ++acc.lists_retrieved;
        }
        acc.postings_scanned += block.size();
        scratch.bump_list(block);
      },
      &acc);
}

/// Bloom screen over `terms`: returns the summary-positive slice (built in
/// `buf`), counting each negative as a skipped index probe. Passes `terms`
/// straight through when the gate is off or the index is mutable (no
/// summary). Negatives provably have no postings, so downstream accounting
/// is unchanged.
std::span<const TermId> screen_terms(const InvertedIndex& index,
                                     std::span<const TermId> terms,
                                     const MatchOptions& options,
                                     std::vector<TermId>& buf,
                                     MatchAccounting& acc) {
  const auto* summary =
      options.use_term_summary ? index.term_summary() : nullptr;
  if (summary == nullptr) return terms;
  buf.clear();
  for (const TermId t : terms) {
    if (summary->may_contain(t)) {
      buf.push_back(t);
    } else {
      ++acc.postings_skipped;
    }
  }
  return buf;
}

}  // namespace

MatchAccounting SiftMatcher::match(std::span<const TermId> doc_terms,
                                   const MatchOptions& options,
                                   std::vector<FilterId>& out) const {
  out.clear();
  MatchAccounting acc;
  // Mode-independent list access: zero-copy outside frozen-compressed mode,
  // a whole-list decode into this reused buffer inside it (the legacy
  // kernel is the reference baseline, not a hot path).
  std::vector<FilterId> decode_buf;

  if (options.semantics == MatchSemantics::kAnyTerm) {
    // Counter pass alone decides: any posting hit is a match.
    for (TermId term : doc_terms) {
      const auto list = index_->postings_into(term, decode_buf, &acc);
      if (list.empty() && !index_->contains_term(term)) continue;
      ++acc.lists_retrieved;
      acc.postings_scanned += list.size();
      out.insert(out.end(), list.begin(), list.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return acc;
  }

  // Threshold / conjunctive: accumulate hit counts, then test.
  std::unordered_map<FilterId, std::uint32_t> counts;
  for (TermId term : doc_terms) {
    const auto list = index_->postings_into(term, decode_buf, &acc);
    if (list.empty() && !index_->contains_term(term)) continue;
    ++acc.lists_retrieved;
    acc.postings_scanned += list.size();
    for (FilterId f : list) ++counts[f];
  }
  for (const auto& [filter, count] : counts) {
    ++acc.candidates_verified;
    // The counter already equals |d ∩ f| when the index is full, but the
    // index may be single-term (IL mode), so verify against the stored set.
    if (store_->matches(filter, doc_terms, options)) out.push_back(filter);
  }
  std::sort(out.begin(), out.end());
  return acc;
}

MatchAccounting SiftMatcher::match(std::span<const TermId> doc_terms,
                                   const MatchOptions& options,
                                   std::vector<FilterId>& out,
                                   MatchScratch& scratch) const {
  out.clear();
  MatchAccounting acc;

  // Bloom screen: drop terms the frozen index provably does not hold. A
  // document losing every term cannot match anything — short-circuit.
  const auto screened = screen_terms(*index_, doc_terms, options,
                                     scratch.screened_terms(), acc);
  if (screened.empty()) {
    if (!doc_terms.empty()) ++acc.bloom_rejects;
    return acc;
  }

  if (options.semantics == MatchSemantics::kAnyTerm) {
    // Every filter on a retrieved list shares that list's term with the
    // document, so the union of the lists IS the match set. Lists are sorted
    // by construction, so no per-match sort of raw postings is needed —
    // union_lists picks k-way merge or counter-stamping by list count.
    gather_cursors(*index_, screened, scratch, acc);
    union_lists(scratch.cursors(), scratch, store_->size(), out);
    return acc;
  }

  // Threshold / conjunctive: epoch-stamped counter pass, then verify each
  // distinct candidate once. With the full-index guarantee the counter IS
  // |d ∩ f| and verification is an O(1) compare; otherwise verify against
  // the stored term set.
  scratch.begin(store_->size());
  for (TermId term : screened) {
    bump_term(*index_, term, scratch, acc);
  }
  for (FilterId filter : scratch.candidates()) {
    ++acc.candidates_verified;
    if (full_index_ ? count_satisfies(filter, scratch.count(filter.value),
                                      options)
                    : store_->matches(filter, doc_terms, options)) {
      out.push_back(filter);
    }
  }
  std::sort(out.begin(), out.end());
  return acc;
}

MatchAccounting SiftMatcher::match_single_list(
    TermId home_term, std::span<const TermId> doc_terms,
    const MatchOptions& options, std::vector<FilterId>& out) const {
  std::vector<FilterId> decode_buf;
  return match_single_list_impl(home_term, doc_terms, options, out,
                                decode_buf);
}

MatchAccounting SiftMatcher::match_single_list(
    TermId home_term, std::span<const TermId> doc_terms,
    const MatchOptions& options, std::vector<FilterId>& out,
    MatchScratch& scratch) const {
  return match_single_list_impl(home_term, doc_terms, options, out,
                                scratch.decode_buffer());
}

MatchAccounting SiftMatcher::match_single_list_impl(
    TermId home_term, std::span<const TermId> doc_terms,
    const MatchOptions& options, std::vector<FilterId>& out,
    std::vector<FilterId>& decode_buf) const {
  out.clear();
  MatchAccounting acc;
  if (options.use_term_summary) {
    if (const auto* summary = index_->term_summary();
        summary != nullptr && !summary->may_contain(home_term)) {
      // The home term is provably unindexed: skip the probe entirely.
      ++acc.postings_skipped;
      ++acc.bloom_rejects;
      return acc;
    }
  }

  // The list is sorted by construction, so the result needs no sort; only
  // adjacent duplicates (a filter indexed twice under the same term) must be
  // skipped — out.back() carries the dedup across block boundaries, so the
  // block-at-a-time decode of a frozen-compressed index changes nothing.
  const bool any_term = options.semantics == MatchSemantics::kAnyTerm;
  index_->for_each_posting_block(
      home_term, decode_buf,
      [&](std::span<const FilterId> block) {
        acc.lists_retrieved = 1;
        acc.postings_scanned += block.size();
        if (any_term) {
          // Every filter on this list contains home_term, which the document
          // also contains — all are matches, no verification needed.
          for (FilterId f : block) {
            if (out.empty() || out.back() != f) out.push_back(f);
          }
        } else {
          for (FilterId f : block) {
            ++acc.candidates_verified;
            if (store_->matches(f, doc_terms, options)) {
              if (out.empty() || out.back() != f) out.push_back(f);
            }
          }
        }
      },
      &acc);
  return acc;
}

MatchAccounting SiftMatcher::match_lists(std::span<const TermId> home_terms,
                                         std::span<const TermId> doc_terms,
                                         const MatchOptions& options,
                                         std::vector<FilterId>& out,
                                         MatchScratch& scratch) const {
  out.clear();
  MatchAccounting acc;

  const auto screened = screen_terms(*index_, home_terms, options,
                                     scratch.screened_terms(), acc);
  if (screened.empty()) {
    if (!home_terms.empty()) ++acc.bloom_rejects;
    return acc;
  }

  if (options.semantics == MatchSemantics::kAnyTerm) {
    gather_cursors(*index_, screened, scratch, acc);
    union_lists(scratch.cursors(), scratch, store_->size(), out);
    return acc;
  }

  // A candidate appearing on several home lists is verified exactly once:
  // the epoch stamp deduplicates across lists (the candidates() enumeration
  // holds each filter once, in first-touch order).
  scratch.begin(store_->size());
  for (TermId term : screened) {
    bump_term(*index_, term, scratch, acc);
  }
  for (FilterId filter : scratch.candidates()) {
    ++acc.candidates_verified;
    if (store_->matches(filter, doc_terms, options)) out.push_back(filter);
  }
  std::sort(out.begin(), out.end());
  return acc;
}

}  // namespace move::index
