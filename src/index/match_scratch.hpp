#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

/// Reusable per-thread scratch state for the SIFT counter kernel.
///
/// The classic implementation accumulates per-filter hit counts in a
/// `std::unordered_map<FilterId, uint32_t>` that is built and torn down once
/// per document — on the hot path that is one hash + probe per posting entry
/// plus an allocation storm. MatchScratch replaces it with two dense arrays
/// indexed by (local) filter id:
///
///  * `counts_[f]`  — the running |d ∩ f| counter, and
///  * `epochs_[f]`  — the match epoch that last wrote `counts_[f]`.
///
/// A counter is live only when its epoch stamp equals the current epoch, so
/// "clearing" all counters between documents is a single `++epoch_` — O(1)
/// instead of O(candidates) — and the arrays are reused match after match
/// with zero allocation once they reach the store size. `touched_` records
/// each filter the first time it is bumped, so candidate enumeration costs
/// O(candidates), never O(filters).
///
/// One MatchScratch per thread: instances are not thread-safe, but distinct
/// instances are fully independent, which is what ParallelMatcher's batch
/// path exploits (one scratch per pool worker). The same instance may be
/// reused across FilterStores of different sizes (the arrays grow
/// monotonically; the epoch bump invalidates stale stamps).
namespace move::index {

class MatchScratch {
 public:
  /// Prepares for one counter pass over a store of `filter_count` filters:
  /// grows the arrays if needed and logically clears every counter.
  void begin(std::size_t filter_count) {
    if (filter_count > counts_.size()) {
      counts_.resize(filter_count, 0);
      epochs_.resize(filter_count, 0);
    }
    touched_.clear();
    if (++epoch_ == 0) {
      // Epoch wrapped: stale stamps could collide, so do the rare hard clear.
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Increments `local`'s counter, recording it as a candidate on first
  /// touch. Returns the updated count.
  std::uint32_t bump(std::uint32_t local) {
    if (epochs_[local] != epoch_) {
      epochs_[local] = epoch_;
      counts_[local] = 1;
      touched_.push_back(FilterId{local});
      return 1;
    }
    return ++counts_[local];
  }

  /// Counter value for `local` in the current epoch (0 if untouched).
  [[nodiscard]] std::uint32_t count(std::uint32_t local) const {
    return epochs_[local] == epoch_ ? counts_[local] : 0;
  }

  /// Filters touched since begin(), in first-touch order.
  [[nodiscard]] std::span<const FilterId> candidates() const noexcept {
    return touched_;
  }

  /// Cursor buffer for the k-way posting-list merge (kAnyTerm union).
  /// Exposed so the matcher reuses one heap allocation across documents.
  struct Cursor {
    const FilterId* cur;
    const FilterId* end;
  };
  [[nodiscard]] std::vector<Cursor>& cursors() noexcept { return cursors_; }

 private:
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> epochs_;
  std::vector<FilterId> touched_;
  std::vector<Cursor> cursors_;
  std::uint32_t epoch_ = 0;
};

}  // namespace move::index
