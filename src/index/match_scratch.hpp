#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.hpp"
#include "common/types.hpp"

/// Reusable per-thread scratch state for the SIFT counter kernel.
///
/// The classic implementation accumulates per-filter hit counts in a
/// `std::unordered_map<FilterId, uint32_t>` that is built and torn down once
/// per document — on the hot path that is one hash + probe per posting entry
/// plus an allocation storm. MatchScratch replaces it with two dense arrays
/// indexed by (local) filter id:
///
///  * `counts_[f]`  — the running |d ∩ f| counter, and
///  * `epochs_[f]`  — the match epoch that last wrote `counts_[f]`.
///
/// A counter is live only when its epoch stamp equals the current epoch, so
/// "clearing" all counters between documents is a single `++epoch_` — O(1)
/// instead of O(candidates) — and the arrays are reused match after match
/// with zero allocation once they reach the store size. `touched_` records
/// each filter the first time it is bumped, so candidate enumeration costs
/// O(candidates), never O(filters).
///
/// The counter pass over a whole posting list goes through `bump_list`, the
/// vectorized kernel: on the SIMD dispatch (see common/simd.hpp) the epoch
/// stamps of eight postings are gathered and compared per iteration — the
/// epoch loads of a block miss the cache *in parallel* instead of serially —
/// with explicit prefetch of the next block; posting values are prefetched
/// ahead too. The scalar dispatch (`MOVE_FORCE_SCALAR=1`, or a build without
/// AVX2/NEON) is a plain per-entry loop. Both produce identical counters AND
/// identical first-touch order, so results, accounting, and candidate
/// enumeration never depend on the dispatch choice.
///
/// One MatchScratch per thread: instances are not thread-safe, but distinct
/// instances are fully independent, which is what ParallelMatcher's batch
/// path exploits (one scratch per pool worker). The same instance may be
/// reused across FilterStores of different sizes (the arrays grow
/// monotonically; the epoch bump invalidates stale stamps). Debug builds
/// assert the epoch-collision invariant — no stamp is ever *ahead* of the
/// current epoch — which is exactly what a reused worker scratch would
/// violate if two back-to-back matches shared an epoch.
namespace move::index {

class MatchScratch {
 public:
  /// Prepares for one counter pass over a store of `filter_count` filters:
  /// grows the arrays if needed and logically clears every counter.
  void begin(std::size_t filter_count) {
    if (filter_count > counts_.size()) {
      counts_.resize(filter_count, 0);
      epochs_.resize(filter_count, 0);
    }
    touched_.clear();
    if (++epoch_ == 0) {
      // Epoch wrapped: stale stamps could collide, so do the rare hard clear.
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Increments `local`'s counter, recording it as a candidate on first
  /// touch. Returns the updated count.
  std::uint32_t bump(std::uint32_t local) {
    assert(epoch_ != 0 && "begin() must run before bump()");
    assert(local < counts_.size() && "filter id beyond begin() size");
    assert(epochs_[local] <= epoch_ &&
           "epoch collision: scratch reused without begin()");
    if (epochs_[local] != epoch_) {
      epochs_[local] = epoch_;
      counts_[local] = 1;
      touched_.push_back(FilterId{local});
      return 1;
    }
    return ++counts_[local];
  }

  /// Counter pass over one whole posting list — equivalent to bump() per
  /// entry (same counts, same first-touch order), vectorized on the SIMD
  /// dispatch. This is the hot loop of threshold/conjunctive matching.
  void bump_list(std::span<const FilterId> list) {
#if defined(MOVE_SIMD_AVX2)
    if (!simd::dispatch_scalar() && list.size() >= 16) {
      bump_list_avx2(list);
      return;
    }
#endif
    for (const FilterId f : list) bump(f.value);
  }

  /// Counter value for `local` in the current epoch (0 if untouched).
  [[nodiscard]] std::uint32_t count(std::uint32_t local) const {
    assert(epochs_[local] <= epoch_ &&
           "epoch collision: scratch reused without begin()");
    return epochs_[local] == epoch_ ? counts_[local] : 0;
  }

  /// Filters touched since begin(), in first-touch order.
  [[nodiscard]] std::span<const FilterId> candidates() const noexcept {
    return touched_;
  }

  /// Current epoch stamp (diagnostic; used by the epoch-collision tests).
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  /// Test hook: plants an arbitrary epoch so the u32 wrap-around path is
  /// reachable without 2^32 begin() calls. Not for production code.
  void set_epoch_for_test(std::uint32_t epoch) noexcept { epoch_ = epoch; }

  /// Cursor buffer for the k-way posting-list merge (kAnyTerm union).
  /// Exposed so the matcher reuses one heap allocation across documents.
  struct Cursor {
    const FilterId* cur;
    const FilterId* end;
  };
  [[nodiscard]] std::vector<Cursor>& cursors() noexcept { return cursors_; }

  /// Reusable term buffer for the matcher's Bloom screen (the summary-
  /// positive slice of the document's terms). Same single-allocation idea
  /// as cursors().
  [[nodiscard]] std::vector<TermId>& screened_terms() noexcept {
    return screened_;
  }

  /// Reusable one-block buffer for frozen-compressed indexes: the matcher
  /// decodes one posting block at a time into it and feeds the block to
  /// bump_list(), so the threshold kernel stays allocation-free and
  /// L1-resident regardless of list length.
  [[nodiscard]] std::vector<FilterId>& decode_buffer() noexcept {
    return decode_buf_;
  }

  /// Reusable arena for the kAnyTerm union on frozen-compressed indexes:
  /// the retrieved lists are decoded back-to-back into it (one resize per
  /// document, amortized to zero once warm) so the merge cursors have
  /// stable contiguous spans to walk.
  [[nodiscard]] std::vector<FilterId>& decode_arena() noexcept {
    return decode_arena_;
  }

 private:
#if defined(MOVE_SIMD_AVX2)
  void bump_list_avx2(std::span<const FilterId> list) {
    static_assert(sizeof(FilterId) == sizeof(std::uint32_t));
    const auto* ids = &list.data()->value;  // member objects, contiguous
    const std::size_t n = list.size();
    const __m256i cur_epoch = _mm256_set1_epi32(static_cast<int>(epoch_));
    const auto* epoch_base = reinterpret_cast<const int*>(epochs_.data());
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      if (i + 16 <= n) {
        simd::prefetch(ids + i + 8);
        // Issue the next block's epoch lines early; the gather below then
        // hits warmer lines.
        simd::prefetch(&epochs_[ids[i + 8]]);
        simd::prefetch(&epochs_[ids[i + 15]]);
      }
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
      // A lane duplicating an earlier lane of the SAME block would gather a
      // stale stamp (read-before-write). Lists are sorted, so duplicates are
      // adjacent — a cheap scalar sweep detects them exactly.
      bool dup = false;
      for (std::size_t k = 1; k < 8; ++k) {
        dup |= ids[i + k] == ids[i + k - 1];
      }
      if (dup) {
        for (std::size_t k = 0; k < 8; ++k) bump(ids[i + k]);
        continue;
      }
      const __m256i stamps = _mm256_i32gather_epi32(epoch_base, v, 4);
      const unsigned live = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(stamps, cur_epoch))));
      for (std::size_t k = 0; k < 8; ++k) {
        const std::uint32_t f = ids[i + k];
        assert(epochs_[f] <= epoch_ &&
               "epoch collision: scratch reused without begin()");
        if (live & (1u << k)) {
          ++counts_[f];
        } else {
          epochs_[f] = epoch_;
          counts_[f] = 1;
          touched_.push_back(FilterId{f});
        }
      }
    }
    for (; i < n; ++i) bump(ids[i]);
  }
#endif

  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> epochs_;
  std::vector<FilterId> touched_;
  std::vector<Cursor> cursors_;
  std::vector<TermId> screened_;
  std::vector<FilterId> decode_buf_;
  std::vector<FilterId> decode_arena_;
  std::uint32_t epoch_ = 0;
};

}  // namespace move::index
