#include "index/churn_harness.hpp"

#include <algorithm>

namespace move::index {

void ChurnHarness::apply(const workload::FilterChurnStream& stream,
                         const workload::ChurnOp& op) {
  switch (op.kind) {
    case workload::ChurnOpKind::kRegister:
      register_key(op.row, stream.row(op.row));
      break;
    case workload::ChurnOpKind::kUnregister:
      unregister_key(op.row);
      break;
    case workload::ChurnOpKind::kEdit:
      unregister_key(op.row);
      register_key(op.new_row, stream.row(op.new_row));
      break;
  }
  ++ops_;
  if (options_.refinalize_every > 0 && ops_ % options_.refinalize_every == 0) {
    refinalize();
  }
}

void ChurnHarness::register_key(std::uint32_t key,
                                std::span<const TermId> terms) {
  const FilterId f = store_.add(terms);
  index_.add(f, terms);  // full indexing; thaws a frozen index
  live_.emplace(key, f);
  if (on_register_term_) {
    for (const TermId t : terms) on_register_term_(t);
  }
}

void ChurnHarness::unregister_key(std::uint32_t key) {
  const auto it = live_.find(key);
  if (it == live_.end()) return;  // stream guarantees liveness; be lenient
  const FilterId f = it->second;
  index_.remove(f, store_.terms(f));
  live_.erase(it);
}

void ChurnHarness::match_reference(std::span<const TermId> doc_terms,
                                   std::vector<FilterId>& out) const {
  out.clear();
  for (const auto& [key, f] : live_) {
    if (store_.matches(f, doc_terms, options_.match)) out.push_back(f);
  }
  std::sort(out.begin(), out.end());
}

}  // namespace move::index
