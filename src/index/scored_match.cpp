#include "index/scored_match.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace move::index {

double cosine_score(std::span<const TermId> doc_terms,
                    std::span<const TermId> filter_terms) {
  if (doc_terms.empty() || filter_terms.empty()) return 0.0;
  const auto common = FilterStore::intersection_size(doc_terms, filter_terms);
  if (common == 0) return 0.0;
  return static_cast<double>(common) /
         std::sqrt(static_cast<double>(doc_terms.size()) *
                   static_cast<double>(filter_terms.size()));
}

namespace {

/// Shared tail of both kernels: score the candidate set, rank, truncate.
std::vector<ScoredMatch> score_candidates(const FilterStore& store,
                                          std::span<const TermId> doc_terms,
                                          const ScoredMatchOptions& options,
                                          std::span<const FilterId> candidates,
                                          MatchAccounting& acc) {
  std::vector<ScoredMatch> out;
  out.reserve(candidates.size());
  for (const FilterId filter : candidates) {
    ++acc.candidates_verified;
    // With a full index, the hit count already equals |d ∩ f|; with
    // single-term indexing the stored set gives the exact intersection
    // either way.
    const double score = cosine_score(doc_terms, store.terms(filter));
    if (score >= options.min_score && score > 0.0) {
      out.push_back(ScoredMatch{filter, score});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.score > b.score ||
           (a.score == b.score && a.filter < b.filter);
  });
  if (options.top_k > 0 && out.size() > options.top_k) {
    out.resize(options.top_k);
  }
  return out;
}

}  // namespace

std::vector<ScoredMatch> scored_match(const FilterStore& store,
                                      const InvertedIndex& index,
                                      std::span<const TermId> doc_terms,
                                      const ScoredMatchOptions& options,
                                      MatchAccounting* accounting) {
  MatchAccounting acc;
  std::unordered_map<FilterId, std::uint32_t> counts;
  // postings_into is zero-copy outside frozen-compressed mode; inside it,
  // each list decodes into this reused buffer (this is the reference
  // kernel, not a hot path).
  std::vector<FilterId> decode_buf;
  for (TermId term : doc_terms) {
    const auto list = index.postings_into(term, decode_buf, &acc);
    if (list.empty()) continue;
    ++acc.lists_retrieved;
    acc.postings_scanned += list.size();
    for (FilterId f : list) ++counts[f];
  }
  std::vector<FilterId> candidates;
  candidates.reserve(counts.size());
  for (const auto& [filter, count] : counts) candidates.push_back(filter);
  auto out = score_candidates(store, doc_terms, options, candidates, acc);
  if (accounting) *accounting = acc;
  return out;
}

std::vector<ScoredMatch> scored_match(const FilterStore& store,
                                      const InvertedIndex& index,
                                      std::span<const TermId> doc_terms,
                                      const ScoredMatchOptions& options,
                                      MatchScratch& scratch,
                                      MatchAccounting* accounting) {
  MatchAccounting acc;
  // Bloom screen, as in SiftMatcher's scratch kernels: summary-negative
  // terms provably have no postings, so skipping their probes changes no
  // accounting; a document losing every term short-circuits.
  auto& screened_buf = scratch.screened_terms();
  std::span<const TermId> screened = doc_terms;
  if (const auto* summary = index.term_summary(); summary != nullptr) {
    screened_buf.clear();
    for (const TermId t : doc_terms) {
      if (summary->may_contain(t)) {
        screened_buf.push_back(t);
      } else {
        ++acc.postings_skipped;
      }
    }
    screened = screened_buf;
    if (screened.empty() && !doc_terms.empty()) {
      ++acc.bloom_rejects;
      if (accounting) *accounting = acc;
      return {};
    }
  }
  scratch.begin(store.size());
  for (TermId term : screened) {
    // Block-at-a-time on a frozen-compressed index (decodes reuse the
    // scratch buffer and feed the SIMD bump kernel unchanged); one
    // zero-copy call otherwise.
    bool retrieved = false;
    index.for_each_posting_block(
        term, scratch.decode_buffer(),
        [&](std::span<const FilterId> block) {
          if (!retrieved) {
            retrieved = true;
            ++acc.lists_retrieved;
          }
          acc.postings_scanned += block.size();
          scratch.bump_list(block);
        },
        &acc);
  }
  auto out =
      score_candidates(store, doc_terms, options, scratch.candidates(), acc);
  if (accounting) *accounting = acc;
  return out;
}

}  // namespace move::index
