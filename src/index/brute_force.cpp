#include "index/brute_force.hpp"

namespace move::index {

std::vector<FilterId> brute_force_match(const FilterStore& store,
                                        std::span<const TermId> doc_terms,
                                        const MatchOptions& options) {
  std::vector<FilterId> out;
  for (std::uint32_t i = 0; i < store.size(); ++i) {
    const FilterId id{i};
    if (store.matches(id, doc_terms, options)) out.push_back(id);
  }
  return out;
}

}  // namespace move::index
