#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

/// Delta-compressed posting blocks — the frozen-compressed storage mode of
/// InvertedIndex (see its doc-comment for the mode contract).
///
/// A posting list (FilterIds, sorted ascending, duplicates allowed) is cut
/// into fixed-size logical blocks of `block_size` entries (the last block may
/// be short). Each block is encoded independently as
///
///     [1-byte mode header][payload]
///
/// where the payload holds the block's count-1 *deltas* (gaps between
/// consecutive ids; >= 0 because duplicates are legal). Two payload modes,
/// chosen per block by exact byte cost at encode time (deterministic — the
/// same list always encodes to the same bytes):
///
///  * `0xFF` — **varint**: each delta as LEB128 (7 bits per byte, low bits
///    first, high bit = continuation). The mode that names the format; wins
///    on wild gap distributions.
///  * `0x00..0x1F` — **Rice(k)**: each delta d as (d >> k) one-bits, a zero
///    bit, then the k low bits of d, MSB-first; the block padded with zero
///    bits to a byte boundary. Wins on the geometric-ish gaps of a dense
///    home-node id space, where it reaches ~log2(mean gap) + 1.5 bits per
///    posting — the sub-byte regime plain varint (>= 1 byte) can never hit.
///  * `0x20` — **run**: every delta is exactly 1 and the payload is EMPTY —
///    the header alone carries the block. This is the home-term-grouped
///    bulk-load layout (a StorageNode draining MoveScheme's per-home entry
///    stream assigns consecutive local ids per home list), where it costs
///    ~0.06 bits per posting and decodes as an iota fill, faster than
///    scanning raw postings. Zero payload always wins the byte-cost
///    contest, so the choice stays deterministic.
///
/// The FIRST block of a list additionally prefixes its payload with the
/// varint of the first id itself (it has no predecessor). Every later block
/// gets its first id from its SkipEntry, which also holds the block's byte
/// offset relative to the list's byte base — so a matcher can seek to any
/// block (galloping, SIMD bump_list, Bloom-gated short-circuit) without
/// decoding its predecessors, and per-block counts are implied by the list's
/// posting count and `block_size`.
///
/// The decoder is *checked*: it never reads outside the given byte range and
/// returns a DecodeStatus instead of trusting the stream — truncated
/// payloads, unknown headers, overflowing deltas, trailing bytes, and
/// inconsistent skip tables are all rejected cleanly (the property/fuzz
/// suite under `ctest -L codec` drives corrupted corpora through it under
/// asan).
namespace move::index::codec {

/// Postings per block. 128 keeps a block's decode buffer L1-resident while
/// amortizing the 8-byte skip entry to 0.0625 bytes per posting.
inline constexpr std::size_t kBlockSize = 128;

/// Directory entry for every block after a list's first: where it starts
/// (relative to the list's byte base) and the id it starts with.
struct SkipEntry {
  std::uint32_t first_id = 0;     ///< first posting id in the block
  std::uint32_t byte_offset = 0;  ///< block start, relative to the list base
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kBadHeader,      ///< unknown block-mode byte
  kTruncated,      ///< payload ended mid-codeword (or block range too small)
  kOverflow,       ///< delta/id does not fit 32 bits (corrupt stream)
  kTrailingBytes,  ///< block decoded fully but bytes remain
  kBadCount,       ///< impossible entry count or inconsistent skip table
  kOutOfOrder,     ///< a block's first id precedes its predecessor's last
};

[[nodiscard]] const char* to_string(DecodeStatus status) noexcept;

/// One encoded posting list: the concatenated block bytes plus the skip
/// directory (one entry per block after the first; empty for lists of at
/// most `block_size` postings).
struct EncodedList {
  std::vector<std::uint8_t> bytes;
  std::vector<SkipEntry> skips;
};

/// Encodes `postings` (sorted ascending, duplicates allowed) into blocks of
/// `block_size`. Deterministic; an empty list encodes to empty bytes.
[[nodiscard]] EncodedList encode_list(std::span<const FilterId> postings,
                                      std::size_t block_size = kBlockSize);

/// Outcome of a single-block decode: `produced` ids were written to the
/// output (== count iff status is kOk; on error it is the prefix decoded
/// before the fault, never more than count).
struct BlockDecode {
  DecodeStatus status = DecodeStatus::kOk;
  std::uint32_t produced = 0;
};

/// Decodes a list's FIRST block: `bytes` must be exactly the block's byte
/// range, `count` its entry count (>= 1), `out` room for `count` ids.
[[nodiscard]] BlockDecode decode_first_block(std::span<const std::uint8_t> bytes,
                                             std::uint32_t count,
                                             FilterId* out) noexcept;

/// Decodes a later block whose first id (`first`) comes from its SkipEntry.
[[nodiscard]] BlockDecode decode_block(std::span<const std::uint8_t> bytes,
                                       std::uint32_t first, std::uint32_t count,
                                       FilterId* out) noexcept;

/// Decodes a whole encoded list of `posting_count` ids into `out`
/// (overwritten). Validates the skip directory (monotonic in-range offsets,
/// per-block first ids not regressing) before touching any payload, so a
/// corrupted length field is rejected without a single out-of-bounds read.
/// On error `out` holds the prefix decoded so far.
[[nodiscard]] DecodeStatus decode_list(const EncodedList& enc,
                                       std::size_t posting_count,
                                       std::size_t block_size,
                                       std::vector<FilterId>& out);

}  // namespace move::index::codec
