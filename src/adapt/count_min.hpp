#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

/// Count-Min sketch (Cormode & Muthukrishnan) plus a ring-buffered windowed
/// variant.
///
/// The plain sketch answers point queries with one-sided error: the
/// estimate never underestimates, and overestimates by more than
/// `epsilon() * total()` only with probability exp(-depth) per query (the
/// property suite checks both across seeds). The windowed variant keeps
/// `windows` independent buckets in a ring; `rotate()` retires the oldest
/// bucket wholesale, so the estimate covers exactly the last `windows`
/// observation windows with O(width * depth * windows) memory — the adapt
/// layer's bounded-memory replacement for the meta store's exact per-term
/// document counters, which grow with the live vocabulary.
namespace move::adapt {

class CountMin {
 public:
  CountMin(std::size_t width, std::size_t depth, std::uint64_t seed);

  void add(TermId term, std::uint64_t weight = 1);

  /// Point estimate — min over rows; `>= true count`, always.
  [[nodiscard]] std::uint64_t estimate(TermId term) const;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  /// Classic additive-error factor: an estimate exceeds the true count by
  /// more than `epsilon() * total()` with probability at most exp(-depth).
  [[nodiscard]] double epsilon() const noexcept;

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cells_.capacity() * sizeof(std::uint64_t);
  }

  void clear();

 private:
  [[nodiscard]] std::size_t cell(std::size_t row, TermId term) const;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> cells_;  // row-major, width_ * depth_
  std::uint64_t total_ = 0;
};

/// Ring of `windows` Count-Min buckets; adds land in the current bucket,
/// estimates sum all live buckets, and rotate() clears the oldest so
/// retired traffic stops contributing — a sliding window in O(1) per
/// rotation with no per-item timestamps.
class WindowedCountMin {
 public:
  WindowedCountMin(std::size_t width, std::size_t depth, std::size_t windows,
                   std::uint64_t seed);

  void add(TermId term, std::uint64_t weight = 1);

  /// Advances the ring: the oldest bucket is cleared and becomes current.
  void rotate();

  /// Estimate over the live window span (sum of per-bucket estimates; each
  /// bucket is one-sided, so the sum never underestimates either).
  [[nodiscard]] std::uint64_t estimate(TermId term) const;

  /// Total stream weight across the live window span.
  [[nodiscard]] std::uint64_t window_total() const noexcept;

  /// Additive error bound over the window span: sum of per-bucket bounds.
  [[nodiscard]] double error_bound() const noexcept;

  [[nodiscard]] std::size_t windows() const noexcept {
    return buckets_.size();
  }
  /// The bucket accumulating the CURRENT (not yet rotated) window — the
  /// un-smeared view drift detection compares window-over-window, while
  /// `estimate()` keeps the multi-window smoothing allocation wants.
  [[nodiscard]] const CountMin& current() const noexcept {
    return buckets_[current_];
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  void clear();

 private:
  std::vector<CountMin> buckets_;
  std::size_t current_ = 0;
};

}  // namespace move::adapt
