#include "adapt/online.hpp"

#include <algorithm>

namespace move::adapt {

OnlineResult run_online(core::MoveScheme& scheme,
                        const workload::TermSetTable& docs,
                        const OnlineOptions& options) {
  OnlineResult result;
  auto& m = result.metrics;
  auto& cluster = scheme.cluster();
  const std::size_t window = std::max<std::size_t>(1, options.window_docs);

  WorkloadEstimator estimator(options.estimator);
  scheme.set_workload_observer(&estimator);  // replays p_i, taps the hot path
  DriftDetector detector(options.drift);

  MigrationOptions migration = options.migration;
  if (options.full_reallocation) migration.paced = false;
  MigrationPlanner planner(scheme, options.run.transport, migration);

  std::uint64_t terms_drifted = 0;
  for (std::size_t start = 0; start < docs.size(); start += window) {
    const std::size_t end = std::min(docs.size(), start + window);
    workload::TermSetTable chunk;
    for (std::size_t i = start; i < end; ++i) chunk.add(docs.row(i));

    // Migrations started after the previous window are still in flight on
    // the engine: their batches interleave with this window's documents,
    // which is where the (bounded) throughput dip shows up.
    const auto wm = run_dissemination(scheme, chunk, options.run);

    m.documents_published += wm.documents_published;
    m.documents_completed += wm.documents_completed;
    m.notifications += wm.notifications;
    m.makespan_us += wm.makespan_us;
    m.latencies_us.insert(m.latencies_us.end(), wm.latencies_us.begin(),
                          wm.latencies_us.end());
    if (m.node_busy_us.size() < wm.node_busy_us.size()) {
      m.node_busy_us.resize(wm.node_busy_us.size(), 0.0);
      m.node_docs.resize(wm.node_docs.size(), 0);
    }
    for (std::size_t n = 0; n < wm.node_busy_us.size(); ++n) {
      m.node_busy_us[n] += wm.node_busy_us[n];
      m.node_docs[n] += wm.node_docs[n];
    }
    m.node_storage = wm.node_storage;
    m.match_acc.lists_retrieved += wm.match_acc.lists_retrieved;
    m.match_acc.postings_scanned += wm.match_acc.postings_scanned;
    m.match_acc.candidates_verified += wm.match_acc.candidates_verified;
    m.match_acc.bloom_rejects += wm.match_acc.bloom_rejects;
    m.match_acc.postings_skipped += wm.match_acc.postings_skipped;
    m.fault_acc += wm.fault_acc;
    m.net_acc += wm.net_acc;

    OnlineWindow sample;
    sample.docs = end - start;
    sample.throughput_per_sec = wm.throughput_per_sec();

    // Close the observation window: compare the head distribution against
    // the previous window, then age the frequency ring.
    if (end - start >= options.min_observations) {
      const auto shares = estimator.window_shares(options.drift_top_k);
      const DriftReport report = detector.observe(shares);
      sample.l1 = report.l1;
      sample.drifted = report.drifted;
      terms_drifted += report.drifted_terms.size();
      if (report.drifted && end < docs.size()) {
        const auto inputs =
            estimator.estimate_inputs(cluster.ring(), cluster.size());
        std::vector<NodeId> homes;
        if (!options.full_reallocation) {
          for (TermId t : report.drifted_terms) {
            homes.push_back(cluster.ring().home_of_term(t));
          }
          std::sort(homes.begin(), homes.end());
          homes.erase(std::unique(homes.begin(), homes.end()), homes.end());
        }
        // Full re-allocation passes no home list: every home re-plans and
        // bursts; incremental migrates just the drifted homes, paced.
        sample.homes_started = planner.start(inputs, homes);
        if (sample.homes_started > 0) ++result.reallocations;
      }
    }
    estimator.rotate_window();
    sample.postings_moved = planner.progress().postings_moved;
    result.windows.push_back(sample);
  }

  // Drain any migration still in flight after the last window — documents
  // are no longer running, so this is pure adaptation overhead (stall).
  const sim::Time drain_start = cluster.engine().now();
  cluster.engine().run();
  const sim::Time stall = cluster.engine().now() - drain_start;

  scheme.set_workload_observer(nullptr);

  m.adapt_acc = planner.progress();
  m.adapt_acc.windows = result.windows.size();
  m.adapt_acc.reallocations = result.reallocations;
  m.adapt_acc.terms_drifted = terms_drifted;
  m.adapt_acc.sketch_bytes = static_cast<double>(estimator.memory_bytes());
  m.adapt_acc.sketch_error_bound = estimator.q_error_bound();
  m.adapt_acc.stall_us = stall;
  return result;
}

}  // namespace move::adapt
