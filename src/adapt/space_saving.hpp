#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

/// Space-Saving top-k sketch (Metwally et al., "Efficient Computation of
/// Frequent and Top-k Elements in Data Streams").
///
/// Tracks at most `capacity` terms with counts that never underestimate:
/// when a new term arrives at a full sketch, it replaces the current minimum
/// and inherits its count as both starting value and recorded error. The
/// classic guarantees (asserted by the sketch property suite) are:
///  * `estimate(t) >= true_count(t)` for every tracked term,
///  * `estimate(t) - error(t) <= true_count(t)` (the error brackets the
///    overestimate),
///  * `min_count() <= total() / capacity`, and
///  * every term whose true count exceeds `min_count()` is tracked — the
///    guaranteed-top-k containment the adapt layer's popularity estimate
///    relies on.
///
/// Backed by a min-heap over counts plus a term -> heap-slot map, so an
/// offer is O(log capacity) and memory is O(capacity), independent of the
/// stream length or vocabulary size — the point of replacing the meta
/// store's exact per-term counters on the hot path.
namespace move::adapt {

struct SketchEntry {
  TermId term{0};
  std::uint64_t count = 0;  ///< overestimate of the term's stream weight
  std::uint64_t error = 0;  ///< max possible overestimation for this entry
};

class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity);

  /// Observes `weight` occurrences of `term`.
  void offer(TermId term, std::uint64_t weight = 1);

  [[nodiscard]] bool tracked(TermId term) const {
    return slot_of_.find(term) != slot_of_.end();
  }
  /// Count upper bound: the tracked count, or `min_count()` for untracked
  /// terms (an untracked term cannot have occurred more often than that).
  [[nodiscard]] std::uint64_t estimate(TermId term) const;
  /// Overestimation bound for a tracked term (0 if never evicted-in);
  /// `min_count()` for untracked terms.
  [[nodiscard]] std::uint64_t error(TermId term) const;

  /// Smallest tracked count (0 while the sketch is under capacity).
  [[nodiscard]] std::uint64_t min_count() const {
    return heap_.size() < capacity_ || heap_.empty() ? 0 : heap_[0].count;
  }
  /// Total stream weight observed since construction / clear().
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Tracked entries, highest count first (count ties: lower term first, so
  /// the order is deterministic across runs).
  [[nodiscard]] std::vector<SketchEntry> entries_by_count() const;

  /// Bytes held by the sketch — constant once warm, whatever the stream.
  [[nodiscard]] std::size_t memory_bytes() const;

  void clear();

 private:
  void sift_up(std::size_t slot);
  void sift_down(std::size_t slot);
  void swap_slots(std::size_t a, std::size_t b);

  std::size_t capacity_;
  std::vector<SketchEntry> heap_;  // min-heap on count
  std::unordered_map<TermId, std::size_t> slot_of_;
  std::uint64_t total_ = 0;
};

}  // namespace move::adapt
