#pragma once

#include <cstddef>
#include <vector>

#include "adapt/drift.hpp"
#include "adapt/estimator.hpp"
#include "adapt/migration.hpp"
#include "core/adaptive.hpp"
#include "core/experiment.hpp"
#include "core/move_scheme.hpp"

/// run_online — the §V renewal scheme as a continuously operating control
/// loop (contrast core::run_adaptive, the offline stop-the-world variant):
///
///   window of documents -> sketch-estimated p'/q' -> drift check ->
///   incremental migration of drifted homes, OVERLAPPED with the next
///   window's traffic -> repeat.
///
/// Differences from run_adaptive, in order of importance:
///  * estimation is streaming (Space-Saving + windowed Count-Min via the
///    scheme's WorkloadObserver hook) — bounded memory, no exact meta
///    counters on the hot path;
///  * re-allocation triggers only when the drift detector fires, and moves
///    only the drifted homes (or everything, unpaced, when
///    `full_reallocation` is set — the fig11 baseline);
///  * moves are live: bounded high-priority batches with a
///    double-registration window, so matching stays exact mid-migration
///    and documents keep flowing while filters travel.
namespace move::adapt {

struct OnlineOptions {
  /// Documents per observation window.
  std::size_t window_docs = 1'000;
  /// Skip the drift check while a window saw fewer documents than this.
  std::size_t min_observations = 100;
  core::RunConfig run;
  EstimatorOptions estimator;
  DriftOptions drift;
  MigrationOptions migration;
  /// Snapshot size handed to the drift detector per window.
  std::size_t drift_top_k = 64;
  /// Baseline mode: every drift re-allocates ALL homes in one unpaced
  /// burst — the offline renewal scheme's cost profile, for comparison.
  bool full_reallocation = false;
};

/// One observation window's outcome (fig11's per-window series).
struct OnlineWindow {
  std::size_t docs = 0;
  double throughput_per_sec = 0.0;
  double l1 = 0.0;               ///< drift distance vs the previous window
  bool drifted = false;
  std::size_t homes_started = 0;  ///< migrations kicked off after this window
  std::uint64_t postings_moved = 0;  ///< cumulative at window close
};

struct OnlineResult {
  sim::RunMetrics metrics;            ///< aggregated; adapt_acc filled
  std::vector<OnlineWindow> windows;
  std::size_t reallocations = 0;      ///< windows that triggered migration
};

/// Streams `docs` through `scheme` in windows with the adaptive control
/// loop engaged. The scheme must be registered and allocated; a transport
/// in `options.run` carries both documents and migration batches. The
/// observer is attached for the duration and detached before returning.
[[nodiscard]] OnlineResult run_online(core::MoveScheme& scheme,
                                      const workload::TermSetTable& docs,
                                      const OnlineOptions& options);

}  // namespace move::adapt
