#include "adapt/drift.hpp"

#include <algorithm>
#include <cmath>

namespace move::adapt {

DriftReport DriftDetector::observe(
    std::span<const std::pair<TermId, double>> shares) {
  std::vector<std::pair<TermId, double>> current(shares.begin(), shares.end());
  std::sort(current.begin(), current.end());

  DriftReport report;
  if (!has_previous_) {
    previous_ = std::move(current);
    has_previous_ = true;
    return report;
  }

  // Merge-walk the two term-sorted snapshots: L1 over the union, overlap
  // over the intersection, and the per-term deltas in one pass.
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t common = 0;
  double l1 = 0.0;
  while (i < previous_.size() || j < current.size()) {
    TermId term{0};
    double before = 0.0;
    double after = 0.0;
    if (j >= current.size() ||
        (i < previous_.size() && previous_[i].first < current[j].first)) {
      term = previous_[i].first;
      before = previous_[i].second;
      ++i;
    } else if (i >= previous_.size() || current[j].first < previous_[i].first) {
      term = current[j].first;
      after = current[j].second;
      ++j;
    } else {
      term = previous_[i].first;
      before = previous_[i].second;
      after = current[j].second;
      ++i;
      ++j;
      ++common;
    }
    const double delta = std::abs(after - before);
    l1 += delta;
    if (delta > options_.term_threshold) {
      report.drifted_terms.push_back(term);
    }
  }
  report.l1 = 0.5 * l1;
  const std::size_t smaller = std::min(previous_.size(), current.size());
  report.topk_overlap =
      smaller == 0 ? 1.0
                   : static_cast<double>(common) / static_cast<double>(smaller);
  report.drifted = report.l1 > options_.l1_threshold ||
                   report.topk_overlap < options_.min_overlap;
  if (!report.drifted) report.drifted_terms.clear();

  previous_ = std::move(current);
  return report;
}

void DriftDetector::reset() {
  previous_.clear();
  has_previous_ = false;
}

}  // namespace move::adapt
