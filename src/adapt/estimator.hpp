#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "adapt/count_min.hpp"
#include "adapt/space_saving.hpp"
#include "core/allocation.hpp"
#include "core/workload_observer.hpp"
#include "kv/ring.hpp"

/// Streaming replacement for the meta stores' exact p'/q' counters (§V).
///
/// Popularity p_i (filters per term) feeds a Space-Saving sketch — filter
/// registrations are heavy-tailed, so the heads the allocation actually
/// reacts to are exactly what Space-Saving guarantees to retain.
/// Frequency q_i (documents per term) feeds a Space-Saving candidate set
/// for WHICH terms are hot plus a windowed Count-Min for HOW hot they were
/// over the last few observation windows, so old traffic ages out the way
/// reset_document_counters() used to forget it, but in bounded memory.
///
/// The estimator produces the same per-home AllocationInput aggregates
/// MoveScheme::allocate_from_observed() built from exact counters; the
/// difference is the tail: terms outside the sketches contribute nothing,
/// which perturbs allocations by at most the sketch error bounds the test
/// suite asserts.
namespace move::adapt {

struct EstimatorOptions {
  /// Space-Saving capacity for the filter-popularity sketch.
  std::size_t filter_top_k = 512;
  /// Space-Saving capacity for the document-term candidate set.
  std::size_t doc_top_k = 512;
  /// Count-Min geometry for the windowed frequency estimate.
  std::size_t cm_width = 1024;
  std::size_t cm_depth = 4;
  /// Ring depth: how many observation windows the q estimate spans.
  std::size_t cm_windows = 4;
  std::uint64_t seed = 0xada9705eULL;
};

class WorkloadEstimator final : public core::WorkloadObserver {
 public:
  explicit WorkloadEstimator(EstimatorOptions options = {});

  // --- WorkloadObserver ----------------------------------------------------
  void on_document_term(TermId term) override;
  void on_filter_term(TermId term) override;

  /// Closes the current observation window: the windowed frequency ring
  /// advances (the oldest window's documents stop counting).
  void rotate_window();

  /// Top-`k` (term, share) snapshot of the CURRENT observation window's
  /// document-term distribution — the drift detector's input (one bucket,
  /// not the smoothed ring, so consecutive snapshots see an abrupt switch
  /// at full strength). Order is deterministic (share desc, term asc).
  [[nodiscard]] std::vector<std::pair<TermId, double>> window_shares(
      std::size_t k) const;

  /// Per-home (p', q') aggregates under `ring`, same shape the exact
  /// collector produced: p from the filter sketch (share of tracked
  /// registrations), q from the windowed frequency estimate of the tracked
  /// document terms.
  [[nodiscard]] std::vector<core::AllocationInput> estimate_inputs(
      const kv::HashRing& ring, std::size_t cluster_size) const;

  /// Additive error bound on any single windowed q estimate, in documents
  /// (the Count-Min epsilon * window total, summed over live buckets).
  [[nodiscard]] double q_error_bound() const noexcept {
    return doc_window_.error_bound();
  }

  /// Total bytes across all three sketches — bounded by the options, not
  /// by the stream.
  [[nodiscard]] std::size_t memory_bytes() const;

  [[nodiscard]] const SpaceSaving& filter_sketch() const noexcept {
    return filter_terms_;
  }
  [[nodiscard]] const SpaceSaving& doc_sketch() const noexcept {
    return doc_terms_;
  }
  [[nodiscard]] const WindowedCountMin& doc_window() const noexcept {
    return doc_window_;
  }

  void clear();

 private:
  EstimatorOptions options_;
  SpaceSaving filter_terms_;   // p_i numerators
  SpaceSaving doc_terms_;      // q_i candidate heads
  WindowedCountMin doc_window_;  // q_i windowed counts
};

}  // namespace move::adapt
