#include "adapt/count_min.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/hash.hpp"

namespace move::adapt {

CountMin::CountMin(std::size_t width, std::size_t depth, std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  if (width == 0 || depth == 0) {
    throw std::invalid_argument("CountMin width/depth must be positive");
  }
  cells_.assign(width_ * depth_, 0);
}

std::size_t CountMin::cell(std::size_t row, TermId term) const {
  // Independent-enough row hashes from one seed: mix the term with a
  // per-row derived constant (deterministic across platforms, like every
  // hash in the pipeline).
  const std::uint64_t h = common::mix64(
      common::hash_combine(seed_ + row, term.value));
  return row * width_ + static_cast<std::size_t>(h % width_);
}

void CountMin::add(TermId term, std::uint64_t weight) {
  for (std::size_t row = 0; row < depth_; ++row) {
    cells_[cell(row, term)] += weight;
  }
  total_ += weight;
}

std::uint64_t CountMin::estimate(TermId term) const {
  std::uint64_t best = cells_[cell(0, term)];
  for (std::size_t row = 1; row < depth_; ++row) {
    best = std::min(best, cells_[cell(row, term)]);
  }
  return best;
}

double CountMin::epsilon() const noexcept {
  return std::exp(1.0) / static_cast<double>(width_);
}

void CountMin::clear() {
  std::fill(cells_.begin(), cells_.end(), 0);
  total_ = 0;
}

WindowedCountMin::WindowedCountMin(std::size_t width, std::size_t depth,
                                   std::size_t windows, std::uint64_t seed) {
  if (windows == 0) {
    throw std::invalid_argument("WindowedCountMin needs >= 1 window");
  }
  buckets_.reserve(windows);
  for (std::size_t w = 0; w < windows; ++w) {
    // Every bucket uses the same hash family so per-bucket estimates of one
    // term hit the same cells and the summed estimate stays one-sided.
    buckets_.emplace_back(width, depth, seed);
  }
}

void WindowedCountMin::add(TermId term, std::uint64_t weight) {
  buckets_[current_].add(term, weight);
}

void WindowedCountMin::rotate() {
  current_ = (current_ + 1) % buckets_.size();
  buckets_[current_].clear();
}

std::uint64_t WindowedCountMin::estimate(TermId term) const {
  std::uint64_t sum = 0;
  for (const CountMin& b : buckets_) sum += b.estimate(term);
  return sum;
}

std::uint64_t WindowedCountMin::window_total() const noexcept {
  std::uint64_t sum = 0;
  for (const CountMin& b : buckets_) sum += b.total();
  return sum;
}

double WindowedCountMin::error_bound() const noexcept {
  double sum = 0;
  for (const CountMin& b : buckets_) {
    sum += b.epsilon() * static_cast<double>(b.total());
  }
  return sum;
}

std::size_t WindowedCountMin::memory_bytes() const noexcept {
  std::size_t sum = 0;
  for (const CountMin& b : buckets_) sum += b.memory_bytes();
  return sum;
}

void WindowedCountMin::clear() {
  for (CountMin& b : buckets_) b.clear();
  current_ = 0;
}

}  // namespace move::adapt
