#include "adapt/migration.hpp"

#include <algorithm>

namespace move::adapt {

namespace {

bool same_grid(const std::optional<core::ForwardingTable>& a,
               const std::optional<core::ForwardingTable>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  if (a->partitions() != b->partitions() || a->columns() != b->columns()) {
    return false;
  }
  for (std::uint32_t r = 0; r < a->partitions(); ++r) {
    for (std::uint32_t c = 0; c < a->columns(); ++c) {
      if (a->at(r, c) != b->at(r, c)) return false;
    }
  }
  return true;
}

}  // namespace

MigrationPlanner::MigrationPlanner(core::MoveScheme& scheme,
                                   net::Transport* transport,
                                   MigrationOptions options)
    : scheme_(&scheme),
      cluster_(&scheme.cluster()),
      transport_(transport),
      options_(options),
      migrating_(cluster_->size(), 0) {
  if (options_.batch_entries == 0) {
    options_.batch_entries = fault::kDefaultMigrationBatch;
  }
}

bool MigrationPlanner::stale(const HomeMigration& hm) const {
  return hm.generation != scheme_->build_generation();
}

std::size_t MigrationPlanner::start(
    const std::vector<core::AllocationInput>& inputs,
    std::span<const NodeId> homes) {
  if (migrating_.size() < cluster_->size()) {
    migrating_.resize(cluster_->size(), 0);
  }
  const auto allocs = scheme_->plan_allocations(inputs);

  // Re-derive the FULL placement exactly as build_grids would: every home
  // with entries, hottest first, against a zero-start cumulative load
  // vector. Planning is thus a pure function of `inputs` — replanning with
  // unchanged estimates reproduces the installed grids exactly, so a
  // converged cluster never migrates (the no-op fixed point the control
  // loop's stability depends on).
  std::vector<std::uint32_t> plan_order(cluster_->size());
  for (std::uint32_t m = 0; m < cluster_->size(); ++m) plan_order[m] = m;
  std::sort(plan_order.begin(), plan_order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return inputs[a].q * inputs[a].p > inputs[b].q * inputs[b].p;
            });

  std::vector<double> slot_load(cluster_->size(), 0.0);
  std::vector<std::optional<core::ForwardingTable>> planned(cluster_->size());
  for (std::uint32_t m : plan_order) {
    if (scheme_->home_entries(NodeId{m}).empty()) continue;
    auto table = scheme_->plan_grid(NodeId{m}, allocs[m], slot_load);
    if (!table.has_value()) continue;
    const double share =
        inputs[m].p * inputs[m].q /
        (static_cast<double>(table->partitions()) * table->columns());
    for (NodeId n : table->all_nodes()) slot_load[n.value] += share;
    planned[m] = std::move(table);
  }

  // Migrate only the requested homes (all of them when `homes` is empty)
  // whose planned grid differs from the installed one, hottest first.
  std::vector<NodeId> order(homes.begin(), homes.end());
  if (order.empty()) {
    for (std::uint32_t m = 0; m < cluster_->size(); ++m) {
      if (!scheme_->home_entries(NodeId{m}).empty()) {
        order.push_back(NodeId{m});
      }
    }
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double wa = inputs[a.value].p * inputs[a.value].q;
    const double wb = inputs[b.value].p * inputs[b.value].q;
    if (wa != wb) return wa > wb;
    return a.value < b.value;
  });

  std::size_t started = 0;
  for (NodeId home : order) {
    if (migrating_[home.value]) continue;  // in-flight move finishes first
    if (scheme_->home_entries(home).empty()) continue;
    if (same_grid(planned[home.value], scheme_->tables()[home.value])) {
      continue;
    }
    start_home(home, allocs[home.value], std::move(planned[home.value]));
    ++started;
  }
  return started;
}

void MigrationPlanner::start_home(NodeId home, const core::Allocation& alloc,
                                  std::optional<core::ForwardingTable> table) {
  auto hm = std::make_shared<HomeMigration>();
  hm->home = home;
  hm->alloc = alloc;
  hm->table = std::move(table);
  hm->generation = scheme_->build_generation();
  hm->started_us = cluster_->engine().now();
  migrating_[home.value] = 1;
  ++active_;

  if (hm->table.has_value()) {
    // Group the home's entries by receiving node (a filter is copied to
    // every row of its column), then chunk each group into bounded batches.
    // Node-id order keeps the batch sequence deterministic.
    std::vector<std::vector<core::MoveScheme::HomeEntry>> per_node(
        cluster_->size());
    std::vector<std::vector<NodeId>> column_nodes(hm->table->columns());
    for (std::uint32_t c = 0; c < hm->table->columns(); ++c) {
      column_nodes[c] = hm->table->column_nodes(c);
    }
    for (const auto& e : scheme_->home_entries(home)) {
      for (NodeId n : column_nodes[hm->table->column_of(e.filter)]) {
        per_node[n.value].push_back(e);
      }
    }
    for (std::uint32_t n = 0; n < per_node.size(); ++n) {
      const auto& entries = per_node[n];
      for (std::size_t at = 0; at < entries.size();
           at += options_.batch_entries) {
        const std::size_t len =
            std::min(options_.batch_entries, entries.size() - at);
        Batch b;
        b.target = NodeId{n};
        b.entries.assign(entries.begin() + static_cast<std::ptrdiff_t>(at),
                         entries.begin() +
                             static_cast<std::ptrdiff_t>(at + len));
        hm->batches.push_back(std::move(b));
      }
    }
  }

  if (hm->batches.empty()) {
    // Grid shrank to nothing (or nothing to copy): the swap is pure
    // bookkeeping — install immediately, retire what the old grid held.
    finish(hm);
    return;
  }
  dispatch(hm);
}

void MigrationPlanner::dispatch(const std::shared_ptr<HomeMigration>& hm) {
  if (hm->aborted) return;
  if (options_.paced) {
    if (hm->next_batch < hm->batches.size()) {
      send_batch(hm, hm->next_batch++, options_.max_resends);
    }
    return;
  }
  // Unpaced: the full-reallocation burst — every batch departs at once.
  while (hm->next_batch < hm->batches.size()) {
    send_batch(hm, hm->next_batch++, options_.max_resends);
  }
}

void MigrationPlanner::send_batch(const std::shared_ptr<HomeMigration>& hm,
                                  std::size_t idx, std::size_t resends_left) {
  if (hm->aborted) return;
  const Batch& b = hm->batches[idx];
  const double transfer =
      options_.batch_base_transfer_us +
      options_.per_entry_transfer_us * static_cast<double>(b.entries.size());
  ++progress_.migration_rpcs;

  auto deliver = [this, hm, idx](sim::Time) {
    if (hm->aborted) return;
    const Batch& batch = hm->batches[idx];
    const double service = options_.per_entry_service_us *
                           static_cast<double>(batch.entries.size());
    // Registration occupies the receiver like any other job — migration
    // competes with document matching for the node's serial server, which
    // is precisely the throughput dip the adaptive path must bound.
    cluster_->server(batch.target)
        .submit(service, [this, hm, idx](sim::Time) { apply_batch(hm, idx); });
  };
  auto fail = [this, hm, idx, resends_left](net::SendOutcome) {
    ++progress_.migration_rpcs_dropped;
    if (hm->aborted) return;
    if (resends_left == 0) {
      abort(hm);
      return;
    }
    cluster_->engine().schedule_after(
        options_.resend_pause_us, [this, hm, idx, resends_left] {
          send_batch(hm, idx, resends_left - 1);
        });
  };

  if (transport_ != nullptr) {
    transport_->send(hm->home, b.target, transfer, net::Priority::kHigh,
                     std::move(deliver), std::move(fail));
  } else {
    cluster_->engine().schedule_after(
        transfer, [deliver = std::move(deliver)] { deliver(0); });
  }
}

void MigrationPlanner::apply_batch(const std::shared_ptr<HomeMigration>& hm,
                                   std::size_t idx) {
  if (hm->aborted) return;
  if (stale(*hm)) {
    abort(hm);  // the world was rebuilt under this migration
    return;
  }
  const Batch& b = hm->batches[idx];
  for (const auto& e : b.entries) {
    progress_.postings_moved += scheme_->apply_grid_entry(b.target, e);
  }
  ++progress_.migration_batches;
  ++hm->completed;
  if (hm->completed == hm->batches.size()) {
    finish(hm);
  } else if (options_.paced) {
    dispatch(hm);
  }
}

void MigrationPlanner::finish(const std::shared_ptr<HomeMigration>& hm) {
  if (hm->aborted) return;
  if (stale(*hm)) {
    abort(hm);
    return;
  }
  // Every copy is in place: swap the table (routing flips to the new grid
  // atomically — the double-registration window closes), then retire the
  // displaced copies the old grid no longer serves.
  auto old =
      scheme_->install_table(hm->home, std::move(hm->table), hm->alloc);
  if (old.has_value()) {
    progress_.entries_retired +=
        scheme_->retire_displaced_copies(hm->home, *old);
  }
  ++progress_.homes_migrated;
  progress_.migration_inflight_us +=
      cluster_->engine().now() - hm->started_us;
  migrating_[hm->home.value] = 0;
  --active_;
  hm->aborted = true;  // terminal: late duplicate callbacks become no-ops
}

void MigrationPlanner::abort(const std::shared_ptr<HomeMigration>& hm) {
  if (hm->aborted) return;
  hm->aborted = true;
  // The old table keeps routing (it never stopped); copies already placed
  // are idempotent surplus a future successful migration will retire.
  ++progress_.homes_aborted;
  progress_.migration_inflight_us +=
      cluster_->engine().now() - hm->started_us;
  migrating_[hm->home.value] = 0;
  --active_;
}

}  // namespace move::adapt
