#include "adapt/estimator.hpp"

#include <algorithm>

namespace move::adapt {

WorkloadEstimator::WorkloadEstimator(EstimatorOptions options)
    : options_(options),
      filter_terms_(options.filter_top_k),
      doc_terms_(options.doc_top_k),
      doc_window_(options.cm_width, options.cm_depth, options.cm_windows,
                  options.seed) {}

void WorkloadEstimator::on_document_term(TermId term) {
  doc_terms_.offer(term);
  doc_window_.add(term);
}

void WorkloadEstimator::on_filter_term(TermId term) {
  filter_terms_.offer(term);
}

void WorkloadEstimator::rotate_window() { doc_window_.rotate(); }

std::vector<std::pair<TermId, double>> WorkloadEstimator::window_shares(
    std::size_t k) const {
  // Drift compares consecutive windows, so the snapshot must be the
  // CURRENT window's bucket alone — summing the whole ring would smear an
  // abrupt distribution switch across cm_windows snapshots and dilute the
  // window-over-window L1 below any sane threshold.
  const CountMin& bucket = doc_window_.current();
  const std::uint64_t total = bucket.total();
  std::vector<std::pair<TermId, double>> shares;
  if (total == 0) return shares;

  // Candidates come from the Space-Saving heads; their magnitude from the
  // current window's counts, so a term that was hot three windows ago but
  // is still tracked shows no share once its traffic stops.
  for (const SketchEntry& e : doc_terms_.entries_by_count()) {
    const std::uint64_t est = bucket.estimate(e.term);
    if (est == 0) continue;
    shares.emplace_back(e.term,
                        static_cast<double>(est) / static_cast<double>(total));
  }
  std::sort(shares.begin(), shares.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (shares.size() > k) shares.resize(k);
  return shares;
}

std::vector<core::AllocationInput> WorkloadEstimator::estimate_inputs(
    const kv::HashRing& ring, std::size_t cluster_size) const {
  std::vector<core::AllocationInput> inputs(cluster_size);

  const std::uint64_t filter_total = filter_terms_.total();
  if (filter_total > 0) {
    for (const SketchEntry& e : filter_terms_.entries_by_count()) {
      const NodeId home = ring.home_of_term(e.term);
      if (home.value >= cluster_size) continue;
      inputs[home.value].p += static_cast<double>(e.count) /
                              static_cast<double>(filter_total);
    }
  }

  const std::uint64_t doc_total = doc_window_.window_total();
  if (doc_total > 0) {
    for (const SketchEntry& e : doc_terms_.entries_by_count()) {
      const std::uint64_t est = doc_window_.estimate(e.term);
      if (est == 0) continue;
      const NodeId home = ring.home_of_term(e.term);
      if (home.value >= cluster_size) continue;
      inputs[home.value].q += static_cast<double>(est) /
                              static_cast<double>(doc_total);
    }
  }
  return inputs;
}

std::size_t WorkloadEstimator::memory_bytes() const {
  return filter_terms_.memory_bytes() + doc_terms_.memory_bytes() +
         doc_window_.memory_bytes();
}

void WorkloadEstimator::clear() {
  filter_terms_.clear();
  doc_terms_.clear();
  doc_window_.clear();
}

}  // namespace move::adapt
