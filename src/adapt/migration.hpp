#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/move_scheme.hpp"
#include "fault/fault_plan.hpp"
#include "net/transport.hpp"
#include "sim/adapt_accounting.hpp"

/// Incremental live re-allocation (the renewal scheme of §V made online).
///
/// Given fresh per-home workload estimates, the planner diffs each home's
/// current allocation (n_i, alpha_i -> partitions x columns) against the
/// re-solved one and moves only the homes that changed, one bounded batch
/// at a time, over the transport as high-priority RPCs:
///
///   plan new grid -> copy entries in batches -> install table -> retire
///   displaced copies
///
/// The *double-registration window* is the correctness core: while batches
/// are in flight the OLD table keeps routing (its grid still holds complete
/// column copies), and the new table is installed only after every batch
/// has been delivered AND serviced at its receiver. Matching therefore
/// stays exact at every instant — plan_publish deduplicates matches, so
/// transiently duplicated copies cannot double-deliver, and no route ever
/// sees a partially-copied grid. If a batch exhausts its resends (lossy
/// transport) the home's migration aborts and the old table simply stays —
/// still exact, just un-adapted; already-copied entries are idempotent
/// no-ops for a later attempt.
///
/// Migration work is REAL work: each delivered batch occupies the receiving
/// node's FIFO server for per_entry_service_us per entry, competing with
/// document matching — which is exactly the throughput dip fig11 measures,
/// and why incremental (few drifted homes, paced batches) beats full
/// re-allocation (every home, all batches in one burst).
namespace move::adapt {

struct MigrationOptions {
  /// Entries per migration RPC — defaults to the batch knob shared with
  /// the fault layer's join migration (see fault::kDefaultMigrationBatch).
  std::size_t batch_entries = fault::kDefaultMigrationBatch;
  /// Wire cost of one batch: base + per-entry payload.
  double batch_base_transfer_us = 120.0;
  double per_entry_transfer_us = 0.05;
  /// Receiver-side service charged per entry (index insert + store write),
  /// queued on the node's FIFO server like any other work.
  double per_entry_service_us = 0.6;
  /// Bounded resends after a terminal send failure, then the home aborts.
  std::size_t max_resends = 6;
  sim::Time resend_pause_us = 10'000.0;
  /// Paced mode sends a home's batches one at a time (the next departs when
  /// the previous was serviced); unpaced dispatches them all at once —
  /// the stop-the-world behavior of a full re-allocation.
  bool paced = true;
};

class MigrationPlanner {
 public:
  /// `transport` may be null: batches then ride plain engine delays with
  /// identical timing (the pass-through contract). Scheme and transport
  /// must outlive the planner.
  MigrationPlanner(core::MoveScheme& scheme, net::Transport* transport,
                   MigrationOptions options = {});

  /// Re-solves the allocation from `inputs` and starts migrating `homes`
  /// (every home with entries when `homes` is empty). Homes whose planned
  /// grid is unchanged are skipped; a home already migrating is skipped
  /// (the in-flight move finishes first). Events land on the scheme's
  /// cluster engine; run it to make progress.
  /// @returns homes whose migration actually started.
  std::size_t start(const std::vector<core::AllocationInput>& inputs,
                    std::span<const NodeId> homes);

  /// No migration in flight (all installed or aborted).
  [[nodiscard]] bool idle() const noexcept { return active_ == 0; }
  [[nodiscard]] std::size_t active_homes() const noexcept { return active_; }

  /// Cumulative counters since construction (the run.adapt.* source).
  [[nodiscard]] const sim::AdaptAccounting& progress() const noexcept {
    return progress_;
  }

 private:
  struct Batch {
    NodeId target{0};
    std::vector<core::MoveScheme::HomeEntry> entries;
  };
  struct HomeMigration {
    NodeId home{0};
    core::Allocation alloc;
    std::optional<core::ForwardingTable> table;  // the planned new grid
    std::vector<Batch> batches;
    std::size_t next_batch = 0;   // paced dispatch cursor
    std::size_t completed = 0;    // batches serviced at their receivers
    std::uint64_t generation = 0; // scheme build generation at start
    sim::Time started_us = 0;
    bool aborted = false;
  };

  void start_home(NodeId home, const core::Allocation& alloc,
                  std::optional<core::ForwardingTable> table);
  void dispatch(const std::shared_ptr<HomeMigration>& hm);
  void send_batch(const std::shared_ptr<HomeMigration>& hm, std::size_t idx,
                  std::size_t resends_left);
  void apply_batch(const std::shared_ptr<HomeMigration>& hm, std::size_t idx);
  void finish(const std::shared_ptr<HomeMigration>& hm);
  void abort(const std::shared_ptr<HomeMigration>& hm);
  [[nodiscard]] bool stale(const HomeMigration& hm) const;

  core::MoveScheme* scheme_;
  cluster::Cluster* cluster_;
  net::Transport* transport_;
  MigrationOptions options_;
  sim::AdaptAccounting progress_;
  std::vector<char> migrating_;  // per home: a migration is in flight
  std::size_t active_ = 0;
};

}  // namespace move::adapt
