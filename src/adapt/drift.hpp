#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

/// Window-over-window drift detection on the estimated document-term
/// distribution.
///
/// The adaptive controller hands the detector one top-k share snapshot per
/// observation window; the detector compares it against the previous
/// window's snapshot with two complementary statistics:
///  * normalized L1 distance over the union of both top-k sets (half the
///    sum of absolute share differences, in [0, 1] — total variation
///    restricted to the heads), and
///  * top-k set overlap (|A ∩ B| / min(|A|, |B|), in [0, 1]).
/// Either statistic crossing its threshold flags the window as drifted;
/// the per-term share deltas then name WHICH terms moved, so re-allocation
/// touches only the drifted homes instead of the full trace (the point of
/// the incremental path).
namespace move::adapt {

struct DriftOptions {
  /// L1 distance above this flags drift (0.15 = 15% of probability mass
  /// moved between windows).
  double l1_threshold = 0.15;
  /// Top-k overlap below this flags drift even when L1 is small (the heads
  /// swapped identity without moving much mass).
  double min_overlap = 0.5;
  /// A term whose share moved by more than this is reported as drifted.
  double term_threshold = 0.004;
};

struct DriftReport {
  double l1 = 0.0;
  double topk_overlap = 1.0;
  bool drifted = false;
  std::vector<TermId> drifted_terms;  ///< ascending, |Δshare| > threshold
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftOptions options = {}) : options_(options) {}

  /// Compares this window's (term, share) snapshot against the previous
  /// one and remembers it. The first window never reports drift (there is
  /// nothing to compare against).
  DriftReport observe(std::span<const std::pair<TermId, double>> shares);

  void reset();

  [[nodiscard]] const DriftOptions& options() const noexcept {
    return options_;
  }

 private:
  DriftOptions options_;
  std::vector<std::pair<TermId, double>> previous_;  // sorted by term
  bool has_previous_ = false;
};

}  // namespace move::adapt
