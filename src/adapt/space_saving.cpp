#include "adapt/space_saving.hpp"

#include <algorithm>
#include <stdexcept>

namespace move::adapt {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SpaceSaving capacity must be positive");
  }
  heap_.reserve(capacity);
  slot_of_.reserve(capacity);
}

void SpaceSaving::swap_slots(std::size_t a, std::size_t b) {
  std::swap(heap_[a], heap_[b]);
  slot_of_[heap_[a].term] = a;
  slot_of_[heap_[b].term] = b;
}

void SpaceSaving::sift_up(std::size_t slot) {
  while (slot > 0) {
    const std::size_t parent = (slot - 1) / 2;
    if (heap_[parent].count <= heap_[slot].count) break;
    swap_slots(parent, slot);
    slot = parent;
  }
}

void SpaceSaving::sift_down(std::size_t slot) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * slot + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = slot;
    if (left < n && heap_[left].count < heap_[smallest].count) {
      smallest = left;
    }
    if (right < n && heap_[right].count < heap_[smallest].count) {
      smallest = right;
    }
    if (smallest == slot) break;
    swap_slots(smallest, slot);
    slot = smallest;
  }
}

void SpaceSaving::offer(TermId term, std::uint64_t weight) {
  total_ += weight;
  if (auto it = slot_of_.find(term); it != slot_of_.end()) {
    heap_[it->second].count += weight;
    sift_down(it->second);  // count grew: move away from the min root
    return;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back(SketchEntry{term, weight, 0});
    slot_of_[term] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
    return;
  }
  // Full: the newcomer takes over the minimum entry, inheriting its count
  // as the recorded error (the newcomer may have occurred up to min times
  // before without being tracked).
  SketchEntry& root = heap_[0];
  slot_of_.erase(root.term);
  const std::uint64_t inherited = root.count;
  root = SketchEntry{term, inherited + weight, inherited};
  slot_of_[term] = 0;
  sift_down(0);
}

std::uint64_t SpaceSaving::estimate(TermId term) const {
  auto it = slot_of_.find(term);
  return it == slot_of_.end() ? min_count() : heap_[it->second].count;
}

std::uint64_t SpaceSaving::error(TermId term) const {
  auto it = slot_of_.find(term);
  return it == slot_of_.end() ? min_count() : heap_[it->second].error;
}

std::vector<SketchEntry> SpaceSaving::entries_by_count() const {
  std::vector<SketchEntry> out = heap_;
  std::sort(out.begin(), out.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.term < b.term;
            });
  return out;
}

std::size_t SpaceSaving::memory_bytes() const {
  // Reserved heap storage plus the hash map's node footprint (bucket array
  // + one node per tracked term, both O(capacity)).
  return heap_.capacity() * sizeof(SketchEntry) +
         slot_of_.bucket_count() * sizeof(void*) +
         slot_of_.size() * (sizeof(std::pair<TermId, std::size_t>) +
                            2 * sizeof(void*));
}

void SpaceSaving::clear() {
  heap_.clear();
  slot_of_.clear();
  total_ = 0;
}

}  // namespace move::adapt
