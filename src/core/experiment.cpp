#include "core/experiment.hpp"

#include <algorithm>
#include <memory>

namespace move::core {

namespace {

/// Per-run shared state threaded through the hop callbacks.
struct RunState {
  sim::RunMetrics metrics;
  std::vector<std::uint32_t> outstanding;  // per doc: hops not yet completed
  std::vector<double> publish_time_us;
  bool collect_latencies = true;
  sim::DeliveryLog* delivery_log = nullptr;
  sim::Time last_completion_us = 0;
  sim::Time start_us = 0;

  void complete_hop(std::size_t doc, sim::Time at) {
    if (--outstanding[doc] == 0) {
      ++metrics.documents_completed;
      if (delivery_log != nullptr) delivery_log->completed[doc] = 1;
      last_completion_us = std::max(last_completion_us, at);
      if (collect_latencies) {
        metrics.latencies_us.push_back(at - publish_time_us[doc]);
      }
    }
  }
};

/// Schedules one hop: network delay, then serial service at the target
/// node's FIFO server, then the dependent hops. With a transport the
/// network delay is a `send` (loss / retries / dedup apply; an expired or
/// shed hop never serves, leaving its document incomplete); without one it
/// is a plain engine delay — the identical single event.
void schedule_hop(cluster::Cluster& c, net::Transport* net, RunState& state,
                  std::size_t doc, NodeId src, const Hop& hop) {
  auto arrive = [&c, net, &state, doc, hop] {
    c.server(hop.node).submit(hop.service_us, [&c, net, &state, doc,
                                               hop](sim::Time done) {
      // Children depart when the parent finishes serving (forwarding).
      for (const Hop& child : hop.then) {
        schedule_hop(c, net, state, doc, hop.node, child);
      }
      state.complete_hop(doc, done);
    });
  };
  if (net != nullptr) {
    net->send(src, hop.node, hop.transfer_us, net::Priority::kNormal,
              [arrive](sim::Time) { arrive(); });
  } else {
    c.engine().schedule_after(hop.transfer_us, arrive);
  }
}

}  // namespace

std::uint32_t count_plan_hops(const std::vector<Hop>& hops) {
  std::uint32_t n = 0;
  for (const Hop& h : hops) {
    n += 1 + count_plan_hops(h.then);
  }
  return n;
}

sim::RunMetrics run_dissemination(Scheme& scheme,
                                  const workload::TermSetTable& docs,
                                  const RunConfig& config) {
  auto& c = scheme.cluster();
  c.reset_servers();

  // Snapshot the nodes' cumulative match-IO counters so the run's metrics
  // report only the work this dissemination performed (schemes may have
  // matched during allocation, and runs may share a cluster).
  index::MatchAccounting acc_before;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    acc_before += c.node(NodeId{n}).accounting_totals();
  }
  const sim::FaultAccounting fault_before = c.fault_acc();
  const sim::NetAccounting net_before =
      config.transport != nullptr ? config.transport->accounting()
                                  : sim::NetAccounting{};

  if (config.delivery_log != nullptr) config.delivery_log->reset(docs.size());
  auto state = std::make_unique<RunState>();
  state->collect_latencies = config.collect_latencies;
  state->delivery_log = config.delivery_log;
  state->outstanding.assign(docs.size(), 0);
  state->publish_time_us.assign(docs.size(), 0.0);
  state->start_us = c.engine().now();
  state->last_completion_us = state->start_us;
  state->metrics.documents_published = docs.size();

  const double gap_us =
      config.inject_rate_per_sec > 0.0
          ? 1'000'000.0 / config.inject_rate_per_sec
          : 0.0;

  for (std::size_t i = 0; i < docs.size(); ++i) {
    const sim::Time inject_at =
        state->start_us + gap_us * static_cast<double>(i);
    c.engine().schedule_at(inject_at, [&scheme, &c, &config,
                                       &state_ref = *state, i, &docs] {
      auto plan = scheme.plan_publish(docs.row(i));
      state_ref.publish_time_us[i] = c.engine().now();
      state_ref.metrics.notifications += plan.matches.size();
      if (state_ref.delivery_log != nullptr) {
        state_ref.delivery_log->matches[i] = plan.matches;
      }
      const std::uint32_t hops = count_plan_hops(plan.hops);
      if (hops == 0) {
        // Nothing to do (no subscribed terms, or all owners dead): the
        // document still completes, instantly.
        ++state_ref.metrics.documents_completed;
        if (state_ref.delivery_log != nullptr) {
          state_ref.delivery_log->completed[i] = 1;
        }
        state_ref.last_completion_us =
            std::max(state_ref.last_completion_us, c.engine().now());
        if (state_ref.collect_latencies) {
          state_ref.metrics.latencies_us.push_back(0.0);
        }
        return;
      }
      state_ref.outstanding[i] = hops;
      for (const Hop& hop : plan.hops) {
        schedule_hop(c, config.transport, state_ref, i, net::kClientNode,
                     hop);
      }
    });
  }

  c.engine().run();

  auto& m = state->metrics;
  m.makespan_us = state->last_completion_us - state->start_us;
  m.node_busy_us.resize(c.size());
  m.node_docs.resize(c.size());
  m.node_queue_wait_us.resize(c.size());
  m.node_max_queue_depth.resize(c.size());
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    const auto& server = c.server(NodeId{n});
    m.node_busy_us[n] = server.busy_us();
    m.node_docs[n] = server.jobs_served();
    m.node_queue_wait_us[n] = server.queue_wait_us();
    m.node_max_queue_depth[n] = server.max_queue_depth();
  }
  m.node_storage = scheme.storage_per_node();
  index::MatchAccounting acc_after;
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    acc_after += c.node(NodeId{n}).accounting_totals();
  }
  m.match_acc.lists_retrieved =
      acc_after.lists_retrieved - acc_before.lists_retrieved;
  m.match_acc.postings_scanned =
      acc_after.postings_scanned - acc_before.postings_scanned;
  m.match_acc.candidates_verified =
      acc_after.candidates_verified - acc_before.candidates_verified;
  m.match_acc.bloom_rejects = acc_after.bloom_rejects - acc_before.bloom_rejects;
  m.match_acc.postings_skipped =
      acc_after.postings_skipped - acc_before.postings_skipped;
  m.match_acc.blocks_decoded =
      acc_after.blocks_decoded - acc_before.blocks_decoded;
  // Index-storage footprint across the cluster at run end: bytes of posting
  // storage and live (reachable) filter copies. Together these yield the
  // bytes-per-filter figure; non-zero blocks_decoded marks the run as
  // compressed-mode.
  for (std::uint32_t n = 0; n < c.size(); ++n) {
    m.index_posting_bytes += c.node(NodeId{n}).index().posting_storage_bytes();
    m.index_stored_filters += c.node(NodeId{n}).stored_count();
  }
  m.fault_acc = c.fault_acc().delta_since(fault_before);
  if (config.transport != nullptr) {
    m.net_acc = config.transport->accounting().delta_since(net_before);
  }
  return std::move(*state).metrics;
}

}  // namespace core
