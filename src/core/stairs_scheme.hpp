#pragma once

#include "core/il_scheme.hpp"

/// STAIRS-style selective registration ([17],[21] — the prior work §V
/// discusses: "the previous work can help select a smaller number of terms
/// t_i, but leading to high latency. Thus, for high throughput, we discard
/// the selection algorithm").
///
/// Idea: under similarity-threshold semantics a document matching filter f
/// must contain at least ceil(theta * |f|) of f's terms, so registering f at
/// only its k = |f| - ceil(theta*|f|) + 1 least-popular terms is lossless by
/// pigeonhole — any matching document contains at least one designated
/// term. Conjunctive semantics (theta = 1) need just one designated term per
/// filter, slashing storage and registration traffic.
///
/// The trade-offs the paper alludes to, reproducible with this scheme:
///  * storage drops (fewer copies per filter) but the *matching* latency
///    rises: every single-list hit must now be verified against the full
///    term set, and rare-term homes receive documents they can rarely serve
///    from one cheap list;
///  * kAnyTerm semantics cannot be pruned at all (every term of f may be
///    the only shared one), so this scheme degenerates to IL there.
namespace move::core {

class StairsScheme : public IlScheme {
 public:
  StairsScheme(cluster::Cluster& cluster, IlOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "STAIRS"; }

  /// Registers each filter at its designated (least-popular) terms only.
  /// Popularity is estimated from the filter trace itself, exactly the
  /// statistic STAIRS's selection uses.
  void register_filters(const workload::TermSetTable& filters) override;

  /// Designated-term count for a filter of the given size under the
  /// configured semantics (exposed for tests).
  [[nodiscard]] std::size_t designated_count(std::size_t filter_size) const;

  /// Total (filter, term) registrations performed — the storage the
  /// selection saved is visible against IL's total_terms().
  [[nodiscard]] std::uint64_t registrations() const noexcept {
    return registrations_;
  }

 private:
  std::uint64_t registrations_ = 0;
};

}  // namespace move::core
