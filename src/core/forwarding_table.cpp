#include "core/forwarding_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"

namespace move::core {

ForwardingTable::ForwardingTable(std::uint32_t partitions,
                                 std::uint32_t columns,
                                 std::vector<NodeId> nodes)
    : partitions_(partitions), columns_(columns), grid_(std::move(nodes)) {
  if (partitions_ == 0 || columns_ == 0) {
    throw std::invalid_argument("ForwardingTable: empty grid shape");
  }
  if (grid_.size() != static_cast<std::size_t>(partitions_) * columns_) {
    throw std::invalid_argument("ForwardingTable: grid size mismatch");
  }
}

NodeId ForwardingTable::at(std::uint32_t row, std::uint32_t col) const {
  if (row >= partitions_ || col >= columns_) {
    throw std::out_of_range("ForwardingTable::at");
  }
  return grid_[static_cast<std::size_t>(row) * columns_ + col];
}

std::span<const NodeId> ForwardingTable::row(std::uint32_t r) const {
  if (r >= partitions_) throw std::out_of_range("ForwardingTable::row");
  return {grid_.data() + static_cast<std::size_t>(r) * columns_, columns_};
}

std::uint32_t ForwardingTable::column_of(FilterId filter) const {
  return static_cast<std::uint32_t>(common::mix64(filter.value) % columns_);
}

std::vector<NodeId> ForwardingTable::column_nodes(std::uint32_t col) const {
  if (col >= columns_) throw std::out_of_range("ForwardingTable::column_nodes");
  std::vector<NodeId> out;
  out.reserve(partitions_);
  for (std::uint32_t r = 0; r < partitions_; ++r) out.push_back(at(r, col));
  return out;
}

std::uint32_t ForwardingTable::random_row(common::SplitMix64& rng) const {
  return static_cast<std::uint32_t>(common::uniform_below(rng, partitions_));
}

std::optional<std::uint32_t> ForwardingTable::pick_live_row(
    const std::vector<bool>& alive, common::SplitMix64& rng) const {
  auto is_live = [&](NodeId n) {
    return n.value < alive.size() && alive[n.value];
  };
  // Count fully-live rows first.
  std::vector<std::uint32_t> fully_live;
  std::uint32_t best_row = 0;
  std::size_t best_live = 0;
  for (std::uint32_t r = 0; r < partitions_; ++r) {
    std::size_t live = 0;
    for (NodeId n : row(r)) live += is_live(n);
    if (live == columns_) fully_live.push_back(r);
    if (live > best_live) {
      best_live = live;
      best_row = r;
    }
  }
  if (!fully_live.empty()) {
    return fully_live[common::uniform_below(rng, fully_live.size())];
  }
  if (best_live == 0) return std::nullopt;
  return best_row;
}

std::vector<NodeId> ForwardingTable::all_nodes() const {
  std::vector<NodeId> out = grid_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace move::core
