#include "core/stairs_scheme.hpp"

#include <algorithm>
#include <cmath>

#include "workload/trace_stats.hpp"

namespace move::core {

StairsScheme::StairsScheme(cluster::Cluster& cluster, IlOptions options)
    : IlScheme(cluster, options) {}

std::size_t StairsScheme::designated_count(std::size_t filter_size) const {
  switch (options_.match.semantics) {
    case index::MatchSemantics::kAnyTerm:
      // No pruning is sound: any single shared term is a match.
      return filter_size;
    case index::MatchSemantics::kAllTerms:
      return 1;
    case index::MatchSemantics::kThreshold: {
      const auto needed = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(
                 options_.match.threshold * static_cast<double>(filter_size))));
      // Pigeonhole: a matching doc holds `needed` of the filter's terms, so
      // it must hit one of any (|f| - needed + 1)-subset.
      return filter_size - needed + 1;
    }
  }
  return filter_size;
}

void StairsScheme::register_filters(const workload::TermSetTable& filters) {
  registered_filters_ = &filters;
  registered_ = filters.size();
  registrations_ = 0;

  // Popularity of each term within this filter trace (the STAIRS selection
  // statistic): count of filters containing the term.
  std::size_t universe = 0;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    for (TermId t : filters.row(i)) {
      universe = std::max<std::size_t>(universe, t.value + 1);
    }
  }
  const auto stats = workload::compute_stats(filters, universe);

  if (options_.use_bloom) {
    bloom_.emplace(std::max<std::size_t>(
                       64, static_cast<std::size_t>(filters.total_terms())),
                   options_.bloom_fpr);
  } else {
    bloom_.reset();
  }

  std::vector<TermId> designated;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    const auto terms = filters.row(i);

    designated.assign(terms.begin(), terms.end());
    const std::size_t k = designated_count(designated.size());
    if (k < designated.size()) {
      // Keep the k least-popular terms (ties by TermId for determinism).
      std::sort(designated.begin(), designated.end(),
                [&](TermId a, TermId b) {
                  const auto ca = stats.count[a.value];
                  const auto cb = stats.count[b.value];
                  return ca < cb || (ca == cb && a < b);
                });
      designated.resize(k);
    }

    for (TermId t : designated) {
      const NodeId home = cluster_->ring().home_of_term(t);
      const TermId one[] = {t};
      cluster_->node(home).register_copy(global, terms, one);
      if (bloom_) bloom_->insert(t);
      ++registrations_;
    }
  }
  cluster_->seal_storage();
}

}  // namespace move::core
