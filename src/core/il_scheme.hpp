#pragma once

#include <memory>
#include <optional>

#include "bloom/bloom_filter.hpp"
#include "core/scheme.hpp"

/// IL — the pure distributed-inverted-list baseline (§III-B, "Baseline
/// Solution"), i.e. MOVE without filter allocation.
///
/// Registration: a filter is stored (full term set) on the home node of each
/// of its terms; the home node of t builds ONLY the posting list for t.
/// Dissemination: a document is forwarded in parallel to the home nodes of
/// its terms (pre-screened by the cluster Bloom filter over registered
/// filter terms, §V); each home node retrieves the single posting list of
/// its term. Correct, but hot terms create hot-spot nodes and popular terms
/// create storage-bound nodes — the weaknesses Fig. 8 quantifies.
namespace move::core {

struct IlOptions {
  index::MatchOptions match;
  bool use_bloom = true;
  double bloom_fpr = 0.01;
  std::uint64_t seed = 0x5eed11u;
  /// Bound on the routing failover walk: primary home plus up to
  /// `route_attempts` ring successors are tried before the route is declared
  /// failed (and the term group's matches lost for this document).
  std::size_t route_attempts = 8;
};

class IlScheme : public Scheme {
 public:
  IlScheme(cluster::Cluster& cluster, IlOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "IL"; }

  void register_filters(const workload::TermSetTable& filters) override;
  void rebuild() override;

  [[nodiscard]] PublishPlan plan_publish(
      std::span<const TermId> doc_terms) override;

  [[nodiscard]] std::vector<std::uint64_t> storage_per_node() const override {
    return scan_storage(*cluster_);
  }
  [[nodiscard]] double filter_availability() const override {
    return scan_availability(*cluster_, registered_);
  }
  [[nodiscard]] cluster::Cluster& cluster() override { return *cluster_; }

  [[nodiscard]] const bloom::BloomFilter* bloom() const {
    return bloom_ ? &*bloom_ : nullptr;
  }

  /// Entries homed (per term) on `node` — what a failure loses there, or
  /// what a joiner takes over.
  [[nodiscard]] std::vector<RepairEntry> collect_repair_entries(
      NodeId node) const override;

  /// Re-registers entries to the term home if alive, else the first live
  /// ring successor within `route_attempts` — the same walk plan_publish's
  /// failover takes, so repaired postings are found by failed-over routes.
  std::size_t apply_repair_entries(
      std::span<const RepairEntry> batch) override;

 protected:
  /// Terms of `doc_terms` that pass the Bloom pre-screen, grouped by their
  /// home node (one network hop per home regardless of how many of the
  /// document's terms live there).
  [[nodiscard]] std::vector<std::pair<NodeId, std::vector<TermId>>>
  group_terms_by_home(std::span<const TermId> doc_terms) const;

  /// Serves `terms` of the current document at `home`, or — when the home
  /// is unavailable per the routing view — fails each term over along its
  /// own ring-successor walk (bounded by route_attempts). Healthy homes take
  /// exactly the pre-failover single-hop path, so fault-free plans are
  /// bit-identical to the non-faulting implementation. Updates the
  /// cluster's FaultAccounting (dead contacts, retries, failovers, failed
  /// routes) and charges `route_timeout_us` per believed-alive-but-dead
  /// contact onto the eventual hop's transfer delay. `record_docs = false`
  /// skips meta-store document recording (MoveScheme records at the home in
  /// its own publish loop).
  void serve_at_home_with_failover(NodeId home, std::span<const TermId> terms,
                                   std::span<const TermId> doc_terms,
                                   PublishPlan& plan, bool record_docs = true);

  cluster::Cluster* cluster_;
  IlOptions options_;
  std::optional<bloom::BloomFilter> bloom_;
  const workload::TermSetTable* registered_filters_ = nullptr;
  std::size_t registered_ = 0;
  common::SplitMix64 rng_;
};

}  // namespace move::core
