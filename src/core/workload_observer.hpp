#pragma once

#include "common/types.hpp"

/// Hot-path workload taps for the adaptive layer.
///
/// When an observer is attached to a MoveScheme, publish-time document-term
/// recording goes to the observer INSTEAD of the per-home meta stores'
/// exact counters — the observer (adapt::WorkloadEstimator) keeps bounded
/// sketches instead of unbounded hash maps. With no observer attached the
/// scheme's behavior is bit-identical to the pre-adapt code path.
namespace move::core {

class WorkloadObserver {
 public:
  virtual ~WorkloadObserver() = default;

  /// One document term passed the Bloom pre-screen and is being served
  /// (the event the meta store's record_document counted).
  virtual void on_document_term(TermId term) = 0;

  /// One (filter, home-term) registration exists — replayed for the whole
  /// registered set when the observer attaches, so the popularity side
  /// starts warm.
  virtual void on_filter_term(TermId term) = 0;
};

}  // namespace move::core
