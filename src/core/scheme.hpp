#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "index/filter_store.hpp"
#include "workload/term_set_table.hpp"

/// Common interface of the three dissemination systems the paper compares:
/// MOVE, the pure distributed inverted list (IL), and the rendezvous/
/// flooding baseline (RS). A scheme owns how filters are placed on the
/// cluster and how a published document is routed and matched; everything
/// else (virtual-time execution, metrics) is shared by the experiment
/// driver.
namespace move::core {

/// One network/service step in a document's dissemination, possibly fanning
/// out into further hops once the node finishes serving it (MOVE's
/// home-then-partition forwarding is a two-level tree).
struct Hop {
  NodeId node;                ///< serving node (must be alive when planned)
  double transfer_us = 0.0;   ///< network delay before arrival at `node`
  double service_us = 0.0;    ///< serial service demand at `node`
  std::vector<Hop> then;      ///< hops triggered when service completes
};

/// The complete, deterministic routing/matching decision for one document.
/// Matching results are computed at planning time (they do not depend on
/// virtual time); the hop tree carries the costs the simulator charges.
struct PublishPlan {
  std::vector<Hop> hops;            ///< first-level hops (fan out at publish)
  std::vector<FilterId> matches;    ///< union of matches over scheduled hops
};

/// One registration unit the repair pipeline re-replicates: a filter under
/// the home term it was registered with (term unused by schemes that place
/// whole filters, e.g. RS).
struct RepairEntry {
  FilterId filter;
  TermId term;
};

class Scheme {
 public:
  virtual ~Scheme() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Bulk-registers the whole filter trace (the paper registers all filters
  /// before injecting documents, §VI-A3). FilterId i corresponds to row i.
  /// The table must outlive the scheme (rebuild() re-reads it).
  virtual void register_filters(const workload::TermSetTable& filters) = 0;

  /// Re-registers every filter according to the *current* ring membership —
  /// invoked after Cluster::add_node/remove_node. The simulator's stand-in
  /// for Cassandra's range streaming: all placement (homes, replicas,
  /// grids) is recomputed from scratch. Precondition: register_filters ran.
  virtual void rebuild() = 0;

  /// Routes one document: which nodes serve it, at what cost, and which
  /// filters match. Respects current node liveness (dead nodes are skipped
  /// or failed over per scheme policy).
  [[nodiscard]] virtual PublishPlan plan_publish(
      std::span<const TermId> doc_terms) = 0;

  /// Total filter copies per node (Fig. 9a storage-cost vector).
  [[nodiscard]] virtual std::vector<std::uint64_t> storage_per_node()
      const = 0;

  /// Fraction of registered filters with at least one copy on a live node
  /// (Fig. 9d availability).
  [[nodiscard]] virtual double filter_availability() const = 0;

  // --- incremental repair (the fault subsystem's re-replication pipeline) ---

  /// Registration entries whose placement involves `node` under the current
  /// ring — the units lost when `node` fails, or owed to it when it joins.
  /// The repair pipeline collects these once per membership event and
  /// re-applies them in bounded batches (no full rebuild()). Default: none
  /// (scheme does not participate in repair).
  [[nodiscard]] virtual std::vector<RepairEntry> collect_repair_entries(
      NodeId node) const {
    (void)node;
    return {};
  }

  /// Re-registers a batch of entries onto their current best placement:
  /// the primary owner if alive, else a bounded ring-successor walk (the
  /// same rule the routing failover uses, so repaired copies are exactly
  /// where failover looks). Idempotent — already-present copies add
  /// nothing. @returns posting entries actually added (repair volume).
  virtual std::size_t apply_repair_entries(
      std::span<const RepairEntry> batch) {
    (void)batch;
    return 0;
  }

  [[nodiscard]] virtual cluster::Cluster& cluster() = 0;
};

/// Computes the per-node storage vector by scanning node stores — shared by
/// all schemes.
[[nodiscard]] std::vector<std::uint64_t> scan_storage(
    const cluster::Cluster& c);

/// Availability by scanning live nodes' stored global filter ids.
[[nodiscard]] double scan_availability(const cluster::Cluster& c,
                                       std::size_t total_filters);

}  // namespace move::core
