#include "core/il_scheme.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"

namespace move::core {

IlScheme::IlScheme(cluster::Cluster& cluster, IlOptions options)
    : cluster_(&cluster), options_(options), rng_(options.seed) {}

void IlScheme::register_filters(const workload::TermSetTable& filters) {
  registered_filters_ = &filters;
  registered_ = filters.size();
  // Size the Bloom summary by the number of (filter, term) pairs — an upper
  // bound on distinct filter terms, giving an FPR at or below target.
  if (options_.use_bloom) {
    bloom_.emplace(
        std::max<std::size_t>(64, static_cast<std::size_t>(
                                      filters.total_terms())),
        options_.bloom_fpr);
  } else {
    bloom_.reset();
  }

  for (std::size_t i = 0; i < filters.size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    const auto terms = filters.row(i);
    for (TermId t : terms) {
      const NodeId home = cluster_->ring().home_of_term(t);
      const TermId one[] = {t};
      cluster_->node(home).register_copy(global, terms, one);
      if (bloom_) bloom_->insert(t);
    }
  }
  cluster_->seal_storage();
}

void IlScheme::rebuild() {
  if (registered_filters_ == nullptr) {
    throw std::logic_error("IlScheme::rebuild before register_filters");
  }
  cluster_->wipe_storage();
  register_filters(*registered_filters_);
}

std::vector<std::pair<NodeId, std::vector<TermId>>>
IlScheme::group_terms_by_home(std::span<const TermId> doc_terms) const {
  std::vector<std::pair<NodeId, std::vector<TermId>>> groups;
  for (TermId t : doc_terms) {
    if (bloom_ && !bloom_->may_contain(t)) continue;
    const NodeId home = cluster_->ring().home_of_term(t);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [home](const auto& g) { return g.first == home; });
    if (it == groups.end()) {
      groups.emplace_back(home, std::vector<TermId>{t});
    } else {
      it->second.push_back(t);
    }
  }
  return groups;
}

void IlScheme::serve_at_home_with_failover(NodeId home,
                                           std::span<const TermId> terms,
                                           std::span<const TermId> doc_terms,
                                           PublishPlan& plan,
                                           bool record_docs) {
  const auto& cost = cluster_->cost();
  std::vector<FilterId> scratch;

  const bool believed = cluster_->routing_believes_alive(home);
  if (believed && cluster_->alive(home)) {
    // Healthy path: one hop serving the whole term group. Identical cost
    // structure (and zero FaultAccounting traffic) to the pre-failover
    // implementation, so fault-free runs stay bit-identical.
    const auto& node = cluster_->node(home);
    const double transfer = cost.transfer_us(doc_terms.size());
    double service = cost.handle_base_us + cost.receive_service_us(transfer);
    for (TermId t : terms) {
      const auto acc =
          node.match_single(t, doc_terms, options_.match, scratch);
      service += cost.match_us(acc);
      plan.matches.insert(plan.matches.end(), scratch.begin(), scratch.end());
      if (record_docs) cluster_->node(home).meta().record_document(t);
    }
    plan.hops.push_back(Hop{home, transfer, service, {}});
    return;
  }

  auto& facc = cluster_->fault_acc();
  double pending_timeout_us = 0.0;
  if (believed) {
    // Believed alive but actually dead: the publisher's contact times out
    // before it moves on — the failure detector's lag, made visible.
    ++facc.dead_contacts;
    pending_timeout_us += cost.route_timeout_us;
  }

  // Per-term failover: each term walks its own ring-successor chain — the
  // exact walk apply_repair_entries uses to place repaired copies, so a
  // failed-over route lands where repair put the data.
  for (TermId t : terms) {
    const std::uint64_t key = common::mix64(t.value);
    NodeId target{0};
    bool found = false;
    for (NodeId cand :
         cluster_->ring().successors(key, options_.route_attempts)) {
      ++facc.route_retries;
      if (!cluster_->routing_believes_alive(cand)) continue;
      if (!cluster_->alive(cand)) {
        ++facc.dead_contacts;
        pending_timeout_us += cost.route_timeout_us;
        continue;
      }
      target = cand;
      found = true;
      break;
    }
    if (!found) {
      ++facc.failed_routes;  // this term's matches are lost for this doc
      continue;
    }
    ++facc.failovers;
    const auto& node = cluster_->node(target);
    double transfer = cost.transfer_us(doc_terms.size());
    const double service_base =
        cost.handle_base_us + cost.receive_service_us(transfer);
    const auto acc = node.match_single(t, doc_terms, options_.match, scratch);
    plan.matches.insert(plan.matches.end(), scratch.begin(), scratch.end());
    if (record_docs) cluster_->node(target).meta().record_document(t);
    // Detector lag surfaces as added publish latency, not service demand.
    transfer += pending_timeout_us;
    pending_timeout_us = 0.0;
    plan.hops.push_back(
        Hop{target, transfer, service_base + cost.match_us(acc), {}});
  }
}

PublishPlan IlScheme::plan_publish(std::span<const TermId> doc_terms) {
  PublishPlan plan;
  for (auto& [home, terms] : group_terms_by_home(doc_terms)) {
    serve_at_home_with_failover(home, terms, doc_terms, plan);
  }
  std::sort(plan.matches.begin(), plan.matches.end());
  plan.matches.erase(std::unique(plan.matches.begin(), plan.matches.end()),
                     plan.matches.end());
  return plan;
}

std::vector<RepairEntry> IlScheme::collect_repair_entries(NodeId node) const {
  std::vector<RepairEntry> out;
  if (registered_filters_ == nullptr) return out;
  for (std::size_t i = 0; i < registered_filters_->size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    for (TermId t : registered_filters_->row(i)) {
      if (cluster_->ring().home_of_term(t) == node) {
        out.push_back(RepairEntry{global, t});
      }
    }
  }
  return out;
}

std::size_t IlScheme::apply_repair_entries(
    std::span<const RepairEntry> batch) {
  if (registered_filters_ == nullptr) return 0;
  std::size_t moved = 0;
  for (const RepairEntry& e : batch) {
    const auto terms = registered_filters_->row(e.filter.value);
    NodeId dest = cluster_->ring().home_of_term(e.term);
    if (!cluster_->alive(dest)) {
      // Same bounded successor walk the routing failover takes.
      const std::uint64_t key = common::mix64(e.term.value);
      bool found = false;
      for (NodeId cand :
           cluster_->ring().successors(key, options_.route_attempts)) {
        if (cluster_->alive(cand)) {
          dest = cand;
          found = true;
          break;
        }
      }
      if (!found) continue;  // nowhere live to repair to (yet)
    }
    const TermId one[] = {e.term};
    moved += cluster_->node(dest).register_copy(e.filter, terms, one);
  }
  if (moved > 0) {
    cluster_->fault_acc().repair_postings_moved += moved;
    cluster_->seal_storage();
  }
  return moved;
}

}  // namespace move::core
