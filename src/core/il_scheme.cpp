#include "core/il_scheme.hpp"

#include <algorithm>
#include <stdexcept>

namespace move::core {

IlScheme::IlScheme(cluster::Cluster& cluster, IlOptions options)
    : cluster_(&cluster), options_(options), rng_(options.seed) {}

void IlScheme::register_filters(const workload::TermSetTable& filters) {
  registered_filters_ = &filters;
  registered_ = filters.size();
  // Size the Bloom summary by the number of (filter, term) pairs — an upper
  // bound on distinct filter terms, giving an FPR at or below target.
  if (options_.use_bloom) {
    bloom_.emplace(
        std::max<std::size_t>(64, static_cast<std::size_t>(
                                      filters.total_terms())),
        options_.bloom_fpr);
  } else {
    bloom_.reset();
  }

  for (std::size_t i = 0; i < filters.size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    const auto terms = filters.row(i);
    for (TermId t : terms) {
      const NodeId home = cluster_->ring().home_of_term(t);
      const TermId one[] = {t};
      cluster_->node(home).register_copy(global, terms, one);
      if (bloom_) bloom_->insert(t);
    }
  }
  cluster_->seal_storage();
}

void IlScheme::rebuild() {
  if (registered_filters_ == nullptr) {
    throw std::logic_error("IlScheme::rebuild before register_filters");
  }
  cluster_->wipe_storage();
  register_filters(*registered_filters_);
}

std::vector<std::pair<NodeId, std::vector<TermId>>>
IlScheme::group_terms_by_home(std::span<const TermId> doc_terms) const {
  std::vector<std::pair<NodeId, std::vector<TermId>>> groups;
  for (TermId t : doc_terms) {
    if (bloom_ && !bloom_->may_contain(t)) continue;
    const NodeId home = cluster_->ring().home_of_term(t);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [home](const auto& g) { return g.first == home; });
    if (it == groups.end()) {
      groups.emplace_back(home, std::vector<TermId>{t});
    } else {
      it->second.push_back(t);
    }
  }
  return groups;
}

PublishPlan IlScheme::plan_publish(std::span<const TermId> doc_terms) {
  PublishPlan plan;
  const auto& cost = cluster_->cost();

  std::vector<FilterId> local_matches;
  for (auto& [home, terms] : group_terms_by_home(doc_terms)) {
    if (!cluster_->alive(home)) continue;  // matches behind a dead home lost
    const auto& node = cluster_->node(home);
    const double transfer = cost.transfer_us(doc_terms.size());
    double service = cost.handle_base_us + cost.receive_service_us(transfer);
    std::vector<FilterId> node_matches;
    for (TermId t : terms) {
      const auto acc = node.match_single(t, doc_terms, options_.match,
                                         local_matches);
      service += cost.match_us(acc);
      node_matches.insert(node_matches.end(), local_matches.begin(),
                          local_matches.end());
      cluster_->node(home).meta().record_document(t);
    }
    plan.hops.push_back(Hop{home, transfer, service, {}});
    plan.matches.insert(plan.matches.end(), node_matches.begin(),
                        node_matches.end());
  }
  std::sort(plan.matches.begin(), plan.matches.end());
  plan.matches.erase(std::unique(plan.matches.begin(), plan.matches.end()),
                     plan.matches.end());
  return plan;
}

}  // namespace move::core
