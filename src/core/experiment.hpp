#pragma once

#include <cstdint>

#include "core/scheme.hpp"
#include "net/transport.hpp"
#include "sim/delivery_log.hpp"
#include "sim/metrics.hpp"
#include "workload/term_set_table.hpp"

/// The experiment driver: replays the paper's methodology (§VI-A3) on the
/// virtual clock. All filters are registered first; then clients inject
/// documents at a fixed rate; each document's routing plan (from the scheme)
/// is executed over the cluster's FIFO servers; a document counts toward
/// throughput once every hop of its plan has completed ("if all matching
/// filters are found, we add the throughput by 1").
namespace move::core {

struct RunConfig {
  /// Aggregate injection rate (documents per second across all clients; the
  /// paper uses 1000 per client).
  double inject_rate_per_sec = 1000.0;
  /// Collect per-document latencies (costs memory at large Q).
  bool collect_latencies = true;
  /// Optional message layer: when set, every publish hop rides it (loss,
  /// retries, dedup, breakers — see move::net), and the run's net
  /// accounting delta lands in RunMetrics::net_acc. The transport must run
  /// on the scheme's cluster engine and outlive the run. nullptr keeps the
  /// pre-net direct scheduling — bit-identical, zero overhead.
  net::Transport* transport = nullptr;
  /// Optional per-document delivery record (reset to docs.size() by the
  /// run): planned match set at plan time, completed flag once every hop
  /// finished. The DES half of the rt differential suite's currency —
  /// rt::run_dissemination fills the identical struct.
  sim::DeliveryLog* delivery_log = nullptr;
};

/// Hops in a plan tree, counted recursively — the per-document completion
/// denominator shared by the DES driver and the rt executor.
[[nodiscard]] std::uint32_t count_plan_hops(const std::vector<Hop>& hops);

/// Executes one dissemination run of `docs` through `scheme`.
/// Resets the cluster's servers; does NOT reset filter placement or node
/// liveness, so callers stage failures before invoking.
[[nodiscard]] sim::RunMetrics run_dissemination(
    Scheme& scheme, const workload::TermSetTable& docs,
    const RunConfig& config = {});

}  // namespace move::core
