#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

/// The main-memory forwarding table of a home node's forwarding engine (§V).
///
/// A two-dimensional array of node ids: `partitions` rows (each row is one
/// complete replica of the home's allocated filter set) by `columns` columns
/// (each column holds one separated subset). A document picks one random row
/// and is forwarded in parallel to every node in that row; a filter is
/// hashed to one column and copied onto every node in that column.
///
/// Per §V's maintenance-cost optimization, a node keeps ONE table covering
/// all terms it is home for (the aggregated p'/q' variant), not one table
/// per term.
namespace move::core {

class ForwardingTable {
 public:
  /// @param nodes row-major grid contents, size == partitions * columns.
  ForwardingTable(std::uint32_t partitions, std::uint32_t columns,
                  std::vector<NodeId> nodes);

  [[nodiscard]] std::uint32_t partitions() const noexcept {
    return partitions_;
  }
  [[nodiscard]] std::uint32_t columns() const noexcept { return columns_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return grid_.size();
  }

  [[nodiscard]] NodeId at(std::uint32_t row, std::uint32_t col) const;

  /// All nodes in one row (one partition) — the fan-out set for a document.
  [[nodiscard]] std::span<const NodeId> row(std::uint32_t r) const;

  /// The column a filter is separated into.
  [[nodiscard]] std::uint32_t column_of(FilterId filter) const;

  /// All nodes in a column — the copy set for a filter in that column.
  [[nodiscard]] std::vector<NodeId> column_nodes(std::uint32_t col) const;

  /// Uniformly random row index.
  [[nodiscard]] std::uint32_t random_row(common::SplitMix64& rng) const;

  /// Picks a row for dissemination given node liveness: prefers a uniformly
  /// random fully-live row; if none is fully live, returns the row with the
  /// most live nodes (ties broken by lowest index). Returns nullopt if no
  /// row has any live node.
  [[nodiscard]] std::optional<std::uint32_t> pick_live_row(
      const std::vector<bool>& alive, common::SplitMix64& rng) const;

  /// Every distinct node in the grid.
  [[nodiscard]] std::vector<NodeId> all_nodes() const;

 private:
  std::uint32_t partitions_;
  std::uint32_t columns_;
  std::vector<NodeId> grid_;  // row-major
};

}  // namespace move::core
