#include "core/scheme.hpp"

#include <unordered_set>

namespace move::core {

std::vector<std::uint64_t> scan_storage(const cluster::Cluster& c) {
  std::vector<std::uint64_t> out(c.size());
  for (std::uint32_t i = 0; i < c.size(); ++i) {
    out[i] = c.node(NodeId{i}).stored_count();
  }
  return out;
}

double scan_availability(const cluster::Cluster& c,
                         std::size_t total_filters) {
  if (total_filters == 0) return 1.0;
  std::unordered_set<FilterId> reachable;
  for (std::uint32_t i = 0; i < c.size(); ++i) {
    const NodeId id{i};
    if (!c.alive(id)) continue;
    for (FilterId f : c.node(id).stored_filters()) reachable.insert(f);
  }
  return static_cast<double>(reachable.size()) /
         static_cast<double>(total_filters);
}

}  // namespace move::core
