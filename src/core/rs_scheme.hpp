#pragma once

#include "core/scheme.hpp"

/// RS — the distributed rendezvous / flooding baseline (§I, §VI-A3; the
/// partition-flexible variant of [16] built on [5]).
///
/// Registration: each filter's unique name is hashed onto a home node
/// (perfectly even storage), then replicated onto `replicas - 1` ring
/// successors, the standard key/value triple-replication the paper assumes.
/// Each node indexes its local filters under EVERY filter term (a full local
/// inverted list) and matches with the classic centralized SIFT algorithm.
/// Dissemination: every document is flooded to every (live) node, each of
/// which retrieves a posting list for each of the document's |d| terms —
/// the blind-flooding cost the paper's introduction argues against.
namespace move::core {

struct RsOptions {
  index::MatchOptions match;
  /// Copies per filter (Dynamo/Cassandra-style replication; the paper's
  /// capacity argument assumes 3).
  std::uint32_t replicas = 3;
  std::uint64_t seed = 0x5eed22u;
};

class RsScheme : public Scheme {
 public:
  RsScheme(cluster::Cluster& cluster, RsOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "RS"; }

  void register_filters(const workload::TermSetTable& filters) override;
  void rebuild() override;

  [[nodiscard]] PublishPlan plan_publish(
      std::span<const TermId> doc_terms) override;

  [[nodiscard]] std::vector<std::uint64_t> storage_per_node() const override {
    return scan_storage(*cluster_);
  }
  [[nodiscard]] double filter_availability() const override {
    return scan_availability(*cluster_, registered_);
  }
  [[nodiscard]] cluster::Cluster& cluster() override { return *cluster_; }

  /// Filters whose replica set (home + ring successors of the filter key)
  /// includes `node`. The term field is unused — RS places whole filters.
  [[nodiscard]] std::vector<RepairEntry> collect_repair_entries(
      NodeId node) const override;

  /// Restores the replica invariant for each entry: every live owner gets
  /// its copy back; if no owner is live, one emergency copy goes to the
  /// first live successor beyond the owner set (flooding will find it).
  std::size_t apply_repair_entries(
      std::span<const RepairEntry> batch) override;

 private:
  /// The hash the filter's placement is derived from (its "unique name").
  [[nodiscard]] std::uint64_t filter_key(FilterId filter) const;

  cluster::Cluster* cluster_;
  RsOptions options_;
  const workload::TermSetTable* registered_filters_ = nullptr;
  std::size_t registered_ = 0;
};

}  // namespace move::core
