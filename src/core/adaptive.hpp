#pragma once

#include "core/experiment.hpp"
#include "core/move_scheme.hpp"

/// Periodic re-allocation (§V "Allocation Policy": "every 10 minutes, the
/// values of q_i are renewed based on new incoming documents. Based on the
/// statistics of p_i and q_i, filters are then allocated periodically").
///
/// The controller splits a document stream into windows; after each window
/// it re-estimates per-home frequencies from the meta stores' *fresh*
/// counters (old traffic is forgotten, so the estimate tracks drift) and
/// re-runs the allocation. This is what lets MOVE recover throughput when
/// the document distribution shifts under it — the drift ablation bench
/// exercises exactly that.
namespace move::core {

struct AdaptiveConfig {
  /// Documents per observation window (the paper's 10-minute renewal at
  /// 1000 docs/s would be 600k; benches use stream-proportional windows).
  std::size_t window_docs = 1'000;
  /// Skip re-allocation while fewer than this many documents were observed
  /// in the window (estimates would be noise).
  std::size_t min_observations = 100;
  RunConfig run;
};

struct AdaptiveResult {
  sim::RunMetrics metrics;          ///< aggregated over all windows
  std::size_t reallocations = 0;    ///< windows that triggered a re-allocation
};

/// Streams `docs` through `scheme` in windows, re-allocating between them.
/// The scheme must already be registered (and may be pre-allocated).
[[nodiscard]] AdaptiveResult run_adaptive(MoveScheme& scheme,
                                          const workload::TermSetTable& docs,
                                          const AdaptiveConfig& config);

}  // namespace move::core
