#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/allocation.hpp"
#include "core/forwarding_table.hpp"
#include "core/il_scheme.hpp"
#include "core/workload_observer.hpp"
#include "kv/placement.hpp"
#include "workload/trace_stats.hpp"

/// MOVE — the paper's adaptive filter-allocation scheme (§IV-V).
///
/// Starts from the distributed inverted list (registration and Bloom
/// pre-screen identical to IL), then *allocates* each home node's filter set
/// over an n-node grid of 1/r partitions x r*n columns:
///  * documents arriving at the home are redirected to ONE random partition
///    (replication removes the hot-spot),
///  * each partition splits the filters over its columns (separation removes
///    the storage bottleneck),
/// with n from the optimal factor rule (Theorems 1/2 or the general
/// sqrt(p*q)) under the cluster storage budget N*C, and r tuned to fit the
/// per-node capacity C.
///
/// Granularity: per the §V maintenance optimization, statistics are
/// aggregated per home node (p', q') and one forwarding table is kept per
/// home; `per_node_aggregation = false` switches to the per-term tables of
/// §IV for the ablation bench.
namespace move::core {

struct MoveOptions {
  index::MatchOptions match;
  bool use_bloom = true;
  double bloom_fpr = 0.01;
  FactorRule rule = FactorRule::kGeneralSqrtPQ;
  RatioPolicy ratio = RatioPolicy::kAdaptive;
  kv::PlacementPolicy placement = kv::PlacementPolicy::kHybrid;
  /// Per-node capacity C in filter copies. The paper's cluster runs use
  /// C = 3e6 at P = 4e6; benches scale it with the trace.
  double capacity = 3e6;
  bool per_node_aggregation = true;
  std::uint64_t seed = 0x5eed33u;
  /// Bound on the ring-successor failover walk (see IlOptions).
  std::size_t route_attempts = 8;
};

class MoveScheme : public IlScheme {
 public:
  /// One (filter, home-term) registration on a home node — the unit both
  /// allocation copying and live migration move around.
  struct HomeEntry {
    FilterId filter;
    TermId term;  ///< the home term under which the filter registered here
  };

  MoveScheme(cluster::Cluster& cluster, MoveOptions options);

  [[nodiscard]] std::string_view name() const override { return "Move"; }

  void register_filters(const workload::TermSetTable& filters) override;

  /// Re-registers and, if allocate() had run, re-allocates with the last
  /// statistics — the full membership-change recovery path.
  void rebuild() override;

  /// Proactive allocation (§V "Allocation Policy"): computes allocation
  /// factors from the filter-popularity stats and an offline document-corpus
  /// frequency estimate, then replicates/separates filters onto the grids.
  /// Must be called after register_filters; callable again after stats are
  /// renewed (the paper refreshes q_i every 10 minutes).
  void allocate(const workload::TraceStats& filter_stats,
                const workload::TraceStats& corpus_stats);

  /// Passive variant: allocates from the statistics the meta stores observed
  /// during the current observation window (all traffic since registration,
  /// or since the last reset_observation_window()).
  void allocate_from_observed();

  /// Starts a fresh observation window: document counters in every meta
  /// store are cleared and the publish counter is checkpointed, so the next
  /// allocate_from_observed() estimates q from the new window only (§V's
  /// periodic renewal of q_i).
  void reset_observation_window();

  [[nodiscard]] PublishPlan plan_publish(
      std::span<const TermId> doc_terms) override;

  /// Routing-level availability: the fraction of registered filters that a
  /// document containing their terms can still reach — i.e. for at least
  /// one of the filter's terms, the home is alive (it holds the original)
  /// or some grid row holds a live copy of the filter's column. Stricter
  /// than filter_availability(), which only counts surviving copies.
  [[nodiscard]] double routable_availability() const;

  /// Allocation decisions per home node (empty optional = not allocated).
  /// Only populated in per-node aggregation mode.
  [[nodiscard]] const std::vector<std::optional<ForwardingTable>>& tables()
      const noexcept {
    return tables_;
  }
  [[nodiscard]] const std::vector<Allocation>& allocations() const noexcept {
    return allocations_;
  }
  /// Per-term forwarding tables (only populated when
  /// per_node_aggregation == false).
  [[nodiscard]] const std::unordered_map<std::uint32_t, ForwardingTable>&
  term_tables() const noexcept {
    return term_tables_;
  }

  // --- adaptive-layer hooks (move::adapt) ----------------------------------

  /// Redirects publish-time document-term recording to `observer` instead
  /// of the per-home meta stores (the exact counters stop accumulating).
  /// On attach, the registered (filter, home-term) set is replayed through
  /// on_filter_term so the popularity side starts warm. Pass nullptr to
  /// detach; with no observer the hot path is bit-identical to the
  /// pre-adapt implementation.
  void set_workload_observer(WorkloadObserver* observer);

  /// Registrations homed on `home` (what a migration of that home moves).
  [[nodiscard]] std::span<const HomeEntry> home_entries(NodeId home) const {
    return home_entries_[home.value];
  }

  /// Re-runs the allocation solver on `inputs` without touching any state —
  /// the same factor rule, capacity, and (replayed) rounding stream
  /// build_grids uses, so a later install reproduces what a full
  /// allocate_from_observed() would have computed.
  [[nodiscard]] std::vector<Allocation> plan_allocations(
      const std::vector<AllocationInput>& inputs) const;

  /// Plans the replica grid a fresh allocation would build for `home`
  /// (same placement salt as build_grids; no copies are registered).
  /// `slot_load` carries cumulative per-node document-rate shares so
  /// planned grids spread; callers replay build_grids' hot-first walk from
  /// a zero vector so planning stays a pure function of the inputs.
  [[nodiscard]] std::optional<ForwardingTable> plan_grid(
      NodeId home, const Allocation& alloc,
      std::span<const double> slot_load) const;

  /// Registers one home entry's copy on `target` (the receiver-side apply
  /// of a migration batch). @returns new posting entries added (0 if the
  /// copy was already there).
  std::size_t apply_grid_entry(NodeId target, const HomeEntry& entry);

  /// Atomically swaps `home`'s forwarding table and allocation, ending the
  /// double-registration window: routing switches from the old grid to the
  /// new one in one step, so every publish sees a fully-copied grid.
  /// @returns the displaced table (for retire_displaced_copies).
  std::optional<ForwardingTable> install_table(
      NodeId home, std::optional<ForwardingTable> table,
      const Allocation& alloc);

  /// Unregisters `home`'s entry copies from nodes of `old_table` that the
  /// currently installed placement no longer needs (the home's own full
  /// copy is never touched). @returns posting entries removed.
  std::size_t retire_displaced_copies(NodeId home,
                                      const ForwardingTable& old_table);

  /// Bumped by every register_filters/rebuild; in-flight migrations check
  /// it and abandon themselves when the world was rebuilt under them.
  [[nodiscard]] std::uint64_t build_generation() const noexcept {
    return build_generation_;
  }

 private:
  /// Computes per-home (p', q') aggregates from trace statistics.
  [[nodiscard]] std::vector<AllocationInput> aggregate_inputs(
      const workload::TraceStats& filter_stats,
      const workload::TraceStats& corpus_stats) const;

  /// The solver parameters build_grids and plan_allocations share.
  [[nodiscard]] AllocationParams make_allocation_params() const;

  void build_grids(const std::vector<AllocationInput>& inputs);
  void build_term_grids(const workload::TraceStats& filter_stats,
                        const workload::TraceStats& corpus_stats);

  /// Builds one grid for `wanted` nodes around `home`; empty optional if the
  /// cluster cannot supply at least two grid slots. `slot_load` carries the
  /// expected document-rate already assigned to each node, so hot grids
  /// spread out (load-aware placement by the collector node).
  [[nodiscard]] std::optional<ForwardingTable> make_grid(
      NodeId home, const Allocation& alloc, std::uint64_t salt,
      std::span<const double> slot_load) const;

  /// Copies the given home entries onto the grid (separation by filter hash
  /// into columns, replication down rows).
  void copy_entries(const ForwardingTable& table,
                    std::span<const HomeEntry> entries);

  /// Emits the hops for serving `terms` of the current document at the
  /// nodes of a grid row (or at the home if the grid is unusable).
  void plan_via_table(const ForwardingTable& table, NodeId home,
                      std::span<const TermId> terms,
                      std::span<const TermId> doc_terms,
                      const std::vector<bool>& alive, PublishPlan& plan);

  /// IL-style direct service at the home node, failing over along the
  /// term-successor walk when the home is down (see IlScheme).
  void plan_at_home(NodeId home, std::span<const TermId> terms,
                    std::span<const TermId> doc_terms, PublishPlan& plan);

  MoveOptions move_options_;
  const workload::TermSetTable* filters_ = nullptr;  ///< set by register_filters
  /// (filter, home-term) registrations per home node, recorded during
  /// registration so allocation can copy the right subsets.
  std::vector<std::vector<HomeEntry>> home_entries_;
  std::vector<Allocation> allocations_;             // per home node
  std::vector<std::optional<ForwardingTable>> tables_;  // per home node
  std::unordered_map<std::uint32_t, ForwardingTable> term_tables_;
  std::uint64_t publish_count_ = 0;
  std::uint64_t window_base_ = 0;  ///< publish_count_ at window start
  /// Last statistics passed to allocate(), kept so rebuild() can re-run the
  /// allocation after a membership change.
  std::optional<std::pair<workload::TraceStats, workload::TraceStats>>
      last_stats_;
  WorkloadObserver* observer_ = nullptr;
  std::uint64_t build_generation_ = 0;
};

}  // namespace move::core
