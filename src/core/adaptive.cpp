#include "core/adaptive.hpp"

#include <algorithm>

namespace move::core {

AdaptiveResult run_adaptive(MoveScheme& scheme,
                            const workload::TermSetTable& docs,
                            const AdaptiveConfig& config) {
  AdaptiveResult result;
  auto& m = result.metrics;
  const std::size_t window =
      std::max<std::size_t>(1, config.window_docs);

  scheme.reset_observation_window();
  for (std::size_t start = 0; start < docs.size(); start += window) {
    const std::size_t end = std::min(docs.size(), start + window);
    workload::TermSetTable chunk;
    for (std::size_t i = start; i < end; ++i) chunk.add(docs.row(i));

    const auto wm = run_dissemination(scheme, chunk, config.run);

    // Aggregate window metrics.
    m.documents_published += wm.documents_published;
    m.documents_completed += wm.documents_completed;
    m.notifications += wm.notifications;
    m.makespan_us += wm.makespan_us;
    m.latencies_us.insert(m.latencies_us.end(), wm.latencies_us.begin(),
                          wm.latencies_us.end());
    if (m.node_busy_us.size() < wm.node_busy_us.size()) {
      m.node_busy_us.resize(wm.node_busy_us.size(), 0.0);
      m.node_docs.resize(wm.node_docs.size(), 0);
    }
    for (std::size_t n = 0; n < wm.node_busy_us.size(); ++n) {
      m.node_busy_us[n] += wm.node_busy_us[n];
      m.node_docs[n] += wm.node_docs[n];
    }
    m.node_storage = wm.node_storage;

    // Renew q estimates from this window's fresh counters and re-allocate
    // (§V), then open the next observation window.
    if (end - start >= config.min_observations && end < docs.size()) {
      scheme.allocate_from_observed();
      ++result.reallocations;
    }
    scheme.reset_observation_window();
  }
  return result;
}

}  // namespace move::core
