#include "core/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace move::core {

namespace {

double weight_for(const AllocationInput& in, const AllocationParams& params) {
  switch (params.rule) {
    case FactorRule::kTheorem1SqrtQ:
      return std::sqrt(std::max(in.q, 0.0));
    case FactorRule::kTheorem2SqrtBetaQ:
      return std::sqrt(1.0 + params.beta * std::max(in.q, 0.0));
    case FactorRule::kGeneralSqrtPQ:
      return std::sqrt(std::max(in.p, 0.0) * std::max(in.q, 0.0));
  }
  return 0.0;
}

}  // namespace

Allocation shape_allocation(std::uint32_t n, double p,
                            const AllocationParams& params) {
  Allocation alloc;
  alloc.n = std::max<std::uint32_t>(1, n);
  const double nd = static_cast<double>(alloc.n);

  // r starts at the most-parallel point 1/n (pure replication) and is tuned
  // up until each node's share p*P/(n*r) fits capacity C (§IV-B2). The pure
  // policies pin it to the corners for the §IV-A ablation.
  double r = 1.0 / nd;
  switch (params.ratio) {
    case RatioPolicy::kAdaptive:
      if (params.capacity > 0.0 && p > 0.0 && params.total_filters > 0.0) {
        const double required =
            p * params.total_filters / (nd * params.capacity);
        r = std::max(r, required);
      }
      break;
    case RatioPolicy::kPureReplication:
      r = 1.0 / nd;
      break;
    case RatioPolicy::kPureSeparation:
      r = 1.0;
      break;
  }
  alloc.r = std::clamp(r, 1.0 / nd, 1.0);

  // Realize the grid: 1/r partitions of r*n columns, never using more than
  // n nodes after integer rounding.
  alloc.partitions = std::clamp<std::uint32_t>(
      static_cast<std::uint32_t>(std::floor(1.0 / alloc.r + 1e-9)), 1,
      alloc.n);
  alloc.columns = std::max<std::uint32_t>(1, alloc.n / alloc.partitions);
  return alloc;
}

std::vector<Allocation> compute_allocations(
    std::span<const AllocationInput> inputs, const AllocationParams& params,
    common::SplitMix64& rng) {
  if (params.cluster_size == 0) {
    throw std::invalid_argument("compute_allocations: empty cluster");
  }
  std::vector<Allocation> out(inputs.size());
  if (inputs.empty()) return out;

  // Lagrange solution scale: n_i = kappa * w_i with the storage constraint
  // sum(n_i * p_i * P) = N * C  =>  kappa = N*C / sum(w_i * p_i * P).
  double denom = 0.0;
  for (const auto& in : inputs) {
    denom += weight_for(in, params) * std::max(in.p, 0.0) *
             params.total_filters;
  }
  const double budget =
      static_cast<double>(params.cluster_size) * params.capacity;
  const double kappa = denom > 0.0 ? budget / denom : 0.0;

  const auto n_max = static_cast<std::uint32_t>(params.cluster_size);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& in = inputs[i];
    if (in.p <= 0.0) {
      out[i] = Allocation{};  // no filters here, nothing to allocate
      continue;
    }
    const double n_real = kappa * weight_for(in, params);
    // Randomized rounding ([12]): floor + Bernoulli(frac) keeps the expected
    // budget equal to the continuous optimum's.
    const double fl = std::floor(n_real);
    std::uint32_t n = static_cast<std::uint32_t>(fl) +
                      (common::bernoulli(rng, n_real - fl) ? 1u : 0u);
    n = std::clamp<std::uint32_t>(n, 1, n_max);
    out[i] = shape_allocation(n, in.p, params);
  }
  return out;
}

double objective_latency(std::span<const AllocationInput> inputs,
                         std::span<const Allocation> allocs, double P,
                         double Q) {
  if (inputs.size() != allocs.size()) {
    throw std::invalid_argument("objective_latency: size mismatch");
  }
  double sum = 0.0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].p <= 0.0) continue;
    ++active;
    sum += inputs[i].p * P * inputs[i].q * Q /
           static_cast<double>(allocs[i].n);
  }
  return active > 0 ? sum / static_cast<double>(active) : 0.0;
}

}  // namespace move::core
