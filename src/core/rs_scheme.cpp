#include "core/rs_scheme.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"

namespace move::core {

namespace {
/// Extra successors tried when every owner of a filter is down.
constexpr std::uint32_t kEmergencyWalk = 8;
}  // namespace

RsScheme::RsScheme(cluster::Cluster& cluster, RsOptions options)
    : cluster_(&cluster), options_(options) {
  if (options_.replicas == 0) options_.replicas = 1;
}

std::uint64_t RsScheme::filter_key(FilterId filter) const {
  return common::mix64(common::hash_combine(options_.seed, filter.value));
}

void RsScheme::register_filters(const workload::TermSetTable& filters) {
  registered_filters_ = &filters;
  registered_ = filters.size();
  for (std::size_t i = 0; i < filters.size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    const auto terms = filters.row(i);
    // Hash of the filter's unique name decides the home; replicas go to the
    // ring successors, as a key/value store would place them.
    const std::uint64_t key = filter_key(global);
    const NodeId home = cluster_->ring().home_of_hash(key);
    cluster_->node(home).register_copy(global, terms, terms);
    for (NodeId succ :
         cluster_->ring().successors(key, options_.replicas - 1)) {
      cluster_->node(succ).register_copy(global, terms, terms);
    }
  }
  cluster_->seal_storage();
}

void RsScheme::rebuild() {
  if (registered_filters_ == nullptr) {
    throw std::logic_error("RsScheme::rebuild before register_filters");
  }
  cluster_->wipe_storage();
  register_filters(*registered_filters_);
}

std::vector<RepairEntry> RsScheme::collect_repair_entries(
    NodeId node) const {
  std::vector<RepairEntry> out;
  if (registered_filters_ == nullptr) return out;
  for (std::size_t i = 0; i < registered_filters_->size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    const std::uint64_t key = filter_key(global);
    bool involved = cluster_->ring().home_of_hash(key) == node;
    if (!involved) {
      for (NodeId succ :
           cluster_->ring().successors(key, options_.replicas - 1)) {
        if (succ == node) {
          involved = true;
          break;
        }
      }
    }
    if (involved) out.push_back(RepairEntry{global, TermId{0}});
  }
  return out;
}

std::size_t RsScheme::apply_repair_entries(
    std::span<const RepairEntry> batch) {
  if (registered_filters_ == nullptr) return 0;
  std::size_t moved = 0;
  for (const RepairEntry& e : batch) {
    const auto terms = registered_filters_->row(e.filter.value);
    const std::uint64_t key = filter_key(e.filter);
    std::vector<NodeId> owners{cluster_->ring().home_of_hash(key)};
    for (NodeId succ :
         cluster_->ring().successors(key, options_.replicas - 1)) {
      owners.push_back(succ);
    }
    bool live_copy = false;
    for (NodeId owner : owners) {
      if (!cluster_->alive(owner)) continue;
      moved += cluster_->node(owner).register_copy(e.filter, terms, terms);
      live_copy = true;
    }
    if (!live_copy) {
      // Every owner is down: one emergency copy on the first live node
      // further along the walk keeps the filter matchable under flooding.
      for (NodeId cand : cluster_->ring().successors(
               key, options_.replicas - 1 + kEmergencyWalk)) {
        if (!cluster_->alive(cand)) continue;
        moved += cluster_->node(cand).register_copy(e.filter, terms, terms);
        break;
      }
    }
  }
  if (moved > 0) {
    cluster_->fault_acc().repair_postings_moved += moved;
    cluster_->seal_storage();
  }
  return moved;
}

PublishPlan RsScheme::plan_publish(std::span<const TermId> doc_terms) {
  PublishPlan plan;
  const auto& cost = cluster_->cost();

  // Blind flooding: every live node receives the document and runs the full
  // SIFT match over all |d| posting lists it holds.
  std::vector<FilterId> node_matches;
  for (std::uint32_t i = 0; i < cluster_->size(); ++i) {
    const NodeId id{i};
    if (!cluster_->alive(id)) continue;
    const auto acc =
        cluster_->node(id).match_full(doc_terms, options_.match, node_matches);
    const double transfer = cost.transfer_us(doc_terms.size());
    plan.hops.push_back(Hop{id, transfer,
                            cost.handle_base_us +
                                cost.receive_service_us(transfer) +
                                cost.match_us(acc),
                            {}});
    plan.matches.insert(plan.matches.end(), node_matches.begin(),
                        node_matches.end());
  }
  std::sort(plan.matches.begin(), plan.matches.end());
  plan.matches.erase(std::unique(plan.matches.begin(), plan.matches.end()),
                     plan.matches.end());
  return plan;
}

}  // namespace move::core
