#include "core/rs_scheme.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"

namespace move::core {

RsScheme::RsScheme(cluster::Cluster& cluster, RsOptions options)
    : cluster_(&cluster), options_(options) {
  if (options_.replicas == 0) options_.replicas = 1;
}

void RsScheme::register_filters(const workload::TermSetTable& filters) {
  registered_filters_ = &filters;
  registered_ = filters.size();
  for (std::size_t i = 0; i < filters.size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    const auto terms = filters.row(i);
    // Hash of the filter's unique name decides the home; replicas go to the
    // ring successors, as a key/value store would place them.
    const std::uint64_t key = common::mix64(
        common::hash_combine(options_.seed, global.value));
    const NodeId home = cluster_->ring().home_of_hash(key);
    cluster_->node(home).register_copy(global, terms, terms);
    for (NodeId succ :
         cluster_->ring().successors(key, options_.replicas - 1)) {
      cluster_->node(succ).register_copy(global, terms, terms);
    }
  }
  cluster_->seal_storage();
}

void RsScheme::rebuild() {
  if (registered_filters_ == nullptr) {
    throw std::logic_error("RsScheme::rebuild before register_filters");
  }
  cluster_->wipe_storage();
  register_filters(*registered_filters_);
}

PublishPlan RsScheme::plan_publish(std::span<const TermId> doc_terms) {
  PublishPlan plan;
  const auto& cost = cluster_->cost();

  // Blind flooding: every live node receives the document and runs the full
  // SIFT match over all |d| posting lists it holds.
  std::vector<FilterId> node_matches;
  for (std::uint32_t i = 0; i < cluster_->size(); ++i) {
    const NodeId id{i};
    if (!cluster_->alive(id)) continue;
    const auto acc =
        cluster_->node(id).match_full(doc_terms, options_.match, node_matches);
    const double transfer = cost.transfer_us(doc_terms.size());
    plan.hops.push_back(Hop{id, transfer,
                            cost.handle_base_us +
                                cost.receive_service_us(transfer) +
                                cost.match_us(acc),
                            {}});
    plan.matches.insert(plan.matches.end(), node_matches.begin(),
                        node_matches.end());
  }
  std::sort(plan.matches.begin(), plan.matches.end());
  plan.matches.erase(std::unique(plan.matches.begin(), plan.matches.end()),
                     plan.matches.end());
  return plan;
}

}  // namespace move::core
