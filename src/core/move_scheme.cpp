#include "core/move_scheme.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"

namespace move::core {

MoveScheme::MoveScheme(cluster::Cluster& cluster, MoveOptions options)
    : IlScheme(cluster,
               IlOptions{options.match, options.use_bloom, options.bloom_fpr,
                         options.seed, options.route_attempts}),
      move_options_(options) {}

void MoveScheme::register_filters(const workload::TermSetTable& filters) {
  filters_ = &filters;
  ++build_generation_;
  home_entries_.assign(cluster_->size(), {});
  allocations_.assign(cluster_->size(), Allocation{});
  tables_.assign(cluster_->size(), std::nullopt);
  term_tables_.clear();
  publish_count_ = 0;

  // Same distributed-inverted-list registration as IL, but additionally
  // remember which (filter, home-term) pairs landed on each home so the
  // allocation pass can copy exactly those subsets.
  IlScheme::register_filters(filters);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    const FilterId global{static_cast<std::uint32_t>(i)};
    for (TermId t : filters.row(i)) {
      const NodeId home = cluster_->ring().home_of_term(t);
      home_entries_[home.value].push_back(HomeEntry{global, t});
    }
  }
}

std::vector<AllocationInput> MoveScheme::aggregate_inputs(
    const workload::TraceStats& filter_stats,
    const workload::TraceStats& corpus_stats) const {
  std::vector<AllocationInput> inputs(cluster_->size());
  const std::size_t universe = filter_stats.share.size();
  for (std::size_t t = 0; t < universe; ++t) {
    const double p = filter_stats.share[t];
    if (p <= 0.0) continue;  // documents for filterless terms never route
    const double q =
        t < corpus_stats.share.size() ? corpus_stats.share[t] : 0.0;
    const NodeId home =
        cluster_->ring().home_of_term(TermId{static_cast<std::uint32_t>(t)});
    inputs[home.value].p += p;
    inputs[home.value].q += q;
  }
  return inputs;
}

void MoveScheme::allocate(const workload::TraceStats& filter_stats,
                          const workload::TraceStats& corpus_stats) {
  if (filters_ == nullptr) {
    throw std::logic_error("MoveScheme::allocate before register_filters");
  }
  last_stats_ = std::make_pair(filter_stats, corpus_stats);
  if (move_options_.per_node_aggregation) {
    build_grids(aggregate_inputs(filter_stats, corpus_stats));
  } else {
    build_term_grids(filter_stats, corpus_stats);
  }
  // The grid copies thawed the touched nodes; refreeze before matching.
  cluster_->seal_storage();
}

void MoveScheme::rebuild() {
  if (filters_ == nullptr) {
    throw std::logic_error("MoveScheme::rebuild before register_filters");
  }
  cluster_->wipe_storage();
  // Keep the stats across register_filters (which resets transient state).
  auto stats = std::move(last_stats_);
  register_filters(*filters_);
  if (stats.has_value()) {
    allocate(stats->first, stats->second);
  }
}

void MoveScheme::allocate_from_observed() {
  if (filters_ == nullptr) {
    throw std::logic_error(
        "MoveScheme::allocate_from_observed before register_filters");
  }
  // Reconstruct per-home aggregates from the meta stores (§V: the dedicated
  // collector node gathers p', q' from every node). q' is normalized by the
  // documents published in the current observation window.
  std::vector<AllocationInput> inputs(cluster_->size());
  const double published =
      publish_count_ > window_base_
          ? static_cast<double>(publish_count_ - window_base_)
          : 1.0;
  for (std::uint32_t m = 0; m < cluster_->size(); ++m) {
    const auto& meta = cluster_->node(NodeId{m}).meta();
    inputs[m].p = registered_ > 0
                      ? static_cast<double>(meta.total_filters()) /
                            static_cast<double>(registered_)
                      : 0.0;
    inputs[m].q = static_cast<double>(meta.total_docs()) / published;
  }
  build_grids(inputs);
  cluster_->seal_storage();
}

void MoveScheme::reset_observation_window() {
  window_base_ = publish_count_;
  for (std::uint32_t m = 0; m < cluster_->size(); ++m) {
    cluster_->node(NodeId{m}).meta().reset_document_counters();
  }
}

void MoveScheme::set_workload_observer(WorkloadObserver* observer) {
  observer_ = observer;
  if (observer_ == nullptr) return;
  // Warm the popularity side: the registered set IS the p_i ground truth at
  // attach time (registration happened before the observer existed).
  for (const auto& entries : home_entries_) {
    for (const HomeEntry& e : entries) observer_->on_filter_term(e.term);
  }
}

AllocationParams MoveScheme::make_allocation_params() const {
  AllocationParams params;
  params.cluster_size = cluster_->size();
  params.total_filters = static_cast<double>(registered_);
  params.capacity = move_options_.capacity;
  params.rule = move_options_.rule;
  params.ratio = move_options_.ratio;
  params.beta = cluster_->cost().beta(params.total_filters, 500.0);
  return params;
}

std::vector<Allocation> MoveScheme::plan_allocations(
    const std::vector<AllocationInput>& inputs) const {
  // Same seed derivation as build_grids: the rounding stream replays from
  // scratch on every call, so planning is deterministic and side-effect
  // free no matter how often the adaptive controller re-plans.
  common::SplitMix64 rng(move_options_.seed ^ 0xa110ca7eULL);
  return compute_allocations(inputs, make_allocation_params(), rng);
}

std::optional<ForwardingTable> MoveScheme::plan_grid(
    NodeId home, const Allocation& alloc,
    std::span<const double> slot_load) const {
  return make_grid(home, alloc, 0x5a5aULL, slot_load);
}

std::size_t MoveScheme::apply_grid_entry(NodeId target,
                                         const HomeEntry& entry) {
  const TermId one[] = {entry.term};
  return cluster_->node(target).register_copy(
      entry.filter, filters_->row(entry.filter.value), one);
}

std::optional<ForwardingTable> MoveScheme::install_table(
    NodeId home, std::optional<ForwardingTable> table,
    const Allocation& alloc) {
  std::optional<ForwardingTable> old = std::move(tables_[home.value]);
  tables_[home.value] = std::move(table);
  allocations_[home.value] = alloc;
  return old;
}

std::size_t MoveScheme::retire_displaced_copies(
    NodeId home, const ForwardingTable& old_table) {
  std::size_t removed = 0;
  const auto& fresh = tables_[home.value];
  std::vector<char> needed(cluster_->size(), 0);
  for (const HomeEntry& e : home_entries_[home.value]) {
    std::fill(needed.begin(), needed.end(), 0);
    needed[home.value] = 1;  // the home's own full copy never retires
    if (fresh.has_value()) {
      for (NodeId n : fresh->column_nodes(fresh->column_of(e.filter))) {
        needed[n.value] = 1;
      }
    }
    const TermId one[] = {e.term};
    for (NodeId n : old_table.column_nodes(old_table.column_of(e.filter))) {
      if (needed[n.value]) continue;
      removed += cluster_->node(n).unregister_copy(e.filter, one);
    }
  }
  return removed;
}

std::optional<ForwardingTable> MoveScheme::make_grid(
    NodeId home, const Allocation& alloc, std::uint64_t salt,
    std::span<const double> slot_load) const {
  const std::size_t wanted =
      static_cast<std::size_t>(alloc.partitions) * alloc.columns;
  if (wanted <= 1) return std::nullopt;

  auto candidates = kv::select_replica_nodes_weighted(
      move_options_.placement, home, common::mix64(home.value + salt), wanted,
      cluster_->ring(), cluster_->topology(), slot_load);
  if (candidates.empty()) return std::nullopt;

  // Shrink the grid if the cluster could not supply enough distinct nodes.
  std::uint32_t columns = std::min<std::uint32_t>(
      alloc.columns, static_cast<std::uint32_t>(candidates.size()));
  std::uint32_t partitions = std::min<std::uint32_t>(
      alloc.partitions,
      static_cast<std::uint32_t>(candidates.size()) / columns);
  if (partitions == 0) partitions = 1;
  if (static_cast<std::size_t>(partitions) * columns <= 1) {
    return std::nullopt;
  }

  std::vector<NodeId> grid(
      candidates.begin(),
      candidates.begin() + static_cast<std::size_t>(partitions) * columns);
  return ForwardingTable(partitions, columns, std::move(grid));
}

void MoveScheme::copy_entries(const ForwardingTable& table,
                              std::span<const HomeEntry> entries) {
  for (const HomeEntry& entry : entries) {
    const std::uint32_t col = table.column_of(entry.filter);
    const auto terms = filters_->row(entry.filter.value);
    const TermId one[] = {entry.term};
    for (std::uint32_t row = 0; row < table.partitions(); ++row) {
      cluster_->node(table.at(row, col)).register_copy(entry.filter, terms,
                                                       one);
    }
  }
}

void MoveScheme::build_grids(const std::vector<AllocationInput>& inputs) {
  common::SplitMix64 rng(move_options_.seed ^ 0xa110ca7eULL);
  allocations_ = compute_allocations(inputs, make_allocation_params(), rng);

  // Place the hottest homes first and track the document-rate share each
  // grid slot will carry, so the weighted selection spreads hot grids
  // instead of stacking them on the same few nodes (the collector node has
  // the global view, §V).
  std::vector<std::uint32_t> order(cluster_->size());
  for (std::uint32_t m = 0; m < cluster_->size(); ++m) order[m] = m;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return inputs[a].q * inputs[a].p > inputs[b].q * inputs[b].p;
  });

  std::vector<double> slot_load(cluster_->size(), 0.0);
  for (std::uint32_t m : order) {
    tables_[m].reset();
    if (home_entries_[m].empty()) continue;
    auto table = make_grid(NodeId{m}, allocations_[m], 0x5a5aULL, slot_load);
    if (!table.has_value()) continue;
    copy_entries(*table, home_entries_[m]);
    // Expected matching work a grid node absorbs from this home: its docs
    // arrive at rate q/partitions and each scans p*P/columns postings, so
    // the work share is proportional to p*q/(partitions*columns).
    const double share =
        inputs[m].p * inputs[m].q /
        (static_cast<double>(table->partitions()) * table->columns());
    for (NodeId n : table->all_nodes()) slot_load[n.value] += share;
    tables_[m] = std::move(*table);
  }
}

void MoveScheme::build_term_grids(const workload::TraceStats& filter_stats,
                                  const workload::TraceStats& corpus_stats) {
  // §IV granularity ablation: one allocation problem over all filter terms.
  std::vector<AllocationInput> inputs;
  std::vector<std::uint32_t> term_of_input;
  for (std::size_t t = 0; t < filter_stats.share.size(); ++t) {
    const double p = filter_stats.share[t];
    if (p <= 0.0) continue;
    const double q =
        t < corpus_stats.share.size() ? corpus_stats.share[t] : 0.0;
    inputs.push_back(AllocationInput{p, q});
    term_of_input.push_back(static_cast<std::uint32_t>(t));
  }

  common::SplitMix64 rng(move_options_.seed ^ 0x7e4aa110ULL);
  const auto allocs = compute_allocations(inputs, make_allocation_params(), rng);

  term_tables_.clear();
  // Group the home entries by term once (home_entries_ are per home node).
  std::unordered_map<std::uint32_t, std::vector<HomeEntry>> by_term;
  for (const auto& entries : home_entries_) {
    for (const HomeEntry& e : entries) by_term[e.term.value].push_back(e);
  }

  // Hot terms first, load-aware, as in the per-node variant.
  std::vector<std::size_t> order(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inputs[a].q * inputs[a].p > inputs[b].q * inputs[b].p;
  });

  std::vector<double> slot_load(cluster_->size(), 0.0);
  for (std::size_t i : order) {
    const std::uint32_t term = term_of_input[i];
    auto it = by_term.find(term);
    if (it == by_term.end()) continue;
    const NodeId home = cluster_->ring().home_of_term(TermId{term});
    auto table = make_grid(home, allocs[i], 0x7e57ULL + term, slot_load);
    if (!table.has_value()) continue;
    copy_entries(*table, it->second);
    const double share =
        inputs[i].p * inputs[i].q /
        (static_cast<double>(table->partitions()) * table->columns());
    for (NodeId n : table->all_nodes()) slot_load[n.value] += share;
    term_tables_.emplace(term, std::move(*table));
  }
}

void MoveScheme::plan_at_home(NodeId home, std::span<const TermId> terms,
                              std::span<const TermId> doc_terms,
                              PublishPlan& plan) {
  // Meta recording is done once in plan_publish (record_docs = false here).
  serve_at_home_with_failover(home, terms, doc_terms, plan, false);
}

void MoveScheme::plan_via_table(const ForwardingTable& table, NodeId home,
                                std::span<const TermId> terms,
                                std::span<const TermId> doc_terms,
                                const std::vector<bool>& alive,
                                PublishPlan& plan) {
  const auto& cost = cluster_->cost();
  const auto& topo = cluster_->topology();
  const bool home_alive = alive[home.value];

  // The home stores the full filter set itself (§V: filters live on the
  // home AND the forwarding-table nodes), so it acts as one extra virtual
  // partition: with probability 1/(partitions+1) the document is served
  // locally with no second hop.
  if (home_alive &&
      common::uniform_below(rng_, table.partitions() + 1) == 0) {
    plan_at_home(home, terms, doc_terms, plan);
    return;
  }

  const auto row = table.pick_live_row(alive, rng_);
  if (!row.has_value()) {
    // Entire grid is dead; the home's own copy is the last resort.
    plan_at_home(home, terms, doc_terms, plan);
    return;
  }

  // Build the partition fan-out column by column. A dead node is replaced
  // by the same column from another partition row (every row carries a full
  // copy of the column's filter subset); only a column dead in every row
  // falls back to the home's own full copy.
  auto& facc = cluster_->fault_acc();
  std::vector<Hop> fanout;
  std::vector<FilterId> scratch;
  bool column_lost = false;
  for (std::uint32_t col = 0; col < table.columns(); ++col) {
    NodeId target = table.at(*row, col);
    if (!alive[target.value]) {
      bool substituted = false;
      for (std::uint32_t r = 0; r < table.partitions() && !substituted; ++r) {
        if (r == *row) continue;
        ++facc.route_retries;
        const NodeId cand = table.at(r, col);
        if (alive[cand.value]) {
          target = cand;
          substituted = true;
          ++facc.failovers;
        }
      }
      if (!substituted) {
        column_lost = true;
        continue;
      }
    }
    const bool same_rack =
        home_alive && topo.rack_of(target) == topo.rack_of(home);
    const double transfer = cost.transfer_us(doc_terms.size(), same_rack);
    double service = cost.handle_base_us + cost.receive_service_us(transfer);
    for (TermId t : terms) {
      const auto acc = cluster_->node(target).match_single(
          t, doc_terms, move_options_.match, scratch);
      service += cost.match_us(acc);
      plan.matches.insert(plan.matches.end(), scratch.begin(), scratch.end());
    }
    fanout.push_back(Hop{target, transfer, service, {}});
  }
  if (fanout.empty()) {
    plan_at_home(home, terms, doc_terms, plan);
    return;
  }

  if (home_alive) {
    // Two-hop route: the home only consults its forwarding table.
    const double transfer = cost.transfer_us(doc_terms.size());
    double service =
        cost.handle_base_us + cost.receive_service_us(transfer) +
        cost.forward_decision_us * static_cast<double>(terms.size());
    if (column_lost) {
      // Some column has no live copy in any row: the home's own full filter
      // set is the last resort, matched inline on the forwarding hop (its
      // matches subsume every lost column's subset).
      ++facc.failovers;
      for (TermId t : terms) {
        const auto acc = cluster_->node(home).match_single(
            t, doc_terms, move_options_.match, scratch);
        service += cost.match_us(acc);
        plan.matches.insert(plan.matches.end(), scratch.begin(),
                            scratch.end());
      }
    }
    plan.hops.push_back(Hop{home, transfer, service, std::move(fanout)});
  } else {
    // Home is down: the publisher (full-membership routing) sends straight
    // to the partition nodes.
    for (Hop& h : fanout) plan.hops.push_back(std::move(h));
    if (column_lost) {
      // Home down AND a column lost everywhere: the term-successor walk is
      // the last resort — it reaches the home copies repair re-registered.
      plan_at_home(home, terms, doc_terms, plan);
    }
  }
}

double MoveScheme::routable_availability() const {
  if (filters_ == nullptr || filters_->size() == 0) return 1.0;

  auto column_reachable = [&](const ForwardingTable& table, FilterId f) {
    const std::uint32_t col = table.column_of(f);
    for (std::uint32_t row = 0; row < table.partitions(); ++row) {
      if (cluster_->alive(table.at(row, col))) return true;
    }
    return false;
  };

  std::size_t reachable = 0;
  for (std::size_t i = 0; i < filters_->size(); ++i) {
    const FilterId f{static_cast<std::uint32_t>(i)};
    bool ok = false;
    for (TermId t : filters_->row(i)) {
      const NodeId home = cluster_->ring().home_of_term(t);
      if (cluster_->alive(home)) {
        ok = true;  // the home's own copy serves as the last resort
        break;
      }
      // A repaired home copy on the term's successor walk also routes: the
      // failover stops at the first live candidate, so only that node's
      // store decides.
      for (NodeId cand : cluster_->ring().successors(
               common::mix64(t.value), move_options_.route_attempts)) {
        if (!cluster_->alive(cand)) continue;
        ok = cluster_->node(cand).stores(f);
        break;
      }
      if (ok) break;
      if (move_options_.per_node_aggregation) {
        const auto& table = tables_[home.value];
        if (table.has_value() && column_reachable(*table, f)) {
          ok = true;
          break;
        }
      } else {
        auto it = term_tables_.find(t.value);
        if (it != term_tables_.end() && column_reachable(it->second, f)) {
          ok = true;
          break;
        }
      }
    }
    reachable += ok;
  }
  return static_cast<double>(reachable) /
         static_cast<double>(filters_->size());
}

PublishPlan MoveScheme::plan_publish(std::span<const TermId> doc_terms) {
  ++publish_count_;
  PublishPlan plan;

  std::vector<bool> alive(cluster_->size());
  for (std::uint32_t i = 0; i < cluster_->size(); ++i) {
    alive[i] = cluster_->alive(NodeId{i});
  }

  for (auto& [home, terms] : group_terms_by_home(doc_terms)) {
    if (observer_ != nullptr) {
      // Adaptive mode: bounded sketches replace the exact meta counters on
      // the hot path (same event stream, different sink).
      for (TermId t : terms) observer_->on_document_term(t);
    } else {
      for (TermId t : terms) cluster_->node(home).meta().record_document(t);
    }

    if (move_options_.per_node_aggregation) {
      const auto& table = tables_[home.value];
      if (table.has_value()) {
        plan_via_table(*table, home, terms, doc_terms, alive, plan);
      } else {
        plan_at_home(home, terms, doc_terms, plan);
      }
    } else {
      // Per-term tables: each term routes independently.
      for (TermId t : terms) {
        const TermId one[] = {t};
        auto it = term_tables_.find(t.value);
        if (it != term_tables_.end()) {
          plan_via_table(it->second, home, one, doc_terms, alive, plan);
        } else {
          plan_at_home(home, one, doc_terms, plan);
        }
      }
    }
  }

  std::sort(plan.matches.begin(), plan.matches.end());
  plan.matches.erase(std::unique(plan.matches.begin(), plan.matches.end()),
                     plan.matches.end());
  return plan;
}

}  // namespace move::core
