#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

/// The MOVE filter-allocation optimizer (§IV).
///
/// Given the per-home popularity p (fraction of the P filters whose home is
/// here) and frequency q (fraction of the Q documents that will route here),
/// decide for each home:
///  * n — how many nodes its filter set is allocated onto, maximizing
///    throughput under the cluster-wide storage constraint
///    sum(n_i * p_i * P) = N * C (Theorems 1/2: n_i proportional to sqrt(q_i),
///    sqrt(1 + beta*q_i), or in the capacity-limited general case
///    sqrt(p_i * q_i));
///  * r — the allocation ratio in [1/n, 1] splitting those n nodes into 1/r
///    partitions (replication degree) of r*n columns (separation degree);
///    r is tuned up from 1/n until each node's share p*P/(n*r) fits the
///    per-node capacity C (§IV-B2's alpha tuning).
///
/// The continuous optimum is made integral by randomized rounding ([12]).
namespace move::core {

/// Which optimal-factor rule to apply (the paper derives all three).
enum class FactorRule {
  kTheorem1SqrtQ,      ///< n_i ∝ sqrt(q_i)        (Eq. 1 cost, ample capacity)
  kTheorem2SqrtBetaQ,  ///< n_i ∝ sqrt(1 + β q_i)  (Eq. 2 cost, ample capacity)
  kGeneralSqrtPQ,      ///< n_i ∝ sqrt(p_i q_i)    (capacity-limited; §V uses this)
};

/// How the allocation ratio r is chosen (§IV-A's design space). The paper's
/// scheme is adaptive; the two pure policies are its degenerate corners and
/// exist for the ablation study ("neither the replication nor separation
/// scheme alone can minimize the latency").
enum class RatioPolicy {
  kAdaptive,         ///< r = max(1/n, p·P/(C·n)) — the paper's tuning
  kPureReplication,  ///< r = 1/n: n partitions of 1 column (copies only)
  kPureSeparation,   ///< r = 1: 1 partition of n columns (subsets only)
};

struct AllocationInput {
  double p = 0.0;  ///< aggregated popularity share of this home
  double q = 0.0;  ///< aggregated frequency share of this home
};

struct AllocationParams {
  std::size_t cluster_size = 1;   ///< N
  double total_filters = 0.0;     ///< P
  double capacity = 0.0;          ///< C, max filter copies per node
  FactorRule rule = FactorRule::kGeneralSqrtPQ;
  RatioPolicy ratio = RatioPolicy::kAdaptive;
  /// β = y_p * P / y_d for Theorem 2 (ignored by the other rules).
  double beta = 1.0;
};

struct Allocation {
  std::uint32_t n = 1;          ///< nodes assigned (including capacity for home's set)
  double r = 1.0;               ///< allocation ratio in [1/n, 1]
  std::uint32_t partitions = 1; ///< 1/r rows (replication degree)
  std::uint32_t columns = 1;    ///< r*n columns (separation degree)

  /// Filter copies this allocation stores per grid node: p*P/(n*r).
  [[nodiscard]] double copies_per_node(double p, double P) const {
    return p * P / (static_cast<double>(n) * r);
  }
};

/// Computes one allocation for a single home (deterministic part; no
/// rounding randomness — n is supplied).
[[nodiscard]] Allocation shape_allocation(std::uint32_t n, double p,
                                          const AllocationParams& params);

/// Solves the whole-cluster problem: optimal real-valued n_i from the factor
/// rule, scaled to exhaust the storage budget N*C, then randomized-rounded.
/// Homes with p == 0 (no filters) get n = 1 (nothing to allocate).
[[nodiscard]] std::vector<Allocation> compute_allocations(
    std::span<const AllocationInput> inputs, const AllocationParams& params,
    common::SplitMix64& rng);

/// The analytic average latency objective the optimizer minimizes
/// (Y = (1/T) * sum p_i*P*q_i*Q / n_i, Eq. 1 summed) — exposed so tests can
/// verify the optimal factors beat perturbed ones.
[[nodiscard]] double objective_latency(std::span<const AllocationInput> inputs,
                                       std::span<const Allocation> allocs,
                                       double P, double Q);

}  // namespace move::core
