#pragma once

#include <cstdint>
#include <vector>

#include "index/inverted_index.hpp"
#include "sim/adapt_accounting.hpp"
#include "sim/event_engine.hpp"
#include "sim/fault_accounting.hpp"
#include "sim/net_accounting.hpp"

namespace move::obs {
class Registry;
}

/// Run-level measurement collected during a simulated dissemination run.
///
/// Mirrors what the paper reports: throughput (documents fully matched per
/// second, §VI-A3), per-node storage cost and matching cost distributions
/// (Fig. 9 a-b), and end-to-end latency statistics.
namespace move::sim {

struct RunMetrics {
  std::uint64_t documents_published = 0;
  std::uint64_t documents_completed = 0;   ///< all matching filters found
  std::uint64_t notifications = 0;         ///< matched (doc, filter) pairs
  Time makespan_us = 0;                    ///< completion time of last doc

  std::vector<double> latencies_us;        ///< per-document publish->complete
  std::vector<double> node_busy_us;        ///< per-node service time
  std::vector<std::uint64_t> node_docs;    ///< per-node docs served
  std::vector<std::uint64_t> node_storage; ///< per-node stored filter copies
  std::vector<double> node_queue_wait_us;  ///< per-node total queueing delay
  std::vector<std::uint64_t> node_max_queue_depth;  ///< per-node peak backlog

  /// Cluster-wide match-kernel IO performed during the run (delta of the
  /// nodes' MatchAccounting totals): what the counters actually scanned,
  /// independent of the virtual-time cost attached to it. Lets benches
  /// report postings/sec next to docs/sec.
  index::MatchAccounting match_acc;

  /// Cluster-wide index-storage snapshot at run end: bytes of posting
  /// storage (raw arena or compressed blocks + skips, see
  /// InvertedIndex::posting_storage_bytes) and live stored filter copies.
  /// Exported as `run.index.*` gauges — with the derived bytes_per_filter —
  /// only when blocks were decoded (i.e. compressed mode), so raw-mode
  /// outputs stay byte-identical to the pre-codec layout.
  std::uint64_t index_posting_bytes = 0;
  std::uint64_t index_stored_filters = 0;

  /// Failure-path accounting for the run (delta of the cluster's
  /// FaultAccounting totals): failovers, retries, lost routes, handoff and
  /// repair volume. All zero on a healthy run.
  FaultAccounting fault_acc;

  /// Message-layer accounting for the run (delta of the transport's
  /// totals): sends, drops, dups, retries, timeouts, breaker trips, shed
  /// messages. All zero when no transport is interposed; exported as
  /// `run.net.*` gauges only then non-trivial, so healthy-run outputs stay
  /// byte-identical to the pre-net layout.
  NetAccounting net_acc;

  /// Online-adaptation accounting (sketch footprint, drift decisions,
  /// migration volume, stall time). Filled only by adapt::run_online;
  /// exported as `run.adapt.*` gauges only when windows > 0, so
  /// non-adaptive runs stay byte-identical to the pre-adapt layout.
  AdaptAccounting adapt_acc;

  /// Paper's headline metric: completed documents per (virtual) second.
  [[nodiscard]] double throughput_per_sec() const noexcept {
    if (makespan_us <= 0) return 0.0;
    return static_cast<double>(documents_completed) /
           (makespan_us / 1'000'000.0);
  }

  /// Posting entries scanned per (virtual) second over the run — the
  /// kernel-level companion to throughput_per_sec.
  [[nodiscard]] double postings_per_sec() const noexcept {
    if (makespan_us <= 0) return 0.0;
    return static_cast<double>(match_acc.postings_scanned) /
           (makespan_us / 1'000'000.0);
  }

  [[nodiscard]] double mean_latency_us() const noexcept;
  [[nodiscard]] double p99_latency_us() const;

  /// Matching-cost vector (Fig. 9b): per-node busy time.
  [[nodiscard]] const std::vector<double>& matching_cost() const noexcept {
    return node_busy_us;
  }
  /// Storage-cost vector (Fig. 9a): per-node filter copies as doubles.
  [[nodiscard]] std::vector<double> storage_cost() const;

  // --- load-balance summaries (the paper's bottleneck-node bound) ----------

  /// Per-node busy_us / makespan; empty when makespan is 0.
  [[nodiscard]] std::vector<double> busy_fractions() const;
  /// Busy fraction of the bottleneck node (max over nodes; 0 if none).
  [[nodiscard]] double max_busy_fraction() const;
  /// Mean busy fraction across nodes.
  [[nodiscard]] double mean_busy_fraction() const;
  /// Peak-to-mean of per-node busy time (1.0 = perfectly balanced; the
  /// cluster-level shard-imbalance figure the benches report).
  [[nodiscard]] double busy_imbalance() const;
  /// Peak-to-mean of per-node stored filter copies.
  [[nodiscard]] double storage_imbalance() const;

  /// Writes the run's scalars as `run.*` gauges and the per-node vectors as
  /// `run.node.*{node=i}` gauges into `registry`.
  void export_metrics(obs::Registry& registry) const;
};

}  // namespace move::sim
