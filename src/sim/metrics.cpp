#include "sim/metrics.hpp"

#include "common/stats.hpp"

namespace move::sim {

double RunMetrics::mean_latency_us() const noexcept {
  return common::mean(latencies_us);
}

double RunMetrics::p99_latency_us() const {
  return common::percentile(latencies_us, 99.0);
}

std::vector<double> RunMetrics::storage_cost() const {
  std::vector<double> out;
  out.reserve(node_storage.size());
  for (std::uint64_t s : node_storage) out.push_back(static_cast<double>(s));
  return out;
}

}  // namespace move::sim
