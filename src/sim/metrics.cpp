#include "sim/metrics.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace move::sim {

double RunMetrics::mean_latency_us() const noexcept {
  return common::mean(latencies_us);
}

double RunMetrics::p99_latency_us() const {
  return common::percentile(latencies_us, 99.0);
}

std::vector<double> RunMetrics::storage_cost() const {
  std::vector<double> out;
  out.reserve(node_storage.size());
  for (std::uint64_t s : node_storage) out.push_back(static_cast<double>(s));
  return out;
}

std::vector<double> RunMetrics::busy_fractions() const {
  std::vector<double> out;
  if (makespan_us <= 0) return out;
  out.reserve(node_busy_us.size());
  for (const double b : node_busy_us) out.push_back(b / makespan_us);
  return out;
}

double RunMetrics::max_busy_fraction() const {
  double peak = 0.0;
  for (const double f : busy_fractions()) peak = std::max(peak, f);
  return peak;
}

double RunMetrics::mean_busy_fraction() const {
  return common::mean(busy_fractions());
}

double RunMetrics::busy_imbalance() const {
  return common::peak_to_mean(node_busy_us);
}

double RunMetrics::storage_imbalance() const {
  return common::peak_to_mean(storage_cost());
}

void RunMetrics::export_metrics(obs::Registry& registry) const {
  registry.gauge("run.documents_published")
      .set(static_cast<double>(documents_published));
  registry.gauge("run.documents_completed")
      .set(static_cast<double>(documents_completed));
  registry.gauge("run.notifications").set(static_cast<double>(notifications));
  registry.gauge("run.makespan_us").set(makespan_us);
  registry.gauge("run.throughput_per_sec").set(throughput_per_sec());
  registry.gauge("run.max_busy_fraction").set(max_busy_fraction());
  registry.gauge("run.mean_busy_fraction").set(mean_busy_fraction());
  registry.gauge("run.busy_imbalance").set(busy_imbalance());
  registry.gauge("run.storage_imbalance").set(storage_imbalance());
  registry.gauge("run.match.lists_retrieved")
      .set(static_cast<double>(match_acc.lists_retrieved));
  registry.gauge("run.match.postings_scanned")
      .set(static_cast<double>(match_acc.postings_scanned));
  registry.gauge("run.match.candidates_verified")
      .set(static_cast<double>(match_acc.candidates_verified));
  // Bloom-gate counters appear only when the term-summary gate actually
  // fired, so runs on mutable (never-finalized) indexes keep their previous
  // metric layout byte-identical.
  if (match_acc.bloom_rejects > 0) {
    registry.gauge("run.match.bloom_rejects")
        .set(static_cast<double>(match_acc.bloom_rejects));
  }
  if (match_acc.postings_skipped > 0) {
    registry.gauge("run.match.postings_skipped")
        .set(static_cast<double>(match_acc.postings_skipped));
  }
  // Codec gauges appear only when compressed blocks were actually decoded,
  // so raw-mode runs keep the pre-codec layout byte-identical — and the
  // `check_determinism.sh --codec-diff` gate needs to strip exactly these
  // three keys to compare raw vs compressed outputs.
  if (match_acc.blocks_decoded > 0) {
    registry.gauge("run.match.blocks_decoded")
        .set(static_cast<double>(match_acc.blocks_decoded));
    registry.gauge("run.index.posting_bytes")
        .set(static_cast<double>(index_posting_bytes));
    if (index_stored_filters > 0) {
      registry.gauge("run.index.bytes_per_filter")
          .set(static_cast<double>(index_posting_bytes) /
               static_cast<double>(index_stored_filters));
    }
  }
  registry.gauge("run.postings_per_sec").set(postings_per_sec());
  registry.gauge("run.fault.failed_routes")
      .set(static_cast<double>(fault_acc.failed_routes));
  registry.gauge("run.fault.route_retries")
      .set(static_cast<double>(fault_acc.route_retries));
  registry.gauge("run.fault.dead_contacts")
      .set(static_cast<double>(fault_acc.dead_contacts));
  registry.gauge("run.fault.failovers")
      .set(static_cast<double>(fault_acc.failovers));
  registry.gauge("run.fault.hints_parked")
      .set(static_cast<double>(fault_acc.hints_parked));
  registry.gauge("run.fault.hints_drained")
      .set(static_cast<double>(fault_acc.hints_drained));
  registry.gauge("run.fault.repair_postings_moved")
      .set(static_cast<double>(fault_acc.repair_postings_moved));
  // Net gauges appear only when a transport actually carried messages, so
  // registries exported from pre-net (or transport-less) runs stay
  // byte-identical to the previous layout.
  if (net_acc.messages > 0) {
    registry.gauge("run.net.messages")
        .set(static_cast<double>(net_acc.messages));
    registry.gauge("run.net.attempts")
        .set(static_cast<double>(net_acc.attempts));
    registry.gauge("run.net.delivered")
        .set(static_cast<double>(net_acc.delivered));
    registry.gauge("run.net.drops").set(static_cast<double>(net_acc.drops));
    registry.gauge("run.net.duplicates")
        .set(static_cast<double>(net_acc.duplicates));
    registry.gauge("run.net.dup_suppressed")
        .set(static_cast<double>(net_acc.dup_suppressed));
    registry.gauge("run.net.retries")
        .set(static_cast<double>(net_acc.retries));
    registry.gauge("run.net.timeouts")
        .set(static_cast<double>(net_acc.timeouts));
    registry.gauge("run.net.expired")
        .set(static_cast<double>(net_acc.expired));
    registry.gauge("run.net.breaker_trips")
        .set(static_cast<double>(net_acc.breaker_trips));
    registry.gauge("run.net.breaker_fast_fails")
        .set(static_cast<double>(net_acc.breaker_fast_fails));
    registry.gauge("run.net.shed").set(static_cast<double>(net_acc.shed));
    registry.gauge("run.net.delivery_ratio").set(net_acc.delivery_ratio());
  }
  // Adapt gauges appear only when the online-adaptation controller actually
  // ran (same conditional-export convention as the net block above).
  if (adapt_acc.windows > 0) {
    registry.gauge("run.adapt.windows")
        .set(static_cast<double>(adapt_acc.windows));
    registry.gauge("run.adapt.reallocations")
        .set(static_cast<double>(adapt_acc.reallocations));
    registry.gauge("run.adapt.terms_drifted")
        .set(static_cast<double>(adapt_acc.terms_drifted));
    registry.gauge("run.adapt.homes_migrated")
        .set(static_cast<double>(adapt_acc.homes_migrated));
    registry.gauge("run.adapt.homes_aborted")
        .set(static_cast<double>(adapt_acc.homes_aborted));
    registry.gauge("run.adapt.migration_rpcs")
        .set(static_cast<double>(adapt_acc.migration_rpcs));
    registry.gauge("run.adapt.migration_rpcs_dropped")
        .set(static_cast<double>(adapt_acc.migration_rpcs_dropped));
    registry.gauge("run.adapt.migration_batches")
        .set(static_cast<double>(adapt_acc.migration_batches));
    registry.gauge("run.adapt.postings_moved")
        .set(static_cast<double>(adapt_acc.postings_moved));
    registry.gauge("run.adapt.entries_retired")
        .set(static_cast<double>(adapt_acc.entries_retired));
    registry.gauge("run.adapt.sketch_bytes").set(adapt_acc.sketch_bytes);
    registry.gauge("run.adapt.sketch_error_bound")
        .set(adapt_acc.sketch_error_bound);
    registry.gauge("run.adapt.migration_inflight_us")
        .set(adapt_acc.migration_inflight_us);
    registry.gauge("run.adapt.stall_us").set(adapt_acc.stall_us);
  }
  for (std::size_t n = 0; n < node_busy_us.size(); ++n) {
    registry.gauge(obs::labeled("run.node.busy_us", "node", n))
        .set(node_busy_us[n]);
  }
  for (std::size_t n = 0; n < node_queue_wait_us.size(); ++n) {
    registry.gauge(obs::labeled("run.node.queue_wait_us", "node", n))
        .set(node_queue_wait_us[n]);
  }
  for (std::size_t n = 0; n < node_max_queue_depth.size(); ++n) {
    registry.gauge(obs::labeled("run.node.max_queue_depth", "node", n))
        .set(static_cast<double>(node_max_queue_depth[n]));
  }
  for (std::size_t n = 0; n < node_storage.size(); ++n) {
    registry.gauge(obs::labeled("run.node.storage", "node", n))
        .set(static_cast<double>(node_storage[n]));
  }
}

}  // namespace move::sim
